/**
 * @file
 * Cross-validation: the SMT engine and the explicit-state enumerator
 * must agree on every supported (straight-line) litmus test — this is
 * the repository's analogue of the paper's Dartagnan-vs-Alloy model
 * validation (Table 5: "For tests supported by both tools, all results
 * match").
 */

#include <gtest/gtest.h>

#include "explicit/explicit_checker.hpp"
#include "tests/test_util.hpp"

namespace gpumc::test {
namespace {

struct CrossCase {
    const char *name;
    const char *source;
};

// A spread of classic patterns in both dialects, with mixed memory
// orders, scopes and storage classes.
const CrossCase kCases[] = {
    {"ptx-mp-weak", R"(
PTX
P0@cta 0,gpu 0 | P1@cta 0,gpu 0 ;
st.weak x, 1   | ld.weak r0, y  ;
st.weak y, 1   | ld.weak r1, x  ;
exists (P1:r0 == 1 /\ P1:r1 == 0)
)"},
    {"ptx-mp-rel-acq", R"(
PTX
P0@cta 0,gpu 0      | P1@cta 0,gpu 0       ;
st.weak x, 1        | ld.acquire.gpu r0, y ;
st.release.gpu y, 1 | ld.weak r1, x        ;
exists (P1:r0 == 1 /\ P1:r1 == 0)
)"},
    {"ptx-mp-scope-too-small", R"(
PTX
P0@cta 0,gpu 0      | P1@cta 1,gpu 0       ;
st.weak x, 1        | ld.acquire.cta r0, y ;
st.release.cta y, 1 | ld.weak r1, x        ;
exists (P1:r0 == 1 /\ P1:r1 == 0)
)"},
    {"ptx-sb-weak", R"(
PTX
P0@cta 0,gpu 0 | P1@cta 0,gpu 0 ;
st.weak x, 1   | st.weak y, 1   ;
ld.weak r0, y  | ld.weak r1, x  ;
exists (P0:r0 == 0 /\ P1:r1 == 0)
)"},
    {"ptx-sb-fence-sc", R"(
PTX
P0@cta 0,gpu 0       | P1@cta 0,gpu 0       ;
st.relaxed.gpu x, 1  | st.relaxed.gpu y, 1  ;
fence.sc.gpu         | fence.sc.gpu         ;
ld.relaxed.gpu r0, y | ld.relaxed.gpu r1, x ;
exists (P0:r0 == 0 /\ P1:r1 == 0)
)"},
    {"ptx-lb-weak", R"(
PTX
P0@cta 0,gpu 0 | P1@cta 0,gpu 0 ;
ld.weak r0, x  | ld.weak r1, y  ;
st.weak y, 1   | st.weak x, 1   ;
exists (P0:r0 == 1 /\ P1:r1 == 1)
)"},
    {"ptx-lb-data-dep", R"(
PTX
P0@cta 0,gpu 0 | P1@cta 0,gpu 0 ;
ld.weak r0, x  | ld.weak r1, y  ;
st.weak y, r0  | st.weak x, r1  ;
exists (P0:r0 == 1 /\ P1:r1 == 1)
)"},
    {"ptx-iriw-acquire", R"(
PTX
P0@cta 0,gpu 0     | P1@cta 0,gpu 0     | P2@cta 0,gpu 0       | P3@cta 0,gpu 0 ;
st.relaxed.sys x, 1 | st.relaxed.sys y, 1 | ld.acquire.sys r0, x | ld.acquire.sys r2, y ;
                   |                    | ld.acquire.sys r1, y | ld.acquire.sys r3, x ;
exists (P2:r0 == 1 /\ P2:r1 == 0 /\ P3:r2 == 1 /\ P3:r3 == 0)
)"},
    {"ptx-corr-weak", R"(
PTX
P0@cta 0,gpu 0 | P1@cta 0,gpu 0 ;
st.weak x, 1   | ld.weak r0, x  ;
               | ld.weak r1, x  ;
exists (P1:r0 == 1 /\ P1:r1 == 0)
)"},
    {"ptx-fig6-co-not-total", R"(
PTX
P0@cta 0,gpu 0 | P1@cta 0,gpu 0 | P2@cta 0,gpu 0      | P3@cta 0,gpu 0      ;
st.weak x, 1   | st.weak x, 2   | ld.acquire.sys r0, x | ld.acquire.sys r2, x ;
               |                | ld.acquire.sys r1, x | ld.acquire.sys r3, x ;
exists (P2:r0 == 1 /\ P2:r1 == 2 /\ P3:r2 == 2 /\ P3:r3 == 1)
)"},
    {"ptx-rmw-mutex-entry", R"(
PTX
P0@cta 0,gpu 0           | P1@cta 1,gpu 0           ;
atom.acq.gpu.add r1, in, 1 | atom.acq.gpu.add r1, in, 1 ;
exists (P0:r1 == P1:r1)
)"},
    {"vk-mp-atomic-rel-acq", R"(
VULKAN
P0@sg 0,wg 0,qf 0          | P1@sg 0,wg 1,qf 0           ;
st.atom.dv.sc0 data, 1     | ld.atom.acq.dv.sc0 r0, flag ;
st.atom.rel.dv.sc0 flag, 1 | ld.atom.dv.sc0 r1, data     ;
exists (P1:r0 == 1 /\ P1:r1 == 0)
)"},
    {"vk-mp-relaxed", R"(
VULKAN
P0@sg 0,wg 0,qf 0        | P1@sg 0,wg 1,qf 0       ;
st.atom.dv.sc0 data, 1   | ld.atom.dv.sc0 r0, flag ;
st.atom.dv.sc0 flag, 1   | ld.atom.dv.sc0 r1, data ;
exists (P1:r0 == 1 /\ P1:r1 == 0)
)"},
    {"vk-mp-scope-too-small", R"(
VULKAN
P0@sg 0,wg 0,qf 0          | P1@sg 0,wg 1,qf 0           ;
st.atom.wg.sc0 data, 1     | ld.atom.acq.wg.sc0 r0, flag ;
st.atom.rel.wg.sc0 flag, 1 | ld.atom.wg.sc0 r1, data     ;
exists (P1:r0 == 1 /\ P1:r1 == 0)
)"},
    {"vk-mp-fences", R"(
VULKAN
P0@sg 0,wg 0,qf 0        | P1@sg 0,wg 1,qf 0       ;
st.atom.dv.sc0 data, 1   | ld.atom.dv.sc0 r0, flag ;
membar.rel.dv.semsc0     | membar.acq.dv.semsc0    ;
st.atom.dv.sc0 flag, 1   | ld.atom.dv.sc0 r1, data ;
exists (P1:r0 == 1 /\ P1:r1 == 0)
)"},
    {"vk-fig6-race", R"(
VULKAN
P0@sg 0,wg 0,qf 0 | P1@sg 0,wg 1,qf 0 | P2@sg 0,wg 2,qf 0       | P3@sg 0,wg 3,qf 0       ;
st.sc0 x, 1       | st.sc0 x, 2       | ld.atom.acq.dv.sc0 r0, x | ld.atom.acq.dv.sc0 r2, x ;
                  |                   | ld.atom.acq.dv.sc0 r1, x | ld.atom.acq.dv.sc0 r3, x ;
exists (P2:r0 == 1 /\ P2:r1 == 2 /\ P3:r2 == 2 /\ P3:r3 == 1)
)"},
    {"vk-sb-relaxed", R"(
VULKAN
P0@sg 0,wg 0,qf 0      | P1@sg 0,wg 1,qf 0      ;
st.atom.dv.sc0 x, 1    | st.atom.dv.sc0 y, 1    ;
ld.atom.dv.sc0 r0, y   | ld.atom.dv.sc0 r1, x   ;
exists (P0:r0 == 0 /\ P1:r1 == 0)
)"},
};

class CrossValidation : public ::testing::TestWithParam<CrossCase> {};

TEST_P(CrossValidation, EnginesAgreeOnSafety)
{
    const CrossCase &c = GetParam();
    prog::Program program = litmus::parseLitmus(c.source);
    const cat::CatModel &model = modelFor(program);

    expl::ExplicitChecker explicitChecker(program, model);
    expl::ExplicitResult ground = explicitChecker.run();
    ASSERT_TRUE(ground.supported) << ground.unsupportedReason;
    ASSERT_FALSE(ground.timedOut);

    core::VerifierOptions options;
    options.validateWitness = true;
    core::Verifier verifier(program, model, options);
    core::VerificationResult smtResult = verifier.checkSafety();

    EXPECT_EQ(ground.conditionHolds, smtResult.holds)
        << "SMT and explicit engines disagree on " << c.name;

    // DRF agreement (only meaningful for models with flags: Vulkan).
    if (model.hasFlaggedAxioms()) {
        core::VerificationResult drf = verifier.checkCatSpec();
        EXPECT_EQ(ground.raceFound, !drf.holds)
            << "DRF disagreement on " << c.name;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, CrossValidation, ::testing::ValuesIn(kCases),
    [](const ::testing::TestParamInfo<CrossCase> &info) {
        std::string name = info.param.name;
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

} // namespace
} // namespace gpumc::test
