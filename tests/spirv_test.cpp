/**
 * @file
 * Tests for the SPIR-V front-end: module parsing, thread
 * instantiation, builtins, barriers, memory semantics — and
 * end-to-end verification of the shipped .spvasm kernels against
 * their @expect directives.
 */

#include <filesystem>
#include <gtest/gtest.h>

#include "spirv/spirv_parser.hpp"
#include "tests/test_util.hpp"

namespace gpumc::test {
namespace {

namespace fs = std::filesystem;

TEST(SpirvParser, InstantiatesThreadsFromGrid)
{
    const char *kernel = R"(
; @grid 2.2
OpName %x "x"
%uint = OpTypeInt 32 0
%uint_1 = OpConstant %uint 1
%ptr = OpTypePointer StorageBuffer %uint
%x = OpVariable %ptr StorageBuffer
%void = OpTypeVoid
%main = OpFunction %void None %fn
%entry = OpLabel
OpStore %x %uint_1
OpReturn
OpFunctionEnd
)";
    prog::Program p = spirv::loadSpirvProgram(kernel);
    EXPECT_EQ(p.arch, prog::Arch::Vulkan);
    ASSERT_EQ(p.numThreads(), 4);
    EXPECT_EQ(p.threads[0].placement.wg, 0);
    EXPECT_EQ(p.threads[2].placement.wg, 1);
    EXPECT_EQ(p.varIndex("x"), 0);
    EXPECT_EQ(p.threads[3].instrs.size(), 2u); // label + store
}

TEST(SpirvParser, BuiltinsAndFunctionVarsArePromoted)
{
    const char *kernel = R"(
; @grid 2.1
OpDecorate %lid BuiltIn LocalInvocationIndex
OpName %g "g"
%uint = OpTypeInt 32 0
%uint_3 = OpConstant %uint 3
%ptr = OpTypePointer StorageBuffer %uint
%fptr = OpTypePointer Function %uint
%inptr = OpTypePointer Input %uint
%g = OpVariable %ptr StorageBuffer
%lid = OpVariable %inptr Input
%tmp = OpVariable %fptr Function
%void = OpTypeVoid
%main = OpFunction %void None %fn
%entry = OpLabel
%5 = OpLoad %uint %lid
OpStore %tmp %5
%6 = OpLoad %uint %tmp
OpStore %g %6
OpReturn
OpFunctionEnd
)";
    prog::Program p = spirv::loadSpirvProgram(kernel);
    // Only %g is a real shared variable; %tmp became registers.
    EXPECT_EQ(p.numVars(), 1);
    // Thread 1 stores its local invocation index (1).
    bool foundStoreOfReg = false;
    for (const prog::Instruction &ins : p.threads[1].instrs) {
        if (ins.op == prog::Opcode::Store && ins.location == "g")
            foundStoreOfReg = ins.src.isReg();
    }
    EXPECT_TRUE(foundStoreOfReg);
}

TEST(SpirvParser, ControlBarrierExpands)
{
    const char *kernel = R"(
; @grid 2.1
OpName %x "x"
%uint = OpTypeInt 32 0
%uint_2 = OpConstant %uint 2
%uint_72 = OpConstant %uint 72
%ptr = OpTypePointer StorageBuffer %uint
%x = OpVariable %ptr StorageBuffer
%void = OpTypeVoid
%main = OpFunction %void None %fn
%entry = OpLabel
OpControlBarrier %uint_2 %uint_2 %uint_72
OpReturn
OpFunctionEnd
)";
    prog::Program p = spirv::loadSpirvProgram(kernel);
    // AcquireRelease (8) | WorkgroupMemory? 72 = 8 | 64 (UniformMemory):
    // release fence + barrier + acquire fence.
    std::vector<prog::Opcode> ops;
    for (const prog::Instruction &ins : p.threads[0].instrs)
        ops.push_back(ins.op);
    EXPECT_EQ(ops, (std::vector<prog::Opcode>{
                       prog::Opcode::Label, prog::Opcode::Fence,
                       prog::Opcode::Barrier, prog::Opcode::Fence}));
    EXPECT_EQ(p.threads[0].instrs[1].order, prog::MemOrder::Rel);
    EXPECT_TRUE(p.threads[0].instrs[1].semSc0);
    EXPECT_EQ(p.threads[0].instrs[3].order, prog::MemOrder::Acq);
}

TEST(SpirvParser, RejectsUnsupported)
{
    EXPECT_THROW(spirv::loadSpirvProgram(R"(
%void = OpTypeVoid
%main = OpFunction %void None %fn
%e = OpLabel
%1 = OpPhi %void %a %b
OpReturn
OpFunctionEnd
)"),
                 FatalError);
}

TEST(SpirvCorpus, MeetsExpectations)
{
    int checked = 0;
    for (const auto &entry :
         fs::directory_iterator(std::string(GPUMC_LITMUS_DIR) +
                                "/spirv")) {
        if (entry.path().extension() != ".spvasm")
            continue;
        prog::Program p = spirv::loadSpirvFile(entry.path().string());
        core::VerifierOptions options;
        options.validateWitness = true;
        core::Verifier verifier(p, vulkanModel(), options);

        auto expect = [&](const char *key) -> std::string {
            auto it = p.meta.find(key);
            return it == p.meta.end() ? "" : it->second;
        };
        std::string safety = expect("safety");
        if (!safety.empty()) {
            EXPECT_EQ(verifier.checkSafety().holds, safety == "holds")
                << entry.path();
            checked++;
        }
        std::string drf = expect("drf");
        if (!drf.empty()) {
            EXPECT_EQ(verifier.checkCatSpec().holds, drf == "racefree")
                << entry.path();
            checked++;
        }
        std::string liveness = expect("liveness");
        if (!liveness.empty()) {
            EXPECT_EQ(verifier.checkLiveness().holds, liveness == "live")
                << entry.path();
            checked++;
        }
    }
    EXPECT_GE(checked, 6) << "SPIR-V corpus missing expectations";
}

} // namespace
} // namespace gpumc::test
