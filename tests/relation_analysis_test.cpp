/**
 * @file
 * Unit tests for the relation (bounds) analysis of Table 3: base
 * relation lower/upper bounds, derived-relation propagation, and the
 * static set evaluation.
 */

#include <gtest/gtest.h>

#include "analysis/relation_analysis.hpp"
#include "litmus/litmus_parser.hpp"
#include "tests/test_util.hpp"

namespace gpumc::test {
namespace {

using analysis::Bounds;
using analysis::ExecAnalysis;
using analysis::RelationAnalysis;

struct Fixture {
    prog::Program program;
    prog::UnrolledProgram up;
    ExecAnalysis exec;
    RelationAnalysis ra;

    Fixture(const char *source, const cat::CatModel &model, int bound = 2)
        : program(litmus::parseLitmus(source)),
          up(prog::unroll(program, bound)), exec(up), ra(exec, model)
    {
    }

    int eventByDisplay(const std::string &needle) const
    {
        for (const prog::Event &e : up.events) {
            if (e.display.find(needle) != std::string::npos)
                return e.id;
        }
        return -1;
    }
};

TEST(RelationAnalysis, RfUpperBoundSameLocationOnly)
{
    Fixture f(R"(
PTX
P0@cta 0,gpu 0 | P1@cta 0,gpu 0 ;
st.weak x, 1   | ld.weak r0, x  ;
st.weak y, 1   | ld.weak r1, y  ;
exists (true)
)",
              ptx60Model());
    const Bounds &rf = f.ra.baseBounds("rf");
    EXPECT_TRUE(rf.lb.empty());
    int stx = f.eventByDisplay("st x");
    int sty = f.eventByDisplay("st y");
    int ldx = f.eventByDisplay("ld r0,x");
    int ldy = f.eventByDisplay("ld r1,y");
    EXPECT_TRUE(rf.ub.contains(stx, ldx));
    EXPECT_FALSE(rf.ub.contains(stx, ldy));
    EXPECT_FALSE(rf.ub.contains(sty, ldx));
    // Init writes are rf candidates too.
    EXPECT_TRUE(rf.ub.contains(0, ldx) || rf.ub.contains(1, ldx));
}

TEST(RelationAnalysis, CoInitIsLowerBound)
{
    Fixture f(R"(
PTX
P0@cta 0,gpu 0 ;
st.weak x, 1   ;
exists (true)
)",
              ptx60Model());
    const Bounds &co = f.ra.baseBounds("co");
    int init = 0;
    int st = f.eventByDisplay("st x");
    EXPECT_TRUE(co.lb.contains(init, st));
    EXPECT_FALSE(co.ub.contains(st, init)) << "nothing precedes init";
}

TEST(RelationAnalysis, ScopeRelationBounds)
{
    Fixture f(R"(
PTX
P0@cta 0,gpu 0      | P1@cta 1,gpu 0       ;
st.release.cta x, 1 | ld.acquire.gpu r0, x ;
exists (true)
)",
              ptx60Model());
    int st = f.eventByDisplay("st x");
    int ld = f.eventByDisplay("ld r0,x");
    // Different CTAs: the cta-scoped store cannot reach the other
    // thread, so sr does not relate them; scta neither.
    EXPECT_FALSE(f.ra.baseBounds("sr").ub.contains(st, ld));
    EXPECT_FALSE(f.ra.baseBounds("scta").ub.contains(st, ld));
    // po within each thread is a lower bound.
    const Bounds &po = f.ra.baseBounds("po");
    EXPECT_EQ(po.lb.size(), po.ub.size());
}

TEST(RelationAnalysis, SyncBarrierStaticIdsSplitBounds)
{
    Fixture f(R"(
PTX
P0@cta 0,gpu 0 | P1@cta 0,gpu 0 | P2@cta 0,gpu 0 ;
bar.cta.sync 1 | bar.cta.sync 1 | bar.cta.sync 2 ;
exists (true)
)",
              ptx60Model());
    int b0 = f.eventByDisplay("P0: cbar");
    int b1 = f.eventByDisplay("P1: cbar");
    int b2 = f.eventByDisplay("P2: cbar");
    const Bounds &sync = f.ra.baseBounds("sync_barrier");
    EXPECT_TRUE(sync.lb.contains(b0, b1)) << "equal static ids";
    EXPECT_FALSE(sync.ub.contains(b0, b2)) << "unequal static ids";
}

TEST(RelationAnalysis, SyncBarrierDynamicIdInUpperBoundOnly)
{
    Fixture f(R"(
PTX
P0@cta 0,gpu 0  | P1@cta 0,gpu 0 ;
ld.weak r2, z   | bar.cta.sync 1 ;
bar.cta.sync r2 |                ;
exists (true)
)",
              ptx60Model());
    int b0 = f.eventByDisplay("P0: cbar");
    int b1 = f.eventByDisplay("P1: cbar");
    const Bounds &sync = f.ra.baseBounds("sync_barrier");
    EXPECT_TRUE(sync.ub.contains(b0, b1));
    EXPECT_FALSE(sync.lb.contains(b0, b1)) << "id only known at runtime";
}

TEST(RelationAnalysis, DerivedDiffUsesLowerBoundOfSubtrahend)
{
    // For `loc \ po`, pairs known to be in po (lb) leave the ub.
    cat::CatModel model =
        cat::CatModel::fromSource("let r = loc \\ po\nempty r");
    Fixture f(R"(
PTX
P0@cta 0,gpu 0 ;
st.weak x, 1   ;
ld.weak r0, x  ;
exists (true)
)",
              model);
    int st = f.eventByDisplay("st x");
    int ld = f.eventByDisplay("ld r0,x");
    const Bounds &diff =
        f.ra.boundsOf(*model.lets()[0].expr);
    EXPECT_FALSE(diff.ub.contains(st, ld)) << "po pair removed";
    EXPECT_TRUE(diff.ub.contains(ld, st)) << "inverse not in po";
}

TEST(RelationAnalysis, ClosureUpperBoundIsTransitive)
{
    cat::CatModel model =
        cat::CatModel::fromSource("let p2 = po+\nempty p2");
    Fixture f(R"(
PTX
P0@cta 0,gpu 0 ;
st.weak x, 1   ;
st.weak y, 1   ;
st.weak z, 1   ;
exists (true)
)",
              model);
    int a = f.eventByDisplay("st x");
    int c = f.eventByDisplay("st z");
    EXPECT_TRUE(f.ra.boundsOf(*model.lets()[0].expr).ub.contains(a, c));
}

TEST(RelationAnalysis, SetOfEvaluatesTags)
{
    cat::CatModel model = cat::CatModel::fromSource(
        "let strong = M & A\nempty ([strong] ; po)");
    Fixture f(R"(
PTX
P0@cta 0,gpu 0       ;
st.weak x, 1         ;
st.relaxed.gpu y, 1  ;
exists (true)
)",
              model);
    const std::vector<bool> &strong =
        f.ra.setOf(*model.lets()[0].expr);
    int weak = f.eventByDisplay("st x");
    int strongSt = f.eventByDisplay("st y");
    EXPECT_FALSE(strong[weak]);
    EXPECT_TRUE(strong[strongSt]);
}

TEST(RelationAnalysis, MutualExclusionPrunesBounds)
{
    // Stores on the two branch arms never pair in po/loc bounds.
    Fixture f(R"(
PTX
P0@cta 0,gpu 0 ;
ld.weak r0, c  ;
beq r0, 0, LA  ;
st.weak x, 1   ;
goto LE        ;
LA:            ;
st.weak x, 2   ;
LE:            ;
exists (true)
)",
              ptx60Model());
    int s1 = f.eventByDisplay("st x,1");
    int s2 = f.eventByDisplay("st x,2");
    EXPECT_FALSE(f.ra.baseBounds("po").ub.contains(s1, s2));
    EXPECT_FALSE(f.ra.baseBounds("loc").ub.contains(s1, s2));
    EXPECT_FALSE(f.ra.baseBounds("co").ub.contains(s1, s2));
}

} // namespace
} // namespace gpumc::test
