/**
 * @file
 * Observability-layer tests (`ctest -L obs`): the Chrome trace JSON
 * and metrics JSON emitted by `trace::Tracer` must be strictly valid,
 * spans must nest properly per thread lane, the exported counters must
 * reconcile with `VerificationResult::stats`, and the corpus tool's
 * `--json` report must survive control characters injected through
 * file names and error messages.
 */

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include <sys/wait.h>

#include <gtest/gtest.h>

#include "core/batch_verifier.hpp"
#include "support/json.hpp"
#include "support/trace.hpp"
#include "tests/strict_json.hpp"
#include "tests/test_util.hpp"

namespace gpumc::test {
namespace {

namespace fs = std::filesystem;

/**
 * Arms the process-wide tracer for one test and guarantees it is
 * disabled and drained again afterwards, so obs tests cannot leak
 * events into each other (or into unrelated suites in this binary).
 */
class TracerGuard {
  public:
    TracerGuard()
    {
        trace::Tracer::instance().reset();
        trace::Tracer::instance().enable();
    }
    ~TracerGuard()
    {
        trace::Tracer::instance().disable();
        trace::Tracer::instance().reset();
    }
};

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::string
chromeTraceText()
{
    std::ostringstream os;
    trace::Tracer::instance().writeChromeTrace(os);
    return os.str();
}

std::string
metricsText()
{
    std::ostringstream os;
    trace::Tracer::instance().writeMetrics(os);
    return os.str();
}

prog::Program
mpWeakProgram()
{
    return litmus::parseLitmusFile(
        litmusPath("ptx/basic/mp-weak.litmus"));
}

struct FlatSpan {
    std::string name;
    int64_t tid = 0;
    int64_t ts = 0;
    int64_t dur = 0;
};

/** All "ph":"X" complete events of a strictly-parsed Chrome trace. */
std::vector<FlatSpan>
completeSpans(const JsonValue &traceDoc)
{
    std::vector<FlatSpan> spans;
    for (const JsonValue &event : traceDoc.at("traceEvents").array) {
        if (event.at("ph").str != "X")
            continue;
        FlatSpan span;
        span.name = event.at("name").str;
        span.tid = static_cast<int64_t>(event.at("tid").number);
        span.ts = static_cast<int64_t>(event.at("ts").number);
        span.dur = static_cast<int64_t>(event.at("dur").number);
        spans.push_back(std::move(span));
    }
    return spans;
}

/**
 * Chrome's model requires spans on one thread lane to nest: sorted by
 * (ts ascending, dur descending), every span must lie entirely inside
 * the open span below it on the stack, or start after it ended.
 */
void
expectWellNested(std::vector<FlatSpan> spans)
{
    std::map<int64_t, std::vector<FlatSpan>> byTid;
    for (FlatSpan &span : spans)
        byTid[span.tid].push_back(std::move(span));
    for (auto &[tid, lane] : byTid) {
        std::stable_sort(lane.begin(), lane.end(),
                         [](const FlatSpan &a, const FlatSpan &b) {
                             if (a.ts != b.ts)
                                 return a.ts < b.ts;
                             return a.dur > b.dur;
                         });
        std::vector<FlatSpan> stack;
        for (const FlatSpan &span : lane) {
            while (!stack.empty() &&
                   stack.back().ts + stack.back().dur <= span.ts) {
                stack.pop_back();
            }
            if (!stack.empty()) {
                const FlatSpan &parent = stack.back();
                EXPECT_GE(span.ts, parent.ts)
                    << span.name << " starts before enclosing "
                    << parent.name << " on lane " << tid;
                EXPECT_LE(span.ts + span.dur, parent.ts + parent.dur)
                    << span.name << " overflows enclosing "
                    << parent.name << " on lane " << tid;
            }
            stack.push_back(span);
        }
    }
}

std::map<std::string, int>
spanNameCounts(const std::vector<FlatSpan> &spans)
{
    std::map<std::string, int> counts;
    for (const FlatSpan &span : spans)
        counts[span.name]++;
    return counts;
}

TEST(JsonEscape, RoundTripsControlCharacters)
{
    const std::string original =
        "quote\" slash\\ nl\n tab\t cr\r bell\x07 nul\x01 done";
    JsonValue parsed =
        parseStrictJson("\"" + jsonEscape(original) + "\"");
    ASSERT_TRUE(parsed.isString());
    EXPECT_EQ(parsed.str, original);
}

TEST(StrictJson, RejectsMalformedDocuments)
{
    EXPECT_THROW(parseStrictJson("{\"a\": 1,}"), std::runtime_error);
    EXPECT_THROW(parseStrictJson("[1, 2] trailing"),
                 std::runtime_error);
    EXPECT_THROW(parseStrictJson("\"raw\ncontrol\""),
                 std::runtime_error);
    EXPECT_THROW(parseStrictJson("{\"a\": 01}"), std::runtime_error);
    EXPECT_THROW(parseStrictJson("{\"a\": \"\\x\"}"),
                 std::runtime_error);
    EXPECT_THROW(parseStrictJson("{\"a\": 1, \"a\": 2}"),
                 std::runtime_error);
}

TEST(Trace, CheckAllEmitsStrictlyValidWellNestedSpans)
{
    TracerGuard guard;
    prog::Program program = mpWeakProgram();
    core::Verifier verifier(program, ptx60Model());
    std::vector<core::VerificationResult> results = verifier.checkAll();
    ASSERT_EQ(results.size(), 3u);

    JsonValue doc = parseStrictJson(chromeTraceText());
    EXPECT_EQ(doc.at("displayTimeUnit").str, "ms");
    std::vector<FlatSpan> spans = completeSpans(doc);
    expectWellNested(spans);

    std::map<std::string, int> counts = spanNameCounts(spans);
    // One shared session: the pipeline phases ran exactly once...
    EXPECT_EQ(counts["session-build"], 1);
    EXPECT_EQ(counts["phase:unroll"], 1);
    EXPECT_EQ(counts["phase:exec-analysis"], 1);
    EXPECT_EQ(counts["phase:relation-analysis"], 1);
    EXPECT_EQ(counts["phase:structure-encode"], 1);
    // ...while each of the three properties got its own check and
    // encode interval, and every solver query its own solve interval
    // (PTX has no flagged axioms, so cat_spec holds without a query).
    EXPECT_EQ(counts["check"], 3);
    EXPECT_EQ(counts["encode"], 3);
    EXPECT_EQ(counts["solve"],
              static_cast<int>(results.back().stats.get(
                  "queriesOnSharedSession")));
    EXPECT_GE(counts["solve"], 2);
}

TEST(Trace, MetricsReconcileWithVerificationResultStats)
{
    TracerGuard guard;
    prog::Program program = mpWeakProgram();
    core::Verifier verifier(program, ptx60Model());
    std::vector<core::VerificationResult> results = verifier.checkAll();
    ASSERT_EQ(results.size(), 3u);

    // The tracer's counter registry must agree with the per-result
    // stats: gauges carry the maximum, everything else the sum.
    trace::Tracer &tracer = trace::Tracer::instance();
    std::map<std::string, int64_t> sums;
    std::map<std::string, int64_t> maxes;
    for (const core::VerificationResult &result : results) {
        for (const auto &[key, value] : result.stats.all()) {
            sums[key] += value;
            maxes[key] = std::max(maxes[key], value);
        }
    }
    for (const auto &[key, sum] : sums) {
        bool gauge =
            key == "events" || key == "smtVars" || key == "smtClauses";
        EXPECT_EQ(tracer.counter(key), gauge ? maxes[key] : sum)
            << "counter " << key;
    }

    // The span aggregates of the metrics export must reconcile with
    // the phase times the results report. Build-phase spans come from
    // the same stopwatches (floored vs rounded microseconds: <= 2 off);
    // the solve spans wrap the solve calls with only bookkeeping
    // between the two clocks.
    JsonValue metrics = parseStrictJson(metricsText());
    const JsonValue &spanAggs = metrics.at("spans");
    auto total = [&](const char *name) {
        return static_cast<int64_t>(
            spanAggs.at(name).at("totalUs").number);
    };
    EXPECT_NEAR(total("phase:unroll"),
                results[0].stats.get("phaseUnrollUs"), 2.0);
    EXPECT_NEAR(total("phase:exec-analysis"),
                results[0].stats.get("phaseExecAnalysisUs"), 2.0);
    EXPECT_NEAR(total("phase:relation-analysis"),
                results[0].stats.get("phaseRelAnalysisUs"), 2.0);
    EXPECT_NEAR(total("solve"), sums["phaseSolveUs"], 10000.0);

    // Every counter in the registry appears in the metrics JSON.
    const JsonValue &counterObj = metrics.at("counters");
    for (const auto &[key, value] : tracer.counters()) {
        ASSERT_TRUE(counterObj.has(key)) << "metrics miss " << key;
        EXPECT_EQ(static_cast<int64_t>(counterObj.at(key).number),
                  value);
    }
}

TEST(Trace, PerRelationCountersCoverBaseRelations)
{
    TracerGuard guard;
    // corw-cycle's coherence axiom survives the relation analysis with
    // a non-empty upper bound, so the encoder does real per-relation
    // work (mp-weak is decided statically and would attribute nothing).
    prog::Program program = litmus::parseLitmusFile(
        litmusPath("ptx/basic/corw-cycle.litmus"));
    core::Verifier verifier(program, ptx60Model());
    verifier.checkSafety();

    std::map<std::string, int64_t> counters =
        trace::Tracer::instance().counters();
    // The communication relations of every .cat model must be
    // attributed, with both bound sizes from the relation analysis.
    for (const char *rel : {"po", "rf", "co"}) {
        std::string prefix = std::string("rel.") + rel;
        EXPECT_TRUE(counters.count(prefix + ".ubPairs")) << prefix;
        EXPECT_TRUE(counters.count(prefix + ".lbPairs")) << prefix;
        EXPECT_GT(counters[prefix + ".ubPairs"], 0) << prefix;
    }
    // Bound counters always come in lb/ub pairs, and at least one
    // relation accumulated encoding sizes.
    bool sawEncodingSize = false;
    for (const auto &[key, value] : counters) {
        if (key.rfind("rel.", 0) != 0)
            continue;
        auto suffixIs = [&](const char *suffix) {
            std::string s(suffix);
            return key.size() > s.size() &&
                   key.compare(key.size() - s.size(), s.size(), s) == 0;
        };
        if (suffixIs(".ubPairs")) {
            std::string base = key.substr(0, key.size() - 8);
            EXPECT_TRUE(counters.count(base + ".lbPairs")) << key;
        }
        if (suffixIs(".vars") || suffixIs(".clauses"))
            sawEncodingSize = sawEncodingSize || value > 0;
    }
    EXPECT_TRUE(sawEncodingSize);
}

TEST(Trace, BatchVerifierWorkersGetNamedLanesAndJobSpans)
{
    TracerGuard guard;
    prog::Program program = mpWeakProgram();
    std::vector<core::BatchJob> batch;
    for (core::Property property :
         {core::Property::Safety, core::Property::Liveness,
          core::Property::CatSpec, core::Property::Safety}) {
        core::BatchJob job;
        job.program = &program;
        job.model = &ptx60Model();
        job.property = property;
        job.label = "mp-weak";
        batch.push_back(std::move(job));
    }
    core::BatchVerifier engine(2);
    std::vector<core::BatchEntry> entries = engine.run(batch);
    ASSERT_EQ(entries.size(), batch.size());
    for (const core::BatchEntry &entry : entries)
        EXPECT_FALSE(entry.failed) << entry.error;

    JsonValue doc = parseStrictJson(chromeTraceText());
    std::vector<FlatSpan> spans = completeSpans(doc);
    expectWellNested(spans);
    EXPECT_EQ(spanNameCounts(spans)["batch-job"],
              static_cast<int>(batch.size()));

    int workerLanes = 0;
    for (const JsonValue &event : doc.at("traceEvents").array) {
        if (event.at("ph").str == "M" &&
            event.at("name").str == "thread_name" &&
            event.at("args").at("name").str == "batch-worker") {
            workerLanes++;
        }
    }
    EXPECT_GE(workerLanes, 1);
    EXPECT_LE(workerLanes, 2);
}

TEST(Trace, DisabledTracerCollectsNothing)
{
    trace::Tracer &tracer = trace::Tracer::instance();
    tracer.disable();
    tracer.reset();

    prog::Program program = mpWeakProgram();
    core::Verifier verifier(program, ptx60Model());
    verifier.checkSafety();

    EXPECT_TRUE(tracer.counters().empty());
    JsonValue doc = parseStrictJson(chromeTraceText());
    EXPECT_TRUE(doc.at("traceEvents").array.empty());
    JsonValue metrics = parseStrictJson(metricsText());
    EXPECT_TRUE(metrics.at("counters").object.empty());
    EXPECT_TRUE(metrics.at("spans").object.empty());
}

/**
 * End-to-end round trip of the corpus tool's machine-readable outputs:
 * a corpus containing a file whose *name* embeds a newline and whose
 * parse error lands in the report must still produce strictly valid
 * JSON, as must the --trace/--metrics files of the same run.
 */
TEST(Trace, CorpusJsonSurvivesControlCharacters)
{
    fs::path dir =
        fs::temp_directory_path() / "gpumc_obs_corpus_test";
    fs::remove_all(dir);
    fs::create_directories(dir);

    // One healthy test, plus one unparsable file with a newline in its
    // file name (legal on POSIX) so control characters flow through
    // the "file" fields and the error message.
    fs::copy_file(litmusPath("ptx/basic/mp-weak.litmus"),
                  dir / "valid.litmus");
    {
        std::ofstream bad(dir / "bad\nname.litmus");
        bad << "this is not a litmus test\n";
    }

    fs::path jsonPath = dir / "report.json";
    fs::path tracePath = dir / "trace.json";
    fs::path metricsPath = dir / "metrics.json";
    std::string cmd = std::string("\"") + GPUMC_TOOL_DIR +
                      "/gpumc-corpus\" \"" + dir.string() +
                      "\" --jobs=2 --json=\"" + jsonPath.string() +
                      "\" --trace=\"" + tracePath.string() +
                      "\" --metrics=\"" + metricsPath.string() +
                      "\" > /dev/null 2>&1";
    int status = std::system(cmd.c_str());
    // The broken file is an ERROR verdict, so the tool exits 1 — but
    // it must exit cleanly, not crash.
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 1);

    JsonValue report = parseStrictJson(readFile(jsonPath.string()));
    ASSERT_TRUE(report.at("errors").isArray());
    ASSERT_EQ(report.at("errors").array.size(), 1u);
    const JsonValue &error = report.at("errors").array[0];
    EXPECT_NE(error.at("file").str.find('\n'), std::string::npos)
        << "newline in the file name must round-trip";
    EXPECT_FALSE(error.at("message").str.empty());
    EXPECT_FALSE(report.at("queries").array.empty());
    EXPECT_EQ(static_cast<int>(
                  report.at("summary").at("errors").number),
              1);

    // The tracing side-channels of the same run parse strictly too.
    JsonValue traceDoc =
        parseStrictJson(readFile(tracePath.string()));
    EXPECT_FALSE(traceDoc.at("traceEvents").array.empty());
    expectWellNested(completeSpans(traceDoc));
    JsonValue metrics =
        parseStrictJson(readFile(metricsPath.string()));
    EXPECT_FALSE(metrics.at("counters").object.empty());

    fs::remove_all(dir);
}

} // namespace
} // namespace gpumc::test
