/**
 * @file
 * The portfolio backend and the builtin solver's cooperative
 * interrupt / cube-and-conquer machinery.
 *
 * The portfolio's core obligation is verdict identity: whichever lane
 * wins the race (forced here with PortfolioBackend::setTestDelays so
 * both orders actually happen), the answer must equal what either
 * backend computes alone — racing may only change wall time and which
 * model serves witness extraction. The interrupt tests pin the
 * contract the racer relies on: interrupt() stops an in-flight solve
 * promptly from another thread, and interrupt-then-clearInterrupt
 * leaves the backend fully usable, including on a shared incremental
 * session where the losing lane is cancelled on every query.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "smt/backend.hpp"
#include "smt/portfolio_backend.hpp"
#include "support/thread_budget.hpp"
#include "tests/test_util.hpp"

namespace gpumc::test {
namespace {

/** Reset the global test delays / thread budget on scope exit. */
struct PortfolioEnv {
    PortfolioEnv() { ThreadBudget::instance().setTotal(4); }
    ~PortfolioEnv()
    {
        smt::PortfolioBackend::setTestDelays(0, 0);
        ThreadBudget::instance().setTotal(0);
    }
};

/** PHP(holes+1, holes): Unsat, needs real search. */
void
assertPigeonhole(smt::Backend &backend, int holes)
{
    const int pigeons = holes + 1;
    std::vector<std::vector<smt::Lit>> var(pigeons);
    for (int p = 0; p < pigeons; ++p)
        for (int h = 0; h < holes; ++h)
            var[p].push_back(backend.newVar());
    for (int p = 0; p < pigeons; ++p)
        backend.addClause(var[p]);
    for (int h = 0; h < holes; ++h)
        for (int p = 0; p < pigeons; ++p)
            for (int q = p + 1; q < pigeons; ++q)
                backend.addClause({-var[p][h], -var[q][h]});
}

/** A satisfiable formula with some propagation structure; returns the
 *  asserted clauses so the model can be checked against them. */
std::vector<std::vector<smt::Lit>>
assertSatisfiable(smt::Backend &backend)
{
    smt::Lit a = backend.newVar();
    smt::Lit b = backend.newVar();
    smt::Lit c = backend.newVar();
    smt::Lit d = backend.newVar();
    std::vector<std::vector<smt::Lit>> clauses = {
        {a}, {-a, b}, {-b, c, d}, {-c, -d}, {c, d}};
    for (const std::vector<smt::Lit> &clause : clauses)
        backend.addClause(clause);
    return clauses;
}

bool
modelSatisfies(const smt::Backend &backend,
               const std::vector<std::vector<smt::Lit>> &clauses)
{
    for (const std::vector<smt::Lit> &clause : clauses) {
        bool sat = false;
        for (smt::Lit lit : clause)
            sat = sat || backend.modelValue(lit) == smt::TruthValue::True;
        if (!sat)
            return false;
    }
    return true;
}

TEST(Portfolio, VerdictIdenticalWhicheverLaneWins)
{
    PortfolioEnv env;
    struct Forcing {
        int64_t builtinDelayMs;
        int64_t z3DelayMs;
        const char *winsKey;
    };
    for (const Forcing &f :
         {Forcing{0, 500, "portfolio.winsBuiltin"},
          Forcing{500, 0, "portfolio.winsZ3"}}) {
        smt::PortfolioBackend::setTestDelays(f.builtinDelayMs,
                                             f.z3DelayMs);

        smt::PortfolioBackend unsatCase;
        assertPigeonhole(unsatCase, 4);
        EXPECT_EQ(unsatCase.solve({}), smt::SolveResult::Unsat);

        smt::PortfolioBackend satCase;
        auto clauses = assertSatisfiable(satCase);
        ASSERT_EQ(satCase.solve({}), smt::SolveResult::Sat);
        // The winning lane's model answers modelValue() and must
        // satisfy every asserted clause.
        EXPECT_TRUE(modelSatisfies(satCase, clauses));

        // The forced lane actually won (when a helper slot was free;
        // the sequential fallback is builtin and verdict-identical).
        std::map<std::string, int64_t> stats = satCase.statistics();
        if (stats.at("portfolio.races") > 0)
            EXPECT_GT(stats.at(f.winsKey), 0) << f.winsKey;
        EXPECT_EQ(stats.at("portfolio.races") +
                      stats.at("portfolio.sequentialSolves"),
                  stats.at("solveCalls"));
    }
}

TEST(Portfolio, LoserLaneCancellationIsInvisibleAcrossQueries)
{
    PortfolioEnv env;
    // Slow the builtin lane so Z3 wins and the builtin solver gets
    // interrupted on every query of an incremental sequence — the
    // losing lane must stay usable (and correct) across all of them.
    smt::PortfolioBackend::setTestDelays(300, 0);
    smt::PortfolioBackend backend;
    assertPigeonhole(backend, 4);
    smt::Lit act = backend.mkActivationLit();
    smt::Lit extra = backend.newVar();
    backend.addClause({-act, extra});

    EXPECT_EQ(backend.solve({act}), smt::SolveResult::Unsat);
    EXPECT_EQ(backend.solve({-act}), smt::SolveResult::Unsat);
    EXPECT_EQ(backend.solve({}), smt::SolveResult::Unsat);
    // Now let the builtin lane win the last word with the same state.
    smt::PortfolioBackend::setTestDelays(0, 300);
    EXPECT_EQ(backend.solve({act}), smt::SolveResult::Unsat);
}

class InterruptContract
    : public ::testing::TestWithParam<smt::BackendKind> {};

TEST_P(InterruptContract, InterruptThenClearLeavesBackendUsable)
{
    std::unique_ptr<smt::Backend> backend = smt::makeBackend(GetParam());
    assertPigeonhole(*backend, 6);
    // No solve in flight: the request may cancel the next solve, but
    // after clearInterrupt() the backend must answer normally. This
    // pins Z3's re-arm-on-next-check behaviour that the portfolio's
    // no-op Z3Backend::clearInterrupt relies on.
    backend->interrupt();
    backend->clearInterrupt();
    EXPECT_EQ(backend->solve(), smt::SolveResult::Unsat);
}

TEST_P(InterruptContract, InterruptFromAnotherThreadStopsUnlimitedSolve)
{
    std::unique_ptr<smt::Backend> backend = smt::makeBackend(GetParam());
    // PHP(12,11) takes minutes unaided; the cross-thread interrupt has
    // to be what brings the unlimited solve back.
    assertPigeonhole(*backend, 11);
    std::thread canceller([&backend] {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        backend->interrupt();
    });
    Stopwatch watch;
    EXPECT_EQ(backend->solve(), smt::SolveResult::Unknown);
    EXPECT_LT(watch.elapsedMs(), 10000.0);
    canceller.join();

    // Reuse after the cancel: learned clauses may remain, the verdict
    // machinery must be fresh.
    backend->clearInterrupt();
    smt::Lit x = backend->newVar();
    backend->addClause({x});
    EXPECT_EQ(backend->solve({-x}), smt::SolveResult::Unsat);
}

INSTANTIATE_TEST_SUITE_P(Backends, InterruptContract,
                         ::testing::Values(smt::BackendKind::Builtin,
                                           smt::BackendKind::Z3,
                                           smt::BackendKind::Portfolio),
                         [](const auto &info) {
                             return smt::backendKindName(info.param);
                         });

TEST(PortfolioBuiltinLane, PendingInterruptCancelsNextSolve)
{
    // Builtin-specific sharpening of the contract: a pending interrupt
    // is observed by the very next solve (the racer depends on a
    // sleeping-then-woken loser coming back Unknown quickly).
    std::unique_ptr<smt::Backend> backend =
        smt::makeBackend(smt::BackendKind::Builtin);
    assertPigeonhole(*backend, 6);
    backend->interrupt();
    Stopwatch watch;
    EXPECT_EQ(backend->solve(), smt::SolveResult::Unknown);
    EXPECT_LT(watch.elapsedMs(), 1000.0);
    backend->clearInterrupt();
    EXPECT_EQ(backend->solve(), smt::SolveResult::Unsat);
}

TEST(Portfolio, InterruptThenSequentialFallbackStaysDecisive)
{
    // Regression: with the thread budget starved (no helper slot) the
    // portfolio solves sequentially on the builtin lane. A pending
    // interrupt — e.g. raised by a caller between queries, or left by
    // a prior race — used to leak into that solve and turn a decidable
    // query into a spurious Unknown, because only the racing path
    // cleared the lanes. solve() must clear both lanes on entry.
    ThreadBudget::instance().setTotal(1);
    smt::PortfolioBackend backend;
    auto clauses = assertSatisfiable(backend);
    backend.interrupt();
    EXPECT_EQ(backend.solve({}), smt::SolveResult::Sat);
    EXPECT_TRUE(modelSatisfies(backend, clauses));
    std::map<std::string, int64_t> stats = backend.statistics();
    EXPECT_GT(stats.at("portfolio.sequentialSolves"), 0)
        << "budget was not starved; the test exercised the racing "
           "path instead of the sequential fallback";
    ThreadBudget::instance().setTotal(0);
}

/** checkAll() verdicts for one litmus program under the given options. */
std::vector<core::VerificationResult>
verdictsOf(const prog::Program &program, const cat::CatModel &model,
           smt::BackendKind backend, int cubeDepth = 0)
{
    core::VerifierOptions vo;
    vo.backend = backend;
    vo.validateWitness = true;
    vo.cubeDepth = cubeDepth;
    core::Verifier verifier(program, model, vo);
    return verifier.checkAll();
}

TEST(PortfolioVerifier, LitmusVerdictsMatchBothSingleBackends)
{
    PortfolioEnv env;
    const char *files[] = {"vulkan/basic/mp-rel-acq.litmus",
                           "ptx/paper/fig7-sb-statbar.litmus"};
    for (const char *file : files) {
        prog::Program program =
            litmus::parseLitmusFile(litmusPath(file));
        const cat::CatModel &model = modelFor(program);
        std::vector<core::VerificationResult> builtin =
            verdictsOf(program, model, smt::BackendKind::Builtin);
        std::vector<core::VerificationResult> z3 =
            verdictsOf(program, model, smt::BackendKind::Z3);

        // Race both ways: builtin winning, then Z3 winning.
        for (int64_t builtinDelay : {int64_t{0}, int64_t{200}}) {
            smt::PortfolioBackend::setTestDelays(builtinDelay,
                                                 200 - builtinDelay);
            std::vector<core::VerificationResult> portfolio =
                verdictsOf(program, model, smt::BackendKind::Portfolio);
            ASSERT_EQ(portfolio.size(), builtin.size());
            for (size_t i = 0; i < portfolio.size(); ++i) {
                EXPECT_EQ(portfolio[i].holds, builtin[i].holds)
                    << file << " property " << i;
                EXPECT_EQ(portfolio[i].unknown, builtin[i].unknown)
                    << file << " property " << i;
                EXPECT_EQ(portfolio[i].holds, z3[i].holds)
                    << file << " property " << i;
                EXPECT_EQ(portfolio[i].unknown, z3[i].unknown)
                    << file << " property " << i;
            }
        }
    }
}

TEST(PortfolioVerifier, StatsLandUnderPortfolioPrefixedSolverKeys)
{
    PortfolioEnv env;
    prog::Program program = litmus::parseLitmusFile(
        litmusPath("vulkan/basic/mp-rel-acq.litmus"));
    std::vector<core::VerificationResult> results =
        verdictsOf(program, vulkanModel(), smt::BackendKind::Portfolio);
    ASSERT_FALSE(results.empty());

    // Lane counters are namespaced: a cancelled lane's conflict count
    // must never masquerade as the plain `solver.conflicts` of a
    // single-backend run. Only portfolio-prefixed lane keys plus the
    // portfolio's own solveCalls may appear under `solver.`.
    bool sawPortfolioKey = false;
    for (const auto &[key, value] : results[0].stats.all()) {
        if (key.rfind("solver.", 0) != 0)
            continue;
        sawPortfolioKey =
            sawPortfolioKey || key.rfind("solver.portfolio.", 0) == 0;
        EXPECT_TRUE(key.rfind("solver.portfolio.", 0) == 0 ||
                    key == "solver.solveCalls")
            << key;
    }
    EXPECT_TRUE(sawPortfolioKey);
    EXPECT_EQ(results[0].stats.get("solver.conflicts"), 0);
}

class CubeAndConquer : public ::testing::TestWithParam<int> {};

TEST_P(CubeAndConquer, VerdictsMatchPlainSolve)
{
    PortfolioEnv env;
    const smt::BackendConfig config{GetParam()};

    std::unique_ptr<smt::Backend> unsatCase =
        smt::makeBackend(smt::BackendKind::Builtin, config);
    assertPigeonhole(*unsatCase, 6);
    EXPECT_EQ(unsatCase->solve(), smt::SolveResult::Unsat);

    std::unique_ptr<smt::Backend> satCase =
        smt::makeBackend(smt::BackendKind::Builtin, config);
    auto clauses = assertSatisfiable(*satCase);
    ASSERT_EQ(satCase->solve(), smt::SolveResult::Sat);
    EXPECT_TRUE(modelSatisfies(*satCase, clauses));
    if (GetParam() > 0) {
        std::map<std::string, int64_t> stats = satCase->statistics();
        EXPECT_GE(stats.at("cube.rounds"), 1);
        EXPECT_GE(stats.at("cube.solves"), 1);
    }

    // Incremental reuse with assumptions falls back to the plain
    // solver path or stays correct through cubes — either way the
    // verdict under an assumption must flip with its sign.
    smt::Lit y = satCase->newVar();
    satCase->addClause({y});
    EXPECT_EQ(satCase->solve({-y}), smt::SolveResult::Unsat);
    EXPECT_EQ(satCase->solve({y}), smt::SolveResult::Sat);
}

INSTANTIATE_TEST_SUITE_P(Depths, CubeAndConquer,
                         ::testing::Values(0, 1, 3),
                         [](const auto &info) {
                             return "depth" +
                                    std::to_string(info.param);
                         });

TEST(CubeAndConquer, VerifierVerdictsMatchUncubedRun)
{
    PortfolioEnv env;
    prog::Program program = litmus::parseLitmusFile(
        litmusPath("vulkan/basic/mp-rel-acq.litmus"));
    std::vector<core::VerificationResult> plain = verdictsOf(
        program, vulkanModel(), smt::BackendKind::Builtin, 0);
    std::vector<core::VerificationResult> cubed = verdictsOf(
        program, vulkanModel(), smt::BackendKind::Builtin, 3);
    ASSERT_EQ(plain.size(), cubed.size());
    for (size_t i = 0; i < plain.size(); ++i) {
        EXPECT_EQ(plain[i].holds, cubed[i].holds) << i;
        EXPECT_EQ(plain[i].unknown, cubed[i].unknown) << i;
        EXPECT_EQ(plain[i].detail, cubed[i].detail) << i;
    }
}

} // namespace
} // namespace gpumc::test
