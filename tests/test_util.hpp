/**
 * @file
 * Shared helpers for the gpumc test suite: locating the shipped .cat
 * models and running litmus sources end to end.
 */

#ifndef GPUMC_TESTS_TEST_UTIL_HPP
#define GPUMC_TESTS_TEST_UTIL_HPP

#include <string>

#include "cat/model.hpp"
#include "core/verifier.hpp"
#include "litmus/litmus_parser.hpp"

namespace gpumc::test {

inline std::string
catPath(const std::string &file)
{
    return std::string(GPUMC_CAT_DIR) + "/" + file;
}

inline std::string
litmusPath(const std::string &file)
{
    return std::string(GPUMC_LITMUS_DIR) + "/" + file;
}

inline const cat::CatModel &
ptx60Model()
{
    static const cat::CatModel model =
        cat::CatModel::fromFile(catPath("ptx-v6.0.cat"));
    return model;
}

inline const cat::CatModel &
ptx75Model()
{
    static const cat::CatModel model =
        cat::CatModel::fromFile(catPath("ptx-v7.5.cat"));
    return model;
}

inline const cat::CatModel &
vulkanModel()
{
    static const cat::CatModel model =
        cat::CatModel::fromFile(catPath("vulkan.cat"));
    return model;
}

inline const cat::CatModel &
modelFor(const prog::Program &program)
{
    return program.arch == prog::Arch::Ptx ? ptx75Model() : vulkanModel();
}

/** Run the safety check of a litmus source; returns `holds`. */
inline bool
checkSafety(const std::string &source,
            core::VerifierOptions options = {})
{
    prog::Program program = litmus::parseLitmus(source);
    options.validateWitness = true;
    core::Verifier verifier(program, modelFor(program), options);
    return verifier.checkSafety().holds;
}

/** Run a safety check under an explicit model. */
inline bool
checkSafety(const std::string &source, const cat::CatModel &model,
            core::VerifierOptions options = {})
{
    prog::Program program = litmus::parseLitmus(source);
    options.validateWitness = true;
    core::Verifier verifier(program, model, options);
    return verifier.checkSafety().holds;
}

} // namespace gpumc::test

#endif // GPUMC_TESTS_TEST_UTIL_HPP
