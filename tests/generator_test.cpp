/**
 * @file
 * Tests for the litmus generators backing Table 5 and Fig. 15: suite
 * shapes, known verdicts of selected generated tests, and the scaled
 * pattern families.
 */

#include <gtest/gtest.h>

#include "litmus/generator.hpp"
#include "tests/test_util.hpp"

namespace gpumc::test {
namespace {

using litmus::GeneratedTest;
using litmus::ScaledPattern;

const GeneratedTest *
find(const std::vector<GeneratedTest> &suite, const std::string &name)
{
    for (const GeneratedTest &t : suite) {
        if (t.name == name)
            return &t;
    }
    return nullptr;
}

TEST(Generator, SuiteShapes)
{
    auto ptx60 = litmus::generatePatternSuite(prog::Arch::Ptx, false);
    auto ptx75 = litmus::generatePatternSuite(prog::Arch::Ptx, true);
    auto vulkan = litmus::generatePatternSuite(prog::Arch::Vulkan, false);
    EXPECT_GT(ptx60.size(), 100u);
    EXPECT_GT(ptx75.size(), ptx60.size()) << "proxy tests added";
    EXPECT_GT(vulkan.size(), 100u);
    for (const GeneratedTest &t : ptx60)
        EXPECT_FALSE(t.usesProxies);
    int proxies = 0;
    for (const GeneratedTest &t : ptx75)
        proxies += t.usesProxies ? 1 : 0;
    EXPECT_GE(proxies, 5);

    auto progress = litmus::generateProgressSuite(prog::Arch::Ptx);
    EXPECT_GT(progress.size(), 30u);
    for (const GeneratedTest &t : progress)
        EXPECT_TRUE(t.isProgress);
}

TEST(Generator, KnownVerdictsHold)
{
    auto suite = litmus::generatePatternSuite(prog::Arch::Ptx, false);

    struct Expectation {
        const char *name;
        bool holds;
    } expectations[] = {
        {"mp+plain+sys+split", true},
        {"mp+relacq+sys+split", false},
        {"mp+relonly+sys+split", true},  // acquire side missing
        {"mp+acqonly+sys+split", true},  // release side missing
        {"mp+relacq+cta+split", true},   // scope too small
        {"sb+fencesc+sys+split", false},
        {"sb+fence+sys+split", true},
        {"corr+relacq+sys+split", false},
        {"coww+plain+sys+split", true},  // weak writes: unordered co
        {"coww+relacq+sys+split", false},
    };
    for (const Expectation &e : expectations) {
        const GeneratedTest *t = find(suite, e.name);
        ASSERT_NE(t, nullptr) << e.name;
        core::Verifier verifier(t->program, ptx60Model(), {});
        EXPECT_EQ(verifier.checkSafety().holds, e.holds) << e.name;
    }
}

TEST(Generator, ProgressVerdictsHold)
{
    auto suite = litmus::generateProgressSuite(prog::Arch::Vulkan);
    for (const char *name :
         {"spin+relacq+dv+split+set+w1", "handshake+3+complete"}) {
        const GeneratedTest *t = find(suite, name);
        ASSERT_NE(t, nullptr) << name;
        core::Verifier verifier(t->program, vulkanModel(), {});
        EXPECT_TRUE(verifier.checkLiveness().holds) << name;
    }
    for (const char *name :
         {"spin+relacq+dv+split+unset+w1", "handshake+3+deadlock"}) {
        const GeneratedTest *t = find(suite, name);
        ASSERT_NE(t, nullptr) << name;
        core::Verifier verifier(t->program, vulkanModel(), {});
        EXPECT_FALSE(verifier.checkLiveness().holds) << name;
    }
}

TEST(Generator, ScaledPatternsGrowAndStayStraightLine)
{
    for (ScaledPattern pattern :
         {ScaledPattern::MP, ScaledPattern::SB, ScaledPattern::LB}) {
        prog::Program small =
            litmus::generateScaled(pattern, prog::Arch::Ptx, 2);
        prog::Program big =
            litmus::generateScaled(pattern, prog::Arch::Ptx, 10);
        EXPECT_EQ(small.numThreads(), 2);
        EXPECT_EQ(big.numThreads(), 10);
        EXPECT_TRUE(big.isStraightLine());
    }
    prog::Program iriw =
        litmus::generateScaled(ScaledPattern::IRIW, prog::Arch::Vulkan,
                               8);
    EXPECT_EQ(iriw.numThreads(), 8);
}

TEST(Generator, ScaledPatternsKeepTheirWeakVerdict)
{
    // The scaled families encode classically-allowed weak behaviours:
    // they must stay reachable at any size.
    for (int threads : {2, 6}) {
        prog::Program p = litmus::generateScaled(
            ScaledPattern::SB, prog::Arch::Ptx, threads);
        core::Verifier verifier(p, ptx75Model(), {});
        EXPECT_TRUE(verifier.checkSafety().holds)
            << "SB-" << threads;
    }
    prog::Program mp = litmus::generateScaled(ScaledPattern::MP,
                                              prog::Arch::Ptx, 5);
    core::Verifier verifier(mp, ptx75Model(), {});
    EXPECT_TRUE(verifier.checkSafety().holds);
}

} // namespace
} // namespace gpumc::test
