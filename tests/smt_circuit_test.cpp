/**
 * @file
 * Unit and property tests for the circuit builder and the bit-vector
 * layer, run against both backends.
 */

#include <gtest/gtest.h>

#include <random>

#include "smt/bitvector.hpp"
#include "smt/builtin_backend.hpp"
#include "smt/z3_backend.hpp"

namespace gpumc::smt {
namespace {

class CircuitTest : public ::testing::TestWithParam<BackendKind> {
  protected:
    CircuitTest()
        : backend(makeBackend(GetParam())), circuit(*backend),
          bv(circuit)
    {
    }

    std::unique_ptr<Backend> backend;
    Circuit circuit;
    BitVecBuilder bv;
};

TEST_P(CircuitTest, ConstantsFold)
{
    EXPECT_EQ(circuit.mkAnd(circuit.trueLit(), circuit.falseLit()),
              circuit.falseLit());
    EXPECT_EQ(circuit.mkOr(circuit.trueLit(), circuit.falseLit()),
              circuit.trueLit());
    Lit v = circuit.freshVar();
    EXPECT_EQ(circuit.mkAnd(v, circuit.trueLit()), v);
    EXPECT_EQ(circuit.mkOr(v, circuit.falseLit()), v);
    EXPECT_EQ(circuit.mkAnd(v, circuit.mkNot(v)), circuit.falseLit());
    EXPECT_EQ(circuit.mkXor(v, v), circuit.falseLit());
    EXPECT_EQ(circuit.mkXor(v, circuit.mkNot(v)), circuit.trueLit());
}

TEST_P(CircuitTest, GateCachingReturnsSameLiteral)
{
    Lit a = circuit.freshVar(), b = circuit.freshVar();
    EXPECT_EQ(circuit.mkAnd(a, b), circuit.mkAnd(b, a));
    EXPECT_EQ(circuit.mkXor(a, b), circuit.mkXor(b, a));
}

TEST_P(CircuitTest, AndOrSemantics)
{
    Lit a = circuit.freshVar(), b = circuit.freshVar();
    Lit both = circuit.mkAnd(a, b);
    circuit.assertLit(both);
    ASSERT_EQ(backend->solve(), SolveResult::Sat);
    EXPECT_TRUE(circuit.modelTrue(a));
    EXPECT_TRUE(circuit.modelTrue(b));
}

TEST_P(CircuitTest, ExactlyOne)
{
    std::vector<Lit> lits;
    for (int i = 0; i < 5; ++i)
        lits.push_back(circuit.freshVar());
    circuit.assertExactlyOne(lits);
    ASSERT_EQ(backend->solve(), SolveResult::Sat);
    int count = 0;
    for (Lit l : lits)
        count += circuit.modelTrue(l) ? 1 : 0;
    EXPECT_EQ(count, 1);

    // Forcing two of them is UNSAT.
    circuit.assertLit(lits[0]);
    circuit.assertLit(lits[3]);
    EXPECT_EQ(backend->solve(), SolveResult::Unsat);
}

TEST_P(CircuitTest, IteSelects)
{
    Lit c = circuit.freshVar();
    Lit t = circuit.trueLit(), e = circuit.falseLit();
    Lit selected = circuit.mkIte(c, t, e);
    circuit.assertLit(c);
    circuit.assertLit(selected);
    EXPECT_EQ(backend->solve(), SolveResult::Sat);
}

TEST_P(CircuitTest, BitVectorArithmetic)
{
    // Property check against concrete arithmetic on random constants.
    std::mt19937 rng(7);
    for (int round = 0; round < 20; ++round) {
        uint64_t x = rng() % 256, y = rng() % 256;
        BitVec bx = bv.constant(x, 8), by = bv.constant(y, 8);
        BitVec sum = bv.add(bx, by);
        BitVec diff = bv.sub(bx, by);
        circuit.assertLit(bv.eqConst(sum, (x + y) & 0xff));
        circuit.assertLit(bv.eqConst(diff, (x - y) & 0xff));
        Lit lt = bv.ult(bx, by);
        circuit.assertLit(x < y ? lt : circuit.mkNot(lt));
        Lit le = bv.ule(bx, by);
        circuit.assertLit(x <= y ? le : circuit.mkNot(le));
    }
    EXPECT_EQ(backend->solve(), SolveResult::Sat);
}

TEST_P(CircuitTest, BitVectorSolving)
{
    // x + 3 == 10 has the unique solution x == 7.
    BitVec x = bv.fresh(8);
    circuit.assertLit(bv.eqConst(bv.add(x, bv.constant(3, 8)), 10));
    ASSERT_EQ(backend->solve(), SolveResult::Sat);
    EXPECT_EQ(bv.modelValue(x), 7u);

    // Additionally require x > 9: now UNSAT.
    circuit.assertLit(bv.ult(bv.constant(9, 8), x));
    EXPECT_EQ(backend->solve(), SolveResult::Unsat);
}

TEST_P(CircuitTest, IteOnBitVectors)
{
    Lit c = circuit.freshVar();
    BitVec a = bv.constant(11, 8), b = bv.constant(22, 8);
    BitVec sel = bv.ite(c, a, b);
    circuit.assertLit(c);
    ASSERT_EQ(backend->solve(), SolveResult::Sat);
    EXPECT_EQ(bv.modelValue(sel), 11u);
}

INSTANTIATE_TEST_SUITE_P(Backends, CircuitTest,
                         ::testing::Values(BackendKind::Builtin,
                                           BackendKind::Z3),
                         [](const auto &info) {
                             return info.param == BackendKind::Z3
                                        ? "z3"
                                        : "builtin";
                         });

} // namespace
} // namespace gpumc::smt
