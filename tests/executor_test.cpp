/**
 * @file
 * serve::Executor and serve::CompletionQueue: admission control,
 * drain/rethrow semantics, thread-budget degradation and in-order
 * completion delivery — plus the BatchVerifier progress-delivery
 * regression: a completion consumer that waits on the rest of the
 * workload must not stall (or deadlock) the verification workers, as
 * it did when progress callbacks ran on a worker under the progress
 * mutex.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/batch_verifier.hpp"
#include "serve/completion_queue.hpp"
#include "serve/executor.hpp"
#include "support/thread_budget.hpp"
#include "tests/test_util.hpp"

namespace gpumc::test {
namespace {

/** Restore the process thread budget on scope exit. */
struct BudgetGuard {
    explicit BudgetGuard(unsigned total)
    {
        ThreadBudget::instance().setTotal(total);
    }
    ~BudgetGuard() { ThreadBudget::instance().setTotal(0); }
};

TEST(Executor, ExecutesEverySubmittedTask)
{
    serve::Executor exec(4);
    std::atomic<int> ran{0};
    for (int i = 0; i < 64; ++i)
        exec.submit([&ran] { ran++; });
    exec.drain();
    EXPECT_EQ(ran.load(), 64);

    serve::Executor::Counters counters = exec.counters();
    EXPECT_EQ(counters.accepted, 64);
    EXPECT_EQ(counters.executed, 64);
    EXPECT_EQ(counters.rejected, 0);
}

TEST(Executor, ReusableAcrossDrains)
{
    serve::Executor exec(2);
    std::atomic<int> ran{0};
    exec.submit([&ran] { ran++; });
    exec.drain();
    exec.submit([&ran] { ran++; });
    exec.drain();
    EXPECT_EQ(ran.load(), 2);
}

TEST(Executor, BoundedAdmissionRejectsWhenSaturated)
{
    serve::Executor exec(1, 1);
    ASSERT_EQ(exec.workers(), 1u);

    // Handshake so the queue state is deterministic: the one worker is
    // provably busy (and the queue empty) before the trySubmits below.
    std::promise<void> started;
    std::promise<void> release;
    std::shared_future<void> gate = release.get_future().share();
    std::atomic<int> ran{0};
    exec.submit([&started, gate, &ran] {
        started.set_value();
        gate.wait();
        ran++;
    });
    started.get_future().wait();

    EXPECT_EQ(exec.trySubmit([&ran] { ran++; }),
              serve::Executor::Admit::Accepted); // fills the queue
    EXPECT_EQ(exec.trySubmit([&ran] { ran++; }),
              serve::Executor::Admit::Overloaded);

    release.set_value();
    exec.drain();
    EXPECT_EQ(ran.load(), 2);

    serve::Executor::Counters counters = exec.counters();
    EXPECT_EQ(counters.accepted, 2);
    EXPECT_EQ(counters.executed, 2);
    EXPECT_EQ(counters.rejected, 1);
    EXPECT_GE(counters.maxQueueDepth, 1);
}

TEST(Executor, DrainRethrowsFirstTaskException)
{
    serve::Executor exec(2);
    exec.submit([] { throw std::runtime_error("task failed"); });
    EXPECT_THROW(exec.drain(), std::runtime_error);

    // The error is consumed: the executor keeps serving afterwards.
    std::atomic<int> ran{0};
    exec.submit([&ran] { ran++; });
    exec.drain();
    EXPECT_EQ(ran.load(), 1);
}

TEST(Executor, DegradesToOneWorkerWhenBudgetExhausted)
{
    BudgetGuard budget(1); // no helper slots at all
    serve::Executor exec(8);
    EXPECT_EQ(exec.workers(), 1u);

    std::atomic<int> ran{0};
    for (int i = 0; i < 16; ++i)
        exec.submit([&ran] { ran++; });
    exec.drain();
    EXPECT_EQ(ran.load(), 16);
}

TEST(CompletionQueue, DeliversInPushOrder)
{
    serve::CompletionQueue queue;
    std::vector<int> seen; // drain thread only; no lock needed
    for (int i = 0; i < 100; ++i)
        queue.push([&seen, i] { seen.push_back(i); });
    queue.flush();
    ASSERT_EQ(seen.size(), 100u);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(seen[static_cast<size_t>(i)], i);
}

TEST(CompletionQueue, FlushWaitsForCallbackReturn)
{
    serve::CompletionQueue queue;
    std::atomic<bool> finished{false};
    queue.push([&finished] {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        finished = true;
    });
    queue.flush();
    EXPECT_TRUE(finished.load());
}

TEST(CompletionQueue, SlowConsumerDoesNotBlockProducers)
{
    serve::CompletionQueue queue;
    std::promise<void> release;
    std::shared_future<void> gate = release.get_future().share();
    queue.push([gate] { gate.wait(); });

    // With the first callback parked, later pushes must still return
    // immediately — and stay undelivered (in-order contract).
    std::atomic<int> delivered{0};
    for (int i = 0; i < 1000; ++i)
        queue.push([&delivered] { delivered++; });
    EXPECT_EQ(delivered.load(), 0);

    release.set_value();
    queue.flush();
    EXPECT_EQ(delivered.load(), 1000);
}

TEST(CompletionQueue, BlockedConsumerDoesNotStallExecutorWorkers)
{
    // Regression for the BatchVerifier progress-lock bug: progress
    // used to be delivered on the worker itself, under the progress
    // mutex, so a completion callback waiting for the *rest of the
    // workload to compute* wedged the whole pool (the other workers
    // blocked on the mutex; the computation the callback waited for
    // never ran). With the drain design, workers only pay for the
    // enqueue, so every callback below eventually observes all tasks
    // computed.
    serve::Executor exec(2);
    serve::CompletionQueue drain;
    constexpr int total = 8;
    std::atomic<int> computed{0};
    std::atomic<int> sawAllComputed{0};

    for (int i = 0; i < total; ++i) {
        exec.submit([&computed, &drain, &sawAllComputed] {
            computed++;
            drain.push([&computed, &sawAllComputed] {
                for (int spin = 0;
                     computed.load() < total && spin < 2000; ++spin)
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(5));
                if (computed.load() == total)
                    sawAllComputed++;
            });
        });
    }
    exec.drain();
    drain.flush();
    EXPECT_EQ(computed.load(), total);
    EXPECT_EQ(sawAllComputed.load(), total);
}

TEST(BatchVerifierProgress, SerializedOffWorkersAndComplete)
{
    // The ProgressFn contract: every index delivered exactly once, on
    // one dedicated thread that is neither the caller nor a worker.
    prog::Program mp =
        litmus::parseLitmusFile(litmusPath("ptx/basic/mp-weak.litmus"));
    prog::Program sb =
        litmus::parseLitmusFile(litmusPath("ptx/basic/sb-weak.litmus"));

    std::vector<core::BatchJob> batch;
    for (const prog::Program *program : {&mp, &sb}) {
        core::BatchJob job;
        job.program = program;
        job.model = &modelFor(*program);
        job.property = core::Property::Safety;
        job.label = program->name;
        batch.push_back(std::move(job));
    }

    std::mutex mutex;
    std::set<std::thread::id> threads;
    std::vector<size_t> indices;
    std::vector<core::BatchEntry> entries = core::BatchVerifier(2).run(
        batch, [&](size_t index, const core::BatchEntry &entry) {
            std::lock_guard<std::mutex> lock(mutex);
            threads.insert(std::this_thread::get_id());
            indices.push_back(index);
            EXPECT_FALSE(entry.failed) << entry.error;
        });

    ASSERT_EQ(entries.size(), batch.size());
    EXPECT_EQ(indices.size(), batch.size());
    std::sort(indices.begin(), indices.end());
    for (size_t i = 0; i < indices.size(); ++i)
        EXPECT_EQ(indices[i], i);
    EXPECT_EQ(threads.size(), 1u);
    EXPECT_EQ(threads.count(std::this_thread::get_id()), 0u);
}

} // namespace
} // namespace gpumc::test
