/**
 * @file
 * Unit tests for the explicit-state (Alloy-like) baseline checker:
 * supported-feature gating, behaviour counting, value resolution
 * (including cyclic out-of-thin-air candidates), partial coherence for
 * PTX, budget handling.
 */

#include <gtest/gtest.h>

#include "explicit/explicit_checker.hpp"
#include "tests/test_util.hpp"

namespace gpumc::test {
namespace {

expl::ExplicitResult
run(const char *source, expl::ExplicitOptions options = {})
{
    prog::Program program = litmus::parseLitmus(source);
    expl::ExplicitChecker checker(program, modelFor(program), options);
    return checker.run();
}

TEST(ExplicitChecker, RejectsControlFlow)
{
    expl::ExplicitResult r = run(R"(
PTX
P0@cta 0,gpu 0 ;
LC00:          ;
ld.weak r0, x  ;
beq r0, 0, LC00 ;
exists (true)
)");
    EXPECT_FALSE(r.supported);
    EXPECT_EQ(r.unsupportedReason, "control-flow instructions");
}

TEST(ExplicitChecker, RejectsCas)
{
    expl::ExplicitResult r = run(R"(
PTX
P0@cta 0,gpu 0 ;
atom.acq.gpu.cas r0, l, 0, 1 ;
exists (true)
)");
    EXPECT_FALSE(r.supported);
    EXPECT_EQ(r.unsupportedReason, "compare-and-swap");
}

TEST(ExplicitChecker, CountsMpBehaviours)
{
    expl::ExplicitResult r = run(R"(
PTX
P0@cta 0,gpu 0 | P1@cta 0,gpu 0 ;
st.weak x, 1   | ld.weak r0, y  ;
st.weak y, 1   | ld.weak r1, x  ;
exists (P1:r0 == 1 /\ P1:r1 == 0)
)");
    ASSERT_TRUE(r.supported);
    EXPECT_TRUE(r.conditionHolds);
    // 2 reads x 2 rf choices = 4 value combinations; each consistent
    // under some partial coherence.
    EXPECT_GE(r.consistentBehaviours, 4u);
    EXPECT_GT(r.candidatesExplored, r.consistentBehaviours / 2);
}

TEST(ExplicitChecker, RmwValueChains)
{
    // Two fetch-adds: their return values must differ (PTX atomicity).
    expl::ExplicitResult r = run(R"(
PTX
P0@cta 0,gpu 0             | P1@cta 0,gpu 0             ;
atom.acq.gpu.add r0, c, 1  | atom.acq.gpu.add r0, c, 1  ;
exists (P0:r0 == P1:r0)
)");
    ASSERT_TRUE(r.supported);
    EXPECT_FALSE(r.conditionHolds);
    EXPECT_GT(r.consistentBehaviours, 0u);
}

TEST(ExplicitChecker, OutOfThinAirRejected)
{
    // Data-dependent LB: requires value-cycle enumeration; the
    // condition (both read 1) must be unreachable.
    expl::ExplicitResult r = run(R"(
PTX
P0@cta 0,gpu 0 | P1@cta 0,gpu 0 ;
ld.weak r0, x  | ld.weak r1, y  ;
st.weak y, r0  | st.weak x, r1  ;
exists (P0:r0 == 1 /\ P1:r1 == 1)
)");
    ASSERT_TRUE(r.supported);
    EXPECT_FALSE(r.conditionHolds);
}

TEST(ExplicitChecker, VulkanRaceDetection)
{
    expl::ExplicitResult r = run(R"(
VULKAN
P0@sg 0,wg 0,qf 0 | P1@sg 0,wg 1,qf 0 ;
st.sc0 x, 1       | ld.sc0 r0, x      ;
exists (P1:r0 == 1)
)");
    ASSERT_TRUE(r.supported);
    EXPECT_TRUE(r.raceFound);
    EXPECT_TRUE(r.conditionHolds);
}

TEST(ExplicitChecker, BudgetStopsEnumeration)
{
    expl::ExplicitOptions options;
    options.maxCandidates = 3;
    expl::ExplicitResult r = run(R"(
PTX
P0@cta 0,gpu 0 | P1@cta 0,gpu 0 | P2@cta 0,gpu 0 | P3@cta 0,gpu 0 ;
st.weak x, 1   | st.weak x, 2   | ld.weak r0, x  | ld.weak r1, x  ;
exists (true)
)",
                                 options);
    ASSERT_TRUE(r.supported);
    EXPECT_TRUE(r.timedOut);
    EXPECT_LE(r.candidatesExplored, 3u);
}

TEST(ExplicitChecker, FilterRestrictsBehaviours)
{
    expl::ExplicitResult r = run(R"(
VULKAN
P0@sg 0,wg 0,qf 0    | P1@sg 0,wg 1,qf 0       ;
st.atom.dv.sc0 f, 1  | ld.atom.dv.sc0 r0, f    ;
filter (P1:r0 == 1)
exists (P1:r0 == 0)
)");
    ASSERT_TRUE(r.supported);
    EXPECT_FALSE(r.conditionHolds);
    EXPECT_GT(r.consistentBehaviours, 0u);
}

TEST(ExplicitChecker, ForallSemantics)
{
    expl::ExplicitResult r = run(R"(
PTX
P0@cta 0,gpu 0 | P1@cta 0,gpu 0 ;
st.relaxed.gpu x, 1 | ld.relaxed.gpu r0, x ;
forall (P1:r0 == 0 \/ P1:r0 == 1)
)");
    ASSERT_TRUE(r.supported);
    EXPECT_TRUE(r.conditionHolds);
}

} // namespace
} // namespace gpumc::test
