/**
 * @file
 * Unit tests for the explicit-state (Alloy-like) baseline checker:
 * supported-feature gating, behaviour counting, value resolution
 * (including cyclic out-of-thin-air candidates), partial coherence for
 * PTX, budget handling.
 */

#include <gtest/gtest.h>

#include "explicit/explicit_checker.hpp"
#include "tests/test_util.hpp"

namespace gpumc::test {
namespace {

expl::ExplicitResult
run(const char *source, expl::ExplicitOptions options = {})
{
    prog::Program program = litmus::parseLitmus(source);
    expl::ExplicitChecker checker(program, modelFor(program), options);
    return checker.run();
}

TEST(ExplicitChecker, RejectsControlFlow)
{
    expl::ExplicitResult r = run(R"(
PTX
P0@cta 0,gpu 0 ;
LC00:          ;
ld.weak r0, x  ;
beq r0, 0, LC00 ;
exists (true)
)");
    EXPECT_FALSE(r.supported);
    EXPECT_EQ(r.unsupportedReason, "control-flow instructions");
}

TEST(ExplicitChecker, RejectsCas)
{
    expl::ExplicitResult r = run(R"(
PTX
P0@cta 0,gpu 0 ;
atom.acq.gpu.cas r0, l, 0, 1 ;
exists (true)
)");
    EXPECT_FALSE(r.supported);
    EXPECT_EQ(r.unsupportedReason, "compare-and-swap");
}

TEST(ExplicitChecker, CountsMpBehaviours)
{
    expl::ExplicitResult r = run(R"(
PTX
P0@cta 0,gpu 0 | P1@cta 0,gpu 0 ;
st.weak x, 1   | ld.weak r0, y  ;
st.weak y, 1   | ld.weak r1, x  ;
exists (P1:r0 == 1 /\ P1:r1 == 0)
)");
    ASSERT_TRUE(r.supported);
    EXPECT_TRUE(r.conditionHolds);
    // 2 reads x 2 rf choices = 4 value combinations; each consistent
    // under some partial coherence.
    EXPECT_GE(r.consistentBehaviours, 4u);
    EXPECT_GT(r.candidatesExplored, r.consistentBehaviours / 2);
}

TEST(ExplicitChecker, RmwValueChains)
{
    // Two fetch-adds: their return values must differ (PTX atomicity).
    expl::ExplicitResult r = run(R"(
PTX
P0@cta 0,gpu 0             | P1@cta 0,gpu 0             ;
atom.acq.gpu.add r0, c, 1  | atom.acq.gpu.add r0, c, 1  ;
exists (P0:r0 == P1:r0)
)");
    ASSERT_TRUE(r.supported);
    EXPECT_FALSE(r.conditionHolds);
    EXPECT_GT(r.consistentBehaviours, 0u);
}

TEST(ExplicitChecker, OutOfThinAirRejected)
{
    // Data-dependent LB: requires value-cycle enumeration; the
    // condition (both read 1) must be unreachable.
    expl::ExplicitResult r = run(R"(
PTX
P0@cta 0,gpu 0 | P1@cta 0,gpu 0 ;
ld.weak r0, x  | ld.weak r1, y  ;
st.weak y, r0  | st.weak x, r1  ;
exists (P0:r0 == 1 /\ P1:r1 == 1)
)");
    ASSERT_TRUE(r.supported);
    EXPECT_FALSE(r.conditionHolds);
}

TEST(ExplicitChecker, VulkanRaceDetection)
{
    expl::ExplicitResult r = run(R"(
VULKAN
P0@sg 0,wg 0,qf 0 | P1@sg 0,wg 1,qf 0 ;
st.sc0 x, 1       | ld.sc0 r0, x      ;
exists (P1:r0 == 1)
)");
    ASSERT_TRUE(r.supported);
    EXPECT_TRUE(r.raceFound);
    EXPECT_TRUE(r.conditionHolds);
}

TEST(ExplicitChecker, BudgetStopsEnumeration)
{
    expl::ExplicitOptions options;
    options.maxCandidates = 3;
    expl::ExplicitResult r = run(R"(
PTX
P0@cta 0,gpu 0 | P1@cta 0,gpu 0 | P2@cta 0,gpu 0 | P3@cta 0,gpu 0 ;
st.weak x, 1   | st.weak x, 2   | ld.weak r0, x  | ld.weak r1, x  ;
exists (true)
)",
                                 options);
    ASSERT_TRUE(r.supported);
    EXPECT_TRUE(r.timedOut);
    EXPECT_LE(r.candidatesExplored, 3u);
}

TEST(ExplicitChecker, LazyTotalCoRespectsBudget)
{
    // Regression: total coherence orders used to be materialized
    // eagerly before the budget was consulted — eleven same-location
    // stores mean 11! ~ 40M orders (gigabytes of pair sets, minutes of
    // setup) before the first candidate was ever evaluated. The lazy
    // enumerator generates one order at a time and checks the budget
    // between them, so a 100ms timeout must return promptly.
    expl::ExplicitOptions options;
    options.timeoutMs = 100;
    expl::ExplicitResult r = run(R"(
VULKAN
P0@sg 0,wg 0,qf 0 ;
st.sc0 x, 1  ;
st.sc0 x, 2  ;
st.sc0 x, 3  ;
st.sc0 x, 4  ;
st.sc0 x, 5  ;
st.sc0 x, 6  ;
st.sc0 x, 7  ;
st.sc0 x, 8  ;
st.sc0 x, 9  ;
st.sc0 x, 10 ;
st.sc0 x, 11 ;
exists (true)
)",
                                 options);
    ASSERT_TRUE(r.supported);
    EXPECT_TRUE(r.timedOut);
    EXPECT_GT(r.candidatesExplored, 0u);
    EXPECT_LT(r.timeMs, 10000.0);
}

TEST(ExplicitChecker, SyncFenceSetsDeduplicated)
{
    // Two SC fences at CTA scope in *different* CTAs: the sync_fence
    // upper bound (pairs within reachable scope) is empty, so both
    // fence permutations produce the same empty sf set. Regression:
    // each permutation used to be evaluated separately.
    expl::ExplicitResult pruned = run(R"(
PTX
P0@cta 0,gpu 0 | P1@cta 1,gpu 0 ;
fence.sc.cta   | fence.sc.cta   ;
exists (true)
)");
    ASSERT_TRUE(pruned.supported);
    EXPECT_TRUE(pruned.conditionHolds);
    EXPECT_EQ(pruned.candidatesExplored, 1u);

    // Same fences in one CTA: both orders are distinct sf sets and
    // must still both be explored.
    expl::ExplicitResult full = run(R"(
PTX
P0@cta 0,gpu 0 | P1@cta 0,gpu 0 ;
fence.sc.cta   | fence.sc.cta   ;
exists (true)
)");
    ASSERT_TRUE(full.supported);
    EXPECT_EQ(full.candidatesExplored, 2u);
}

TEST(ExplicitChecker, FilterRestrictsBehaviours)
{
    expl::ExplicitResult r = run(R"(
VULKAN
P0@sg 0,wg 0,qf 0    | P1@sg 0,wg 1,qf 0       ;
st.atom.dv.sc0 f, 1  | ld.atom.dv.sc0 r0, f    ;
filter (P1:r0 == 1)
exists (P1:r0 == 0)
)");
    ASSERT_TRUE(r.supported);
    EXPECT_FALSE(r.conditionHolds);
    EXPECT_GT(r.consistentBehaviours, 0u);
}

TEST(ExplicitChecker, ForallSemantics)
{
    expl::ExplicitResult r = run(R"(
PTX
P0@cta 0,gpu 0 | P1@cta 0,gpu 0 ;
st.relaxed.gpu x, 1 | ld.relaxed.gpu r0, x ;
forall (P1:r0 == 0 \/ P1:r0 == 1)
)");
    ASSERT_TRUE(r.supported);
    EXPECT_TRUE(r.conditionHolds);
}

} // namespace
} // namespace gpumc::test
