/**
 * @file
 * Randomized differential testing: generate small random straight-line
 * programs and require the SMT engine and the explicit-state
 * enumerator to agree on safety and data-race verdicts, under every
 * model and both SMT backends. This is the repository's strongest
 * internal-consistency check (the analogue of the paper's
 * Dartagnan-vs-Alloy cross validation, at fuzz scale).
 */

#include <gtest/gtest.h>

#include <random>

#include "explicit/explicit_checker.hpp"
#include "tests/test_util.hpp"

namespace gpumc::test {
namespace {

using namespace prog;

struct RandomConfig {
    Arch arch;
    uint32_t seed;
};

Program
randomProgram(std::mt19937 &rng, Arch arch)
{
    Program p;
    p.arch = arch;
    int numThreads = 2 + rng() % 2;
    int numVars = 1 + rng() % 2;
    auto var = [&](int i) { return "v" + std::to_string(i); };

    std::vector<MemOrder> orders = {MemOrder::Plain, MemOrder::Rlx,
                                    MemOrder::Acq, MemOrder::Rel};
    std::vector<Scope> scopes =
        arch == Arch::Ptx
            ? std::vector<Scope>{Scope::Cta, Scope::Gpu, Scope::Sys}
            : std::vector<Scope>{Scope::Wg, Scope::Qf, Scope::Dv};

    int regCounter = 0;
    std::vector<std::pair<int, std::string>> readRegs;

    for (int t = 0; t < numThreads; ++t) {
        Thread thread;
        thread.name = "P" + std::to_string(t);
        if (arch == Arch::Ptx)
            thread.placement.cta = rng() % 2;
        else
            thread.placement.wg = rng() % 2;
        int numInstrs = 1 + rng() % 3;
        for (int i = 0; i < numInstrs; ++i) {
            Instruction ins;
            MemOrder order = orders[rng() % orders.size()];
            int kind = rng() % 5;
            switch (kind) {
              case 0:
              case 1: { // store
                ins.op = Opcode::Store;
                ins.location = var(rng() % numVars);
                ins.src = Operand::makeConst(1 + rng() % 3);
                // A store can't be acquire.
                ins.order = order == MemOrder::Acq ? MemOrder::Rel
                                                   : order;
                break;
              }
              case 2:
              case 3: { // load
                ins.op = Opcode::Load;
                ins.location = var(rng() % numVars);
                ins.dst = "r" + std::to_string(regCounter++);
                ins.order = order == MemOrder::Rel ? MemOrder::Acq
                                                   : order;
                readRegs.push_back({t, ins.dst});
                break;
              }
              case 4: { // fetch-add or fence
                if (rng() % 2) {
                    ins.op = Opcode::Rmw;
                    ins.rmwKind = RmwKind::Add;
                    ins.location = var(rng() % numVars);
                    ins.dst = "r" + std::to_string(regCounter++);
                    ins.src = Operand::makeConst(1);
                    ins.order = order;
                    readRegs.push_back({t, ins.dst});
                } else {
                    ins.op = Opcode::Fence;
                    ins.order =
                        order == MemOrder::Plain ? MemOrder::AcqRel
                                                 : order;
                    if (arch == Arch::Ptx && rng() % 4 == 0)
                        ins.order = MemOrder::Sc;
                    if (arch == Arch::Vulkan)
                        ins.semSc0 = true;
                }
                break;
              }
            }
            if (arch == Arch::Vulkan && ins.isMemoryAccess()) {
                ins.atomic = ins.order != MemOrder::Plain ||
                             ins.op == Opcode::Rmw || rng() % 2;
                if (ins.atomic && ins.order == MemOrder::Plain)
                    ins.order = MemOrder::Rlx;
                ins.storageClass = StorageClass::Sc0;
            } else if (arch == Arch::Ptx && ins.isMemoryAccess()) {
                ins.atomic = ins.order != MemOrder::Plain;
            }
            if (ins.producesEvent())
                ins.scope = scopes[rng() % scopes.size()];
            thread.instrs.push_back(std::move(ins));
        }
        p.threads.push_back(std::move(thread));
    }

    for (int v = 0; v < numVars; ++v) {
        VarDecl decl;
        decl.name = var(v);
        p.vars.push_back(std::move(decl));
    }

    // Random condition over up to three read registers.
    CondPtr cond;
    std::shuffle(readRegs.begin(), readRegs.end(), rng);
    size_t terms = std::min<size_t>(readRegs.size(), 1 + rng() % 3);
    for (size_t i = 0; i < terms; ++i) {
        CondPtr leaf = Cond::mkCmp(
            rng() % 2 == 0,
            CondTerm::makeReg(readRegs[i].first, readRegs[i].second),
            CondTerm::makeConst(rng() % 4));
        cond = cond ? (rng() % 2 ? Cond::mkAnd(std::move(cond),
                                               std::move(leaf))
                                 : Cond::mkOr(std::move(cond),
                                              std::move(leaf)))
                    : std::move(leaf);
    }
    if (!cond)
        cond = Cond::mkTrue();
    p.assertKind = rng() % 3 == 0 ? AssertKind::Forall
                                  : AssertKind::Exists;
    p.assertion = std::move(cond);
    p.validate();
    return p;
}

class RandomDifferential
    : public ::testing::TestWithParam<RandomConfig> {};

TEST_P(RandomDifferential, EnginesAgree)
{
    std::mt19937 rng(GetParam().seed);
    const cat::CatModel &model = GetParam().arch == Arch::Ptx
                                     ? ptx75Model()
                                     : vulkanModel();
    for (int round = 0; round < 40; ++round) {
        Program program = randomProgram(rng, GetParam().arch);

        expl::ExplicitOptions explicitOptions;
        explicitOptions.maxCandidates = 30000;
        explicitOptions.timeoutMs = 3000;
        expl::ExplicitChecker ground(program, model, explicitOptions);
        expl::ExplicitResult oracle = ground.run();
        ASSERT_TRUE(oracle.supported);
        if (oracle.timedOut)
            continue;

        for (smt::BackendKind backend :
             {smt::BackendKind::Builtin, smt::BackendKind::Z3}) {
            core::VerifierOptions options;
            options.backend = backend;
            options.validateWitness = true;
            core::Verifier verifier(program, model, options);
            core::VerificationResult safety = verifier.checkSafety();
            ASSERT_EQ(oracle.conditionHolds, safety.holds)
                << "seed=" << GetParam().seed << " round=" << round
                << " backend=" << (backend == smt::BackendKind::Z3
                                       ? "z3" : "builtin");
            if (model.hasFlaggedAxioms()) {
                core::VerificationResult drf = verifier.checkCatSpec();
                ASSERT_EQ(oracle.raceFound, !drf.holds)
                    << "seed=" << GetParam().seed
                    << " round=" << round;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Fuzz, RandomDifferential,
    ::testing::Values(RandomConfig{Arch::Ptx, 1001},
                      RandomConfig{Arch::Ptx, 2002},
                      RandomConfig{Arch::Vulkan, 3003},
                      RandomConfig{Arch::Vulkan, 4004}),
    [](const auto &info) {
        return std::string(info.param.arch == Arch::Ptx ? "ptx"
                                                        : "vulkan") +
               "_" + std::to_string(info.param.seed);
    });

} // namespace
} // namespace gpumc::test
