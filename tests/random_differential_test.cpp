/**
 * @file
 * Randomized differential testing: generate small random straight-line
 * programs with the fuzz subsystem's generator and require every
 * differential oracle — emit/reparse round-trip, SMT vs the
 * explicit-state enumerator (safety and data-race verdicts), Z3 vs the
 * built-in solver, and bound monotonicity — to agree, under both
 * architectures. This is the repository's strongest
 * internal-consistency check (the analogue of the paper's
 * Dartagnan-vs-Alloy cross validation, at fuzz scale); gpumc-fuzz runs
 * the same oracles at campaign scale.
 */

#include <gtest/gtest.h>

#include "fuzz/oracle.hpp"
#include "fuzz/random_program.hpp"
#include "tests/test_util.hpp"

namespace gpumc::test {
namespace {

using namespace prog;

struct RandomConfig {
    Arch arch;
    uint64_t seed;
};

class RandomDifferential
    : public ::testing::TestWithParam<RandomConfig> {};

TEST_P(RandomDifferential, OraclesAgree)
{
    const Arch arch = GetParam().arch;
    const cat::CatModel &model =
        arch == Arch::Ptx ? ptx75Model() : vulkanModel();

    // Straight-line profile: every case is in the explicit checker's
    // supported fragment, so smt-vs-explicit really compares verdicts
    // instead of skipping.
    fuzz::FuzzConfig config = fuzz::FuzzConfig::basic(arch);
    fuzz::OracleOptions options;
    options.explicitMaxCandidates = 30000;
    options.explicitTimeoutMs = 3000;

    for (uint64_t round = 0; round < 30; ++round) {
        Program program =
            fuzz::randomProgram(GetParam().seed, round, config);
        fuzz::OracleReport report =
            fuzz::runOracles(program, model, options);
        for (const fuzz::OracleOutcome &outcome : report.outcomes) {
            EXPECT_NE(outcome.verdict, fuzz::OracleVerdict::Disagree)
                << "seed=" << GetParam().seed << " round=" << round
                << " oracle=" << fuzz::oracleName(outcome.kind) << ": "
                << outcome.detail;
        }
        // The profile stays inside the explicit fragment: the only
        // legitimate skip is an exhausted enumeration budget. An
        // "unsupported" skip here means the generator or checker
        // regressed.
        const fuzz::OracleOutcome *diff =
            report.find(fuzz::OracleKind::SmtVsExplicit);
        ASSERT_NE(diff, nullptr);
        if (diff->verdict == fuzz::OracleVerdict::Skipped) {
            EXPECT_NE(diff->detail.find("budget"), std::string::npos)
                << "seed=" << GetParam().seed << " round=" << round
                << ": " << diff->detail;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Fuzz, RandomDifferential,
    ::testing::Values(RandomConfig{Arch::Ptx, 1001},
                      RandomConfig{Arch::Ptx, 2002},
                      RandomConfig{Arch::Vulkan, 3003},
                      RandomConfig{Arch::Vulkan, 4004}),
    [](const auto &info) {
        return std::string(info.param.arch == Arch::Ptx ? "ptx"
                                                        : "vulkan") +
               "_" + std::to_string(info.param.seed);
    });

} // namespace
} // namespace gpumc::test
