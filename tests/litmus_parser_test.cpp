/**
 * @file
 * Unit tests for the litmus front-ends: column-format structure,
 * prelude, conditions, directives, and the two instruction dialects.
 */

#include <gtest/gtest.h>

#include "litmus/condition_parser.hpp"
#include "litmus/litmus_parser.hpp"
#include "litmus/ptx_dialect.hpp"
#include "litmus/vulkan_dialect.hpp"

namespace gpumc::litmus {
namespace {

using namespace prog;

TEST(LitmusStructure, HeaderPreludeAndColumns)
{
    Program p = parseLitmus(R"(
(* a comment (* nested *) here *)
PTX "my-test"
{ x = 7; s -> x; }
P0@cta 0,gpu 1 | P1@cta 1,gpu 1 ;
st.weak x, 1   | ld.weak r0, x  ;
               | ld.weak r1, s  ;
exists (P1:r0 == 1 /\ P1:r1 == 7)
)");
    EXPECT_EQ(p.name, "my-test");
    EXPECT_EQ(p.arch, Arch::Ptx);
    ASSERT_EQ(p.numThreads(), 2);
    EXPECT_EQ(p.threads[0].placement.cta, 0);
    EXPECT_EQ(p.threads[0].placement.gpu, 1);
    EXPECT_EQ(p.threads[1].placement.cta, 1);
    EXPECT_EQ(p.threads[0].instrs.size(), 1u);
    EXPECT_EQ(p.threads[1].instrs.size(), 2u);
    EXPECT_EQ(p.vars[0].init, 7);
    EXPECT_EQ(p.physLoc("s"), p.physLoc("x"));
    EXPECT_EQ(p.assertKind, AssertKind::Exists);
}

TEST(LitmusStructure, DirectivesAndFilter)
{
    Program p = parseLitmus(R"(
(* @expect safety=holds drf=racy *)
(* @config bound=3 *)
VULKAN "t"
P0@sg 0,wg 0,qf 0 ;
st.sc0 x, 1       ;
filter (x == 1)
~exists (P0:r9 == 5)
)");
    EXPECT_EQ(p.meta.at("safety"), "holds");
    EXPECT_EQ(p.meta.at("drf"), "racy");
    EXPECT_EQ(p.meta.at("bound"), "3");
    EXPECT_NE(p.filter, nullptr);
    EXPECT_EQ(p.assertKind, AssertKind::NotExists);
}

TEST(LitmusStructure, SswMarker)
{
    Program p = parseLitmus(R"(
VULKAN
P0@sg 0,wg 0,qf 0,ssw | P1@sg 0,wg 1,qf 0 ;
st.sc0 x, 1           | ld.sc0 r0, x      ;
exists (true)
)");
    EXPECT_TRUE(p.threads[0].placement.ssw);
    EXPECT_FALSE(p.threads[1].placement.ssw);
}

TEST(LitmusStructure, ErrorsAreReported)
{
    EXPECT_THROW(parseLitmus("WRONGARCH\n"), FatalError);
    // More columns than threads.
    EXPECT_THROW(parseLitmus(R"(
PTX
P0@cta 0,gpu 0 ;
st.weak x, 1 | st.weak y, 1 ;
exists (true)
)"),
                 FatalError);
}

TEST(ConditionParser, PrecedenceAndForms)
{
    CondPtr c = parseCondition(
        "P0:r1 == 1 /\\ P1:r2 != 2 \\/ ~(x == 3)");
    // '\/' binds loosest: the root is an Or.
    ASSERT_EQ(c->kind, Cond::Kind::Or);
    EXPECT_EQ(c->lhs->kind, Cond::Kind::And);
    EXPECT_EQ(c->rhs->kind, Cond::Kind::Not);

    // Register-to-register and single '=' forms.
    CondPtr c2 = parseCondition("P0:r1 = P1:r1");
    ASSERT_EQ(c2->kind, Cond::Kind::Eq);
    EXPECT_EQ(c2->tl.kind, CondTerm::Kind::Reg);
    EXPECT_EQ(c2->tr.thread, 1);

    EXPECT_THROW(parseCondition("P0:r1 =="), FatalError);
    EXPECT_THROW(parseCondition("??"), FatalError);
}

TEST(ConditionEval, Evaluates)
{
    CondPtr c = parseCondition("(a == 1 /\\ b == 2) \\/ c != 0");
    auto valuation = [](const CondTerm &t) -> int64_t {
        if (t.kind == CondTerm::Kind::Const)
            return t.value;
        if (t.name == "a")
            return 1;
        if (t.name == "b")
            return 9;
        return 0; // c
    };
    EXPECT_FALSE(evalCond(*c, valuation));
}

TEST(PtxDialect, Instructions)
{
    SourceLoc loc{1, 1};
    auto one = [&](const char *text) {
        auto v = parsePtxInstruction(text, loc);
        EXPECT_EQ(v.size(), 1u);
        return v[0];
    };
    Instruction ld = one("ld.acquire.sys r0, x");
    EXPECT_EQ(ld.op, Opcode::Load);
    EXPECT_EQ(ld.order, MemOrder::Acq);
    EXPECT_EQ(*ld.scope, Scope::Sys);
    EXPECT_TRUE(ld.atomic);

    Instruction st = one("st.weak x, 5");
    EXPECT_EQ(st.op, Opcode::Store);
    EXPECT_FALSE(st.atomic);
    EXPECT_EQ(st.src.value, 5);

    Instruction cas = one("atom.acq.gpu.cas r1, l, 0, 2");
    EXPECT_EQ(cas.rmwKind, RmwKind::Cas);
    EXPECT_EQ(cas.src.value, 0);
    EXPECT_EQ(cas.src2.value, 2);

    Instruction pf = one("fence.proxy.texture");
    EXPECT_EQ(pf.op, Opcode::ProxyFence);
    EXPECT_EQ(pf.proxyFence, ProxyFenceKind::Texture);

    Instruction bar = one("bar.cta.sync r2");
    EXPECT_EQ(bar.op, Opcode::Barrier);
    EXPECT_TRUE(bar.barrierId.isReg());

    Instruction tld = one("tld.weak r1, t");
    EXPECT_EQ(tld.proxy, Proxy::Texture);

    EXPECT_THROW(one("frobnicate r0"), FatalError);
    EXPECT_THROW(one("atom.acq.gpu r0, x, 1"), FatalError); // no kind
    EXPECT_THROW(one("ld.bogus r0, x"), FatalError);
}

TEST(VulkanDialect, Instructions)
{
    SourceLoc loc{1, 1};
    auto parse = [&](const char *text) {
        return parseVulkanInstruction(text, loc);
    };
    auto v = parse("st.atom.rel.dv.sc1 f, 1");
    ASSERT_EQ(v.size(), 1u);
    EXPECT_TRUE(v[0].atomic);
    EXPECT_EQ(v[0].order, MemOrder::Rel);
    EXPECT_EQ(*v[0].storageClass, StorageClass::Sc1);

    auto fence = parse("membar.acq.dv.semsc0.semsc1.semvis");
    EXPECT_TRUE(fence[0].semSc0);
    EXPECT_TRUE(fence[0].semSc1);
    EXPECT_TRUE(fence[0].semVis);

    // Barrier with memory semantics expands to fence+barrier+fence.
    auto cbar = parse("cbar.acqrel.wg.semsc0 3");
    ASSERT_EQ(cbar.size(), 3u);
    EXPECT_EQ(cbar[0].op, Opcode::Fence);
    EXPECT_EQ(cbar[0].order, MemOrder::Rel);
    EXPECT_EQ(cbar[1].op, Opcode::Barrier);
    EXPECT_EQ(cbar[1].barrierId.value, 3);
    EXPECT_EQ(cbar[2].order, MemOrder::Acq);

    auto plain = parse("cbar.wg 1");
    EXPECT_EQ(plain.size(), 1u);

    // Non-atomic access with an order is rejected.
    EXPECT_THROW(parse("st.rel.sc0 x, 1"), FatalError);
    // av flag on plain store.
    auto av = parse("st.sc0.av x, 1");
    EXPECT_TRUE(av[0].avFlag);
}

} // namespace
} // namespace gpumc::litmus
