/**
 * @file
 * Learned-clause sharing: the ClauseStore (publish/fetch/eviction),
 * import-at-restart re-validation against the importing solver's root
 * trail, the assumption-literal quarantine (the correctness crux: a
 * clause over one query's activation literal must never travel to a
 * solver where that variable means something else), the process-wide
 * session-store registry, and the Verifier/portfolio integration —
 * sharing on must agree verdict-for-verdict with sharing off, and the
 * share counters must surface as `solver.share.*`.
 *
 * The ClauseShareConcurrency suite is additionally run under
 * ThreadSanitizer as the `tsan_share_store` ctest entry.
 */

#include <atomic>
#include <gtest/gtest.h>
#include <thread>

#include "core/clause_share.hpp"
#include "core/session_key.hpp"
#include "smt/portfolio_backend.hpp"
#include "smt/sat/solver.hpp"
#include "support/thread_budget.hpp"
#include "tests/test_util.hpp"

namespace gpumc::test {
namespace {

using smt::sat::ClauseStore;
using smt::sat::LBool;
using smt::sat::Lit;
using smt::sat::mkLit;
using smt::sat::Solver;
using smt::sat::Var;

// --- the store itself -------------------------------------------------

TEST(ClauseShareStore, FetchSkipsOwnClausesAndAdvancesCursor)
{
    ClauseStore store;
    int alice = store.registerSource();
    int bob = store.registerSource();

    store.publish(alice, {mkLit(0)});
    store.publish(bob, {mkLit(1), mkLit(2, true)});

    // Alice never re-imports her own clause.
    uint64_t cursor = 0;
    std::vector<std::vector<Lit>> out;
    EXPECT_EQ(store.fetch(alice, cursor, out), 1u);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], (std::vector<Lit>{mkLit(1), mkLit(2, true)}));

    // The cursor moved past everything: a second fetch is empty.
    out.clear();
    EXPECT_EQ(store.fetch(alice, cursor, out), 0u);
    EXPECT_TRUE(out.empty());

    // New clauses published after the fetch are picked up.
    store.publish(bob, {mkLit(3)});
    EXPECT_EQ(store.fetch(alice, cursor, out), 1u);
    EXPECT_EQ(store.size(), 3u);
}

TEST(ClauseShareStore, FifoEvictionPastCapacity)
{
    ClauseStore store(ClauseStore::Config{2, 8, 32});
    int writer = store.registerSource();
    int reader = store.registerSource();

    store.publish(writer, {mkLit(0)});
    store.publish(writer, {mkLit(1)});
    store.publish(writer, {mkLit(2)});

    EXPECT_EQ(store.size(), 2u);
    EXPECT_EQ(store.counters().published, 3);
    EXPECT_EQ(store.counters().evicted, 1);

    // A reader whose cursor predates the eviction just skips the lost
    // clause: it gets the two survivors, never a stale entry.
    uint64_t cursor = 0;
    std::vector<std::vector<Lit>> out;
    EXPECT_EQ(store.fetch(reader, cursor, out), 2u);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], (std::vector<Lit>{mkLit(1)}));
    EXPECT_EQ(out[1], (std::vector<Lit>{mkLit(2)}));
}

// --- import re-validation at restart boundaries -----------------------

TEST(ClauseShareImport, ForeignUnitIsImportedAtSolveStart)
{
    auto store = std::make_shared<ClauseStore>();
    int foreign = store->registerSource();

    Solver solver;
    Var a = solver.newVar(), b = solver.newVar();
    ASSERT_TRUE(solver.addClause({mkLit(a), mkLit(b)}));
    solver.attachStore(store);

    store->publish(foreign, {~mkLit(a)});
    ASSERT_TRUE(solver.solve());
    // The imported unit forces a=false, and (a or b) then forces b.
    EXPECT_EQ(solver.modelValue(mkLit(a)), LBool::False);
    EXPECT_EQ(solver.modelValue(mkLit(b)), LBool::True);
    EXPECT_EQ(solver.shareStats().imported, 1u);
    EXPECT_EQ(solver.shareStats().rejected, 0u);
}

TEST(ClauseShareImport, RootSatisfiedClauseIsSkipped)
{
    auto store = std::make_shared<ClauseStore>();
    int foreign = store->registerSource();

    Solver solver;
    Var a = solver.newVar(), b = solver.newVar();
    ASSERT_TRUE(solver.addClause({mkLit(a)}));
    solver.attachStore(store);

    // `a` is root-true in the importer: nothing to learn.
    store->publish(foreign, {mkLit(a), mkLit(b)});
    ASSERT_TRUE(solver.solve());
    EXPECT_EQ(solver.shareStats().imported, 0u);
    EXPECT_EQ(solver.shareStats().rejected, 1u);
}

TEST(ClauseShareImport, RootFalseLiteralsArePrunedToAUnit)
{
    auto store = std::make_shared<ClauseStore>();
    int foreign = store->registerSource();

    Solver solver;
    Var a = solver.newVar(), b = solver.newVar();
    ASSERT_TRUE(solver.addClause({~mkLit(a)}));
    solver.attachStore(store);

    // `a` is root-false: the import shrinks to the implied unit {b}.
    store->publish(foreign, {mkLit(a), mkLit(b)});
    ASSERT_TRUE(solver.solve());
    EXPECT_EQ(solver.modelValue(mkLit(b)), LBool::True);
    EXPECT_EQ(solver.shareStats().imported, 1u);
}

TEST(ClauseShareImport, EmptyRemainderIsARootConflict)
{
    auto store = std::make_shared<ClauseStore>();
    int foreign = store->registerSource();

    Solver solver;
    Var a = solver.newVar();
    ASSERT_TRUE(solver.addClause({~mkLit(a)}));
    solver.attachStore(store);

    // Every literal of the import is root-false: Unsat at level 0.
    store->publish(foreign, {mkLit(a)});
    EXPECT_FALSE(solver.solve());
    EXPECT_TRUE(solver.inConflict());
}

TEST(ClauseShareImport, UnknownVariableIsRejected)
{
    auto store = std::make_shared<ClauseStore>();
    int foreign = store->registerSource();

    Solver solver;
    Var a = solver.newVar();
    ASSERT_TRUE(solver.addClause({mkLit(a)}));
    solver.attachStore(store);

    // The publisher knew more variables than this importer.
    store->publish(foreign, {mkLit(7), mkLit(8, true)});
    ASSERT_TRUE(solver.solve());
    EXPECT_EQ(solver.shareStats().imported, 0u);
    EXPECT_EQ(solver.shareStats().rejected, 1u);
}

// --- the assumption-literal quarantine --------------------------------

/**
 * Exporter whose Unsat-under-assumption learns the unit {~act}: with
 * activation variable `act` guarding the contradictory pair
 * {~act, ~x}, {~act, x}, solving under the assumption {act} derives
 * and (absent a watermark) publishes {~act}.
 */
void
solveContradictionUnderActivation(const std::shared_ptr<ClauseStore> &store,
                                  Var watermark, Solver &solver)
{
    Var x = solver.newVar();  // structural variable, index 0
    Var act = solver.newVar();// activation literal, index 1
    ASSERT_TRUE(solver.addClause({~mkLit(act), ~mkLit(x)}));
    ASSERT_TRUE(solver.addClause({~mkLit(act), mkLit(x)}));
    solver.attachStore(store, watermark);
    EXPECT_FALSE(solver.solve({mkLit(act)}));
    // The solver itself stays usable without the assumption.
    EXPECT_TRUE(solver.solve());
}

/**
 * The crux the quarantine exists for: variable 1 is an activation
 * literal in the exporting solver but an unrelated variable in the
 * importing one. Without the watermark the exporter's learned {~act}
 * lands in the importer as {~act2} and retires a constraint group that
 * was never queried — flipping a Sat verdict to Unsat. This first test
 * documents the failure mode (and would catch the filter silently
 * applying where it must not); the second proves the watermark stops
 * the clause at export.
 */
TEST(ClauseShareQuarantine, UnfilteredActivationClauseFlipsAVerdict)
{
    auto store = std::make_shared<ClauseStore>();
    Solver exporter;
    // varLimit -1: no watermark, the activation unit is published.
    solveContradictionUnderActivation(store, -1, exporter);
    EXPECT_GE(exporter.shareStats().exported, 1u);

    Solver importer;
    Var x = importer.newVar();
    Var act2 = importer.newVar(); // same index as the exporter's `act`
    ASSERT_TRUE(importer.addClause({~mkLit(act2), mkLit(x)}));
    importer.attachStore(store, -1);

    // Poisoned: the foreign {~act} imports as the unit {~act2}, and
    // the assumption {act2} is then root-false — Unsat, although
    // {act2, x} is plainly satisfiable.
    EXPECT_FALSE(importer.solve({mkLit(act2), mkLit(x)}));
    EXPECT_GE(importer.shareStats().imported, 1u);
}

TEST(ClauseShareQuarantine, WatermarkKeepsActivationClausesHome)
{
    auto store = std::make_shared<ClauseStore>();
    Solver exporter;
    // Watermark 1: only variable 0 is structural; the learned {~act}
    // mentions variable 1 and must be rejected at export.
    solveContradictionUnderActivation(store, 1, exporter);
    EXPECT_EQ(exporter.shareStats().exported, 0u);
    EXPECT_GE(exporter.shareStats().rejected, 1u);
    EXPECT_EQ(store->size(), 0u);

    Solver importer;
    Var x = importer.newVar();
    Var act2 = importer.newVar();
    ASSERT_TRUE(importer.addClause({~mkLit(act2), mkLit(x)}));
    importer.attachStore(store, 1);

    // Nothing travelled, so the satisfiable query stays satisfiable.
    EXPECT_TRUE(importer.solve({mkLit(act2), mkLit(x)}));
    EXPECT_EQ(importer.modelValue(mkLit(x)), LBool::True);
    EXPECT_EQ(importer.shareStats().imported, 0u);
}

// --- the process-wide session-store registry --------------------------

core::SessionKey
keyNumbered(uint64_t n)
{
    core::SessionKey key{};
    std::get<0>(key) = n;
    return key;
}

TEST(ClauseShareRegistry, SameKeySameStore)
{
    core::clearSharedClauseStores();
    std::shared_ptr<ClauseStore> first =
        core::sharedClauseStore(keyNumbered(1));
    EXPECT_EQ(core::sharedClauseStore(keyNumbered(1)).get(), first.get());
    EXPECT_EQ(core::sharedClauseStoreCount(), 1u);
    EXPECT_NE(core::sharedClauseStore(keyNumbered(2)).get(), first.get());
    EXPECT_EQ(core::sharedClauseStoreCount(), 2u);
    core::clearSharedClauseStores();
    EXPECT_EQ(core::sharedClauseStoreCount(), 0u);
}

TEST(ClauseShareRegistry, LruEvictionKeepsRecentlyTouchedKeys)
{
    core::clearSharedClauseStores();
    std::shared_ptr<ClauseStore> zero =
        core::sharedClauseStore(keyNumbered(0));
    std::shared_ptr<ClauseStore> one =
        core::sharedClauseStore(keyNumbered(1));
    for (uint64_t n = 2; n < 64; ++n)
        core::sharedClauseStore(keyNumbered(n));
    EXPECT_EQ(core::sharedClauseStoreCount(), 64u);

    // Touch key 0, then push one key past the cap: key 1 — now the
    // least recently used — is the one evicted.
    core::sharedClauseStore(keyNumbered(0));
    core::sharedClauseStore(keyNumbered(64));
    EXPECT_EQ(core::sharedClauseStoreCount(), 64u);
    EXPECT_EQ(core::sharedClauseStore(keyNumbered(0)).get(), zero.get());
    EXPECT_NE(core::sharedClauseStore(keyNumbered(1)).get(), one.get());

    // The evicted store stays valid for live attachments.
    one->publish(one->registerSource(), {mkLit(0)});
    EXPECT_EQ(one->size(), 1u);
    core::clearSharedClauseStores();
}

// --- Verifier / portfolio integration ---------------------------------

TEST(ClauseShareVerifier, ShareModeIsPartOfTheSessionKey)
{
    prog::Program program = litmus::parseLitmusFile(
        litmusPath("vulkan/basic/mp-rel-acq.litmus"));
    core::VerifierOptions off;
    core::VerifierOptions on = off;
    on.clauseShare = smt::ClauseShareMode::Session;
    // Different sharing modes must never alias pooled sessions or
    // cached results.
    EXPECT_NE(core::sessionKey(program, vulkanModel(), off),
              core::sessionKey(program, vulkanModel(), on));
}

std::string
describe(const core::VerificationResult &result)
{
    if (result.unknown)
        return "unknown";
    return result.holds ? "holds" : "fails";
}

TEST(ClauseShareVerifier, SessionSharingKeepsVerdictsAndImports)
{
    core::clearSharedClauseStores();
    prog::Program program = litmus::parseLitmusFile(
        litmusPath("vulkan/basic/mp-rel-acq.litmus"));

    core::VerifierOptions off;
    off.validateWitness = true;
    core::Verifier baseline(program, vulkanModel(), off);
    std::vector<core::VerificationResult> offResults =
        baseline.checkAll();

    core::VerifierOptions on = off;
    on.clauseShare = smt::ClauseShareMode::Session;
    core::Verifier first(program, vulkanModel(), on);
    std::vector<core::VerificationResult> warmup = first.checkAll();
    core::Verifier second(program, vulkanModel(), on);
    std::vector<core::VerificationResult> onResults = second.checkAll();

    ASSERT_EQ(offResults.size(), onResults.size());
    for (size_t i = 0; i < offResults.size(); ++i) {
        EXPECT_EQ(describe(offResults[i]), describe(onResults[i])) << i;
        EXPECT_EQ(describe(warmup[i]), describe(onResults[i])) << i;
    }

    // The first sharing verifier published into the session store and
    // the rebuilt one imported from it; sharing-off runs carry no
    // share counters at all.
    int64_t exported = 0, imported = 0;
    for (const core::VerificationResult &result : warmup)
        exported += result.stats.get("solver.share.exported");
    for (const core::VerificationResult &result : onResults)
        imported += result.stats.get("solver.share.imported");
    EXPECT_GT(exported, 0);
    EXPECT_GT(imported, 0);
    EXPECT_EQ(offResults.back().stats.get("solver.share.imported"), 0);
    EXPECT_EQ(core::sharedClauseStoreCount(), 1u);
    core::clearSharedClauseStores();
}

TEST(ClauseShareVerifier, PortfolioLiftsShareCountersAboveLaneNamespace)
{
    core::clearSharedClauseStores();
    ThreadBudget::instance().setTotal(4);
    // Let the builtin lane win so its share counters are the live ones
    // and Z3 is the cancelled loser on every query.
    smt::PortfolioBackend::setTestDelays(0, 200);

    prog::Program program = litmus::parseLitmusFile(
        litmusPath("vulkan/basic/mp-rel-acq.litmus"));
    core::VerifierOptions options;
    options.backend = smt::BackendKind::Portfolio;
    options.clauseShare = smt::ClauseShareMode::Session;
    core::Verifier verifier(program, vulkanModel(), options);
    std::vector<core::VerificationResult> results = verifier.checkAll();
    ASSERT_FALSE(results.empty());

    // The sharing counters keep their canonical `solver.share.*` home;
    // everything else from the lanes stays quarantined under
    // `solver.portfolio.*` so a cancelled lane's work never
    // masquerades as single-backend counters. solveCalls is the
    // per-result delta: exactly one query each.
    bool sawShareKey = false;
    for (const core::VerificationResult &result : results) {
        for (const auto &[key, value] : result.stats.all()) {
            if (key.rfind("solver.", 0) != 0)
                continue;
            sawShareKey =
                sawShareKey || key.rfind("solver.share.", 0) == 0;
            EXPECT_TRUE(key.rfind("solver.portfolio.", 0) == 0 ||
                        key.rfind("solver.share.", 0) == 0 ||
                        key == "solver.solveCalls")
                << key;
        }
        EXPECT_EQ(result.stats.get("solver.solveCalls"), 1);
        EXPECT_EQ(result.stats.get("solver.conflicts"), 0);
    }
    EXPECT_TRUE(sawShareKey);

    smt::PortfolioBackend::setTestDelays(0, 0);
    ThreadBudget::instance().setTotal(0);
    core::clearSharedClauseStores();
}

// --- concurrency (also the tsan_share_store ctest entry) --------------

TEST(ClauseShareConcurrency, PublishFetchHammer)
{
    auto store = std::make_shared<ClauseStore>(
        ClauseStore::Config{256, 8, 32});
    constexpr int kThreads = 4;
    constexpr int kRounds = 500;

    std::atomic<int64_t> fetched{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            int source = store->registerSource();
            uint64_t cursor = 0;
            std::vector<std::vector<Lit>> out;
            for (int i = 0; i < kRounds; ++i) {
                store->publish(source,
                               {mkLit(t), mkLit(kThreads + i % 7, true)});
                out.clear();
                fetched.fetch_add(static_cast<int64_t>(
                    store->fetch(source, cursor, out)));
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();

    EXPECT_EQ(store->counters().published, kThreads * kRounds);
    EXPECT_LE(store->size(), 256u);
    EXPECT_GT(fetched.load(), 0);
}

TEST(ClauseShareConcurrency, SolversRacingOnOneStoreAgree)
{
    // Two solvers on the same (Unsat) pigeonhole instance, publishing
    // and importing through one store while both search.
    auto store = std::make_shared<ClauseStore>();
    constexpr int kHoles = 5;
    auto solveOne = [&](bool &unsat) {
        Solver solver;
        int pigeons = kHoles + 1;
        std::vector<std::vector<Var>> at(
            pigeons, std::vector<Var>(kHoles));
        for (int p = 0; p < pigeons; ++p)
            for (int h = 0; h < kHoles; ++h)
                at[p][h] = solver.newVar();
        for (int p = 0; p < pigeons; ++p) {
            std::vector<Lit> some;
            for (int h = 0; h < kHoles; ++h)
                some.push_back(mkLit(at[p][h]));
            solver.addClause(some);
        }
        for (int h = 0; h < kHoles; ++h)
            for (int p = 0; p < pigeons; ++p)
                for (int q = p + 1; q < pigeons; ++q)
                    solver.addClause(
                        {~mkLit(at[p][h]), ~mkLit(at[q][h])});
        solver.attachStore(store);
        unsat = !solver.solve();
    };

    bool first = false, second = false;
    std::thread a([&] { solveOne(first); });
    std::thread b([&] { solveOne(second); });
    a.join();
    b.join();
    EXPECT_TRUE(first);
    EXPECT_TRUE(second);
    EXPECT_GT(store->counters().published, 0);
}

TEST(ClauseShareConcurrency, RegistryHammer)
{
    core::clearSharedClauseStores();
    constexpr int kThreads = 4;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t] {
            for (uint64_t n = 0; n < 96; ++n) {
                std::shared_ptr<ClauseStore> store =
                    core::sharedClauseStore(
                        keyNumbered((n + t * 17) % 80));
                store->publish(store->registerSource(), {mkLit(0)});
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    EXPECT_LE(core::sharedClauseStoreCount(), 64u);
    core::clearSharedClauseStores();
}

} // namespace
} // namespace gpumc::test
