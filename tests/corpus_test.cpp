/**
 * @file
 * Corpus runner: every shipped litmus test carries `@expect` directives
 * (safety / liveness / drf verdicts per model); this test verifies all
 * of them. The corpus includes every figure of the paper, so this is
 * the repository's model-validation suite (Section 7.1).
 */

#include <filesystem>
#include <gtest/gtest.h>

#include "support/string_utils.hpp"
#include "tests/test_util.hpp"

namespace gpumc::test {
namespace {

namespace fs = std::filesystem;

std::vector<std::string>
collectCorpus()
{
    std::vector<std::string> out;
    for (const auto &entry :
         fs::recursive_directory_iterator(GPUMC_LITMUS_DIR)) {
        if (entry.is_regular_file() &&
            entry.path().extension() == ".litmus") {
            out.push_back(entry.path().string());
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

class Corpus : public ::testing::TestWithParam<std::string> {};

void
runExpectations(const prog::Program &program, const cat::CatModel &model,
                const std::string &safetyKey, const std::string &file)
{
    core::VerifierOptions options;
    options.validateWitness = true;
    auto it = program.meta.find("bound");
    if (it != program.meta.end()) {
        std::optional<int64_t> bound = parseInt(it->second);
        ASSERT_TRUE(bound) << file << ": malformed `bound` meta value '"
                           << it->second << "'";
        options.bound = static_cast<int>(*bound);
    }

    auto expect = [&](const std::string &key) -> std::string {
        auto m = program.meta.find(key);
        return m == program.meta.end() ? "" : m->second;
    };

    std::string safety = expect(safetyKey);
    if (safety.empty())
        safety = expect("safety");
    if (!safety.empty()) {
        core::Verifier verifier(program, model, options);
        core::VerificationResult result = verifier.checkSafety();
        EXPECT_EQ(result.holds, safety == "holds")
            << file << " [" << model.name() << "] safety: expected "
            << safety << ", got " << result.detail;
    }

    std::string liveness = expect("liveness");
    if (!liveness.empty()) {
        core::Verifier verifier(program, model, options);
        core::VerificationResult result = verifier.checkLiveness();
        EXPECT_EQ(result.holds, liveness == "live")
            << file << " [" << model.name() << "] liveness: expected "
            << liveness << ", got " << result.detail;
    }

    std::string drf = expect("drf");
    if (!drf.empty() && model.hasFlaggedAxioms()) {
        core::Verifier verifier(program, model, options);
        core::VerificationResult result = verifier.checkCatSpec();
        EXPECT_EQ(result.holds, drf == "racefree")
            << file << " [" << model.name() << "] drf: expected " << drf
            << ", got " << result.detail;
    }
}

TEST_P(Corpus, MeetsExpectations)
{
    const std::string &file = GetParam();
    prog::Program program = litmus::parseLitmusFile(file);
    if (program.arch == prog::Arch::Ptx) {
        runExpectations(program, ptx60Model(), "safety-v60", file);
        runExpectations(program, ptx75Model(), "safety-v75", file);
    } else {
        runExpectations(program, vulkanModel(), "safety", file);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Files, Corpus, ::testing::ValuesIn(collectCorpus()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        fs::path p(info.param);
        std::string name = p.stem().string();
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name + "_" + std::to_string(info.index);
    });

} // namespace
} // namespace gpumc::test
