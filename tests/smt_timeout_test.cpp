/**
 * @file
 * smt::Backend time-limit semantics, identical across all three
 * shipped backends: setTimeLimitMs(ms <= 0) must restore the backend's
 * unlimited default, not install a zero-millisecond budget.
 *
 * Regression: Z3 interprets the `timeout` parameter literally, so
 * mapping "disable" to `timeout=0` would leave every subsequent query
 * with a 0 ms budget and turn all results into Unknown — silently
 * poisoning any check that runs after a timed one on a shared session.
 *
 * The converse footgun lives in armTimeLimit: Deadline::remainingMs()
 * returns 0 both when expired and when unlimited, so forwarding an
 * expired deadline's remainder into setTimeLimitMs would launch an
 * unbounded solve from a budget that is already gone. The ArmTimeLimit
 * tests below pin the expired -> refuse-to-solve mapping.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "smt/backend.hpp"
#include "support/stats.hpp"

namespace gpumc::test {
namespace {

/**
 * Assert the pigeonhole principle PHP(holes+1, holes): every pigeon
 * gets a hole, no hole gets two pigeons. Unsat, and hard enough that
 * deciding it requires real search (no preprocessing shortcut).
 */
void
assertPigeonhole(smt::Backend &backend, int holes)
{
    const int pigeons = holes + 1;
    std::vector<std::vector<smt::Lit>> var(pigeons);
    for (int p = 0; p < pigeons; ++p)
        for (int h = 0; h < holes; ++h)
            var[p].push_back(backend.newVar());
    for (int p = 0; p < pigeons; ++p)
        backend.addClause(var[p]);
    for (int h = 0; h < holes; ++h)
        for (int p = 0; p < pigeons; ++p)
            for (int q = p + 1; q < pigeons; ++q)
                backend.addClause({-var[p][h], -var[q][h]});
}

class TimeLimit : public ::testing::TestWithParam<smt::BackendKind> {};

TEST_P(TimeLimit, ClearingTheLimitRestoresUnlimitedDefault)
{
    std::unique_ptr<smt::Backend> backend = smt::makeBackend(GetParam());
    assertPigeonhole(*backend, 6);

    // Install a 1 ms budget, then clear it. The solve must behave as
    // if no limit was ever set: PHP(7,6) needs far more than 1 ms of
    // default-budget search but is decided comfortably without one.
    backend->setTimeLimitMs(1);
    backend->setTimeLimitMs(0);
    EXPECT_EQ(backend->solve(), smt::SolveResult::Unsat);
}

TEST_P(TimeLimit, NegativeValuesDisableLikeZero)
{
    std::unique_ptr<smt::Backend> backend = smt::makeBackend(GetParam());
    assertPigeonhole(*backend, 6);
    backend->setTimeLimitMs(5000);
    backend->setTimeLimitMs(-42);
    EXPECT_EQ(backend->solve(), smt::SolveResult::Unsat);
}

TEST_P(TimeLimit, TinyBudgetYieldsUnknown)
{
    std::unique_ptr<smt::Backend> backend = smt::makeBackend(GetParam());
    // PHP(11,10) is out of reach for a 1 ms budget on any machine.
    assertPigeonhole(*backend, 10);
    backend->setTimeLimitMs(1);
    EXPECT_EQ(backend->solve(), smt::SolveResult::Unknown);
}

/**
 * Regression for the built-in solver's split deadlines: search() and
 * solveLimited() used to keep two independent locally-derived budgets,
 * and long unit-propagation runs checked neither — a solve could
 * overshoot its budget by the length of whatever propagation or
 * restart it was inside. With the single shared gpumc::Deadline the
 * whole solve (restart loop, conflict loop and propagation runs) must
 * come back promptly once the budget is exhausted.
 */
TEST_P(TimeLimit, BudgetSpansRestartSearchAndPropagationLoops)
{
    std::unique_ptr<smt::Backend> backend = smt::makeBackend(GetParam());
    // Big enough that 50 ms lands mid-search, deep inside propagation
    // runs and across several restarts.
    assertPigeonhole(*backend, 11);
    backend->setTimeLimitMs(50);
    Stopwatch watch;
    EXPECT_EQ(backend->solve(), smt::SolveResult::Unknown);
    // Generous CI margin, but far below the minutes PHP(12,11) needs:
    // the deadline fired from inside the loops, not after them.
    EXPECT_LT(watch.elapsedMs(), 5000.0);
}

/**
 * A timed-out solve must not leak its expired deadline into later
 * incremental use of the same solver: clauses added afterwards (which
 * propagate internally) and the next unlimited solve start fresh.
 */
TEST_P(TimeLimit, TimedOutSolveDoesNotPoisonLaterQueries)
{
    std::unique_ptr<smt::Backend> backend = smt::makeBackend(GetParam());
    assertPigeonhole(*backend, 6);
    backend->setTimeLimitMs(1);
    EXPECT_EQ(backend->solve(), smt::SolveResult::Unknown);

    // Adding clauses after the timeout exercises the propagation path
    // with the (now disarmed) deadline still in scope.
    smt::Lit extra = backend->newVar();
    backend->addClause({extra});
    backend->setTimeLimitMs(0);
    EXPECT_EQ(backend->solve(), smt::SolveResult::Unsat);
}

INSTANTIATE_TEST_SUITE_P(Backends, TimeLimit,
                         ::testing::Values(smt::BackendKind::Builtin,
                                           smt::BackendKind::Z3,
                                           smt::BackendKind::Portfolio),
                         [](const auto &info) {
                             return smt::backendKindName(info.param);
                         });

class ArmTimeLimit : public ::testing::TestWithParam<smt::BackendKind> {
};

TEST_P(ArmTimeLimit, ExpiredDeadlineRefusesToSolve)
{
    std::unique_ptr<smt::Backend> backend = smt::makeBackend(GetParam());
    assertPigeonhole(*backend, 10);

    // A deadline whose budget is already gone — the exact state a
    // session query sees when earlier properties ate the whole budget.
    // armTimeLimit must refuse (the caller reports Unknown) instead of
    // mapping remainingMs() == 0 to "unlimited".
    Deadline expired = Deadline::in(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_TRUE(expired.expired());
    EXPECT_FALSE(smt::armTimeLimit(*backend, expired));

    // Defence in depth: even a caller that ignores the refusal must
    // not get an unbounded solve — PHP(11,10) would otherwise pin a
    // core for minutes here.
    Stopwatch watch;
    EXPECT_EQ(backend->solve(), smt::SolveResult::Unknown);
    EXPECT_LT(watch.elapsedMs(), 5000.0);
}

TEST_P(ArmTimeLimit, UnlimitedDeadlineRestoresUnlimitedDefault)
{
    std::unique_ptr<smt::Backend> backend = smt::makeBackend(GetParam());
    assertPigeonhole(*backend, 6);

    // Leave a stale 1 ms budget behind, then arm from an unlimited
    // deadline: the solve must run without any limit.
    backend->setTimeLimitMs(1);
    Deadline unlimited;
    ASSERT_FALSE(unlimited.limited());
    EXPECT_TRUE(smt::armTimeLimit(*backend, unlimited));
    EXPECT_EQ(backend->solve(), smt::SolveResult::Unsat);
}

TEST_P(ArmTimeLimit, LiveDeadlineForwardsItsRemainder)
{
    std::unique_ptr<smt::Backend> backend = smt::makeBackend(GetParam());
    assertPigeonhole(*backend, 10);

    Deadline live = Deadline::in(50);
    EXPECT_TRUE(smt::armTimeLimit(*backend, live));
    Stopwatch watch;
    EXPECT_EQ(backend->solve(), smt::SolveResult::Unknown);
    EXPECT_LT(watch.elapsedMs(), 5000.0);
}

INSTANTIATE_TEST_SUITE_P(Backends, ArmTimeLimit,
                         ::testing::Values(smt::BackendKind::Builtin,
                                           smt::BackendKind::Z3,
                                           smt::BackendKind::Portfolio),
                         [](const auto &info) {
                             return smt::backendKindName(info.param);
                         });

} // namespace
} // namespace gpumc::test
