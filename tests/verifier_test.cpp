/**
 * @file
 * Tests for the Verifier facade: property dispatch, quantifier
 * semantics, filters, witness extraction and DOT output, liveness
 * details (co-maximal stale reads, hard vs spin kills), and the
 * GPUVerify-like static analyser.
 */

#include <gtest/gtest.h>

#include "gpuverify/static_drf.hpp"
#include "kernels/sync_kernels.hpp"
#include "tests/test_util.hpp"

namespace gpumc::test {
namespace {

core::VerificationResult
check(const char *source, core::Property property,
      core::VerifierOptions options = {})
{
    prog::Program program = litmus::parseLitmus(source);
    options.validateWitness = true;
    core::Verifier verifier(program, modelFor(program), options);
    return verifier.check(property);
}

TEST(Verifier, ForallCounterexampleWitness)
{
    core::VerificationResult r = check(R"(
PTX
P0@cta 0,gpu 0 | P1@cta 0,gpu 0 ;
st.weak x, 1   | ld.weak r0, x  ;
forall (P1:r0 == 1)
)",
                                       core::Property::Safety);
    EXPECT_FALSE(r.holds); // reading the init value is a counterexample
    ASSERT_TRUE(r.witness.has_value());
    // The witness must assign r0 something other than 1.
    EXPECT_EQ(r.witness->finalRegisters.at("P1:r0"), 0);
}

TEST(Verifier, WitnessContainsRfAndValues)
{
    core::VerificationResult r = check(R"(
PTX
P0@cta 0,gpu 0 | P1@cta 0,gpu 0 ;
st.weak x, 7   | ld.weak r0, x  ;
exists (P1:r0 == 7)
)",
                                       core::Property::Safety);
    ASSERT_TRUE(r.holds);
    ASSERT_TRUE(r.witness.has_value());
    const core::ExecutionWitness &w = *r.witness;
    ASSERT_EQ(w.rf.size(), 1u);
    // The read observes value 7 from the non-init store.
    EXPECT_EQ(w.events[w.rf[0].second].value, 7);
    EXPECT_FALSE(w.events[w.rf[0].first].display.find("st") ==
                 std::string::npos);

    std::string dot = w.toDot("test");
    EXPECT_NE(dot.find("digraph execution"), std::string::npos);
    EXPECT_NE(dot.find("rf"), std::string::npos);
    EXPECT_NE(dot.find("cluster_t1"), std::string::npos);

    std::string text = w.toText();
    EXPECT_NE(text.find("P1:r0 = 7"), std::string::npos);
}

TEST(Verifier, DrfWitnessFlagsRacyPair)
{
    core::VerificationResult r = check(R"(
VULKAN
P0@sg 0,wg 0,qf 0 | P1@sg 0,wg 1,qf 0 ;
st.sc0 x, 1       | ld.sc0 r0, x      ;
exists (true)
)",
                                       core::Property::CatSpec);
    EXPECT_FALSE(r.holds);
    ASSERT_TRUE(r.witness.has_value());
    EXPECT_FALSE(r.witness->flaggedPairs.empty());
}

TEST(Verifier, CatSpecHoldsWhenNoFlags)
{
    // PTX models have no flag axioms: trivially holds.
    core::VerificationResult r = check(R"(
PTX
P0@cta 0,gpu 0 ;
st.weak x, 1   ;
exists (true)
)",
                                       core::Property::CatSpec);
    EXPECT_TRUE(r.holds);
}

TEST(Liveness, StuckNeedsCoMaximalRead)
{
    // The flag IS eventually set: reading the co-maximal value exits
    // the loop, so the spin always terminates.
    core::VerificationResult live = check(R"(
PTX
P0@cta 0,gpu 0         | P1@cta 0,gpu 0          ;
st.release.gpu flag, 1 | LC00:                   ;
                       | ld.acquire.gpu r0, flag ;
                       | beq r0, 0, LC00         ;
exists (true)
)",
                                          core::Property::Liveness);
    EXPECT_TRUE(live.holds);
}

TEST(Liveness, HardLoopsAreNotLivenessBugs)
{
    // A loop with a store is not a spinloop: bounded executions are
    // simply cut off; no violation is reported (Section 8 limitation).
    core::VerificationResult r = check(R"(
PTX
P0@cta 0,gpu 0  ;
LC00:           ;
ld.weak r0, f   ;
st.weak x, 1    ;
beq r0, 0, LC00 ;
exists (true)
)",
                                       core::Property::Liveness);
    EXPECT_TRUE(r.holds);
}

TEST(Liveness, ViolationWitnessShowsSpin)
{
    core::VerificationResult r = check(R"(
PTX
P0@cta 0,gpu 0 | P1@cta 0,gpu 0          ;
st.weak x, 1   | LC00:                   ;
               | ld.acquire.gpu r0, flag ;
               | beq r0, 0, LC00         ;
exists (true)
)",
                                       core::Property::Liveness);
    EXPECT_FALSE(r.holds);
    ASSERT_TRUE(r.witness.has_value());
}

TEST(Liveness, MutualHandshakeDeadlocks)
{
    core::VerificationResult r = check(R"(
VULKAN
P0@sg 0,wg 0,qf 0          | P1@sg 0,wg 1,qf 0          ;
LC00:                      | LC10:                      ;
ld.atom.acq.dv.sc0 r0, a   | ld.atom.acq.dv.sc0 r1, b   ;
beq r0, 0, LC00            | beq r1, 0, LC10            ;
st.atom.rel.dv.sc0 b, 1    | st.atom.rel.dv.sc0 a, 1    ;
exists (true)
)",
                                       core::Property::Liveness);
    EXPECT_FALSE(r.holds);
}

TEST(Verifier, BoundAffectsReachability)
{
    // The loop must run at least 3 iterations to see c == 3; with
    // bound 1 that path is cut off, with bound 4 it is reachable.
    const char *source = R"(
PTX
P0@cta 0,gpu 0 ;
mov r0, 0      ;
LC00:          ;
atom.rlx.gpu.add r1, c, 1 ;
ld.relaxed.gpu r0, c ;
bne r0, 3, LC00 ;
exists (P0:r0 == 3)
)";
    core::VerifierOptions small;
    small.bound = 1;
    EXPECT_FALSE(check(source, core::Property::Safety, small).holds);
    core::VerifierOptions big;
    big.bound = 4;
    EXPECT_TRUE(check(source, core::Property::Safety, big).holds);
}

TEST(StaticDrf, BarrierIntervalsSeparate)
{
    prog::Program program = litmus::parseLitmus(R"(
VULKAN
P0@sg 0,wg 0,qf 0 | P1@sg 1,wg 0,qf 0 ;
st.sc0 x, 1       | cbar.wg 1         ;
cbar.wg 1         | ld.sc0 r0, x      ;
exists (true)
)");
    EXPECT_FALSE(gpuverify::analyzeStaticDrf(program).raceFound);
}

TEST(StaticDrf, SameIntervalRaces)
{
    prog::Program program = litmus::parseLitmus(R"(
VULKAN
P0@sg 0,wg 0,qf 0 | P1@sg 1,wg 0,qf 0 ;
st.sc0 x, 1       | ld.sc0 r0, x      ;
exists (true)
)");
    gpuverify::StaticDrfResult r = gpuverify::analyzeStaticDrf(program);
    ASSERT_TRUE(r.raceFound);
    EXPECT_EQ(r.races[0].location, "x");
}

TEST(StaticDrf, ScopeUnawareMissesScopedRace)
{
    // Workgroup-scope atomics across workgroups race under the Vulkan
    // model but look synchronizing to the static tool.
    prog::Program program = litmus::parseLitmus(R"(
VULKAN
P0@sg 0,wg 0,qf 0      | P1@sg 0,wg 1,qf 0      ;
st.atom.wg.sc0 x, 1    | ld.atom.wg.sc0 r0, x   ;
exists (true)
)");
    EXPECT_FALSE(gpuverify::analyzeStaticDrf(program).raceFound);
    core::Verifier verifier(program, vulkanModel(), {});
    EXPECT_FALSE(verifier.checkCatSpec().holds);
}

} // namespace
} // namespace gpumc::test

namespace gpumc::test {
namespace {

TEST(Verifier, SolverTimeoutReportsUnknown)
{
    // A hard mutual-exclusion UNSAT proof (tens of thousands of
    // conflicts at full speed) with a 1 ms budget must come back
    // unknown rather than wrong.
    prog::Program program = kernels::buildCaslock(
        {2, 2}, kernels::LockVariant::Base);
    core::VerifierOptions options;
    options.solverTimeoutMs = 1;
    options.wantWitness = false;
    core::Verifier verifier(program, vulkanModel(), options);
    core::VerificationResult r = verifier.checkSafety();
    EXPECT_TRUE(r.unknown);
    EXPECT_NE(r.detail.find("resource limit"), std::string::npos);
}

TEST(Verifier, GenerousTimeoutStillDecides)
{
    prog::Program program = litmus::parseLitmusFile(
        litmusPath("ptx/basic/mp-rel-acq.litmus"));
    core::VerifierOptions options;
    options.solverTimeoutMs = 60000;
    core::Verifier verifier(program, ptx60Model(), options);
    core::VerificationResult r = verifier.checkSafety();
    EXPECT_FALSE(r.unknown);
    EXPECT_FALSE(r.holds);
}

} // namespace
} // namespace gpumc::test
