/**
 * @file
 * Litmus emitter round-trips (the fuzz subsystem's roundtrip oracle in
 * unit-test form): every generated pattern-suite test serializes to
 * litmus text that reparses to a program with the same verifier
 * verdict, and re-emitting the reparsed program reproduces the text
 * byte for byte (canonical-form idempotence). Random full-profile
 * programs cover the corner constructs — proxies, CAS, loops,
 * spinloops, aliases, storage classes, av/vis, barriers.
 */

#include <gtest/gtest.h>

#include "fuzz/random_program.hpp"
#include "litmus/generator.hpp"
#include "litmus/litmus_emitter.hpp"
#include "tests/test_util.hpp"

namespace gpumc::test {
namespace {

using namespace prog;

bool
verdictOf(const Program &program, const cat::CatModel &model)
{
    core::VerifierOptions options;
    options.validateWitness = true;
    core::Verifier verifier(program, model, options);
    return verifier.checkSafety().holds;
}

void
expectRoundTrip(const Program &program, const cat::CatModel &model,
                const std::string &what)
{
    std::string text;
    ASSERT_NO_THROW(text = litmus::emitLitmus(program)) << what;
    Program reparsed;
    ASSERT_NO_THROW(reparsed = litmus::parseLitmus(text))
        << what << "\n" << text;
    EXPECT_EQ(text, litmus::emitLitmus(reparsed))
        << what << ": emit is not idempotent";
    EXPECT_EQ(verdictOf(program, model), verdictOf(reparsed, model))
        << what << ": verdict changed across emit/reparse\n" << text;
}

TEST(FuzzEmitter, PatternSuitePtxRoundTrips)
{
    for (bool withProxies : {false, true}) {
        const cat::CatModel &model =
            withProxies ? ptx75Model() : ptx60Model();
        for (const litmus::GeneratedTest &test :
             litmus::generatePatternSuite(Arch::Ptx, withProxies)) {
            expectRoundTrip(test.program, model, test.name);
        }
    }
}

TEST(FuzzEmitter, PatternSuiteVulkanRoundTrips)
{
    for (const litmus::GeneratedTest &test :
         litmus::generatePatternSuite(Arch::Vulkan, false)) {
        expectRoundTrip(test.program, vulkanModel(), test.name);
    }
}

/** Spinloops, labels and branches survive the text form. */
TEST(FuzzEmitter, ProgressSuiteReparsesIdentically)
{
    for (Arch arch : {Arch::Ptx, Arch::Vulkan}) {
        for (const litmus::GeneratedTest &test :
             litmus::generateProgressSuite(arch)) {
            std::string text;
            ASSERT_NO_THROW(text = litmus::emitLitmus(test.program))
                << test.name;
            Program reparsed;
            ASSERT_NO_THROW(reparsed = litmus::parseLitmus(text))
                << test.name << "\n" << text;
            EXPECT_EQ(text, litmus::emitLitmus(reparsed)) << test.name;
        }
    }
}

/** Full-profile random programs hit every emitter production. */
TEST(FuzzEmitter, RandomFullProfileReparsesIdentically)
{
    for (Arch arch : {Arch::Ptx, Arch::Vulkan}) {
        fuzz::FuzzConfig config = fuzz::FuzzConfig::full(arch);
        for (uint64_t i = 0; i < 60; ++i) {
            Program program = fuzz::randomProgram(0xe317, i, config);
            std::string text;
            ASSERT_NO_THROW(text = litmus::emitLitmus(program))
                << archName(arch) << " case " << i;
            Program reparsed;
            ASSERT_NO_THROW(reparsed = litmus::parseLitmus(text))
                << archName(arch) << " case " << i << "\n" << text;
            EXPECT_EQ(text, litmus::emitLitmus(reparsed))
                << archName(arch) << " case " << i;
        }
    }
}

/** Meta directives ride along through emit and reparse. */
TEST(FuzzEmitter, MetaDirectivesSurvive)
{
    Program program =
        fuzz::randomProgram(7, 0, fuzz::FuzzConfig::basic(Arch::Ptx));
    program.meta["safety"] = "holds";
    program.meta["bound"] = "3";
    Program reparsed =
        litmus::parseLitmus(litmus::emitLitmus(program));
    EXPECT_EQ(reparsed.meta.at("safety"), "holds");
    EXPECT_EQ(reparsed.meta.at("bound"), "3");
    EXPECT_EQ(reparsed.name, program.name);
}

} // namespace
} // namespace gpumc::test
