/**
 * @file
 * Unit and property tests for the built-in CDCL SAT solver: hand
 * instances, pigeonhole UNSATs, assumptions, incremental use, and a
 * randomized cross-check against brute-force enumeration.
 */

#include <gtest/gtest.h>

#include <random>

#include "smt/sat/solver.hpp"

namespace gpumc::smt::sat {
namespace {

TEST(SatSolver, EmptyInstanceIsSat)
{
    Solver solver;
    EXPECT_TRUE(solver.solve());
}

TEST(SatSolver, UnitPropagation)
{
    Solver solver;
    Var a = solver.newVar(), b = solver.newVar();
    ASSERT_TRUE(solver.addClause({mkLit(a)}));
    ASSERT_TRUE(solver.addClause({~mkLit(a), mkLit(b)}));
    ASSERT_TRUE(solver.solve());
    EXPECT_EQ(solver.modelValue(mkLit(a)), LBool::True);
    EXPECT_EQ(solver.modelValue(mkLit(b)), LBool::True);
}

TEST(SatSolver, ContradictionIsUnsat)
{
    Solver solver;
    Var a = solver.newVar();
    ASSERT_TRUE(solver.addClause({mkLit(a)}));
    EXPECT_FALSE(solver.addClause({~mkLit(a)}));
    EXPECT_FALSE(solver.solve());
}

TEST(SatSolver, DuplicateAndTautologicalLiterals)
{
    Solver solver;
    Var a = solver.newVar(), b = solver.newVar();
    // Tautology: ignored.
    ASSERT_TRUE(solver.addClause({mkLit(a), ~mkLit(a)}));
    // Duplicates collapse.
    ASSERT_TRUE(solver.addClause({mkLit(b), mkLit(b)}));
    ASSERT_TRUE(solver.solve());
    EXPECT_EQ(solver.modelValue(mkLit(b)), LBool::True);
}

TEST(SatSolver, XorChainSat)
{
    // x1 xor x2 xor x3 = 1 via CNF.
    Solver solver;
    Var x1 = solver.newVar(), x2 = solver.newVar(), x3 = solver.newVar();
    Lit a = mkLit(x1), b = mkLit(x2), c = mkLit(x3);
    solver.addClause({a, b, c});
    solver.addClause({a, ~b, ~c});
    solver.addClause({~a, b, ~c});
    solver.addClause({~a, ~b, c});
    ASSERT_TRUE(solver.solve());
    bool v1 = solver.modelValue(a) == LBool::True;
    bool v2 = solver.modelValue(b) == LBool::True;
    bool v3 = solver.modelValue(c) == LBool::True;
    EXPECT_TRUE(v1 ^ v2 ^ v3);
}

/** Pigeonhole principle: n+1 pigeons, n holes — classic UNSAT. */
void
pigeonhole(int holes)
{
    Solver solver;
    int pigeons = holes + 1;
    std::vector<std::vector<Var>> at(pigeons, std::vector<Var>(holes));
    for (int p = 0; p < pigeons; ++p) {
        for (int h = 0; h < holes; ++h)
            at[p][h] = solver.newVar();
    }
    for (int p = 0; p < pigeons; ++p) {
        std::vector<Lit> clause;
        for (int h = 0; h < holes; ++h)
            clause.push_back(mkLit(at[p][h]));
        solver.addClause(clause);
    }
    for (int h = 0; h < holes; ++h) {
        for (int p1 = 0; p1 < pigeons; ++p1) {
            for (int p2 = p1 + 1; p2 < pigeons; ++p2)
                solver.addClause({~mkLit(at[p1][h]), ~mkLit(at[p2][h])});
        }
    }
    EXPECT_FALSE(solver.solve()) << "PHP(" << holes << ") must be UNSAT";
}

TEST(SatSolver, Pigeonhole4)
{
    pigeonhole(4);
}

TEST(SatSolver, Pigeonhole6)
{
    pigeonhole(6);
}

TEST(SatSolver, Assumptions)
{
    Solver solver;
    Var a = solver.newVar(), b = solver.newVar();
    solver.addClause({~mkLit(a), mkLit(b)});
    solver.addClause({~mkLit(b), ~mkLit(a)});
    // Consistent alone.
    EXPECT_TRUE(solver.solve());
    // a forces b and ~b: contradiction under the assumption only.
    EXPECT_FALSE(solver.solve({mkLit(a)}));
    // Still satisfiable afterwards (assumptions are not permanent).
    EXPECT_TRUE(solver.solve());
    EXPECT_TRUE(solver.solve({~mkLit(a)}));
}

TEST(SatSolver, IncrementalClauses)
{
    Solver solver;
    Var a = solver.newVar(), b = solver.newVar();
    solver.addClause({mkLit(a), mkLit(b)});
    EXPECT_TRUE(solver.solve());
    solver.addClause({~mkLit(a)});
    EXPECT_TRUE(solver.solve());
    EXPECT_EQ(solver.modelValue(mkLit(b)), LBool::True);
    solver.addClause({~mkLit(b)});
    EXPECT_FALSE(solver.solve());
}

/** Brute-force satisfiability of a CNF over n <= 16 variables. */
bool
bruteForceSat(int numVars, const std::vector<std::vector<Lit>> &clauses)
{
    for (uint32_t assignment = 0; assignment < (1u << numVars);
         ++assignment) {
        bool all = true;
        for (const auto &clause : clauses) {
            bool any = false;
            for (Lit l : clause) {
                bool value = (assignment >> l.var()) & 1;
                any = any || (value != l.sign());
            }
            if (!any) {
                all = false;
                break;
            }
        }
        if (all)
            return true;
    }
    return false;
}

TEST(SatSolver, RandomCnfAgreesWithBruteForce)
{
    std::mt19937 rng(12345);
    for (int round = 0; round < 300; ++round) {
        int numVars = 3 + static_cast<int>(rng() % 8);
        int numClauses = 2 + static_cast<int>(rng() % (numVars * 4));
        Solver solver;
        for (int v = 0; v < numVars; ++v)
            solver.newVar();
        std::vector<std::vector<Lit>> clauses;
        bool addOk = true;
        for (int c = 0; c < numClauses; ++c) {
            int width = 1 + static_cast<int>(rng() % 3);
            std::vector<Lit> clause;
            for (int k = 0; k < width; ++k) {
                Var v = static_cast<Var>(rng() % numVars);
                clause.push_back(mkLit(v, rng() % 2 == 0));
            }
            clauses.push_back(clause);
            addOk = solver.addClause(clause) && addOk;
        }
        bool expected = bruteForceSat(numVars, clauses);
        bool actual = addOk && solver.solve();
        ASSERT_EQ(expected, actual) << "mismatch in round " << round;

        if (actual) {
            // The model must satisfy every clause.
            for (const auto &clause : clauses) {
                bool any = false;
                for (Lit l : clause)
                    any = any ||
                          solver.modelValue(l) == LBool::True;
                ASSERT_TRUE(any) << "model violates clause in round "
                                 << round;
            }
        }
    }
}

} // namespace
} // namespace gpumc::smt::sat
