/**
 * @file
 * Unit tests for the program IR: validation, tag computation, scope
 * predicates, the unroller (instances, kills, spinloops, events) and
 * the structural analyses (mutual exclusion, dependencies).
 */

#include <gtest/gtest.h>

#include "analysis/dependency_analysis.hpp"
#include "analysis/exec_analysis.hpp"
#include "litmus/litmus_parser.hpp"
#include "program/unroller.hpp"

namespace gpumc::test {
namespace {

using namespace prog;

Program
parse(const char *source)
{
    return litmus::parseLitmus(source);
}

TEST(ProgramValidate, RejectsUnknownJumpTarget)
{
    EXPECT_THROW(parse(R"(
PTX
P0@cta 0,gpu 0 ;
goto NOWHERE   ;
exists (true)
)"),
                 FatalError);
}

TEST(ProgramValidate, RejectsWrongArchScope)
{
    EXPECT_THROW(parse(R"(
VULKAN
P0@sg 0,wg 0,qf 0 ;
ld.atom.sys.sc0 r0, x ;
exists (true)
)"),
                 FatalError);
}

TEST(ProgramValidate, RejectsScInVulkan)
{
    EXPECT_THROW(parse(R"(
VULKAN
P0@sg 0,wg 0,qf 0 ;
membar.sc.dv.semsc0 ;
exists (true)
)"),
                 FatalError);
}

TEST(ProgramValidate, AliasChainsResolve)
{
    Program p = parse(R"(
PTX
{ x = 3; s -> x; t -> s; y = 1; }
P0@cta 0,gpu 0 ;
st.weak t, 1   ;
exists (true)
)");
    EXPECT_EQ(p.physLoc("t"), p.physLoc("x"));
    EXPECT_EQ(p.physLoc("s"), p.physLoc("x"));
    EXPECT_NE(p.physLoc("y"), p.physLoc("x"));
    EXPECT_NE(p.virtLoc("t"), p.virtLoc("x"));
}

TEST(ProgramValidate, RejectsCyclicAlias)
{
    EXPECT_THROW(parse(R"(
PTX
{ a -> b; b -> a; }
P0@cta 0,gpu 0 ;
st.weak a, 1   ;
exists (true)
)"),
                 FatalError);
}

TEST(EventTags, PtxTags)
{
    Program p = parse(R"(
PTX
P0@cta 0,gpu 0 ;
st.weak x, 1   ;
ld.acquire.sys r0, x ;
atom.rel.gpu.add r1, x, 1 ;
fence.sc.cta   ;
fence.proxy.alias ;
sust.weak s, 1 ;
exists (true)
)");
    UnrolledProgram up = unroll(p, 1);
    // Events: init(x), init(s), then thread events in order.
    int base = up.numInitEvents;
    EXPECT_EQ(base, 2);
    const Event &weakStore = up.events[base + 0];
    EXPECT_TRUE(weakStore.tags.count("W"));
    EXPECT_TRUE(weakStore.tags.count("WEAK"));
    EXPECT_TRUE(weakStore.tags.count("GEN"));
    EXPECT_FALSE(weakStore.tags.count("A"));

    const Event &acqLoad = up.events[base + 1];
    EXPECT_TRUE(acqLoad.tags.count("R"));
    EXPECT_TRUE(acqLoad.tags.count("ACQ"));
    EXPECT_TRUE(acqLoad.tags.count("A"));
    EXPECT_TRUE(acqLoad.tags.count("SYS"));

    const Event &rmwRead = up.events[base + 2];
    const Event &rmwWrite = up.events[base + 3];
    EXPECT_TRUE(rmwRead.tags.count("RMW"));
    EXPECT_TRUE(rmwWrite.tags.count("RMW"));
    EXPECT_EQ(rmwRead.rmwPartner, rmwWrite.id);
    EXPECT_TRUE(rmwWrite.tags.count("REL"));

    const Event &scFence = up.events[base + 4];
    EXPECT_TRUE(scFence.tags.count("F"));
    EXPECT_TRUE(scFence.tags.count("SC"));
    EXPECT_TRUE(scFence.tags.count("CTA"));

    const Event &aliasFence = up.events[base + 5];
    EXPECT_TRUE(aliasFence.tags.count("ALIAS"));

    const Event &surfStore = up.events[base + 6];
    EXPECT_TRUE(surfStore.tags.count("SUR"));
    EXPECT_FALSE(surfStore.tags.count("GEN"));

    // Init writes are observable through every proxy.
    EXPECT_TRUE(up.events[0].tags.count("TEX"));
    EXPECT_TRUE(up.events[0].tags.count("IW"));
}

TEST(EventTags, VulkanAvVisAndSemantics)
{
    Program p = parse(R"(
VULKAN
P0@sg 0,wg 0,qf 0 ;
st.sc1 x, 1       ;
st.atom.rel.dv.sc0 f, 1 ;
membar.acq.dv.semsc0.semsc1 ;
ld.sc0.vis r0, y  ;
exists (true)
)");
    UnrolledProgram up = unroll(p, 1);
    int base = up.numInitEvents;
    const Event &plainStore = up.events[base + 0];
    EXPECT_TRUE(plainStore.tags.count("SC1"));
    EXPECT_FALSE(plainStore.tags.count("AV"));
    EXPECT_TRUE(plainStore.tags.count("NONPRIV"));

    const Event &relAtomic = up.events[base + 1];
    EXPECT_TRUE(relAtomic.tags.count("AV"));
    EXPECT_TRUE(relAtomic.tags.count("SEMSC0"));
    EXPECT_TRUE(relAtomic.tags.count("SEMAV")) << "release implies av";

    const Event &fence = up.events[base + 2];
    EXPECT_TRUE(fence.tags.count("SEMSC0"));
    EXPECT_TRUE(fence.tags.count("SEMSC1"));
    EXPECT_TRUE(fence.tags.count("SEMVIS")) << "acquire implies vis";

    const Event &visLoad = up.events[base + 3];
    EXPECT_TRUE(visLoad.tags.count("VIS"));
}

TEST(ScopePredicates, Hierarchy)
{
    ThreadPlacement a, b;
    a.gpu = 0;
    a.cta = 0;
    b.gpu = 0;
    b.cta = 1;
    EXPECT_FALSE(sameCta(a, b));
    EXPECT_TRUE(scopeIncludes(a, Scope::Gpu, b));
    EXPECT_FALSE(scopeIncludes(a, Scope::Cta, b));
    EXPECT_TRUE(scopeIncludes(a, Scope::Sys, b));

    ThreadPlacement v1, v2;
    v1.wg = 1;
    v2.wg = 1;
    v1.sg = 0;
    v2.sg = 1;
    EXPECT_TRUE(sameWg(v1, v2));
    EXPECT_FALSE(sameSg(v1, v2));
    EXPECT_TRUE(scopeIncludes(v1, Scope::Wg, v2));
    EXPECT_FALSE(scopeIncludes(v1, Scope::Sg, v2));
}

TEST(Unroller, StraightLineHasNoKills)
{
    Program p = parse(R"(
PTX
P0@cta 0,gpu 0 ;
st.weak x, 1   ;
ld.weak r0, x  ;
exists (true)
)");
    UnrolledProgram up = unroll(p, 2);
    EXPECT_TRUE(up.killNodes.empty());
    EXPECT_TRUE(up.spinloops.empty());
    EXPECT_EQ(up.numEvents(), 3); // init + store + load
}

TEST(Unroller, LoopCreatesInstancesAndSpinKill)
{
    Program p = parse(R"(
PTX
P0@cta 0,gpu 0 ;
LC00:          ;
ld.weak r0, f  ;
beq r0, 0, LC00 ;
exists (true)
)");
    UnrolledProgram up = unroll(p, 2);
    ASSERT_EQ(up.spinloops.size(), 1u);
    EXPECT_EQ(up.spinloops[0].thread, 0);
    ASSERT_EQ(up.killNodes.size(), 1u);
    EXPECT_TRUE(up.nodes[up.killNodes[0]].spinKill);
    // 3 read instances (budget 2,1,0) + init write.
    int reads = 0;
    for (const Event &e : up.events)
        reads += e.kind == EventKind::Read ? 1 : 0;
    EXPECT_EQ(reads, 3);
    ASSERT_EQ(up.spinKills.size(), 1u);
    EXPECT_EQ(up.spinKills[0].lastIterationReads.size(), 1u);
}

TEST(Unroller, StoreLoopIsNotSpinloop)
{
    Program p = parse(R"(
PTX
P0@cta 0,gpu 0 ;
LC00:          ;
ld.weak r0, f  ;
st.weak x, 1   ;
beq r0, 0, LC00 ;
exists (true)
)");
    UnrolledProgram up = unroll(p, 2);
    EXPECT_TRUE(up.spinloops.empty());
    ASSERT_EQ(up.killNodes.size(), 1u);
    EXPECT_FALSE(up.nodes[up.killNodes[0]].spinKill);
}

TEST(ExecAnalysis, MutualExclusionOnBranches)
{
    Program p = parse(R"(
PTX
P0@cta 0,gpu 0 ;
ld.weak r0, c  ;
beq r0, 0, LTHEN ;
st.weak x, 1   ;
goto LEND      ;
LTHEN:         ;
st.weak y, 1   ;
LEND:          ;
ld.weak r1, x  ;
exists (true)
)");
    UnrolledProgram up = unroll(p, 2);
    analysis::ExecAnalysis exec(up);
    // Find the two stores and the final load.
    int storeX = -1, storeY = -1, loadX = -1, loadC = -1;
    for (const Event &e : up.events) {
        if (e.isInit)
            continue;
        if (e.kind == EventKind::Write && e.instr->location == "x")
            storeX = e.id;
        if (e.kind == EventKind::Write && e.instr->location == "y")
            storeY = e.id;
        if (e.kind == EventKind::Read && e.instr->location == "x")
            loadX = e.id;
        if (e.kind == EventKind::Read && e.instr->location == "c")
            loadC = e.id;
    }
    ASSERT_GE(storeX, 0);
    ASSERT_GE(storeY, 0);
    EXPECT_TRUE(exec.mutExcl(storeX, storeY));
    EXPECT_FALSE(exec.mutExcl(storeX, loadX));
    EXPECT_TRUE(exec.poBefore(loadC, loadX));
    EXPECT_TRUE(exec.eventUnconditional(loadC));
    EXPECT_FALSE(exec.eventUnconditional(storeX));
    EXPECT_TRUE(exec.eventUnconditional(loadX));
}

TEST(Dependencies, DataAndControl)
{
    Program p = parse(R"(
PTX
P0@cta 0,gpu 0 ;
ld.weak r0, x  ;
add r1, r0, 1  ;
st.weak y, r1  ;
bne r0, 0, LSKIP ;
st.weak z, 1   ;
LSKIP:         ;
exists (true)
)");
    UnrolledProgram up = unroll(p, 2);
    analysis::Dependencies deps =
        analysis::computeDependencies(up);
    int read = -1, storeY = -1, storeZ = -1;
    for (const Event &e : up.events) {
        if (e.isInit)
            continue;
        if (e.kind == EventKind::Read)
            read = e.id;
        if (e.kind == EventKind::Write && e.instr->location == "y")
            storeY = e.id;
        if (e.kind == EventKind::Write && e.instr->location == "z")
            storeZ = e.id;
    }
    EXPECT_TRUE(deps.data.contains(read, storeY))
        << "data flows through add";
    EXPECT_TRUE(deps.ctrl.contains(read, storeZ))
        << "branch guards the store";
    EXPECT_FALSE(deps.ctrl.contains(read, storeY));
}

TEST(ValueBits, AutoSizingCoversAccumulation)
{
    Program p = parse(R"(
PTX
P0@cta 0,gpu 0 | P1@cta 0,gpu 0 ;
atom.rlx.gpu.add r0, c, 100 | atom.rlx.gpu.add r0, c, 100 ;
exists (P0:r0 == 100)
)");
    int bits = p.suggestedValueBits(2);
    // Max reachable value ~ 600; needs at least 11 bits with headroom.
    EXPECT_GE(bits, 11);
}

} // namespace
} // namespace gpumc::test
