/**
 * @file
 * Differential-oracle harness unit tests. The critical regression
 * here is the silent-skip hazard: when the explicit checker declines a
 * program (`unsupportedReason`), the harness must report SKIPPED with
 * that reason — never agreement. Plus the bound-monotonicity
 * metamorphic property over a fixed seed set, on both SMT backends,
 * and the injected bound-gap fault detection.
 */

#include <gtest/gtest.h>

#include "fuzz/oracle.hpp"
#include "fuzz/random_program.hpp"
#include "tests/test_util.hpp"

namespace gpumc::test {
namespace {

using namespace prog;

/** Two-thread CAS program: outside the explicit checker's fragment. */
Program
casProgram()
{
    Program p;
    p.arch = Arch::Ptx;
    p.name = "cas-skip";

    Thread t0;
    t0.name = "P0";
    Instruction cas;
    cas.op = Opcode::Rmw;
    cas.rmwKind = RmwKind::Cas;
    cas.location = "x";
    cas.dst = "r0";
    cas.src = Operand::makeConst(0);  // expected
    cas.src2 = Operand::makeConst(1); // desired
    cas.order = MemOrder::AcqRel;
    cas.atomic = true;
    t0.instrs.push_back(std::move(cas));
    p.threads.push_back(std::move(t0));

    Thread t1;
    t1.name = "P1";
    Instruction ld;
    ld.op = Opcode::Load;
    ld.location = "x";
    ld.dst = "r1";
    ld.order = MemOrder::Acq;
    ld.atomic = true;
    t1.instrs.push_back(std::move(ld));
    p.threads.push_back(std::move(t1));

    VarDecl x;
    x.name = "x";
    p.vars.push_back(std::move(x));

    p.assertKind = AssertKind::Exists;
    p.assertion = Cond::mkCmp(true, CondTerm::makeReg(1, "r1"),
                              CondTerm::makeConst(1));
    p.validate();
    return p;
}

TEST(FuzzOracle, UnsupportedExplicitIsSkippedNotAgreement)
{
    Program program = casProgram();
    fuzz::OracleOptions options;
    fuzz::OracleReport report =
        fuzz::runOracles(program, ptx75Model(), options);

    const fuzz::OracleOutcome *outcome =
        report.find(fuzz::OracleKind::SmtVsExplicit);
    ASSERT_NE(outcome, nullptr);
    EXPECT_EQ(outcome->verdict, fuzz::OracleVerdict::Skipped);
    EXPECT_NE(outcome->detail.find("compare-and-swap"),
              std::string::npos)
        << "skip must carry the checker's reason, got: "
        << outcome->detail;
    // The skip must also be visible in the campaign log line.
    EXPECT_NE(report.summary().find(
                  "smt-vs-explicit=skip(compare-and-swap"),
              std::string::npos)
        << report.summary();
}

TEST(FuzzOracle, CompareNeverTurnsUnsupportedIntoAgree)
{
    // Even with identical (agreeing) SMT runs on both sides, an
    // unsupported explicit result must not count as agreement.
    Program program = casProgram();
    fuzz::OracleInputs inputs;
    inputs.program = &program;
    core::VerificationResult fake;
    fake.holds = true;
    inputs.builtinSafety = fuzz::EngineRun::of(fake);
    inputs.explicitRan = true;
    inputs.explicitResult.supported = false;
    inputs.explicitResult.unsupportedReason = "compare-and-swap";
    inputs.explicitResult.conditionHolds = true; // would "agree"

    fuzz::OracleOptions options;
    options = options.only(fuzz::OracleKind::SmtVsExplicit);
    fuzz::OracleReport report = fuzz::compareOracles(inputs, options);
    ASSERT_EQ(report.outcomes.size(), 1u);
    EXPECT_EQ(report.outcomes[0].verdict, fuzz::OracleVerdict::Skipped);
    EXPECT_EQ(report.outcomes[0].detail, "compare-and-swap");
}

/**
 * Metamorphic property: a witness found at unroll bound k must persist
 * at bound k+1 (larger bounds only admit more executions). Checked
 * directly against both SMT backends over a fixed seed set of
 * control-flow-heavy programs.
 */
TEST(FuzzOracle, BoundMonotonicityBothBackends)
{
    const int bound = 2;
    for (Arch arch : {Arch::Ptx, Arch::Vulkan}) {
        const cat::CatModel &model =
            arch == Arch::Ptx ? ptx75Model() : vulkanModel();
        fuzz::FuzzConfig config = fuzz::FuzzConfig::withControlFlow(arch);
        for (uint64_t seed : {11u, 22u, 33u, 44u, 55u}) {
            Program program = fuzz::randomProgram(seed, 0, config);
            for (smt::BackendKind backend :
                 {smt::BackendKind::Builtin, smt::BackendKind::Z3}) {
                auto run = [&](int k) {
                    core::VerifierOptions vo;
                    vo.backend = backend;
                    vo.bound = k;
                    vo.validateWitness = true;
                    core::Verifier verifier(program, model, vo);
                    return fuzz::witnessFound(program,
                                              verifier.checkSafety());
                };
                bool atK = run(bound);
                bool atK1 = run(bound + 1);
                if (atK) {
                    EXPECT_TRUE(atK1)
                        << archName(arch) << " seed=" << seed
                        << " backend="
                        << (backend == smt::BackendKind::Z3 ? "z3"
                                                            : "builtin")
                        << ": witness at bound " << bound
                        << " vanished at bound " << bound + 1;
                }
            }
        }
    }
}

/** The harness's own bound-mono oracle agrees on the same seed set. */
TEST(FuzzOracle, BoundMonoOracleAgreesOnFixedSeeds)
{
    fuzz::OracleOptions options;
    options = options.only(fuzz::OracleKind::BoundMono);
    for (Arch arch : {Arch::Ptx, Arch::Vulkan}) {
        const cat::CatModel &model =
            arch == Arch::Ptx ? ptx75Model() : vulkanModel();
        fuzz::FuzzConfig config = fuzz::FuzzConfig::withControlFlow(arch);
        for (uint64_t i = 0; i < 8; ++i) {
            Program program = fuzz::randomProgram(0xb0cd, i, config);
            fuzz::OracleReport report =
                fuzz::runOracles(program, model, options);
            const fuzz::OracleOutcome *outcome =
                report.find(fuzz::OracleKind::BoundMono);
            ASSERT_NE(outcome, nullptr);
            EXPECT_NE(outcome->verdict, fuzz::OracleVerdict::Disagree)
                << archName(arch) << " case " << i << ": "
                << outcome->detail;
        }
    }
}

/**
 * The session-reuse oracle: shared-session checkAll() must agree
 * verdict-for-verdict with three fresh single-property sessions, on
 * both backends, over a fixed seed set.
 */
TEST(FuzzOracle, SessionReuseOracleAgreesOnFixedSeeds)
{
    fuzz::OracleOptions options;
    options = options.only(fuzz::OracleKind::SessionReuse);
    for (Arch arch : {Arch::Ptx, Arch::Vulkan}) {
        const cat::CatModel &model =
            arch == Arch::Ptx ? ptx75Model() : vulkanModel();
        fuzz::FuzzConfig config = fuzz::FuzzConfig::withControlFlow(arch);
        for (uint64_t i = 0; i < 6; ++i) {
            Program program = fuzz::randomProgram(0x5e55, i, config);
            fuzz::OracleReport report =
                fuzz::runOracles(program, model, options);
            const fuzz::OracleOutcome *outcome =
                report.find(fuzz::OracleKind::SessionReuse);
            ASSERT_NE(outcome, nullptr);
            EXPECT_NE(outcome->verdict, fuzz::OracleVerdict::Disagree)
                << archName(arch) << " case " << i << ": "
                << outcome->detail;
        }
    }
}

/** The injected bound-gap fault is detected as a disagreement. */
TEST(FuzzOracle, InjectedBoundGapIsDetected)
{
    // Counted loop with 3 iterations: needs 2 backward jumps, so the
    // exists-witness is visible at bound 2 but not at bound 1.
    const char *source = "PTX \"bound-gap\"\n"
                         "{ v0 = 0; }\n"
                         "P0@cta 0,gpu 0 ;\n"
                         "mov r0, 0      ;\n"
                         "L0:            ;\n"
                         "add r0, r0, 1  ;\n"
                         "bne r0, 3, L0  ;\n"
                         "exists (P0:r0 == 3)\n";
    Program program = litmus::parseLitmus(source);

    fuzz::OracleOptions options;
    options = options.only(fuzz::OracleKind::Z3VsBuiltin);
    options.bound = 2;

    fuzz::OracleReport healthy =
        fuzz::runOracles(program, ptx75Model(), options);
    EXPECT_EQ(healthy.outcomes[0].verdict, fuzz::OracleVerdict::Agree)
        << healthy.outcomes[0].detail;

    options.z3Bound = 1; // the --inject=bound-gap fault
    fuzz::OracleReport injected =
        fuzz::runOracles(program, ptx75Model(), options);
    EXPECT_EQ(injected.outcomes[0].verdict,
              fuzz::OracleVerdict::Disagree);
    EXPECT_NE(injected.outcomes[0].detail.find("builtin[bound=2]"),
              std::string::npos)
        << injected.outcomes[0].detail;
}

} // namespace
} // namespace gpumc::test
