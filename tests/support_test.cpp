/**
 * @file
 * Unit tests for the support library: string helpers, stopwatch/stats,
 * diagnostics.
 */

#include <gtest/gtest.h>

#include "support/diagnostics.hpp"
#include "support/stats.hpp"
#include "support/string_utils.hpp"

namespace gpumc {
namespace {

TEST(StringUtils, Split)
{
    EXPECT_EQ(split("a,b,,c", ','),
              (std::vector<std::string>{"a", "b", "", "c"}));
    EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
    EXPECT_EQ(split("x", ','), (std::vector<std::string>{"x"}));
}

TEST(StringUtils, SplitWhitespace)
{
    EXPECT_EQ(splitWhitespace("  a \t b\nc  "),
              (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_TRUE(splitWhitespace("   ").empty());
}

TEST(StringUtils, Trim)
{
    EXPECT_EQ(trim("  hi  "), "hi");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim(" \t\n"), "");
    EXPECT_EQ(trim("x"), "x");
}

TEST(StringUtils, Affixes)
{
    EXPECT_TRUE(startsWith("foobar", "foo"));
    EXPECT_FALSE(startsWith("fo", "foo"));
    EXPECT_TRUE(endsWith("test.litmus", ".litmus"));
    EXPECT_FALSE(endsWith("litmus", ".litmus"));
}

TEST(StringUtils, JoinAndLower)
{
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({}, ","), "");
    EXPECT_EQ(toLower("PTX v7.5"), "ptx v7.5");
}

TEST(StringUtils, IsInteger)
{
    EXPECT_TRUE(isInteger("42"));
    EXPECT_TRUE(isInteger("-7"));
    EXPECT_FALSE(isInteger(""));
    EXPECT_FALSE(isInteger("-"));
    EXPECT_FALSE(isInteger("1x"));
    EXPECT_FALSE(isInteger("x1"));
}

TEST(Diagnostics, FatalErrorCarriesLocation)
{
    try {
        fatalAt(SourceLoc{3, 7}, "bad ", 42);
        FAIL() << "expected a throw";
    } catch (const FatalError &error) {
        EXPECT_NE(std::string(error.what()).find("3:7"),
                  std::string::npos);
        EXPECT_NE(std::string(error.what()).find("bad 42"),
                  std::string::npos);
        EXPECT_EQ(error.loc().line, 3);
    }
}

TEST(Diagnostics, SourceLocStr)
{
    EXPECT_EQ(SourceLoc{}.str(), "<unknown>");
    EXPECT_EQ((SourceLoc{12, 1}).str(), "12:1");
    EXPECT_FALSE(SourceLoc{}.known());
}

TEST(Stats, RegistryAccumulates)
{
    StatsRegistry stats;
    stats.add("x", 2);
    stats.add("x", 3);
    stats.set("y", 10);
    EXPECT_EQ(stats.get("x"), 5);
    EXPECT_EQ(stats.get("y"), 10);
    EXPECT_EQ(stats.get("missing"), 0);
    EXPECT_EQ(stats.all().size(), 2u);
}

TEST(Stats, StopwatchAdvances)
{
    Stopwatch watch;
    volatile int sink = 0;
    for (int i = 0; i < 100000; ++i)
        sink += i;
    EXPECT_GE(watch.elapsedMs(), 0.0);
    watch.restart();
    EXPECT_LT(watch.elapsedMs(), 1000.0);
}

} // namespace
} // namespace gpumc
