/**
 * @file
 * Unit tests for the support library: string helpers, stopwatch/stats,
 * diagnostics, thread pool / parallel-for.
 */

#include <atomic>
#include <chrono>
#include <gtest/gtest.h>
#include <numeric>
#include <thread>

#include "support/diagnostics.hpp"
#include "support/stats.hpp"
#include "support/string_utils.hpp"
#include "support/thread_pool.hpp"

namespace gpumc {
namespace {

TEST(StringUtils, Split)
{
    EXPECT_EQ(split("a,b,,c", ','),
              (std::vector<std::string>{"a", "b", "", "c"}));
    EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
    EXPECT_EQ(split("x", ','), (std::vector<std::string>{"x"}));
}

TEST(StringUtils, SplitWhitespace)
{
    EXPECT_EQ(splitWhitespace("  a \t b\nc  "),
              (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_TRUE(splitWhitespace("   ").empty());
}

TEST(StringUtils, Trim)
{
    EXPECT_EQ(trim("  hi  "), "hi");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim(" \t\n"), "");
    EXPECT_EQ(trim("x"), "x");
}

TEST(StringUtils, Affixes)
{
    EXPECT_TRUE(startsWith("foobar", "foo"));
    EXPECT_FALSE(startsWith("fo", "foo"));
    EXPECT_TRUE(endsWith("test.litmus", ".litmus"));
    EXPECT_FALSE(endsWith("litmus", ".litmus"));
}

TEST(StringUtils, JoinAndLower)
{
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({}, ","), "");
    EXPECT_EQ(toLower("PTX v7.5"), "ptx v7.5");
}

TEST(StringUtils, IsInteger)
{
    EXPECT_TRUE(isInteger("42"));
    EXPECT_TRUE(isInteger("-7"));
    EXPECT_FALSE(isInteger(""));
    EXPECT_FALSE(isInteger("-"));
    EXPECT_FALSE(isInteger("1x"));
    EXPECT_FALSE(isInteger("x1"));
}

TEST(Diagnostics, FatalErrorCarriesLocation)
{
    try {
        fatalAt(SourceLoc{3, 7}, "bad ", 42);
        FAIL() << "expected a throw";
    } catch (const FatalError &error) {
        EXPECT_NE(std::string(error.what()).find("3:7"),
                  std::string::npos);
        EXPECT_NE(std::string(error.what()).find("bad 42"),
                  std::string::npos);
        EXPECT_EQ(error.loc().line, 3);
    }
}

TEST(Diagnostics, SourceLocStr)
{
    EXPECT_EQ(SourceLoc{}.str(), "<unknown>");
    EXPECT_EQ((SourceLoc{12, 1}).str(), "12:1");
    EXPECT_FALSE(SourceLoc{}.known());
}

TEST(Stats, RegistryAccumulates)
{
    StatsRegistry stats;
    stats.add("x", 2);
    stats.add("x", 3);
    stats.set("y", 10);
    EXPECT_EQ(stats.get("x"), 5);
    EXPECT_EQ(stats.get("y"), 10);
    EXPECT_EQ(stats.get("missing"), 0);
    EXPECT_EQ(stats.all().size(), 2u);
}

TEST(StringUtils, ParseInt)
{
    EXPECT_EQ(parseInt("0"), 0);
    EXPECT_EQ(parseInt("42"), 42);
    EXPECT_EQ(parseInt("-17"), -17);
    EXPECT_EQ(parseInt("9223372036854775807"), INT64_MAX);
    EXPECT_FALSE(parseInt(""));
    EXPECT_FALSE(parseInt("-"));
    EXPECT_FALSE(parseInt("12x"));
    EXPECT_FALSE(parseInt("x12"));
    EXPECT_FALSE(parseInt("1 2"));
    EXPECT_FALSE(parseInt("4.5"));
    EXPECT_FALSE(parseInt("99999999999999999999")); // overflow
}

TEST(ThreadPool, RunsEverySubmittedTask)
{
    std::atomic<int> counter{0};
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    for (int i = 0; i < 100; ++i)
        pool.submit([&] { counter.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(counter.load(), 100);

    // The pool is reusable after wait().
    pool.submit([&] { counter.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(counter.load(), 101);
}

TEST(ThreadPool, DefaultConcurrencyIsPositive)
{
    EXPECT_GE(defaultConcurrency(), 1u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    for (unsigned threads : {1u, 2u, 7u}) {
        std::vector<std::atomic<int>> hits(257);
        parallelFor(257, threads,
                    [&](int64_t i) { hits[i].fetch_add(1); });
        for (const auto &h : hits)
            EXPECT_EQ(h.load(), 1);
    }
}

TEST(ParallelFor, EmptyAndSingleton)
{
    int calls = 0;
    parallelFor(0, 4, [&](int64_t) { calls++; });
    EXPECT_EQ(calls, 0);
    parallelFor(1, 4, [&](int64_t i) {
        EXPECT_EQ(i, 0);
        calls++;
    });
    EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, PropagatesTheFirstException)
{
    std::atomic<int> ran{0};
    try {
        parallelFor(64, 4, [&](int64_t i) {
            ran.fetch_add(1);
            if (i == 5)
                fatal("boom at ", i);
        });
        FAIL() << "expected FatalError";
    } catch (const FatalError &error) {
        EXPECT_STREQ(error.what(), "boom at 5");
    }
    // Some indices may be skipped after the failure, none run twice.
    EXPECT_LE(ran.load(), 64);
    EXPECT_GE(ran.load(), 1);
}

TEST(ParallelFor, SequentialFallbackIsInOrder)
{
    std::vector<int64_t> order;
    parallelFor(5, 1, [&](int64_t i) { order.push_back(i); });
    EXPECT_EQ(order, (std::vector<int64_t>{0, 1, 2, 3, 4}));
}

TEST(Deadline, UnlimitedByDefault)
{
    Deadline deadline;
    EXPECT_FALSE(deadline.limited());
    EXPECT_FALSE(deadline.expired());
    EXPECT_EQ(deadline.remainingMs(), 0);

    // Non-positive budgets mean "no deadline", matching the
    // setTimeLimitMs(<=0) disable convention of smt::Backend.
    EXPECT_FALSE(Deadline::in(0).limited());
    EXPECT_FALSE(Deadline::in(-25).limited());
}

TEST(Deadline, CountsDownAndExpires)
{
    Deadline deadline = Deadline::in(60000);
    EXPECT_TRUE(deadline.limited());
    EXPECT_FALSE(deadline.expired());
    int64_t remaining = deadline.remainingMs();
    EXPECT_GT(remaining, 0);
    EXPECT_LE(remaining, 60000);

    // A 1 ms deadline is over after a 1 ms sleep; remainingMs clamps
    // at zero instead of going negative.
    Deadline tiny = Deadline::in(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_TRUE(tiny.expired());
    EXPECT_EQ(tiny.remainingMs(), 0);
}

TEST(Stats, StopwatchAdvances)
{
    Stopwatch watch;
    volatile int sink = 0;
    for (int i = 0; i < 100000; ++i)
        sink += i;
    EXPECT_GE(watch.elapsedMs(), 0.0);
    watch.restart();
    EXPECT_LT(watch.elapsedMs(), 1000.0);
}

} // namespace
} // namespace gpumc
