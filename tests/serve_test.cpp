/**
 * @file
 * The gpumc-serve building blocks below the transport: the wire
 * protocol parser, the fingerprint result cache, the live-session
 * pool, and the Engine end to end (in process, no sockets) — including
 * the session-key regression that motivated content fingerprints: a
 * model reloaded at a recycled address must never alias another
 * model's sessions or cached verdicts.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <new>
#include <sstream>

#include "core/session_key.hpp"
#include "serve/engine.hpp"
#include "serve/protocol.hpp"
#include "serve/result_cache.hpp"
#include "serve/session_pool.hpp"
#include "support/json.hpp"
#include "tests/test_util.hpp"

namespace gpumc::test {
namespace {

/** A distinct, structurally plausible session key per seed. */
core::SessionKey
keyOf(uint64_t seed)
{
    return core::SessionKey{seed,  seed + 1, seed + 2, seed + 3,
                            0,     2,        8,        true,
                            false, false,    false,    0,
                            0,     0};
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

TEST(ResultCache, HitMissAndLruEviction)
{
    serve::ResultCache cache(2);
    serve::ResultKey a{keyOf(10), 0};
    serve::ResultKey b{keyOf(20), 0};
    serve::ResultKey c{keyOf(30), 0};

    EXPECT_FALSE(cache.lookup(a).has_value());

    serve::CachedResult value;
    value.holds = true;
    value.detail = "condition reachable";
    cache.insert(a, value);
    cache.insert(b, value);

    std::optional<serve::CachedResult> hit = cache.lookup(a);
    ASSERT_TRUE(hit.has_value());
    EXPECT_TRUE(hit->holds);
    EXPECT_EQ(hit->detail, "condition reachable");

    // a was just refreshed, so inserting c evicts b (the LRU entry).
    cache.insert(c, value);
    EXPECT_TRUE(cache.lookup(a).has_value());
    EXPECT_FALSE(cache.lookup(b).has_value());
    EXPECT_TRUE(cache.lookup(c).has_value());

    serve::ResultCache::Counters counters = cache.counters();
    EXPECT_EQ(counters.hits, 3);
    EXPECT_EQ(counters.misses, 2); // the initial miss + evicted b
    EXPECT_EQ(counters.evictions, 1);
    EXPECT_EQ(counters.size, 2);
}

TEST(ResultCache, SameKeyDifferentPropertyIsDistinct)
{
    serve::ResultCache cache(8);
    serve::CachedResult value;
    value.detail = "safety";
    cache.insert({keyOf(1), 0}, value);
    EXPECT_TRUE(cache.lookup({keyOf(1), 0}).has_value());
    EXPECT_FALSE(cache.lookup({keyOf(1), 1}).has_value());
}

TEST(ResultCache, ZeroCapacityDisables)
{
    serve::ResultCache cache(0);
    cache.insert({keyOf(1), 0}, {});
    EXPECT_FALSE(cache.lookup({keyOf(1), 0}).has_value());
}

TEST(ResultCache, SaveAndLoadRoundTripPreservesLruOrder)
{
    const std::string path =
        ::testing::TempDir() + "gpumc_result_cache_roundtrip.jsonl";
    std::remove(path.c_str());

    serve::ResultCache cache(3);
    // Fingerprints above 2^53 prove the decimal-string encoding: as
    // JSON numbers (doubles) they would come back corrupted.
    serve::ResultKey a{keyOf((uint64_t{1} << 62) + 7), 0};
    serve::ResultKey b{keyOf(20), 1};
    serve::ResultKey c{keyOf(30), 2};
    serve::CachedResult value;
    value.holds = true;
    value.detail = "condition \"quoted\" reachable";
    value.solveMs = 12.5;
    cache.insert(a, value);
    value.holds = false;
    value.detail = "liveness";
    cache.insert(b, value);
    value.detail = "catspec";
    cache.insert(c, value);
    cache.lookup(a); // refresh: LRU order is now b, c, a
    ASSERT_TRUE(cache.saveToFile(path));

    serve::ResultCache reloaded(3);
    ASSERT_TRUE(reloaded.loadFromFile(path));
    EXPECT_EQ(reloaded.counters().size, 3);
    // Loading resets traffic counters: metrics describe this process.
    EXPECT_EQ(reloaded.counters().hits, 0);
    EXPECT_EQ(reloaded.counters().misses, 0);

    std::optional<serve::CachedResult> hit = reloaded.lookup(a);
    ASSERT_TRUE(hit.has_value());
    EXPECT_TRUE(hit->holds);
    EXPECT_EQ(hit->detail, "condition \"quoted\" reachable");
    EXPECT_DOUBLE_EQ(hit->solveMs, 12.5);
    ASSERT_TRUE(reloaded.lookup(c).has_value());
    EXPECT_EQ(reloaded.lookup(b)->detail, "liveness");

    // The reload restored the LRU *order*, not just the entries: after
    // the same refresh pattern (a, c, b touched above), inserting a
    // fourth entry evicts a — the least recently used.
    reloaded.insert({keyOf(40), 0}, serve::CachedResult{});
    EXPECT_FALSE(reloaded.lookup(a).has_value());
    EXPECT_TRUE(reloaded.lookup(b).has_value());
    EXPECT_TRUE(reloaded.lookup(c).has_value());
    std::remove(path.c_str());
}

TEST(ResultCache, LoadFallsBackColdOnBadFiles)
{
    const std::string path =
        ::testing::TempDir() + "gpumc_result_cache_bad.jsonl";

    // Missing file: cold start, no error escalation.
    std::remove(path.c_str());
    serve::ResultCache cache(4);
    EXPECT_FALSE(cache.loadFromFile(path));
    EXPECT_EQ(cache.counters().size, 0);

    // Garbage content.
    {
        std::ofstream out(path);
        out << "this is not a cache file\n";
    }
    EXPECT_FALSE(cache.loadFromFile(path));
    EXPECT_EQ(cache.counters().size, 0);

    // Valid header, wrong key arity (a future gpumc's file): cold.
    {
        std::ofstream out(path);
        out << "{\"gpumc_result_cache\":1,\"key_fields\":99}\n";
    }
    EXPECT_FALSE(cache.loadFromFile(path));
    EXPECT_EQ(cache.counters().size, 0);

    // A corrupt entry after valid ones: the whole load starts cold —
    // no partially-trusted cache.
    cache.insert({keyOf(1), 0}, serve::CachedResult{});
    ASSERT_TRUE(cache.saveToFile(path));
    {
        std::ofstream out(path, std::ios::app);
        out << "{\"key\":[\"broken\"]}\n";
    }
    serve::ResultCache partial(4);
    EXPECT_FALSE(partial.loadFromFile(path));
    EXPECT_EQ(partial.counters().size, 0);
    std::remove(path.c_str());
}

TEST(ResultCache, SaveIsAtomicAndLeavesNoTempFile)
{
    const std::string path =
        ::testing::TempDir() + "gpumc_result_cache_atomic.jsonl";
    const std::string tmpPath = path + ".tmp";
    std::remove(path.c_str());
    std::remove(tmpPath.c_str());

    serve::ResultCache cache(4);
    serve::CachedResult value;
    value.holds = true;
    cache.insert({keyOf(1), 0}, value);
    ASSERT_TRUE(cache.saveToFile(path));
    // The temp file was renamed into place, not left behind.
    EXPECT_FALSE(std::ifstream(tmpPath).good());
    EXPECT_TRUE(std::ifstream(path).good());

    // A second save over an existing file replaces it wholesale; the
    // reloaded cache sees exactly the latest contents.
    cache.insert({keyOf(2), 1}, value);
    ASSERT_TRUE(cache.saveToFile(path));
    EXPECT_FALSE(std::ifstream(tmpPath).good());
    serve::ResultCache reloaded(4);
    ASSERT_TRUE(reloaded.loadFromFile(path));
    EXPECT_EQ(reloaded.counters().size, 2);
    std::remove(path.c_str());
}

TEST(ResultCache, CorruptLoadIsCountedMissingFileIsNot)
{
    const std::string path =
        ::testing::TempDir() + "gpumc_result_cache_loadfail.jsonl";

    // Missing file: silent cold start, no failure counted.
    std::remove(path.c_str());
    serve::ResultCache cache(4);
    EXPECT_FALSE(cache.loadFromFile(path));
    EXPECT_EQ(cache.counters().loadFailed, 0);

    // Corrupt file: counted (and warned about on stderr), so a
    // wiped-out persisted cache shows up in the metrics endpoint
    // instead of masquerading as a cold start.
    {
        std::ofstream out(path);
        out << "definitely not json\n";
    }
    EXPECT_FALSE(cache.loadFromFile(path));
    EXPECT_EQ(cache.counters().loadFailed, 1);

    // A later successful load keeps the failure count: it describes
    // this process's history, not the last attempt.
    serve::ResultCache donor(4);
    donor.insert({keyOf(1), 0}, serve::CachedResult{});
    ASSERT_TRUE(donor.saveToFile(path));
    EXPECT_TRUE(cache.loadFromFile(path));
    EXPECT_EQ(cache.counters().loadFailed, 1);
    EXPECT_EQ(cache.counters().size, 1);
    std::remove(path.c_str());
}

TEST(SessionPool, CheckoutRemovesAndCheckinEvictsLru)
{
    serve::SessionPool pool(2);
    EXPECT_EQ(pool.checkout(keyOf(1)), nullptr);

    pool.checkin(keyOf(1), std::make_unique<serve::LiveSession>());
    pool.checkin(keyOf(2), std::make_unique<serve::LiveSession>());

    // checkout removes: a second checkout of the same key misses
    // (concurrent requests never share one live solver).
    std::unique_ptr<serve::LiveSession> session = pool.checkout(keyOf(1));
    EXPECT_NE(session, nullptr);
    EXPECT_EQ(pool.checkout(keyOf(1)), nullptr);
    pool.checkin(keyOf(1), std::move(session));

    // Key 1 is most recent; key 3 evicts key 2.
    pool.checkin(keyOf(3), std::make_unique<serve::LiveSession>());
    EXPECT_NE(pool.checkout(keyOf(1)), nullptr);
    EXPECT_EQ(pool.checkout(keyOf(2)), nullptr);
    EXPECT_NE(pool.checkout(keyOf(3)), nullptr);

    serve::SessionPool::Counters counters = pool.counters();
    EXPECT_EQ(counters.evictions, 1);
}

TEST(SessionKey, ReloadedModelAtRecycledAddressGetsFreshKey)
{
    // Regression: the key used to contain the raw CatModel pointer.
    // In a long-lived server a model reloaded at a recycled allocation
    // then aliased the *previous* occupant's sessions and verdicts —
    // a different memory model silently answered from a stale cache.
    // The key must track model content, not identity.
    prog::Program program =
        litmus::parseLitmusFile(litmusPath("ptx/basic/mp-weak.litmus"));
    core::VerifierOptions options;

    alignas(cat::CatModel) unsigned char storage[sizeof(cat::CatModel)];
    auto *slot = reinterpret_cast<cat::CatModel *>(storage);

    new (slot) cat::CatModel(
        cat::CatModel::fromFile(catPath("ptx-v6.0.cat")));
    core::SessionKey ptx60 = core::sessionKey(program, *slot, options);
    slot->~CatModel();

    // Different model content at the exact same address.
    new (slot) cat::CatModel(
        cat::CatModel::fromFile(catPath("ptx-v7.5.cat")));
    core::SessionKey ptx75 = core::sessionKey(program, *slot, options);
    slot->~CatModel();

    // Same content again, still the same address.
    new (slot) cat::CatModel(
        cat::CatModel::fromFile(catPath("ptx-v6.0.cat")));
    core::SessionKey ptx60Again =
        core::sessionKey(program, *slot, options);
    slot->~CatModel();

    EXPECT_NE(ptx60, ptx75);
    EXPECT_EQ(ptx60, ptx60Again);

    // And conversely: equal content at a *different* address shares.
    cat::CatModel elsewhere =
        cat::CatModel::fromFile(catPath("ptx-v6.0.cat"));
    EXPECT_EQ(ptx60, core::sessionKey(program, elsewhere, options));
}

TEST(Protocol, ParsesFullVerifyRequest)
{
    serve::Request req;
    std::string error;
    ASSERT_TRUE(serve::parseRequest(
        R"({"id":"q7","op":"verify","litmus":"PTX mp","model":"ptx-v6.0",)"
        R"("property":"liveness","bound":3,"backend":"z3",)"
        R"("timeout_ms":500,"no_cache":true})",
        req, error))
        << error;
    EXPECT_EQ(req.id, "\"q7\"");
    EXPECT_EQ(req.op, serve::Op::Verify);
    EXPECT_EQ(req.litmus, "PTX mp");
    EXPECT_EQ(req.model, "ptx-v6.0");
    EXPECT_EQ(req.property, core::Property::Liveness);
    EXPECT_EQ(req.bound, 3);
    EXPECT_EQ(req.backend, smt::BackendKind::Z3);
    EXPECT_EQ(req.timeoutMs, 500);
    EXPECT_TRUE(req.noCache);
}

TEST(Protocol, RejectsMalformedRequests)
{
    struct Case {
        const char *line;
        const char *reason;
    };
    const Case cases[] = {
        {"not json at all", "json"},
        {"[1,2,3]", "object"},
        {R"({"op":"explode"})", "op"},
        {R"({"op":"verify"})", "litmus"},
        {R"({"litmus":""})", "litmus"},
        {R"({"litmus":"x"})", "model"},
        {R"({"litmus":"x","model":"a","model_source":"b"})", "model"},
        {R"({"litmus":"x","model":"../etc/passwd"})", "model"},
        {R"({"litmus":"x","model":"a/b"})", "model"},
        {R"({"litmus":"x","model":"m","property":"magic"})", "property"},
        {R"({"litmus":"x","model":"m","bound":65})", "bound"},
        {R"({"litmus":"x","model":"m","bound":-1})", "bound"},
        {R"({"litmus":"x","model":"m","backend":"cvc5"})", "backend"},
        {R"({"litmus":"x","model":"m","timeout_ms":-5})", "timeout"},
        {R"({"litmus":"x","model":"m","no_cache":1})", "no_cache"},
    };
    for (const Case &c : cases) {
        serve::Request req;
        std::string error;
        EXPECT_FALSE(serve::parseRequest(c.line, req, error))
            << c.line;
        EXPECT_FALSE(error.empty()) << c.line;
    }
}

TEST(Protocol, ErrorResponseEchoesNumericId)
{
    serve::Request req;
    std::string error;
    EXPECT_FALSE(serve::parseRequest(R"({"id":42,"op":"bogus"})", req,
                                     error));
    EXPECT_EQ(serve::errorResponse(req.id, "boom"),
              R"({"id":42,"status":"error","message":"boom"})");
    EXPECT_EQ(serve::overloadedResponse("7"),
              R"({"id":7,"status":"overloaded"})");
}

/** Engine over the shipped cat/ directory with a tiny worker pool. */
serve::EngineOptions
testEngineOptions()
{
    serve::EngineOptions options;
    options.jobs = 2;
    options.catDir = GPUMC_CAT_DIR;
    return options;
}

std::string
verifyLine(const std::string &litmus, const std::string &extra = "")
{
    return "{\"id\":1,\"litmus\":" + jsonString(litmus) +
           ",\"model\":\"ptx-v6.0\"" + extra + "}";
}

TEST(Engine, VerdictMatchesDirectVerifierByteForByte)
{
    std::string source =
        readFile(litmusPath("ptx/basic/mp-weak.litmus"));
    ASSERT_FALSE(source.empty());

    serve::Engine engine(testEngineOptions());
    std::string response = engine.handleSync(verifyLine(source));

    std::string error;
    JsonValue doc = parseJson(response, error);
    ASSERT_TRUE(error.empty()) << error << ": " << response;
    ASSERT_TRUE(doc.find("status")->isString());
    ASSERT_EQ(doc.find("status")->text, "ok") << response;

    // The same query, solved directly (the engine always drops
    // witness extraction).
    prog::Program program = litmus::parseLitmus(source);
    core::VerifierOptions options;
    options.wantWitness = false;
    core::Verifier verifier(program, ptx60Model(), options);
    core::VerificationResult direct = verifier.checkSafety();

    EXPECT_EQ(doc.find("holds")->boolean, direct.holds);
    EXPECT_EQ(doc.find("unknown")->boolean, direct.unknown);
    EXPECT_EQ(doc.find("detail")->text, direct.detail);
    EXPECT_EQ(doc.find("cache")->text, "miss");
    EXPECT_EQ(doc.find("fingerprint")->text,
              program.fingerprint().str() +
                  ptx60Model().fingerprint().str());
}

TEST(Engine, SecondIdenticalRequestHitsTheCache)
{
    std::string source =
        readFile(litmusPath("ptx/basic/sb-weak.litmus"));
    serve::Engine engine(testEngineOptions());

    std::string cold = engine.handleSync(verifyLine(source));
    std::string warm = engine.handleSync(verifyLine(source));

    std::string error;
    JsonValue coldDoc = parseJson(cold, error);
    ASSERT_TRUE(error.empty());
    JsonValue warmDoc = parseJson(warm, error);
    ASSERT_TRUE(error.empty());

    EXPECT_EQ(coldDoc.find("cache")->text, "miss");
    EXPECT_EQ(warmDoc.find("cache")->text, "hit");
    EXPECT_EQ(coldDoc.find("holds")->boolean,
              warmDoc.find("holds")->boolean);
    EXPECT_EQ(coldDoc.find("detail")->text,
              warmDoc.find("detail")->text);

    // no_cache bypasses the verdict cache (a fresh solve, still
    // byte-identical), and never pollutes the counters with a hit.
    std::string bypass = engine.handleSync(
        verifyLine(source, ",\"no_cache\":true"));
    JsonValue bypassDoc = parseJson(bypass, error);
    ASSERT_TRUE(error.empty());
    EXPECT_EQ(bypassDoc.find("cache")->text, "miss");
    EXPECT_EQ(bypassDoc.find("detail")->text,
              coldDoc.find("detail")->text);
}

TEST(Engine, CacheFilePersistsVerdictsAcrossRestart)
{
    const std::string path =
        ::testing::TempDir() + "gpumc_engine_cache.jsonl";
    std::remove(path.c_str());
    std::string source =
        readFile(litmusPath("ptx/basic/sb-weak.litmus"));
    serve::EngineOptions options = testEngineOptions();
    options.cacheFile = path;

    std::string cold;
    {
        serve::Engine engine(options);
        cold = engine.handleSync(verifyLine(source));
        // Engine destruction snapshots the result cache to cacheFile.
    }

    std::string error;
    JsonValue coldDoc = parseJson(cold, error);
    ASSERT_TRUE(error.empty());
    ASSERT_EQ(coldDoc.find("status")->text, "ok") << cold;
    EXPECT_EQ(coldDoc.find("cache")->text, "miss");

    // A brand-new engine (a daemon restart) answers the identical
    // request from the persisted cache, verdict byte-equal.
    {
        serve::Engine engine(options);
        std::string warm = engine.handleSync(verifyLine(source));
        JsonValue warmDoc = parseJson(warm, error);
        ASSERT_TRUE(error.empty());
        EXPECT_EQ(warmDoc.find("cache")->text, "hit");
        EXPECT_EQ(warmDoc.find("holds")->boolean,
                  coldDoc.find("holds")->boolean);
        EXPECT_EQ(warmDoc.find("detail")->text,
                  coldDoc.find("detail")->text);
    }

    // Corrupt the file: the next restart silently starts cold and
    // still answers (a fresh miss), then rewrites a good snapshot.
    {
        std::ofstream out(path);
        out << "{\"gpumc_result_cache\":999}\n";
    }
    {
        serve::Engine engine(options);
        std::string refilled = engine.handleSync(verifyLine(source));
        JsonValue doc = parseJson(refilled, error);
        ASSERT_TRUE(error.empty());
        ASSERT_EQ(doc.find("status")->text, "ok") << refilled;
        EXPECT_EQ(doc.find("cache")->text, "miss");
    }
    std::remove(path.c_str());
}

TEST(Engine, InlineModelSourceWorksAndDedups)
{
    std::string source =
        readFile(litmusPath("ptx/basic/mp-weak.litmus"));
    std::string model = readFile(catPath("ptx-v6.0.cat"));
    serve::Engine engine(testEngineOptions());

    std::string line = "{\"litmus\":" + jsonString(source) +
                       ",\"model_source\":" + jsonString(model) + "}";
    std::string cold = engine.handleSync(line);
    std::string warm = engine.handleSync(line);

    std::string error;
    JsonValue coldDoc = parseJson(cold, error);
    ASSERT_TRUE(error.empty());
    ASSERT_EQ(coldDoc.find("status")->text, "ok") << cold;
    JsonValue warmDoc = parseJson(warm, error);
    ASSERT_TRUE(error.empty());
    // Identical inline model → identical content fingerprint → the
    // second request is a result-cache hit, exactly like a named one.
    EXPECT_EQ(warmDoc.find("cache")->text, "hit");
}

TEST(Engine, AnswersErrorsInline)
{
    serve::Engine engine(testEngineOptions());
    std::string error;

    // Malformed JSON.
    JsonValue doc = parseJson(engine.handleSync("{nope"), error);
    ASSERT_TRUE(error.empty());
    EXPECT_EQ(doc.find("status")->text, "error");

    // Unknown model name (resolution failure answers as an error).
    doc = parseJson(
        engine.handleSync(
            R"({"litmus":"PTX x","model":"no-such-model"})"),
        error);
    ASSERT_TRUE(error.empty());
    EXPECT_EQ(doc.find("status")->text, "error");

    // Unparsable litmus source.
    doc = parseJson(
        engine.handleSync(verifyLine("this is not litmus")), error);
    ASSERT_TRUE(error.empty());
    EXPECT_EQ(doc.find("status")->text, "error");
}

TEST(Engine, PingMetricsAndShutdown)
{
    std::string source =
        readFile(litmusPath("ptx/basic/mp-weak.litmus"));
    serve::Engine engine(testEngineOptions());

    std::string error;
    JsonValue pong = parseJson(
        engine.handleSync(R"({"id":"p","op":"ping"})"), error);
    ASSERT_TRUE(error.empty());
    EXPECT_EQ(pong.find("status")->text, "ok");

    engine.handleSync(verifyLine(source));
    engine.handleSync(verifyLine(source));
    // The executed counter ticks when the worker retires the task,
    // just after the response is delivered — drain to settle it.
    engine.drain();

    JsonValue metrics = parseJson(
        engine.handleSync(R"({"op":"metrics"})"), error);
    ASSERT_TRUE(error.empty());
    const JsonValue *resultCache = metrics.find("result_cache");
    ASSERT_NE(resultCache, nullptr);
    EXPECT_EQ(resultCache->find("hits")->asInt(), 1);
    EXPECT_EQ(resultCache->find("misses")->asInt(), 1);
    const JsonValue *executor = metrics.find("executor");
    ASSERT_NE(executor, nullptr);
    EXPECT_EQ(executor->find("executed")->asInt(), 1);
    EXPECT_GE(metrics.find("requests")->asInt(), 4);

    // A shutdown op tells the transport to stop (and still responds).
    bool responded = false;
    EXPECT_FALSE(engine.handle(R"({"op":"shutdown"})",
                               [&responded](const std::string &) {
                                   responded = true;
                               }));
    EXPECT_TRUE(responded);
}

} // namespace
} // namespace gpumc::test
