/**
 * @file
 * core::BatchVerifier: parallel fan-out must be observationally
 * identical to sequential execution (same verdicts, same order), and
 * every result must carry per-phase timings and solver statistics for
 * both backends.
 */

#include <deque>
#include <filesystem>
#include <gtest/gtest.h>

#include "core/batch_verifier.hpp"
#include "tests/test_util.hpp"

namespace gpumc::test {
namespace {

namespace fs = std::filesystem;

/** A mixed corpus slice: PTX + Vulkan + progress (liveness) tests. */
std::vector<std::string>
mixedCorpusFiles()
{
    std::vector<std::string> out;
    for (const char *sub : {"/ptx/basic", "/progress"}) {
        for (const auto &entry : fs::recursive_directory_iterator(
                 std::string(GPUMC_LITMUS_DIR) + sub)) {
            if (entry.is_regular_file() &&
                entry.path().extension() == ".litmus") {
                out.push_back(entry.path().string());
            }
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

/**
 * Expand the corpus slice into one safety/liveness query per file and
 * applicable model, mirroring the corpus runner's expansion.
 */
std::vector<core::BatchJob>
buildJobs(std::deque<prog::Program> &programs)
{
    std::vector<core::BatchJob> jobs;
    core::VerifierOptions options;
    options.wantWitness = false;
    for (const std::string &file : mixedCorpusFiles()) {
        programs.push_back(litmus::parseLitmusFile(file));
        const prog::Program &program = programs.back();
        core::BatchJob job;
        job.program = &program;
        job.model = &modelFor(program);
        job.options = options;
        job.property = program.meta.count("liveness")
                           ? core::Property::Liveness
                           : core::Property::Safety;
        job.label = file;
        jobs.push_back(job);
    }
    return jobs;
}

std::string
fingerprint(const std::vector<core::BatchEntry> &entries)
{
    std::string out;
    for (const core::BatchEntry &entry : entries) {
        out += entry.label;
        out += '|';
        out += entry.failed ? "error:" + entry.error
               : entry.result.unknown
                   ? std::string("unknown")
                   : std::string(entry.result.holds ? "holds" : "fails");
        out += '|';
        out += entry.result.detail;
        out += '\n';
    }
    return out;
}

TEST(BatchVerifier, ParallelMatchesSequential)
{
    std::deque<prog::Program> programs;
    std::vector<core::BatchJob> jobs = buildJobs(programs);
    ASSERT_GT(jobs.size(), 10u);

    core::BatchVerifier sequential(1);
    core::BatchVerifier parallel(4);
    std::vector<core::BatchEntry> seqEntries = sequential.run(jobs);
    std::vector<core::BatchEntry> parEntries = parallel.run(jobs);

    ASSERT_EQ(seqEntries.size(), jobs.size());
    ASSERT_EQ(parEntries.size(), jobs.size());
    // Byte-identical verdicts, in input order, for any worker count.
    EXPECT_EQ(fingerprint(seqEntries), fingerprint(parEntries));
    for (size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(seqEntries[i].label, jobs[i].label);
        EXPECT_FALSE(seqEntries[i].failed) << seqEntries[i].error;
    }
}

TEST(BatchVerifier, ProgressCallbackCoversEveryJob)
{
    std::deque<prog::Program> programs;
    std::vector<core::BatchJob> jobs = buildJobs(programs);
    jobs.resize(6);

    std::vector<int> seen(jobs.size(), 0);
    core::BatchVerifier engine(3);
    engine.run(jobs, [&](size_t index, const core::BatchEntry &entry) {
        ASSERT_LT(index, seen.size());
        EXPECT_EQ(entry.label, jobs[index].label);
        seen[index]++; // serialized by the engine
    });
    for (int count : seen)
        EXPECT_EQ(count, 1);
}

class BatchStats : public ::testing::TestWithParam<smt::BackendKind> {};

TEST_P(BatchStats, PhaseAndSolverStatsPopulated)
{
    prog::Program program = litmus::parseLitmusFile(
        litmusPath("ptx/basic/mp-weak.litmus"));
    core::BatchJob job;
    job.program = &program;
    job.model = &ptx60Model();
    job.options.wantWitness = false;
    job.options.backend = GetParam();
    job.label = "mp-weak";

    core::BatchVerifier engine(2);
    std::vector<core::BatchEntry> entries = engine.run({job, job});
    ASSERT_EQ(entries.size(), 2u);
    for (const core::BatchEntry &entry : entries) {
        ASSERT_FALSE(entry.failed) << entry.error;
        const StatsRegistry &stats = entry.result.stats;
        // Per-phase wall times: keys always present, solve > 0.
        EXPECT_TRUE(stats.all().count("phaseUnrollUs"));
        EXPECT_TRUE(stats.all().count("phaseAnalysisUs"));
        EXPECT_TRUE(stats.all().count("phaseEncodeUs"));
        EXPECT_TRUE(stats.all().count("phaseSolveUs"));
        EXPECT_GE(stats.get("phaseEncodeUs"), 0);
        // Solver statistics exported through smt::Backend.
        EXPECT_EQ(stats.get("solver.solveCalls"), 1);
        if (GetParam() == smt::BackendKind::Builtin) {
            EXPECT_TRUE(stats.all().count("solver.conflicts"));
            EXPECT_TRUE(stats.all().count("solver.decisions"));
            EXPECT_TRUE(stats.all().count("solver.propagations"));
            EXPECT_GT(stats.get("solver.decisions"), 0);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Backends, BatchStats,
                         ::testing::Values(smt::BackendKind::Builtin,
                                           smt::BackendKind::Z3),
                         [](const auto &info) {
                             return info.param ==
                                            smt::BackendKind::Builtin
                                        ? "builtin"
                                        : "z3";
                         });

TEST(BatchVerifier, MoreWorkersThanJobsIsFine)
{
    prog::Program program = litmus::parseLitmusFile(
        litmusPath("ptx/basic/mp-weak.litmus"));
    core::BatchJob job;
    job.program = &program;
    job.model = &ptx60Model();
    job.options.wantWitness = false;
    job.label = "mp-weak";

    core::BatchVerifier engine(16); // clamped to the 3 queries
    std::vector<core::BatchEntry> entries =
        engine.run({job, job, job});
    ASSERT_EQ(entries.size(), 3u);
    for (const core::BatchEntry &entry : entries) {
        ASSERT_FALSE(entry.failed) << entry.error;
        EXPECT_TRUE(entry.result.holds); // exists: stale read reachable
        EXPECT_FALSE(entry.result.unknown);
    }
    EXPECT_EQ(engine.jobs(), 16u);
}

} // namespace
} // namespace gpumc::test
