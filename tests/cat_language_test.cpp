/**
 * @file
 * Unit tests for the .cat language pipeline: lexer, parser, semantic
 * checking, the concrete relation evaluator and the PairSet algebra.
 */

#include <gtest/gtest.h>

#include "cat/evaluator.hpp"
#include "cat/lexer.hpp"
#include "cat/model.hpp"
#include "cat/parser.hpp"

namespace gpumc::cat {
namespace {

// --- lexer ------------------------------------------------------------

TEST(CatLexer, TokenKinds)
{
    auto tokens = tokenizeCat("let x = po | rf^-1 ; [W] & _ \\ co+");
    std::vector<TokKind> kinds;
    for (const Token &t : tokens)
        kinds.push_back(t.kind);
    EXPECT_EQ(kinds,
              (std::vector<TokKind>{
                  TokKind::Let, TokKind::Ident, TokKind::Equals,
                  TokKind::Ident, TokKind::Pipe, TokKind::Ident,
                  TokKind::Inverse, TokKind::Semi, TokKind::LBracket,
                  TokKind::Ident, TokKind::RBracket, TokKind::Amp,
                  TokKind::Ident, TokKind::Backslash, TokKind::Ident,
                  TokKind::Plus, TokKind::End}));
}

TEST(CatLexer, NestedComments)
{
    auto tokens = tokenizeCat("(* outer (* inner *) still *) let");
    ASSERT_EQ(tokens.size(), 2u);
    EXPECT_EQ(tokens[0].kind, TokKind::Let);
}

TEST(CatLexer, HyphenatedNames)
{
    auto tokens = tokenizeCat("non-rmw-reads sync_fence ptx.v6");
    EXPECT_EQ(tokens[0].text, "non-rmw-reads");
    EXPECT_EQ(tokens[1].text, "sync_fence");
    EXPECT_EQ(tokens[2].text, "ptx.v6");
}

TEST(CatLexer, UnterminatedCommentFails)
{
    EXPECT_THROW(tokenizeCat("(* oops"), FatalError);
}

// --- parser -----------------------------------------------------------

TEST(CatParser, StarDisambiguation)
{
    // Binary cartesian vs postfix Kleene closure.
    ParsedModel m = parseCat("let a = W * R\nlet b = po*\nlet c = po* ; rf");
    EXPECT_EQ(m.lets[0].expr->kind, ExprKind::Cartesian);
    EXPECT_EQ(m.lets[1].expr->kind, ExprKind::ReflTransClosure);
    EXPECT_EQ(m.lets[2].expr->kind, ExprKind::Seq);
    EXPECT_EQ(m.lets[2].expr->lhs->kind, ExprKind::ReflTransClosure);
}

TEST(CatParser, KleeneBeforeNextStatement)
{
    // `po+` followed directly by the next `let` must stay postfix.
    ParsedModel m = parseCat("let a = po+\nlet b = rf");
    EXPECT_EQ(m.lets[0].expr->kind, ExprKind::TransClosure);
    EXPECT_EQ(m.lets.size(), 2u);
}

TEST(CatParser, Precedence)
{
    // & binds tighter than ; binds tighter than |
    ParsedModel m = parseCat("let a = po ; rf & loc | co");
    const Expr &root = *m.lets[0].expr;
    ASSERT_EQ(root.kind, ExprKind::Union);
    EXPECT_EQ(root.lhs->kind, ExprKind::Seq);
    EXPECT_EQ(root.lhs->rhs->kind, ExprKind::Inter);
}

TEST(CatParser, AxiomsAndFlags)
{
    ParsedModel m = parseCat(
        "\"M\"\nacyclic po as order\nempty rf\nirreflexive co\n"
        "flag ~empty loc as race");
    EXPECT_EQ(m.modelName, "M");
    ASSERT_EQ(m.axioms.size(), 4u);
    EXPECT_EQ(m.axioms[0].kind, AxiomKind::Acyclic);
    EXPECT_EQ(m.axioms[0].name, "order");
    EXPECT_EQ(m.axioms[3].kind, AxiomKind::FlagNonEmpty);
    EXPECT_EQ(m.axioms[3].name, "race");
}

TEST(CatModelChecks, UnknownNameRejected)
{
    EXPECT_THROW(CatModel::fromSource("let a = nonexistent"),
                 FatalError);
}

TEST(CatModelChecks, TypeErrors)
{
    // Cartesian of relations is a type error.
    EXPECT_THROW(CatModel::fromSource("let a = po * rf"), FatalError);
    // Sequencing sets is a type error.
    EXPECT_THROW(CatModel::fromSource("let a = W ; R"), FatalError);
    // Axioms must be relations.
    EXPECT_THROW(CatModel::fromSource("empty W"), FatalError);
}

TEST(CatModelChecks, ShadowingSeesOlderBinding)
{
    // `let co = co+` must resolve the RHS co to the base relation.
    CatModel model = CatModel::fromSource("let co = co+\nempty co");
    ASSERT_EQ(model.lets().size(), 1u);
    const Expr &rhs = *model.lets()[0].expr;
    ASSERT_EQ(rhs.kind, ExprKind::TransClosure);
    EXPECT_EQ(rhs.lhs->resolution, NameRes::BaseRel);
}

TEST(CatModelChecks, ShippedModelsParse)
{
    for (const char *file :
         {"/ptx-v6.0.cat", "/ptx-v7.5.cat", "/vulkan.cat"}) {
        EXPECT_NO_THROW(CatModel::fromFile(std::string(GPUMC_CAT_DIR) +
                                           file))
            << file;
    }
    EXPECT_TRUE(CatModel::fromFile(std::string(GPUMC_CAT_DIR) +
                                   "/vulkan.cat")
                    .hasFlaggedAxioms());
    EXPECT_FALSE(CatModel::fromFile(std::string(GPUMC_CAT_DIR) +
                                    "/ptx-v6.0.cat")
                     .hasFlaggedAxioms());
}

// --- pair set algebra ---------------------------------------------------

TEST(PairSet, BasicOps)
{
    PairSet a, b;
    a.add(0, 1);
    a.add(1, 2);
    b.add(1, 2);
    b.add(2, 3);
    EXPECT_EQ(a.unionWith(b).size(), 3u);
    EXPECT_EQ(a.intersectWith(b).size(), 1u);
    EXPECT_EQ(a.minus(b).size(), 1u);
    EXPECT_TRUE(a.minus(b).contains(0, 1));
    PairSet composed = a.compose(b);
    EXPECT_TRUE(composed.contains(0, 2));
    EXPECT_TRUE(composed.contains(1, 3));
    EXPECT_EQ(composed.size(), 2u);
    EXPECT_TRUE(a.inverse().contains(1, 0));
}

TEST(PairSet, TransitiveClosureAndCycles)
{
    PairSet chain;
    chain.add(0, 1);
    chain.add(1, 2);
    chain.add(2, 3);
    PairSet closed = chain.transitiveClosure();
    EXPECT_TRUE(closed.contains(0, 3));
    EXPECT_EQ(closed.size(), 6u);
    EXPECT_TRUE(closed.isAcyclic());
    EXPECT_TRUE(closed.isIrreflexive());

    chain.add(3, 0);
    PairSet cyclic = chain.transitiveClosure();
    EXPECT_FALSE(cyclic.isAcyclic());
    EXPECT_FALSE(cyclic.isIrreflexive()); // (0,0) via the cycle
    EXPECT_TRUE(cyclic.contains(0, 0));
}

// --- concrete evaluator --------------------------------------------------

/** A tiny hand-built execution for evaluator tests. */
class TinyExec : public ExecutionView {
  public:
    // Events: 0:W(init) 1:W 2:R
    int numEvents() const override { return 3; }

    bool inSet(int event, const std::string &tag) const override
    {
        if (tag == "_")
            return true;
        if (tag == "W")
            return event == 0 || event == 1;
        if (tag == "R")
            return event == 2;
        if (tag == "M")
            return true;
        if (tag == "IW" || tag == "I")
            return event == 0;
        return false;
    }

    const PairSet &baseRel(const std::string &name) const override
    {
        static const PairSet empty;
        if (name == "rf")
            return rf_;
        if (name == "co")
            return co_;
        if (name == "po")
            return po_;
        if (name == "loc")
            return loc_;
        return empty;
    }

    TinyExec()
    {
        rf_.add(0, 2);
        co_.add(0, 1);
        po_.add(1, 2);
        for (int i = 0; i < 3; ++i)
            for (int j = 0; j < 3; ++j)
                loc_.add(i, j);
    }

  private:
    PairSet rf_, co_, po_, loc_;
};

TEST(RelationEvaluator, EvaluatesDerivedRelations)
{
    CatModel model = CatModel::fromSource(
        "let fr = rf^-1 ; co\n"
        "let com = rf | co | fr\n"
        "acyclic (po | com) as sc-per-loc\n"
        "flag ~empty (fr & po^-1) as stale");
    TinyExec exec;
    RelationEvaluator evaluator(model, exec);

    PairSet fr = evaluator.evalRel(*model.lets()[0].expr);
    ASSERT_EQ(fr.size(), 1u);
    EXPECT_TRUE(fr.contains(2, 1)); // read 2 (from init) vs write 1

    // po(1,2), rf(0,2), co(0,1), fr(2,1): cycle 1 -> 2 -> 1.
    EXPECT_FALSE(evaluator.consistent());

    auto flags = evaluator.evalFlags();
    ASSERT_EQ(flags.size(), 1u);
    EXPECT_FALSE(flags[0].holds);
    EXPECT_TRUE(flags[0].flagged.contains(2, 1));
}

TEST(RelationEvaluator, SetOperations)
{
    CatModel model = CatModel::fromSource(
        "let nonInitWrites = W \\ IW\n"
        "empty ([nonInitWrites] ; rf)");
    TinyExec exec;
    RelationEvaluator evaluator(model, exec);
    std::vector<bool> set = evaluator.evalSet(*model.lets()[0].expr);
    EXPECT_EQ(set, (std::vector<bool>{false, true, false}));
    // rf comes only from the init write: the axiom holds.
    EXPECT_TRUE(evaluator.consistent());
}

} // namespace
} // namespace gpumc::cat
