/**
 * @file
 * gpumc-serve end to end, over a real TCP socket: the daemon is
 * fork/exec'd with an ephemeral port, exercised by one or many client
 * connections (round trips, warm-cache hits, malformed and oversized
 * lines, a concurrent soak), and shut down with SIGTERM — which must
 * exit 0 after answering everything in flight. Also pins the
 * gpumc-corpus thin client: `--server=ADDR` must agree with the local
 * engine on the same corpus.
 */

#include <gtest/gtest.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "support/json.hpp"
#include "tests/test_util.hpp"

namespace gpumc::test {
namespace {

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/** A gpumc-serve child process listening on an ephemeral TCP port. */
class Daemon {
  public:
    explicit Daemon(const std::vector<std::string> &extraArgs = {})
    {
        int outPipe[2];
        if (pipe(outPipe) != 0)
            return;
        pid_ = fork();
        if (pid_ == 0) {
            dup2(outPipe[1], STDOUT_FILENO);
            close(outPipe[0]);
            close(outPipe[1]);
            std::string tool =
                std::string(GPUMC_TOOL_DIR) + "/gpumc-serve";
            std::vector<std::string> args = {
                tool, "--listen=127.0.0.1:0", "--jobs=2"};
            args.insert(args.end(), extraArgs.begin(),
                        extraArgs.end());
            std::vector<char *> argv;
            for (std::string &arg : args)
                argv.push_back(arg.data());
            argv.push_back(nullptr);
            execv(tool.c_str(), argv.data());
            std::perror("execv gpumc-serve");
            _exit(127);
        }
        close(outPipe[1]);

        // First stdout line: "listening on 127.0.0.1:PORT".
        std::string line;
        char c;
        while (read(outPipe[0], &c, 1) == 1 && c != '\n')
            line.push_back(c);
        close(outPipe[0]);
        auto colon = line.rfind(':');
        if (colon != std::string::npos)
            port_ = std::atoi(line.c_str() + colon + 1);
    }

    ~Daemon()
    {
        if (pid_ > 0) {
            kill(pid_, SIGKILL);
            waitpid(pid_, nullptr, 0);
        }
    }

    bool running() const { return pid_ > 0 && port_ > 0; }
    int port() const { return port_; }

    /** SIGTERM and reap; returns the exit status (-1 on failure). */
    int terminate()
    {
        if (pid_ <= 0)
            return -1;
        kill(pid_, SIGTERM);
        int status = 0;
        if (waitpid(pid_, &status, 0) != pid_)
            return -1;
        pid_ = -1;
        return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    }

  private:
    pid_t pid_ = -1;
    int port_ = 0;
};

/** One blocking client connection speaking the line protocol. */
class Client {
  public:
    explicit Client(int port)
    {
        fd_ = socket(AF_INET, SOCK_STREAM, 0);
        struct sockaddr_in addr;
        std::memset(&addr, 0, sizeof addr);
        addr.sin_family = AF_INET;
        addr.sin_port = htons(static_cast<uint16_t>(port));
        inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        if (connect(fd_, reinterpret_cast<struct sockaddr *>(&addr),
                    sizeof addr) != 0) {
            close(fd_);
            fd_ = -1;
        }
    }

    ~Client()
    {
        if (fd_ >= 0)
            close(fd_);
    }

    bool connected() const { return fd_ >= 0; }

    bool send(const std::string &line)
    {
        std::string framed = line + "\n";
        const char *data = framed.data();
        size_t left = framed.size();
        while (left > 0) {
            ssize_t n = write(fd_, data, left);
            if (n <= 0) {
                if (n < 0 && errno == EINTR)
                    continue;
                return false;
            }
            data += n;
            left -= static_cast<size_t>(n);
        }
        return true;
    }

    /** Read one response line (blocking); empty on EOF/error. */
    std::string recvLine()
    {
        std::string line;
        for (;;) {
            auto nl = buffer_.find('\n');
            if (nl != std::string::npos) {
                line = buffer_.substr(0, nl);
                buffer_.erase(0, nl + 1);
                return line;
            }
            char chunk[4096];
            ssize_t n = read(fd_, chunk, sizeof chunk);
            if (n <= 0) {
                if (n < 0 && errno == EINTR)
                    continue;
                return "";
            }
            buffer_.append(chunk, static_cast<size_t>(n));
        }
    }

    std::string roundTrip(const std::string &line)
    {
        return send(line) ? recvLine() : "";
    }

  private:
    int fd_ = -1;
    std::string buffer_;
};

std::string
verifyLine(const std::string &litmus, int id = 1)
{
    return "{\"id\":" + std::to_string(id) +
           ",\"litmus\":" + jsonString(litmus) +
           ",\"model\":\"ptx-v6.0\"}";
}

JsonValue
parsed(const std::string &line)
{
    std::string error;
    JsonValue doc = parseJson(line, error);
    EXPECT_TRUE(error.empty()) << error << ": " << line;
    return doc;
}

TEST(ServeCli, RoundTripWarmCacheAndCleanSigterm)
{
    Daemon daemon;
    ASSERT_TRUE(daemon.running());
    Client client(daemon.port());
    ASSERT_TRUE(client.connected());

    JsonValue pong =
        parsed(client.roundTrip(R"({"id":"hi","op":"ping"})"));
    EXPECT_EQ(pong.find("status")->text, "ok");

    std::string source =
        readFile(litmusPath("ptx/basic/mp-weak.litmus"));
    ASSERT_FALSE(source.empty());

    JsonValue cold = parsed(client.roundTrip(verifyLine(source)));
    ASSERT_EQ(cold.find("status")->text, "ok");
    EXPECT_EQ(cold.find("cache")->text, "miss");

    // The identical request again — now answered from the result
    // cache, with the identical verdict.
    JsonValue warm = parsed(client.roundTrip(verifyLine(source)));
    ASSERT_EQ(warm.find("status")->text, "ok");
    EXPECT_EQ(warm.find("cache")->text, "hit");
    EXPECT_EQ(warm.find("holds")->boolean,
              cold.find("holds")->boolean);
    EXPECT_EQ(warm.find("detail")->text, cold.find("detail")->text);

    // A second connection shares the engine (and its caches).
    Client other(daemon.port());
    ASSERT_TRUE(other.connected());
    JsonValue shared = parsed(other.roundTrip(verifyLine(source)));
    EXPECT_EQ(shared.find("cache")->text, "hit");

    EXPECT_EQ(daemon.terminate(), 0);
}

TEST(ServeCli, MalformedAndOversizedLinesAnswerErrors)
{
    Daemon daemon;
    ASSERT_TRUE(daemon.running());
    Client client(daemon.port());
    ASSERT_TRUE(client.connected());

    JsonValue bad = parsed(client.roundTrip("this is not json"));
    EXPECT_EQ(bad.find("status")->text, "error");

    // An oversized line (> 4 MiB, no newline yet) is answered as soon
    // as the limit trips; the connection then resynchronizes at the
    // next newline and keeps serving.
    std::string huge(5u << 20, 'x');
    ASSERT_TRUE(client.send(huge));
    JsonValue overflow = parsed(client.recvLine());
    EXPECT_EQ(overflow.find("status")->text, "error");
    EXPECT_NE(overflow.find("message")->text.find("exceeds"),
              std::string::npos);

    JsonValue pong =
        parsed(client.roundTrip(R"({"id":2,"op":"ping"})"));
    EXPECT_EQ(pong.find("status")->text, "ok");

    EXPECT_EQ(daemon.terminate(), 0);
}

TEST(ServeCli, ShutdownOpStopsTheDaemon)
{
    Daemon daemon;
    ASSERT_TRUE(daemon.running());
    Client client(daemon.port());
    ASSERT_TRUE(client.connected());
    JsonValue ack =
        parsed(client.roundTrip(R"({"id":9,"op":"shutdown"})"));
    EXPECT_EQ(ack.find("status")->text, "ok");
    // The daemon exits on its own — no signal needed. Reap it via the
    // terminate() path, which must find it already gone or exiting 0.
    EXPECT_EQ(daemon.terminate(), 0);
}

TEST(ServeCli, ConcurrentClientSoak)
{
    Daemon daemon;
    ASSERT_TRUE(daemon.running());

    const std::string sources[] = {
        readFile(litmusPath("ptx/basic/mp-weak.litmus")),
        readFile(litmusPath("ptx/basic/sb-weak.litmus")),
    };

    constexpr int kClients = 4;
    constexpr int kRequests = 8;
    std::vector<std::vector<std::string>> details(
        kClients, std::vector<std::string>(kRequests));
    std::vector<int> failures(kClients, 0);

    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            Client client(daemon.port());
            if (!client.connected()) {
                failures[c] = kRequests;
                return;
            }
            for (int r = 0; r < kRequests; ++r) {
                const std::string &source = sources[r % 2];
                std::string response = client.roundTrip(
                    verifyLine(source, c * kRequests + r));
                std::string error;
                JsonValue doc = parseJson(response, error);
                const JsonValue *status =
                    error.empty() ? doc.find("status") : nullptr;
                if (!status || status->text != "ok") {
                    failures[c]++;
                    continue;
                }
                details[c][static_cast<size_t>(r)] =
                    doc.find("detail")->text;
            }
        });
    }
    for (std::thread &t : clients)
        t.join();

    // Every request answered ok, and verdicts agree across clients
    // for the same source (they all hit the same cache entries).
    for (int c = 0; c < kClients; ++c) {
        EXPECT_EQ(failures[c], 0) << "client " << c;
        for (int r = 0; r < kRequests; ++r)
            EXPECT_EQ(details[static_cast<size_t>(c)]
                             [static_cast<size_t>(r)],
                      details[0][static_cast<size_t>(r % 2)])
                << "client " << c << " request " << r;
    }

    EXPECT_EQ(daemon.terminate(), 0);
}

TEST(ServeCli, StdioModeServesAPipe)
{
    // The default transport: requests on stdin, responses on stdout,
    // exit 0 at the shutdown op.
    std::string cmd =
        "printf '%s\\n' "
        "'{\"id\":1,\"op\":\"ping\"}' "
        "'{\"op\":\"shutdown\"}' | \"" +
        std::string(GPUMC_TOOL_DIR) + "/gpumc-serve\" --stdio 2>&1";
    FILE *out = popen(cmd.c_str(), "r");
    ASSERT_NE(out, nullptr);
    std::string output;
    char chunk[4096];
    size_t n;
    while ((n = fread(chunk, 1, sizeof chunk, out)) > 0)
        output.append(chunk, n);
    int status = pclose(out);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0) << output;
    EXPECT_NE(output.find("\"pong\":true"), std::string::npos)
        << output;
    EXPECT_NE(output.find("\"shutdown\":true"), std::string::npos)
        << output;
}

TEST(ServeCli, CorpusThinClientMatchesLocalRun)
{
    Daemon daemon;
    ASSERT_TRUE(daemon.running());

    std::string corpus = std::string(GPUMC_TOOL_DIR) + "/gpumc-corpus";
    std::string dir = litmusPath("ptx/basic");
    std::string local = "\"" + corpus + "\" \"" + dir +
                        "\" > /dev/null 2>&1";
    std::string remote = "\"" + corpus + "\" \"" + dir +
                         "\" --server=127.0.0.1:" +
                         std::to_string(daemon.port()) +
                         " > /dev/null 2>&1";

    int localStatus = std::system(local.c_str());
    int remoteStatus = std::system(remote.c_str());
    ASSERT_TRUE(WIFEXITED(localStatus));
    ASSERT_TRUE(WIFEXITED(remoteStatus));
    EXPECT_EQ(WEXITSTATUS(localStatus), 0);
    EXPECT_EQ(WEXITSTATUS(remoteStatus), WEXITSTATUS(localStatus));

    EXPECT_EQ(daemon.terminate(), 0);
}

} // namespace
} // namespace gpumc::test
