/**
 * @file
 * Campaign driver tests: deterministic verdict logs across worker
 * counts, clean runs on healthy configurations, and the end-to-end
 * acceptance path — an injected oracle disagreement is detected,
 * auto-shrunk, written as a `.litmus` repro, and the repro (reparsed
 * from disk) still reproduces the backend disagreement.
 */

#include <gtest/gtest.h>

#include <filesystem>

#include "fuzz/campaign.hpp"
#include "tests/test_util.hpp"

namespace gpumc::test {
namespace {

using namespace prog;

fuzz::CampaignOptions
baseOptions(Arch arch, const cat::CatModel &model, const char *name)
{
    fuzz::CampaignOptions options;
    options.config = fuzz::FuzzConfig::basic(arch);
    options.model = &model;
    options.modelName = name;
    options.seed = 42;
    options.runs = 6;
    return options;
}

TEST(FuzzCampaign, LogIsDeterministicAcrossWorkerCounts)
{
    for (Arch arch : {Arch::Ptx, Arch::Vulkan}) {
        const cat::CatModel &model =
            arch == Arch::Ptx ? ptx75Model() : vulkanModel();
        fuzz::CampaignOptions options = baseOptions(
            arch, model, arch == Arch::Ptx ? "ptx-v7.5" : "vulkan");
        options.jobs = 1;
        fuzz::CampaignResult sequential = fuzz::runCampaign(options);
        options.jobs = 4;
        fuzz::CampaignResult parallel = fuzz::runCampaign(options);
        EXPECT_EQ(sequential.log, parallel.log);
        EXPECT_FALSE(sequential.log.empty());
        EXPECT_EQ(sequential.cases.size(), 6u);
    }
}

TEST(FuzzCampaign, HealthyCampaignIsClean)
{
    fuzz::CampaignOptions options =
        baseOptions(Arch::Ptx, ptx75Model(), "ptx-v7.5");
    options.jobs = 2;
    fuzz::CampaignResult result = fuzz::runCampaign(options);
    EXPECT_EQ(result.disagreements, 0) << result.log;
    EXPECT_EQ(result.errors, 0) << result.log;
    EXPECT_EQ(result.oracleChecks, 6 * 4);
    EXPECT_TRUE(result.clean());
}

/**
 * The acceptance criterion end to end: --inject=bound-gap makes the
 * z3 side run at bound-1; on a loopy case the backends genuinely
 * disagree; the campaign shrinks it, writes a `.litmus` repro, and
 * that file — reparsed from disk through the normal litmus parser —
 * still makes the two backends disagree.
 */
TEST(FuzzCampaign, InjectedBoundGapShrinksToConfirmedRepro)
{
    const std::string outDir =
        (std::filesystem::path(::testing::TempDir()) /
         "gpumc-fuzz-repro")
            .string();
    std::filesystem::remove_all(outDir);

    fuzz::CampaignOptions options =
        baseOptions(Arch::Ptx, ptx75Model(), "ptx-v7.5");
    options.config = fuzz::FuzzConfig::withControlFlow(Arch::Ptx);
    options.seed = 1;
    options.runs = 5; // seed 1 cases 0003/0004 are bound-sensitive
    options.jobs = 2;
    options.oracle.bound = 2;
    options.oracle.z3Bound = 1; // the injected fault
    options.maxShrinks = 1;
    options.outDir = outDir;

    fuzz::CampaignResult result = fuzz::runCampaign(options);
    ASSERT_GT(result.disagreements, 0) << result.log;
    ASSERT_FALSE(result.shrinks.empty()) << result.log;

    const fuzz::ShrinkRecord &record = result.shrinks.front();
    EXPECT_EQ(record.oracle, fuzz::OracleKind::Z3VsBuiltin);
    EXPECT_LT(record.finalSize, record.initialSize);
    EXPECT_TRUE(record.confirmed) << result.log;
    ASSERT_FALSE(record.reproPath.empty());
    ASSERT_TRUE(std::filesystem::exists(record.reproPath));

    // Independent replay: parse the file from disk and compare the two
    // backends directly, exactly as the header commands instruct.
    Program repro = litmus::parseLitmusFile(record.reproPath);
    auto holdsWith = [&](smt::BackendKind backend, int bound) {
        core::VerifierOptions vo;
        vo.backend = backend;
        vo.bound = bound;
        vo.validateWitness = true;
        core::Verifier verifier(repro, ptx75Model(), vo);
        return verifier.checkSafety().holds;
    };
    EXPECT_NE(holdsWith(smt::BackendKind::Builtin, 2),
              holdsWith(smt::BackendKind::Z3, 1))
        << "repro no longer reproduces the disagreement";

    // And the log narrates the confirmation.
    EXPECT_NE(result.log.find("repro confirmed"), std::string::npos)
        << result.log;
}

/** Without injection the same loopy campaign is disagreement-free. */
TEST(FuzzCampaign, NoInjectionNoDisagreement)
{
    fuzz::CampaignOptions options =
        baseOptions(Arch::Ptx, ptx75Model(), "ptx-v7.5");
    options.config = fuzz::FuzzConfig::withControlFlow(Arch::Ptx);
    options.seed = 1;
    options.runs = 5;
    options.jobs = 2;
    fuzz::CampaignResult result = fuzz::runCampaign(options);
    EXPECT_EQ(result.disagreements, 0) << result.log;
}

} // namespace
} // namespace gpumc::test
