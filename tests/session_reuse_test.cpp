/**
 * @file
 * The shared incremental verification session: checkAll() must run the
 * unroll/analysis/structural-encoding pipeline exactly once per
 * (program, model, bound), answer every property as an assumption-
 * guarded query on the same live solver, and agree verdict-for-verdict
 * with fresh single-property sessions. Also covers the BatchVerifier
 * session cache (including straight-line bound normalization) and the
 * per-check timeout: a timed-out check must not poison later checks on
 * the same session.
 */

#include <deque>
#include <gtest/gtest.h>

#include "core/batch_verifier.hpp"
#include "kernels/sync_kernels.hpp"
#include "tests/test_util.hpp"

namespace gpumc::test {
namespace {

/** Vulkan MP: non-trivial CatSpec (the model has `flag ~empty`). */
prog::Program
vulkanMp()
{
    return litmus::parseLitmusFile(
        litmusPath("vulkan/basic/mp-rel-acq.litmus"));
}

std::string
describe(const core::VerificationResult &result)
{
    if (result.unknown)
        return "unknown";
    return std::string(result.holds ? "holds(" : "fails(") +
           result.detail + ")";
}

class SessionReuse : public ::testing::TestWithParam<smt::BackendKind> {
  protected:
    core::VerifierOptions opts_;
    void SetUp() override
    {
        opts_.backend = GetParam();
        opts_.validateWitness = true;
    }
};

TEST_P(SessionReuse, ThreePropertiesBuildThePipelineOnce)
{
    prog::Program program = vulkanMp();
    core::Verifier shared(program, vulkanModel(), opts_);
    std::vector<core::VerificationResult> results = shared.checkAll();
    ASSERT_EQ(results.size(), 3u);

    // Exactly one pipeline build across the whole checkAll().
    int64_t built = 0, reused = 0;
    for (const core::VerificationResult &result : results) {
        built += result.stats.get("sessionsBuilt");
        reused += result.stats.get("sessionsReused");
    }
    EXPECT_EQ(built, 1);
    EXPECT_EQ(reused, 2);
    EXPECT_EQ(results[0].stats.get("sessionsBuilt"), 1);

    // Reused checks pay no unroll/analysis time at all; the query
    // counter grows monotonically on the one shared solver.
    for (size_t i = 1; i < results.size(); ++i) {
        EXPECT_EQ(results[i].stats.get("phaseUnrollUs"), 0) << i;
        EXPECT_EQ(results[i].stats.get("phaseAnalysisUs"), 0) << i;
        EXPECT_GE(results[i].stats.get("queriesOnSharedSession"),
                  results[i - 1].stats.get("queriesOnSharedSession"))
            << i;
    }
    // All three properties are non-trivial under the Vulkan model, so
    // three guarded queries hit the shared solver.
    EXPECT_EQ(results.back().stats.get("queriesOnSharedSession"), 3);
    // Per-result solver deltas, not session totals.
    EXPECT_EQ(results.back().stats.get("solver.solveCalls"), 1);

    // Verdict-for-verdict agreement with fresh single-property runs.
    const core::Property props[] = {core::Property::Safety,
                                    core::Property::Liveness,
                                    core::Property::CatSpec};
    for (size_t i = 0; i < 3; ++i) {
        core::Verifier fresh(program, vulkanModel(), opts_);
        core::VerificationResult expected = fresh.check(props[i]);
        EXPECT_EQ(describe(results[i]), describe(expected)) << i;
    }
}

TEST_P(SessionReuse, TrivialCatSpecSkipsTheQuery)
{
    // PTX models carry no flagged axioms: CatSpec holds without ever
    // touching the solver, and no activation literal is allocated.
    prog::Program program = litmus::parseLitmusFile(
        litmusPath("ptx/basic/mp-rel-acq.litmus"));
    core::Verifier verifier(program, ptx75Model(), opts_);
    std::vector<core::VerificationResult> results = verifier.checkAll();
    ASSERT_EQ(results.size(), 3u);
    EXPECT_TRUE(results[2].holds);
    EXPECT_FALSE(results[2].unknown);
    // Safety + liveness query; the trivial CatSpec does not.
    EXPECT_EQ(results.back().stats.get("queriesOnSharedSession"), 2);
}

INSTANTIATE_TEST_SUITE_P(Backends, SessionReuse,
                         ::testing::Values(smt::BackendKind::Builtin,
                                           smt::BackendKind::Z3),
                         [](const auto &info) {
                             return info.param ==
                                            smt::BackendKind::Builtin
                                        ? "builtin"
                                        : "z3";
                         });

/** Sum a per-entry stat across a batch. */
int64_t
total(const std::vector<core::BatchEntry> &entries, const char *key)
{
    int64_t sum = 0;
    for (const core::BatchEntry &entry : entries) {
        EXPECT_FALSE(entry.failed) << entry.error;
        sum += entry.result.stats.get(key);
    }
    return sum;
}

std::vector<core::BatchJob>
threePropertyJobs(const prog::Program &program, bool share)
{
    std::vector<core::BatchJob> jobs;
    for (core::Property property :
         {core::Property::Safety, core::Property::Liveness,
          core::Property::CatSpec}) {
        core::BatchJob job;
        job.program = &program;
        job.model = &vulkanModel();
        job.options.wantWitness = false;
        job.property = property;
        job.shareSession = share;
        jobs.push_back(job);
    }
    return jobs;
}

TEST(SessionCache, BatchGroupsSameKeyJobsOntoOneSession)
{
    prog::Program program = vulkanMp();
    core::BatchVerifier engine(2);

    std::vector<core::BatchEntry> shared =
        engine.run(threePropertyJobs(program, true));
    EXPECT_EQ(total(shared, "sessionsBuilt"), 1);
    EXPECT_EQ(total(shared, "sessionsReused"), 2);

    std::vector<core::BatchEntry> fresh =
        engine.run(threePropertyJobs(program, false));
    EXPECT_EQ(total(fresh, "sessionsBuilt"), 3);
    EXPECT_EQ(total(fresh, "sessionsReused"), 0);

    ASSERT_EQ(shared.size(), fresh.size());
    for (size_t i = 0; i < shared.size(); ++i) {
        EXPECT_EQ(describe(shared[i].result),
                  describe(fresh[i].result))
            << i;
    }
}

TEST(SessionCache, StraightLineProgramsReuseAcrossBounds)
{
    // Unrolling a straight-line program is bound-independent, so the
    // cache normalizes the bound away and ascending-bound re-solves
    // land on one session. valueBits is pinned because the automatic
    // width is derived per (program, bound) and is part of the key.
    prog::Program program = vulkanMp();
    ASSERT_TRUE(program.isStraightLine());

    std::vector<core::BatchJob> jobs;
    for (int bound : {1, 2, 4}) {
        core::BatchJob job;
        job.program = &program;
        job.model = &vulkanModel();
        job.options.bound = bound;
        job.options.valueBits = 4;
        job.options.wantWitness = false;
        job.property = core::Property::Safety;
        jobs.push_back(job);
    }
    core::BatchVerifier engine(1);
    std::vector<core::BatchEntry> entries = engine.run(jobs);
    EXPECT_EQ(total(entries, "sessionsBuilt"), 1);
    EXPECT_EQ(total(entries, "sessionsReused"), 2);
    // Bound-independent program: one verdict, decided, at every bound.
    for (const core::BatchEntry &entry : entries) {
        EXPECT_FALSE(entry.result.unknown);
        EXPECT_EQ(describe(entry.result), describe(entries[0].result));
    }

    // A program with loops must NOT be grouped across bounds.
    prog::Program looped = litmus::parseLitmusFile(
        litmusPath("progress/spin-flag-set-vk.litmus"));
    ASSERT_FALSE(looped.isStraightLine());
    for (core::BatchJob &job : jobs)
        job.program = &looped;
    std::vector<core::BatchEntry> loopedEntries = engine.run(jobs);
    EXPECT_EQ(total(loopedEntries, "sessionsBuilt"), 3);
}

TEST(SessionCache, ParallelSharedMatchesSequentialFresh)
{
    std::deque<prog::Program> programs;
    std::vector<core::BatchJob> shared, fresh;
    for (const char *file :
         {"vulkan/basic/mp-rel-acq.litmus", "vulkan/basic/mp-rlx.litmus",
          "vulkan/basic/mp-nonatomic-flag-race.litmus",
          "vulkan/basic/sb-rel-acq.litmus"}) {
        programs.push_back(litmus::parseLitmusFile(litmusPath(file)));
        for (core::BatchJob &job :
             threePropertyJobs(programs.back(), true))
            shared.push_back(job);
        for (core::BatchJob &job :
             threePropertyJobs(programs.back(), false))
            fresh.push_back(job);
    }

    core::BatchVerifier parallel(4);
    core::BatchVerifier sequential(1);
    std::vector<core::BatchEntry> sharedEntries = parallel.run(shared);
    std::vector<core::BatchEntry> freshEntries = sequential.run(fresh);
    ASSERT_EQ(sharedEntries.size(), freshEntries.size());
    for (size_t i = 0; i < sharedEntries.size(); ++i) {
        ASSERT_FALSE(sharedEntries[i].failed) << sharedEntries[i].error;
        ASSERT_FALSE(freshEntries[i].failed) << freshEntries[i].error;
        EXPECT_EQ(describe(sharedEntries[i].result),
                  describe(freshEntries[i].result))
            << i;
    }
    EXPECT_EQ(total(sharedEntries, "sessionsBuilt"), 4);
    EXPECT_EQ(total(freshEntries, "sessionsBuilt"), 12);
}

TEST(SessionReuseTimeout, TimedOutCheckDoesNotPoisonTheSession)
{
    // A query big enough that a 1 ms budget cannot finish it.
    prog::Program program =
        kernels::buildCaslock({2, 2}, kernels::LockVariant::Base);
    core::VerifierOptions options;
    options.backend = smt::BackendKind::Builtin;
    options.wantWitness = false;
    options.solverTimeoutMs = 1;

    core::Verifier verifier(program, vulkanModel(), options);
    core::VerificationResult starved = verifier.checkSafety();
    EXPECT_TRUE(starved.unknown);

    // Lifting the budget and re-checking on the SAME session must
    // decide: the backend's solver limit is re-armed per check, so the
    // stale 1 ms cap cannot leak into this query.
    verifier.setSolverTimeoutMs(0);
    core::VerificationResult decided = verifier.checkSafety();
    EXPECT_FALSE(decided.unknown) << decided.detail;
    EXPECT_EQ(decided.stats.get("sessionsBuilt"), 0);
    EXPECT_EQ(decided.stats.get("sessionsReused"), 1);
}

} // namespace
} // namespace gpumc::test
