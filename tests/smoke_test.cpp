/**
 * @file
 * End-to-end smoke tests: classic weak-consistency litmus patterns
 * through the full pipeline (parse -> unroll -> analyse -> encode ->
 * solve) under both PTX models and the Vulkan model.
 */

#include <gtest/gtest.h>

#include "tests/test_util.hpp"

namespace gpumc::test {
namespace {

// Message passing with weak accesses: the stale read is observable.
const char *kPtxMpWeak = R"(
PTX "mp-weak"
P0@cta 0,gpu 0     | P1@cta 0,gpu 0 ;
st.weak x, 1       | ld.weak r0, y  ;
st.weak y, 1       | ld.weak r1, x  ;
exists (P1:r0 == 1 /\ P1:r1 == 0)
)";

// Message passing with release/acquire: the stale read is forbidden.
const char *kPtxMpRelAcq = R"(
PTX "mp-rel-acq"
P0@cta 0,gpu 0        | P1@cta 0,gpu 0        ;
st.weak x, 1          | ld.acquire.sys r0, y  ;
st.release.sys y, 1   | ld.weak r1, x         ;
exists (P1:r0 == 1 /\ P1:r1 == 0)
)";

TEST(Smoke, PtxMpWeakAllowed_V60)
{
    EXPECT_TRUE(checkSafety(kPtxMpWeak, ptx60Model()));
}

TEST(Smoke, PtxMpWeakAllowed_V75)
{
    EXPECT_TRUE(checkSafety(kPtxMpWeak, ptx75Model()));
}

TEST(Smoke, PtxMpRelAcqForbidden_V60)
{
    EXPECT_FALSE(checkSafety(kPtxMpRelAcq, ptx60Model()));
}

TEST(Smoke, PtxMpRelAcqForbidden_V75)
{
    EXPECT_FALSE(checkSafety(kPtxMpRelAcq, ptx75Model()));
}

TEST(Smoke, PtxCoWWRespectsProgramOrder)
{
    // Same-thread writes to one location: final value must be the last.
    const char *test = R"(
PTX "coww"
P0@cta 0,gpu 0 ;
st.weak x, 1   ;
st.weak x, 2   ;
exists (x == 1)
)";
    EXPECT_FALSE(checkSafety(test, ptx60Model()));
    EXPECT_FALSE(checkSafety(test, ptx75Model()));
}

TEST(Smoke, PtxSbWithScFencesForbidden)
{
    const char *test = R"(
PTX "sb-fence-sc"
P0@cta 0,gpu 0 | P1@cta 0,gpu 0 ;
st.relaxed.sys x, 1 | st.relaxed.sys y, 1 ;
fence.sc.sys   | fence.sc.sys   ;
ld.relaxed.sys r0, y | ld.relaxed.sys r1, x ;
exists (P0:r0 == 0 /\ P1:r1 == 0)
)";
    EXPECT_FALSE(checkSafety(test, ptx60Model()));
}

TEST(Smoke, PtxSbWithoutFencesAllowed)
{
    const char *test = R"(
PTX "sb-weak"
P0@cta 0,gpu 0 | P1@cta 0,gpu 0 ;
st.weak x, 1   | st.weak y, 1   ;
ld.weak r0, y  | ld.weak r1, x  ;
exists (P0:r0 == 0 /\ P1:r1 == 0)
)";
    EXPECT_TRUE(checkSafety(test, ptx60Model()));
}

TEST(Smoke, VulkanMpAtomicRelAcqForbidden)
{
    const char *test = R"(
VULKAN "mp-vk-rel-acq"
P0@sg 0,wg 0,qf 0        | P1@sg 0,wg 1,qf 0        ;
st.atom.dv.sc0 data, 1   | ld.atom.acq.dv.sc0 r0, flag ;
st.atom.rel.dv.sc0 flag, 1 | ld.atom.dv.sc0 r1, data ;
exists (P1:r0 == 1 /\ P1:r1 == 0)
)";
    EXPECT_FALSE(checkSafety(test));
}

TEST(Smoke, VulkanMpRelaxedAllowed)
{
    const char *test = R"(
VULKAN "mp-vk-rlx"
P0@sg 0,wg 0,qf 0        | P1@sg 0,wg 1,qf 0        ;
st.atom.dv.sc0 data, 1   | ld.atom.dv.sc0 r0, flag  ;
st.atom.dv.sc0 flag, 1   | ld.atom.dv.sc0 r1, data  ;
exists (P1:r0 == 1 /\ P1:r1 == 0)
)";
    EXPECT_TRUE(checkSafety(test));
}

TEST(Smoke, Z3BackendAgreesOnMp)
{
    core::VerifierOptions options;
    options.backend = smt::BackendKind::Z3;
    EXPECT_TRUE(checkSafety(kPtxMpWeak, ptx60Model(), options));
    EXPECT_FALSE(checkSafety(kPtxMpRelAcq, ptx60Model(), options));
}

} // namespace
} // namespace gpumc::test
