/**
 * @file
 * Tests for the DPOR stateless model-checking engine: polarity
 * classification of the shipped .cat axioms, agreement with the SMT
 * verifier and the explicit baseline over the whole litmus corpus and
 * over fixed fuzz seeds, strictly-fewer-candidates guarantees on
 * multi-write locations, and budget/deadline handling.
 */

#include <chrono>
#include <filesystem>
#include <gtest/gtest.h>
#include <thread>

#include "dpor/dpor_checker.hpp"
#include "dpor/monotone.hpp"
#include "explicit/explicit_checker.hpp"
#include "fuzz/random_program.hpp"
#include "support/string_utils.hpp"
#include "tests/test_util.hpp"

namespace gpumc::test {
namespace {

namespace fs = std::filesystem;

dpor::DporResult
runDpor(const prog::Program &program, const cat::CatModel &model,
        dpor::DporOptions options = {})
{
    dpor::DporChecker checker(program, model, options);
    return checker.run();
}

dpor::DporResult
runDpor(const char *source, dpor::DporOptions options = {})
{
    prog::Program program = litmus::parseLitmus(source);
    return runDpor(program, modelFor(program), options);
}

const cat::Axiom *
findAxiom(const cat::CatModel &model, const std::string &name)
{
    for (const cat::Axiom &axiom : model.axioms()) {
        if (axiom.name == name)
            return &axiom;
    }
    return nullptr;
}

// ---------------------------------------------------------------------
// Polarity analysis: the hand-checked classification of every shipped
// axiom that the engine's staged pruning relies on.
// ---------------------------------------------------------------------

const std::vector<std::string> kUndecidedAtRf = {
    "rf", "co", "sync_fence", "syncbar", "sync_barrier"};
const std::vector<std::string> kUndecidedAtCo = {"co"};

TEST(DporMonotone, PtxAxiomClassification)
{
    const cat::CatModel &m = ptx75Model();
    dpor::PolarityAnalysis pa(m);

    const cat::Axiom *cohCause = findAxiom(m, "coherence-causality");
    const cat::Axiom *cohMs = findAxiom(m, "coherence-ms");
    const cat::Axiom *fenceSc = findAxiom(m, "fence-sc");
    const cat::Axiom *atomicity = findAxiom(m, "atomicity");
    const cat::Axiom *noThinAir = findAxiom(m, "no-thin-air");
    const cat::Axiom *causality = findAxiom(m, "causality");
    ASSERT_TRUE(cohCause && cohMs && fenceSc && atomicity &&
                noThinAir && causality);

    // Both coherence axioms subtract co (`\ co`, `\ (co | co^-1)`):
    // antitone, so violations on a partial co cannot be trusted.
    EXPECT_EQ(pa.polarityOf(*cohCause->expr, "co"), dpor::Polarity::Neg);
    EXPECT_EQ(pa.polarityOf(*cohMs->expr, "co"), dpor::Polarity::Neg);
    EXPECT_FALSE(pa.prunableWithPartial(*cohCause, kUndecidedAtCo));
    EXPECT_FALSE(pa.prunableWithPartial(*cohMs, kUndecidedAtCo));

    // fence-sc subtracts sync_fence but never mentions co: it is a
    // constant of the co subtree and prunes it at the root.
    EXPECT_EQ(pa.polarityOf(*fenceSc->expr, "sync_fence"),
              dpor::Polarity::Both);
    EXPECT_TRUE(pa.constantIn(*fenceSc, kUndecidedAtCo));
    EXPECT_FALSE(pa.prunableWithPartial(*fenceSc, kUndecidedAtRf));
    EXPECT_TRUE(pa.prunableWithPartial(*fenceSc, kUndecidedAtCo));

    // atomicity and causality are positive in rf and co (through `fr`
    // and `cause`); no-thin-air is rf-only. All three are usable from
    // the very first rf decision.
    for (const cat::Axiom *ax : {atomicity, noThinAir, causality}) {
        EXPECT_EQ(pa.polarityOf(*ax->expr, "rf"), dpor::Polarity::Pos)
            << ax->name;
        EXPECT_TRUE(pa.prunableWithPartial(*ax, kUndecidedAtRf))
            << ax->name;
        EXPECT_TRUE(pa.prunableWithPartial(*ax, kUndecidedAtCo))
            << ax->name;
    }
    EXPECT_EQ(pa.polarityOf(*atomicity->expr, "co"),
              dpor::Polarity::Pos);
    EXPECT_EQ(pa.polarityOf(*causality->expr, "co"),
              dpor::Polarity::Pos);
    EXPECT_EQ(pa.polarityOf(*noThinAir->expr, "co"),
              dpor::Polarity::None);
}

TEST(DporMonotone, VulkanAxiomClassification)
{
    const cat::CatModel &m = vulkanModel();
    dpor::PolarityAnalysis pa(m);

    const cat::Axiom *atomicity = findAxiom(m, "atomicity");
    const cat::Axiom *cycle = findAxiom(m, "consistency-cycle");
    const cat::Axiom *race = findAxiom(m, "race");
    ASSERT_TRUE(atomicity && cycle && race);

    // Only atomicity is monotone in co: every other axiom reaches co
    // through `rs` / `locord`, whose immediate-asmo-edge pattern
    // (`asmo \ (asmo; asmo+)`) mixes polarities.
    EXPECT_EQ(pa.polarityOf(*atomicity->expr, "co"),
              dpor::Polarity::Pos);
    EXPECT_TRUE(pa.prunableWithPartial(*atomicity, kUndecidedAtCo));
    EXPECT_EQ(pa.polarityOf(*cycle->expr, "co"), dpor::Polarity::Both);
    EXPECT_FALSE(pa.prunableWithPartial(*cycle, kUndecidedAtCo));
    for (const char *name :
         {"coherence", "read-from", "locord-complete"}) {
        const cat::Axiom *ax = findAxiom(m, name);
        ASSERT_TRUE(ax) << name;
        EXPECT_FALSE(pa.prunableWithPartial(*ax, kUndecidedAtCo))
            << name;
    }

    // Flag axioms never prune, and the Vulkan race flag depends on co
    // (through locord), so racy leaves cannot be skipped per subtree.
    EXPECT_FALSE(pa.prunableWithPartial(*race, kUndecidedAtCo));
    EXPECT_FALSE(pa.constantIn(*race, kUndecidedAtCo));
}

TEST(DporMonotone, PolarityAlgebra)
{
    using dpor::Polarity;
    EXPECT_EQ(dpor::joinPolarity(Polarity::None, Polarity::Neg),
              Polarity::Neg);
    EXPECT_EQ(dpor::joinPolarity(Polarity::Pos, Polarity::Pos),
              Polarity::Pos);
    EXPECT_EQ(dpor::joinPolarity(Polarity::Pos, Polarity::Neg),
              Polarity::Both);
    EXPECT_EQ(dpor::flipPolarity(Polarity::Pos), Polarity::Neg);
    EXPECT_EQ(dpor::flipPolarity(Polarity::Neg), Polarity::Pos);
    EXPECT_EQ(dpor::flipPolarity(Polarity::Both), Polarity::Both);
    EXPECT_EQ(dpor::flipPolarity(Polarity::None), Polarity::None);
}

// ---------------------------------------------------------------------
// Support envelope: identical gating to the explicit baseline.
// ---------------------------------------------------------------------

TEST(DporChecker, RejectsControlFlow)
{
    dpor::DporResult r = runDpor(R"(
PTX
P0@cta 0,gpu 0 ;
LC00:          ;
ld.weak r0, x  ;
beq r0, 0, LC00 ;
exists (true)
)");
    EXPECT_FALSE(r.supported);
    EXPECT_EQ(r.unsupportedReason, "control-flow instructions");
}

TEST(DporChecker, RejectsCas)
{
    dpor::DporResult r = runDpor(R"(
PTX
P0@cta 0,gpu 0 ;
atom.acq.gpu.cas r0, l, 0, 1 ;
exists (true)
)");
    EXPECT_FALSE(r.supported);
    EXPECT_EQ(r.unsupportedReason, "compare-and-swap");
}

// ---------------------------------------------------------------------
// Verdicts on hand-written tests, mirroring the explicit suite.
// ---------------------------------------------------------------------

TEST(DporChecker, MessagePassingWeak)
{
    dpor::DporResult r = runDpor(R"(
PTX
P0@cta 0,gpu 0 | P1@cta 0,gpu 0 ;
st.weak x, 1   | ld.weak r0, y  ;
st.weak y, 1   | ld.weak r1, x  ;
exists (P1:r0 == 1 /\ P1:r1 == 0)
)");
    ASSERT_TRUE(r.supported);
    EXPECT_FALSE(r.timedOut);
    EXPECT_TRUE(r.conditionHolds);
}

TEST(DporChecker, OutOfThinAirRejected)
{
    dpor::DporResult r = runDpor(R"(
PTX
P0@cta 0,gpu 0 | P1@cta 0,gpu 0 ;
ld.weak r0, x  | ld.weak r1, y  ;
st.weak y, r0  | st.weak x, r1  ;
exists (P0:r0 == 1 /\ P1:r1 == 1)
)");
    ASSERT_TRUE(r.supported);
    EXPECT_FALSE(r.conditionHolds);
    EXPECT_GT(r.prunedRfPrefixes + r.candidatesExplored, 0u);
}

TEST(DporChecker, RmwAtomicity)
{
    dpor::DporResult r = runDpor(R"(
PTX
P0@cta 0,gpu 0             | P1@cta 0,gpu 0             ;
atom.acq.gpu.add r0, c, 1  | atom.acq.gpu.add r0, c, 1  ;
exists (P0:r0 == P1:r0)
)");
    ASSERT_TRUE(r.supported);
    EXPECT_FALSE(r.conditionHolds);
}

TEST(DporChecker, VulkanRaceDetection)
{
    dpor::DporResult r = runDpor(R"(
VULKAN
P0@sg 0,wg 0,qf 0 | P1@sg 0,wg 1,qf 0 ;
st.sc0 x, 1       | ld.sc0 r0, x      ;
exists (P1:r0 == 1)
)");
    ASSERT_TRUE(r.supported);
    EXPECT_TRUE(r.raceFound);
    EXPECT_TRUE(r.conditionHolds);
}

TEST(DporChecker, ForallSemantics)
{
    dpor::DporResult r = runDpor(R"(
PTX
P0@cta 0,gpu 0 | P1@cta 0,gpu 0 ;
st.relaxed.gpu x, 1 | ld.relaxed.gpu r0, x ;
forall (P1:r0 == 0 \/ P1:r0 == 1)
)");
    ASSERT_TRUE(r.supported);
    EXPECT_TRUE(r.conditionHolds);
}

TEST(DporChecker, FilterRestrictsBehaviours)
{
    dpor::DporResult r = runDpor(R"(
VULKAN
P0@sg 0,wg 0,qf 0    | P1@sg 0,wg 1,qf 0       ;
st.atom.dv.sc0 f, 1  | ld.atom.dv.sc0 r0, f    ;
filter (P1:r0 == 1)
exists (P1:r0 == 0)
)");
    ASSERT_TRUE(r.supported);
    EXPECT_FALSE(r.conditionHolds);
    EXPECT_GT(r.consistentBehaviours, 0u);
}

// ---------------------------------------------------------------------
// Strictly fewer candidates than the explicit baseline on multi-write
// locations (the engine's reason to exist).
// ---------------------------------------------------------------------

TEST(DporChecker, FewerCandidatesThanExplicitOnPtxMultiWrite)
{
    const char *source = R"(
PTX
P0@cta 0,gpu 0 | P1@cta 0,gpu 0 | P2@cta 0,gpu 0 ;
st.weak x, 1   | st.weak x, 2   | ld.weak r0, x  ;
st.weak y, 1   | st.weak y, 2   | ld.weak r1, y  ;
exists (P2:r0 == 1 /\ P2:r1 == 2)
)";
    prog::Program program = litmus::parseLitmus(source);
    expl::ExplicitChecker explicitChecker(program, ptx75Model());
    expl::ExplicitResult e = explicitChecker.run();
    dpor::DporResult d = runDpor(program, ptx75Model());
    ASSERT_TRUE(e.supported && d.supported);
    ASSERT_FALSE(e.timedOut || d.timedOut);
    EXPECT_EQ(d.conditionHolds, e.conditionHolds);
    EXPECT_TRUE(d.conditionHolds);
    // Two locations with two stores each: the baseline enumerates the
    // full canonical partial-coherence space per rf choice, the DPOR
    // engine cuts each rf subtree after its first consistent leaf
    // (PTX has no flag axioms) and prunes with atomicity/causality.
    EXPECT_LT(d.candidatesExplored, e.candidatesExplored);
    EXPECT_GT(d.earlyStops + d.prunedCoBranches + d.prunedSubtrees, 0u);
}

TEST(DporChecker, FewerCandidatesThanExplicitOnVulkanRacyExists)
{
    const char *source = R"(
VULKAN
P0@sg 0,wg 0,qf 0 | P1@sg 0,wg 1,qf 0 | P2@sg 0,wg 2,qf 0 | P3@sg 0,wg 3,qf 0 ;
st.sc0 x, 1       | st.sc0 x, 2       | st.sc0 x, 3       | ld.sc0 r0, x      ;
exists (P3:r0 == 3)
)";
    prog::Program program = litmus::parseLitmus(source);
    expl::ExplicitChecker explicitChecker(program, vulkanModel());
    expl::ExplicitResult e = explicitChecker.run();
    dpor::DporResult d = runDpor(program, vulkanModel());
    ASSERT_TRUE(e.supported && d.supported);
    ASSERT_FALSE(e.timedOut || d.timedOut);
    EXPECT_EQ(d.conditionHolds, e.conditionHolds);
    EXPECT_EQ(d.raceFound, e.raceFound);
    EXPECT_TRUE(d.raceFound);
    // `exists` settles as soon as one racy witness appears; the
    // baseline still walks every rf choice x 3! total orders.
    EXPECT_LT(d.candidatesExplored, e.candidatesExplored);
}

// ---------------------------------------------------------------------
// Budgets: maxCandidates and the external Deadline both stop the
// exploration loop with timedOut set.
// ---------------------------------------------------------------------

// `forall (true)` can never settle early, forcing a full exploration.
const char *kBigPtxProgram = R"(
PTX
P0@cta 0,gpu 0 | P1@cta 0,gpu 0 | P2@cta 0,gpu 0 | P3@cta 0,gpu 0 ;
st.weak x, 1   | st.weak x, 2   | ld.weak r0, x  | ld.weak r1, x  ;
forall (true)
)";

TEST(DporChecker, MaxCandidatesBudget)
{
    dpor::DporOptions options;
    options.maxCandidates = 2;
    dpor::DporResult r = runDpor(kBigPtxProgram, options);
    ASSERT_TRUE(r.supported);
    EXPECT_TRUE(r.timedOut);
    EXPECT_LE(r.candidatesExplored, 2u);
}

TEST(DporChecker, HonorsExternalDeadline)
{
    dpor::DporOptions options;
    options.deadline = Deadline::in(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    dpor::DporResult r = runDpor(kBigPtxProgram, options);
    ASSERT_TRUE(r.supported);
    EXPECT_TRUE(r.timedOut);
    EXPECT_EQ(r.candidatesExplored, 0u);
}

// ---------------------------------------------------------------------
// Agreement with the SMT verifier on fixed fuzz seeds.
// ---------------------------------------------------------------------

TEST(DporChecker, AgreesWithSmtOnFuzzSeeds)
{
    const uint64_t seed = 20260809;
    for (prog::Arch arch : {prog::Arch::Ptx, prog::Arch::Vulkan}) {
        fuzz::FuzzConfig config = fuzz::FuzzConfig::basic(arch);
        for (uint64_t index = 0; index < 10; index++) {
            prog::Program program =
                fuzz::randomProgram(seed, index, config);
            const cat::CatModel &model = arch == prog::Arch::Ptx
                                             ? ptx75Model()
                                             : vulkanModel();
            dpor::DporOptions options;
            options.timeoutMs = 30000;
            options.maxCandidates = 500000;
            dpor::DporResult r = runDpor(program, model, options);
            if (!r.supported || r.timedOut)
                continue;
            core::VerifierOptions vopts;
            vopts.validateWitness = true;
            core::Verifier verifier(program, model, vopts);
            EXPECT_EQ(r.conditionHolds, verifier.checkSafety().holds)
                << (arch == prog::Arch::Ptx ? "PTX" : "Vulkan")
                << " fuzz case " << index;
            if (model.hasFlaggedAxioms()) {
                EXPECT_EQ(r.raceFound, !verifier.checkCatSpec().holds)
                    << (arch == prog::Arch::Ptx ? "PTX" : "Vulkan")
                    << " fuzz case " << index << " drf";
            }
        }
    }
}

// ---------------------------------------------------------------------
// Whole-corpus agreement: every supported litmus test must produce the
// SMT verdicts (safety and DRF) and the explicit baseline's verdicts,
// never exploring more candidates than the baseline does.
// ---------------------------------------------------------------------

std::vector<std::string>
collectCorpus()
{
    std::vector<std::string> out;
    for (const auto &entry :
         fs::recursive_directory_iterator(GPUMC_LITMUS_DIR)) {
        if (entry.is_regular_file() &&
            entry.path().extension() == ".litmus") {
            out.push_back(entry.path().string());
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

class DporCorpus : public ::testing::TestWithParam<std::string> {};

void
checkAgreement(const prog::Program &program, const cat::CatModel &model,
               const std::string &file)
{
    dpor::DporOptions dopts;
    dopts.timeoutMs = 20000;
    dopts.maxCandidates = 500000;
    dpor::DporResult d = runDpor(program, model, dopts);
    if (!d.supported || d.timedOut)
        return;

    core::VerifierOptions vopts;
    vopts.validateWitness = true;
    auto it = program.meta.find("bound");
    if (it != program.meta.end()) {
        std::optional<int64_t> bound = parseInt(it->second);
        ASSERT_TRUE(bound) << file;
        vopts.bound = static_cast<int>(*bound);
    }
    core::Verifier verifier(program, model, vopts);
    EXPECT_EQ(d.conditionHolds, verifier.checkSafety().holds)
        << file << " [" << model.name() << "] safety disagreement";
    if (model.hasFlaggedAxioms()) {
        EXPECT_EQ(d.raceFound, !verifier.checkCatSpec().holds)
            << file << " [" << model.name() << "] drf disagreement";
    }

    expl::ExplicitOptions eopts;
    eopts.timeoutMs = 20000;
    eopts.maxCandidates = 500000;
    expl::ExplicitChecker explicitChecker(program, model, eopts);
    expl::ExplicitResult e = explicitChecker.run();
    ASSERT_TRUE(e.supported) << file << ": support envelopes diverge";
    if (e.timedOut)
        return;
    EXPECT_EQ(d.conditionHolds, e.conditionHolds)
        << file << " [" << model.name() << "] vs explicit";
    EXPECT_EQ(d.raceFound, e.raceFound)
        << file << " [" << model.name() << "] vs explicit drf";
    EXPECT_LE(d.candidatesExplored, e.candidatesExplored)
        << file << " [" << model.name() << "]";
}

TEST_P(DporCorpus, AgreesWithSmtAndExplicit)
{
    const std::string &file = GetParam();
    prog::Program program = litmus::parseLitmusFile(file);
    if (program.arch == prog::Arch::Ptx) {
        checkAgreement(program, ptx60Model(), file);
        checkAgreement(program, ptx75Model(), file);
    } else {
        checkAgreement(program, vulkanModel(), file);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Files, DporCorpus, ::testing::ValuesIn(collectCorpus()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        fs::path p(info.param);
        std::string name = p.stem().string();
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name + "_" + std::to_string(info.index);
    });

} // namespace
} // namespace gpumc::test
