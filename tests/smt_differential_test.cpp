/**
 * @file
 * Randomized differential testing of the two SMT backends through the
 * Circuit/BitVec layers: identical random circuit constructions must
 * produce the same SAT/UNSAT verdict from the built-in CDCL solver and
 * from Z3. (A smaller in-tree version of the fuzzer that caught the
 * clause-minimization seen_-flag bug during development.)
 */

#include <gtest/gtest.h>

#include <random>

#include "smt/bitvector.hpp"
#include "smt/builtin_backend.hpp"
#include "smt/z3_backend.hpp"

namespace gpumc::smt {
namespace {

struct Instance {
    std::unique_ptr<Backend> backend;
    Circuit circuit;
    BitVecBuilder bv;

    explicit Instance(BackendKind kind)
        : backend(makeBackend(kind)), circuit(*backend), bv(circuit)
    {
    }
};

TEST(SmtDifferential, RandomCircuitsAgree)
{
    std::mt19937 rng(20240427);
    for (int round = 0; round < 60; ++round) {
        Instance a(BackendKind::Builtin);
        Instance b(BackendKind::Z3);

        std::vector<Lit> va, vb;
        int numVars = 8 + rng() % 20;
        for (int i = 0; i < numVars; ++i) {
            va.push_back(a.circuit.freshVar());
            vb.push_back(b.circuit.freshVar());
        }
        std::vector<BitVec> bva, bvb;
        for (int i = 0; i < 4; ++i) {
            int width = 3 + rng() % 5;
            bva.push_back(a.bv.fresh(width));
            bvb.push_back(b.bv.fresh(width));
        }

        int ops = 20 + rng() % 40;
        for (int k = 0; k < ops; ++k) {
            uint32_t r1 = rng(), r2 = rng(), r3 = rng();
            switch (r1 % 6) {
              case 0: { // exactly-one group
                size_t n = 2 + r2 % 4;
                std::vector<Lit> ga, gb;
                for (size_t i = 0; i < n; ++i) {
                    size_t idx = (r3 + i * 7) % va.size();
                    ga.push_back(va[idx]);
                    gb.push_back(vb[idx]);
                }
                a.circuit.assertExactlyOne(ga);
                b.circuit.assertExactlyOne(gb);
                break;
              }
              case 1: { // implication
                size_t i1 = r2 % va.size(), i2 = r3 % va.size();
                a.circuit.assertImplies(va[i1], va[i2]);
                b.circuit.assertImplies(vb[i1], vb[i2]);
                break;
              }
              case 2: { // new gate
                size_t i1 = r2 % va.size(), i2 = r3 % va.size();
                va.push_back(a.circuit.mkXor(va[i1], -va[i2]));
                vb.push_back(b.circuit.mkXor(vb[i1], -vb[i2]));
                break;
              }
              case 3: { // bit-vector sum equality
                size_t x = r2 % bva.size(), y = r3 % bva.size();
                if (bva[x].width() != bva[y].width())
                    break;
                va.push_back(a.bv.eq(a.bv.add(bva[x], bva[y]), bva[x]));
                vb.push_back(b.bv.eq(b.bv.add(bvb[x], bvb[y]), bvb[x]));
                break;
              }
              case 4: { // comparison chain
                size_t x = r2 % bva.size(), y = r3 % bva.size();
                if (bva[x].width() != bva[y].width())
                    break;
                va.push_back(a.bv.ult(bva[x], bva[y]));
                vb.push_back(b.bv.ult(bvb[x], bvb[y]));
                break;
              }
              case 5: { // short random clause
                size_t n = 1 + r2 % 3;
                std::vector<Lit> ga, gb;
                for (size_t i = 0; i < n; ++i) {
                    size_t idx = (r3 + i * 11) % va.size();
                    bool neg = (r2 >> i) & 1;
                    ga.push_back(neg ? -va[idx] : va[idx]);
                    gb.push_back(neg ? -vb[idx] : vb[idx]);
                }
                a.circuit.assertClause(ga);
                b.circuit.assertClause(gb);
                break;
              }
            }
        }

        SolveResult ra = a.backend->solve({});
        SolveResult rb = b.backend->solve({});
        ASSERT_EQ(ra, rb) << "backend disagreement in round " << round;
    }
}

} // namespace
} // namespace gpumc::smt
