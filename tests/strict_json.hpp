/**
 * @file
 * A deliberately strict recursive-descent JSON parser for tests: any
 * deviation from RFC 8259 (trailing commas, unescaped control
 * characters, bad escapes, garbage after the document, ...) throws.
 * Used to golden-check the machine-readable outputs of the tools —
 * Chrome trace JSON, metrics JSON and the corpus --json report.
 */

#ifndef GPUMC_TESTS_STRICT_JSON_HPP
#define GPUMC_TESTS_STRICT_JSON_HPP

#include <cmath>
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace gpumc::test {

struct JsonValue {
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isString() const { return kind == Kind::String; }
    bool isNumber() const { return kind == Kind::Number; }

    bool has(const std::string &key) const
    {
        return kind == Kind::Object && object.count(key) != 0;
    }

    const JsonValue &at(const std::string &key) const
    {
        if (!has(key))
            throw std::runtime_error("missing JSON key: " + key);
        return object.at(key);
    }
};

class StrictJsonParser {
  public:
    explicit StrictJsonParser(const std::string &text) : text_(text) {}

    JsonValue parse()
    {
        skipWs();
        JsonValue v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing content after JSON document");
        return v;
    }

  private:
    [[noreturn]] void fail(const std::string &what) const
    {
        throw std::runtime_error("strict JSON error at offset " +
                                 std::to_string(pos_) + ": " + what);
    }

    char peek() const
    {
        if (pos_ >= text_.size())
            throw std::runtime_error("unexpected end of JSON input");
        return text_[pos_];
    }

    char next()
    {
        char c = peek();
        pos_++;
        return c;
    }

    void expect(char c)
    {
        if (next() != c)
            fail(std::string("expected '") + c + "'");
    }

    void skipWs()
    {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
                pos_++;
            else
                break;
        }
    }

    JsonValue parseValue()
    {
        switch (peek()) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return parseString();
          case 't': return parseKeyword("true");
          case 'f': return parseKeyword("false");
          case 'n': return parseKeyword("null");
          default: return parseNumber();
        }
    }

    JsonValue parseKeyword(const std::string &word)
    {
        if (text_.compare(pos_, word.size(), word) != 0)
            fail("invalid keyword");
        pos_ += word.size();
        JsonValue v;
        if (word == "true") {
            v.kind = JsonValue::Kind::Bool;
            v.boolean = true;
        } else if (word == "false") {
            v.kind = JsonValue::Kind::Bool;
            v.boolean = false;
        } else {
            v.kind = JsonValue::Kind::Null;
        }
        return v;
    }

    JsonValue parseObject()
    {
        expect('{');
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        skipWs();
        if (peek() == '}') {
            next();
            return v;
        }
        while (true) {
            skipWs();
            if (peek() != '"')
                fail("object key must be a string");
            JsonValue key = parseString();
            skipWs();
            expect(':');
            skipWs();
            if (!v.object.emplace(key.str, parseValue()).second)
                fail("duplicate object key: " + key.str);
            skipWs();
            char c = next();
            if (c == '}')
                return v;
            if (c != ',')
                fail("expected ',' or '}' in object");
        }
    }

    JsonValue parseArray()
    {
        expect('[');
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        skipWs();
        if (peek() == ']') {
            next();
            return v;
        }
        while (true) {
            skipWs();
            v.array.push_back(parseValue());
            skipWs();
            char c = next();
            if (c == ']')
                return v;
            if (c != ',')
                fail("expected ',' or ']' in array");
        }
    }

    int hexDigit(char c)
    {
        if (c >= '0' && c <= '9')
            return c - '0';
        if (c >= 'a' && c <= 'f')
            return c - 'a' + 10;
        if (c >= 'A' && c <= 'F')
            return c - 'A' + 10;
        fail("invalid \\u escape digit");
    }

    JsonValue parseString()
    {
        expect('"');
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        while (true) {
            char c = next();
            if (c == '"')
                return v;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("unescaped control character in string");
            if (c != '\\') {
                v.str += c;
                continue;
            }
            char e = next();
            switch (e) {
              case '"': v.str += '"'; break;
              case '\\': v.str += '\\'; break;
              case '/': v.str += '/'; break;
              case 'b': v.str += '\b'; break;
              case 'f': v.str += '\f'; break;
              case 'n': v.str += '\n'; break;
              case 'r': v.str += '\r'; break;
              case 't': v.str += '\t'; break;
              case 'u': {
                int code = 0;
                for (int i = 0; i < 4; ++i)
                    code = code * 16 + hexDigit(next());
                if (code < 0x80) {
                    v.str += static_cast<char>(code);
                } else {
                    // Tests only decode ASCII; keep the escape opaque
                    // (UTF-8 encoding of the BMP is not needed here).
                    v.str += '?';
                }
                break;
              }
              default: fail("invalid escape sequence");
            }
        }
    }

    JsonValue parseNumber()
    {
        size_t start = pos_;
        if (peek() == '-')
            next();
        if (!std::isdigit(static_cast<unsigned char>(peek())))
            fail("invalid number");
        // No leading zeros: "0" or [1-9][0-9]*.
        if (next() == '0' && pos_ < text_.size() &&
            std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
            fail("leading zero in number");
        }
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_])))
            pos_++;
        if (pos_ < text_.size() && text_[pos_] == '.') {
            pos_++;
            if (pos_ >= text_.size() ||
                !std::isdigit(static_cast<unsigned char>(text_[pos_])))
                fail("digit required after decimal point");
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])))
                pos_++;
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            pos_++;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                pos_++;
            if (pos_ >= text_.size() ||
                !std::isdigit(static_cast<unsigned char>(text_[pos_])))
                fail("digit required in exponent");
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])))
                pos_++;
        }
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        v.number = std::strtod(text_.substr(start, pos_ - start).c_str(),
                               nullptr);
        if (!std::isfinite(v.number))
            fail("non-finite number");
        return v;
    }

    const std::string &text_;
    size_t pos_ = 0;
};

inline JsonValue
parseStrictJson(const std::string &text)
{
    return StrictJsonParser(text).parse();
}

} // namespace gpumc::test

#endif // GPUMC_TESTS_STRICT_JSON_HPP
