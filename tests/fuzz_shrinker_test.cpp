/**
 * @file
 * Delta-debugging shrinker tests: minimization under structural
 * predicates, validity of every result, and preservation of a real
 * oracle disagreement while shrinking.
 */

#include <gtest/gtest.h>

#include "fuzz/oracle.hpp"
#include "fuzz/random_program.hpp"
#include "fuzz/shrinker.hpp"
#include "tests/test_util.hpp"

namespace gpumc::test {
namespace {

using namespace prog;

bool
hasBackwardBranch(const Program &program)
{
    for (const Thread &thread : program.threads) {
        std::vector<std::string> seen;
        for (const Instruction &ins : thread.instrs) {
            if (ins.op == Opcode::Label)
                seen.push_back(ins.label);
            if ((ins.isBranch() || ins.op == Opcode::Goto) &&
                std::find(seen.begin(), seen.end(), ins.label) !=
                    seen.end()) {
                return true;
            }
        }
    }
    return false;
}

TEST(FuzzShrinker, CloneIsDeepAndEquivalent)
{
    Program program = fuzz::randomProgram(
        3, 0, fuzz::FuzzConfig::full(Arch::Vulkan));
    Program copy = fuzz::cloneProgram(program);
    EXPECT_EQ(fuzz::programSize(program), fuzz::programSize(copy));
    ASSERT_TRUE(copy.assertion);
    EXPECT_EQ(program.assertion->str(), copy.assertion->str());
    // Deep: mutating the copy's condition leaves the original alone.
    std::string before = program.assertion->str();
    copy.assertion = Cond::mkTrue();
    EXPECT_EQ(program.assertion->str(), before);
}

TEST(FuzzShrinker, MinimizesUnderStructuralPredicate)
{
    // Find a control-flow program with a loop, then shrink it while
    // "still has a backward branch" keeps holding. The fixpoint should
    // strip everything else.
    fuzz::FuzzConfig config =
        fuzz::FuzzConfig::withControlFlow(Arch::Ptx);
    for (uint64_t i = 0;; ++i) {
        ASSERT_LT(i, 200u) << "no loopy program in 200 draws";
        Program program = fuzz::randomProgram(17, i, config);
        if (!hasBackwardBranch(program))
            continue;

        fuzz::ShrinkOutcome outcome = fuzz::shrinkProgram(
            program, [](const Program &p) { return hasBackwardBranch(p); });
        EXPECT_TRUE(hasBackwardBranch(outcome.program));
        EXPECT_LE(outcome.finalSize, outcome.initialSize);
        // A single loop needs only label + branch (+ loop counter
        // bookkeeping); anything above a handful of instructions means
        // the shrinker stopped early.
        EXPECT_LE(fuzz::programSize(outcome.program), 4);
        EXPECT_EQ(outcome.program.threads.size(), 1u);
        ASSERT_NO_THROW(fuzz::cloneProgram(outcome.program).validate());
        break;
    }
}

TEST(FuzzShrinker, RespectsAttemptBudget)
{
    Program program =
        fuzz::randomProgram(5, 0, fuzz::FuzzConfig::full(Arch::Ptx));
    fuzz::ShrinkOptions options;
    options.maxAttempts = 7;
    int calls = 0;
    fuzz::ShrinkOutcome outcome = fuzz::shrinkProgram(
        program,
        [&](const Program &) {
            calls++;
            return true;
        },
        options);
    EXPECT_LE(outcome.attempts, 7);
    EXPECT_LE(calls, 7);
}

TEST(FuzzShrinker, PreservesOracleDisagreement)
{
    // The injected bound-gap disagreement from the oracle tests, with
    // noise instructions around it; shrinking must keep the loop that
    // causes the gap and drop the noise.
    const char *source = "PTX \"noisy-bound-gap\"\n"
                         "{ v0 = 0; v1 = 0; }\n"
                         "P0@cta 0,gpu 0  | P1@cta 1,gpu 0 ;\n"
                         "st.relaxed.cta v1, 1 | ld.relaxed.cta r9, v1 ;\n"
                         "mov r0, 0       |                ;\n"
                         "L0:             |                ;\n"
                         "add r0, r0, 1   |                ;\n"
                         "bne r0, 3, L0   |                ;\n"
                         "exists (P0:r0 == 3)\n";
    Program program = litmus::parseLitmus(source);

    fuzz::OracleOptions options;
    options = options.only(fuzz::OracleKind::Z3VsBuiltin);
    options.bound = 2;
    options.z3Bound = 1;
    const cat::CatModel &model = ptx75Model();
    auto stillFails = [&](const Program &candidate) {
        fuzz::OracleReport report =
            fuzz::runOracles(candidate, model, options);
        const fuzz::OracleOutcome *o =
            report.find(fuzz::OracleKind::Z3VsBuiltin);
        return o && o->verdict == fuzz::OracleVerdict::Disagree;
    };
    ASSERT_TRUE(stillFails(program)) << "premise: injection disagrees";

    fuzz::ShrinkOutcome outcome =
        fuzz::shrinkProgram(program, stillFails);
    EXPECT_TRUE(stillFails(outcome.program));
    EXPECT_LT(outcome.finalSize, outcome.initialSize);
    EXPECT_EQ(outcome.program.threads.size(), 1u)
        << "the noise thread should be gone";
    EXPECT_TRUE(hasBackwardBranch(outcome.program))
        << "the loop causing the bound gap must survive";
}

} // namespace
} // namespace gpumc::test
