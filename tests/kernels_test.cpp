/**
 * @file
 * Verification of the synchronization primitives of the paper's
 * Table 7: the base variants guarantee mutual exclusion / barrier
 * semantics; every weakening (acquire->relaxed, release->relaxed,
 * device->workgroup across workgroups) introduces a bug.
 */

#include <gtest/gtest.h>

#include "gpuverify/static_drf.hpp"
#include "kernels/sync_kernels.hpp"
#include "tests/test_util.hpp"

namespace gpumc::test {
namespace {

using kernels::KernelGrid;
using kernels::LockVariant;
using kernels::XfVariant;

bool
mutexViolationReachable(const prog::Program &program, int bound = 2)
{
    core::VerifierOptions options;
    options.bound = bound;
    core::Verifier verifier(program, vulkanModel(), options);
    return verifier.checkSafety().holds;
}

TEST(SyncKernels, CaslockCorrect)
{
    EXPECT_FALSE(mutexViolationReachable(
        kernels::buildCaslock({2, 2}, LockVariant::Base)));
}

TEST(SyncKernels, CaslockAcq2RlxBuggy)
{
    EXPECT_TRUE(mutexViolationReachable(
        kernels::buildCaslock({2, 2}, LockVariant::Acq2Rlx)));
}

TEST(SyncKernels, CaslockRel2RlxBuggy)
{
    EXPECT_TRUE(mutexViolationReachable(
        kernels::buildCaslock({2, 2}, LockVariant::Rel2Rlx)));
}

TEST(SyncKernels, CaslockWgScopeAcrossWgBuggy)
{
    EXPECT_TRUE(mutexViolationReachable(
        kernels::buildCaslock({2, 2}, LockVariant::Dv2Wg)));
}

TEST(SyncKernels, CaslockWgScopeWithinWgCorrect)
{
    // All threads in one workgroup: workgroup scope is enough.
    EXPECT_FALSE(mutexViolationReachable(
        kernels::buildCaslock({2, 1}, LockVariant::Dv2Wg)));
}

TEST(SyncKernels, TicketlockCorrect)
{
    EXPECT_FALSE(mutexViolationReachable(
        kernels::buildTicketlock({2, 1}, LockVariant::Base)));
}

TEST(SyncKernels, TicketlockAcq2RlxBuggy)
{
    EXPECT_TRUE(mutexViolationReachable(
        kernels::buildTicketlock({2, 2}, LockVariant::Acq2Rlx)));
}

TEST(SyncKernels, TicketlockRel2RlxBuggy)
{
    EXPECT_TRUE(mutexViolationReachable(
        kernels::buildTicketlock({2, 2}, LockVariant::Rel2Rlx)));
}

TEST(SyncKernels, TtaslockCorrect)
{
    EXPECT_FALSE(mutexViolationReachable(
        kernels::buildTtaslock({2, 1}, LockVariant::Base)));
}

TEST(SyncKernels, TtaslockAcq2RlxBuggy)
{
    EXPECT_TRUE(mutexViolationReachable(
        kernels::buildTtaslock({2, 2}, LockVariant::Acq2Rlx)));
}

TEST(SyncKernels, XfBarrierCorrect)
{
    EXPECT_FALSE(mutexViolationReachable(
        kernels::buildXfBarrier({2, 2}, XfVariant::Base)));
}

TEST(SyncKernels, XfBarrierWeakeningsBuggy)
{
    for (XfVariant variant :
         {XfVariant::AcqToRlx1, XfVariant::AcqToRlx2,
          XfVariant::RelToRlx1, XfVariant::RelToRlx2}) {
        EXPECT_TRUE(mutexViolationReachable(
            kernels::buildXfBarrier({2, 2}, variant)))
            << kernels::xfVariantName(variant);
    }
}

TEST(SyncKernels, XfBarrierDrfAndLiveness)
{
    prog::Program program = kernels::buildXfBarrier({2, 2},
                                                    XfVariant::Base);
    core::Verifier verifier(program, vulkanModel(), {});
    EXPECT_TRUE(verifier.checkCatSpec().holds) << "should be race-free";
    EXPECT_TRUE(verifier.checkLiveness().holds) << "should be live";
}

TEST(SyncKernels, GpuVerifyFalsePositiveOnCaslock)
{
    // The paper (Section 7.4): GPUVerify reports a data race in the
    // critical section of caslock even with strong accesses; gpumc
    // proves it race-free. Our static baseline reproduces this.
    prog::Program program = kernels::buildCaslock({2, 2},
                                                  LockVariant::Base);
    gpuverify::StaticDrfResult staticResult =
        gpuverify::analyzeStaticDrf(program);
    EXPECT_TRUE(staticResult.raceFound) << "baseline false positive";

    core::Verifier verifier(program, vulkanModel(), {});
    EXPECT_TRUE(verifier.checkCatSpec().holds)
        << "gpumc should prove race freedom";
}

} // namespace
} // namespace gpumc::test
