/**
 * @file
 * Fixed-width bit-vector terms built on top of the boolean Circuit.
 *
 * gpumc encodes register/memory values and order clocks as bit-vectors so
 * the same encoding runs on both the Z3 and the built-in CDCL backend.
 * Bit 0 is the least significant bit.
 */

#ifndef GPUMC_SMT_BITVECTOR_HPP
#define GPUMC_SMT_BITVECTOR_HPP

#include <cstdint>
#include <vector>

#include "smt/circuit.hpp"

namespace gpumc::smt {

/** A bit-vector term: one literal per bit, LSB first. */
struct BitVec {
    std::vector<Lit> bits;

    int width() const { return static_cast<int>(bits.size()); }
};

class BitVecBuilder {
  public:
    explicit BitVecBuilder(Circuit &circuit) : c_(circuit) {}

    Circuit &circuit() { return c_; }

    /** A constant of the given width (truncating the value). */
    BitVec constant(uint64_t value, int width);

    /** A fresh unconstrained variable of the given width. */
    BitVec fresh(int width);

    /** a + b (modular). Widths must match. */
    BitVec add(const BitVec &a, const BitVec &b);
    /** a - b (modular). */
    BitVec sub(const BitVec &a, const BitVec &b);

    /** Bitwise select: c ? t : e. */
    BitVec ite(Lit cond, const BitVec &t, const BitVec &e);

    /** Equality as a literal. */
    Lit eq(const BitVec &a, const BitVec &b);
    /** Unsigned less-than as a literal. */
    Lit ult(const BitVec &a, const BitVec &b);
    /** Unsigned less-or-equal as a literal. */
    Lit ule(const BitVec &a, const BitVec &b);

    /** Equality against a constant. */
    Lit eqConst(const BitVec &a, uint64_t value);

    /** Decode a model value after a Sat solve. */
    uint64_t modelValue(const BitVec &a) const;

  private:
    Circuit &c_;
};

} // namespace gpumc::smt

#endif // GPUMC_SMT_BITVECTOR_HPP
