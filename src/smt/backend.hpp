/**
 * @file
 * Solver-independent backend interface. The encoder produces plain CNF
 * through this interface, so any backend that can handle clauses over
 * boolean variables plugs in. Two implementations ship with gpumc:
 *  - BuiltinBackend: the from-scratch CDCL solver in smt/sat.
 *  - Z3Backend: the native Z3 C++ API.
 */

#ifndef GPUMC_SMT_BACKEND_HPP
#define GPUMC_SMT_BACKEND_HPP

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace gpumc::smt {

/**
 * Backend-neutral literal: a non-zero integer; negative values are the
 * negation of the corresponding positive literal (DIMACS convention).
 */
using Lit = int32_t;

enum class SolveResult { Sat, Unsat, Unknown };

/** Truth value of a literal in a model. */
enum class TruthValue { False, True, Unknown };

class Backend {
  public:
    virtual ~Backend() = default;

    /** Allocate a fresh variable; returns its positive literal. */
    virtual Lit newVar() = 0;

    /** Assert a clause (disjunction of literals). */
    virtual void addClause(const std::vector<Lit> &clause) = 0;

    /** Solve the asserted clauses under optional assumptions. */
    virtual SolveResult solve(const std::vector<Lit> &assumptions = {}) = 0;

    /**
     * Allocate a fresh activation (selector) literal for assumption-
     * guarded incremental queries. Clauses asserted as
     * `{-act, l1, ..., ln}` only constrain the search when `act` is
     * passed to solve() as an assumption; passing `-act` retires the
     * group without destroying learned clauses. The default is a plain
     * fresh variable, which is exactly what both shipped backends need
     * — the method exists so backends with native selector support
     * (e.g. tracked assertions) can override it.
     */
    virtual Lit mkActivationLit() { return newVar(); }

    /**
     * Best-effort resource cap for subsequent solve() calls; when
     * exhausted, solve returns Unknown. Any value <= 0 disables the
     * limit entirely (restores the backend's unlimited default) — both
     * shipped backends must agree on this disable semantics.
     */
    virtual void setTimeLimitMs(int64_t) {}

    /** Model value of @p lit after a Sat result. */
    virtual TruthValue modelValue(Lit lit) const = 0;

    /** Number of variables allocated so far. */
    virtual int64_t numVars() const = 0;

    /** Number of clauses asserted so far. */
    virtual int64_t numClauses() const = 0;

    /** Human-readable backend name for reports. */
    virtual std::string name() const = 0;

    /**
     * Search statistics accumulated by solve() calls so far, as
     * backend-defined named counters. Both shipped backends report at
     * least `solveCalls`; the builtin CDCL solver additionally reports
     * `conflicts`, `decisions`, `propagations`, `restarts`,
     * `learnedClauses` and `removedClauses`, and Z3 whatever its
     * native statistics expose (keys normalized to snake-ish form).
     */
    virtual std::map<std::string, int64_t> statistics() const
    {
        return {};
    }
};

/** Which backend a verification run should use. */
enum class BackendKind { Z3, Builtin };

/** Factory. */
std::unique_ptr<Backend> makeBackend(BackendKind kind);

} // namespace gpumc::smt

#endif // GPUMC_SMT_BACKEND_HPP
