/**
 * @file
 * Solver-independent backend interface. The encoder produces plain CNF
 * through this interface, so any backend that can handle clauses over
 * boolean variables plugs in. Three implementations ship with gpumc:
 *  - BuiltinBackend: the from-scratch CDCL solver in smt/sat.
 *  - Z3Backend: the native Z3 C++ API.
 *  - PortfolioBackend: both of the above racing on every query with
 *    first-wins cancellation (smt/portfolio_backend.hpp).
 */

#ifndef GPUMC_SMT_BACKEND_HPP
#define GPUMC_SMT_BACKEND_HPP

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "support/stats.hpp"

namespace gpumc::smt {

namespace sat {
class ClauseStore;
} // namespace sat

/**
 * Backend-neutral literal: a non-zero integer; negative values are the
 * negation of the corresponding positive literal (DIMACS convention).
 */
using Lit = int32_t;

enum class SolveResult { Sat, Unsat, Unknown };

/** Truth value of a literal in a model. */
enum class TruthValue { False, True, Unknown };

class Backend {
  public:
    virtual ~Backend() = default;

    /** Allocate a fresh variable; returns its positive literal. */
    virtual Lit newVar() = 0;

    /** Assert a clause (disjunction of literals). */
    virtual void addClause(const std::vector<Lit> &clause) = 0;

    /** Solve the asserted clauses under optional assumptions. */
    virtual SolveResult solve(const std::vector<Lit> &assumptions = {}) = 0;

    /**
     * Allocate a fresh activation (selector) literal for assumption-
     * guarded incremental queries. Clauses asserted as
     * `{-act, l1, ..., ln}` only constrain the search when `act` is
     * passed to solve() as an assumption; passing `-act` retires the
     * group without destroying learned clauses. The default is a plain
     * fresh variable, which is exactly what both shipped backends need
     * — the method exists so backends with native selector support
     * (e.g. tracked assertions) can override it.
     */
    virtual Lit mkActivationLit() { return newVar(); }

    /**
     * Best-effort resource cap for subsequent solve() calls; when
     * exhausted, solve returns Unknown. Any value <= 0 disables the
     * limit entirely (restores the backend's unlimited default) — both
     * shipped backends must agree on this disable semantics.
     */
    virtual void setTimeLimitMs(int64_t) {}

    /**
     * Cooperative cancellation: ask an in-flight solve() (typically on
     * another thread) to stop at its next poll point and return
     * Unknown. Must be safe to call from any thread, at any time —
     * including when no solve is running, in which case the request
     * may cancel the *next* solve until clearInterrupt() is called.
     * The backend must remain usable afterwards: an interrupted solve
     * leaves no residue beyond its Unknown result (learned clauses are
     * kept), exactly like a timeout. Default: no-op (the interrupt is
     * simply never observed).
     */
    virtual void interrupt() {}

    /**
     * Withdraw a pending interrupt() so later solve() calls run to
     * completion. Called by the portfolio racer between queries.
     */
    virtual void clearInterrupt() {}

    /** Model value of @p lit after a Sat result. */
    virtual TruthValue modelValue(Lit lit) const = 0;

    /** Number of variables allocated so far. */
    virtual int64_t numVars() const = 0;

    /** Number of clauses asserted so far. */
    virtual int64_t numClauses() const = 0;

    /** Human-readable backend name for reports. */
    virtual std::string name() const = 0;

    /**
     * Attach a shared learned-clause store for cross-session sharing
     * (see sat::ClauseStore). @p varLimit is the sharing watermark:
     * only clauses whose variables were all allocated before it are
     * exported — variables above it (activation literals, property
     * gates) mean different things in other sessions. Backends without
     * a native CDCL solver ignore the attachment (default no-op); the
     * portfolio backend forwards it to its builtin lane.
     */
    virtual void
    attachClauseStore(std::shared_ptr<sat::ClauseStore> /*store*/,
                      int64_t /*varLimit*/)
    {
    }

    /**
     * Search statistics accumulated by solve() calls so far, as
     * backend-defined named counters. Both shipped backends report at
     * least `solveCalls`; the builtin CDCL solver additionally reports
     * `conflicts`, `decisions`, `propagations`, `restarts`,
     * `learnedClauses` and `removedClauses`, and Z3 whatever its
     * native statistics expose (keys normalized to snake-ish form).
     */
    virtual std::map<std::string, int64_t> statistics() const
    {
        return {};
    }
};

/** Which backend a verification run should use. */
enum class BackendKind { Z3, Builtin, Portfolio };

/** Stable lower-case name for CLI flags and test parameter labels. */
const char *backendKindName(BackendKind kind);

/**
 * Learned-clause sharing scopes for the builtin CDCL solver (also the
 * builtin lane of the portfolio backend):
 *  - Off:     today's behaviour, bit for bit. The default — sharing
 *             keeps verdicts identical but makes the search path (and
 *             therefore witnesses and solver statistics) depend on
 *             thread timing, which strict-determinism callers (the
 *             fuzz campaign log) cannot accept.
 *  - Cube:    share between the main solver and the cube-and-conquer
 *             workers of one backend, across rounds and queries. Also
 *             covers the portfolio's budget-starved sequential
 *             fallback, which solves on the same (persistent) lane.
 *  - Session: share across sessions with equal core::SessionKey —
 *             assumption-guarded sibling queries, same-fingerprint
 *             batch jobs, serve-pool rebuilds — through a process-wide
 *             store, restricted to the structural variable watermark.
 *  - On:      both scopes.
 */
enum class ClauseShareMode { Off, Cube, Session, On };

/** Stable lower-case name ("off"/"cube"/"session"/"on"). */
const char *clauseShareModeName(ClauseShareMode mode);

/** Parse a --clause-share value; returns false on unknown text. */
bool parseClauseShareMode(const std::string &text, ClauseShareMode &out);

inline bool
shareCubesEnabled(ClauseShareMode mode)
{
    return mode == ClauseShareMode::Cube || mode == ClauseShareMode::On;
}

inline bool
shareSessionsEnabled(ClauseShareMode mode)
{
    return mode == ClauseShareMode::Session || mode == ClauseShareMode::On;
}

/** Construction-time knobs that are not part of the query interface. */
struct BackendConfig {
    /**
     * Cube-and-conquer split depth for the builtin CDCL solver: split
     * each query on the 2^depth sign combinations of the `depth`
     * highest-activity unassigned variables and farm the cubes through
     * the shared thread budget. 0 (default) disables cubing.
     */
    int cubeDepth = 0;
    /**
     * Cube-scope clause sharing: the main solver and every cube worker
     * publish learned clauses to one per-backend store and import each
     * other's at restart boundaries (identical clause databases, so no
     * variable watermark applies). Off by default.
     */
    bool shareCubes = false;
    /** Export-filter thresholds for the cube-scope store. */
    int shareMaxLbd = 8;
    int shareMaxSize = 32;
};

/** Factory. */
std::unique_ptr<Backend> makeBackend(BackendKind kind,
                                     const BackendConfig &config = {});

/**
 * Arm @p backend's time limit from @p deadline, honouring the
 * "<= 0 disables" contract of setTimeLimitMs: an unlimited deadline
 * restores the unlimited default and an expired one must NOT be
 * forwarded as remainingMs() == 0 (that would launch an unbounded
 * solve). Returns false when the deadline has already expired — the
 * caller must then report Unknown instead of solving; as defence in
 * depth the backend is still armed with a 1 ms budget.
 */
bool armTimeLimit(Backend &backend, const Deadline &deadline);

} // namespace gpumc::smt

#endif // GPUMC_SMT_BACKEND_HPP
