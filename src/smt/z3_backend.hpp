/**
 * @file
 * Backend adapter over the native Z3 C++ API. Clauses are asserted as
 * disjunctions of boolean constants.
 */

#ifndef GPUMC_SMT_Z3_BACKEND_HPP
#define GPUMC_SMT_Z3_BACKEND_HPP

#include <memory>

#include "smt/backend.hpp"

namespace gpumc::smt {

class Z3Backend : public Backend {
  public:
    Z3Backend();
    ~Z3Backend() override;

    Lit newVar() override;
    void addClause(const std::vector<Lit> &clause) override;
    SolveResult solve(const std::vector<Lit> &assumptions) override;
    void setTimeLimitMs(int64_t ms) override;
    void interrupt() override;
    void clearInterrupt() override;
    TruthValue modelValue(Lit lit) const override;
    int64_t numVars() const override;
    int64_t numClauses() const override;
    std::string name() const override { return "z3"; }
    std::map<std::string, int64_t> statistics() const override;

  private:
    struct Impl; // hides z3++.h from the rest of the codebase
    std::unique_ptr<Impl> impl_;
};

} // namespace gpumc::smt

#endif // GPUMC_SMT_Z3_BACKEND_HPP
