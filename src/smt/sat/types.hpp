/**
 * @file
 * Core types for the built-in CDCL SAT solver (MiniSat-style literal
 * encoding).
 */

#ifndef GPUMC_SMT_SAT_TYPES_HPP
#define GPUMC_SMT_SAT_TYPES_HPP

#include <cstdint>

namespace gpumc::smt::sat {

/** Variable index, 0-based. */
using Var = int32_t;

constexpr Var kUndefVar = -1;

/**
 * Literal: variable plus sign, packed as 2*var+sign. sign==1 means the
 * negated literal.
 */
struct Lit {
    int32_t x = -2;

    constexpr Lit() = default;
    constexpr Lit(Var v, bool sign) : x(2 * v + (sign ? 1 : 0)) {}

    constexpr Var var() const { return x >> 1; }
    constexpr bool sign() const { return x & 1; }
    constexpr int index() const { return x; }

    constexpr Lit operator~() const
    {
        Lit l;
        l.x = x ^ 1;
        return l;
    }

    constexpr bool operator==(const Lit &o) const { return x == o.x; }
    constexpr bool operator!=(const Lit &o) const { return x != o.x; }
    constexpr bool operator<(const Lit &o) const { return x < o.x; }
};

constexpr Lit mkLit(Var v, bool sign = false) { return Lit(v, sign); }

constexpr Lit kUndefLit{};

/** Three-valued logic for assignments. */
enum class LBool : uint8_t { False = 0, True = 1, Undef = 2 };

constexpr LBool
operator^(LBool b, bool flip)
{
    if (b == LBool::Undef)
        return b;
    return (b == LBool::True) != flip ? LBool::True : LBool::False;
}

} // namespace gpumc::smt::sat

#endif // GPUMC_SMT_SAT_TYPES_HPP
