/**
 * @file
 * A from-scratch CDCL SAT solver: two-watched-literal propagation,
 * first-UIP clause learning, VSIDS decision heuristic with an indexed
 * heap, phase saving, Luby restarts and activity-based learned-clause
 * database reduction.
 *
 * This is the solver behind gpumc's built-in backend; the encoder can
 * alternatively target Z3 (see smt/z3_backend.hpp). Keeping a native
 * solver makes the whole pipeline self-contained and enables the
 * solver-ablation benchmark.
 */

#ifndef GPUMC_SMT_SAT_SOLVER_HPP
#define GPUMC_SMT_SAT_SOLVER_HPP

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "smt/sat/clause_store.hpp"
#include "smt/sat/types.hpp"
#include "support/stats.hpp"

namespace gpumc::smt::sat {

/** Aggregate solving statistics. */
struct SolverStats {
    uint64_t decisions = 0;
    uint64_t propagations = 0;
    uint64_t conflicts = 0;
    uint64_t restarts = 0;
    uint64_t learnedClauses = 0;
    uint64_t removedClauses = 0;
};

/** Clause-sharing statistics of one solver (see attachStore). */
struct ShareStats {
    /** Clauses published to attached stores. */
    uint64_t exported = 0;
    /** Foreign clauses attached (or enqueued as units) after import
     *  re-validation. */
    uint64_t imported = 0;
    /** Clauses dropped by the export filter (LBD/size/var-watermark)
     *  or by import re-validation (unknown variable, root-satisfied). */
    uint64_t rejected = 0;
};

class Solver {
  public:
    Solver();
    ~Solver();

    Solver(const Solver &) = delete;
    Solver &operator=(const Solver &) = delete;

    /** Create a fresh variable and return its index. */
    Var newVar();

    int numVars() const { return static_cast<int>(assigns_.size()); }

    /**
     * Add a clause. Returns false if the solver becomes trivially
     * unsatisfiable (empty clause, or a root-level conflict).
     */
    bool addClause(std::vector<Lit> lits);

    enum class Status { Sat, Unsat, Unknown };

    /**
     * Solve under the given assumptions.
     * @retval true satisfiable; the model is queryable via modelValue.
     * @retval false unsatisfiable under the assumptions.
     */
    bool solve(const std::vector<Lit> &assumptions = {});

    /**
     * Like solve(), but respects the wall-clock limit set with
     * setTimeLimitMs and reports Unknown when it is exhausted.
     */
    Status solveLimited(const std::vector<Lit> &assumptions = {});

    /** Wall-clock budget per solveLimited call; 0 disables. */
    void setTimeLimitMs(int64_t ms) { timeLimitMs_ = ms; }

    /**
     * Cooperative cancellation from another thread: the flag is polled
     * (relaxed loads) at the same amortized points as the deadline —
     * in propagate(), at conflict boundaries in search() and at the
     * top of the restart loop — but unlike the deadline it is checked
     * even when no time limit is armed. An interrupted solveLimited()
     * returns Unknown; learned clauses and activities survive exactly
     * as they do across a timeout. The flag stays raised until
     * clearInterrupt(), so an interrupt that wins a race with solve
     * entry still cancels that solve.
     */
    void interrupt() { interrupted_.store(true, std::memory_order_relaxed); }

    /** Withdraw a pending interrupt(). */
    void clearInterrupt()
    {
        interrupted_.store(false, std::memory_order_relaxed);
    }

    /**
     * The @p n unassigned (at the root level) variables with the
     * highest VSIDS activity — ties broken by variable index, so the
     * result is deterministic. Used by cube-and-conquer to pick split
     * variables; earlier queries on the same solver warm the scores.
     */
    std::vector<Var> topActivityVars(int n) const;

    /**
     * Attach a shared clause store. Learned clauses passing the
     * store's export filter (LBD and size thresholds) are published;
     * foreign clauses are imported at restart boundaries, re-validated
     * against the root-level trail (root-satisfied clauses are
     * skipped, root-false literals dropped, units enqueued, an empty
     * remainder is a root conflict).
     *
     * @p varLimit is the sharing watermark: when >= 0, only clauses
     * whose variables are all < varLimit are exported. Callers sharing
     * across solvers with *identical* clause databases (cube workers)
     * pass -1; callers sharing across sessions that only agree on a
     * structural prefix must pass the variable count of that prefix,
     * so clauses over later vars (activation literals, property gates
     * — which mean different things per session) never travel.
     *
     * Multiple stores may be attached; each keeps its own cursor.
     * Sharing never changes verdicts, but does make the search path —
     * and therefore witnesses and statistics — dependent on timing.
     */
    void attachStore(std::shared_ptr<ClauseStore> store, Var varLimit = -1);

    const ShareStats &shareStats() const { return shareStats_; }

    /** Value of a literal in the last model (solve() returned true). */
    LBool modelValue(Lit l) const;

    const SolverStats &stats() const { return stats_; }

    /** True if addClause has already derived root-level unsatisfiability. */
    bool inConflict() const { return !ok_; }

  private:
    struct Clause {
        double activity = 0.0;
        bool learnt = false;
        std::vector<Lit> lits;
    };

    struct Watcher {
        Clause *clause = nullptr;
        Lit blocker;
    };

    // --- internal machinery -------------------------------------------
    LBool value(Lit l) const
    {
        return assigns_[l.var()] ^ l.sign();
    }
    LBool value(Var v) const { return assigns_[v]; }

    int decisionLevel() const
    {
        return static_cast<int>(trailLim_.size());
    }

    void attachClause(Clause *c);
    void detachClause(Clause *c);
    bool enqueue(Lit l, Clause *reason);
    Clause *propagate();
    void analyze(Clause *conflict, std::vector<Lit> &outLearnt,
                 int &outBtLevel);
    void cancelUntil(int level);
    Lit pickBranchLit();
    void varBumpActivity(Var v);
    void varDecayActivity();
    void claBumpActivity(Clause *c);
    void claDecayActivity();
    void reduceDB();
    bool search(int64_t conflictBudget, const std::vector<Lit> &assumptions,
                bool &doneOut);

    // --- clause sharing -------------------------------------------------
    int computeLbd(const std::vector<Lit> &lits) const;
    void exportLearnt(const std::vector<Lit> &lits);
    /** Import foreign clauses at a restart boundary (level 0).
     *  Returns false on a root-level conflict (ok_ already false). */
    bool importShared();

    // --- heap for VSIDS ------------------------------------------------
    void heapInsert(Var v);
    void heapUpdate(Var v);
    Var heapPop();
    bool heapEmpty() const { return heap_.empty(); }
    void heapPercolateUp(int i);
    void heapPercolateDown(int i);
    bool heapLess(Var a, Var b) const
    {
        return activity_[a] > activity_[b];
    }

    // --- state ----------------------------------------------------------
    bool ok_ = true;
    std::vector<LBool> assigns_;
    std::vector<bool> polarity_; // saved phases
    std::vector<int> level_;
    std::vector<Clause *> reason_;
    std::vector<Lit> trail_;
    std::vector<int> trailLim_;
    size_t qhead_ = 0;

    std::vector<std::vector<Watcher>> watches_; // indexed by Lit::index()
    std::vector<std::unique_ptr<Clause>> clauses_;
    std::vector<std::unique_ptr<Clause>> learnts_;

    std::vector<double> activity_;
    double varInc_ = 1.0;
    double claInc_ = 1.0;

    std::vector<int> heap_;      // heap of vars
    std::vector<int> heapIndex_; // var -> position in heap_, or -1

    std::vector<uint8_t> seen_;
    std::vector<LBool> model_;

    int64_t timeLimitMs_ = 0;
    /**
     * The one wall-clock deadline of the current solveLimited() call.
     * Armed once per solve from timeLimitMs_ and consulted by the
     * restart loop, the conflict loop *and* long propagation runs —
     * previously the outer and inner loops each computed their own
     * local deadline and only checked it at conflict boundaries, so a
     * conflict-free propagation-heavy search could overshoot its
     * budget arbitrarily.
     */
    Deadline deadline_;
    bool timedOut_ = false;
    /** Cross-thread cancellation request; see interrupt(). */
    std::atomic<bool> interrupted_{false};

    /** One shared-store attachment; see attachStore(). */
    struct StoreAttachment {
        std::shared_ptr<ClauseStore> store;
        int source = -1;
        Var varLimit = -1; // exported vars must be < this; -1 = any
        uint64_t cursor = 0;
    };
    std::vector<StoreAttachment> stores_;
    /** Scratch buffer for fetch() batches (kept to reuse capacity). */
    std::vector<std::vector<Lit>> importBuf_;
    ShareStats shareStats_;

    SolverStats stats_;
};

} // namespace gpumc::smt::sat

#endif // GPUMC_SMT_SAT_SOLVER_HPP
