#include "smt/sat/solver.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "support/diagnostics.hpp"

namespace gpumc::smt::sat {

namespace {

/** Finite-state Luby sequence generator (Knuth's formulation). */
double
luby(double y, int x)
{
    int size, seq;
    for (size = 1, seq = 0; size < x + 1; seq++, size = 2 * size + 1) {}
    while (size - 1 != x) {
        size = (size - 1) >> 1;
        seq--;
        x = x % size;
    }
    return std::pow(y, seq);
}

constexpr double kVarDecay = 0.95;
constexpr double kClaDecay = 0.999;
constexpr double kRescaleLimit = 1e100;

} // namespace

Solver::Solver() = default;
Solver::~Solver() = default;

Var
Solver::newVar()
{
    Var v = static_cast<Var>(assigns_.size());
    assigns_.push_back(LBool::Undef);
    polarity_.push_back(true); // default phase: false (sign = true)
    level_.push_back(0);
    reason_.push_back(nullptr);
    activity_.push_back(0.0);
    seen_.push_back(0);
    heapIndex_.push_back(-1);
    watches_.emplace_back();
    watches_.emplace_back();
    heapInsert(v);
    return v;
}

bool
Solver::addClause(std::vector<Lit> lits)
{
    GPUMC_ASSERT(decisionLevel() == 0, "clauses must be added at level 0");
    if (!ok_)
        return false;

    // Normalize: sort, remove duplicates, detect tautologies, drop
    // root-level false literals, and succeed early on true literals.
    std::sort(lits.begin(), lits.end());
    std::vector<Lit> out;
    Lit prev = kUndefLit;
    for (Lit l : lits) {
        GPUMC_ASSERT(l.var() >= 0 && l.var() < numVars(),
                     "literal references unknown variable");
        if (value(l) == LBool::True || l == ~prev)
            return true; // satisfied or tautological
        if (value(l) != LBool::False && l != prev)
            out.push_back(l);
        prev = l;
    }

    if (out.empty()) {
        ok_ = false;
        return false;
    }
    if (out.size() == 1) {
        if (!enqueue(out[0], nullptr)) {
            ok_ = false;
            return false;
        }
        ok_ = (propagate() == nullptr);
        return ok_;
    }

    auto clause = std::make_unique<Clause>();
    clause->lits = std::move(out);
    attachClause(clause.get());
    clauses_.push_back(std::move(clause));
    return true;
}

void
Solver::attachClause(Clause *c)
{
    GPUMC_ASSERT(c->lits.size() >= 2);
    watches_[(~c->lits[0]).index()].push_back({c, c->lits[1]});
    watches_[(~c->lits[1]).index()].push_back({c, c->lits[0]});
}

void
Solver::detachClause(Clause *c)
{
    for (Lit w : {c->lits[0], c->lits[1]}) {
        auto &ws = watches_[(~w).index()];
        for (size_t i = 0; i < ws.size(); ++i) {
            if (ws[i].clause == c) {
                ws[i] = ws.back();
                ws.pop_back();
                break;
            }
        }
    }
}

bool
Solver::enqueue(Lit l, Clause *reason)
{
    if (value(l) != LBool::Undef)
        return value(l) == LBool::True;
    assigns_[l.var()] = l.sign() ? LBool::False : LBool::True;
    level_[l.var()] = decisionLevel();
    reason_[l.var()] = reason;
    trail_.push_back(l);
    return true;
}

Solver::Clause *
Solver::propagate()
{
    while (qhead_ < trail_.size()) {
        // Long propagation runs must honour the solve deadline and
        // cross-thread interrupts too: check between literal
        // propagations (a safe point — the watcher lists are
        // consistent), cheaply amortized. The interrupt flag is polled
        // even when no time limit is armed — portfolio racing cancels
        // unlimited solves. Breaking here leaves qhead_ <
        // trail_.size(); propagation simply resumes from the queue if
        // the solver is used again.
        if ((stats_.propagations & 2047) == 0 &&
            (interrupted_.load(std::memory_order_relaxed) ||
             (deadline_.limited() && deadline_.expired()))) {
            timedOut_ = true;
            return nullptr;
        }
        Lit p = trail_[qhead_++];
        stats_.propagations++;
        auto &ws = watches_[p.index()];
        size_t i = 0, j = 0;
        while (i < ws.size()) {
            Watcher w = ws[i];
            if (value(w.blocker) == LBool::True) {
                ws[j++] = ws[i++];
                continue;
            }
            Clause *c = w.clause;
            auto &lits = c->lits;
            // Make sure the false literal is lits[1].
            Lit falseLit = ~p;
            if (lits[0] == falseLit)
                std::swap(lits[0], lits[1]);
            GPUMC_ASSERT(lits[1] == falseLit);
            ++i;

            Lit first = lits[0];
            if (first != w.blocker && value(first) == LBool::True) {
                ws[j++] = {c, first};
                continue;
            }

            // Look for a new literal to watch.
            bool foundWatch = false;
            for (size_t k = 2; k < lits.size(); ++k) {
                if (value(lits[k]) != LBool::False) {
                    std::swap(lits[1], lits[k]);
                    watches_[(~lits[1]).index()].push_back({c, first});
                    foundWatch = true;
                    break;
                }
            }
            if (foundWatch)
                continue;

            // Clause is unit or conflicting.
            ws[j++] = {c, first};
            if (value(first) == LBool::False) {
                // Conflict: copy remaining watchers and bail out.
                while (i < ws.size())
                    ws[j++] = ws[i++];
                ws.resize(j);
                qhead_ = trail_.size();
                return c;
            }
            enqueue(first, c);
        }
        ws.resize(j);
    }
    return nullptr;
}

void
Solver::analyze(Clause *conflict, std::vector<Lit> &outLearnt, int &outBtLevel)
{
    outLearnt.clear();
    outLearnt.push_back(kUndefLit); // slot for the asserting literal

    int pathCount = 0;
    Lit p = kUndefLit;
    size_t index = trail_.size();

    Clause *reason = conflict;
    do {
        GPUMC_ASSERT(reason != nullptr, "no reason during conflict analysis");
        if (reason->learnt)
            claBumpActivity(reason);
        size_t start = (p == kUndefLit) ? 0 : 1;
        for (size_t k = start; k < reason->lits.size(); ++k) {
            Lit q = reason->lits[k];
            Var v = q.var();
            if (!seen_[v] && level_[v] > 0) {
                seen_[v] = 1;
                varBumpActivity(v);
                if (level_[v] >= decisionLevel())
                    pathCount++;
                else
                    outLearnt.push_back(q);
            }
        }
        // Select the next literal on the trail to resolve on.
        while (!seen_[trail_[index - 1].var()])
            index--;
        p = trail_[--index];
        reason = reason_[p.var()];
        seen_[p.var()] = 0;
        pathCount--;
    } while (pathCount > 0);
    outLearnt[0] = ~p;

    // Simple clause minimization: drop literals implied by the rest via
    // their reason clause at the same level set.
    auto redundant = [&](Lit l) {
        Clause *r = reason_[l.var()];
        if (r == nullptr)
            return false;
        for (size_t k = 1; k < r->lits.size(); ++k) {
            Lit q = r->lits[k];
            if (!seen_[q.var()] && level_[q.var()] > 0)
                return false;
        }
        return true;
    };
    // Remember every var of the pre-minimization clause: removed
    // literals must have their seen_ flags cleared too.
    std::vector<Var> marked;
    marked.reserve(outLearnt.size());
    for (Lit l : outLearnt)
        marked.push_back(l.var());

    size_t jj = 1;
    for (size_t ii = 1; ii < outLearnt.size(); ++ii) {
        if (!redundant(outLearnt[ii]))
            outLearnt[jj++] = outLearnt[ii];
    }
    outLearnt.resize(jj);

    // Compute the backtrack level: the second-highest level in the clause.
    if (outLearnt.size() == 1) {
        outBtLevel = 0;
    } else {
        size_t maxIdx = 1;
        for (size_t k = 2; k < outLearnt.size(); ++k) {
            if (level_[outLearnt[k].var()] > level_[outLearnt[maxIdx].var()])
                maxIdx = k;
        }
        std::swap(outLearnt[1], outLearnt[maxIdx]);
        outBtLevel = level_[outLearnt[1].var()];
    }

    for (Var v : marked)
        seen_[v] = 0;
}

void
Solver::cancelUntil(int levelTo)
{
    if (decisionLevel() <= levelTo)
        return;
    int keep = trailLim_[levelTo];
    for (int i = static_cast<int>(trail_.size()) - 1; i >= keep; --i) {
        Var v = trail_[i].var();
        polarity_[v] = trail_[i].sign();
        assigns_[v] = LBool::Undef;
        reason_[v] = nullptr;
        if (heapIndex_[v] < 0)
            heapInsert(v);
    }
    trail_.resize(keep);
    trailLim_.resize(levelTo);
    qhead_ = trail_.size();
}

Lit
Solver::pickBranchLit()
{
    while (!heapEmpty()) {
        Var v = heapPop();
        if (value(v) == LBool::Undef)
            return mkLit(v, polarity_[v]);
    }
    return kUndefLit;
}

void
Solver::varBumpActivity(Var v)
{
    activity_[v] += varInc_;
    if (activity_[v] > kRescaleLimit) {
        for (double &a : activity_)
            a *= 1e-100;
        varInc_ *= 1e-100;
    }
    if (heapIndex_[v] >= 0)
        heapUpdate(v);
}

void
Solver::varDecayActivity()
{
    varInc_ /= kVarDecay;
}

void
Solver::claBumpActivity(Clause *c)
{
    c->activity += claInc_;
    if (c->activity > kRescaleLimit) {
        for (auto &cl : learnts_)
            cl->activity *= 1e-100;
        claInc_ *= 1e-100;
    }
}

void
Solver::claDecayActivity()
{
    claInc_ /= kClaDecay;
}

void
Solver::reduceDB()
{
    auto locked = [&](Clause *c) {
        return reason_[c->lits[0].var()] == c &&
               value(c->lits[0]) == LBool::True;
    };
    std::sort(learnts_.begin(), learnts_.end(),
              [](const auto &a, const auto &b) {
                  return a->activity < b->activity;
              });
    size_t target = learnts_.size() / 2;
    size_t kept = 0;
    std::vector<std::unique_ptr<Clause>> survivors;
    survivors.reserve(learnts_.size());
    for (auto &c : learnts_) {
        bool drop = kept < target && c->lits.size() > 2 && !locked(c.get());
        if (drop) {
            detachClause(c.get());
            stats_.removedClauses++;
            kept++; // counts dropped clauses toward the target
        } else {
            survivors.push_back(std::move(c));
        }
    }
    learnts_ = std::move(survivors);
}

bool
Solver::search(int64_t conflictBudget, const std::vector<Lit> &assumptions,
               bool &doneOut)
{
    doneOut = false;
    int64_t conflictCount = 0;

    while (true) {
        Clause *conflict = propagate();
        if (timedOut_) {
            cancelUntil(0);
            return false; // solveLimited reports Unknown
        }
        if (conflict != nullptr) {
            stats_.conflicts++;
            conflictCount++;
            if (decisionLevel() == 0) {
                doneOut = true;
                ok_ = false;
                return false;
            }
            std::vector<Lit> learnt;
            int btLevel = 0;
            analyze(conflict, learnt, btLevel);
            // Export before backtracking: computeLbd reads the trail
            // levels of the conflict, which cancelUntil erases.
            if (!stores_.empty())
                exportLearnt(learnt);
            cancelUntil(btLevel);
            if (learnt.size() == 1) {
                enqueue(learnt[0], nullptr);
            } else {
                auto clause = std::make_unique<Clause>();
                clause->learnt = true;
                clause->lits = std::move(learnt);
                claBumpActivity(clause.get());
                attachClause(clause.get());
                enqueue(clause->lits[0], clause.get());
                learnts_.push_back(std::move(clause));
                stats_.learnedClauses++;
            }
            varDecayActivity();
            claDecayActivity();
            continue;
        }

        if (conflictBudget >= 0 && conflictCount >= conflictBudget) {
            cancelUntil(0);
            return false; // restart (doneOut stays false)
        }
        // Honour the shared wall-clock deadline and interrupt flag at
        // conflict boundaries as well (propagate() checks them
        // mid-run).
        if ((conflictCount & 63) == 0 &&
            (interrupted_.load(std::memory_order_relaxed) ||
             (deadline_.limited() && deadline_.expired()))) {
            timedOut_ = true;
            cancelUntil(0);
            return false; // solveLimited reports Unknown
        }
        if (learnts_.size() >
            clauses_.size() * 2 + 4000 + 100 * trailLim_.size()) {
            reduceDB();
        }

        // Respect assumptions before free decisions.
        Lit next = kUndefLit;
        while (decisionLevel() < static_cast<int>(assumptions.size())) {
            Lit p = assumptions[decisionLevel()];
            if (value(p) == LBool::True) {
                trailLim_.push_back(static_cast<int>(trail_.size()));
            } else if (value(p) == LBool::False) {
                doneOut = true;
                return false; // UNSAT under assumptions
            } else {
                next = p;
                break;
            }
        }

        if (next == kUndefLit) {
            next = pickBranchLit();
            if (next == kUndefLit) {
                // All variables assigned: model found.
                model_.assign(assigns_.begin(), assigns_.end());
                doneOut = true;
                return true;
            }
            stats_.decisions++;
        }
        trailLim_.push_back(static_cast<int>(trail_.size()));
        enqueue(next, nullptr);
    }
}

bool
Solver::solve(const std::vector<Lit> &assumptions)
{
    int64_t saved = timeLimitMs_;
    timeLimitMs_ = 0; // unlimited
    Status status = solveLimited(assumptions);
    timeLimitMs_ = saved;
    GPUMC_ASSERT(status != Status::Unknown);
    return status == Status::Sat;
}

Solver::Status
Solver::solveLimited(const std::vector<Lit> &assumptions)
{
    if (!ok_)
        return Status::Unsat;
    model_.clear();

    // One deadline for the whole call, shared by the restart loop, the
    // conflict loop and propagation (no more per-loop local deadlines).
    deadline_ = Deadline::in(timeLimitMs_);
    timedOut_ = false;
    bool done = false;
    bool result = false;
    int restarts = 0;
    while (!done) {
        if (timedOut_ || interrupted_.load(std::memory_order_relaxed) ||
            deadline_.expired()) {
            cancelUntil(0);
            deadline_ = Deadline(); // never leaks into addClause()
            return Status::Unknown;
        }
        // Restart boundaries are the import points: the trail is at
        // level 0, so foreign clauses can be re-validated against root
        // assignments and attached with both watches unassigned.
        if (!stores_.empty() && !importShared()) {
            cancelUntil(0);
            deadline_ = Deadline();
            return Status::Unsat;
        }
        int64_t budget = static_cast<int64_t>(luby(2.0, restarts) * 100);
        result = search(budget, assumptions, done);
        if (!done && !timedOut_) {
            restarts++;
            stats_.restarts++;
        }
    }
    cancelUntil(0);
    deadline_ = Deadline();
    return result ? Status::Sat : Status::Unsat;
}

void
Solver::attachStore(std::shared_ptr<ClauseStore> store, Var varLimit)
{
    GPUMC_ASSERT(store != nullptr, "attachStore without a store");
    StoreAttachment att;
    att.source = store->registerSource();
    att.store = std::move(store);
    att.varLimit = varLimit;
    stores_.push_back(std::move(att));
}

int
Solver::computeLbd(const std::vector<Lit> &lits) const
{
    // Literal block distance: distinct decision levels in the clause.
    // Export candidates are small (the size filter runs first), so the
    // quadratic distinct-count stays cheap.
    int lbd = 0;
    for (size_t i = 0; i < lits.size(); ++i) {
        int li = level_[lits[i].var()];
        bool dup = false;
        for (size_t j = 0; j < i; ++j) {
            if (level_[lits[j].var()] == li) {
                dup = true;
                break;
            }
        }
        if (!dup)
            lbd++;
    }
    return lbd;
}

void
Solver::exportLearnt(const std::vector<Lit> &lits)
{
    int lbd = -1;
    for (StoreAttachment &att : stores_) {
        if (lits.size() > att.store->maxSize()) {
            shareStats_.rejected++;
            continue;
        }
        if (lbd < 0)
            lbd = computeLbd(lits);
        if (lbd > att.store->maxLbd()) {
            shareStats_.rejected++;
            continue;
        }
        if (att.varLimit >= 0) {
            // The sharing watermark: clauses over variables allocated
            // after the shared structural prefix (activation literals,
            // property gates) are meaningless — and unsound — in other
            // sessions, so they never leave this solver.
            bool outOfRange = false;
            for (Lit l : lits) {
                if (l.var() >= att.varLimit) {
                    outOfRange = true;
                    break;
                }
            }
            if (outOfRange) {
                shareStats_.rejected++;
                continue;
            }
        }
        att.store->publish(att.source, lits);
        shareStats_.exported++;
    }
}

bool
Solver::importShared()
{
    GPUMC_ASSERT(decisionLevel() == 0,
                 "clause import outside a restart boundary");
    std::vector<Lit> pruned;
    for (StoreAttachment &att : stores_) {
        importBuf_.clear();
        att.store->fetch(att.source, att.cursor, importBuf_);
        for (const std::vector<Lit> &lits : importBuf_) {
            // Re-validate against the importing solver's root trail.
            bool drop = false;
            pruned.clear();
            for (Lit l : lits) {
                if (l.var() < 0 || l.var() >= numVars()) {
                    drop = true; // publisher knew more variables
                    break;
                }
                LBool v = value(l);
                if (v == LBool::True) {
                    drop = true; // root-satisfied: nothing to learn
                    break;
                }
                if (v == LBool::Undef)
                    pruned.push_back(l);
                // Root-false literals are dropped: the remainder is
                // still implied (the clause minus literals false at
                // level 0 of a shared database).
            }
            if (drop) {
                shareStats_.rejected++;
                continue;
            }
            if (pruned.empty()) {
                // Every literal is root-false: the shared database is
                // unsatisfiable at the root.
                ok_ = false;
                shareStats_.imported++;
                return false;
            }
            if (pruned.size() == 1) {
                shareStats_.imported++;
                if (!enqueue(pruned[0], nullptr) ||
                    propagate() != nullptr) {
                    ok_ = false;
                    return false;
                }
                continue;
            }
            auto clause = std::make_unique<Clause>();
            clause->learnt = true;
            clause->lits = pruned;
            // A fresh import deserves a fighting chance in reduceDB.
            claBumpActivity(clause.get());
            attachClause(clause.get());
            learnts_.push_back(std::move(clause));
            shareStats_.imported++;
        }
    }
    return ok_;
}

std::vector<Var>
Solver::topActivityVars(int n) const
{
    std::vector<Var> vars;
    for (Var v = 0; v < numVars(); ++v) {
        if (assigns_[v] == LBool::Undef)
            vars.push_back(v);
    }
    std::sort(vars.begin(), vars.end(), [this](Var a, Var b) {
        if (activity_[a] != activity_[b])
            return activity_[a] > activity_[b];
        return a < b;
    });
    if (n >= 0 && vars.size() > static_cast<size_t>(n))
        vars.resize(static_cast<size_t>(n));
    return vars;
}

LBool
Solver::modelValue(Lit l) const
{
    if (l.var() < 0 || l.var() >= static_cast<int>(model_.size()))
        return LBool::Undef;
    return model_[l.var()] ^ l.sign();
}

// --- indexed binary max-heap on variable activity -----------------------

void
Solver::heapInsert(Var v)
{
    GPUMC_ASSERT(heapIndex_[v] < 0);
    heapIndex_[v] = static_cast<int>(heap_.size());
    heap_.push_back(v);
    heapPercolateUp(heapIndex_[v]);
}

void
Solver::heapUpdate(Var v)
{
    GPUMC_ASSERT(heapIndex_[v] >= 0);
    heapPercolateUp(heapIndex_[v]);
}

Var
Solver::heapPop()
{
    GPUMC_ASSERT(!heap_.empty());
    Var top = heap_[0];
    heapIndex_[top] = -1;
    if (heap_.size() > 1) {
        heap_[0] = heap_.back();
        heapIndex_[heap_[0]] = 0;
        heap_.pop_back();
        heapPercolateDown(0);
    } else {
        heap_.pop_back();
    }
    return top;
}

void
Solver::heapPercolateUp(int i)
{
    Var v = heap_[i];
    while (i > 0) {
        int parent = (i - 1) >> 1;
        if (!heapLess(v, heap_[parent]))
            break;
        heap_[i] = heap_[parent];
        heapIndex_[heap_[i]] = i;
        i = parent;
    }
    heap_[i] = v;
    heapIndex_[v] = i;
}

void
Solver::heapPercolateDown(int i)
{
    Var v = heap_[i];
    int n = static_cast<int>(heap_.size());
    while (true) {
        int child = 2 * i + 1;
        if (child >= n)
            break;
        if (child + 1 < n && heapLess(heap_[child + 1], heap_[child]))
            child++;
        if (!heapLess(heap_[child], v))
            break;
        heap_[i] = heap_[child];
        heapIndex_[heap_[i]] = i;
        i = child;
    }
    heap_[i] = v;
    heapIndex_[v] = i;
}

} // namespace gpumc::smt::sat
