/**
 * @file
 * Shared store of learned clauses for cross-solver clause sharing.
 *
 * A ClauseStore is an append-only, capacity-bounded sequence of
 * learned clauses published by attached solvers (see
 * Solver::attachStore). Publishing and fetching are both batched and
 * guarded by a single mutex — solvers only touch the store at learn
 * time (after passing the export filter) and at restart boundaries,
 * so the lock is far off the propagation hot path.
 *
 * Entries carry the id of the publishing source so a solver never
 * re-imports its own clauses. Eviction is FIFO: when the store is
 * full the oldest clause is dropped and the global base index
 * advances; a reader whose cursor points into the evicted range
 * simply skips it (sharing is an optimization — losing old clauses
 * never affects soundness).
 *
 * Soundness contract (enforced by the *solvers*, not the store): a
 * published clause must be a logical consequence of the clause
 * database shared by every attached solver. Within one backend
 * (cube-and-conquer workers, the main solver) the databases are
 * identical, so every learned clause qualifies. Across sessions of
 * one core::SessionKey only the structural prefix is shared, so
 * attachments carry a variable watermark: clauses mentioning any
 * variable allocated after the structural encode (activation
 * literals, property-specific Tseitin gates) are rejected at export —
 * those variables mean different things in different sessions, and a
 * foreign activation literal could silently retire another query's
 * constraint group (see docs/DESIGN.md, "Clause sharing").
 */

#ifndef GPUMC_SMT_SAT_CLAUSE_STORE_HPP
#define GPUMC_SMT_SAT_CLAUSE_STORE_HPP

#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "smt/sat/types.hpp"

namespace gpumc::smt::sat {

class ClauseStore {
  public:
    struct Config {
        /** Clauses retained; the oldest is evicted beyond this. */
        size_t capacity = 8192;
        /** Export filter: maximum literal-block distance. */
        int maxLbd = 8;
        /** Export filter: maximum clause size (literal count). */
        size_t maxSize = 32;
    };

    ClauseStore();
    explicit ClauseStore(Config config) : config_(config) {}

    ClauseStore(const ClauseStore &) = delete;
    ClauseStore &operator=(const ClauseStore &) = delete;

    /** Unique id for one publishing/consuming solver attachment. */
    int registerSource();

    int maxLbd() const { return config_.maxLbd; }
    size_t maxSize() const { return config_.maxSize; }
    size_t capacity() const { return config_.capacity; }

    /** Append a clause published by @p source (already filtered). */
    void publish(int source, const std::vector<Lit> &lits);

    /**
     * Append every clause published after @p cursor by sources other
     * than @p source to @p out, and advance the cursor past the end of
     * the store. Clauses evicted since the last fetch are skipped.
     * Returns the number of clauses appended.
     */
    size_t fetch(int source, uint64_t &cursor,
                 std::vector<std::vector<Lit>> &out) const;

    /** Clauses currently held. */
    size_t size() const;

    struct Counters {
        int64_t published = 0;
        int64_t evicted = 0;
    };
    Counters counters() const;

  private:
    struct Entry {
        std::vector<Lit> lits;
        int source = -1;
    };

    const Config config_;
    mutable std::mutex mutex_;
    std::deque<Entry> entries_;
    /** Global index of entries_.front(); grows with each eviction. */
    uint64_t begin_ = 0;
    int nextSource_ = 0;
    int64_t published_ = 0;
    int64_t evicted_ = 0;
};

} // namespace gpumc::smt::sat

#endif // GPUMC_SMT_SAT_CLAUSE_STORE_HPP
