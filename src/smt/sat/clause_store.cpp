#include "smt/sat/clause_store.hpp"

namespace gpumc::smt::sat {

ClauseStore::ClauseStore() : ClauseStore(Config()) {}

int
ClauseStore::registerSource()
{
    std::lock_guard<std::mutex> lock(mutex_);
    return nextSource_++;
}

void
ClauseStore::publish(int source, const std::vector<Lit> &lits)
{
    if (config_.capacity == 0)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.push_back(Entry{lits, source});
    published_++;
    if (entries_.size() > config_.capacity) {
        entries_.pop_front();
        begin_++;
        evicted_++;
    }
}

size_t
ClauseStore::fetch(int source, uint64_t &cursor,
                   std::vector<std::vector<Lit>> &out) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    // A cursor behind the eviction front skips the lost range: old
    // clauses are gone, which only costs optimization opportunity.
    if (cursor < begin_)
        cursor = begin_;
    size_t appended = 0;
    const uint64_t end = begin_ + entries_.size();
    for (uint64_t i = cursor; i < end; ++i) {
        const Entry &entry = entries_[static_cast<size_t>(i - begin_)];
        if (entry.source == source)
            continue; // never re-import our own clauses
        out.push_back(entry.lits);
        appended++;
    }
    cursor = end;
    return appended;
}

size_t
ClauseStore::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

ClauseStore::Counters
ClauseStore::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Counters c;
    c.published = published_;
    c.evicted = evicted_;
    return c;
}

} // namespace gpumc::smt::sat
