#include "smt/bitvector.hpp"

#include "support/diagnostics.hpp"

namespace gpumc::smt {

BitVec
BitVecBuilder::constant(uint64_t value, int width)
{
    BitVec out;
    out.bits.reserve(width);
    for (int i = 0; i < width; ++i) {
        bool bit = (i < 64) && ((value >> i) & 1);
        out.bits.push_back(bit ? c_.trueLit() : c_.falseLit());
    }
    return out;
}

BitVec
BitVecBuilder::fresh(int width)
{
    BitVec out;
    out.bits.reserve(width);
    for (int i = 0; i < width; ++i)
        out.bits.push_back(c_.freshVar());
    return out;
}

BitVec
BitVecBuilder::add(const BitVec &a, const BitVec &b)
{
    GPUMC_ASSERT(a.width() == b.width(), "bit-vector width mismatch");
    BitVec out;
    out.bits.reserve(a.width());
    Lit carry = c_.falseLit();
    for (int i = 0; i < a.width(); ++i) {
        Lit ai = a.bits[i], bi = b.bits[i];
        Lit sum = c_.mkXor(c_.mkXor(ai, bi), carry);
        Lit nextCarry = c_.mkOr(c_.mkAnd(ai, bi),
                                c_.mkAnd(carry, c_.mkXor(ai, bi)));
        out.bits.push_back(sum);
        carry = nextCarry;
    }
    return out;
}

BitVec
BitVecBuilder::sub(const BitVec &a, const BitVec &b)
{
    // a - b == a + ~b + 1
    GPUMC_ASSERT(a.width() == b.width(), "bit-vector width mismatch");
    BitVec out;
    out.bits.reserve(a.width());
    Lit carry = c_.trueLit();
    for (int i = 0; i < a.width(); ++i) {
        Lit ai = a.bits[i], bi = c_.mkNot(b.bits[i]);
        Lit sum = c_.mkXor(c_.mkXor(ai, bi), carry);
        Lit nextCarry = c_.mkOr(c_.mkAnd(ai, bi),
                                c_.mkAnd(carry, c_.mkXor(ai, bi)));
        out.bits.push_back(sum);
        carry = nextCarry;
    }
    return out;
}

BitVec
BitVecBuilder::ite(Lit cond, const BitVec &t, const BitVec &e)
{
    GPUMC_ASSERT(t.width() == e.width(), "bit-vector width mismatch");
    BitVec out;
    out.bits.reserve(t.width());
    for (int i = 0; i < t.width(); ++i)
        out.bits.push_back(c_.mkIte(cond, t.bits[i], e.bits[i]));
    return out;
}

Lit
BitVecBuilder::eq(const BitVec &a, const BitVec &b)
{
    GPUMC_ASSERT(a.width() == b.width(), "bit-vector width mismatch");
    std::vector<Lit> bits;
    bits.reserve(a.width());
    for (int i = 0; i < a.width(); ++i)
        bits.push_back(c_.mkEquiv(a.bits[i], b.bits[i]));
    return c_.mkAnd(bits);
}

Lit
BitVecBuilder::ult(const BitVec &a, const BitVec &b)
{
    GPUMC_ASSERT(a.width() == b.width(), "bit-vector width mismatch");
    // Ripple comparison from LSB: lt_i = (~a_i & b_i) | (a_i == b_i) & lt_{i-1}
    Lit lt = c_.falseLit();
    for (int i = 0; i < a.width(); ++i) {
        Lit ai = a.bits[i], bi = b.bits[i];
        Lit here = c_.mkAnd(c_.mkNot(ai), bi);
        Lit same = c_.mkEquiv(ai, bi);
        lt = c_.mkOr(here, c_.mkAnd(same, lt));
    }
    return lt;
}

Lit
BitVecBuilder::ule(const BitVec &a, const BitVec &b)
{
    return c_.mkNot(ult(b, a));
}

Lit
BitVecBuilder::eqConst(const BitVec &a, uint64_t value)
{
    std::vector<Lit> bits;
    bits.reserve(a.width());
    for (int i = 0; i < a.width(); ++i) {
        bool bit = (i < 64) && ((value >> i) & 1);
        bits.push_back(bit ? a.bits[i] : c_.mkNot(a.bits[i]));
    }
    return c_.mkAnd(bits);
}

uint64_t
BitVecBuilder::modelValue(const BitVec &a) const
{
    uint64_t out = 0;
    for (int i = 0; i < a.width() && i < 64; ++i) {
        if (c_.modelTrue(a.bits[i]))
            out |= (uint64_t{1} << i);
    }
    return out;
}

} // namespace gpumc::smt
