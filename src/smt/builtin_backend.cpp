#include "smt/builtin_backend.hpp"

#include <algorithm>

#include "support/diagnostics.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"

namespace gpumc::smt {

BuiltinBackend::BuiltinBackend(const BackendConfig &config)
    : cubeDepth_(config.cubeDepth)
{
    if (config.shareCubes) {
        sat::ClauseStore::Config storeConfig;
        storeConfig.maxLbd = config.shareMaxLbd;
        storeConfig.maxSize = static_cast<size_t>(config.shareMaxSize);
        cubeStore_ = std::make_shared<sat::ClauseStore>(storeConfig);
        solver_.attachStore(cubeStore_);
    }
}

void
BuiltinBackend::attachClauseStore(std::shared_ptr<sat::ClauseStore> store,
                                  int64_t varLimit)
{
    if (!store)
        return;
    sessionStore_ = std::move(store);
    sessionVarLimit_ = static_cast<sat::Var>(varLimit);
    solver_.attachStore(sessionStore_, sessionVarLimit_);
}

void
BuiltinBackend::attachStores(sat::Solver &solver) const
{
    if (cubeStore_)
        solver.attachStore(cubeStore_);
    if (sessionStore_)
        solver.attachStore(sessionStore_, sessionVarLimit_);
}

Lit
BuiltinBackend::newVar()
{
    return solver_.newVar() + 1;
}

void
BuiltinBackend::addClause(const std::vector<Lit> &clause)
{
    std::vector<sat::Lit> lits;
    lits.reserve(clause.size());
    for (Lit l : clause) {
        GPUMC_ASSERT(l != 0, "invalid zero literal");
        lits.push_back(toSat(l));
    }
    numClauses_++;
    if (cubeDepth_ > 0)
        recorded_.push_back(lits); // replayed into per-cube solvers
    if (!solver_.addClause(std::move(lits)))
        unsat_ = true;
}

void
BuiltinBackend::interrupt()
{
    interruptRequested_.store(true, std::memory_order_relaxed);
    solver_.interrupt();
    std::lock_guard<std::mutex> lock(cubeMutex_);
    for (auto &[idx, cubeSolver] : activeCubes_)
        cubeSolver->interrupt();
}

void
BuiltinBackend::clearInterrupt()
{
    interruptRequested_.store(false, std::memory_order_relaxed);
    solver_.clearInterrupt();
}

SolveResult
BuiltinBackend::solve(const std::vector<Lit> &assumptions)
{
    solveCalls_++;
    cubeModel_.reset();
    if (unsat_)
        return SolveResult::Unsat;
    std::vector<sat::Lit> assumps;
    assumps.reserve(assumptions.size());
    for (Lit l : assumptions)
        assumps.push_back(toSat(l));

    if (cubeDepth_ > 0)
        return solveCubes(assumps);
    return solveMain(assumps);
}

SolveResult
BuiltinBackend::solveMain(const std::vector<sat::Lit> &assumps)
{
    trace::Span span("sat-solve");
    const bool traced = trace::Tracer::instance().enabled();
    sat::SolverStats before;
    if (traced)
        before = solver_.stats();

    sat::Solver::Status status = solver_.solveLimited(assumps);

    if (traced) {
        const sat::SolverStats &after = solver_.stats();
        auto delta = [](uint64_t a, uint64_t b) {
            return std::to_string(a - b);
        };
        span.arg("conflicts", delta(after.conflicts, before.conflicts));
        span.arg("decisions", delta(after.decisions, before.decisions));
        span.arg("propagations",
                 delta(after.propagations, before.propagations));
        span.arg("restarts", delta(after.restarts, before.restarts));
        trace::Tracer &tracer = trace::Tracer::instance();
        tracer.counterAdd("sat.queries", 1);
        tracer.counterAdd(
            "sat.conflicts",
            static_cast<int64_t>(after.conflicts - before.conflicts));
        tracer.counterAdd(
            "sat.decisions",
            static_cast<int64_t>(after.decisions - before.decisions));
        tracer.counterAdd("sat.propagations",
                          static_cast<int64_t>(after.propagations -
                                               before.propagations));
        tracer.counterAdd(
            "sat.restarts",
            static_cast<int64_t>(after.restarts - before.restarts));
    }

    switch (status) {
      case sat::Solver::Status::Sat:
        span.arg("result", "sat");
        return SolveResult::Sat;
      case sat::Solver::Status::Unsat:
        span.arg("result", "unsat");
        return SolveResult::Unsat;
      default:
        span.arg("result", "unknown");
        return SolveResult::Unknown;
    }
}

SolveResult
BuiltinBackend::solveCubes(const std::vector<sat::Lit> &assumps)
{
    // Split on the highest-activity unassigned variables; earlier
    // queries on the same incremental session warm the scores. Ties
    // break on variable index, so the cube list is deterministic.
    std::vector<sat::Var> splits =
        solver_.topActivityVars(std::min(cubeDepth_, 16));
    if (splits.empty())
        return solveMain(assumps);
    const int numCubes = 1 << static_cast<int>(splits.size());
    cubeRounds_++;

    trace::Span span("sat-cube-solve");
    span.arg("cubes", std::to_string(numCubes));

    const int varCount = solver_.numVars();
    std::vector<SolveResult> results(
        static_cast<size_t>(numCubes), SolveResult::Unknown);
    std::vector<std::unique_ptr<sat::Solver>> satCube(
        static_cast<size_t>(numCubes));
    // Lowest Sat cube index seen so far; numCubes = none yet. The
    // final winner is the lowest-index cube that completes with Sat,
    // independent of scheduling: a Sat finish only cancels cubes with
    // *higher* indices, so every cube at or below the eventual winner
    // runs to its own (deterministic) verdict.
    std::atomic<int> minSat{numCubes};

    auto runCube = [&](int64_t index) {
        const int cube = static_cast<int>(index);
        if (cube > minSat.load(std::memory_order_relaxed) ||
            interruptRequested_.load(std::memory_order_relaxed)) {
            return; // moot or cancelled; result stays Unknown
        }
        auto solver = std::make_unique<sat::Solver>();
        for (int v = 0; v < varCount; ++v)
            solver->newVar();
        // Attach before the clause replay: units learned by siblings
        // can then already prune the replayed database at import time.
        attachStores(*solver);
        bool consistent = true;
        for (const auto &clause : recorded_) {
            if (!solver->addClause(clause)) {
                consistent = false;
                break;
            }
        }
        if (!consistent) {
            results[static_cast<size_t>(cube)] = SolveResult::Unsat;
            return;
        }
        solver->setTimeLimitMs(timeLimitMs_);
        std::vector<sat::Lit> cubeAssumps = assumps;
        for (size_t bit = 0; bit < splits.size(); ++bit)
            cubeAssumps.push_back(
                sat::mkLit(splits[bit], ((cube >> bit) & 1) != 0));
        {
            std::lock_guard<std::mutex> lock(cubeMutex_);
            activeCubes_.emplace_back(cube, solver.get());
        }
        // Close the race with interrupt(): a request that arrived
        // before registration would otherwise miss this solver.
        if (interruptRequested_.load(std::memory_order_relaxed))
            solver->interrupt();

        sat::Solver::Status status = solver->solveLimited(cubeAssumps);

        {
            std::lock_guard<std::mutex> lock(cubeMutex_);
            activeCubes_.erase(
                std::find_if(activeCubes_.begin(), activeCubes_.end(),
                             [&](const auto &entry) {
                                 return entry.second == solver.get();
                             }));
            const sat::SolverStats &st = solver->stats();
            cubeStats_.decisions += st.decisions;
            cubeStats_.propagations += st.propagations;
            cubeStats_.conflicts += st.conflicts;
            cubeStats_.restarts += st.restarts;
            cubeStats_.learnedClauses += st.learnedClauses;
            cubeStats_.removedClauses += st.removedClauses;
            const sat::ShareStats &sh = solver->shareStats();
            cubeShareStats_.exported += sh.exported;
            cubeShareStats_.imported += sh.imported;
            cubeShareStats_.rejected += sh.rejected;
            cubeSolves_++;
        }
        if (status == sat::Solver::Status::Sat) {
            results[static_cast<size_t>(cube)] = SolveResult::Sat;
            satCube[static_cast<size_t>(cube)] = std::move(solver);
            int current = minSat.load(std::memory_order_relaxed);
            while (cube < current &&
                   !minSat.compare_exchange_weak(current, cube)) {}
            std::lock_guard<std::mutex> lock(cubeMutex_);
            for (auto &[idx, active] : activeCubes_) {
                if (idx > cube)
                    active->interrupt();
            }
        } else if (status == sat::Solver::Status::Unsat) {
            results[static_cast<size_t>(cube)] = SolveResult::Unsat;
        }
    };
    // parallelFor leases helper slots from the shared ThreadBudget and
    // degrades to a sequential sweep when none are free.
    parallelFor(numCubes, static_cast<unsigned>(numCubes), runCube);

    const int winner = minSat.load(std::memory_order_relaxed);
    if (winner < numCubes) {
        cubeModel_ = std::move(satCube[static_cast<size_t>(winner)]);
        span.arg("result", "sat");
        return SolveResult::Sat;
    }
    const bool allUnsat =
        std::all_of(results.begin(), results.end(), [](SolveResult r) {
            return r == SolveResult::Unsat;
        });
    span.arg("result", allUnsat ? "unsat" : "unknown");
    return allUnsat ? SolveResult::Unsat : SolveResult::Unknown;
}

std::map<std::string, int64_t>
BuiltinBackend::statistics() const
{
    const sat::SolverStats &st = solver_.stats();
    auto count = [](uint64_t v) { return static_cast<int64_t>(v); };
    std::map<std::string, int64_t> out{
        {"solveCalls", solveCalls_},
        {"conflicts", count(st.conflicts)},
        {"decisions", count(st.decisions)},
        {"propagations", count(st.propagations)},
        {"restarts", count(st.restarts)},
        {"learnedClauses", count(st.learnedClauses)},
        {"removedClauses", count(st.removedClauses)},
    };
    if (cubeDepth_ > 0) {
        std::lock_guard<std::mutex> lock(cubeMutex_);
        out["cube.rounds"] = cubeRounds_;
        out["cube.solves"] = cubeSolves_;
        out["cube.conflicts"] = count(cubeStats_.conflicts);
        out["cube.decisions"] = count(cubeStats_.decisions);
        out["cube.propagations"] = count(cubeStats_.propagations);
    }
    if (cubeStore_ || sessionStore_) {
        sat::ShareStats share = solver_.shareStats();
        {
            std::lock_guard<std::mutex> lock(cubeMutex_);
            share.exported += cubeShareStats_.exported;
            share.imported += cubeShareStats_.imported;
            share.rejected += cubeShareStats_.rejected;
        }
        out["share.exported"] = count(share.exported);
        out["share.imported"] = count(share.imported);
        out["share.rejected"] = count(share.rejected);
        int64_t storeSize = 0;
        if (cubeStore_)
            storeSize += static_cast<int64_t>(cubeStore_->size());
        if (sessionStore_)
            storeSize += static_cast<int64_t>(sessionStore_->size());
        out["share.storeSize"] = storeSize;
    }
    return out;
}

TruthValue
BuiltinBackend::modelValue(Lit lit) const
{
    // A cube win answers from the cube solver's model; the main
    // solver never saw that Sat assignment.
    const sat::Solver &source = cubeModel_ ? *cubeModel_ : solver_;
    switch (source.modelValue(toSat(lit))) {
      case sat::LBool::True:
        return TruthValue::True;
      case sat::LBool::False:
        return TruthValue::False;
      default:
        return TruthValue::Unknown;
    }
}

} // namespace gpumc::smt
