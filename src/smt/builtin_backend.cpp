#include "smt/builtin_backend.hpp"

#include "support/diagnostics.hpp"

namespace gpumc::smt {

Lit
BuiltinBackend::newVar()
{
    return solver_.newVar() + 1;
}

void
BuiltinBackend::addClause(const std::vector<Lit> &clause)
{
    std::vector<sat::Lit> lits;
    lits.reserve(clause.size());
    for (Lit l : clause) {
        GPUMC_ASSERT(l != 0, "invalid zero literal");
        lits.push_back(toSat(l));
    }
    numClauses_++;
    if (!solver_.addClause(std::move(lits)))
        unsat_ = true;
}

SolveResult
BuiltinBackend::solve(const std::vector<Lit> &assumptions)
{
    solveCalls_++;
    if (unsat_)
        return SolveResult::Unsat;
    std::vector<sat::Lit> assumps;
    assumps.reserve(assumptions.size());
    for (Lit l : assumptions)
        assumps.push_back(toSat(l));
    switch (solver_.solveLimited(assumps)) {
      case sat::Solver::Status::Sat:
        return SolveResult::Sat;
      case sat::Solver::Status::Unsat:
        return SolveResult::Unsat;
      default:
        return SolveResult::Unknown;
    }
}

std::map<std::string, int64_t>
BuiltinBackend::statistics() const
{
    const sat::SolverStats &st = solver_.stats();
    auto count = [](uint64_t v) { return static_cast<int64_t>(v); };
    return {
        {"solveCalls", solveCalls_},
        {"conflicts", count(st.conflicts)},
        {"decisions", count(st.decisions)},
        {"propagations", count(st.propagations)},
        {"restarts", count(st.restarts)},
        {"learnedClauses", count(st.learnedClauses)},
        {"removedClauses", count(st.removedClauses)},
    };
}

TruthValue
BuiltinBackend::modelValue(Lit lit) const
{
    switch (solver_.modelValue(toSat(lit))) {
      case sat::LBool::True:
        return TruthValue::True;
      case sat::LBool::False:
        return TruthValue::False;
      default:
        return TruthValue::Unknown;
    }
}

} // namespace gpumc::smt
