#include "smt/builtin_backend.hpp"

#include "support/diagnostics.hpp"
#include "support/trace.hpp"

namespace gpumc::smt {

Lit
BuiltinBackend::newVar()
{
    return solver_.newVar() + 1;
}

void
BuiltinBackend::addClause(const std::vector<Lit> &clause)
{
    std::vector<sat::Lit> lits;
    lits.reserve(clause.size());
    for (Lit l : clause) {
        GPUMC_ASSERT(l != 0, "invalid zero literal");
        lits.push_back(toSat(l));
    }
    numClauses_++;
    if (!solver_.addClause(std::move(lits)))
        unsat_ = true;
}

SolveResult
BuiltinBackend::solve(const std::vector<Lit> &assumptions)
{
    solveCalls_++;
    if (unsat_)
        return SolveResult::Unsat;
    std::vector<sat::Lit> assumps;
    assumps.reserve(assumptions.size());
    for (Lit l : assumptions)
        assumps.push_back(toSat(l));

    trace::Span span("sat-solve");
    const bool traced = trace::Tracer::instance().enabled();
    sat::SolverStats before;
    if (traced)
        before = solver_.stats();

    sat::Solver::Status status = solver_.solveLimited(assumps);

    if (traced) {
        const sat::SolverStats &after = solver_.stats();
        auto delta = [](uint64_t a, uint64_t b) {
            return std::to_string(a - b);
        };
        span.arg("conflicts", delta(after.conflicts, before.conflicts));
        span.arg("decisions", delta(after.decisions, before.decisions));
        span.arg("propagations",
                 delta(after.propagations, before.propagations));
        span.arg("restarts", delta(after.restarts, before.restarts));
        trace::Tracer &tracer = trace::Tracer::instance();
        tracer.counterAdd("sat.queries", 1);
        tracer.counterAdd(
            "sat.conflicts",
            static_cast<int64_t>(after.conflicts - before.conflicts));
        tracer.counterAdd(
            "sat.decisions",
            static_cast<int64_t>(after.decisions - before.decisions));
        tracer.counterAdd("sat.propagations",
                          static_cast<int64_t>(after.propagations -
                                               before.propagations));
        tracer.counterAdd(
            "sat.restarts",
            static_cast<int64_t>(after.restarts - before.restarts));
    }

    switch (status) {
      case sat::Solver::Status::Sat:
        span.arg("result", "sat");
        return SolveResult::Sat;
      case sat::Solver::Status::Unsat:
        span.arg("result", "unsat");
        return SolveResult::Unsat;
      default:
        span.arg("result", "unknown");
        return SolveResult::Unknown;
    }
}

std::map<std::string, int64_t>
BuiltinBackend::statistics() const
{
    const sat::SolverStats &st = solver_.stats();
    auto count = [](uint64_t v) { return static_cast<int64_t>(v); };
    return {
        {"solveCalls", solveCalls_},
        {"conflicts", count(st.conflicts)},
        {"decisions", count(st.decisions)},
        {"propagations", count(st.propagations)},
        {"restarts", count(st.restarts)},
        {"learnedClauses", count(st.learnedClauses)},
        {"removedClauses", count(st.removedClauses)},
    };
}

TruthValue
BuiltinBackend::modelValue(Lit lit) const
{
    switch (solver_.modelValue(toSat(lit))) {
      case sat::LBool::True:
        return TruthValue::True;
      case sat::LBool::False:
        return TruthValue::False;
      default:
        return TruthValue::Unknown;
    }
}

} // namespace gpumc::smt
