#include "smt/z3_backend.hpp"

#include <z3++.h>

#include "support/diagnostics.hpp"
#include "support/trace.hpp"

namespace gpumc::smt {

struct Z3Backend::Impl {
    z3::context ctx;
    z3::solver solver;
    std::vector<z3::expr> vars;
    std::unique_ptr<z3::model> model;
    int64_t clauseCount = 0;
    int64_t solveCalls = 0;

    Impl() : solver(ctx) {}

    z3::expr literal(Lit l)
    {
        GPUMC_ASSERT(l != 0 && std::abs(l) <= static_cast<Lit>(vars.size()),
                     "unknown literal ", l);
        z3::expr v = vars[std::abs(l) - 1];
        return l > 0 ? v : !v;
    }
};

Z3Backend::Z3Backend() : impl_(std::make_unique<Impl>()) {}

Z3Backend::~Z3Backend() = default;

Lit
Z3Backend::newVar()
{
    int64_t idx = static_cast<int64_t>(impl_->vars.size());
    std::string name = "v" + std::to_string(idx);
    impl_->vars.push_back(impl_->ctx.bool_const(name.c_str()));
    return static_cast<Lit>(idx + 1);
}

void
Z3Backend::addClause(const std::vector<Lit> &clause)
{
    impl_->clauseCount++;
    if (clause.size() == 1) {
        impl_->solver.add(impl_->literal(clause[0]));
        return;
    }
    z3::expr_vector lits(impl_->ctx);
    for (Lit l : clause)
        lits.push_back(impl_->literal(l));
    impl_->solver.add(z3::mk_or(lits));
}

SolveResult
Z3Backend::solve(const std::vector<Lit> &assumptions)
{
    impl_->solveCalls++;
    z3::expr_vector assumps(impl_->ctx);
    for (Lit l : assumptions)
        assumps.push_back(impl_->literal(l));

    trace::Span span("z3-solve");
    const bool traced = trace::Tracer::instance().enabled();
    std::map<std::string, int64_t> before;
    if (traced)
        before = statistics();

    z3::check_result result = impl_->solver.check(assumps);

    if (traced) {
        // Per-query deltas of Z3's native statistics, passed through
        // under the `z3.` counter namespace.
        trace::Tracer &tracer = trace::Tracer::instance();
        tracer.counterAdd("z3.queries", 1);
        for (const auto &[key, value] : statistics()) {
            auto it = before.find(key);
            int64_t base = it == before.end() ? 0 : it->second;
            if (value != base)
                tracer.counterAdd("z3." + key, value - base);
        }
        span.arg("result", result == z3::sat     ? "sat"
                           : result == z3::unsat ? "unsat"
                                                 : "unknown");
    }

    if (result == z3::sat) {
        impl_->model = std::make_unique<z3::model>(impl_->solver.get_model());
        return SolveResult::Sat;
    }
    impl_->model.reset();
    return result == z3::unsat ? SolveResult::Unsat
                               : SolveResult::Unknown;
}

TruthValue
Z3Backend::modelValue(Lit lit) const
{
    if (!impl_->model)
        return TruthValue::Unknown;
    z3::expr value = impl_->model->eval(impl_->literal(lit), true);
    if (value.is_true())
        return TruthValue::True;
    if (value.is_false())
        return TruthValue::False;
    return TruthValue::Unknown;
}

void
Z3Backend::interrupt()
{
    // Z3's native cancellation: flips the context's resource limit so
    // an in-flight check() unwinds and reports unknown. Safe from any
    // thread (that is its documented purpose).
    impl_->ctx.interrupt();
}

void
Z3Backend::clearInterrupt()
{
    // Z3 re-arms its resource limit when the next check() starts, so
    // there is nothing to withdraw here; the portfolio's
    // interrupt-then-reuse test pins this behaviour.
}

void
Z3Backend::setTimeLimitMs(int64_t ms)
{
    // Z3 interprets timeout=0 as "0 ms budget" (every check returns
    // unknown), not "unlimited"; its unlimited default is UINT_MAX.
    // Clamp oversized budgets below UINT_MAX so they stay finite.
    constexpr unsigned kUnlimited = 4294967295u; // UINT_MAX
    unsigned timeout = kUnlimited;
    if (ms > 0) {
        timeout = ms < static_cast<int64_t>(kUnlimited)
                      ? static_cast<unsigned>(ms)
                      : kUnlimited - 1;
    }
    z3::params params(impl_->ctx);
    params.set("timeout", timeout);
    impl_->solver.set(params);
}

int64_t
Z3Backend::numVars() const
{
    return static_cast<int64_t>(impl_->vars.size());
}

int64_t
Z3Backend::numClauses() const
{
    return impl_->clauseCount;
}

std::map<std::string, int64_t>
Z3Backend::statistics() const
{
    std::map<std::string, int64_t> out;
    out["solveCalls"] = impl_->solveCalls;
    z3::stats stats = impl_->solver.statistics();
    for (unsigned i = 0; i < stats.size(); ++i) {
        std::string key = stats.key(i);
        for (char &c : key) {
            if (c == ' ' || c == '-')
                c = '_';
        }
        int64_t value = stats.is_uint(i)
                            ? static_cast<int64_t>(stats.uint_value(i))
                            : static_cast<int64_t>(stats.double_value(i));
        out[key] = value;
    }
    return out;
}

} // namespace gpumc::smt
