/**
 * @file
 * Boolean circuit builder with Tseitin translation into a Backend.
 *
 * All gates are structurally hashed, so re-building the same sub-formula
 * returns the same literal instead of duplicating clauses. Constant
 * literals are folded eagerly.
 */

#ifndef GPUMC_SMT_CIRCUIT_HPP
#define GPUMC_SMT_CIRCUIT_HPP

#include <span>
#include <unordered_map>
#include <vector>

#include "smt/backend.hpp"

namespace gpumc::smt {

class Circuit {
  public:
    explicit Circuit(Backend &backend);

    Backend &backend() { return backend_; }

    /** The constant-true literal. */
    Lit trueLit() const { return trueLit_; }
    /** The constant-false literal. */
    Lit falseLit() const { return -trueLit_; }

    bool isTrue(Lit l) const { return l == trueLit_; }
    bool isFalse(Lit l) const { return l == -trueLit_; }

    /** Fresh unconstrained variable. */
    Lit freshVar() { return backend_.newVar(); }

    Lit mkNot(Lit a) const { return -a; }
    Lit mkAnd(Lit a, Lit b);
    Lit mkOr(Lit a, Lit b);
    Lit mkAnd(std::span<const Lit> lits);
    Lit mkOr(std::span<const Lit> lits);
    Lit mkAnd(std::initializer_list<Lit> lits)
    {
        return mkAnd(std::span<const Lit>(lits.begin(), lits.size()));
    }
    Lit mkOr(std::initializer_list<Lit> lits)
    {
        return mkOr(std::span<const Lit>(lits.begin(), lits.size()));
    }
    Lit mkXor(Lit a, Lit b);
    Lit mkEquiv(Lit a, Lit b) { return mkNot(mkXor(a, b)); }
    Lit mkImplies(Lit a, Lit b) { return mkOr(-a, b); }
    /** if c then t else e. */
    Lit mkIte(Lit c, Lit t, Lit e);

    /** Assert a literal at the top level. */
    void assertLit(Lit l) { backend_.addClause({l}); }
    /** Assert a clause at the top level. */
    void assertClause(const std::vector<Lit> &clause)
    {
        backend_.addClause(clause);
    }
    /** Assert a implies b. */
    void assertImplies(Lit a, Lit b) { backend_.addClause({-a, b}); }

    /** Assert that at most one of the literals is true (pairwise). */
    void assertAtMostOne(std::span<const Lit> lits);
    /** Assert that exactly one of the literals is true. */
    void assertExactlyOne(std::span<const Lit> lits);

    /** Model value of a literal after a Sat solve. */
    bool modelTrue(Lit l) const
    {
        return backend_.modelValue(l) == TruthValue::True;
    }

  private:
    struct PairKey {
        int64_t a, b;
        bool operator==(const PairKey &o) const
        {
            return a == o.a && b == o.b;
        }
    };
    struct PairKeyHash {
        size_t operator()(const PairKey &k) const
        {
            return std::hash<int64_t>()(k.a * 2654435769LL ^ k.b);
        }
    };

    Backend &backend_;
    Lit trueLit_;
    std::unordered_map<PairKey, Lit, PairKeyHash> andCache_;
    std::unordered_map<PairKey, Lit, PairKeyHash> xorCache_;
};

} // namespace gpumc::smt

#endif // GPUMC_SMT_CIRCUIT_HPP
