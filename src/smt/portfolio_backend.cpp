#include "smt/portfolio_backend.hpp"

#include <chrono>
#include <thread>

#include "smt/builtin_backend.hpp"
#include "smt/z3_backend.hpp"
#include "support/diagnostics.hpp"
#include "support/thread_budget.hpp"
#include "support/trace.hpp"

namespace gpumc::smt {

namespace {

std::atomic<int64_t> gTestDelayBuiltinMs{0};
std::atomic<int64_t> gTestDelayZ3Ms{0};

const char *
resultName(SolveResult r)
{
    switch (r) {
      case SolveResult::Sat:
        return "sat";
      case SolveResult::Unsat:
        return "unsat";
      default:
        return "unknown";
    }
}

} // namespace

void
PortfolioBackend::setTestDelays(int64_t builtinMs, int64_t z3Ms)
{
    gTestDelayBuiltinMs.store(builtinMs, std::memory_order_relaxed);
    gTestDelayZ3Ms.store(z3Ms, std::memory_order_relaxed);
}

PortfolioBackend::PortfolioBackend(const BackendConfig &config)
    : builtin_(std::make_unique<BuiltinBackend>(config)),
      z3_(std::make_unique<Z3Backend>())
{}

PortfolioBackend::~PortfolioBackend() = default;

Lit
PortfolioBackend::newVar()
{
    Lit a = builtin_->newVar();
    Lit b = z3_->newVar();
    GPUMC_ASSERT(a == b, "portfolio lanes disagree on variable numbering");
    return a;
}

Lit
PortfolioBackend::mkActivationLit()
{
    Lit a = builtin_->mkActivationLit();
    Lit b = z3_->mkActivationLit();
    GPUMC_ASSERT(a == b, "portfolio lanes disagree on activation literals");
    return a;
}

void
PortfolioBackend::addClause(const std::vector<Lit> &clause)
{
    builtin_->addClause(clause);
    z3_->addClause(clause);
}

void
PortfolioBackend::setTimeLimitMs(int64_t ms)
{
    builtin_->setTimeLimitMs(ms);
    z3_->setTimeLimitMs(ms);
}

void
PortfolioBackend::interrupt()
{
    builtin_->interrupt();
    z3_->interrupt();
}

void
PortfolioBackend::clearInterrupt()
{
    builtin_->clearInterrupt();
    z3_->clearInterrupt();
}

SolveResult
PortfolioBackend::solve(const std::vector<Lit> &assumptions)
{
    solveCalls_++;

    // Every solve starts with clean lanes: an interrupt() raised while
    // no query was in flight (a cancelled deadline, a prior race whose
    // loser never got to clear) must not leak into this query and turn
    // a decidable result into a spurious Unknown. This matters most on
    // the budget-starved sequential path below, which used to solve on
    // the builtin lane with whatever interrupt flag was left behind.
    builtin_->clearInterrupt();
    z3_->clearInterrupt();

    // One helper slot carries the Z3 lane; the builtin lane runs on
    // the calling thread. With no slot free (the batch layer already
    // saturated --jobs) solve sequentially on the builtin lane — the
    // verdict is the same either way, only slower.
    ThreadBudget::Lease lease(1);
    if (lease.granted() == 0) {
        sequentialSolves_++;
        winner_ = kBuiltin;
        return builtin_->solve(assumptions);
    }

    races_++;
    if (!pool_)
        pool_ = std::make_unique<ThreadPool>(1);

    std::atomic<int> first{-1};
    SolveResult results[2] = {SolveResult::Unknown, SolveResult::Unknown};

    auto runLane = [&](int self) {
        trace::Span span("portfolio-lane");
        Backend &mine = lane(self);
        Backend &other = lane(1 - self);
        span.arg("backend", mine.name());
        int64_t delay =
            (self == kBuiltin ? gTestDelayBuiltinMs : gTestDelayZ3Ms)
                .load(std::memory_order_relaxed);
        if (delay > 0)
            std::this_thread::sleep_for(std::chrono::milliseconds(delay));
        SolveResult result = mine.solve(assumptions);
        results[self] = result;
        if (result != SolveResult::Unknown) {
            int expected = -1;
            if (first.compare_exchange_strong(expected, self)) {
                interruptsIssued_.fetch_add(1, std::memory_order_relaxed);
                other.interrupt();
            }
        }
        span.arg("result", resultName(result));
    };

    pool_->submit([&] { runLane(kZ3); });
    runLane(kBuiltin);
    pool_->wait();

    // Withdraw the loser's pending interrupt so the next query (the
    // sessions are incremental) runs cleanly on both lanes.
    builtin_->clearInterrupt();
    z3_->clearInterrupt();

    int winner = first.load(std::memory_order_relaxed);
    if (winner < 0) {
        // Both lanes exhausted their budget (or were interrupted from
        // outside): genuinely Unknown.
        winner_ = kBuiltin;
        return SolveResult::Unknown;
    }
    winner_ = winner;
    (winner == kBuiltin ? winsBuiltin_ : winsZ3_)++;

    trace::Tracer &tracer = trace::Tracer::instance();
    if (tracer.enabled()) {
        tracer.instant("portfolio.winner",
                       {{"backend", lane(winner).name()},
                        {"result", resultName(results[winner])}});
        tracer.counterAdd("portfolio.races", 1);
        tracer.counterAdd(winner == kBuiltin ? "portfolio.winsBuiltin"
                                             : "portfolio.winsZ3",
                          1);
    }
    return results[winner];
}

void
PortfolioBackend::attachClauseStore(std::shared_ptr<sat::ClauseStore> store,
                                    int64_t varLimit)
{
    builtin_->attachClauseStore(std::move(store), varLimit);
}

TruthValue
PortfolioBackend::modelValue(Lit lit) const
{
    return lane(winner_).modelValue(lit);
}

int64_t
PortfolioBackend::numVars() const
{
    return builtin_->numVars();
}

int64_t
PortfolioBackend::numClauses() const
{
    return builtin_->numClauses();
}

std::map<std::string, int64_t>
PortfolioBackend::statistics() const
{
    // Everything except solveCalls lives under a portfolio.* prefix so
    // the verifier's per-result deltas (exported as solver.<key>) land
    // on keys distinct from any single backend's — a cancelled lane's
    // counters never masquerade as the winner's.
    std::map<std::string, int64_t> out;
    out["solveCalls"] = solveCalls_;
    out["portfolio.races"] = races_;
    out["portfolio.sequentialSolves"] = sequentialSolves_;
    out["portfolio.winsBuiltin"] = winsBuiltin_;
    out["portfolio.winsZ3"] = winsZ3_;
    out["portfolio.interrupts"] =
        interruptsIssued_.load(std::memory_order_relaxed);
    for (const auto &[key, value] : builtin_->statistics()) {
        // share.* keys keep their canonical location (solver.share.* in
        // verifier exports) — sharing happens on the builtin lane but
        // describes a portfolio-wide resource.
        if (key.rfind("share.", 0) == 0)
            out[key] = value;
        else
            out["portfolio.builtin." + key] = value;
    }
    for (const auto &[key, value] : z3_->statistics())
        out["portfolio.z3." + key] = value;
    return out;
}

} // namespace gpumc::smt
