#include "smt/circuit.hpp"

#include <algorithm>

#include "support/diagnostics.hpp"

namespace gpumc::smt {

Circuit::Circuit(Backend &backend) : backend_(backend)
{
    trueLit_ = backend_.newVar();
    backend_.addClause({trueLit_});
}

Lit
Circuit::mkAnd(Lit a, Lit b)
{
    if (isFalse(a) || isFalse(b))
        return falseLit();
    if (isTrue(a))
        return b;
    if (isTrue(b))
        return a;
    if (a == b)
        return a;
    if (a == -b)
        return falseLit();
    if (a > b)
        std::swap(a, b);
    PairKey key{a, b};
    auto it = andCache_.find(key);
    if (it != andCache_.end())
        return it->second;
    Lit out = backend_.newVar();
    backend_.addClause({-out, a});
    backend_.addClause({-out, b});
    backend_.addClause({out, -a, -b});
    andCache_.emplace(key, out);
    return out;
}

Lit
Circuit::mkOr(Lit a, Lit b)
{
    return -mkAnd(-a, -b);
}

Lit
Circuit::mkAnd(std::span<const Lit> lits)
{
    // Fold constants and duplicates first; then build a Tseitin gate with
    // one output variable for the whole conjunction.
    std::vector<Lit> ops;
    ops.reserve(lits.size());
    for (Lit l : lits) {
        if (isFalse(l))
            return falseLit();
        if (isTrue(l))
            continue;
        ops.push_back(l);
    }
    // Sort by variable so complementary literals become adjacent.
    std::sort(ops.begin(), ops.end(), [](Lit x, Lit y) {
        int32_t ax = std::abs(x), ay = std::abs(y);
        return ax != ay ? ax < ay : x < y;
    });
    ops.erase(std::unique(ops.begin(), ops.end()), ops.end());
    for (size_t i = 0; i + 1 < ops.size(); ++i) {
        if (ops[i] == -ops[i + 1])
            return falseLit();
    }
    if (ops.empty())
        return trueLit();
    if (ops.size() == 1)
        return ops[0];
    if (ops.size() == 2)
        return mkAnd(ops[0], ops[1]);

    Lit out = backend_.newVar();
    std::vector<Lit> longClause;
    longClause.reserve(ops.size() + 1);
    longClause.push_back(out);
    for (Lit l : ops) {
        backend_.addClause({-out, l});
        longClause.push_back(-l);
    }
    backend_.addClause(longClause);
    return out;
}

Lit
Circuit::mkOr(std::span<const Lit> lits)
{
    std::vector<Lit> negated;
    negated.reserve(lits.size());
    for (Lit l : lits)
        negated.push_back(-l);
    return -mkAnd(negated);
}

Lit
Circuit::mkXor(Lit a, Lit b)
{
    if (isFalse(a))
        return b;
    if (isFalse(b))
        return a;
    if (isTrue(a))
        return -b;
    if (isTrue(b))
        return -a;
    if (a == b)
        return falseLit();
    if (a == -b)
        return trueLit();
    // Normalize to positive-positive form; XOR is invariant modulo output
    // negation under input negation.
    bool flip = false;
    if (a < 0) {
        a = -a;
        flip = !flip;
    }
    if (b < 0) {
        b = -b;
        flip = !flip;
    }
    if (a > b)
        std::swap(a, b);
    PairKey key{a, b};
    auto it = xorCache_.find(key);
    Lit out;
    if (it != xorCache_.end()) {
        out = it->second;
    } else {
        out = backend_.newVar();
        backend_.addClause({-out, a, b});
        backend_.addClause({-out, -a, -b});
        backend_.addClause({out, -a, b});
        backend_.addClause({out, a, -b});
        xorCache_.emplace(key, out);
    }
    return flip ? -out : out;
}

Lit
Circuit::mkIte(Lit c, Lit t, Lit e)
{
    if (isTrue(c))
        return t;
    if (isFalse(c))
        return e;
    if (t == e)
        return t;
    return mkOr(mkAnd(c, t), mkAnd(-c, e));
}

void
Circuit::assertAtMostOne(std::span<const Lit> lits)
{
    // Pairwise encoding: fine for the small cardinalities (rf candidates
    // per read) that gpumc produces.
    for (size_t i = 0; i < lits.size(); ++i) {
        for (size_t j = i + 1; j < lits.size(); ++j)
            backend_.addClause({-lits[i], -lits[j]});
    }
}

void
Circuit::assertExactlyOne(std::span<const Lit> lits)
{
    GPUMC_ASSERT(!lits.empty(), "exactly-one over empty set");
    assertClause(std::vector<Lit>(lits.begin(), lits.end()));
    assertAtMostOne(lits);
}

} // namespace gpumc::smt
