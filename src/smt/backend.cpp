#include "smt/backend.hpp"

#include <algorithm>

#include "smt/builtin_backend.hpp"
#include "smt/portfolio_backend.hpp"
#include "smt/z3_backend.hpp"

namespace gpumc::smt {

const char *
backendKindName(BackendKind kind)
{
    switch (kind) {
      case BackendKind::Z3:
        return "z3";
      case BackendKind::Builtin:
        return "builtin";
      default:
        return "portfolio";
    }
}

const char *
clauseShareModeName(ClauseShareMode mode)
{
    switch (mode) {
      case ClauseShareMode::Off:
        return "off";
      case ClauseShareMode::Cube:
        return "cube";
      case ClauseShareMode::Session:
        return "session";
      default:
        return "on";
    }
}

bool
parseClauseShareMode(const std::string &text, ClauseShareMode &out)
{
    if (text == "off") {
        out = ClauseShareMode::Off;
    } else if (text == "cube") {
        out = ClauseShareMode::Cube;
    } else if (text == "session") {
        out = ClauseShareMode::Session;
    } else if (text == "on") {
        out = ClauseShareMode::On;
    } else {
        return false;
    }
    return true;
}

std::unique_ptr<Backend>
makeBackend(BackendKind kind, const BackendConfig &config)
{
    if (kind == BackendKind::Z3)
        return std::make_unique<Z3Backend>();
    if (kind == BackendKind::Portfolio)
        return std::make_unique<PortfolioBackend>(config);
    return std::make_unique<BuiltinBackend>(config);
}

bool
armTimeLimit(Backend &backend, const Deadline &deadline)
{
    if (!deadline.limited()) {
        backend.setTimeLimitMs(0);
        return true;
    }
    if (deadline.expired()) {
        // Defence in depth: should the caller solve anyway, the query
        // is capped at 1 ms rather than running without a limit.
        backend.setTimeLimitMs(1);
        return false;
    }
    backend.setTimeLimitMs(std::max<int64_t>(1, deadline.remainingMs()));
    return true;
}

} // namespace gpumc::smt
