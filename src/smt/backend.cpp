#include "smt/backend.hpp"

#include "smt/builtin_backend.hpp"
#include "smt/z3_backend.hpp"

namespace gpumc::smt {

std::unique_ptr<Backend>
makeBackend(BackendKind kind)
{
    if (kind == BackendKind::Z3)
        return std::make_unique<Z3Backend>();
    return std::make_unique<BuiltinBackend>();
}

} // namespace gpumc::smt
