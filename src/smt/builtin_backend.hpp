/**
 * @file
 * Backend adapter over the built-in CDCL solver.
 */

#ifndef GPUMC_SMT_BUILTIN_BACKEND_HPP
#define GPUMC_SMT_BUILTIN_BACKEND_HPP

#include "smt/backend.hpp"
#include "smt/sat/solver.hpp"

namespace gpumc::smt {

class BuiltinBackend : public Backend {
  public:
    Lit newVar() override;
    void addClause(const std::vector<Lit> &clause) override;
    SolveResult solve(const std::vector<Lit> &assumptions) override;
    void setTimeLimitMs(int64_t ms) override
    {
        // Match the interface contract (and the Z3 backend): any value
        // <= 0 disables the limit rather than starving the solver.
        solver_.setTimeLimitMs(ms > 0 ? ms : 0);
    }
    TruthValue modelValue(Lit lit) const override;
    int64_t numVars() const override { return solver_.numVars(); }
    int64_t numClauses() const override { return numClauses_; }
    std::string name() const override { return "builtin-cdcl"; }
    std::map<std::string, int64_t> statistics() const override;

    const sat::SolverStats &stats() const { return solver_.stats(); }

  private:
    static sat::Lit toSat(Lit l)
    {
        return sat::mkLit(std::abs(l) - 1, l < 0);
    }

    sat::Solver solver_;
    int64_t numClauses_ = 0;
    int64_t solveCalls_ = 0;
    bool unsat_ = false;
};

} // namespace gpumc::smt

#endif // GPUMC_SMT_BUILTIN_BACKEND_HPP
