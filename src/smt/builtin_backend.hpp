/**
 * @file
 * Backend adapter over the built-in CDCL solver, with an optional
 * cube-and-conquer mode: when constructed with cubeDepth > 0, each
 * solve() splits on the sign combinations of the highest-activity
 * unassigned variables and farms the cubes through the shared thread
 * budget, first-Sat-wins (lowest cube index, for determinism).
 */

#ifndef GPUMC_SMT_BUILTIN_BACKEND_HPP
#define GPUMC_SMT_BUILTIN_BACKEND_HPP

#include <atomic>
#include <memory>
#include <mutex>
#include <utility>

#include "smt/backend.hpp"
#include "smt/sat/solver.hpp"

namespace gpumc::smt {

class BuiltinBackend : public Backend {
  public:
    explicit BuiltinBackend(const BackendConfig &config = {});

    Lit newVar() override;
    void addClause(const std::vector<Lit> &clause) override;
    SolveResult solve(const std::vector<Lit> &assumptions) override;
    void setTimeLimitMs(int64_t ms) override
    {
        // Match the interface contract (and the Z3 backend): any value
        // <= 0 disables the limit rather than starving the solver.
        timeLimitMs_ = ms > 0 ? ms : 0;
        solver_.setTimeLimitMs(timeLimitMs_);
    }
    void interrupt() override;
    void clearInterrupt() override;
    TruthValue modelValue(Lit lit) const override;
    int64_t numVars() const override { return solver_.numVars(); }
    int64_t numClauses() const override { return numClauses_; }
    std::string name() const override { return "builtin-cdcl"; }
    std::map<std::string, int64_t> statistics() const override;

    void attachClauseStore(std::shared_ptr<sat::ClauseStore> store,
                           int64_t varLimit) override;

    const sat::SolverStats &stats() const { return solver_.stats(); }

  private:
    static sat::Lit toSat(Lit l)
    {
        return sat::mkLit(std::abs(l) - 1, l < 0);
    }

    SolveResult solveMain(const std::vector<sat::Lit> &assumps);
    SolveResult solveCubes(const std::vector<sat::Lit> &assumps);

    sat::Solver solver_;
    int cubeDepth_ = 0;
    int64_t timeLimitMs_ = 0;
    int64_t numClauses_ = 0;
    int64_t solveCalls_ = 0;
    bool unsat_ = false;

    // --- cube-and-conquer state (all idle when cubeDepth_ == 0) ------
    /** Original clauses, replayed into the per-cube solvers. */
    std::vector<std::vector<sat::Lit>> recorded_;
    /** The cube solver whose model answered the last Sat query. */
    std::unique_ptr<sat::Solver> cubeModel_;
    /** In-flight cube solvers, so interrupt() can reach them. */
    std::vector<std::pair<int, sat::Solver *>> activeCubes_;
    mutable std::mutex cubeMutex_;
    std::atomic<bool> interruptRequested_{false};
    sat::SolverStats cubeStats_;
    int64_t cubeSolves_ = 0;
    int64_t cubeRounds_ = 0;

    // --- learned-clause sharing (see sat/clause_store.hpp) -----------
    /** Attach every store this backend holds to @p solver. */
    void attachStores(sat::Solver &solver) const;
    /**
     * Cube-scope store (BackendConfig::shareCubes): main solver and
     * cube workers publish/import with no variable watermark — their
     * clause databases are identical by construction.
     */
    std::shared_ptr<sat::ClauseStore> cubeStore_;
    /**
     * Session-scope store handed in via attachClauseStore(), restricted
     * to the caller's structural variable watermark.
     */
    std::shared_ptr<sat::ClauseStore> sessionStore_;
    sat::Var sessionVarLimit_ = -1;
    /** Share counters of finished cube solvers (under cubeMutex_). */
    sat::ShareStats cubeShareStats_;
};

} // namespace gpumc::smt

#endif // GPUMC_SMT_BUILTIN_BACKEND_HPP
