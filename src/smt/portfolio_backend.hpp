/**
 * @file
 * Portfolio backend: the builtin CDCL solver and Z3 racing on every
 * query with first-wins cancellation.
 *
 * Every newVar/addClause/mkActivationLit is mirrored into both child
 * backends, so their variable numbering stays identical and either one
 * can answer any query. solve() runs the builtin lane on the calling
 * thread and the Z3 lane on a persistent helper thread; the first lane
 * to produce a definitive verdict (Sat or Unsat) interrupts the other
 * and its answer is returned. Both verdicts are by construction equal
 * (the backends decide the same formula), so the race only affects
 * wall time — and which backend's model serves witness extraction.
 *
 * Learned clauses persist in whichever lane earned them: an
 * interrupted lane keeps everything it derived before the cancel,
 * exactly as it would across a timeout, so shared incremental
 * sessions keep amortizing across queries on both lanes.
 *
 * The helper thread is leased from the process-wide ThreadBudget; when
 * no slot is free (e.g. BatchVerifier already saturated `--jobs`), the
 * query falls back to a sequential builtin solve, keeping total
 * concurrency capped and verdicts unchanged.
 *
 * solve() clears both lanes' interrupt flags on entry: each query
 * starts clean, and a cancellation only takes effect if it arrives
 * while the query is in flight. An interrupt raised between queries
 * (e.g. by a deadline that fired after the previous solve returned)
 * is deliberately dropped rather than poisoning the next query with a
 * spurious Unknown — callers enforcing deadlines across queries must
 * re-check the deadline, not rely on a parked interrupt flag.
 */

#ifndef GPUMC_SMT_PORTFOLIO_BACKEND_HPP
#define GPUMC_SMT_PORTFOLIO_BACKEND_HPP

#include <atomic>
#include <memory>

#include "smt/backend.hpp"
#include "support/thread_pool.hpp"

namespace gpumc::smt {

class PortfolioBackend : public Backend {
  public:
    explicit PortfolioBackend(const BackendConfig &config = {});
    ~PortfolioBackend() override;

    Lit newVar() override;
    void addClause(const std::vector<Lit> &clause) override;
    SolveResult solve(const std::vector<Lit> &assumptions) override;
    Lit mkActivationLit() override;
    void setTimeLimitMs(int64_t ms) override;
    void interrupt() override;
    void clearInterrupt() override;
    TruthValue modelValue(Lit lit) const override;
    int64_t numVars() const override;
    int64_t numClauses() const override;
    std::string name() const override { return "portfolio"; }
    std::map<std::string, int64_t> statistics() const override;

    /** Forwarded to the builtin lane; Z3 has no clause-sharing hook. */
    void attachClauseStore(std::shared_ptr<sat::ClauseStore> store,
                           int64_t varLimit) override;

    /**
     * Test hook: delay each lane's solve by the given amount, forcing
     * a chosen winner regardless of relative solver speed. Applies to
     * every PortfolioBackend in the process; reset with (0, 0).
     */
    static void setTestDelays(int64_t builtinMs, int64_t z3Ms);

  private:
    static constexpr int kBuiltin = 0;
    static constexpr int kZ3 = 1;

    Backend &lane(int which) const
    {
        return which == kZ3 ? *z3_ : *builtin_;
    }

    std::unique_ptr<Backend> builtin_;
    std::unique_ptr<Backend> z3_;
    /** Persistent helper thread for the Z3 lane, created on first race. */
    std::unique_ptr<ThreadPool> pool_;

    /** Lane whose model answers modelValue() after the last solve. */
    int winner_ = kBuiltin;
    int64_t solveCalls_ = 0;
    int64_t races_ = 0;
    int64_t sequentialSolves_ = 0;
    int64_t winsBuiltin_ = 0;
    int64_t winsZ3_ = 0;
    std::atomic<int64_t> interruptsIssued_{0};
};

} // namespace gpumc::smt

#endif // GPUMC_SMT_PORTFOLIO_BACKEND_HPP
