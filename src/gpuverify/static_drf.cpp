#include "gpuverify/static_drf.hpp"

#include <map>

#include "program/event.hpp"
#include "support/stats.hpp"

namespace gpumc::gpuverify {

using prog::Instruction;
using prog::Opcode;

namespace {

/** A shared-memory access with its barrier interval. */
struct Access {
    int thread = -1;
    int physLoc = -1;
    std::string varName;
    bool isWrite = false;
    bool isAtomic = false;
    int barrierInterval = 0;
    int64_t barrierPathKey = 0; // product key of static barrier ids
};

/**
 * Collect accesses per thread. The interval index counts the textual
 * barrier instructions preceding the access — a deliberately
 * control-flow-insensitive abstraction (GPUVerify relies on barrier
 * uniformity, which this mimics).
 */
std::vector<Access>
collectAccesses(const prog::Program &program)
{
    std::vector<Access> out;
    for (int t = 0; t < program.numThreads(); ++t) {
        int interval = 0;
        int64_t pathKey = 1;
        for (const Instruction &ins : program.threads[t].instrs) {
            if (ins.op == Opcode::Barrier) {
                interval++;
                int64_t id =
                    ins.barrierId.isReg() ? -1 : ins.barrierId.value;
                pathKey = pathKey * 31 + id;
                continue;
            }
            if (!ins.isMemoryAccess())
                continue;
            Access access;
            access.thread = t;
            access.physLoc = program.physLoc(ins.location);
            access.varName = ins.location;
            access.isAtomic = ins.atomic || ins.op == Opcode::Rmw;
            access.isWrite = ins.op != Opcode::Load;
            access.barrierInterval = interval;
            access.barrierPathKey = pathKey;
            out.push_back(access);
            if (ins.op == Opcode::Rmw) {
                Access write = access;
                write.isWrite = true;
                out.push_back(write);
            }
        }
    }
    return out;
}

} // namespace

StaticDrfResult
analyzeStaticDrf(const prog::Program &program)
{
    Stopwatch timer;
    StaticDrfResult result;

    std::vector<Access> accesses = collectAccesses(program);
    for (size_t i = 0; i < accesses.size(); ++i) {
        for (size_t j = i + 1; j < accesses.size(); ++j) {
            const Access &a = accesses[i];
            const Access &b = accesses[j];
            if (a.thread == b.thread || a.physLoc != b.physLoc)
                continue;
            if (!a.isWrite && !b.isWrite)
                continue;
            // Atomic-vs-atomic accesses never race in this abstraction
            // (memory orders and scopes are not interpreted).
            if (a.isAtomic && b.isAtomic)
                continue;
            // Barrier-interval separation within one workgroup: the
            // accesses are ordered by an intervening barrier.
            bool sameWg = prog::sameWg(program.threads[a.thread].placement,
                                       program.threads[b.thread].placement)
                       || prog::sameCta(program.threads[a.thread].placement,
                                        program.threads[b.thread].placement);
            if (sameWg && a.barrierInterval != b.barrierInterval)
                continue;
            RaceReport report;
            report.location = a.varName;
            report.thread1 = a.thread;
            report.thread2 = b.thread;
            report.detail =
                (a.isAtomic || b.isAtomic)
                    ? "atomic/non-atomic conflict"
                    : "unsynchronized conflicting accesses";
            result.races.push_back(std::move(report));
            result.raceFound = true;
        }
    }
    result.timeMs = timer.elapsedMs();
    return result;
}

} // namespace gpumc::gpuverify
