/**
 * @file
 * A GPUVerify-style *static* data-race analyser — the baseline for the
 * paper's Table 6 comparison (Section 7.3).
 *
 * Like GPUVerify it reasons with barrier intervals and treats atomic
 * operations as race-free synchronization, but it is deliberately
 *  - memory-model-unaware: it does not interpret memory orders, so
 *    relaxed atomics look like strong ones;
 *  - scope-unaware: workgroup-scope atomics across workgroups still
 *    look synchronizing;
 *  - control-flow-insensitive for custom synchronization: spinlocks do
 *    not protect their critical sections, producing the false
 *    positives the paper reports on caslock.
 * These are exactly the disagreement categories of Section 7.3.
 */

#ifndef GPUMC_GPUVERIFY_STATIC_DRF_HPP
#define GPUMC_GPUVERIFY_STATIC_DRF_HPP

#include <string>
#include <vector>

#include "program/program.hpp"

namespace gpumc::gpuverify {

struct RaceReport {
    std::string location;  // variable name
    int thread1 = -1, thread2 = -1;
    std::string detail;
};

struct StaticDrfResult {
    bool raceFound = false;
    std::vector<RaceReport> races;
    double timeMs = 0.0;
};

/** Run the static barrier-interval DRF analysis on a kernel. */
StaticDrfResult analyzeStaticDrf(const prog::Program &program);

} // namespace gpumc::gpuverify

#endif // GPUMC_GPUVERIFY_STATIC_DRF_HPP
