/**
 * @file
 * Fingerprint-keyed verdict cache for gpumc-serve.
 *
 * Key: the session key of the request (program fingerprint, model
 * *content* fingerprint, every encoder-reaching option — see
 * core/session_key.hpp) plus the property. Two requests with equal
 * keys decide the same formula, so the cached verdict is exact, not
 * heuristic. Unknown results (budget exhaustion) are never cached —
 * a later request with more budget deserves a real solve.
 *
 * LRU eviction at a fixed capacity; hit/miss/eviction counters feed
 * the `metrics` endpoint.
 */

#ifndef GPUMC_SERVE_RESULT_CACHE_HPP
#define GPUMC_SERVE_RESULT_CACHE_HPP

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>

#include "core/session_key.hpp"

namespace gpumc::serve {

/** Result cache key: one property checked under one session key. */
using ResultKey = std::pair<core::SessionKey, int>;

/** The cached portion of a verdict (witnesses are not cached). */
struct CachedResult {
    bool holds = false;
    std::string detail;
    /** Wall-clock cost of the original (miss) solve, for reporting. */
    double solveMs = 0.0;
};

class ResultCache {
  public:
    explicit ResultCache(size_t capacity) : capacity_(capacity) {}

    /** Look up @p key, refreshing its LRU position on a hit. */
    std::optional<CachedResult> lookup(const ResultKey &key);

    /** Insert or refresh @p key, evicting the LRU entry when full. */
    void insert(const ResultKey &key, CachedResult value);

    struct Counters {
        int64_t hits = 0;
        int64_t misses = 0;
        int64_t evictions = 0;
        int64_t size = 0;
        /** Persisted-cache loads rejected as corrupt or mismatched
         *  (missing files are a normal cold start, not a failure). */
        int64_t loadFailed = 0;
    };
    Counters counters() const;

    /**
     * Persist every entry to @p path as JSON lines: a version header
     * (format version + session-key arity, so a file written by a
     * gpumc whose key layout has since changed is never misread) and
     * one entry per line, least-recently-used first — reloading in
     * file order restores the LRU order exactly. The 64-bit
     * fingerprints travel as decimal strings: JSON numbers are doubles
     * and would corrupt them above 2^53. The file is written to
     * `path + ".tmp"` and renamed into place, so a crash (or SIGKILL)
     * mid-save can never leave a truncated cache at @p path — the old
     * file survives intact. Returns false when the file cannot be
     * written or the rename fails.
     */
    bool saveToFile(const std::string &path) const;

    /**
     * Load entries previously written by saveToFile. Any problem —
     * unreadable line, version or key-arity mismatch — falls back to
     * an *empty* cache and returns false: a persisted cache is an
     * optimization, never worth refusing to start over. A corrupt
     * file is loud about it (one stderr warning + the loadFailed
     * counter, surfaced as `load_failed` in the metrics endpoint); a
     * missing file is a normal cold start and stays silent. Counters
     * are reset, so metrics describe this process's traffic.
     */
    bool loadFromFile(const std::string &path);

  private:
    using Entry = std::pair<ResultKey, CachedResult>;

    const size_t capacity_;
    mutable std::mutex mutex_;
    std::list<Entry> lru_; // front = most recent
    std::map<ResultKey, std::list<Entry>::iterator> index_;
    int64_t hits_ = 0;
    int64_t misses_ = 0;
    int64_t evictions_ = 0;
    int64_t loadFailed_ = 0;
};

} // namespace gpumc::serve

#endif // GPUMC_SERVE_RESULT_CACHE_HPP
