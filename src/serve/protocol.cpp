#include "serve/protocol.hpp"

#include <cinttypes>
#include <cstdio>

#include "support/json.hpp"

namespace gpumc::serve {

namespace {

/** Re-serialize a parsed id value for verbatim echoing. */
std::string
serializeId(const JsonValue &v)
{
    switch (v.kind) {
      case JsonValue::Kind::String:
        return jsonString(v.text);
      case JsonValue::Kind::Number: {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%" PRId64, v.asInt());
        return buf;
      }
      case JsonValue::Kind::Bool:
        return v.boolean ? "true" : "false";
      default:
        return "null";
    }
}

bool
failParse(std::string &error, const std::string &what)
{
    error = what;
    return false;
}

} // namespace

const char *
propertyWireName(core::Property property)
{
    switch (property) {
      case core::Property::Safety:
        return "program_spec";
      case core::Property::CatSpec:
        return "cat_spec";
      case core::Property::Liveness:
        return "liveness";
    }
    return "program_spec";
}

bool
parseRequest(const std::string &line, Request &out, std::string &error)
{
    if (line.size() > kMaxLineBytes)
        return failParse(error, "request line exceeds " +
                                    std::to_string(kMaxLineBytes) +
                                    " bytes");

    JsonValue doc = parseJson(line, error);
    if (!error.empty())
        return false;
    if (!doc.isObject())
        return failParse(error, "request must be a JSON object");

    if (const JsonValue *id = doc.find("id"))
        out.id = serializeId(*id);

    std::string op = "verify";
    if (const JsonValue *v = doc.find("op")) {
        if (!v->isString())
            return failParse(error, "'op' must be a string");
        op = v->text;
    }
    if (op == "verify") {
        out.op = Op::Verify;
    } else if (op == "metrics") {
        out.op = Op::Metrics;
    } else if (op == "ping") {
        out.op = Op::Ping;
    } else if (op == "shutdown") {
        out.op = Op::Shutdown;
    } else {
        return failParse(error, "unknown op '" + op + "'");
    }
    if (out.op != Op::Verify)
        return true;

    const JsonValue *litmus = doc.find("litmus");
    if (!litmus || !litmus->isString() || litmus->text.empty())
        return failParse(error,
                         "verify request needs a non-empty 'litmus' "
                         "string");
    out.litmus = litmus->text;

    if (const JsonValue *v = doc.find("model")) {
        if (!v->isString())
            return failParse(error, "'model' must be a string");
        out.model = v->text;
    }
    if (const JsonValue *v = doc.find("model_source")) {
        if (!v->isString())
            return failParse(error, "'model_source' must be a string");
        out.modelSource = v->text;
    }
    if (out.model.empty() == out.modelSource.empty()) {
        return failParse(error,
                         "verify request needs exactly one of 'model' "
                         "(a name) or 'model_source' (inline .cat "
                         "text)");
    }
    // Model names become "<cat-dir>/<name>.cat"; reject separators so
    // a client cannot escape the configured directory.
    if (out.model.find('/') != std::string::npos ||
        out.model.find('\\') != std::string::npos ||
        out.model.find("..") != std::string::npos) {
        return failParse(error, "'model' must be a bare model name");
    }

    if (const JsonValue *v = doc.find("property")) {
        if (!v->isString())
            return failParse(error, "'property' must be a string");
        if (v->text == "program_spec") {
            out.property = core::Property::Safety;
        } else if (v->text == "cat_spec") {
            out.property = core::Property::CatSpec;
        } else if (v->text == "liveness") {
            out.property = core::Property::Liveness;
        } else {
            return failParse(error,
                             "unknown property '" + v->text + "'");
        }
    }
    if (const JsonValue *v = doc.find("bound")) {
        if (!v->isNumber() || v->asInt() < 0 || v->asInt() > 64)
            return failParse(error, "'bound' must be in [0, 64]");
        out.bound = static_cast<int>(v->asInt());
    }
    if (const JsonValue *v = doc.find("backend")) {
        if (!v->isString())
            return failParse(error, "'backend' must be a string");
        if (v->text == "builtin") {
            out.backend = smt::BackendKind::Builtin;
        } else if (v->text == "z3") {
            out.backend = smt::BackendKind::Z3;
        } else if (v->text == "portfolio") {
            out.backend = smt::BackendKind::Portfolio;
        } else {
            return failParse(error, "unknown backend '" + v->text + "'");
        }
    }
    if (const JsonValue *v = doc.find("timeout_ms")) {
        if (!v->isNumber() || v->asInt() < 0)
            return failParse(error, "'timeout_ms' must be >= 0");
        out.timeoutMs = v->asInt();
    }
    if (const JsonValue *v = doc.find("no_cache")) {
        if (!v->isBool())
            return failParse(error, "'no_cache' must be a boolean");
        out.noCache = v->boolean;
    }
    return true;
}

std::string
errorResponse(const std::string &id, const std::string &message)
{
    return "{\"id\":" + id + ",\"status\":\"error\",\"message\":" +
           jsonString(message) + "}";
}

std::string
overloadedResponse(const std::string &id)
{
    return "{\"id\":" + id + ",\"status\":\"overloaded\"}";
}

} // namespace gpumc::serve
