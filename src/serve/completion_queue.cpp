#include "serve/completion_queue.hpp"

#include "support/trace.hpp"

namespace gpumc::serve {

CompletionQueue::CompletionQueue()
    : thread_([this] { drainLoop(); })
{
}

CompletionQueue::~CompletionQueue()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    thread_.join();
}

void
CompletionQueue::push(std::function<void()> callback)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(callback));
    }
    wake_.notify_one();
}

void
CompletionQueue::flush()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return queue_.empty() && !running_; });
}

void
CompletionQueue::drainLoop()
{
    trace::Tracer::instance().nameCurrentThread("completion-drain");
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        wake_.wait(lock,
                   [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) // stopping_ and drained
            return;
        std::function<void()> callback = std::move(queue_.front());
        queue_.pop_front();
        running_ = true;
        lock.unlock();
        callback();
        lock.lock();
        running_ = false;
        if (queue_.empty())
            idle_.notify_all();
    }
}

} // namespace gpumc::serve
