#include "serve/session_pool.hpp"

namespace gpumc::serve {

std::unique_ptr<LiveSession>
SessionPool::checkout(const core::SessionKey &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it == index_.end()) {
        misses_++;
        return nullptr;
    }
    hits_++;
    std::unique_ptr<LiveSession> session =
        std::move(it->second->second);
    lru_.erase(it->second);
    index_.erase(it);
    return session;
}

void
SessionPool::checkin(const core::SessionKey &key,
                     std::unique_ptr<LiveSession> session)
{
    if (capacity_ == 0 || !session)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it != index_.end()) {
        // A concurrent request raced us with the same key; keep the
        // newest session (it has the freshest learned clauses).
        it->second->second = std::move(session);
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    lru_.emplace_front(key, std::move(session));
    index_[key] = lru_.begin();
    if (lru_.size() > capacity_) {
        index_.erase(lru_.back().first);
        lru_.pop_back();
        evictions_++;
    }
}

SessionPool::Counters
SessionPool::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Counters c;
    c.hits = hits_;
    c.misses = misses_;
    c.evictions = evictions_;
    c.size = static_cast<int64_t>(lru_.size());
    return c;
}

} // namespace gpumc::serve
