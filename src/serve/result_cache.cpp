#include "serve/result_cache.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <tuple>
#include <type_traits>

#include "support/json.hpp"

namespace gpumc::serve {

namespace {

/** Bumped whenever the entry layout changes. */
constexpr int kCacheFileVersion = 1;
constexpr size_t kKeyFields = std::tuple_size_v<core::SessionKey>;

std::string
encodeKey(const core::SessionKey &key)
{
    std::string out = "[";
    bool first = true;
    std::apply(
        [&](const auto &...field) {
            auto one = [&](const auto &f) {
                if (!first)
                    out += ",";
                first = false;
                using T = std::decay_t<decltype(f)>;
                if constexpr (std::is_same_v<T, bool>)
                    out += f ? "true" : "false";
                else
                    out += "\"" + std::to_string(f) + "\"";
            };
            (one(field), ...);
        },
        key);
    out += "]";
    return out;
}

bool
decodeKey(const JsonValue &array, core::SessionKey &key)
{
    if (array.kind != JsonValue::Kind::Array ||
        array.items.size() != kKeyFields)
        return false;
    bool ok = true;
    size_t index = 0;
    std::apply(
        [&](auto &...field) {
            auto one = [&](auto &f) {
                const JsonValue &v = array.items[index++];
                using T = std::decay_t<decltype(f)>;
                if constexpr (std::is_same_v<T, bool>) {
                    if (!v.isBool()) {
                        ok = false;
                        return;
                    }
                    f = v.boolean;
                } else {
                    if (!v.isString() || v.text.empty()) {
                        ok = false;
                        return;
                    }
                    errno = 0;
                    char *end = nullptr;
                    if constexpr (std::is_unsigned_v<T>) {
                        f = static_cast<T>(
                            std::strtoull(v.text.c_str(), &end, 10));
                    } else {
                        f = static_cast<T>(
                            std::strtoll(v.text.c_str(), &end, 10));
                    }
                    if (end == v.text.c_str() || *end != '\0' ||
                        errno != 0)
                        ok = false;
                }
            };
            (one(field), ...);
        },
        key);
    return ok;
}

} // namespace

std::optional<CachedResult>
ResultCache::lookup(const ResultKey &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it == index_.end()) {
        misses_++;
        return std::nullopt;
    }
    hits_++;
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->second;
}

void
ResultCache::insert(const ResultKey &key, CachedResult value)
{
    if (capacity_ == 0)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it != index_.end()) {
        it->second->second = std::move(value);
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    lru_.emplace_front(key, std::move(value));
    index_[key] = lru_.begin();
    if (lru_.size() > capacity_) {
        index_.erase(lru_.back().first);
        lru_.pop_back();
        evictions_++;
    }
}

bool
ResultCache::saveToFile(const std::string &path) const
{
    // Write everything to a sibling temp file, then rename into
    // place: rename(2) is atomic within a filesystem, so a reader (or
    // the next daemon start) only ever sees the old complete file or
    // the new complete file, never a torn write.
    const std::string tmpPath = path + ".tmp";
    {
        std::ofstream out(tmpPath, std::ios::trunc);
        if (!out)
            return false;
        out << "{\"gpumc_result_cache\":" << kCacheFileVersion
            << ",\"key_fields\":" << kKeyFields << "}\n";
        std::lock_guard<std::mutex> lock(mutex_);
        // Back (LRU) to front (MRU): reloading in file order
        // re-inserts the most recent entry last, restoring the
        // eviction order.
        for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
            char solveMs[32];
            std::snprintf(solveMs, sizeof solveMs, "%.3f",
                          it->second.solveMs);
            out << "{\"key\":" << encodeKey(it->first.first)
                << ",\"property\":" << it->first.second
                << ",\"holds\":"
                << (it->second.holds ? "true" : "false")
                << ",\"detail\":" << jsonString(it->second.detail)
                << ",\"solve_ms\":" << solveMs << "}\n";
        }
        out.flush();
        if (!out) {
            std::remove(tmpPath.c_str());
            return false;
        }
    }
    if (std::rename(tmpPath.c_str(), path.c_str()) != 0) {
        std::remove(tmpPath.c_str());
        return false;
    }
    return true;
}

bool
ResultCache::loadFromFile(const std::string &path)
{
    // A missing file is a normal cold start; anything else is a
    // corrupt or incompatible cache, worth a loud warning — silently
    // dropping a full cache looks exactly like a performance bug.
    auto startCold = [this, &path](const char *why) {
        std::lock_guard<std::mutex> lock(mutex_);
        lru_.clear();
        index_.clear();
        hits_ = misses_ = evictions_ = 0;
        if (why) {
            loadFailed_++;
            std::fprintf(stderr,
                         "gpumc-serve: ignoring result cache '%s' "
                         "(%s); starting cold\n",
                         path.c_str(), why);
        }
        return false;
    };

    std::ifstream in(path);
    if (!in)
        return startCold(nullptr);
    std::string line;
    if (!std::getline(in, line))
        return startCold("empty file");
    std::string error;
    JsonValue header = parseJson(line, error);
    const JsonValue *version = header.find("gpumc_result_cache");
    const JsonValue *fields = header.find("key_fields");
    if (!error.empty() || !version || !fields ||
        version->asInt() != kCacheFileVersion ||
        fields->asInt() != static_cast<int64_t>(kKeyFields))
        return startCold("bad or mismatched header");

    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        JsonValue entry = parseJson(line, error);
        const JsonValue *keyField = entry.find("key");
        const JsonValue *property = entry.find("property");
        const JsonValue *holds = entry.find("holds");
        const JsonValue *detail = entry.find("detail");
        const JsonValue *solveMs = entry.find("solve_ms");
        ResultKey key;
        if (!error.empty() || !keyField || !property || !holds ||
            !detail || !solveMs || !property->isNumber() ||
            !holds->isBool() || !detail->isString() ||
            !solveMs->isNumber() || !decodeKey(*keyField, key.first))
            return startCold("malformed entry");
        key.second = static_cast<int>(property->asInt());
        CachedResult value;
        value.holds = holds->boolean;
        value.detail = detail->text;
        value.solveMs = solveMs->number;
        insert(key, std::move(value));
    }

    // The load is warm-up, not traffic: metrics start at zero.
    std::lock_guard<std::mutex> lock(mutex_);
    hits_ = misses_ = evictions_ = 0;
    return true;
}

ResultCache::Counters
ResultCache::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Counters c;
    c.hits = hits_;
    c.misses = misses_;
    c.evictions = evictions_;
    c.size = static_cast<int64_t>(lru_.size());
    c.loadFailed = loadFailed_;
    return c;
}

} // namespace gpumc::serve
