#include "serve/result_cache.hpp"

namespace gpumc::serve {

std::optional<CachedResult>
ResultCache::lookup(const ResultKey &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it == index_.end()) {
        misses_++;
        return std::nullopt;
    }
    hits_++;
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->second;
}

void
ResultCache::insert(const ResultKey &key, CachedResult value)
{
    if (capacity_ == 0)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it != index_.end()) {
        it->second->second = std::move(value);
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    lru_.emplace_front(key, std::move(value));
    index_[key] = lru_.begin();
    if (lru_.size() > capacity_) {
        index_.erase(lru_.back().first);
        lru_.pop_back();
        evictions_++;
    }
}

ResultCache::Counters
ResultCache::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Counters c;
    c.hits = hits_;
    c.misses = misses_;
    c.evictions = evictions_;
    c.size = static_cast<int64_t>(lru_.size());
    return c;
}

} // namespace gpumc::serve
