#include "serve/engine.hpp"

#include <future>
#include <sstream>

#include "litmus/litmus_parser.hpp"
#include "support/diagnostics.hpp"
#include "support/json.hpp"
#include "support/stats.hpp"
#include "support/trace.hpp"

namespace gpumc::serve {

namespace {

std::string
formatMs(double ms)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f", ms);
    return buf;
}

std::string
okVerifyResponse(const std::string &id,
                 const core::VerificationResult &result, bool cacheHit,
                 double requestMs, const std::string &fingerprint)
{
    std::string out = "{\"id\":" + id + ",\"status\":\"ok\"";
    out += ",\"holds\":";
    out += result.holds ? "true" : "false";
    out += ",\"unknown\":";
    out += result.unknown ? "true" : "false";
    out += ",\"detail\":" + jsonString(result.detail);
    out += ",\"cache\":\"";
    out += cacheHit ? "hit" : "miss";
    out += "\",\"time_ms\":" + formatMs(requestMs);
    out += ",\"fingerprint\":" + jsonString(fingerprint);
    out += "}";
    return out;
}

} // namespace

Engine::Engine(EngineOptions options)
    : options_(std::move(options)),
      resultCache_(options_.resultCacheCapacity),
      sessions_(options_.sessionCacheCapacity),
      executor_(std::make_unique<Executor>(
          options_.jobs, options_.maxQueued, "serve-worker"))
{
    if (!options_.cacheFile.empty())
        resultCache_.loadFromFile(options_.cacheFile);
}

Engine::~Engine()
{
    // Join the workers first: a verify still in flight during shutdown
    // must land in the cache before the snapshot is written.
    executor_.reset();
    if (!options_.cacheFile.empty())
        resultCache_.saveToFile(options_.cacheFile);
}

void
Engine::drain()
{
    executor_->drain();
}

std::shared_ptr<const cat::CatModel>
Engine::resolveModel(const Request &req)
{
    if (!req.model.empty()) {
        {
            std::lock_guard<std::mutex> lock(modelsMutex_);
            auto it = namedModels_.find(req.model);
            if (it != namedModels_.end())
                return it->second;
        }
        // Load outside the lock (file I/O + parse); a racing duplicate
        // load is harmless, first insert wins.
        std::string path = options_.catDir.empty()
                               ? req.model + ".cat"
                               : options_.catDir + "/" + req.model +
                                     ".cat";
        auto model = std::make_shared<const cat::CatModel>(
            cat::CatModel::fromFile(path));
        std::lock_guard<std::mutex> lock(modelsMutex_);
        auto [it, inserted] = namedModels_.emplace(req.model, model);
        return it->second;
    }

    auto model = std::make_shared<const cat::CatModel>(
        cat::CatModel::fromSource(req.modelSource));
    std::lock_guard<std::mutex> lock(modelsMutex_);
    // Dedup by content fingerprint: re-sent identical sources pin one
    // object, and *changed* sources get a fresh entry even if the
    // allocator recycles an old model's address (the session key is
    // content-based too, so this is belt and braces, not correctness).
    auto [it, inserted] =
        inlineModels_.emplace(model->fingerprint(), model);
    return it->second;
}

std::string
Engine::metricsResponse(const std::string &id) const
{
    ResultCache::Counters rc = resultCache_.counters();
    SessionPool::Counters sc = sessions_.counters();
    Executor::Counters ec = executor_->counters();
    int64_t requests, errors;
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        requests = requests_;
        errors = errors_;
    }

    std::ostringstream out;
    out << "{\"id\":" << id << ",\"status\":\"ok\""
        << ",\"requests\":" << requests << ",\"errors\":" << errors
        << ",\"result_cache\":{\"hits\":" << rc.hits
        << ",\"misses\":" << rc.misses
        << ",\"evictions\":" << rc.evictions << ",\"size\":" << rc.size
        << ",\"load_failed\":" << rc.loadFailed
        << "},\"session_cache\":{\"hits\":" << sc.hits
        << ",\"misses\":" << sc.misses
        << ",\"evictions\":" << sc.evictions << ",\"size\":" << sc.size
        << "},\"executor\":{\"accepted\":" << ec.accepted
        << ",\"rejected\":" << ec.rejected
        << ",\"executed\":" << ec.executed
        << ",\"max_queue_depth\":" << ec.maxQueueDepth << "}";
    // The PR-4 observability metrics ride along continuously: when the
    // process tracer is enabled, its full counters + span aggregates
    // export is embedded verbatim (it is a JSON object).
    if (trace::Tracer::instance().enabled()) {
        std::ostringstream tracer;
        trace::Tracer::instance().writeMetrics(tracer);
        out << ",\"tracer\":" << tracer.str();
    }
    out << "}";
    return out.str();
}

bool
Engine::handle(const std::string &line, Respond respond)
{
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        requests_++;
    }

    Request req;
    std::string error;
    if (!parseRequest(line, req, error)) {
        {
            std::lock_guard<std::mutex> lock(statsMutex_);
            errors_++;
        }
        respond(errorResponse(req.id, error));
        return true;
    }

    switch (req.op) {
      case Op::Ping:
        respond("{\"id\":" + req.id +
                ",\"status\":\"ok\",\"pong\":true}");
        return true;
      case Op::Metrics:
        respond(metricsResponse(req.id));
        return true;
      case Op::Shutdown:
        respond("{\"id\":" + req.id +
                ",\"status\":\"ok\",\"shutdown\":true}");
        return false;
      case Op::Verify:
        handleVerify(std::move(req), respond);
        return true;
    }
    return true;
}

void
Engine::handleVerify(Request req, const Respond &respond)
{
    Stopwatch requestTimer;

    // Parse inputs inline: errors answer immediately, and the parsed
    // program/model give us the fingerprints the cache lookup needs.
    std::shared_ptr<const prog::Program> program;
    std::shared_ptr<const cat::CatModel> model;
    try {
        program = std::make_shared<const prog::Program>(
            litmus::parseLitmus(req.litmus));
        model = resolveModel(req);
    } catch (const FatalError &error) {
        {
            std::lock_guard<std::mutex> lock(statsMutex_);
            errors_++;
        }
        respond(errorResponse(req.id, error.what()));
        return;
    }

    core::VerifierOptions vopts;
    vopts.backend = req.backend;
    vopts.bound = req.bound;
    vopts.clauseShare = options_.clauseShare;
    // The server never extracts witnesses: responses carry verdicts,
    // and witness objects would make cached and fresh results differ.
    vopts.wantWitness = false;
    int64_t budgetMs = req.timeoutMs;
    if (options_.maxTimeoutMs > 0 &&
        (budgetMs == 0 || budgetMs > options_.maxTimeoutMs))
        budgetMs = options_.maxTimeoutMs;
    // The key carries the *requested* budget (stable across identical
    // requests); the live deadline below carries the remaining one.
    vopts.solverTimeoutMs = budgetMs;

    core::SessionKey key = core::sessionKey(*program, *model, vopts);
    ResultKey resultKey{key, static_cast<int>(req.property)};
    std::string fingerprint =
        program->fingerprint().str() + model->fingerprint().str();

    if (!req.noCache) {
        if (std::optional<CachedResult> hit =
                resultCache_.lookup(resultKey)) {
            core::VerificationResult result;
            result.property = req.property;
            result.holds = hit->holds;
            result.detail = hit->detail;
            respond(okVerifyResponse(req.id, result, true,
                                     requestTimer.elapsedMs(),
                                     fingerprint));
            return;
        }
    }

    // Admission: the deadline starts now and covers queueing, so a
    // request stuck behind a full queue spends its own budget, not a
    // fresh one.
    Deadline deadline = Deadline::in(budgetMs);
    auto task = [this, req = std::move(req), respond, program, model,
                 vopts, key, resultKey, fingerprint = std::move(fingerprint),
                 deadline, requestTimer]() mutable {
        core::VerificationResult result;
        result.property = req.property;
        if (deadline.limited() && deadline.expired()) {
            result.unknown = true;
            result.detail = "deadline exhausted while queued";
            respond(okVerifyResponse(req.id, result, false,
                                     requestTimer.elapsedMs(),
                                     fingerprint));
            return;
        }

        std::unique_ptr<LiveSession> session = sessions_.checkout(key);
        if (!session) {
            session = std::make_unique<LiveSession>();
            session->program = program;
            session->model = model;
        }
        bool poisoned = false;
        Stopwatch solveTimer;
        try {
            if (!session->verifier) {
                session->verifier = std::make_unique<core::Verifier>(
                    *session->program, *session->model, vopts);
            }
            // Arm what is left of the request's budget on the live
            // session (which may have been created by an earlier
            // request with a different remaining budget).
            if (deadline.limited())
                session->verifier->setSolverTimeoutMs(
                    deadline.remainingMs());
            result = session->verifier->check(req.property);
        } catch (const FatalError &error) {
            poisoned = true;
            result.unknown = true;
            result.detail = error.what();
        } catch (const std::exception &error) {
            poisoned = true;
            result.unknown = true;
            result.detail = error.what();
        }
        if (poisoned) {
            // Same policy as BatchVerifier: a session that threw is
            // discarded, never recycled half-encoded.
            {
                std::lock_guard<std::mutex> lock(statsMutex_);
                errors_++;
            }
            respond(errorResponse(req.id, result.detail));
            return;
        }
        sessions_.checkin(key, std::move(session));

        // Cache definitive verdicts only: unknown means the budget ran
        // out, and a later identical request may bring more budget.
        if (!req.noCache && !result.unknown) {
            CachedResult cached;
            cached.holds = result.holds;
            cached.detail = result.detail;
            cached.solveMs = solveTimer.elapsedMs();
            resultCache_.insert(resultKey, std::move(cached));
        }
        respond(okVerifyResponse(req.id, result, false,
                                 requestTimer.elapsedMs(),
                                 fingerprint));
    };

    if (executor_->trySubmit(std::move(task)) ==
        Executor::Admit::Overloaded) {
        respond(overloadedResponse(req.id));
    }
}

std::string
Engine::handleSync(const std::string &line)
{
    std::promise<std::string> promise;
    std::future<std::string> future = promise.get_future();
    handle(line, [&promise](const std::string &response) {
        promise.set_value(response);
    });
    return future.get();
}

} // namespace gpumc::serve
