#include "serve/server.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "serve/completion_queue.hpp"
#include "support/diagnostics.hpp"

namespace gpumc::serve {

namespace {

/** Self-pipe write end for the async-signal-safe SIGTERM handler. */
std::atomic<int> gStopFd{-1};

extern "C" void
stopSignalHandler(int)
{
    int fd = gStopFd.load(std::memory_order_relaxed);
    if (fd >= 0) {
        char byte = 's';
        // The return value is irrelevant: a full pipe already means a
        // stop is pending.
        [[maybe_unused]] ssize_t n = write(fd, &byte, 1);
    }
}

void
writeAll(int fd, const char *data, size_t size)
{
    while (size > 0) {
        ssize_t n = write(fd, data, size);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return; // EPIPE etc.: client is gone, drop the response
        }
        data += static_cast<size_t>(n);
        size -= static_cast<size_t>(n);
    }
}

} // namespace

/**
 * One client connection: a reader thread feeding the Engine, and a
 * CompletionQueue delivering responses in order without ever blocking
 * a verification worker on this client's socket.
 */
struct Server::Connection {
    int readFd = -1;
    int writeFd = -1;
    /** When >= 0, poll this fd alongside readFd and stop on it —
     *  stdio cannot be half-closed the way sockets can. */
    int stopFd = -1;
    Server *server = nullptr;

    std::mutex mutex;
    std::condition_variable cv;
    size_t pendingResponses = 0;
    CompletionQueue out;

    void sendLine(const std::string &line)
    {
        out.push([this, line] {
            std::string framed = line + "\n";
            writeAll(writeFd, framed.data(), framed.size());
            std::lock_guard<std::mutex> lock(mutex);
            pendingResponses--;
            cv.notify_all();
        });
    }

    void waitResponses()
    {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [this] { return pendingResponses == 0; });
    }
};

Server::Server(Engine &engine, ServerOptions options)
    : engine_(engine), options_(std::move(options))
{
}

Server::~Server()
{
    if (stopPipe_[0] >= 0) {
        gStopFd.store(-1, std::memory_order_relaxed);
        close(stopPipe_[0]);
        close(stopPipe_[1]);
    }
}

void
Server::requestStop()
{
    if (stopPipe_[1] >= 0) {
        char byte = 's';
        [[maybe_unused]] ssize_t n = write(stopPipe_[1], &byte, 1);
    }
}

void
Server::serveConnection(Connection &conn)
{
    std::string buffer;
    bool discarding = false; // inside an oversized line, until '\n'
    char chunk[65536];
    bool open = true;

    auto dispatch = [&](const std::string &line) {
        {
            std::lock_guard<std::mutex> lock(conn.mutex);
            conn.pendingResponses++;
        }
        bool keep = engine_.handle(
            line, [&conn](const std::string &response) {
                conn.sendLine(response);
            });
        if (!keep) {
            open = false;
            conn.server->requestStop();
        }
    };

    while (open) {
        if (conn.stopFd >= 0) {
            struct pollfd pfds[2] = {{conn.readFd, POLLIN, 0},
                                     {conn.stopFd, POLLIN, 0}};
            int ready = poll(pfds, 2, -1);
            if (ready < 0) {
                if (errno == EINTR)
                    continue;
                break;
            }
            if (pfds[1].revents != 0)
                break; // stop requested (SIGTERM / shutdown op)
            if ((pfds[0].revents & (POLLIN | POLLHUP)) == 0)
                continue;
        }
        ssize_t n = read(conn.readFd, chunk, sizeof chunk);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (n == 0)
            break; // EOF (or SHUT_RD from the stopper)
        size_t start = 0;
        for (ssize_t i = 0; i < n && open; ++i) {
            if (chunk[i] != '\n')
                continue;
            if (discarding) {
                discarding = false; // resynchronized
            } else {
                buffer.append(chunk + start,
                              static_cast<size_t>(i) - start);
                if (!buffer.empty())
                    dispatch(buffer);
                buffer.clear();
            }
            start = static_cast<size_t>(i) + 1;
        }
        if (open && !discarding) {
            buffer.append(chunk + start, static_cast<size_t>(n) - start);
            if (buffer.size() > kMaxLineBytes) {
                // Answer the oversize immediately and drop input until
                // the next newline — the daemon never buffers a line
                // without bound.
                {
                    std::lock_guard<std::mutex> lock(conn.mutex);
                    conn.pendingResponses++;
                }
                conn.sendLine(errorResponse(
                    "null", "request line exceeds " +
                                std::to_string(kMaxLineBytes) +
                                " bytes"));
                buffer.clear();
                buffer.shrink_to_fit();
                discarding = true;
            }
        }
    }
    // A final unterminated line still counts as a request (stdio
    // clients often omit the last newline).
    if (open && !discarding && !buffer.empty())
        dispatch(buffer);

    conn.waitResponses();
    conn.out.flush();
}

int
Server::runStdio()
{
    Connection conn;
    conn.readFd = STDIN_FILENO;
    conn.writeFd = STDOUT_FILENO;
    conn.stopFd = stopPipe_[0]; // SIGTERM must interrupt read(0)
    conn.server = this;
    // serveConnection returns only after every admitted request has
    // responded, so the drain below is belt and braces.
    serveConnection(conn);
    engine_.drain();
    conn.waitResponses();
    conn.out.flush();
    return 0;
}

int
Server::runListener()
{
    bool isUnix = !options_.unixPath.empty();
    listenFd_ = socket(isUnix ? AF_UNIX : AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
        std::perror("gpumc-serve: socket");
        return 2;
    }

    if (isUnix) {
        struct sockaddr_un addr;
        std::memset(&addr, 0, sizeof addr);
        addr.sun_family = AF_UNIX;
        if (options_.unixPath.size() >= sizeof addr.sun_path) {
            std::fprintf(stderr,
                         "gpumc-serve: unix socket path too long\n");
            return 2;
        }
        std::strncpy(addr.sun_path, options_.unixPath.c_str(),
                     sizeof addr.sun_path - 1);
        unlink(options_.unixPath.c_str());
        if (bind(listenFd_,
                 reinterpret_cast<struct sockaddr *>(&addr),
                 sizeof addr) < 0) {
            std::perror("gpumc-serve: bind");
            return 2;
        }
    } else {
        int one = 1;
        setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                   sizeof one);
        struct sockaddr_in addr;
        std::memset(&addr, 0, sizeof addr);
        addr.sin_family = AF_INET;
        addr.sin_port =
            htons(static_cast<uint16_t>(options_.port));
        if (inet_pton(AF_INET, options_.host.c_str(),
                      &addr.sin_addr) != 1) {
            std::fprintf(stderr, "gpumc-serve: bad listen host '%s'\n",
                         options_.host.c_str());
            return 2;
        }
        if (bind(listenFd_,
                 reinterpret_cast<struct sockaddr *>(&addr),
                 sizeof addr) < 0) {
            std::perror("gpumc-serve: bind");
            return 2;
        }
    }
    if (listen(listenFd_, 64) < 0) {
        std::perror("gpumc-serve: listen");
        return 2;
    }

    if (isUnix) {
        std::printf("listening on %s\n", options_.unixPath.c_str());
    } else {
        struct sockaddr_in bound;
        socklen_t len = sizeof bound;
        getsockname(listenFd_,
                    reinterpret_cast<struct sockaddr *>(&bound), &len);
        std::printf("listening on %s:%d\n", options_.host.c_str(),
                    static_cast<int>(ntohs(bound.sin_port)));
    }
    std::fflush(stdout);

    for (;;) {
        struct pollfd pfds[2] = {{listenFd_, POLLIN, 0},
                                 {stopPipe_[0], POLLIN, 0}};
        int ready = poll(pfds, 2, -1);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (pfds[1].revents != 0)
            break; // stop requested
        if ((pfds[0].revents & POLLIN) == 0)
            continue;
        int fd = accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        auto *conn = new Connection;
        conn->readFd = fd;
        conn->writeFd = fd;
        conn->server = this;
        {
            std::lock_guard<std::mutex> lock(connectionsMutex_);
            connections_.push_back(conn);
        }
        // Detached and self-reaping: the thread deregisters (making
        // the fd invisible to the shutdown half-close) before closing
        // and freeing, so the stopper never touches a dead fd.
        std::thread([this, conn] {
            serveConnection(*conn);
            {
                std::lock_guard<std::mutex> lock(connectionsMutex_);
                connections_.erase(std::find(connections_.begin(),
                                             connections_.end(), conn),
                                   connections_.end());
                connectionsCv_.notify_all();
            }
            close(conn->readFd);
            delete conn;
        }).detach();
    }

    close(listenFd_);
    listenFd_ = -1;
    if (isUnix)
        unlink(options_.unixPath.c_str());

    // Half-close every connection so blocked readers see EOF, then
    // wait for the connection threads to finish responding and
    // deregister themselves.
    {
        std::unique_lock<std::mutex> lock(connectionsMutex_);
        for (Connection *conn : connections_)
            shutdown(conn->readFd, SHUT_RD);
        connectionsCv_.wait(lock,
                            [this] { return connections_.empty(); });
    }
    engine_.drain();
    return 0;
}

int
Server::run()
{
    if (pipe(stopPipe_) != 0) {
        std::perror("gpumc-serve: pipe");
        return 2;
    }
    gStopFd.store(stopPipe_[1], std::memory_order_relaxed);

    // Graceful shutdown on SIGTERM/SIGINT via the self-pipe; a client
    // that disappears mid-response must not kill the daemon (EPIPE is
    // handled at the write site).
    struct sigaction sa;
    std::memset(&sa, 0, sizeof sa);
    sa.sa_handler = stopSignalHandler;
    sigaction(SIGTERM, &sa, nullptr);
    sigaction(SIGINT, &sa, nullptr);
    std::signal(SIGPIPE, SIG_IGN);

    if (options_.stdio ||
        (options_.port < 0 && options_.unixPath.empty()))
        return runStdio();
    return runListener();
}

} // namespace gpumc::serve
