/**
 * @file
 * Single-threaded completion drain: callbacks pushed from any worker
 * are delivered one at a time, in push order, on a dedicated thread.
 *
 * This is what keeps progress/response delivery off the verification
 * workers. The old BatchVerifier invoked its progress callback while
 * holding the progress mutex *on the worker*, so one slow consumer
 * (a terminal on a slow pty, a blocked client socket) stalled every
 * worker in the pool. With a drain, workers only pay for the enqueue;
 * a slow consumer backs up this queue, never the solvers.
 *
 * The drain thread is a consumer like the caller itself and is not
 * charged to the ThreadBudget (it spends its life blocked or inside
 * user callbacks, not computing).
 */

#ifndef GPUMC_SERVE_COMPLETION_QUEUE_HPP
#define GPUMC_SERVE_COMPLETION_QUEUE_HPP

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>

namespace gpumc::serve {

class CompletionQueue {
  public:
    CompletionQueue();

    /** Flushes pending callbacks, then joins the drain thread. */
    ~CompletionQueue();

    CompletionQueue(const CompletionQueue &) = delete;
    CompletionQueue &operator=(const CompletionQueue &) = delete;

    /**
     * Enqueue a callback for in-order delivery. Never blocks on the
     * consumer. Callbacks must not throw; a throwing callback
     * terminates (same contract as ThreadPool tasks).
     */
    void push(std::function<void()> callback);

    /**
     * Block until every callback pushed before this call has
     * *returned* (not merely been dequeued).
     */
    void flush();

  private:
    void drainLoop();

    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable idle_;
    std::deque<std::function<void()>> queue_;
    bool running_ = false; // a callback is mid-delivery
    bool stopping_ = false;
    std::thread thread_;
};

} // namespace gpumc::serve

#endif // GPUMC_SERVE_COMPLETION_QUEUE_HPP
