/**
 * @file
 * The gpumc-serve verification engine: everything the daemon does
 * except transport. One Engine instance serves every connection.
 *
 * Request flow (Engine::handle):
 *  1. parse the JSON line (errors answer inline),
 *  2. compute the session key; consult the fingerprint result cache —
 *     hits answer inline without touching a solver,
 *  3. admission control: a miss is admitted into the bounded executor
 *     queue, or answered `overloaded` when the queue is full,
 *  4. a worker checks a live session out of the LRU session pool (or
 *     builds one), arms the request's remaining deadline, solves,
 *     checks the session back in, fills the result cache and responds.
 *
 * The per-request deadline covers queueing: it is armed at admission,
 * and the worker gives the solver only what is left of it (drawn from
 * the shared gpumc::Deadline just like Verifier's per-check budget).
 * The *requested* timeout — not the remaining budget — is what enters
 * the session key, so identical requests always map to one session.
 *
 * `respond` may be invoked inline (cache hits, errors, ping/metrics)
 * or later from a worker thread; transports must tolerate both.
 */

#ifndef GPUMC_SERVE_ENGINE_HPP
#define GPUMC_SERVE_ENGINE_HPP

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "serve/executor.hpp"
#include "serve/protocol.hpp"
#include "serve/result_cache.hpp"
#include "serve/session_pool.hpp"

namespace gpumc::serve {

struct EngineOptions {
    /** Verification worker threads; 0 = hardware concurrency. */
    unsigned jobs = 0;
    /** Bounded request queue for admission control. */
    size_t maxQueued = 64;
    size_t resultCacheCapacity = 1024;
    size_t sessionCacheCapacity = 32;
    /**
     * Cap applied to every request's budget, and the budget of
     * requests that ask for none; 0 = uncapped (requests without a
     * timeout run to completion).
     */
    int64_t maxTimeoutMs = 0;
    /** Directory where `model` names resolve to <name>.cat files. */
    std::string catDir;
    /**
     * Learned-clause sharing scope applied to every verify request
     * (smt::ClauseShareMode; `Session` lets same-fingerprint requests
     * warm each other's solvers even across session-pool rebuilds).
     * Part of each request's session key, so flipping it never aliases
     * cached results or pooled sessions from another mode.
     */
    smt::ClauseShareMode clauseShare = smt::ClauseShareMode::Off;
    /**
     * Result-cache persistence path: loaded at construction (missing,
     * corrupt or version-mismatched files silently start cold) and
     * written back on clean shutdown. Empty = in-memory only.
     */
    std::string cacheFile;
};

class Engine {
  public:
    explicit Engine(EngineOptions options = {});
    ~Engine();

    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    /** Delivers one response line (without the trailing newline). */
    using Respond = std::function<void(const std::string &line)>;

    /**
     * Handle one request line; @p respond is called exactly once.
     * Returns false when the request was a `shutdown` op (the
     * transport should stop accepting input).
     */
    bool handle(const std::string &line, Respond respond);

    /** handle() + wait for the response (tests, bench, thin client). */
    std::string handleSync(const std::string &line);

    /** Wait until every admitted request has responded. */
    void drain();

    const EngineOptions &options() const { return options_; }

  private:
    struct ModelEntry {
        std::shared_ptr<const cat::CatModel> model;
    };

    /**
     * Resolve the request's model to a shared immutable CatModel:
     * named models are loaded from catDir once and pinned; inline
     * `model_source` models are parsed and deduplicated by content
     * fingerprint. Throws FatalError on load/parse errors.
     */
    std::shared_ptr<const cat::CatModel> resolveModel(const Request &req);

    void handleVerify(Request req, const Respond &respond);
    std::string metricsResponse(const std::string &id) const;

    EngineOptions options_;
    ResultCache resultCache_;
    SessionPool sessions_;
    std::unique_ptr<Executor> executor_;

    mutable std::mutex modelsMutex_;
    /** Named models, by name. */
    std::map<std::string, std::shared_ptr<const cat::CatModel>>
        namedModels_;
    /** Inline models, by content fingerprint. */
    std::map<cat::ModelFingerprint,
             std::shared_ptr<const cat::CatModel>>
        inlineModels_;

    mutable std::mutex statsMutex_;
    int64_t requests_ = 0;
    int64_t errors_ = 0;
};

} // namespace gpumc::serve

#endif // GPUMC_SERVE_ENGINE_HPP
