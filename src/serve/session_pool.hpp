/**
 * @file
 * LRU pool of live incremental Verifier sessions for gpumc-serve.
 *
 * A result-cache miss still profits from an earlier request with the
 * same session key: the unroll/analysis/encode pipeline and all
 * learned clauses live in the checked-in Verifier, and the new
 * property (or re-check) is one assumption-guarded query on it — the
 * same amortization core::BatchVerifier gets from its session groups,
 * extended across requests.
 *
 * checkout() *removes* the session from the pool, so two concurrent
 * requests with the same key never share one live solver; the second
 * builds fresh and the later checkin() keeps whichever session was
 * returned last. A session owns its inputs (program + model) because
 * Verifier holds references — the pool keeps them alive together.
 */

#ifndef GPUMC_SERVE_SESSION_POOL_HPP
#define GPUMC_SERVE_SESSION_POOL_HPP

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>

#include "core/session_key.hpp"

namespace gpumc::serve {

struct LiveSession {
    std::shared_ptr<const prog::Program> program;
    std::shared_ptr<const cat::CatModel> model;
    std::unique_ptr<core::Verifier> verifier;
};

class SessionPool {
  public:
    explicit SessionPool(size_t capacity) : capacity_(capacity) {}

    /** Remove and return the session for @p key; nullptr if absent. */
    std::unique_ptr<LiveSession> checkout(const core::SessionKey &key);

    /**
     * Return a session to the pool (most-recent position), evicting
     * the least recently used session beyond capacity. A session that
     * threw mid-check must NOT be checked in — drop it instead, like
     * BatchVerifier discards a poisoned group session.
     */
    void checkin(const core::SessionKey &key,
                 std::unique_ptr<LiveSession> session);

    struct Counters {
        int64_t hits = 0;      // checkout found a live session
        int64_t misses = 0;    // checkout came up empty
        int64_t evictions = 0; // LRU drops at capacity
        int64_t size = 0;
    };
    Counters counters() const;

  private:
    using Entry =
        std::pair<core::SessionKey, std::unique_ptr<LiveSession>>;

    const size_t capacity_;
    mutable std::mutex mutex_;
    std::list<Entry> lru_; // front = most recent
    std::map<core::SessionKey, std::list<Entry>::iterator> index_;
    int64_t hits_ = 0;
    int64_t misses_ = 0;
    int64_t evictions_ = 0;
};

} // namespace gpumc::serve

#endif // GPUMC_SERVE_SESSION_POOL_HPP
