/**
 * @file
 * gpumc-serve transports: stdio, TCP and unix-domain listeners over
 * one shared Engine.
 *
 * All three speak the same line-delimited JSON protocol. Each socket
 * connection gets a reader thread plus a CompletionQueue that delivers
 * responses in enqueue order off the verification workers — a client
 * that stops reading backs up its own queue, never the solvers (the
 * same discipline as BatchVerifier progress delivery).
 *
 * Shutdown: SIGTERM/SIGINT write to a self-pipe that wakes the accept
 * loop; the server stops accepting, half-closes every connection so
 * readers see EOF, waits for in-flight requests to respond, and run()
 * returns 0. A `shutdown` request does the same from the wire.
 *
 * Oversized lines (> kMaxLineBytes without a newline) are answered
 * with an error response and input is resynchronized at the next
 * newline.
 */

#ifndef GPUMC_SERVE_SERVER_HPP
#define GPUMC_SERVE_SERVER_HPP

#include <condition_variable>
#include <memory>
#include <string>
#include <vector>

#include "serve/engine.hpp"

namespace gpumc::serve {

struct ServerOptions {
    /** TCP listener; active when port >= 0 (0 = ephemeral port). */
    std::string host = "127.0.0.1";
    int port = -1;
    /** Unix-domain listener; active when non-empty. */
    std::string unixPath;
    /** stdio mode (stdin/stdout): the default when neither is set. */
    bool stdio = false;
};

class Server {
  public:
    Server(Engine &engine, ServerOptions options);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Serve until EOF (stdio), a `shutdown` request, or SIGTERM /
     * SIGINT. Prints one `listening on ...` line to stdout before
     * accepting (socket modes). Returns the process exit code.
     */
    int run();

    /** Ask a running run() to stop (thread-safe, signal-unsafe). */
    void requestStop();

  private:
    struct Connection;

    int runStdio();
    int runListener();
    void serveConnection(Connection &conn);

    Engine &engine_;
    ServerOptions options_;
    int listenFd_ = -1;
    int stopPipe_[2] = {-1, -1};

    /**
     * Live connections. Each runs on a detached thread that erases
     * its entry (under the mutex) and frees itself when the client
     * goes away, so idle history never accumulates threads; shutdown
     * half-closes every member and waits for the set to empty.
     */
    std::mutex connectionsMutex_;
    std::condition_variable connectionsCv_;
    std::vector<Connection *> connections_;
};

} // namespace gpumc::serve

#endif // GPUMC_SERVE_SERVER_HPP
