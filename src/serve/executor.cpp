#include "serve/executor.hpp"

#include "support/thread_pool.hpp"
#include "support/trace.hpp"

namespace gpumc::serve {

Executor::Executor(unsigned workers, size_t maxQueued,
                   const char *threadName)
    : maxQueued_(maxQueued), threadName_(threadName)
{
    if (workers == 0)
        workers = defaultConcurrency();
    // The creator's slot is lent while it blocks, so only workers - 1
    // helpers are charged; a zero grant still leaves one worker.
    lease_.emplace(workers > 0 ? workers - 1 : 0);
    unsigned count = 1 + lease_->granted();
    threads_.reserve(count);
    for (unsigned i = 0; i < count; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

Executor::~Executor()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
Executor::enqueueLocked(std::function<void()> task)
{
    queue_.push_back(std::move(task));
    counters_.accepted++;
    if (static_cast<int64_t>(queue_.size()) > counters_.maxQueueDepth)
        counters_.maxQueueDepth = static_cast<int64_t>(queue_.size());
}

Executor::Admit
Executor::trySubmit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (maxQueued_ != 0 && queue_.size() >= maxQueued_) {
            counters_.rejected++;
            return Admit::Overloaded;
        }
        enqueueLocked(std::move(task));
    }
    wake_.notify_one();
    return Admit::Accepted;
}

void
Executor::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        enqueueLocked(std::move(task));
    }
    wake_.notify_one();
}

void
Executor::drain()
{
    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        idle_.wait(lock,
                   [this] { return queue_.empty() && active_ == 0; });
        error = firstError_;
        firstError_ = nullptr;
    }
    if (error)
        std::rethrow_exception(error);
}

Executor::Counters
Executor::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

void
Executor::workerLoop()
{
    trace::Tracer::instance().nameCurrentThread(threadName_);
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        wake_.wait(lock,
                   [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) // stopping_ and drained
            return;
        std::function<void()> task = std::move(queue_.front());
        queue_.pop_front();
        active_++;
        lock.unlock();
        try {
            task();
        } catch (...) {
            std::lock_guard<std::mutex> errorLock(mutex_);
            if (!firstError_)
                firstError_ = std::current_exception();
        }
        lock.lock();
        active_--;
        counters_.executed++;
        if (queue_.empty() && active_ == 0)
            idle_.notify_all();
    }
}

} // namespace gpumc::serve
