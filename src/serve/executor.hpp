/**
 * @file
 * Queue-driven task executor shared by the batch path
 * (core::BatchVerifier fans its session groups through one) and the
 * gpumc-serve daemon (verification requests are admitted into one
 * long-lived instance).
 *
 * The executor owns a FIFO task queue drained by a fixed set of worker
 * threads. Two admission modes:
 *  - submit(): unbounded, never fails — the batch path, which owns its
 *    whole workload up front.
 *  - trySubmit(): bounded by `maxQueued` — the serving path, where a
 *    full queue must turn into a graceful `overloaded` response
 *    instead of unbounded memory growth (admission control).
 *
 * Thread accounting follows parallelFor: the creator is assumed to
 * block (in drain() or a server accept loop) while tasks run, so its
 * slot is lent to one worker and only `workers - 1` *helper* slots are
 * charged to the process-wide ThreadBudget. When the budget is
 * exhausted the executor degrades to a single worker — same results,
 * less parallelism — and never deadlocks.
 *
 * Exceptions thrown by tasks are captured; the first one is rethrown
 * by drain(). (BatchVerifier job bodies catch per-job failures
 * themselves, so anything reaching the executor is a programming
 * error, mirroring the old parallelFor contract.)
 */

#ifndef GPUMC_SERVE_EXECUTOR_HPP
#define GPUMC_SERVE_EXECUTOR_HPP

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "support/thread_budget.hpp"

namespace gpumc::serve {

class Executor {
  public:
    enum class Admit { Accepted, Overloaded };

    /**
     * @param workers    requested worker count; 0 = defaultConcurrency().
     *                   The actual count is 1 + however many helper
     *                   slots the ThreadBudget grants (at least 1).
     * @param maxQueued  trySubmit() bound; 0 = unbounded (batch mode).
     * @param threadName trace lane label for the workers.
     */
    explicit Executor(unsigned workers = 0, size_t maxQueued = 0,
                      const char *threadName = "executor");

    /** Drains the queue (pending tasks still run), then joins. */
    ~Executor();

    Executor(const Executor &) = delete;
    Executor &operator=(const Executor &) = delete;

    /** Worker threads actually running. */
    unsigned workers() const
    {
        return static_cast<unsigned>(threads_.size());
    }

    /**
     * Bounded admission: reject instead of queueing beyond maxQueued
     * (counting queued tasks only, not ones already executing). Never
     * blocks.
     */
    Admit trySubmit(std::function<void()> task);

    /** Unbounded admission for batch workloads. Never fails. */
    void submit(std::function<void()> task);

    /**
     * Block until the queue is empty and every worker is idle, then
     * rethrow the first exception any task raised (if any).
     */
    void drain();

    /** Lifetime counters (monotonic; thread-safe). */
    struct Counters {
        int64_t accepted = 0;
        int64_t rejected = 0;
        int64_t executed = 0;
        int64_t maxQueueDepth = 0;
    };
    Counters counters() const;

  private:
    void enqueueLocked(std::function<void()> task);
    void workerLoop();

    const size_t maxQueued_;
    const char *threadName_;
    std::optional<ThreadBudget::Lease> lease_;
    std::vector<std::thread> threads_;

    mutable std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable idle_;
    std::deque<std::function<void()>> queue_;
    size_t active_ = 0;
    bool stopping_ = false;
    std::exception_ptr firstError_;
    Counters counters_;
};

} // namespace gpumc::serve

#endif // GPUMC_SERVE_EXECUTOR_HPP
