/**
 * @file
 * Wire protocol of gpumc-serve: line-delimited JSON, one request
 * object per line in, one response object per line out.
 *
 * Request fields (all optional unless noted):
 *   op          "verify" (default) | "metrics" | "ping" | "shutdown"
 *   id          string or number, echoed verbatim into the response
 *   litmus      litmus source text (required for verify)
 *   model       model name resolved as <cat-dir>/<name>.cat
 *   model_source  inline .cat source (alternative to `model`)
 *   property    "program_spec" (default) | "cat_spec" | "liveness"
 *   bound       loop unroll bound (default 2)
 *   backend     "builtin" (default) | "z3" | "portfolio"
 *   timeout_ms  wall-clock budget for the whole request, admission to
 *               verdict (0 = unlimited, subject to the server cap)
 *   no_cache    bypass the result cache for this request
 *
 * Responses (see docs/SERVING.md for the full schema):
 *   {"id":..,"status":"ok","holds":..,"unknown":..,"detail":..,
 *    "cache":"hit"|"miss",...}
 *   {"id":..,"status":"overloaded"}          admission rejected
 *   {"id":..,"status":"error","message":..}  malformed request etc.
 */

#ifndef GPUMC_SERVE_PROTOCOL_HPP
#define GPUMC_SERVE_PROTOCOL_HPP

#include <cstdint>
#include <string>

#include "core/verifier.hpp"

namespace gpumc::serve {

/**
 * Upper bound on one request line. A line that reaches this size
 * without a newline is answered with an `error` response and input is
 * resynchronized at the next newline — a client bug must not make the
 * daemon buffer without limit.
 */
constexpr size_t kMaxLineBytes = 4u << 20;

enum class Op { Verify, Metrics, Ping, Shutdown };

struct Request {
    Op op = Op::Verify;
    /** Client correlation id, echoed verbatim (pre-serialized JSON:
     *  either a quoted string or a number literal). */
    std::string id = "null";
    std::string litmus;
    std::string model;
    std::string modelSource;
    core::Property property = core::Property::Safety;
    int bound = 2;
    smt::BackendKind backend = smt::BackendKind::Builtin;
    int64_t timeoutMs = 0;
    bool noCache = false;
};

/**
 * Parse one request line. On failure returns false and fills
 * @p error; @p out.id is still set when the line carried a usable id,
 * so the error response can be correlated.
 */
bool parseRequest(const std::string &line, Request &out,
                  std::string &error);

/** The canonical wire name of a property ("program_spec", ...). */
const char *propertyWireName(core::Property property);

// Response builders; all return one JSON object without the trailing
// newline. @p id is pre-serialized (Request::id).
std::string errorResponse(const std::string &id,
                          const std::string &message);
std::string overloadedResponse(const std::string &id);

} // namespace gpumc::serve

#endif // GPUMC_SERVE_PROTOCOL_HPP
