/**
 * @file
 * Relation analysis (Sections 6.2 of the paper, Table 3): computes
 * lower and upper bounds for every base and derived relation of a
 * `.cat` model over the events of an unrolled program.
 *
 * Semantics of the bounds (conditional on execution):
 *  - ub(r): every pair that can be in r in *some* behaviour.
 *  - lb(r): pairs that are in r in every behaviour *where both events
 *    execute*; the encoder replaces such pairs by exec(a) & exec(b).
 */

#ifndef GPUMC_ANALYSIS_RELATION_ANALYSIS_HPP
#define GPUMC_ANALYSIS_RELATION_ANALYSIS_HPP

#include <map>
#include <string>
#include <vector>

#include "analysis/dependency_analysis.hpp"
#include "analysis/exec_analysis.hpp"
#include "cat/model.hpp"
#include "cat/pair_set.hpp"

namespace gpumc::analysis {

struct Bounds {
    cat::PairSet lb;
    cat::PairSet ub;
};

class RelationAnalysis {
  public:
    RelationAnalysis(const ExecAnalysis &exec, const cat::CatModel &model);

    const prog::UnrolledProgram &unrolled() const
    {
        return exec_.unrolled();
    }
    const ExecAnalysis &exec() const { return exec_; }
    const cat::CatModel &model() const { return *model_; }
    const Dependencies &dependencies() const { return deps_; }

    /** Bounds of a base relation by its `.cat` name. */
    const Bounds &baseBounds(const std::string &name);

    /** Bounds of any relation-typed expression (memoized). */
    const Bounds &boundsOf(const cat::Expr &expr);

    /** Static membership mask of any set-typed expression (memoized). */
    const std::vector<bool> &setOf(const cat::Expr &expr);

  private:
    Bounds computeBase(const std::string &name);
    Bounds computeDerived(const cat::Expr &expr);
    std::vector<bool> computeSet(const cat::Expr &expr);

    int numEvents() const { return exec_.unrolled().numEvents(); }
    std::vector<int> allEventIds() const;

    const ExecAnalysis &exec_;
    const cat::CatModel *model_;
    Dependencies deps_;

    std::map<std::string, Bounds> baseCache_;
    std::map<const cat::Expr *, Bounds> exprCache_;
    std::map<const cat::Expr *, std::vector<bool>> setCache_;
    std::map<int, const cat::Expr *> letExpr_; // letIndex -> expr
};

} // namespace gpumc::analysis

#endif // GPUMC_ANALYSIS_RELATION_ANALYSIS_HPP
