#include "analysis/exec_analysis.hpp"

#include <deque>

namespace gpumc::analysis {

using prog::NodeSpecial;
using prog::UNode;

ExecAnalysis::ExecAnalysis(const prog::UnrolledProgram &up) : up_(&up)
{
    size_t n = up.nodes.size();
    reachedBy_.resize(n);
    topoPos_.assign(n, -1);
    unconditional_.assign(n, false);

    for (int t = 0; t < static_cast<int>(up.threadNodes.size()); ++t) {
        const std::vector<int> &order = up.threadNodes[t];
        int count = static_cast<int>(order.size());
        for (int pos = 0; pos < count; ++pos)
            topoPos_[order[pos]] = pos;

        // reachedBy via DP over predecessors in topological order.
        for (int pos = 0; pos < count; ++pos) {
            int node = order[pos];
            std::vector<bool> &set = reachedBy_[node];
            set.assign(count, false);
            set[pos] = true;
            for (const prog::UEdge &edge : up.nodes[node].preds) {
                const std::vector<bool> &predSet = reachedBy_[edge.from];
                for (int k = 0; k < count; ++k)
                    set[k] = set[k] || predSet[k];
            }
        }

        // A node is unconditional if every complete execution (one that
        // terminates at Exit or at a Kill node) passes through it.
        // Check: can a terminal node be reached from the entry while
        // avoiding this node?
        int entry = up.threadEntry[t];
        for (int candidate : order) {
            if (candidate == entry) {
                unconditional_[candidate] = true;
                continue;
            }
            // BFS from entry avoiding candidate.
            std::vector<bool> visited(count, false);
            std::deque<int> queue;
            visited[topoPos_[entry]] = true;
            queue.push_back(entry);
            bool terminalAvoiding = false;
            // successor lists derived from preds on the fly
            std::vector<std::vector<int>> succs(count);
            for (int node : order) {
                for (const prog::UEdge &edge : up.nodes[node].preds)
                    succs[topoPos_[edge.from]].push_back(node);
            }
            while (!queue.empty() && !terminalAvoiding) {
                int node = queue.front();
                queue.pop_front();
                const UNode &un = up.nodes[node];
                if (un.special == NodeSpecial::Exit ||
                    un.special == NodeSpecial::Kill) {
                    terminalAvoiding = true;
                    break;
                }
                for (int next : succs[topoPos_[node]]) {
                    if (next == candidate)
                        continue;
                    if (!visited[topoPos_[next]]) {
                        visited[topoPos_[next]] = true;
                        queue.push_back(next);
                    }
                }
            }
            unconditional_[candidate] = !terminalAvoiding;
        }
    }
}

bool
ExecAnalysis::nodeReaches(int from, int to) const
{
    if (up_->nodes[from].thread != up_->nodes[to].thread)
        return false;
    return reachedBy_[to][topoPos_[from]];
}

bool
ExecAnalysis::mutExcl(int e1, int e2) const
{
    const prog::Event &a = up_->events[e1];
    const prog::Event &b = up_->events[e2];
    if (a.isInit || b.isInit || a.thread != b.thread)
        return false;
    if (a.uNode == b.uNode)
        return false;
    return !nodeReaches(a.uNode, b.uNode) && !nodeReaches(b.uNode, a.uNode);
}

bool
ExecAnalysis::poBefore(int e1, int e2) const
{
    const prog::Event &a = up_->events[e1];
    const prog::Event &b = up_->events[e2];
    if (a.isInit || b.isInit || a.thread != b.thread || e1 == e2)
        return false;
    if (a.uNode == b.uNode) {
        // RMW read precedes its write.
        return a.kind == prog::EventKind::Read &&
               b.kind == prog::EventKind::Write;
    }
    return nodeReaches(a.uNode, b.uNode);
}

bool
ExecAnalysis::eventUnconditional(int e) const
{
    const prog::Event &ev = up_->events[e];
    if (ev.isInit)
        return true;
    return unconditional_[ev.uNode];
}

} // namespace gpumc::analysis
