#include "analysis/concrete_execution.hpp"

#include <algorithm>
#include <optional>

#include "program/event.hpp"

namespace gpumc::analysis {

using cat::PairSet;
using prog::Event;
using prog::EventKind;
using prog::Opcode;
using prog::RmwKind;

const PairSet &
ConcreteView::baseRel(const std::string &name) const
{
    auto it = rels_.find(name);
    GPUMC_ASSERT(it != rels_.end(), "unknown base relation ", name);
    return it->second;
}

bool
condUsesMemory(const prog::Cond &cond)
{
    switch (cond.kind) {
      case prog::Cond::Kind::And:
      case prog::Cond::Kind::Or:
        return condUsesMemory(*cond.lhs) || condUsesMemory(*cond.rhs);
      case prog::Cond::Kind::Not:
        return condUsesMemory(*cond.lhs);
      case prog::Cond::Kind::Eq:
      case prog::Cond::Kind::Ne:
        return cond.tl.kind == prog::CondTerm::Kind::Mem ||
               cond.tr.kind == prog::CondTerm::Kind::Mem;
      case prog::Cond::Kind::True:
        return false;
    }
    return false;
}

bool
ValueSimulation::simulate(const std::vector<int> &reads,
                          const std::vector<int> &rfChoice)
{
    reads_ = &reads;
    rfChoice_ = &rfChoice;
    values_.clear();
    barrierIds_.clear();
    finalRegs_.clear();
    for (int e = 0; e < up_->numInitEvents; ++e)
        values_[e] = up_->events[e].initValue & kConcreteValueMask;

    // Fix-point passes; each pass may resolve more reads.
    bool changed = true;
    int guardPasses = up_->numEvents() + 2;
    while (changed && guardPasses-- > 0) {
        changed = false;
        simulatePass(changed);
    }

    // Unresolved reads form value-dependency cycles; enumerate them
    // over the program's value universe.
    std::vector<int> unresolved;
    for (size_t i = 0; i < reads.size(); ++i) {
        if (!values_.count(reads[i]))
            unresolved.push_back(static_cast<int>(i));
    }
    if (unresolved.empty())
        return finishSimulation();
    return enumerateUnresolved(unresolved, 0);
}

bool
ValueSimulation::enumerateUnresolved(const std::vector<int> &unresolved,
                                     size_t index)
{
    if (index == unresolved.size())
        return finishSimulation();
    for (int64_t v : program_->valueUniverse()) {
        values_[(*reads_)[unresolved[index]]] = v & kConcreteValueMask;
        if (enumerateUnresolved(unresolved, index + 1))
            return true;
    }
    values_.erase((*reads_)[unresolved[index]]);
    return false;
}

bool
ValueSimulation::finishSimulation()
{
    bool changed = true;
    simulatePass(changed); // recompute with all reads bound
    for (size_t i = 0; i < reads_->size(); ++i) {
        int r = (*reads_)[i], w = (*rfChoice_)[i];
        if (!values_.count(r) || !values_.count(w) ||
            values_[r] != values_[w]) {
            return false;
        }
    }
    return true;
}

void
ValueSimulation::simulatePass(bool &changed)
{
    for (int t = 0; t < program_->numThreads(); ++t) {
        std::map<std::string, std::optional<int64_t>> env;
        auto evalOp =
            [&](const prog::Operand &op) -> std::optional<int64_t> {
            if (!op.isReg())
                return op.value & kConcreteValueMask;
            auto it = env.find(op.reg);
            if (it == env.end())
                return 0; // unassigned registers read 0
            return it->second;
        };
        auto setValue = [&](int event, std::optional<int64_t> v) {
            if (!v)
                return;
            int64_t masked = *v & kConcreteValueMask;
            auto it = values_.find(event);
            if (it == values_.end() || it->second != masked) {
                values_[event] = masked;
                changed = true;
            }
        };

        for (int idx : up_->threadNodes[t]) {
            const prog::UNode &node = up_->nodes[idx];
            if (node.special != prog::NodeSpecial::None || !node.instr)
                continue;
            const prog::Instruction &ins = *node.instr;
            switch (ins.op) {
              case Opcode::Load: {
                // The read's value comes from its rf source.
                auto pos = std::find(reads_->begin(), reads_->end(),
                                     node.readEvent);
                int w = (*rfChoice_)[pos - reads_->begin()];
                std::optional<int64_t> v;
                if (values_.count(node.readEvent)) {
                    v = values_[node.readEvent]; // enumerated cycle
                } else if (values_.count(w)) {
                    v = values_[w];
                    setValue(node.readEvent, v);
                }
                env[ins.dst] = v;
                break;
              }
              case Opcode::Store:
                setValue(node.writeEvent, evalOp(ins.src));
                break;
              case Opcode::Rmw: {
                auto pos = std::find(reads_->begin(), reads_->end(),
                                     node.readEvent);
                int w = (*rfChoice_)[pos - reads_->begin()];
                std::optional<int64_t> old;
                if (values_.count(node.readEvent))
                    old = values_[node.readEvent];
                else if (values_.count(w)) {
                    old = values_[w];
                    setValue(node.readEvent, old);
                }
                std::optional<int64_t> operand = evalOp(ins.src);
                if (ins.rmwKind == RmwKind::Add) {
                    if (old && operand)
                        setValue(node.writeEvent, *old + *operand);
                } else { // Exchange
                    setValue(node.writeEvent, operand);
                }
                env[ins.dst] = old;
                break;
              }
              case Opcode::Barrier: {
                std::optional<int64_t> id = evalOp(ins.barrierId);
                if (id)
                    barrierIds_[node.eventId] = *id & kConcreteValueMask;
                break;
              }
              case Opcode::Mov:
                env[ins.dst] = evalOp(ins.src);
                break;
              case Opcode::AddReg: {
                auto a = evalOp(ins.branchLhs), b = evalOp(ins.src);
                env[ins.dst] = (a && b)
                    ? std::optional<int64_t>(
                          (*a + *b) & kConcreteValueMask)
                    : std::nullopt;
                break;
              }
              default:
                break;
            }
        }
        for (const auto &[reg, v] : env) {
            if (v) {
                finalRegs_[program_->threads[t].name + ":" + reg] = *v;
            }
        }
    }
}

int64_t
ValueSimulation::evalTerm(const prog::CondTerm &term,
                          const PairSet &co) const
{
    switch (term.kind) {
      case prog::CondTerm::Kind::Const:
        return term.value;
      case prog::CondTerm::Kind::Reg: {
        std::string key =
            "P" + std::to_string(term.thread) + ":" + term.name;
        auto it = finalRegs_.find(key);
        return it == finalRegs_.end() ? 0 : it->second;
      }
      case prog::CondTerm::Kind::Mem: {
        int loc = program_->physLoc(term.name);
        // co-maximal executed write to loc.
        for (int e = 0; e < up_->numEvents(); ++e) {
            const Event &ev = up_->events[e];
            if (ev.kind != EventKind::Write || ev.physLoc != loc)
                continue;
            bool maximal = true;
            for (auto [a, b] : co.pairs()) {
                (void)b;
                if (a == e)
                    maximal = false;
            }
            if (maximal) {
                auto it = values_.find(e);
                return it == values_.end() ? 0 : it->second;
            }
        }
        return 0;
      }
    }
    GPUMC_PANIC("unhandled term");
}

std::map<std::string, PairSet>
concreteStaticRels(RelationAnalysis &ra,
                   const std::map<int, int64_t> &barrierIds)
{
    std::map<std::string, PairSet> rels;
    for (const char *name :
         {"po", "loc", "vloc", "id", "int", "ext", "addr", "data",
          "ctrl", "rmw", "sr", "scta", "ssg", "swg", "sqf", "ssw"}) {
        rels[name] = ra.baseBounds(name).ub;
    }
    // Barrier relations from the concrete runtime ids.
    for (const char *name : {"syncbar", "sync_barrier"}) {
        PairSet out;
        for (auto [a, b] : ra.baseBounds(name).ub.pairs()) {
            auto ia = barrierIds.find(a), ib = barrierIds.find(b);
            if (ia != barrierIds.end() && ib != barrierIds.end() &&
                ia->second == ib->second) {
                out.add(a, b);
            }
        }
        rels[name] = std::move(out);
    }
    return rels;
}

std::map<int, std::vector<int>>
concreteWritesPerLoc(const prog::UnrolledProgram &up)
{
    std::map<int, std::vector<int>> out;
    for (int e = up.numInitEvents; e < up.numEvents(); ++e) {
        const Event &ev = up.events[e];
        if (ev.kind == EventKind::Write)
            out[ev.physLoc].push_back(e);
    }
    return out;
}

PairSet
concreteInitCoEdges(const prog::UnrolledProgram &up)
{
    PairSet co;
    for (int i = 0; i < up.numInitEvents; ++i) {
        for (int e = up.numInitEvents; e < up.numEvents(); ++e) {
            const Event &ev = up.events[e];
            if (ev.kind == EventKind::Write &&
                ev.physLoc == up.events[i].physLoc) {
                co.add(i, e);
            }
        }
    }
    return co;
}

} // namespace gpumc::analysis
