#include "analysis/relation_analysis.hpp"

#include "program/event.hpp"
#include "support/trace.hpp"

namespace gpumc::analysis {

using cat::Expr;
using cat::ExprKind;
using cat::NameRes;
using cat::PairSet;
using prog::Event;
using prog::EventKind;
using prog::Scope;
using prog::UnrolledProgram;

RelationAnalysis::RelationAnalysis(const ExecAnalysis &exec,
                                   const cat::CatModel &model)
    : exec_(exec), model_(&model),
      deps_(computeDependencies(exec.unrolled()))
{
}

std::vector<int>
RelationAnalysis::allEventIds() const
{
    std::vector<int> out(numEvents());
    for (int i = 0; i < numEvents(); ++i)
        out[i] = i;
    return out;
}

const Bounds &
RelationAnalysis::baseBounds(const std::string &name)
{
    auto it = baseCache_.find(name);
    if (it != baseCache_.end())
        return it->second;
    const Bounds &bounds =
        baseCache_.emplace(name, computeBase(name)).first->second;
    trace::Tracer &tracer = trace::Tracer::instance();
    if (tracer.enabled()) {
        // Gauge semantics: keep the largest bound seen, so batch runs
        // over many programs report the worst-case pair-set sizes.
        tracer.counterMax("rel." + name + ".ubPairs",
                          static_cast<int64_t>(bounds.ub.size()));
        tracer.counterMax("rel." + name + ".lbPairs",
                          static_cast<int64_t>(bounds.lb.size()));
    }
    return bounds;
}

Bounds
RelationAnalysis::computeBase(const std::string &name)
{
    const UnrolledProgram &up = exec_.unrolled();
    const prog::Program &program = *up.program;
    int n = numEvents();
    Bounds b;

    auto forAllPairs = [&](auto &&pred) {
        for (int i = 0; i < n; ++i) {
            for (int j = 0; j < n; ++j) {
                if (i != j && !exec_.mutExcl(i, j) &&
                    pred(up.events[i], up.events[j])) {
                    b.lb.add(i, j);
                    b.ub.add(i, j);
                }
            }
        }
    };
    auto forAllPairsWithId = [&](auto &&pred) {
        for (int i = 0; i < n; ++i) {
            for (int j = 0; j < n; ++j) {
                if (!exec_.mutExcl(i, j) &&
                    pred(up.events[i], up.events[j])) {
                    b.lb.add(i, j);
                    b.ub.add(i, j);
                }
            }
        }
    };
    auto placement = [&](const Event &e) -> const prog::ThreadPlacement & {
        static const prog::ThreadPlacement initPlacement{};
        return e.isInit ? initPlacement
                        : program.threads[e.thread].placement;
    };

    if (name == "po") {
        for (int i = 0; i < n; ++i) {
            for (int j = 0; j < n; ++j) {
                if (exec_.poBefore(i, j)) {
                    b.lb.add(i, j);
                    b.ub.add(i, j);
                }
            }
        }
        return b;
    }
    if (name == "id") {
        for (int i = 0; i < n; ++i) {
            b.lb.add(i, i);
            b.ub.add(i, i);
        }
        return b;
    }
    if (name == "int") {
        forAllPairsWithId([](const Event &a, const Event &c) {
            if (a.isInit || c.isInit)
                return a.id == c.id;
            return a.thread == c.thread;
        });
        return b;
    }
    if (name == "ext") {
        forAllPairs([](const Event &a, const Event &c) {
            if (a.isInit || c.isInit)
                return true;
            return a.thread != c.thread;
        });
        return b;
    }
    if (name == "loc") {
        forAllPairsWithId([](const Event &a, const Event &c) {
            return a.isMemory() && c.isMemory() && a.physLoc == c.physLoc;
        });
        return b;
    }
    if (name == "vloc") {
        forAllPairsWithId([](const Event &a, const Event &c) {
            return a.isMemory() && c.isMemory() && a.virtLoc == c.virtLoc;
        });
        return b;
    }
    if (name == "rf") {
        // Free relation: lb empty, ub = same-location write/read pairs.
        for (int i = 0; i < n; ++i) {
            const Event &w = up.events[i];
            if (w.kind != EventKind::Write)
                continue;
            for (int j = 0; j < n; ++j) {
                const Event &r = up.events[j];
                if (r.kind != EventKind::Read || w.physLoc != r.physLoc)
                    continue;
                if (!exec_.mutExcl(i, j))
                    b.ub.add(i, j);
            }
        }
        return b;
    }
    if (name == "co") {
        // Free relation: pairs of writes to the same location. Init
        // writes are first in co, so nothing may precede them.
        for (int i = 0; i < n; ++i) {
            const Event &w1 = up.events[i];
            if (w1.kind != EventKind::Write)
                continue;
            for (int j = 0; j < n; ++j) {
                const Event &w2 = up.events[j];
                if (i == j || w2.kind != EventKind::Write ||
                    w2.isInit || w1.physLoc != w2.physLoc) {
                    continue;
                }
                if (!exec_.mutExcl(i, j)) {
                    b.ub.add(i, j);
                    // Init writes are first in co whenever the other
                    // write executes: a lower-bound pair.
                    if (w1.isInit)
                        b.lb.add(i, j);
                }
            }
        }
        return b;
    }
    if (name == "rmw") {
        for (int i = 0; i < n; ++i) {
            const Event &e = up.events[i];
            if (e.rmwPartner >= 0 && e.kind == EventKind::Read) {
                b.lb.add(i, e.rmwPartner);
                b.ub.add(i, e.rmwPartner);
            }
        }
        return b;
    }
    if (name == "addr")
        return b; // static addressing: empty
    if (name == "data") {
        b.lb = deps_.data;
        b.ub = deps_.data;
        return b;
    }
    if (name == "ctrl") {
        b.lb = deps_.ctrl;
        b.ub = deps_.ctrl;
        return b;
    }
    if (name == "sr") {
        // Both events' instruction scopes must reach the other thread
        // (Table 3: visibleFrom in both directions).
        forAllPairsWithId([&](const Event &a, const Event &c) {
            return prog::scopeIncludes(placement(a), a.scope,
                                       placement(c)) &&
                   prog::scopeIncludes(placement(c), c.scope,
                                       placement(a));
        });
        return b;
    }
    if (name == "scta") {
        forAllPairsWithId([&](const Event &a, const Event &c) {
            if (a.isInit || c.isInit)
                return false;
            return prog::sameCta(placement(a), placement(c));
        });
        return b;
    }
    if (name == "ssg" || name == "swg" || name == "sqf") {
        forAllPairsWithId([&](const Event &a, const Event &c) {
            if (a.isInit || c.isInit)
                return false;
            if (name == "ssg")
                return prog::sameSg(placement(a), placement(c));
            if (name == "swg")
                return prog::sameWg(placement(a), placement(c));
            return prog::sameQf(placement(a), placement(c));
        });
        return b;
    }
    if (name == "ssw") {
        forAllPairs([&](const Event &a, const Event &c) {
            if (a.isInit || c.isInit)
                return false;
            return program.threads[a.thread].placement.ssw &&
                   program.threads[c.thread].placement.ssw;
        });
        return b;
    }
    if (name == "syncbar" || name == "sync_barrier") {
        bool requireSameCta = name == "sync_barrier";
        for (int i = 0; i < n; ++i) {
            const Event &a = up.events[i];
            if (a.kind != EventKind::Barrier)
                continue;
            for (int j = 0; j < n; ++j) {
                const Event &c = up.events[j];
                if (i == j || c.kind != EventKind::Barrier ||
                    exec_.mutExcl(i, j)) {
                    continue;
                }
                if (requireSameCta &&
                    !prog::sameCta(placement(a), placement(c))) {
                    continue;
                }
                const prog::Operand &ida = a.instr->barrierId;
                const prog::Operand &idc = c.instr->barrierId;
                bool bothConst = !ida.isReg() && !idc.isReg();
                if (bothConst && ida.value != idc.value)
                    continue; // statically different ids
                b.ub.add(i, j);
                if (bothConst && ida.value == idc.value)
                    b.lb.add(i, j);
            }
        }
        return b;
    }
    if (name == "sync_fence") {
        // Upper bound: pairs of SC fences within reachable scope.
        const PairSet &sr = baseBounds("sr").ub;
        for (auto [i, j] : sr.pairs()) {
            if (i == j)
                continue;
            const Event &a = up.events[i];
            const Event &c = up.events[j];
            if (a.kind == EventKind::Fence && c.kind == EventKind::Fence &&
                a.tags.count("SC") && c.tags.count("SC")) {
                b.ub.add(i, j);
            }
        }
        return b;
    }
    GPUMC_PANIC("no bounds rule for base relation ", name);
}

const std::vector<bool> &
RelationAnalysis::setOf(const Expr &expr)
{
    auto it = setCache_.find(&expr);
    if (it != setCache_.end())
        return it->second;
    return setCache_.emplace(&expr, computeSet(expr)).first->second;
}

std::vector<bool>
RelationAnalysis::computeSet(const Expr &expr)
{
    GPUMC_ASSERT(expr.type == cat::ExprType::Set);
    const UnrolledProgram &up = exec_.unrolled();
    int n = numEvents();
    switch (expr.kind) {
      case ExprKind::Name: {
        if (expr.resolution == NameRes::LetRef)
            return setOf(*model_->lets()[expr.letIndex].expr);
        std::vector<bool> out(n, false);
        for (int i = 0; i < n; ++i)
            out[i] = prog::eventHasTag(up.events[i], expr.name);
        return out;
      }
      case ExprKind::Union: {
        std::vector<bool> a = setOf(expr.lhs.operator*()),
                          c = setOf(*expr.rhs);
        for (int i = 0; i < n; ++i)
            a[i] = a[i] || c[i];
        return a;
      }
      case ExprKind::Inter: {
        std::vector<bool> a = setOf(*expr.lhs), c = setOf(*expr.rhs);
        for (int i = 0; i < n; ++i)
            a[i] = a[i] && c[i];
        return a;
      }
      case ExprKind::Diff: {
        std::vector<bool> a = setOf(*expr.lhs), c = setOf(*expr.rhs);
        for (int i = 0; i < n; ++i)
            a[i] = a[i] && !c[i];
        return a;
      }
      default:
        GPUMC_PANIC("expression is not a set");
    }
}

const Bounds &
RelationAnalysis::boundsOf(const Expr &expr)
{
    auto it = exprCache_.find(&expr);
    if (it != exprCache_.end())
        return it->second;
    Bounds bounds = computeDerived(expr);
    return exprCache_.emplace(&expr, std::move(bounds)).first->second;
}

Bounds
RelationAnalysis::computeDerived(const Expr &expr)
{
    GPUMC_ASSERT(expr.type == cat::ExprType::Rel);
    int n = numEvents();
    switch (expr.kind) {
      case ExprKind::Name: {
        if (expr.resolution == NameRes::LetRef)
            return boundsOf(*model_->lets()[expr.letIndex].expr);
        return baseBounds(expr.name);
      }
      case ExprKind::Union: {
        const Bounds &a = boundsOf(*expr.lhs);
        const Bounds &c = boundsOf(*expr.rhs);
        return {a.lb.unionWith(c.lb), a.ub.unionWith(c.ub)};
      }
      case ExprKind::Inter: {
        const Bounds &a = boundsOf(*expr.lhs);
        const Bounds &c = boundsOf(*expr.rhs);
        return {a.lb.intersectWith(c.lb), a.ub.intersectWith(c.ub)};
      }
      case ExprKind::Diff: {
        const Bounds &a = boundsOf(*expr.lhs);
        const Bounds &c = boundsOf(*expr.rhs);
        return {a.lb.minus(c.ub), a.ub.minus(c.lb)};
      }
      case ExprKind::Seq: {
        const Bounds &a = boundsOf(*expr.lhs);
        const Bounds &c = boundsOf(*expr.rhs);
        Bounds out;
        out.ub = a.ub.compose(c.ub);
        // Lower-bound composition is only safe through intermediates
        // that execute unconditionally.
        PairSet composedLb = a.lb.compose(c.lb);
        for (auto [i, j] : a.lb.pairs()) {
            for (auto [k, l] : c.lb.pairs()) {
                if (j == k && exec_.eventUnconditional(j) &&
                    composedLb.contains(i, l)) {
                    out.lb.add(i, l);
                }
            }
        }
        return out;
      }
      case ExprKind::Cartesian: {
        const std::vector<bool> &a = setOf(*expr.lhs);
        const std::vector<bool> &c = setOf(*expr.rhs);
        Bounds out;
        for (int i = 0; i < n; ++i) {
            if (!a[i])
                continue;
            for (int j = 0; j < n; ++j) {
                if (c[j] && !exec_.mutExcl(i, j)) {
                    out.lb.add(i, j);
                    out.ub.add(i, j);
                }
            }
        }
        return out;
      }
      case ExprKind::Inverse: {
        const Bounds &a = boundsOf(*expr.lhs);
        return {a.lb.inverse(), a.ub.inverse()};
      }
      case ExprKind::TransClosure: {
        const Bounds &a = boundsOf(*expr.lhs);
        return {a.lb, a.ub.transitiveClosure()};
      }
      case ExprKind::ReflTransClosure: {
        const Bounds &a = boundsOf(*expr.lhs);
        std::vector<int> ids(n);
        for (int i = 0; i < n; ++i)
            ids[i] = i;
        return {a.lb.withIdentity(ids),
                a.ub.transitiveClosure().withIdentity(ids)};
      }
      case ExprKind::Optional: {
        const Bounds &a = boundsOf(*expr.lhs);
        std::vector<int> ids(n);
        for (int i = 0; i < n; ++i)
            ids[i] = i;
        return {a.lb.withIdentity(ids), a.ub.withIdentity(ids)};
      }
      case ExprKind::Bracket: {
        const std::vector<bool> &set = setOf(*expr.lhs);
        Bounds out;
        for (int i = 0; i < n; ++i) {
            if (set[i]) {
                out.lb.add(i, i);
                out.ub.add(i, i);
            }
        }
        return out;
      }
    }
    GPUMC_PANIC("unhandled expression kind");
}

} // namespace gpumc::analysis
