/**
 * @file
 * Structural analysis of an unrolled program: intra-thread node
 * reachability, mutual exclusion of events, program-order positions and
 * unconditional-execution detection. This feeds the relation analysis
 * (Table 3 of the paper) and the encoder.
 */

#ifndef GPUMC_ANALYSIS_EXEC_ANALYSIS_HPP
#define GPUMC_ANALYSIS_EXEC_ANALYSIS_HPP

#include <map>
#include <vector>

#include "program/unroller.hpp"

namespace gpumc::analysis {

class ExecAnalysis {
  public:
    explicit ExecAnalysis(const prog::UnrolledProgram &up);

    const prog::UnrolledProgram &unrolled() const { return *up_; }

    /** Can node @p from reach node @p to (same thread, from != to ok)? */
    bool nodeReaches(int from, int to) const;

    /**
     * Two events can never execute in the same behaviour (same thread,
     * on incomparable control-flow paths). Init events are never
     * mutually exclusive with anything.
     */
    bool mutExcl(int e1, int e2) const;

    /** Topological position of a node within its thread. */
    int topoPos(int node) const { return topoPos_[node]; }

    /**
     * Program-order: both events in the same (non-init) thread and the
     * first one's node reaches the second one's node.
     */
    bool poBefore(int e1, int e2) const;

    /** Node executes in every complete execution of its thread. */
    bool unconditional(int node) const { return unconditional_[node]; }

    /** Event executes in every complete execution (init: always). */
    bool eventUnconditional(int e) const;

  private:
    const prog::UnrolledProgram *up_;
    // reach_[n] = set of nodes that can reach n (same thread), as a
    // bitset over topological positions within the thread.
    std::vector<std::vector<bool>> reachedBy_; // indexed by node
    std::vector<int> topoPos_;
    std::vector<bool> unconditional_;
};

} // namespace gpumc::analysis

#endif // GPUMC_ANALYSIS_EXEC_ANALYSIS_HPP
