#include "analysis/dependency_analysis.hpp"

#include <map>
#include <set>
#include <string>

namespace gpumc::analysis {

using prog::NodeSpecial;
using prog::Opcode;
using prog::Operand;
using prog::RmwKind;
using prog::UNode;

namespace {

using ReadSet = std::set<int>;

struct NodeState {
    std::map<std::string, ReadSet> regSources;
    ReadSet ctrlReads;

    void mergeFrom(const NodeState &other)
    {
        for (const auto &[reg, reads] : other.regSources)
            regSources[reg].insert(reads.begin(), reads.end());
        ctrlReads.insert(other.ctrlReads.begin(), other.ctrlReads.end());
    }
};

ReadSet
operandSources(const NodeState &state, const Operand &op)
{
    if (!op.isReg())
        return {};
    auto it = state.regSources.find(op.reg);
    return it == state.regSources.end() ? ReadSet{} : it->second;
}

} // namespace

Dependencies
computeDependencies(const prog::UnrolledProgram &up)
{
    Dependencies deps;

    for (size_t t = 0; t < up.threadNodes.size(); ++t) {
        std::map<int, NodeState> states; // node -> incoming state

        for (int idx : up.threadNodes[t]) {
            const UNode &node = up.nodes[idx];
            NodeState state;
            for (const prog::UEdge &edge : node.preds) {
                auto it = states.find(edge.from);
                if (it != states.end())
                    state.mergeFrom(it->second);
                // Branch outcome adds control dependencies downstream.
                const UNode &pred = up.nodes[edge.from];
                if (pred.instr && pred.instr->isBranch()) {
                    NodeState &predState = states[edge.from];
                    ReadSet lhs =
                        operandSources(predState, pred.instr->branchLhs);
                    ReadSet rhs =
                        operandSources(predState, pred.instr->branchRhs);
                    state.ctrlReads.insert(lhs.begin(), lhs.end());
                    state.ctrlReads.insert(rhs.begin(), rhs.end());
                }
            }

            if (node.special != NodeSpecial::None || !node.instr) {
                states.emplace(idx, std::move(state));
                continue;
            }
            const prog::Instruction &ins = *node.instr;

            // Control dependencies to every event this node produces.
            for (int ev : {node.readEvent, node.writeEvent, node.eventId}) {
                if (ev < 0)
                    continue;
                for (int read : state.ctrlReads)
                    deps.ctrl.add(read, ev);
            }

            switch (ins.op) {
              case Opcode::Load:
                state.regSources[ins.dst] = {node.readEvent};
                break;
              case Opcode::Store:
                for (int read : operandSources(state, ins.src))
                    deps.data.add(read, node.writeEvent);
                break;
              case Opcode::Rmw: {
                // The write half depends on operand sources; for
                // fetch-add it also depends on the read half. CAS
                // success depends on the read half (modelled as data).
                for (int read : operandSources(state, ins.src))
                    deps.data.add(read, node.writeEvent);
                for (int read : operandSources(state, ins.src2))
                    deps.data.add(read, node.writeEvent);
                if (ins.rmwKind == RmwKind::Add ||
                    ins.rmwKind == RmwKind::Cas) {
                    deps.data.add(node.readEvent, node.writeEvent);
                }
                state.regSources[ins.dst] = {node.readEvent};
                break;
              }
              case Opcode::Mov:
                state.regSources[ins.dst] = operandSources(state, ins.src);
                break;
              case Opcode::AddReg: {
                ReadSet sources = operandSources(state, ins.branchLhs);
                ReadSet rhs = operandSources(state, ins.src);
                sources.insert(rhs.begin(), rhs.end());
                state.regSources[ins.dst] = std::move(sources);
                break;
              }
              default:
                break;
            }
            states.emplace(idx, std::move(state));
        }
    }
    return deps;
}

} // namespace gpumc::analysis
