/**
 * @file
 * Syntactic dependency analysis over the unrolled program: computes the
 * `data` and `ctrl` base relations (may-approximation) used by the
 * No-Thin-Air axiom (`acyclic (rf | dep)` in the PTX model).
 *
 * `addr` is always empty because gpumc programs use static addressing.
 */

#ifndef GPUMC_ANALYSIS_DEPENDENCY_ANALYSIS_HPP
#define GPUMC_ANALYSIS_DEPENDENCY_ANALYSIS_HPP

#include "analysis/exec_analysis.hpp"
#include "cat/pair_set.hpp"

namespace gpumc::analysis {

struct Dependencies {
    cat::PairSet data; // read event -> value-dependent write event
    cat::PairSet ctrl; // read event -> branch-controlled later event
};

/** Compute syntactic dependencies for all threads. */
Dependencies computeDependencies(const prog::UnrolledProgram &up);

} // namespace gpumc::analysis

#endif // GPUMC_ANALYSIS_DEPENDENCY_ANALYSIS_HPP
