/**
 * @file
 * Shared machinery for engines that evaluate `.cat` models over
 * *concrete* executions (explicit enumeration in `src/explicit`, DPOR
 * exploration in `src/dpor`): an ExecutionView backed by materialized
 * base relations, the straight-line value simulator that resolves
 * register/memory values under one rf assignment, and the static base
 * relations derived from RelationAnalysis bounds.
 */

#ifndef GPUMC_ANALYSIS_CONCRETE_EXECUTION_HPP
#define GPUMC_ANALYSIS_CONCRETE_EXECUTION_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/relation_analysis.hpp"
#include "cat/evaluator.hpp"
#include "cat/pair_set.hpp"
#include "program/program.hpp"
#include "program/unroller.hpp"

namespace gpumc::analysis {

/** Simulated values are truncated to this many bits (matching the SMT
 *  encoder's default value width for litmus-scale programs). */
constexpr int kConcreteValueBits = 8;
constexpr int64_t kConcreteValueMask = (1 << kConcreteValueBits) - 1;

/**
 * ExecutionView over one concrete (possibly partial) behaviour: every
 * event of the unrolled program executes, and base relations are
 * materialized PairSets. Engines that grow relations incrementally can
 * mutate them in place through rel().
 */
class ConcreteView : public cat::ExecutionView {
  public:
    ConcreteView(const prog::UnrolledProgram &up,
                 std::map<std::string, cat::PairSet> rels)
        : up_(&up), rels_(std::move(rels))
    {
    }

    int numEvents() const override { return up_->numEvents(); }

    bool inSet(int event, const std::string &tag) const override
    {
        return prog::eventHasTag(up_->events[event], tag);
    }

    const cat::PairSet &baseRel(const std::string &name) const override;

    /** Mutable access for incremental engines. */
    cat::PairSet &rel(const std::string &name) { return rels_[name]; }

  private:
    const prog::UnrolledProgram *up_;
    std::map<std::string, cat::PairSet> rels_;
};

/** Does a final-state condition mention memory-valued terms? */
bool condUsesMemory(const prog::Cond &cond);

/**
 * Value simulation of a straight-line unrolled program under one rf
 * assignment: fix-point register propagation, enumeration of
 * value-dependency cycles over the program's value universe, and
 * rf value-consistency validation.
 */
class ValueSimulation {
  public:
    ValueSimulation(const prog::Program &program,
                    const prog::UnrolledProgram &up)
        : program_(&program), up_(&up)
    {
    }

    /**
     * Simulate all threads with read event reads[i] taking its value
     * from write rfChoice[i]. Returns false when the assignment is
     * value-inconsistent (no resolution matches every rf edge).
     */
    bool simulate(const std::vector<int> &reads,
                  const std::vector<int> &rfChoice);

    /** Event id -> simulated value (after a successful simulate()). */
    const std::map<int, int64_t> &values() const { return values_; }

    /** Barrier event id -> runtime barrier id. */
    const std::map<int, int64_t> &barrierIds() const
    {
        return barrierIds_;
    }

    /** "P0:r1" -> final register value. */
    const std::map<std::string, int64_t> &finalRegs() const
    {
        return finalRegs_;
    }

    /**
     * Evaluate one final-state condition term. Mem terms read the
     * co-maximal executed write of the location under @p co.
     */
    int64_t evalTerm(const prog::CondTerm &term,
                     const cat::PairSet &co) const;

  private:
    bool enumerateUnresolved(const std::vector<int> &unresolved,
                             size_t index);
    bool finishSimulation();
    void simulatePass(bool &changed);

    const prog::Program *program_;
    const prog::UnrolledProgram *up_;
    const std::vector<int> *reads_ = nullptr;
    const std::vector<int> *rfChoice_ = nullptr;

    std::map<int, int64_t> values_;
    std::map<int, int64_t> barrierIds_;
    std::map<std::string, int64_t> finalRegs_;
};

/**
 * The base relations that are fixed for a straight-line program once
 * values are simulated: the analysis upper bounds of the static
 * relations plus the barrier relations filtered down to pairs with
 * equal runtime barrier ids. rf / co / sync_fence are left for the
 * caller to fill in.
 */
std::map<std::string, cat::PairSet>
concreteStaticRels(RelationAnalysis &ra,
                   const std::map<int, int64_t> &barrierIds);

/** Non-init write events per physical location. */
std::map<int, std::vector<int>>
concreteWritesPerLoc(const prog::UnrolledProgram &up);

/** init-write -> same-location non-init write edges (always in co). */
cat::PairSet concreteInitCoEdges(const prog::UnrolledProgram &up);

} // namespace gpumc::analysis

#endif // GPUMC_ANALYSIS_CONCRETE_EXECUTION_HPP
