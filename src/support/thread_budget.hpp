/**
 * @file
 * Process-wide thread budget shared by every parallelism axis.
 *
 * gpumc now has three independent sources of threads — BatchVerifier
 * workers, the portfolio solver's racing lanes and the builtin
 * solver's cube-and-conquer farm — and each used to size itself from
 * defaultConcurrency(), multiplying into jobs x backends x cubes
 * threads. The budget makes `--jobs=N` mean what it says: every layer
 * asks the budget for helper slots before spawning, and gracefully
 * degrades to sequential execution when none are available.
 *
 * Accounting counts *helper* threads only: the calling thread is free
 * (it either does a share of the work itself or blocks while lending
 * its slot to one worker), so a budget of N grants at most N - 1
 * helper slots in total at any moment. acquire() never blocks —
 * callers must be prepared to receive fewer slots than requested
 * (possibly zero) and run the remainder inline, which also makes the
 * scheme trivially deadlock-free under nesting.
 */

#ifndef GPUMC_SUPPORT_THREAD_BUDGET_HPP
#define GPUMC_SUPPORT_THREAD_BUDGET_HPP

#include <mutex>

namespace gpumc {

class ThreadBudget {
  public:
    /** The one process-wide budget. */
    static ThreadBudget &instance();

    /**
     * Cap the total number of concurrently running threads (callers
     * plus helpers) at @p total; 0 restores the default,
     * defaultConcurrency(). Called once by CLI drivers when parsing
     * `--jobs=N`. Does not reclaim slots already handed out.
     */
    void setTotal(unsigned total);

    /** The current cap (resolving 0 to defaultConcurrency()). */
    unsigned total() const;

    /**
     * Request up to @p want helper slots. Returns how many were
     * granted, possibly 0 — never blocks. Every granted slot must be
     * returned with release() (or use a Lease).
     */
    unsigned acquire(unsigned want);

    /** Return @p n slots previously granted by acquire(). */
    void release(unsigned n);

    /** RAII grant: acquires in the constructor, releases on scope exit. */
    class Lease {
      public:
        explicit Lease(unsigned want)
            : granted_(ThreadBudget::instance().acquire(want))
        {}
        ~Lease() { ThreadBudget::instance().release(granted_); }

        Lease(const Lease &) = delete;
        Lease &operator=(const Lease &) = delete;

        /** Helper slots actually obtained (0 = run sequentially). */
        unsigned granted() const { return granted_; }

      private:
        unsigned granted_;
    };

  private:
    ThreadBudget() = default;

    mutable std::mutex mutex_;
    unsigned total_ = 0; // 0 = defaultConcurrency()
    unsigned used_ = 0;  // helper slots currently out
};

} // namespace gpumc

#endif // GPUMC_SUPPORT_THREAD_BUDGET_HPP
