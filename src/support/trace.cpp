#include "support/trace.hpp"

#include <algorithm>
#include <fstream>
#include <functional>

#include "support/json.hpp"

namespace gpumc::trace {

namespace {

/** Sequential lane id of the calling thread, assigned lazily. */
thread_local int tlsTid = -1;

} // namespace

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

Tracer &
Tracer::instance()
{
    static Tracer tracer;
    return tracer;
}

int64_t
Tracer::nowUs() const
{
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

int
Tracer::tidOfCurrentThread()
{
    // Called with mutex_ held by every user below; the thread-local
    // cache makes the common case a plain read.
    if (tlsTid < 0)
        tlsTid = nextTid_++;
    return tlsTid;
}

void
Tracer::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    events_.clear();
    counters_.clear();
    threadNames_.clear();
    // Lane ids survive a reset on purpose: tlsTid stays valid for
    // threads that already touched the tracer.
}

void
Tracer::completeSpan(const char *name, int64_t startUs, int64_t durUs,
                     SpanArgs args)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back({name, tidOfCurrentThread(), startUs,
                       std::max<int64_t>(0, durUs), std::move(args)});
}

void
Tracer::instant(const char *name, SpanArgs args)
{
    if (!enabled())
        return;
    int64_t ts = nowUs();
    std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(
        {name, tidOfCurrentThread(), ts, -1, std::move(args)});
}

void
Tracer::nameCurrentThread(const std::string &name)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    threadNames_[tidOfCurrentThread()] = name;
}

void
Tracer::counterAdd(const std::string &name, int64_t delta)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    counters_[name] += delta;
}

void
Tracer::counterSet(const std::string &name, int64_t value)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    counters_[name] = value;
}

void
Tracer::counterMax(const std::string &name, int64_t value)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    int64_t &slot = counters_[name];
    slot = std::max(slot, value);
}

int64_t
Tracer::counter(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

std::map<std::string, int64_t>
Tracer::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

void
Tracer::writeChromeTrace(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
    bool first = true;
    auto sep = [&] {
        os << (first ? "\n" : ",\n");
        first = false;
    };
    for (const auto &[tid, name] : threadNames_) {
        sep();
        os << "  {\"ph\": \"M\", \"pid\": 1, \"tid\": " << tid
           << ", \"name\": \"thread_name\", \"args\": {\"name\": "
           << jsonString(name) << "}}";
    }
    for (const Event &event : events_) {
        sep();
        os << "  {\"ph\": \"" << (event.dur < 0 ? 'i' : 'X')
           << "\", \"pid\": 1, \"tid\": " << event.tid
           << ", \"ts\": " << event.ts;
        if (event.dur >= 0)
            os << ", \"dur\": " << event.dur;
        else
            os << ", \"s\": \"t\""; // instant scope: thread
        os << ", \"cat\": \"gpumc\", \"name\": "
           << jsonString(event.name);
        if (!event.args.empty()) {
            os << ", \"args\": {";
            bool firstArg = true;
            for (const auto &[key, value] : event.args) {
                os << (firstArg ? "" : ", ") << jsonString(key) << ": "
                   << jsonString(value);
                firstArg = false;
            }
            os << "}";
        }
        os << "}";
    }
    os << "\n]}\n";
}

void
Tracer::writeMetrics(std::ostream &os) const
{
    struct SpanAggregate {
        int64_t count = 0;
        int64_t totalUs = 0;
    };
    std::map<std::string, SpanAggregate> spans;
    std::map<std::string, int64_t> counters;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        counters = counters_;
        for (const Event &event : events_) {
            if (event.dur < 0)
                continue;
            SpanAggregate &agg = spans[event.name];
            agg.count++;
            agg.totalUs += event.dur;
        }
    }

    os << "{\n  \"counters\": {";
    bool firstCounter = true;
    for (const auto &[name, value] : counters) {
        os << (firstCounter ? "\n" : ",\n") << "    "
           << jsonString(name) << ": " << value;
        firstCounter = false;
    }
    os << "\n  },\n  \"spans\": {";
    bool firstSpan = true;
    for (const auto &[name, agg] : spans) {
        os << (firstSpan ? "\n" : ",\n") << "    " << jsonString(name)
           << ": {\"count\": " << agg.count
           << ", \"totalUs\": " << agg.totalUs << "}";
        firstSpan = false;
    }
    os << "\n  }\n}\n";
}

namespace {

bool
writeFile(const std::string &path, std::string &error,
          const std::function<void(std::ostream &)> &emit)
{
    std::ofstream out(path);
    if (!out) {
        error = "cannot write '" + path + "'";
        return false;
    }
    emit(out);
    out.close();
    if (!out) {
        error = "error while writing '" + path + "'";
        return false;
    }
    return true;
}

} // namespace

bool
Tracer::writeChromeTraceFile(const std::string &path,
                             std::string &error) const
{
    return writeFile(path, error,
                     [&](std::ostream &os) { writeChromeTrace(os); });
}

bool
Tracer::writeMetricsFile(const std::string &path,
                         std::string &error) const
{
    return writeFile(path, error,
                     [&](std::ostream &os) { writeMetrics(os); });
}

bool
enableFromCli(const std::string &tracePath,
              const std::string &metricsPath)
{
    if (tracePath.empty() && metricsPath.empty())
        return false;
    Tracer::instance().enable();
    return true;
}

bool
flushCliOutputs(const std::string &tracePath,
                const std::string &metricsPath, std::ostream &err)
{
    const Tracer &tracer = Tracer::instance();
    bool ok = true;
    std::string error;
    if (!tracePath.empty() && !tracer.writeChromeTraceFile(tracePath, error)) {
        err << "trace: " << error << "\n";
        ok = false;
    }
    if (!metricsPath.empty() &&
        !tracer.writeMetricsFile(metricsPath, error)) {
        err << "metrics: " << error << "\n";
        ok = false;
    }
    return ok;
}

} // namespace gpumc::trace
