/**
 * @file
 * Lightweight timing and counter utilities for the verifier and the
 * benchmark harnesses.
 */

#ifndef GPUMC_SUPPORT_STATS_HPP
#define GPUMC_SUPPORT_STATS_HPP

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace gpumc {

/** Wall-clock stopwatch with millisecond resolution accessors. */
class Stopwatch {
  public:
    Stopwatch() { restart(); }

    void restart() { start_ = Clock::now(); }

    /** Elapsed time in milliseconds since construction/restart. */
    double elapsedMs() const
    {
        return std::chrono::duration<double, std::milli>(
                   Clock::now() - start_).count();
    }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/**
 * Named counters collected during a verification run (number of events,
 * SMT variables, clauses, ...). Useful for the encoding-size ablations.
 */
class StatsRegistry {
  public:
    void add(const std::string &name, int64_t delta)
    {
        counters_[name] += delta;
    }

    void set(const std::string &name, int64_t value)
    {
        counters_[name] = value;
    }

    int64_t get(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second;
    }

    const std::map<std::string, int64_t> &all() const { return counters_; }

  private:
    std::map<std::string, int64_t> counters_;
};

} // namespace gpumc

#endif // GPUMC_SUPPORT_STATS_HPP
