/**
 * @file
 * Lightweight timing and counter utilities for the verifier and the
 * benchmark harnesses.
 */

#ifndef GPUMC_SUPPORT_STATS_HPP
#define GPUMC_SUPPORT_STATS_HPP

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace gpumc {

/** Wall-clock stopwatch with millisecond resolution accessors. */
class Stopwatch {
  public:
    Stopwatch() { restart(); }

    void restart() { start_ = Clock::now(); }

    /** Elapsed time in milliseconds since construction/restart. */
    double elapsedMs() const
    {
        return std::chrono::duration<double, std::milli>(
                   Clock::now() - start_).count();
    }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/**
 * A wall-clock deadline shared by every solver query of one property
 * check. `Verifier` arms one deadline per check and derives each
 * query's remaining budget from it, so a check that issues several
 * queries (flag-violation enumeration, witness-validation re-solve)
 * never exceeds the configured `solverTimeoutMs` N-fold.
 */
class Deadline {
  public:
    /** Unlimited deadline (never expires). */
    Deadline() = default;

    /** Deadline @p ms milliseconds from now; ms <= 0 means unlimited. */
    static Deadline in(int64_t ms)
    {
        Deadline d;
        if (ms > 0) {
            d.limited_ = true;
            d.expiry_ = Clock::now() + std::chrono::milliseconds(ms);
        }
        return d;
    }

    bool limited() const { return limited_; }

    /** Remaining budget in milliseconds; 0 when expired. */
    int64_t remainingMs() const
    {
        if (!limited_)
            return 0;
        auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
            expiry_ - Clock::now());
        return left.count() > 0 ? left.count() : 0;
    }

    bool expired() const { return limited_ && remainingMs() == 0; }

  private:
    using Clock = std::chrono::steady_clock;
    bool limited_ = false;
    Clock::time_point expiry_{};
};

/**
 * Named counters collected during a verification run (number of events,
 * SMT variables, clauses, ...). Useful for the encoding-size ablations.
 */
class StatsRegistry {
  public:
    void add(const std::string &name, int64_t delta)
    {
        counters_[name] += delta;
    }

    void set(const std::string &name, int64_t value)
    {
        counters_[name] = value;
    }

    int64_t get(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second;
    }

    const std::map<std::string, int64_t> &all() const { return counters_; }

  private:
    std::map<std::string, int64_t> counters_;
};

} // namespace gpumc

#endif // GPUMC_SUPPORT_STATS_HPP
