/**
 * @file
 * Small string helpers used by the parsers and report writers.
 */

#ifndef GPUMC_SUPPORT_STRING_UTILS_HPP
#define GPUMC_SUPPORT_STRING_UTILS_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace gpumc {

/** Split @p s on @p sep; empty fields are kept. */
std::vector<std::string> split(std::string_view s, char sep);

/** Split @p s on any run of whitespace; empty fields are dropped. */
std::vector<std::string> splitWhitespace(std::string_view s);

/** Strip leading and trailing whitespace. */
std::string_view trim(std::string_view s);

bool startsWith(std::string_view s, std::string_view prefix);
bool endsWith(std::string_view s, std::string_view suffix);

/** Join the items with @p sep between them. */
std::string join(const std::vector<std::string> &items,
                 std::string_view sep);

/** Lower-case ASCII copy. */
std::string toLower(std::string_view s);

/** True if @p s is a non-empty decimal integer with optional leading '-'. */
bool isInteger(std::string_view s);

/**
 * Parse a whole string as a decimal integer (optional leading '-').
 * Returns nullopt on empty input, trailing garbage or overflow — the
 * safe alternative to std::stoi for CLI flags and litmus metadata.
 */
std::optional<int64_t> parseInt(std::string_view s);

/**
 * Guarded replacement for std::stoi on CLI flag values, shared by all
 * three tools (each previously carried its own copy). Parses @p value
 * and range-checks it against [@p min, @p max]; on failure prints
 * "<tool>: invalid value '<value>' for <flag> ..." to stderr and
 * exits with the usage status (2).
 */
int64_t cliInt(std::string_view tool, std::string_view flag,
               const std::string &value, int64_t min, int64_t max);

} // namespace gpumc

#endif // GPUMC_SUPPORT_STRING_UTILS_HPP
