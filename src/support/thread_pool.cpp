#include "support/thread_pool.hpp"

#include <atomic>
#include <exception>

#include "support/thread_budget.hpp"

namespace gpumc {

unsigned
defaultConcurrency()
{
    unsigned n = std::thread::hardware_concurrency();
    return n > 0 ? n : 1;
}

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = defaultConcurrency();
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
    }
    wake_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void
ThreadPool::workerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        wake_.wait(lock,
                   [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) // stopping_ and drained
            return;
        std::function<void()> task = std::move(queue_.front());
        queue_.pop_front();
        active_++;
        lock.unlock();
        task();
        lock.lock();
        active_--;
        if (queue_.empty() && active_ == 0)
            idle_.notify_all();
    }
}

void
parallelFor(int64_t n, unsigned threads,
            const std::function<void(int64_t)> &body)
{
    if (n <= 0)
        return;
    if (threads == 0)
        threads = defaultConcurrency();
    if (threads > n)
        threads = static_cast<unsigned>(n);

    if (threads <= 1) {
        for (int64_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    // The caller blocks in pool.wait() below, so its slot is lent to
    // one worker: only threads - 1 *extra* slots are charged to the
    // shared budget. When nothing is available the loop degrades to
    // the sequential path above — same results, one thread.
    ThreadBudget::Lease lease(threads - 1);
    threads = 1 + lease.granted();
    if (threads <= 1) {
        for (int64_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    std::atomic<int64_t> next{0};
    std::exception_ptr firstError;
    std::mutex errorMutex;
    std::atomic<bool> failed{false};

    auto worker = [&] {
        for (;;) {
            int64_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n || failed.load(std::memory_order_relaxed))
                return;
            try {
                body(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(errorMutex);
                if (!firstError)
                    firstError = std::current_exception();
                failed.store(true, std::memory_order_relaxed);
                return;
            }
        }
    };

    {
        ThreadPool pool(threads);
        for (unsigned t = 0; t < threads; ++t)
            pool.submit(worker);
        pool.wait();
    }
    if (firstError)
        std::rethrow_exception(firstError);
}

} // namespace gpumc
