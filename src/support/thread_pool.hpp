/**
 * @file
 * Minimal work-queue thread pool and a parallel-for built on top of it.
 * No external dependencies — plain std::thread + condition variables —
 * so it is usable from every layer (tools, bench, core).
 *
 * Verification queries are embarrassingly parallel (each owns its
 * solver and encoding session), so this is deliberately simple: a
 * fixed set of workers draining one FIFO queue. Determinism is the
 * caller's job — parallelFor hands out indices, the caller writes
 * results into pre-sized slots.
 */

#ifndef GPUMC_SUPPORT_THREAD_POOL_HPP
#define GPUMC_SUPPORT_THREAD_POOL_HPP

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gpumc {

/**
 * Worker count used when a caller asks for "auto" (0) parallelism:
 * std::thread::hardware_concurrency(), or 1 if that is unknown.
 */
unsigned defaultConcurrency();

/** Fixed-size pool of workers draining a FIFO task queue. */
class ThreadPool {
  public:
    /** @param threads worker count; 0 = defaultConcurrency(). */
    explicit ThreadPool(unsigned threads = 0);

    /** Joins all workers; pending tasks are still executed. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned size() const { return static_cast<unsigned>(workers_.size()); }

    /**
     * Enqueue a task. Tasks must not throw — wrap bodies that can
     * (parallelFor does this for its callers).
     */
    void submit(std::function<void()> task);

    /** Block until the queue is empty and every worker is idle. */
    void wait();

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable idle_;
    size_t active_ = 0;
    bool stopping_ = false;
};

/**
 * Run body(i) for every i in [0, n), spread over @p threads workers
 * (0 = defaultConcurrency()). With one worker (or n <= 1) the body
 * runs inline on the calling thread in index order.
 *
 * Exceptions thrown by the body are caught; after all indices finish
 * or are abandoned, the first exception (by completion time) is
 * rethrown on the calling thread. Once an exception is pending,
 * not-yet-started indices are skipped.
 */
void parallelFor(int64_t n, unsigned threads,
                 const std::function<void(int64_t)> &body);

} // namespace gpumc

#endif // GPUMC_SUPPORT_THREAD_POOL_HPP
