/**
 * @file
 * Unified tracing & metrics layer for the verification pipeline.
 *
 * One process-wide `trace::Tracer` collects
 *  - *spans*: named wall-clock intervals on a per-thread lane (the
 *    pipeline phases of the paper's Fig. 4 — unroll, exec analysis,
 *    relation analysis, structural encoding — plus per-property encode
 *    and solve intervals, and one lane per BatchVerifier worker), and
 *  - *counters*: named monotonic totals (per-`.cat`-relation bound and
 *    encoding sizes, solver conflicts/propagations/restarts, phase
 *    time totals, session cache hits).
 *
 * Exports:
 *  - `writeChromeTrace()` emits Chrome trace-event JSON ("X" complete
 *    events, one `tid` per thread lane) loadable by `chrome://tracing`
 *    and Perfetto.
 *  - `writeMetrics()` emits a flat metrics JSON: every counter plus
 *    per-span-name aggregates (count, total duration).
 *
 * Cost model: tracing is off by default and *near zero-overhead when
 * disabled* — every public entry point first does one relaxed atomic
 * load and returns; no clock reads, no allocation, no locking. When
 * enabled, completed spans and counter updates go through one mutex;
 * span construction reads the clock twice and allocates only on
 * completion. See docs/OBSERVABILITY.md.
 */

#ifndef GPUMC_SUPPORT_TRACE_HPP
#define GPUMC_SUPPORT_TRACE_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace gpumc::trace {

/** Key/value pairs attached to a span (the Chrome `args` object). */
using SpanArgs = std::vector<std::pair<std::string, std::string>>;

class Tracer {
  public:
    /** The process-wide tracer (tools enable it for --trace/--metrics). */
    static Tracer &instance();

    /** Arm collection. Cheap to call repeatedly. */
    void enable() { enabled_.store(true, std::memory_order_relaxed); }
    void disable() { enabled_.store(false, std::memory_order_relaxed); }
    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Drop all collected events and counters (tests). */
    void reset();

    /** Microseconds since the tracer's epoch (steady clock). */
    int64_t nowUs() const;

    /**
     * Record a completed span on the calling thread's lane. @p startUs
     * and @p durUs are in tracer-epoch microseconds; callers that
     * derive them from their own stopwatches must floor (never round
     * up) durations so children stay inside their enclosing span.
     * No-op when disabled.
     */
    void completeSpan(const char *name, int64_t startUs, int64_t durUs,
                      SpanArgs args = {});

    /** Record a zero-duration instant event (errors, cache hits). */
    void instant(const char *name, SpanArgs args = {});

    /** Label the calling thread's lane in the trace (idempotent). */
    void nameCurrentThread(const std::string &name);

    // --- counter registry ------------------------------------------------
    void counterAdd(const std::string &name, int64_t delta);
    void counterSet(const std::string &name, int64_t value);
    void counterMax(const std::string &name, int64_t value);
    int64_t counter(const std::string &name) const;
    std::map<std::string, int64_t> counters() const;

    // --- export ----------------------------------------------------------
    /** Chrome trace-event JSON (chrome://tracing / Perfetto). */
    void writeChromeTrace(std::ostream &os) const;
    /** Flat metrics JSON: counters + per-span-name aggregates. */
    void writeMetrics(std::ostream &os) const;

    /**
     * Write one of the exports to @p path. Returns false (and fills
     * @p error) when the file cannot be written — shared by the
     * --trace/--metrics handling of all three CLI tools.
     */
    bool writeChromeTraceFile(const std::string &path,
                              std::string &error) const;
    bool writeMetricsFile(const std::string &path,
                          std::string &error) const;

  private:
    Tracer();

    struct Event {
        std::string name;
        int tid = 0;
        int64_t ts = 0;  // µs since epoch
        int64_t dur = 0; // µs; < 0 marks an instant event
        SpanArgs args;
    };

    /** Lane id of the calling thread, assigned on first use. */
    int tidOfCurrentThread();

    std::atomic<bool> enabled_{false};
    std::chrono::steady_clock::time_point epoch_;

    mutable std::mutex mutex_;
    std::vector<Event> events_;
    std::map<std::string, int64_t> counters_;
    std::map<int, std::string> threadNames_;
    int nextTid_ = 0;
};

/**
 * RAII span: records [construction, destruction) on the current lane.
 * When tracing is disabled, construction is one relaxed load and the
 * destructor does nothing.
 */
class Span {
  public:
    explicit Span(const char *name)
        : name_(name), active_(Tracer::instance().enabled())
    {
        if (active_)
            startUs_ = Tracer::instance().nowUs();
    }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    /** Attach a key/value pair, emitted with the span on close. */
    void arg(std::string key, std::string value)
    {
        if (active_)
            args_.emplace_back(std::move(key), std::move(value));
    }

    /** Close early (idempotent; the destructor then does nothing). */
    void close()
    {
        if (!active_)
            return;
        active_ = false;
        Tracer &tracer = Tracer::instance();
        tracer.completeSpan(name_, startUs_,
                            tracer.nowUs() - startUs_,
                            std::move(args_));
    }

    ~Span() { close(); }

  private:
    const char *name_;
    bool active_;
    int64_t startUs_ = 0;
    SpanArgs args_;
};

/** Sugar for hot paths: counter update only when tracing is enabled. */
inline void
counterAdd(const std::string &name, int64_t delta)
{
    Tracer &tracer = Tracer::instance();
    if (tracer.enabled())
        tracer.counterAdd(name, delta);
}

/**
 * CLI plumbing shared by the gpumc / gpumc-corpus / gpumc-fuzz tools:
 * enable the process tracer iff `--trace=FILE` or `--metrics=FILE`
 * was given. Returns true when tracing was enabled.
 */
bool enableFromCli(const std::string &tracePath,
                   const std::string &metricsPath);

/**
 * Write the outputs requested on the command line (empty path = not
 * requested). Failures are reported on @p err; returns false if any
 * write failed.
 */
bool flushCliOutputs(const std::string &tracePath,
                     const std::string &metricsPath, std::ostream &err);

} // namespace gpumc::trace

#endif // GPUMC_SUPPORT_TRACE_HPP
