#include "support/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace gpumc {

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonString(std::string_view s)
{
    return "\"" + jsonEscape(s) + "\"";
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    auto it = members.find(key);
    return it == members.end() ? nullptr : &it->second;
}

int64_t
JsonValue::asInt() const
{
    if (kind != Kind::Number)
        return 0;
    return static_cast<int64_t>(number);
}

namespace {

/**
 * Recursive-descent parser; errors unwind through a `bool ok` flow
 * (no exceptions — the serve path handles adversarial input).
 */
class JsonParser {
  public:
    JsonParser(std::string_view text, std::string &error)
        : text_(text), error_(error)
    {
    }

    JsonValue parse()
    {
        error_.clear();
        JsonValue v;
        skipWs();
        if (!parseValue(v, 0))
            return JsonValue{};
        skipWs();
        if (pos_ != text_.size()) {
            fail("trailing content after JSON document");
            return JsonValue{};
        }
        return v;
    }

  private:
    // Defense against stack exhaustion from deeply nested documents
    // ([[[[...]]]]): far deeper than any legitimate request, far
    // shallower than the thread stack.
    static constexpr int kMaxDepth = 64;

    bool fail(const std::string &what)
    {
        if (error_.empty()) {
            error_ = "JSON error at offset " + std::to_string(pos_) +
                     ": " + what;
        }
        return false;
    }

    bool atEnd() const { return pos_ >= text_.size(); }
    char peek() const { return text_[pos_]; }

    void skipWs()
    {
        while (!atEnd()) {
            char c = peek();
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
                pos_++;
            else
                break;
        }
    }

    bool expect(char c)
    {
        if (atEnd() || peek() != c)
            return fail(std::string("expected '") + c + "'");
        pos_++;
        return true;
    }

    bool parseValue(JsonValue &out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("document nested too deeply");
        if (atEnd())
            return fail("unexpected end of input");
        switch (peek()) {
          case '{': return parseObject(out, depth);
          case '[': return parseArray(out, depth);
          case '"': return parseString(out);
          case 't': return parseKeyword("true", out);
          case 'f': return parseKeyword("false", out);
          case 'n': return parseKeyword("null", out);
          default: return parseNumber(out);
        }
    }

    bool parseKeyword(std::string_view word, JsonValue &out)
    {
        if (text_.compare(pos_, word.size(), word) != 0)
            return fail("invalid keyword");
        pos_ += word.size();
        if (word == "true") {
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
        } else if (word == "false") {
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
        } else {
            out.kind = JsonValue::Kind::Null;
        }
        return true;
    }

    bool parseObject(JsonValue &out, int depth)
    {
        pos_++; // '{'
        out.kind = JsonValue::Kind::Object;
        skipWs();
        if (!atEnd() && peek() == '}') {
            pos_++;
            return true;
        }
        for (;;) {
            skipWs();
            if (atEnd() || peek() != '"')
                return fail("object key must be a string");
            JsonValue key;
            if (!parseString(key))
                return false;
            skipWs();
            if (!expect(':'))
                return false;
            skipWs();
            JsonValue value;
            if (!parseValue(value, depth + 1))
                return false;
            if (!out.members.emplace(key.text, std::move(value)).second)
                return fail("duplicate object key: " + key.text);
            skipWs();
            if (atEnd())
                return fail("unterminated object");
            char c = text_[pos_++];
            if (c == '}')
                return true;
            if (c != ',')
                return fail("expected ',' or '}' in object");
        }
    }

    bool parseArray(JsonValue &out, int depth)
    {
        pos_++; // '['
        out.kind = JsonValue::Kind::Array;
        skipWs();
        if (!atEnd() && peek() == ']') {
            pos_++;
            return true;
        }
        for (;;) {
            skipWs();
            JsonValue item;
            if (!parseValue(item, depth + 1))
                return false;
            out.items.push_back(std::move(item));
            skipWs();
            if (atEnd())
                return fail("unterminated array");
            char c = text_[pos_++];
            if (c == ']')
                return true;
            if (c != ',')
                return fail("expected ',' or ']' in array");
        }
    }

    int hexDigit(char c)
    {
        if (c >= '0' && c <= '9')
            return c - '0';
        if (c >= 'a' && c <= 'f')
            return c - 'a' + 10;
        if (c >= 'A' && c <= 'F')
            return c - 'A' + 10;
        return -1;
    }

    bool parseHex4(int &code)
    {
        code = 0;
        for (int i = 0; i < 4; ++i) {
            if (atEnd())
                return fail("truncated \\u escape");
            int digit = hexDigit(text_[pos_++]);
            if (digit < 0)
                return fail("invalid \\u escape digit");
            code = code * 16 + digit;
        }
        return true;
    }

    void appendUtf8(std::string &s, uint32_t cp)
    {
        if (cp < 0x80) {
            s += static_cast<char>(cp);
        } else if (cp < 0x800) {
            s += static_cast<char>(0xC0 | (cp >> 6));
            s += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            s += static_cast<char>(0xE0 | (cp >> 12));
            s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            s += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            s += static_cast<char>(0xF0 | (cp >> 18));
            s += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            s += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    bool parseString(JsonValue &out)
    {
        pos_++; // '"'
        out.kind = JsonValue::Kind::String;
        for (;;) {
            if (atEnd())
                return fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("unescaped control character in string");
            if (c != '\\') {
                out.text += c;
                continue;
            }
            if (atEnd())
                return fail("truncated escape sequence");
            char e = text_[pos_++];
            switch (e) {
              case '"': out.text += '"'; break;
              case '\\': out.text += '\\'; break;
              case '/': out.text += '/'; break;
              case 'b': out.text += '\b'; break;
              case 'f': out.text += '\f'; break;
              case 'n': out.text += '\n'; break;
              case 'r': out.text += '\r'; break;
              case 't': out.text += '\t'; break;
              case 'u': {
                int code;
                if (!parseHex4(code))
                    return false;
                uint32_t cp = static_cast<uint32_t>(code);
                if (cp >= 0xD800 && cp <= 0xDBFF) {
                    // High surrogate: a \uXXXX low surrogate must
                    // follow to form one astral code point.
                    if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                        text_[pos_ + 1] != 'u')
                        return fail("unpaired high surrogate");
                    pos_ += 2;
                    int low;
                    if (!parseHex4(low))
                        return false;
                    if (low < 0xDC00 || low > 0xDFFF)
                        return fail("invalid low surrogate");
                    cp = 0x10000 + ((cp - 0xD800) << 10) +
                         (static_cast<uint32_t>(low) - 0xDC00);
                } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                    return fail("unpaired low surrogate");
                }
                appendUtf8(out.text, cp);
                break;
              }
              default: return fail("invalid escape sequence");
            }
        }
    }

    bool parseNumber(JsonValue &out)
    {
        size_t start = pos_;
        if (!atEnd() && peek() == '-')
            pos_++;
        if (atEnd() || !std::isdigit(static_cast<unsigned char>(peek())))
            return fail("invalid number");
        if (text_[pos_++] == '0' && !atEnd() &&
            std::isdigit(static_cast<unsigned char>(peek()))) {
            return fail("leading zero in number");
        }
        while (!atEnd() &&
               std::isdigit(static_cast<unsigned char>(peek())))
            pos_++;
        if (!atEnd() && peek() == '.') {
            pos_++;
            if (atEnd() ||
                !std::isdigit(static_cast<unsigned char>(peek())))
                return fail("digit required after decimal point");
            while (!atEnd() &&
                   std::isdigit(static_cast<unsigned char>(peek())))
                pos_++;
        }
        if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
            pos_++;
            if (!atEnd() && (peek() == '+' || peek() == '-'))
                pos_++;
            if (atEnd() ||
                !std::isdigit(static_cast<unsigned char>(peek())))
                return fail("digit required in exponent");
            while (!atEnd() &&
                   std::isdigit(static_cast<unsigned char>(peek())))
                pos_++;
        }
        out.kind = JsonValue::Kind::Number;
        out.number = std::strtod(
            std::string(text_.substr(start, pos_ - start)).c_str(),
            nullptr);
        if (!std::isfinite(out.number))
            return fail("non-finite number");
        return true;
    }

    std::string_view text_;
    std::string &error_;
    size_t pos_ = 0;
};

} // namespace

JsonValue
parseJson(std::string_view text, std::string &error)
{
    return JsonParser(text, error).parse();
}

} // namespace gpumc
