#include "support/thread_budget.hpp"

#include "support/diagnostics.hpp"
#include "support/thread_pool.hpp"

namespace gpumc {

ThreadBudget &
ThreadBudget::instance()
{
    static ThreadBudget budget;
    return budget;
}

void
ThreadBudget::setTotal(unsigned total)
{
    std::lock_guard<std::mutex> lock(mutex_);
    total_ = total;
}

unsigned
ThreadBudget::total() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return total_ == 0 ? defaultConcurrency() : total_;
}

unsigned
ThreadBudget::acquire(unsigned want)
{
    if (want == 0)
        return 0;
    std::lock_guard<std::mutex> lock(mutex_);
    unsigned cap = total_ == 0 ? defaultConcurrency() : total_;
    // One slot is implicitly the caller's own thread; only cap - 1
    // helpers may ever be out at once.
    unsigned helpers = cap > 0 ? cap - 1 : 0;
    unsigned available = helpers > used_ ? helpers - used_ : 0;
    unsigned granted = want < available ? want : available;
    used_ += granted;
    return granted;
}

void
ThreadBudget::release(unsigned n)
{
    if (n == 0)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    GPUMC_ASSERT(n <= used_, "releasing more thread-budget slots than held");
    used_ -= n;
}

} // namespace gpumc
