/**
 * @file
 * Error reporting primitives shared by all gpumc subsystems.
 *
 * Two failure categories (following the gem5 fatal/panic convention):
 *  - FatalError: the *user's* fault (malformed litmus test, bad .cat
 *    model, inconsistent options). Thrown, reported, recoverable by
 *    fixing the input.
 *  - GPUMC_ASSERT / panic(): a gpumc bug; aborts.
 */

#ifndef GPUMC_SUPPORT_DIAGNOSTICS_HPP
#define GPUMC_SUPPORT_DIAGNOSTICS_HPP

#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace gpumc {

/**
 * A position in an input file, 1-based. Line 0 means "unknown".
 */
struct SourceLoc {
    int line = 0;
    int column = 0;

    bool known() const { return line > 0; }
    std::string str() const;
};

/**
 * Exception for user-caused errors (bad inputs, bad configuration).
 */
class FatalError : public std::runtime_error {
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg) {}

    FatalError(const SourceLoc &loc, const std::string &msg)
        : std::runtime_error(loc.known() ? loc.str() + ": " + msg : msg),
          loc_(loc) {}

    const SourceLoc &loc() const { return loc_; }

  private:
    SourceLoc loc_;
};

/** Concatenate any streamable arguments into a std::string. */
template <typename... Args>
std::string
concatMessage(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

/** Throw a FatalError built from streamable arguments. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    throw FatalError(concatMessage(std::forward<Args>(args)...));
}

/** Throw a FatalError carrying a source location. */
template <typename... Args>
[[noreturn]] void
fatalAt(const SourceLoc &loc, Args &&...args)
{
    throw FatalError(loc, concatMessage(std::forward<Args>(args)...));
}

/** Report an internal invariant violation and abort. */
[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);

} // namespace gpumc

/** Internal invariant check: failure means a gpumc bug, not a user error. */
#define GPUMC_ASSERT(cond, ...)                                               \
    do {                                                                      \
        if (!(cond)) {                                                        \
            ::gpumc::panicImpl(__FILE__, __LINE__,                            \
                ::gpumc::concatMessage("assertion failed: " #cond " ",        \
                                       ##__VA_ARGS__));                       \
        }                                                                     \
    } while (0)

#define GPUMC_PANIC(...)                                                      \
    ::gpumc::panicImpl(__FILE__, __LINE__,                                    \
                       ::gpumc::concatMessage(__VA_ARGS__))

#endif // GPUMC_SUPPORT_DIAGNOSTICS_HPP
