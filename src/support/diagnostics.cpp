#include "support/diagnostics.hpp"

#include <cstdio>

namespace gpumc {

std::string
SourceLoc::str() const
{
    if (!known())
        return "<unknown>";
    return std::to_string(line) + ":" + std::to_string(column);
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "gpumc panic at %s:%d: %s\n", file, line,
                 msg.c_str());
    std::abort();
}

} // namespace gpumc
