/**
 * @file
 * Minimal JSON emission helpers shared by every machine-readable
 * report writer (gpumc-corpus --json, the --trace/--metrics exports,
 * the bench emitters). One escaping routine instead of per-tool
 * copies: a newline or control character in an error message or file
 * path must never produce invalid JSON anywhere.
 */

#ifndef GPUMC_SUPPORT_JSON_HPP
#define GPUMC_SUPPORT_JSON_HPP

#include <string>
#include <string_view>

namespace gpumc {

/**
 * Escape @p s for embedding inside a JSON string literal (without the
 * surrounding quotes): `"` and `\` are backslash-escaped, `\n`/`\r`/
 * `\t` use their short forms, and every other character below 0x20
 * becomes a `\u00XX` sequence.
 */
std::string jsonEscape(std::string_view s);

/** @p s escaped and wrapped in double quotes. */
std::string jsonString(std::string_view s);

} // namespace gpumc

#endif // GPUMC_SUPPORT_JSON_HPP
