/**
 * @file
 * Minimal JSON emission helpers shared by every machine-readable
 * report writer (gpumc-corpus --json, the --trace/--metrics exports,
 * the bench emitters). One escaping routine instead of per-tool
 * copies: a newline or control character in an error message or file
 * path must never produce invalid JSON anywhere.
 */

#ifndef GPUMC_SUPPORT_JSON_HPP
#define GPUMC_SUPPORT_JSON_HPP

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace gpumc {

/**
 * Escape @p s for embedding inside a JSON string literal (without the
 * surrounding quotes): `"` and `\` are backslash-escaped, `\n`/`\r`/
 * `\t` use their short forms, and every other character below 0x20
 * becomes a `\u00XX` sequence.
 */
std::string jsonEscape(std::string_view s);

/** @p s escaped and wrapped in double quotes. */
std::string jsonString(std::string_view s);

/**
 * A parsed JSON document. Added for the gpumc-serve request path: the
 * daemon reads line-delimited JSON from untrusted clients, so parse
 * errors are reported via parseJson's out-parameter (and turned into
 * an `error` response), never via exceptions or process exit.
 */
struct JsonValue {
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string text;
    std::vector<JsonValue> items;
    std::map<std::string, JsonValue> members;

    bool isNull() const { return kind == Kind::Null; }
    bool isObject() const { return kind == Kind::Object; }
    bool isString() const { return kind == Kind::String; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isBool() const { return kind == Kind::Bool; }

    /** Member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    /** The number as int64 (truncating); 0 if not a number. */
    int64_t asInt() const;
};

/**
 * Strict RFC 8259 parse of a complete document. On failure returns a
 * Null value and describes the problem (with byte offset) in @p error;
 * on success @p error is cleared. Rejects trailing content, trailing
 * commas, duplicate object keys and bad escapes; `\uXXXX` escapes
 * (including surrogate pairs) are decoded to UTF-8.
 */
JsonValue parseJson(std::string_view text, std::string &error);

} // namespace gpumc

#endif // GPUMC_SUPPORT_JSON_HPP
