/**
 * @file
 * FNV-1a field hasher shared by the structural fingerprints
 * (prog::Program::fingerprint, cat::CatModel::fingerprint). Two
 * instances seeded with independent offset bases run in lockstep to
 * produce a 128-bit fingerprint; every field is fed with a small tag
 * so adjacent defaulted fields cannot alias each other.
 */

#ifndef GPUMC_SUPPORT_HASH_HPP
#define GPUMC_SUPPORT_HASH_HPP

#include <cstdint>
#include <string>

namespace gpumc {

class FieldHasher {
  public:
    /** Standard FNV-1a 64-bit offset basis. */
    static constexpr uint64_t kBasisA = 14695981039346656037ull;
    /** Independent second basis for the high fingerprint half. */
    static constexpr uint64_t kBasisB =
        14695981039346656037ull ^ 0x9e3779b97f4a7c15ull;

    explicit FieldHasher(uint64_t basis) : h_(basis) {}

    void u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h_ ^= (v >> (i * 8)) & 0xff;
            h_ *= kPrime;
        }
    }
    void i64(int64_t v) { u64(static_cast<uint64_t>(v)); }
    void tag(char c) { u64(static_cast<uint64_t>(c) | 0x100); }
    void boolean(bool b) { u64(b ? 1 : 2); }
    void str(const std::string &s)
    {
        u64(s.size());
        for (char c : s) {
            h_ ^= static_cast<unsigned char>(c);
            h_ *= kPrime;
        }
    }

    uint64_t value() const { return h_; }

  private:
    static constexpr uint64_t kPrime = 1099511628211ull;
    uint64_t h_;
};

} // namespace gpumc

#endif // GPUMC_SUPPORT_HASH_HPP
