#include "support/stats.hpp"

// Header-only for now; this translation unit anchors the library.
