#include "support/string_utils.hpp"

#include <cctype>
#include <charconv>
#include <cstdlib>
#include <iostream>

namespace gpumc {

std::vector<std::string>
split(std::string_view s, char sep)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (true) {
        size_t pos = s.find(sep, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(s.substr(start));
            break;
        }
        out.emplace_back(s.substr(start, pos - start));
        start = pos + 1;
    }
    return out;
}

std::vector<std::string>
splitWhitespace(std::string_view s)
{
    std::vector<std::string> out;
    size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i])))
            ++i;
        size_t start = i;
        while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i])))
            ++i;
        if (i > start)
            out.emplace_back(s.substr(start, i - start));
    }
    return out;
}

std::string_view
trim(std::string_view s)
{
    size_t b = 0;
    while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    size_t e = s.size();
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool
endsWith(std::string_view s, std::string_view suffix)
{
    return s.size() >= suffix.size() &&
           s.substr(s.size() - suffix.size()) == suffix;
}

std::string
join(const std::vector<std::string> &items, std::string_view sep)
{
    std::string out;
    for (size_t i = 0; i < items.size(); ++i) {
        if (i > 0)
            out += sep;
        out += items[i];
    }
    return out;
}

std::string
toLower(std::string_view s)
{
    std::string out(s);
    for (char &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

bool
isInteger(std::string_view s)
{
    if (s.empty())
        return false;
    size_t i = (s[0] == '-') ? 1 : 0;
    if (i >= s.size())
        return false;
    for (; i < s.size(); ++i) {
        if (!std::isdigit(static_cast<unsigned char>(s[i])))
            return false;
    }
    return true;
}

std::optional<int64_t>
parseInt(std::string_view s)
{
    if (!isInteger(s))
        return std::nullopt;
    int64_t value = 0;
    auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
    if (ec != std::errc() || ptr != s.data() + s.size())
        return std::nullopt;
    return value;
}

int64_t
cliInt(std::string_view tool, std::string_view flag,
       const std::string &value, int64_t min, int64_t max)
{
    std::optional<int64_t> parsed = parseInt(value);
    if (!parsed || *parsed < min || *parsed > max) {
        std::cerr << tool << ": invalid value '" << value << "' for "
                  << flag << " (expected integer in [" << min << ", "
                  << max << "])\n";
        std::exit(2);
    }
    return *parsed;
}

} // namespace gpumc
