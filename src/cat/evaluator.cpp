#include "cat/evaluator.hpp"

namespace gpumc::cat {

RelationEvaluator::RelationEvaluator(const CatModel &model,
                                     const ExecutionView &exec)
    : model_(model), exec_(exec)
{
}

std::vector<int>
RelationEvaluator::allEvents() const
{
    std::vector<int> out(exec_.numEvents());
    for (int i = 0; i < exec_.numEvents(); ++i)
        out[i] = i;
    return out;
}

const PairSet &
RelationEvaluator::letValue(int index)
{
    auto it = letRelCache_.find(index);
    if (it != letRelCache_.end())
        return it->second;
    const LetBinding &binding = model_.lets()[index];
    GPUMC_ASSERT(binding.expr->type == ExprType::Rel,
                 "letValue on a set binding");
    PairSet value = evalRel(*binding.expr);
    return letRelCache_.emplace(index, std::move(value)).first->second;
}

std::vector<bool>
RelationEvaluator::evalSet(const Expr &e)
{
    GPUMC_ASSERT(e.type == ExprType::Set);
    int n = exec_.numEvents();
    switch (e.kind) {
      case ExprKind::Name: {
        if (e.resolution == NameRes::LetRef) {
            auto it = letSetCache_.find(e.letIndex);
            if (it != letSetCache_.end())
                return it->second;
            std::vector<bool> value =
                evalSet(*model_.lets()[e.letIndex].expr);
            letSetCache_.emplace(e.letIndex, value);
            return value;
        }
        std::vector<bool> out(n, false);
        for (int i = 0; i < n; ++i)
            out[i] = exec_.inSet(i, e.name);
        return out;
      }
      case ExprKind::Union: {
        std::vector<bool> a = evalSet(*e.lhs), b = evalSet(*e.rhs);
        for (int i = 0; i < n; ++i)
            a[i] = a[i] || b[i];
        return a;
      }
      case ExprKind::Inter: {
        std::vector<bool> a = evalSet(*e.lhs), b = evalSet(*e.rhs);
        for (int i = 0; i < n; ++i)
            a[i] = a[i] && b[i];
        return a;
      }
      case ExprKind::Diff: {
        std::vector<bool> a = evalSet(*e.lhs), b = evalSet(*e.rhs);
        for (int i = 0; i < n; ++i)
            a[i] = a[i] && !b[i];
        return a;
      }
      default:
        GPUMC_PANIC("expression is not a set");
    }
}

PairSet
RelationEvaluator::evalRel(const Expr &e)
{
    GPUMC_ASSERT(e.type == ExprType::Rel);
    switch (e.kind) {
      case ExprKind::Name: {
        if (e.resolution == NameRes::LetRef)
            return letValue(e.letIndex);
        return exec_.baseRel(e.name);
      }
      case ExprKind::Union:
        return evalRel(*e.lhs).unionWith(evalRel(*e.rhs));
      case ExprKind::Inter:
        return evalRel(*e.lhs).intersectWith(evalRel(*e.rhs));
      case ExprKind::Diff:
        return evalRel(*e.lhs).minus(evalRel(*e.rhs));
      case ExprKind::Seq:
        return evalRel(*e.lhs).compose(evalRel(*e.rhs));
      case ExprKind::Cartesian: {
        std::vector<bool> a = evalSet(*e.lhs), b = evalSet(*e.rhs);
        PairSet out;
        for (int i = 0; i < exec_.numEvents(); ++i) {
            if (!a[i])
                continue;
            for (int j = 0; j < exec_.numEvents(); ++j) {
                if (b[j])
                    out.add(i, j);
            }
        }
        return out;
      }
      case ExprKind::Inverse:
        return evalRel(*e.lhs).inverse();
      case ExprKind::TransClosure:
        return evalRel(*e.lhs).transitiveClosure();
      case ExprKind::ReflTransClosure:
        return evalRel(*e.lhs).transitiveClosure().withIdentity(allEvents());
      case ExprKind::Optional:
        return evalRel(*e.lhs).withIdentity(allEvents());
      case ExprKind::Bracket: {
        std::vector<bool> set = evalSet(*e.lhs);
        PairSet out;
        for (int i = 0; i < exec_.numEvents(); ++i) {
            if (set[i])
                out.add(i, i);
        }
        return out;
      }
    }
    GPUMC_PANIC("unhandled expression kind");
}

bool
RelationEvaluator::consistent()
{
    for (const Axiom &ax : model_.axioms()) {
        if (ax.kind == AxiomKind::FlagNonEmpty)
            continue;
        PairSet rel = evalRel(*ax.expr);
        switch (ax.kind) {
          case AxiomKind::Empty:
            if (!rel.empty())
                return false;
            break;
          case AxiomKind::Irreflexive:
            if (!rel.isIrreflexive())
                return false;
            break;
          case AxiomKind::Acyclic:
            if (!rel.isAcyclic())
                return false;
            break;
          case AxiomKind::FlagNonEmpty:
            break;
        }
    }
    return true;
}

std::vector<AxiomCheck>
RelationEvaluator::evalFlags()
{
    std::vector<AxiomCheck> out;
    for (const Axiom &ax : model_.axioms()) {
        if (ax.kind != AxiomKind::FlagNonEmpty)
            continue;
        AxiomCheck check;
        check.axiom = &ax;
        check.flagged = evalRel(*ax.expr);
        check.holds = check.flagged.empty();
        out.push_back(std::move(check));
    }
    return out;
}

} // namespace gpumc::cat
