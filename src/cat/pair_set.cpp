#include "cat/pair_set.hpp"

#include <algorithm>
#include <map>

namespace gpumc::cat {

PairSet
PairSet::unionWith(const PairSet &o) const
{
    PairSet out = *this;
    for (auto [a, b] : o.pairs_)
        out.add(a, b);
    return out;
}

PairSet
PairSet::intersectWith(const PairSet &o) const
{
    PairSet out;
    const PairSet &small = size() <= o.size() ? *this : o;
    const PairSet &large = size() <= o.size() ? o : *this;
    for (auto [a, b] : small.pairs_) {
        if (large.contains(a, b))
            out.add(a, b);
    }
    return out;
}

PairSet
PairSet::minus(const PairSet &o) const
{
    PairSet out;
    for (auto [a, b] : pairs_) {
        if (!o.contains(a, b))
            out.add(a, b);
    }
    return out;
}

PairSet
PairSet::compose(const PairSet &o) const
{
    // Index the right-hand side by its first component.
    std::map<int, std::vector<int>> bySource;
    for (auto [a, b] : o.pairs_)
        bySource[a].push_back(b);
    PairSet out;
    for (auto [a, b] : pairs_) {
        auto it = bySource.find(b);
        if (it == bySource.end())
            continue;
        for (int c : it->second)
            out.add(a, c);
    }
    return out;
}

PairSet
PairSet::inverse() const
{
    PairSet out;
    for (auto [a, b] : pairs_)
        out.add(b, a);
    return out;
}

PairSet
PairSet::transitiveClosure() const
{
    PairSet result = *this;
    while (true) {
        PairSet next = result.unionWith(result.compose(*this));
        if (next.size() == result.size())
            return result;
        result = std::move(next);
    }
}

PairSet
PairSet::transitiveClosureSquaring(int &roundsOut) const
{
    PairSet result = *this;
    roundsOut = 0;
    while (true) {
        PairSet next = result.unionWith(result.compose(result));
        if (next.size() == result.size())
            return result;
        roundsOut++;
        result = std::move(next);
    }
}

PairSet
PairSet::withIdentity(const std::vector<int> &events) const
{
    PairSet out = *this;
    for (int e : events)
        out.add(e, e);
    return out;
}

PairSet
PairSet::withoutIdentity() const
{
    PairSet out;
    for (auto [a, b] : pairs_) {
        if (a != b)
            out.add(a, b);
    }
    return out;
}

bool
PairSet::isIrreflexive() const
{
    return std::none_of(pairs_.begin(), pairs_.end(),
                        [](const EventPair &p) {
                            return p.first == p.second;
                        });
}

bool
PairSet::isAcyclic() const
{
    // Kahn-style cycle detection over the nodes that appear in the set.
    std::map<int, std::vector<int>> succ;
    std::map<int, int> indeg;
    for (auto [a, b] : pairs_) {
        succ[a].push_back(b);
        indeg[b]++;
        indeg.try_emplace(a, 0);
        succ.try_emplace(b);
    }
    std::vector<int> queue;
    for (auto &[node, deg] : indeg) {
        if (deg == 0)
            queue.push_back(node);
    }
    size_t visited = 0;
    while (!queue.empty()) {
        int node = queue.back();
        queue.pop_back();
        visited++;
        for (int next : succ[node]) {
            if (--indeg[next] == 0)
                queue.push_back(next);
        }
    }
    return visited == indeg.size();
}

} // namespace gpumc::cat
