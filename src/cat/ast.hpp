/**
 * @file
 * AST for the `.cat` consistency-model language.
 *
 * Expressions are typed as SET (of events) or REL (of event pairs); the
 * parser builds an untyped tree and the semantic pass in model.cpp
 * assigns types.
 */

#ifndef GPUMC_CAT_AST_HPP
#define GPUMC_CAT_AST_HPP

#include <memory>
#include <string>
#include <vector>

#include "support/diagnostics.hpp"

namespace gpumc::cat {

enum class ExprType { Unknown, Set, Rel };

enum class ExprKind {
    Name,        // identifier (base tag / base relation / let binding / `_`)
    Union,       // a | b
    Inter,       // a & b
    Diff,        // a \ b
    Seq,         // a ; b           (REL only)
    Cartesian,   // A * B           (SET operands, REL result)
    Inverse,     // a^-1            (REL only)
    TransClosure,      // a+        (REL only)
    ReflTransClosure,  // a*        (REL only)
    Optional,    // a?  == a | id   (REL only)
    Bracket,     // [A]  identity relation restricted to set A
};

/** How a Name expression was resolved by the semantic pass. */
enum class NameRes { Unresolved, BaseSet, BaseRel, LetRef };

struct Expr {
    ExprKind kind;
    ExprType type = ExprType::Unknown;
    std::string name;            // for Name
    std::unique_ptr<Expr> lhs;   // first child
    std::unique_ptr<Expr> rhs;   // second child (binary ops)
    SourceLoc loc;

    // Filled in by CatModel's semantic pass for Name nodes.
    NameRes resolution = NameRes::Unresolved;
    int letIndex = -1; // valid when resolution == LetRef

    Expr(ExprKind k, SourceLoc l) : kind(k), loc(l) {}
};

using ExprPtr = std::unique_ptr<Expr>;

enum class AxiomKind { Acyclic, Irreflexive, Empty, FlagNonEmpty };

struct Axiom {
    AxiomKind kind;
    ExprPtr expr;
    std::string name; // optional ("as" name); mandatory for flags
    SourceLoc loc;
};

struct LetBinding {
    std::string name;
    ExprPtr expr;
    SourceLoc loc;
};

/** Raw parse result; semantic checking happens in CatModel. */
struct ParsedModel {
    std::string modelName;
    std::vector<LetBinding> lets;
    std::vector<Axiom> axioms;
};

} // namespace gpumc::cat

#endif // GPUMC_CAT_AST_HPP
