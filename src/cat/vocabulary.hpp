/**
 * @file
 * The fixed vocabulary of base event tags (sets) and base relations a
 * `.cat` model may reference — the core of Fig. 2 plus the GPU
 * extensions of Tables 1 and 2 of the paper.
 */

#ifndef GPUMC_CAT_VOCABULARY_HPP
#define GPUMC_CAT_VOCABULARY_HPP

#include <set>
#include <string>

namespace gpumc::cat {

struct Vocabulary {
    std::set<std::string> sets;
    std::set<std::string> rels;

    bool isBaseSet(const std::string &name) const
    {
        return sets.count(name) != 0;
    }
    bool isBaseRel(const std::string &name) const
    {
        return rels.count(name) != 0;
    }

    /**
     * The GPU vocabulary used by the PTX and Vulkan models.
     *
     * Sets: event kinds (W, R, M, F, B/CBAR, IW/I, RMW, A, NONPRIV),
     * memory orders (WEAK, RLX, ACQ, REL, SC), instruction scopes
     * (CTA, GPU, SYS; SG, WG, QF, DV), proxies (GEN, TEX, SUR, CON,
     * ALIAS), storage classes and semantics (SC0, SC1, SEMSC0, SEMSC1),
     * availability/visibility (AV, VIS, SEMAV, SEMVIS, AVDEVICE,
     * VISDEVICE) and the universal set `_`.
     *
     * Relations: po, rf, co, loc, vloc, id, int, ext, addr, data, ctrl,
     * rmw, sr, scta, ssg, swg, sqf, ssw, syncbar, sync_barrier,
     * sync_fence.
     */
    static const Vocabulary &gpu();
};

} // namespace gpumc::cat

#endif // GPUMC_CAT_VOCABULARY_HPP
