#include "cat/model.hpp"

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "cat/parser.hpp"
#include "support/hash.hpp"

namespace gpumc::cat {

namespace {

/**
 * Feed an expression tree into the field stream: node kind, the name
 * of Name leaves, then children depth-first with open/close tags so
 * differently-shaped trees cannot alias. Resolution fields are derived
 * from the same content and are deliberately not hashed.
 */
void
hashExpr(FieldHasher &h, const Expr *e)
{
    if (!e) {
        h.tag('0');
        return;
    }
    h.tag('(');
    h.u64(static_cast<uint64_t>(e->kind));
    h.str(e->name);
    hashExpr(h, e->lhs.get());
    hashExpr(h, e->rhs.get());
    h.tag(')');
}

void
hashModel(FieldHasher &h, const ParsedModel &parsed)
{
    h.str(parsed.modelName);
    h.u64(parsed.lets.size());
    for (const LetBinding &let : parsed.lets) {
        h.tag('l');
        h.str(let.name);
        hashExpr(h, let.expr.get());
    }
    h.u64(parsed.axioms.size());
    for (const Axiom &ax : parsed.axioms) {
        h.tag('a');
        h.u64(static_cast<uint64_t>(ax.kind));
        h.str(ax.name);
        hashExpr(h, ax.expr.get());
    }
}

} // namespace

CatModel::CatModel(ParsedModel parsed, const Vocabulary &vocab)
    : parsed_(std::move(parsed)), vocab_(&vocab)
{
    resolveAndCheck();
    computeFingerprint();
}

void
CatModel::computeFingerprint()
{
    // Two independent passes, like prog::Program::fingerprint: a
    // collision would silently reuse a stale session built for a
    // *different* model, so 64 bits alone is not comfortable enough.
    FieldHasher a(FieldHasher::kBasisA);
    FieldHasher b(FieldHasher::kBasisB);
    hashModel(a, parsed_);
    hashModel(b, parsed_);
    fingerprint_ = {a.value(), b.value()};
}

std::string
ModelFingerprint::str() const
{
    char buf[33];
    std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                  static_cast<unsigned long long>(hi),
                  static_cast<unsigned long long>(lo));
    return buf;
}

CatModel
CatModel::fromSource(std::string_view source, const Vocabulary &vocab)
{
    return CatModel(parseCat(source), vocab);
}

CatModel
CatModel::fromFile(const std::string &path, const Vocabulary &vocab)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open .cat model file: ", path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return fromSource(buf.str(), vocab);
}

bool
CatModel::hasFlaggedAxioms() const
{
    for (const Axiom &ax : parsed_.axioms) {
        if (ax.kind == AxiomKind::FlagNonEmpty)
            return true;
    }
    return false;
}

void
CatModel::resolveAndCheck()
{
    // Bindings are visible from the binding *after* them onward, so a
    // later `let co = co+` can shadow the base relation while its RHS
    // still refers to the base (paper Fig. 4, line 5).
    for (size_t i = 0; i < parsed_.lets.size(); ++i)
        resolveExpr(*parsed_.lets[i].expr, static_cast<int>(i));
    for (Axiom &ax : parsed_.axioms) {
        resolveExpr(*ax.expr, static_cast<int>(parsed_.lets.size()));
        if (ax.expr->type != ExprType::Rel) {
            fatalAt(ax.loc, "axiom expression must be a relation");
        }
    }
}

void
CatModel::resolveExpr(Expr &e, int numVisibleLets)
{
    auto requireType = [](const Expr &child, ExprType want,
                          const char *what) {
        if (child.type != want) {
            fatalAt(child.loc, what, " expects a ",
                    want == ExprType::Set ? "set" : "relation",
                    " operand");
        }
    };

    switch (e.kind) {
      case ExprKind::Name: {
        // Most recent visible let wins; fall back to base names.
        for (int i = numVisibleLets - 1; i >= 0; --i) {
            if (parsed_.lets[i].name == e.name) {
                e.resolution = NameRes::LetRef;
                e.letIndex = i;
                e.type = parsed_.lets[i].expr->type;
                return;
            }
        }
        if (vocab_->isBaseSet(e.name)) {
            e.resolution = NameRes::BaseSet;
            e.type = ExprType::Set;
            return;
        }
        if (vocab_->isBaseRel(e.name)) {
            e.resolution = NameRes::BaseRel;
            e.type = ExprType::Rel;
            return;
        }
        fatalAt(e.loc, "unknown name '", e.name, "' in .cat model");
      }
      case ExprKind::Union:
      case ExprKind::Inter:
      case ExprKind::Diff: {
        resolveExpr(*e.lhs, numVisibleLets);
        resolveExpr(*e.rhs, numVisibleLets);
        if (e.lhs->type != e.rhs->type) {
            fatalAt(e.loc,
                    "set/relation mismatch between operands of '",
                    e.kind == ExprKind::Union ? "|"
                    : e.kind == ExprKind::Inter ? "&" : "\\",
                    "'");
        }
        e.type = e.lhs->type;
        return;
      }
      case ExprKind::Seq: {
        resolveExpr(*e.lhs, numVisibleLets);
        resolveExpr(*e.rhs, numVisibleLets);
        requireType(*e.lhs, ExprType::Rel, "';'");
        requireType(*e.rhs, ExprType::Rel, "';'");
        e.type = ExprType::Rel;
        return;
      }
      case ExprKind::Cartesian: {
        resolveExpr(*e.lhs, numVisibleLets);
        resolveExpr(*e.rhs, numVisibleLets);
        requireType(*e.lhs, ExprType::Set, "'*'");
        requireType(*e.rhs, ExprType::Set, "'*'");
        e.type = ExprType::Rel;
        return;
      }
      case ExprKind::Inverse:
      case ExprKind::TransClosure:
      case ExprKind::ReflTransClosure:
      case ExprKind::Optional: {
        resolveExpr(*e.lhs, numVisibleLets);
        requireType(*e.lhs, ExprType::Rel, "postfix operator");
        e.type = ExprType::Rel;
        return;
      }
      case ExprKind::Bracket: {
        resolveExpr(*e.lhs, numVisibleLets);
        requireType(*e.lhs, ExprType::Set, "'[...]'");
        e.type = ExprType::Rel;
        return;
      }
    }
    GPUMC_PANIC("unhandled expression kind");
}

} // namespace gpumc::cat
