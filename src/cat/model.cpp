#include "cat/model.hpp"

#include <fstream>
#include <map>
#include <sstream>

#include "cat/parser.hpp"

namespace gpumc::cat {

CatModel::CatModel(ParsedModel parsed, const Vocabulary &vocab)
    : parsed_(std::move(parsed)), vocab_(&vocab)
{
    resolveAndCheck();
}

CatModel
CatModel::fromSource(std::string_view source, const Vocabulary &vocab)
{
    return CatModel(parseCat(source), vocab);
}

CatModel
CatModel::fromFile(const std::string &path, const Vocabulary &vocab)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open .cat model file: ", path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return fromSource(buf.str(), vocab);
}

bool
CatModel::hasFlaggedAxioms() const
{
    for (const Axiom &ax : parsed_.axioms) {
        if (ax.kind == AxiomKind::FlagNonEmpty)
            return true;
    }
    return false;
}

void
CatModel::resolveAndCheck()
{
    // Bindings are visible from the binding *after* them onward, so a
    // later `let co = co+` can shadow the base relation while its RHS
    // still refers to the base (paper Fig. 4, line 5).
    for (size_t i = 0; i < parsed_.lets.size(); ++i)
        resolveExpr(*parsed_.lets[i].expr, static_cast<int>(i));
    for (Axiom &ax : parsed_.axioms) {
        resolveExpr(*ax.expr, static_cast<int>(parsed_.lets.size()));
        if (ax.expr->type != ExprType::Rel) {
            fatalAt(ax.loc, "axiom expression must be a relation");
        }
    }
}

void
CatModel::resolveExpr(Expr &e, int numVisibleLets)
{
    auto requireType = [](const Expr &child, ExprType want,
                          const char *what) {
        if (child.type != want) {
            fatalAt(child.loc, what, " expects a ",
                    want == ExprType::Set ? "set" : "relation",
                    " operand");
        }
    };

    switch (e.kind) {
      case ExprKind::Name: {
        // Most recent visible let wins; fall back to base names.
        for (int i = numVisibleLets - 1; i >= 0; --i) {
            if (parsed_.lets[i].name == e.name) {
                e.resolution = NameRes::LetRef;
                e.letIndex = i;
                e.type = parsed_.lets[i].expr->type;
                return;
            }
        }
        if (vocab_->isBaseSet(e.name)) {
            e.resolution = NameRes::BaseSet;
            e.type = ExprType::Set;
            return;
        }
        if (vocab_->isBaseRel(e.name)) {
            e.resolution = NameRes::BaseRel;
            e.type = ExprType::Rel;
            return;
        }
        fatalAt(e.loc, "unknown name '", e.name, "' in .cat model");
      }
      case ExprKind::Union:
      case ExprKind::Inter:
      case ExprKind::Diff: {
        resolveExpr(*e.lhs, numVisibleLets);
        resolveExpr(*e.rhs, numVisibleLets);
        if (e.lhs->type != e.rhs->type) {
            fatalAt(e.loc,
                    "set/relation mismatch between operands of '",
                    e.kind == ExprKind::Union ? "|"
                    : e.kind == ExprKind::Inter ? "&" : "\\",
                    "'");
        }
        e.type = e.lhs->type;
        return;
      }
      case ExprKind::Seq: {
        resolveExpr(*e.lhs, numVisibleLets);
        resolveExpr(*e.rhs, numVisibleLets);
        requireType(*e.lhs, ExprType::Rel, "';'");
        requireType(*e.rhs, ExprType::Rel, "';'");
        e.type = ExprType::Rel;
        return;
      }
      case ExprKind::Cartesian: {
        resolveExpr(*e.lhs, numVisibleLets);
        resolveExpr(*e.rhs, numVisibleLets);
        requireType(*e.lhs, ExprType::Set, "'*'");
        requireType(*e.rhs, ExprType::Set, "'*'");
        e.type = ExprType::Rel;
        return;
      }
      case ExprKind::Inverse:
      case ExprKind::TransClosure:
      case ExprKind::ReflTransClosure:
      case ExprKind::Optional: {
        resolveExpr(*e.lhs, numVisibleLets);
        requireType(*e.lhs, ExprType::Rel, "postfix operator");
        e.type = ExprType::Rel;
        return;
      }
      case ExprKind::Bracket: {
        resolveExpr(*e.lhs, numVisibleLets);
        requireType(*e.lhs, ExprType::Set, "'[...]'");
        e.type = ExprType::Rel;
        return;
      }
    }
    GPUMC_PANIC("unhandled expression kind");
}

} // namespace gpumc::cat
