/**
 * @file
 * Tokenizer for the `.cat` consistency-model language (Fig. 2 of the
 * paper, plus the GPU extensions of Section 4).
 */

#ifndef GPUMC_CAT_LEXER_HPP
#define GPUMC_CAT_LEXER_HPP

#include <string>
#include <string_view>
#include <vector>

#include "support/diagnostics.hpp"

namespace gpumc::cat {

enum class TokKind {
    Ident,      // names: po, sync_fence, non-rmw-reads, _
    Let,
    Acyclic,
    Irreflexive,
    Empty,
    Flag,
    As,
    Tilde,      // ~
    Equals,     // =
    Pipe,       // |
    Amp,        // &
    Backslash,  // \ (set/relation difference)
    Semi,       // ;
    Plus,       // +
    Star,       // *
    Question,   // ?
    Inverse,    // ^-1
    LParen,
    RParen,
    LBracket,
    RBracket,
    String,     // "model name"
    End,
};

struct Token {
    TokKind kind = TokKind::End;
    std::string text;
    SourceLoc loc;
};

/**
 * Tokenize a whole `.cat` source. Comments are `(* ... *)` and nest.
 * @throws FatalError on malformed input.
 */
std::vector<Token> tokenizeCat(std::string_view source);

/** Printable token-kind name for error messages. */
const char *tokKindName(TokKind kind);

} // namespace gpumc::cat

#endif // GPUMC_CAT_LEXER_HPP
