#include "cat/lexer.hpp"

#include <cctype>
#include <unordered_map>

namespace gpumc::cat {

namespace {

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '.';
}

const std::unordered_map<std::string_view, TokKind> kKeywords = {
    {"let", TokKind::Let},
    {"acyclic", TokKind::Acyclic},
    {"irreflexive", TokKind::Irreflexive},
    {"empty", TokKind::Empty},
    {"flag", TokKind::Flag},
    {"as", TokKind::As},
};

} // namespace

std::vector<Token>
tokenizeCat(std::string_view src)
{
    std::vector<Token> out;
    size_t i = 0;
    int line = 1, col = 1;

    auto loc = [&]() { return SourceLoc{line, col}; };
    auto advance = [&](size_t n) {
        for (size_t k = 0; k < n; ++k) {
            if (src[i + k] == '\n') {
                line++;
                col = 1;
            } else {
                col++;
            }
        }
        i += n;
    };
    auto push = [&](TokKind kind, std::string text, SourceLoc l) {
        out.push_back({kind, std::move(text), l});
    };

    while (i < src.size()) {
        char c = src[i];
        if (std::isspace(static_cast<unsigned char>(c))) {
            advance(1);
            continue;
        }
        // Nested (* ... *) comments.
        if (c == '(' && i + 1 < src.size() && src[i + 1] == '*') {
            SourceLoc start = loc();
            int depth = 0;
            while (i < src.size()) {
                if (src[i] == '(' && i + 1 < src.size() && src[i + 1] == '*') {
                    depth++;
                    advance(2);
                } else if (src[i] == '*' && i + 1 < src.size() &&
                           src[i + 1] == ')') {
                    depth--;
                    advance(2);
                    if (depth == 0)
                        break;
                } else {
                    advance(1);
                }
            }
            if (depth != 0)
                fatalAt(start, "unterminated (* comment");
            continue;
        }
        // Line comments starting with //.
        if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
            while (i < src.size() && src[i] != '\n')
                advance(1);
            continue;
        }
        SourceLoc l = loc();
        if (isIdentStart(c)) {
            size_t start = i;
            while (i < src.size() && isIdentChar(src[i]))
                advance(1);
            std::string text(src.substr(start, i - start));
            auto kw = kKeywords.find(text);
            push(kw != kKeywords.end() ? kw->second : TokKind::Ident,
                 std::move(text), l);
            continue;
        }
        if (c == '"') {
            size_t start = ++i;
            col++;
            while (i < src.size() && src[i] != '"')
                advance(1);
            if (i >= src.size())
                fatalAt(l, "unterminated string");
            std::string text(src.substr(start, i - start));
            advance(1); // closing quote
            push(TokKind::String, std::move(text), l);
            continue;
        }
        if (c == '^') {
            if (i + 2 < src.size() && src[i + 1] == '-' && src[i + 2] == '1') {
                advance(3);
                push(TokKind::Inverse, "^-1", l);
                continue;
            }
            fatalAt(l, "expected ^-1");
        }
        TokKind kind;
        switch (c) {
          case '~': kind = TokKind::Tilde; break;
          case '=': kind = TokKind::Equals; break;
          case '|': kind = TokKind::Pipe; break;
          case '&': kind = TokKind::Amp; break;
          case '\\': kind = TokKind::Backslash; break;
          case ';': kind = TokKind::Semi; break;
          case '+': kind = TokKind::Plus; break;
          case '*': kind = TokKind::Star; break;
          case '?': kind = TokKind::Question; break;
          case '(': kind = TokKind::LParen; break;
          case ')': kind = TokKind::RParen; break;
          case '[': kind = TokKind::LBracket; break;
          case ']': kind = TokKind::RBracket; break;
          default:
            fatalAt(l, "unexpected character '", c, "' in .cat source");
        }
        advance(1);
        push(kind, std::string(1, c), l);
    }
    out.push_back({TokKind::End, "", loc()});
    return out;
}

const char *
tokKindName(TokKind kind)
{
    switch (kind) {
      case TokKind::Ident: return "identifier";
      case TokKind::Let: return "'let'";
      case TokKind::Acyclic: return "'acyclic'";
      case TokKind::Irreflexive: return "'irreflexive'";
      case TokKind::Empty: return "'empty'";
      case TokKind::Flag: return "'flag'";
      case TokKind::As: return "'as'";
      case TokKind::Tilde: return "'~'";
      case TokKind::Equals: return "'='";
      case TokKind::Pipe: return "'|'";
      case TokKind::Amp: return "'&'";
      case TokKind::Backslash: return "'\\'";
      case TokKind::Semi: return "';'";
      case TokKind::Plus: return "'+'";
      case TokKind::Star: return "'*'";
      case TokKind::Question: return "'?'";
      case TokKind::Inverse: return "'^-1'";
      case TokKind::LParen: return "'('";
      case TokKind::RParen: return "')'";
      case TokKind::LBracket: return "'['";
      case TokKind::RBracket: return "']'";
      case TokKind::String: return "string";
      case TokKind::End: return "end of input";
    }
    return "?";
}

} // namespace gpumc::cat
