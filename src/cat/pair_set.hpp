/**
 * @file
 * A set of event pairs (a concrete binary relation over event ids) with
 * the relational-algebra operations used by the `.cat` evaluator, the
 * relation (bounds) analysis and the explicit-state baseline.
 */

#ifndef GPUMC_CAT_PAIR_SET_HPP
#define GPUMC_CAT_PAIR_SET_HPP

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <utility>
#include <vector>

namespace gpumc::cat {

/** An event pair packed into one key. */
using EventPair = std::pair<int, int>;

class PairSet {
  public:
    PairSet() = default;

    static uint64_t key(int a, int b)
    {
        return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
               static_cast<uint32_t>(b);
    }

    void add(int a, int b)
    {
        if (keys_.insert(key(a, b)).second)
            pairs_.emplace_back(a, b);
    }

    bool contains(int a, int b) const
    {
        return keys_.count(key(a, b)) != 0;
    }

    size_t size() const { return pairs_.size(); }
    bool empty() const { return pairs_.empty(); }

    /** Iteration over pairs in insertion order. */
    const std::vector<EventPair> &pairs() const { return pairs_; }

    // --- relational algebra ---------------------------------------------
    PairSet unionWith(const PairSet &o) const;
    PairSet intersectWith(const PairSet &o) const;
    PairSet minus(const PairSet &o) const;
    /** Relational composition this ; o. */
    PairSet compose(const PairSet &o) const;
    PairSet inverse() const;
    /** Transitive closure. */
    PairSet transitiveClosure() const;
    /**
     * Transitive closure by repeated squaring; @p roundsOut receives
     * the number of squaring rounds until the fix-point (the encoder
     * uses it as the exact layer count for closure encodings).
     */
    PairSet transitiveClosureSquaring(int &roundsOut) const;
    /** Reflexive closure over the given event universe ids. */
    PairSet withIdentity(const std::vector<int> &events) const;
    /** Remove diagonal pairs. */
    PairSet withoutIdentity() const;

    /** True if no pair (a, a) exists. */
    bool isIrreflexive() const;
    /** True if the relation (as a graph) has no cycle. */
    bool isAcyclic() const;

    bool operator==(const PairSet &o) const { return keys_ == o.keys_; }

  private:
    std::vector<EventPair> pairs_;
    std::unordered_set<uint64_t> keys_;
};

} // namespace gpumc::cat

#endif // GPUMC_CAT_PAIR_SET_HPP
