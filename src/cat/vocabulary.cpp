#include "cat/vocabulary.hpp"

namespace gpumc::cat {

const Vocabulary &
Vocabulary::gpu()
{
    static const Vocabulary vocab = [] {
        Vocabulary v;
        v.sets = {
            // event kinds
            "W", "R", "M", "F", "B", "CBAR", "I", "IW", "RMW", "A",
            "NONPRIV", "_",
            // memory orders
            "WEAK", "RLX", "ACQ", "REL", "SC",
            // PTX instruction scopes
            "CTA", "GPU", "SYS",
            // Vulkan instruction scopes
            "SG", "WG", "QF", "DV",
            // PTX proxies and the alias proxy fence
            "GEN", "TEX", "SUR", "CON", "ALIAS",
            // Vulkan storage classes and storage-class semantics
            "SC0", "SC1", "SEMSC0", "SEMSC1",
            // Vulkan availability / visibility
            "AV", "VIS", "SEMAV", "SEMVIS", "AVDEVICE", "VISDEVICE",
        };
        v.rels = {
            "po", "rf", "co", "loc", "vloc", "id", "int", "ext",
            "addr", "data", "ctrl", "rmw",
            "sr", "scta", "ssg", "swg", "sqf", "ssw",
            "syncbar", "sync_barrier", "sync_fence",
        };
        return v;
    }();
    return vocab;
}

} // namespace gpumc::cat
