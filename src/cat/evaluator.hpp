/**
 * @file
 * Concrete fix-point evaluation of a `.cat` model over a materialized
 * execution (all events executed, base relations fully known). This is
 * the semantic ground truth used by the explicit-state baseline and for
 * cross-checking SMT witnesses.
 */

#ifndef GPUMC_CAT_EVALUATOR_HPP
#define GPUMC_CAT_EVALUATOR_HPP

#include <map>
#include <string>
#include <vector>

#include "cat/model.hpp"
#include "cat/pair_set.hpp"

namespace gpumc::cat {

/**
 * Read-only view of one concrete execution: the executed events (ids
 * 0..numEvents-1), their tag membership, and the base relations.
 */
class ExecutionView {
  public:
    virtual ~ExecutionView() = default;

    virtual int numEvents() const = 0;

    /** Does @p event carry base tag @p tag? (`_` matches everything.) */
    virtual bool inSet(int event, const std::string &tag) const = 0;

    /** Concrete pairs of the base relation @p name. */
    virtual const PairSet &baseRel(const std::string &name) const = 0;
};

/** Outcome of checking one axiom. */
struct AxiomCheck {
    const Axiom *axiom = nullptr;
    bool holds = true;
    /** For FlagNonEmpty axioms: the offending (flagged) pairs. */
    PairSet flagged;
};

class RelationEvaluator {
  public:
    RelationEvaluator(const CatModel &model, const ExecutionView &exec);

    /** Evaluate any relation-typed expression to its concrete pairs. */
    PairSet evalRel(const Expr &e);

    /** Evaluate any set-typed expression to an event membership mask. */
    std::vector<bool> evalSet(const Expr &e);

    /** Evaluate the let binding at @p index (memoized). */
    const PairSet &letValue(int index);

    /**
     * Check all non-flag axioms; returns true when the execution is
     * consistent with the model.
     */
    bool consistent();

    /**
     * Evaluate all `flag ~empty` axioms; the returned checks carry the
     * offending pairs (e.g. racy accesses for the Vulkan DRF flag).
     */
    std::vector<AxiomCheck> evalFlags();

  private:
    std::vector<int> allEvents() const;

    const CatModel &model_;
    const ExecutionView &exec_;
    std::map<int, PairSet> letRelCache_;
    std::map<int, std::vector<bool>> letSetCache_;
};

} // namespace gpumc::cat

#endif // GPUMC_CAT_EVALUATOR_HPP
