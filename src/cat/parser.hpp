/**
 * @file
 * Recursive-descent parser for `.cat` sources.
 *
 * Operator precedence (loosest to tightest):
 *   `|`  <  `;`  <  `\`  <  `&`  <  `*` (cartesian)  <  postfix ops
 *
 * The `*` token is ambiguous between binary cartesian product and
 * postfix Kleene closure; it is resolved by one-token lookahead: it is
 * binary exactly when the next token can begin an atom.
 */

#ifndef GPUMC_CAT_PARSER_HPP
#define GPUMC_CAT_PARSER_HPP

#include <string_view>

#include "cat/ast.hpp"

namespace gpumc::cat {

/** Parse a `.cat` source text. @throws FatalError on syntax errors. */
ParsedModel parseCat(std::string_view source);

} // namespace gpumc::cat

#endif // GPUMC_CAT_PARSER_HPP
