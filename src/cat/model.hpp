/**
 * @file
 * CatModel: a parsed, name-resolved and type-checked `.cat` consistency
 * model, ready for evaluation (explicit checker) or encoding (SMT).
 */

#ifndef GPUMC_CAT_MODEL_HPP
#define GPUMC_CAT_MODEL_HPP

#include <string>
#include <string_view>

#include "cat/ast.hpp"
#include "cat/vocabulary.hpp"

namespace gpumc::cat {

class CatModel {
  public:
    /**
     * Parse and check a `.cat` source.
     * @throws FatalError on syntax, unknown-name or type errors.
     */
    static CatModel fromSource(std::string_view source,
                               const Vocabulary &vocab = Vocabulary::gpu());

    /** Load a model from a file path. */
    static CatModel fromFile(const std::string &path,
                             const Vocabulary &vocab = Vocabulary::gpu());

    const std::string &name() const { return parsed_.modelName; }
    const std::vector<LetBinding> &lets() const { return parsed_.lets; }
    const std::vector<Axiom> &axioms() const { return parsed_.axioms; }
    const Vocabulary &vocabulary() const { return *vocab_; }

    /** True if the model contains at least one `flag ~empty` axiom. */
    bool hasFlaggedAxioms() const;

  private:
    CatModel(ParsedModel parsed, const Vocabulary &vocab);

    void resolveAndCheck();
    void resolveExpr(Expr &e, int numVisibleLets);

    ParsedModel parsed_;
    const Vocabulary *vocab_;
};

} // namespace gpumc::cat

#endif // GPUMC_CAT_MODEL_HPP
