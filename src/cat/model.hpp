/**
 * @file
 * CatModel: a parsed, name-resolved and type-checked `.cat` consistency
 * model, ready for evaluation (explicit checker) or encoding (SMT).
 */

#ifndef GPUMC_CAT_MODEL_HPP
#define GPUMC_CAT_MODEL_HPP

#include <string>
#include <string_view>

#include "cat/ast.hpp"
#include "cat/vocabulary.hpp"

namespace gpumc::cat {

/**
 * Stable 128-bit content fingerprint of a parsed model: the model name
 * plus a structural hash of every relation definition (let bindings
 * and axioms). Two CatModel objects with equal fingerprints evaluate
 * and encode identically, so the fingerprint — never the object's
 * address — can key caches of verification sessions and results. A
 * long-lived server reloads models, and a reloaded model can land on a
 * recycled allocation whose raw pointer would alias a stale session.
 */
struct ModelFingerprint {
    uint64_t hi = 0;
    uint64_t lo = 0;

    bool operator==(const ModelFingerprint &) const = default;
    bool operator<(const ModelFingerprint &other) const
    {
        return hi != other.hi ? hi < other.hi : lo < other.lo;
    }

    /** 32 hex digits, for logs and reports. */
    std::string str() const;
};

class CatModel {
  public:
    /**
     * Parse and check a `.cat` source.
     * @throws FatalError on syntax, unknown-name or type errors.
     */
    static CatModel fromSource(std::string_view source,
                               const Vocabulary &vocab = Vocabulary::gpu());

    /** Load a model from a file path. */
    static CatModel fromFile(const std::string &path,
                             const Vocabulary &vocab = Vocabulary::gpu());

    const std::string &name() const { return parsed_.modelName; }
    const std::vector<LetBinding> &lets() const { return parsed_.lets; }
    const std::vector<Axiom> &axioms() const { return parsed_.axioms; }
    const Vocabulary &vocabulary() const { return *vocab_; }

    /** True if the model contains at least one `flag ~empty` axiom. */
    bool hasFlaggedAxioms() const;

    /** Content fingerprint (computed once at construction). */
    const ModelFingerprint &fingerprint() const { return fingerprint_; }

  private:
    CatModel(ParsedModel parsed, const Vocabulary &vocab);

    void resolveAndCheck();
    void resolveExpr(Expr &e, int numVisibleLets);
    void computeFingerprint();

    ParsedModel parsed_;
    const Vocabulary *vocab_;
    ModelFingerprint fingerprint_;
};

} // namespace gpumc::cat

#endif // GPUMC_CAT_MODEL_HPP
