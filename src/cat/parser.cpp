#include "cat/parser.hpp"

#include "cat/lexer.hpp"

namespace gpumc::cat {

namespace {

class Parser {
  public:
    explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

    ParsedModel parse()
    {
        ParsedModel model;
        // Optional leading model name: a string, or a bare identifier that
        // is immediately followed by another statement keyword.
        if (peek().kind == TokKind::String) {
            model.modelName = next().text;
        } else if (peek().kind == TokKind::Ident &&
                   isStatementStart(peekAt(1).kind)) {
            model.modelName = next().text;
        }
        while (peek().kind != TokKind::End)
            parseStatement(model);
        return model;
    }

  private:
    static bool isStatementStart(TokKind k)
    {
        return k == TokKind::Let || k == TokKind::Acyclic ||
               k == TokKind::Irreflexive || k == TokKind::Empty ||
               k == TokKind::Flag || k == TokKind::End;
    }

    const Token &peek() const { return toks_[pos_]; }
    const Token &peekAt(size_t n) const
    {
        size_t idx = pos_ + n;
        return idx < toks_.size() ? toks_[idx] : toks_.back();
    }
    const Token &next() { return toks_[pos_++]; }

    Token expect(TokKind kind)
    {
        if (peek().kind != kind) {
            fatalAt(peek().loc, "expected ", tokKindName(kind), " but found ",
                    tokKindName(peek().kind),
                    peek().text.empty() ? "" : " '" + peek().text + "'");
        }
        return next();
    }

    void parseStatement(ParsedModel &model)
    {
        const Token &tok = peek();
        switch (tok.kind) {
          case TokKind::Let: {
            next();
            Token name = expect(TokKind::Ident);
            expect(TokKind::Equals);
            ExprPtr e = parseExpr();
            model.lets.push_back({name.text, std::move(e), name.loc});
            return;
          }
          case TokKind::Acyclic:
          case TokKind::Irreflexive:
          case TokKind::Empty: {
            AxiomKind kind = tok.kind == TokKind::Acyclic
                                 ? AxiomKind::Acyclic
                                 : tok.kind == TokKind::Irreflexive
                                       ? AxiomKind::Irreflexive
                                       : AxiomKind::Empty;
            SourceLoc loc = next().loc;
            ExprPtr e = parseExpr();
            std::string name;
            if (peek().kind == TokKind::As) {
                next();
                name = expect(TokKind::Ident).text;
            }
            model.axioms.push_back({kind, std::move(e), name, loc});
            return;
          }
          case TokKind::Flag: {
            SourceLoc loc = next().loc;
            expect(TokKind::Tilde);
            expect(TokKind::Empty);
            ExprPtr e = parseExpr();
            std::string name;
            if (peek().kind == TokKind::As) {
                next();
                name = expect(TokKind::Ident).text;
            } else {
                name = "flagged"; // default name when omitted (paper Fig. 8)
            }
            model.axioms.push_back(
                {AxiomKind::FlagNonEmpty, std::move(e), name, loc});
            return;
          }
          default:
            fatalAt(tok.loc, "expected a statement but found ",
                    tokKindName(tok.kind));
        }
    }

    // expr := seqlevel ('|' seqlevel)*
    ExprPtr parseExpr() { return parseUnion(); }

    ExprPtr parseUnion()
    {
        ExprPtr lhs = parseSeq();
        while (peek().kind == TokKind::Pipe) {
            SourceLoc loc = next().loc;
            ExprPtr rhs = parseSeq();
            auto node = std::make_unique<Expr>(ExprKind::Union, loc);
            node->lhs = std::move(lhs);
            node->rhs = std::move(rhs);
            lhs = std::move(node);
        }
        return lhs;
    }

    ExprPtr parseSeq()
    {
        ExprPtr lhs = parseDiff();
        while (peek().kind == TokKind::Semi) {
            SourceLoc loc = next().loc;
            ExprPtr rhs = parseDiff();
            auto node = std::make_unique<Expr>(ExprKind::Seq, loc);
            node->lhs = std::move(lhs);
            node->rhs = std::move(rhs);
            lhs = std::move(node);
        }
        return lhs;
    }

    ExprPtr parseDiff()
    {
        ExprPtr lhs = parseInter();
        while (peek().kind == TokKind::Backslash) {
            SourceLoc loc = next().loc;
            ExprPtr rhs = parseInter();
            auto node = std::make_unique<Expr>(ExprKind::Diff, loc);
            node->lhs = std::move(lhs);
            node->rhs = std::move(rhs);
            lhs = std::move(node);
        }
        return lhs;
    }

    ExprPtr parseInter()
    {
        ExprPtr lhs = parseCartesian();
        while (peek().kind == TokKind::Amp) {
            SourceLoc loc = next().loc;
            ExprPtr rhs = parseCartesian();
            auto node = std::make_unique<Expr>(ExprKind::Inter, loc);
            node->lhs = std::move(lhs);
            node->rhs = std::move(rhs);
            lhs = std::move(node);
        }
        return lhs;
    }

    bool starIsBinary() const
    {
        TokKind after = peekAt(1).kind;
        return after == TokKind::Ident || after == TokKind::LParen ||
               after == TokKind::LBracket;
    }

    ExprPtr parseCartesian()
    {
        ExprPtr lhs = parsePostfix();
        while (peek().kind == TokKind::Star && starIsBinary()) {
            SourceLoc loc = next().loc;
            ExprPtr rhs = parsePostfix();
            auto node = std::make_unique<Expr>(ExprKind::Cartesian, loc);
            node->lhs = std::move(lhs);
            node->rhs = std::move(rhs);
            lhs = std::move(node);
        }
        return lhs;
    }

    ExprPtr parsePostfix()
    {
        ExprPtr e = parseAtom();
        while (true) {
            TokKind k = peek().kind;
            if (k == TokKind::Plus || k == TokKind::Question ||
                k == TokKind::Inverse ||
                (k == TokKind::Star && !starIsBinary())) {
                SourceLoc loc = next().loc;
                ExprKind kind = k == TokKind::Plus ? ExprKind::TransClosure
                                : k == TokKind::Question ? ExprKind::Optional
                                : k == TokKind::Inverse
                                      ? ExprKind::Inverse
                                      : ExprKind::ReflTransClosure;
                auto node = std::make_unique<Expr>(kind, loc);
                node->lhs = std::move(e);
                e = std::move(node);
                continue;
            }
            break;
        }
        return e;
    }

    ExprPtr parseAtom()
    {
        const Token &tok = peek();
        switch (tok.kind) {
          case TokKind::Ident: {
            auto node = std::make_unique<Expr>(ExprKind::Name, tok.loc);
            node->name = tok.text;
            next();
            return node;
          }
          case TokKind::LParen: {
            next();
            ExprPtr e = parseExpr();
            expect(TokKind::RParen);
            return e;
          }
          case TokKind::LBracket: {
            SourceLoc loc = next().loc;
            ExprPtr inner = parseExpr();
            expect(TokKind::RBracket);
            auto node = std::make_unique<Expr>(ExprKind::Bracket, loc);
            node->lhs = std::move(inner);
            return node;
          }
          default:
            fatalAt(tok.loc, "expected an expression but found ",
                    tokKindName(tok.kind));
        }
    }

    std::vector<Token> toks_;
    size_t pos_ = 0;
};

} // namespace

ParsedModel
parseCat(std::string_view source)
{
    return Parser(tokenizeCat(source)).parse();
}

} // namespace gpumc::cat
