/**
 * @file
 * Occurrence-polarity analysis of `.cat` expressions — the soundness
 * core of the DPOR engine's partial-graph pruning.
 *
 * While the exploration grows an execution graph one decision at a
 * time, every still-undecided base relation is only *under*-
 * approximated: the edges decided so far are a subset of the edges of
 * any complete extension. An axiom `empty e` / `irreflexive e` /
 * `acyclic e` can be checked soundly on such a partial graph iff `e`
 * is *monotone* in every undecided base relation — then
 * e(partial) ⊆ e(extension), so a violation visible on the partial
 * graph persists in every completion and the whole subtree can be
 * pruned. Monotonicity is syntactic: a base relation occurring only
 * positively (never under the right-hand side of `\`) is monotone;
 * `Cartesian` and `[A]` products of sets never mention relations at
 * all. Polarities are computed through `let` bindings.
 */

#ifndef GPUMC_DPOR_MONOTONE_HPP
#define GPUMC_DPOR_MONOTONE_HPP

#include <map>
#include <string>
#include <vector>

#include "cat/ast.hpp"
#include "cat/model.hpp"

namespace gpumc::dpor {

/** How a base relation occurs inside an expression. */
enum class Polarity {
    None, ///< does not occur
    Pos,  ///< only positively (expression is monotone in it)
    Neg,  ///< only negatively (antitone)
    Both, ///< mixed occurrences
};

Polarity joinPolarity(Polarity a, Polarity b);
Polarity flipPolarity(Polarity p);

class PolarityAnalysis {
  public:
    explicit PolarityAnalysis(const cat::CatModel &model)
        : model_(&model)
    {
    }

    /** Polarity of base relation @p rel in @p expr (through lets). */
    Polarity polarityOf(const cat::Expr &expr, const std::string &rel);

    /**
     * Can a violation of @p axiom already be trusted on a partial
     * graph where every relation in @p undecided is a subset of its
     * final value? True iff the axiom expression is monotone (Pos or
     * None) in each of them. Flag axioms are never used for pruning.
     */
    bool prunableWithPartial(const cat::Axiom &axiom,
                             const std::vector<std::string> &undecided);

    /** Does the axiom's value ignore every relation in @p undecided? */
    bool constantIn(const cat::Axiom &axiom,
                    const std::vector<std::string> &undecided);

  private:
    const cat::CatModel *model_;
    std::map<std::pair<const cat::Expr *, std::string>, Polarity>
        cache_;
};

} // namespace gpumc::dpor

#endif // GPUMC_DPOR_MONOTONE_HPP
