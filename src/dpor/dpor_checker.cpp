#include "dpor/dpor_checker.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "analysis/concrete_execution.hpp"
#include "analysis/relation_analysis.hpp"
#include "cat/evaluator.hpp"
#include "dpor/monotone.hpp"
#include "program/event.hpp"
#include "program/unroller.hpp"
#include "support/trace.hpp"

namespace gpumc::dpor {

using cat::PairSet;
using prog::Event;
using prog::EventKind;
using prog::Opcode;
using prog::RmwKind;

namespace {

/** DFS control flow: keep going, cut the enclosing (rf) subtree, or
 *  unwind the whole exploration (budget exhausted / verdict settled). */
enum class Walk { Continue, CutSubtree, Abort };

} // namespace

struct DporChecker::Impl {
    const prog::Program &program;
    const cat::CatModel &model;
    DporOptions opts;

    prog::UnrolledProgram up;
    analysis::ExecAnalysis exec;
    analysis::RelationAnalysis ra;
    analysis::ValueSimulation sim;
    PolarityAnalysis polarity;

    std::vector<int> reads;                   // read event ids
    std::vector<std::vector<int>> candidates; // rf sources per read
    std::vector<int> rfChoice;                // current assignment

    // Writes grouped per location (id order), and the PTX per-pair
    // decision list.
    std::vector<std::vector<int>> locWrites;
    std::vector<std::vector<int>> orders; // current insertion prefixes
    std::vector<std::pair<int, int>> coPairs;
    std::vector<int> coChoice; // 0 unordered, 1 <, 2 >

    PairSet initCo;
    PairSet emptyRel;
    /** Static rels with *empty* barrier relations — the sound under-
     *  approximation used before values are simulated. */
    std::map<std::string, PairSet> preRfStatics;

    // Per-rf-subtree state (valid between simulate() and the end of
    // the subtree's exploration).
    PairSet rfFull;
    PairSet sfCurrent;
    std::map<std::string, PairSet> statics;
    bool subtreeConsistent = false;

    // Stage-classified axioms (see monotone.hpp).
    std::vector<const cat::Axiom *> rfStageAxioms;
    std::vector<const cat::Axiom *> coRootAxioms;
    std::vector<const cat::Axiom *> coStageAxioms;

    bool flagged = false;
    bool condRfDetermined = false; ///< assertion+filter register-only
    bool flagsCoConstant = false;  ///< flags ignore co and sync_fence

    Stopwatch watch;
    DporResult result;
    bool condTrueSomewhere = false;
    bool condFalseSomewhere = false;

    Impl(const prog::Program &p, const cat::CatModel &m, DporOptions o)
        : program(p), model(m), opts(o), up(prog::unroll(p, 1)),
          exec(up), ra(exec, m), sim(p, up), polarity(m)
    {
    }

    // ---- budget ---------------------------------------------------------

    bool deadlineExpired()
    {
        if (opts.deadline.expired() ||
            (opts.timeoutMs > 0 && watch.elapsedMs() > opts.timeoutMs)) {
            result.timedOut = true;
            return true;
        }
        return false;
    }

    bool overBudget()
    {
        if (opts.maxCandidates &&
            result.candidatesExplored >= opts.maxCandidates) {
            result.timedOut = true;
            return true;
        }
        return deadlineExpired();
    }

    // ---- support checks -------------------------------------------------

    bool checkSupported()
    {
        if (!program.isStraightLine()) {
            result.supported = false;
            result.unsupportedReason = "control-flow instructions";
            return false;
        }
        for (const prog::Thread &t : program.threads) {
            for (const prog::Instruction &ins : t.instrs) {
                if (ins.op == Opcode::Rmw &&
                    ins.rmwKind == RmwKind::Cas) {
                    result.supported = false;
                    result.unsupportedReason = "compare-and-swap";
                    return false;
                }
            }
        }
        if (program.assertion &&
            analysis::condUsesMemory(*program.assertion) &&
            program.arch == prog::Arch::Ptx) {
            result.supported = false;
            result.unsupportedReason =
                "memory-valued condition under partial coherence";
            return false;
        }
        return true;
    }

    // ---- verdict bookkeeping --------------------------------------------

    /** Everything the result reports is already determined. */
    bool done() const
    {
        bool condSettled = program.assertKind == prog::AssertKind::Forall
            ? condFalseSomewhere
            : condTrueSomewhere;
        return condSettled && (!flagged || result.raceFound);
    }

    // ---- partial-graph consistency --------------------------------------

    bool axiomViolated(cat::RelationEvaluator &ev, const cat::Axiom &ax)
    {
        PairSet v = ev.evalRel(*ax.expr);
        switch (ax.kind) {
          case cat::AxiomKind::Empty:
            return !v.empty();
          case cat::AxiomKind::Irreflexive:
            return !v.isIrreflexive();
          case cat::AxiomKind::Acyclic:
            return !v.isAcyclic();
          case cat::AxiomKind::FlagNonEmpty:
            return false;
        }
        return false;
    }

    /**
     * Check a stage's monotone axioms on a partial graph. Every
     * undecided relation is supplied as its decided-so-far subset, so
     * any violation is final (see monotone.hpp).
     */
    bool partialViolated(const std::vector<const cat::Axiom *> &axioms,
                         const std::map<std::string, PairSet> &base,
                         const PairSet &rf, const PairSet &co,
                         const PairSet &sf)
    {
        if (axioms.empty())
            return false;
        result.consistencyChecks++;
        std::map<std::string, PairSet> rels = base;
        rels["rf"] = rf;
        rels["co"] = co;
        rels["sync_fence"] = sf;
        analysis::ConcreteView view(up, std::move(rels));
        cat::RelationEvaluator ev(model, view);
        for (const cat::Axiom *ax : axioms) {
            if (axiomViolated(ev, *ax))
                return true;
        }
        return false;
    }

    PairSet rfPrefix(size_t upTo) const
    {
        PairSet rf;
        for (size_t i = 0; i < upTo; ++i)
            rf.add(rfChoice[i], reads[i]);
        return rf;
    }

    // ---- leaf evaluation ------------------------------------------------

    Walk evaluateLeaf(const PairSet &co)
    {
        result.candidatesExplored++;
        if (overBudget())
            return Walk::Abort;

        std::map<std::string, PairSet> rels = statics;
        rels["rf"] = rfFull;
        rels["co"] = co;
        rels["sync_fence"] = sfCurrent;
        analysis::ConcreteView view(up, std::move(rels));
        cat::RelationEvaluator ev(model, view);
        result.consistencyChecks++;
        if (!ev.consistent())
            return Walk::Continue;

        auto valuation = [&](const prog::CondTerm &term) {
            return sim.evalTerm(term, co);
        };
        if (program.filter &&
            !prog::evalCond(*program.filter, valuation)) {
            return Walk::Continue;
        }
        result.consistentBehaviours++;
        subtreeConsistent = true;

        bool cond = !program.assertion ||
                    prog::evalCond(*program.assertion, valuation);
        (cond ? condTrueSomewhere : condFalseSomewhere) = true;

        if (flagged && !result.raceFound) {
            for (const cat::AxiomCheck &check : ev.evalFlags()) {
                if (!check.holds)
                    result.raceFound = true;
            }
        }

        if (done())
            return Walk::Abort; // verdict fully determined

        // One consistent leaf settles the whole rf subtree when the
        // condition is rf-determined and the race flags cannot change
        // with the remaining co/sf choices.
        if (condRfDetermined &&
            (!flagged || result.raceFound || flagsCoConstant)) {
            result.earlyStops++;
            return Walk::CutSubtree;
        }
        return Walk::Continue;
    }

    // ---- coherence exploration ------------------------------------------

    PairSet coFromOrders() const
    {
        PairSet co = initCo;
        for (const std::vector<int> &order : orders) {
            for (size_t i = 0; i < order.size(); ++i) {
                for (size_t j = i + 1; j < order.size(); ++j)
                    co.add(order[i], order[j]);
            }
        }
        return co;
    }

    /** Vulkan: insert writes into per-location total orders. */
    Walk exploreTotalCo(size_t locIdx, size_t writeIdx)
    {
        if (deadlineExpired())
            return Walk::Abort;
        if (locIdx == locWrites.size())
            return evaluateLeaf(coFromOrders());
        if (writeIdx == locWrites[locIdx].size())
            return exploreTotalCo(locIdx + 1, 0);

        int w = locWrites[locIdx][writeIdx];
        std::vector<int> &order = orders[locIdx];
        // Append first: the id-ordered (po-like) coherence order is
        // usually consistent, so the first leaf lands quickly.
        for (size_t pos = order.size() + 1; pos-- > 0;) {
            order.insert(order.begin() + static_cast<long>(pos), w);
            Walk walk = Walk::Continue;
            if (partialViolated(coStageAxioms, statics, rfFull,
                                coFromOrders(), sfCurrent)) {
                result.prunedCoBranches++;
            } else {
                walk = exploreTotalCo(locIdx, writeIdx + 1);
            }
            order.erase(order.begin() + static_cast<long>(pos));
            if (walk != Walk::Continue)
                return walk;
        }
        return Walk::Continue;
    }

    PairSet coFromChoices(size_t upTo) const
    {
        PairSet co = initCo;
        for (size_t k = 0; k < upTo; ++k) {
            if (coChoice[k] == 1)
                co.add(coPairs[k].first, coPairs[k].second);
            else if (coChoice[k] == 2)
                co.add(coPairs[k].second, coPairs[k].first);
        }
        return co;
    }

    /**
     * The closure of a decided prefix only grows along extensions, so
     * a prefix whose closure already orders an unordered-chosen pair
     * (or both directions of any pair) stays non-canonical in every
     * completion and can be cut immediately — the leaf set is exactly
     * the explicit baseline's canonical assignments.
     */
    bool prefixCanonical(const PairSet &closed, size_t upTo) const
    {
        for (size_t k = 0; k < upTo; ++k) {
            bool fwd = closed.contains(coPairs[k].first,
                                       coPairs[k].second);
            bool bwd = closed.contains(coPairs[k].second,
                                       coPairs[k].first);
            if (fwd && bwd)
                return false; // cyclic: invalid
            if (coChoice[k] == 0 && (fwd || bwd))
                return false; // duplicate of an ordered choice
        }
        return true;
    }

    /** PTX: decide same-location write pairs one at a time. */
    Walk explorePartialCo(size_t pairIdx)
    {
        if (deadlineExpired())
            return Walk::Abort;
        if (pairIdx == coPairs.size())
            return evaluateLeaf(
                coFromChoices(pairIdx).transitiveClosure());

        // Ordered-by-id first so the po-like coherence comes up first.
        for (int c : {1, 2, 0}) {
            coChoice[pairIdx] = c;
            PairSet closed =
                coFromChoices(pairIdx + 1).transitiveClosure();
            if (!prefixCanonical(closed, pairIdx + 1))
                continue;
            Walk walk = Walk::Continue;
            if (partialViolated(coStageAxioms, statics, rfFull, closed,
                                sfCurrent)) {
                result.prunedCoBranches++;
            } else {
                walk = explorePartialCo(pairIdx + 1);
            }
            if (walk != Walk::Continue)
                return walk;
        }
        return Walk::Continue;
    }

    Walk exploreCo()
    {
        // Axioms that ignore co entirely (or are monotone in it) are
        // decided at the subtree root: a violation with co still empty
        // rules out every coherence completion under this (rf, sf).
        if (partialViolated(coRootAxioms, statics, rfFull, initCo,
                            sfCurrent)) {
            result.prunedSubtrees++;
            return Walk::Continue;
        }
        if (program.arch == prog::Arch::Ptx) {
            coChoice.assign(coPairs.size(), 0);
            return explorePartialCo(0);
        }
        for (std::vector<int> &order : orders)
            order.clear();
        return exploreTotalCo(0, 0);
    }

    // ---- sync-fence exploration -----------------------------------------

    Walk exploreSf()
    {
        std::vector<int> fences;
        for (int e = 0; e < up.numEvents(); ++e) {
            const Event &ev = up.events[e];
            if (ev.kind == EventKind::Fence && ev.tags.count("SC"))
                fences.push_back(e);
        }
        if (fences.empty() || program.arch != prog::Arch::Ptx) {
            sfCurrent = PairSet();
            return exploreCo();
        }
        const PairSet &ub = ra.baseBounds("sync_fence").ub;
        std::sort(fences.begin(), fences.end());
        std::set<std::vector<uint64_t>> seen;
        do {
            if (deadlineExpired())
                return Walk::Abort;
            PairSet sf;
            for (size_t i = 0; i < fences.size(); ++i) {
                for (size_t j = i + 1; j < fences.size(); ++j) {
                    if (ub.contains(fences[i], fences[j]))
                        sf.add(fences[i], fences[j]);
                }
            }
            std::vector<uint64_t> key;
            key.reserve(sf.size());
            for (auto [a, b] : sf.pairs())
                key.push_back(PairSet::key(a, b));
            std::sort(key.begin(), key.end());
            if (!seen.insert(std::move(key)).second) {
                result.sfDeduped++;
                continue;
            }
            sfCurrent = std::move(sf);
            Walk walk = exploreCo();
            if (walk != Walk::Continue)
                return walk;
        } while (std::next_permutation(fences.begin(), fences.end()));
        return Walk::Continue;
    }

    // ---- rf exploration -------------------------------------------------

    Walk exploreRfComplete()
    {
        if (!sim.simulate(reads, rfChoice))
            return Walk::Continue; // value-inconsistent rf choice
        rfFull = rfPrefix(reads.size());
        statics = analysis::concreteStaticRels(ra, sim.barrierIds());
        subtreeConsistent = false;

        // A register-only filter is decided by rf alone: failing it
        // kills every behaviour of this subtree.
        if (condRfDetermined && program.filter) {
            auto valuation = [&](const prog::CondTerm &term) {
                return sim.evalTerm(term, initCo);
            };
            if (!prog::evalCond(*program.filter, valuation)) {
                result.prunedByFilter++;
                return Walk::Continue;
            }
        }

        Walk walk = exploreSf();
        if (walk == Walk::CutSubtree)
            return Walk::Continue; // subtree settled, next rf choice
        return walk;
    }

    Walk exploreRf(size_t readIndex)
    {
        if (deadlineExpired())
            return Walk::Abort;
        if (readIndex == reads.size())
            return exploreRfComplete();
        for (int w : candidates[readIndex]) {
            rfChoice[readIndex] = w;
            result.rfBranches++;
            if (!rfStageAxioms.empty() &&
                partialViolated(rfStageAxioms, preRfStatics,
                                rfPrefix(readIndex + 1), initCo,
                                emptyRel)) {
                result.prunedRfPrefixes++;
                continue;
            }
            Walk walk = exploreRf(readIndex + 1);
            if (walk != Walk::Continue)
                return walk; // only Abort propagates this high
        }
        return Walk::Continue;
    }

    // ---- setup & entry point --------------------------------------------

    void classifyAxioms()
    {
        // During rf branching co, sync_fence and the barrier relations
        // are all still undecided; during coherence insertion only co
        // is (sf is fixed before co, values after rf).
        const std::vector<std::string> undecidedAtRf = {
            "rf", "co", "sync_fence", "syncbar", "sync_barrier"};
        const std::vector<std::string> undecidedAtCo = {"co"};
        const std::vector<std::string> coAndSf = {"co", "sync_fence"};

        flagsCoConstant = true;
        for (const cat::Axiom &ax : model.axioms()) {
            if (ax.kind == cat::AxiomKind::FlagNonEmpty) {
                flagsCoConstant =
                    flagsCoConstant && polarity.constantIn(ax, coAndSf);
                continue;
            }
            if (polarity.prunableWithPartial(ax, undecidedAtRf) &&
                polarity.polarityOf(*ax.expr, "rf") == Polarity::Pos) {
                rfStageAxioms.push_back(&ax);
            }
            if (polarity.prunableWithPartial(ax, undecidedAtCo)) {
                coRootAxioms.push_back(&ax);
                if (polarity.polarityOf(*ax.expr, "co") ==
                    Polarity::Pos) {
                    coStageAxioms.push_back(&ax);
                }
            }
        }
    }

    void publishCounters() const
    {
        auto add = [](const char *name, uint64_t v) {
            trace::counterAdd(name, static_cast<int64_t>(v));
        };
        add("dpor.runs", 1);
        add("dpor.candidates", result.candidatesExplored);
        add("dpor.consistent", result.consistentBehaviours);
        add("dpor.rfBranches", result.rfBranches);
        add("dpor.prunedRfPrefixes", result.prunedRfPrefixes);
        add("dpor.prunedCoBranches", result.prunedCoBranches);
        add("dpor.prunedSubtrees", result.prunedSubtrees);
        add("dpor.prunedByFilter", result.prunedByFilter);
        add("dpor.sfDeduped", result.sfDeduped);
        add("dpor.earlyStops", result.earlyStops);
        add("dpor.consistencyChecks", result.consistencyChecks);
        if (result.timedOut)
            add("dpor.timeouts", 1);
    }

    DporResult run()
    {
        if (!checkSupported())
            return result;

        flagged = model.hasFlaggedAxioms();
        condRfDetermined =
            (!program.assertion ||
             !analysis::condUsesMemory(*program.assertion)) &&
            (!program.filter ||
             !analysis::condUsesMemory(*program.filter));
        classifyAxioms();

        for (int e = up.numInitEvents; e < up.numEvents(); ++e) {
            if (up.events[e].kind == EventKind::Read)
                reads.push_back(e);
        }
        const PairSet &rfUb = ra.baseBounds("rf").ub;
        candidates.resize(reads.size());
        for (size_t i = 0; i < reads.size(); ++i) {
            for (auto [w, r] : rfUb.pairs()) {
                if (r == reads[i])
                    candidates[i].push_back(w);
            }
        }
        rfChoice.assign(reads.size(), -1);

        std::map<int, std::vector<int>> perLoc =
            analysis::concreteWritesPerLoc(up);
        for (auto &[loc, writes] : perLoc) {
            (void)loc;
            std::sort(writes.begin(), writes.end());
            for (size_t i = 0; i < writes.size(); ++i) {
                for (size_t j = i + 1; j < writes.size(); ++j)
                    coPairs.push_back({writes[i], writes[j]});
            }
            locWrites.push_back(std::move(writes));
        }
        orders.resize(locWrites.size());
        initCo = analysis::concreteInitCoEdges(up);
        preRfStatics =
            analysis::concreteStaticRels(ra, /*barrierIds=*/{});

        exploreRf(0);

        switch (program.assertKind) {
          case prog::AssertKind::Exists:
            result.conditionHolds = condTrueSomewhere;
            break;
          case prog::AssertKind::NotExists:
            result.conditionHolds = !condTrueSomewhere;
            break;
          case prog::AssertKind::Forall:
            result.conditionHolds = !condFalseSomewhere;
            break;
        }
        result.timeMs = watch.elapsedMs();
        publishCounters();
        return result;
    }
};

DporChecker::DporChecker(const prog::Program &program,
                         const cat::CatModel &model, DporOptions options)
    : impl_(new Impl(program, model, options))
{
}

DporChecker::~DporChecker()
{
    delete impl_;
}

DporResult
DporChecker::run()
{
    return impl_->run();
}

} // namespace gpumc::dpor
