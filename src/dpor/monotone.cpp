#include "dpor/monotone.hpp"

namespace gpumc::dpor {

Polarity
joinPolarity(Polarity a, Polarity b)
{
    if (a == Polarity::None)
        return b;
    if (b == Polarity::None)
        return a;
    if (a == b)
        return a;
    return Polarity::Both;
}

Polarity
flipPolarity(Polarity p)
{
    switch (p) {
      case Polarity::Pos:
        return Polarity::Neg;
      case Polarity::Neg:
        return Polarity::Pos;
      default:
        return p;
    }
}

Polarity
PolarityAnalysis::polarityOf(const cat::Expr &expr,
                             const std::string &rel)
{
    auto key = std::make_pair(&expr, rel);
    auto it = cache_.find(key);
    if (it != cache_.end())
        return it->second;
    // Seed the cache so a (malformed) recursive let cannot loop; the
    // semantic pass guarantees lets only reference earlier bindings.
    cache_[key] = Polarity::None;

    Polarity p = Polarity::None;
    switch (expr.kind) {
      case cat::ExprKind::Name:
        if (expr.resolution == cat::NameRes::BaseRel &&
            expr.name == rel) {
            p = Polarity::Pos;
        } else if (expr.resolution == cat::NameRes::LetRef) {
            p = polarityOf(*model_->lets()[expr.letIndex].expr, rel);
        }
        break;
      case cat::ExprKind::Union:
      case cat::ExprKind::Inter:
      case cat::ExprKind::Seq:
        p = joinPolarity(polarityOf(*expr.lhs, rel),
                         polarityOf(*expr.rhs, rel));
        break;
      case cat::ExprKind::Diff:
        p = joinPolarity(polarityOf(*expr.lhs, rel),
                         flipPolarity(polarityOf(*expr.rhs, rel)));
        break;
      case cat::ExprKind::Cartesian:
      case cat::ExprKind::Bracket:
        // Set-typed operands: sets are built from base tags only and
        // cannot mention a base relation.
        p = Polarity::None;
        break;
      case cat::ExprKind::Inverse:
      case cat::ExprKind::TransClosure:
      case cat::ExprKind::ReflTransClosure:
      case cat::ExprKind::Optional:
        p = polarityOf(*expr.lhs, rel);
        break;
    }
    cache_[key] = p;
    return p;
}

bool
PolarityAnalysis::prunableWithPartial(
    const cat::Axiom &axiom, const std::vector<std::string> &undecided)
{
    if (axiom.kind == cat::AxiomKind::FlagNonEmpty)
        return false;
    for (const std::string &rel : undecided) {
        Polarity p = polarityOf(*axiom.expr, rel);
        if (p != Polarity::None && p != Polarity::Pos)
            return false;
    }
    return true;
}

bool
PolarityAnalysis::constantIn(const cat::Axiom &axiom,
                             const std::vector<std::string> &undecided)
{
    for (const std::string &rel : undecided) {
        if (polarityOf(*axiom.expr, rel) != Polarity::None)
            return false;
    }
    return true;
}

} // namespace gpumc::dpor
