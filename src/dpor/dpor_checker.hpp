/**
 * @file
 * DPOR-style stateless model checking engine — the repo's third
 * verification engine next to SMT (`src/smt` + `src/encoder`) and the
 * enumerate-everything explicit baseline (`src/explicit`), after the
 * GPUMC approach (PAPERS.md, arXiv 2505.20207).
 *
 * Instead of materializing every rf / coherence / SC-fence assignment
 * up front, the engine grows one execution graph incrementally:
 *
 *  - Reads are added first; each branches over its rf sources from the
 *    relation analysis upper bound. po-later writes are legal sources
 *    ("promised" edges — the duplicate-free form of GenMC revisits for
 *    straight-line programs, whose event set is execution-independent).
 *  - Writes are then inserted into the coherence order one at a time
 *    (total order per location under Vulkan, three-way per-pair
 *    choices with incremental antisymmetry/canonicity under PTX), and
 *    PTX SC fences into the sync_fence order (deduplicated).
 *
 * After every decision the partial graph is checked against the subset
 * of model axioms that are *monotone* in the still-undecided relations
 * (see monotone.hpp): a violation on the partial graph persists in all
 * completions, so the whole subtree is pruned. Complete graphs are
 * checked exactly through the same cat::RelationEvaluator the explicit
 * baseline uses, so PTX and Vulkan models are supported uniformly, and
 * once enough behaviours have been seen to settle the quantified
 * condition and the race flags the exploration stops early.
 *
 * Support envelope matches `src/explicit` (straight-line, no CAS, no
 * memory-valued conditions under PTX partial coherence); verdicts have
 * the same shape and semantics as ExplicitResult.
 */

#ifndef GPUMC_DPOR_DPOR_CHECKER_HPP
#define GPUMC_DPOR_DPOR_CHECKER_HPP

#include <cstdint>
#include <string>

#include "cat/model.hpp"
#include "program/program.hpp"
#include "support/stats.hpp"

namespace gpumc::dpor {

struct DporOptions {
    /** Abort after this many complete graphs evaluated (0 = no
     *  limit). The result is then marked timedOut. */
    uint64_t maxCandidates = 0;
    /** Wall-clock budget in milliseconds (0 = no limit). */
    double timeoutMs = 0.0;
    /** External deadline, honored inside the exploration loop in
     *  addition to timeoutMs (default: unlimited). */
    Deadline deadline;
};

struct DporResult {
    /** False when the test uses features the engine cannot handle
     *  (control flow, CAS, memory-valued conditions under partial co). */
    bool supported = true;
    std::string unsupportedReason;

    bool timedOut = false;

    /** Same semantics as Verifier safety / ExplicitResult. */
    bool conditionHolds = false;

    /** A consistent behaviour with a flagged (racy) pair exists. */
    bool raceFound = false;

    /** Complete execution graphs evaluated (leaves reached). Strictly
     *  fewer than the explicit baseline whenever pruning or early
     *  stopping fires. */
    uint64_t candidatesExplored = 0;
    /** Consistent behaviours *seen* — a lower bound, not a census:
     *  subtrees are cut as soon as the verdict is determined. */
    uint64_t consistentBehaviours = 0;
    double timeMs = 0.0;

    // --- exploration counters (also exported as dpor.* trace
    // counters) -----------------------------------------------------
    uint64_t rfBranches = 0;        ///< rf source choices tried
    uint64_t prunedRfPrefixes = 0;  ///< rf prefixes cut by partial axioms
    uint64_t prunedCoBranches = 0;  ///< co insertions cut by partial axioms
    uint64_t prunedSubtrees = 0;    ///< (rf,sf) subtrees cut at the root
    uint64_t prunedByFilter = 0;    ///< rf subtrees cut by the filter
    uint64_t sfDeduped = 0;         ///< duplicate sync-fence sets skipped
    uint64_t earlyStops = 0;        ///< subtrees stopped after a leaf
    uint64_t consistencyChecks = 0; ///< evaluator runs (partial + full)
};

class DporChecker {
  public:
    DporChecker(const prog::Program &program, const cat::CatModel &model,
                DporOptions options = {});
    ~DporChecker();

    /** Explore once; the result answers safety and DRF. */
    DporResult run();

  private:
    struct Impl;
    Impl *impl_;
};

} // namespace gpumc::dpor

#endif // GPUMC_DPOR_DPOR_CHECKER_HPP
