#include "encoder/program_encoder.hpp"

#include <cmath>

namespace gpumc::encoder {

using prog::EventKind;
using prog::NodeSpecial;
using prog::Opcode;
using prog::RmwKind;
using prog::UNode;
using smt::BitVec;
using smt::Lit;

ProgramEncoder::ProgramEncoder(analysis::RelationAnalysis &ra,
                               smt::Circuit &circuit, EncoderOptions opts)
    : ra_(ra), circuit_(circuit), bv_(circuit), opts_(opts)
{
}

void
ProgramEncoder::encodeStructure()
{
    const prog::UnrolledProgram &up = unrolled();
    guards_.assign(up.nodes.size(), circuit_.falseLit());
    envAfter_.resize(up.nodes.size());
    eventExec_.assign(up.numEvents(), circuit_.falseLit());
    values_.resize(up.numEvents());
    barrierIds_.resize(up.numEvents());

    // Init writes always execute with their constant value.
    for (int e = 0; e < up.numInitEvents; ++e) {
        eventExec_[e] = circuit_.trueLit();
        values_[e] = bv_.constant(
            static_cast<uint64_t>(up.events[e].initValue),
            opts_.valueBits);
    }

    for (int t = 0; t < up.program->numThreads(); ++t)
        encodeThread(t);

    encodeRf();
    encodeCo();
    encodeSyncFence();
}

smt::BitVec
ProgramEncoder::evalOperand(const RegEnv &env, const prog::Operand &op)
{
    if (!op.isReg())
        return bv_.constant(static_cast<uint64_t>(op.value),
                            opts_.valueBits);
    auto it = env.find(op.reg);
    if (it != env.end())
        return it->second;
    return bv_.constant(0, opts_.valueBits); // unassigned registers read 0
}

void
ProgramEncoder::encodeThread(int t)
{
    const prog::UnrolledProgram &up = unrolled();

    // Branch condition literal per node, filled when visiting branches.
    std::map<int, Lit> branchCond;

    for (int idx : up.threadNodes[t]) {
        const UNode &node = up.nodes[idx];

        // Guard and incoming register environment.
        Lit guard;
        RegEnv env;
        if (node.preds.empty()) {
            guard = circuit_.trueLit(); // thread entry: threads all start
        } else {
            std::vector<Lit> edges;
            bool first = true;
            for (const prog::UEdge &edge : node.preds) {
                Lit el = guards_[edge.from];
                if (edge.kind == prog::EdgeKind::Taken &&
                    branchCond.count(edge.from)) {
                    el = circuit_.mkAnd(el, branchCond[edge.from]);
                } else if (edge.kind == prog::EdgeKind::NotTaken) {
                    el = circuit_.mkAnd(
                        el, circuit_.mkNot(branchCond[edge.from]));
                }
                edges.push_back(el);

                const RegEnv &predEnv = envAfter_[edge.from];
                if (first) {
                    env = predEnv;
                    first = false;
                } else {
                    // Merge: select the incoming environment by edge.
                    for (const auto &[reg, val] : predEnv) {
                        auto it = env.find(reg);
                        if (it == env.end()) {
                            env.emplace(reg,
                                        bv_.ite(el, val,
                                                bv_.constant(
                                                    0, opts_.valueBits)));
                        } else {
                            it->second = bv_.ite(el, val, it->second);
                        }
                    }
                    for (auto &[reg, val] : env) {
                        if (!predEnv.count(reg)) {
                            val = bv_.ite(el,
                                          bv_.constant(0, opts_.valueBits),
                                          val);
                        }
                    }
                }
            }
            guard = circuit_.mkOr(edges);
        }
        guards_[idx] = guard;

        if (node.special != NodeSpecial::None || !node.instr) {
            envAfter_[idx] = std::move(env);
            continue;
        }

        const prog::Instruction &ins = *node.instr;
        switch (ins.op) {
          case Opcode::Load: {
            BitVec val = bv_.fresh(opts_.valueBits);
            values_[node.readEvent] = val;
            eventExec_[node.readEvent] = guard;
            env[ins.dst] = val;
            break;
          }
          case Opcode::Store: {
            values_[node.writeEvent] = evalOperand(env, ins.src);
            eventExec_[node.writeEvent] = guard;
            break;
          }
          case Opcode::Rmw: {
            BitVec readVal = bv_.fresh(opts_.valueBits);
            values_[node.readEvent] = readVal;
            eventExec_[node.readEvent] = guard;
            BitVec operand = evalOperand(env, ins.src);
            Lit writeExec = guard;
            BitVec writeVal = operand;
            switch (ins.rmwKind) {
              case RmwKind::Add:
                writeVal = bv_.add(readVal, operand);
                break;
              case RmwKind::Exchange:
                writeVal = operand;
                break;
              case RmwKind::Cas: {
                // Write only on success (old value == expected).
                Lit success = bv_.eq(readVal, operand);
                writeExec = circuit_.mkAnd(guard, success);
                writeVal = evalOperand(env, ins.src2);
                break;
              }
            }
            values_[node.writeEvent] = writeVal;
            eventExec_[node.writeEvent] = writeExec;
            env[ins.dst] = readVal;
            break;
          }
          case Opcode::Fence:
          case Opcode::ProxyFence:
          case Opcode::AvDevice:
          case Opcode::VisDevice:
            eventExec_[node.eventId] = guard;
            break;
          case Opcode::Barrier:
            eventExec_[node.eventId] = guard;
            barrierIds_[node.eventId] = evalOperand(env, ins.barrierId);
            break;
          case Opcode::Mov:
            env[ins.dst] = evalOperand(env, ins.src);
            break;
          case Opcode::AddReg:
            env[ins.dst] = bv_.add(evalOperand(env, ins.branchLhs),
                                   evalOperand(env, ins.src));
            break;
          case Opcode::BranchEq:
            branchCond[idx] = bv_.eq(evalOperand(env, ins.branchLhs),
                                     evalOperand(env, ins.branchRhs));
            break;
          case Opcode::BranchNe:
            branchCond[idx] =
                circuit_.mkNot(bv_.eq(evalOperand(env, ins.branchLhs),
                                      evalOperand(env, ins.branchRhs)));
            break;
          case Opcode::Label:
          case Opcode::Goto:
            break;
        }
        envAfter_[idx] = std::move(env);
    }
}

void
ProgramEncoder::encodeRf()
{
    const prog::UnrolledProgram &up = unrolled();
    const cat::PairSet &ub = ra_.baseBounds("rf").ub;

    // Group candidates by read.
    std::map<int, std::vector<int>> writesOf;
    for (auto [w, r] : ub.pairs())
        writesOf[r].push_back(w);

    for (int r = 0; r < up.numEvents(); ++r) {
        if (up.events[r].kind != EventKind::Read)
            continue;
        auto it = writesOf.find(r);
        GPUMC_ASSERT(it != writesOf.end(),
                     "read event without rf candidates: ",
                     up.events[r].display);
        std::vector<Lit> lits;
        for (int w : it->second) {
            Lit lit = circuit_.freshVar();
            rf_.emplace(key(w, r), lit);
            lits.push_back(lit);
            // rf implies both executed and value transfer.
            circuit_.assertImplies(lit, eventExec_[w]);
            circuit_.assertImplies(lit, eventExec_[r]);
            circuit_.assertImplies(
                lit, bv_.eq(*values_[r], *values_[w]));
        }
        // Executed reads take their value from exactly one write.
        std::vector<Lit> atLeast = lits;
        atLeast.push_back(circuit_.mkNot(eventExec_[r]));
        circuit_.assertClause(atLeast);
        circuit_.assertAtMostOne(lits);
    }
}

void
ProgramEncoder::encodeCo()
{
    const prog::UnrolledProgram &up = unrolled();
    const cat::PairSet &ub = ra_.baseBounds("co").ub;

    // Collect non-init writes per location.
    std::map<int, std::vector<int>> writesPerLoc;
    for (int e = 0; e < up.numEvents(); ++e) {
        const prog::Event &ev = up.events[e];
        if (ev.kind == EventKind::Write && !ev.isInit)
            writesPerLoc[ev.physLoc].push_back(e);
    }

    for (auto &[loc, writes] : writesPerLoc) {
        (void)loc;
        int clockBits = 1;
        while ((1 << clockBits) < static_cast<int>(writes.size()) + 1)
            clockBits++;
        std::map<int, BitVec> clock;
        for (int w : writes)
            clock.emplace(w, bv_.fresh(clockBits));

        if (opts_.coTotal) {
            // Distinct clocks for co-executed writes ensure totality.
            for (size_t i = 0; i < writes.size(); ++i) {
                for (size_t j = i + 1; j < writes.size(); ++j) {
                    int w1 = writes[i], w2 = writes[j];
                    circuit_.assertClause(
                        {circuit_.mkNot(eventExec_[w1]),
                         circuit_.mkNot(eventExec_[w2]),
                         circuit_.mkNot(
                             bv_.eq(clock.at(w1), clock.at(w2)))});
                }
            }
        }

        for (int w1 : writes) {
            for (int w2 : writes) {
                if (w1 == w2 || !ub.contains(w1, w2))
                    continue;
                Lit lit;
                if (opts_.coTotal) {
                    // co(w1,w2) <-> exec & exec & clk(w1) < clk(w2)
                    lit = circuit_.mkAnd(
                        {eventExec_[w1], eventExec_[w2],
                         bv_.ult(clock.at(w1), clock.at(w2))});
                } else {
                    // Partial order: free variable constrained by the
                    // clocks (antisymmetry + acyclicity) and explicit
                    // transitivity below.
                    lit = circuit_.freshVar();
                    circuit_.assertImplies(lit, eventExec_[w1]);
                    circuit_.assertImplies(lit, eventExec_[w2]);
                    circuit_.assertImplies(
                        lit, bv_.ult(clock.at(w1), clock.at(w2)));
                }
                co_.emplace(key(w1, w2), lit);
            }
        }

        if (!opts_.coTotal) {
            // Transitivity of the partial order.
            for (int w1 : writes) {
                for (int w2 : writes) {
                    if (w1 == w2 || !co_.count(key(w1, w2)))
                        continue;
                    for (int w3 : writes) {
                        if (w3 == w1 || w3 == w2 ||
                            !co_.count(key(w2, w3)) ||
                            !co_.count(key(w1, w3))) {
                            continue;
                        }
                        circuit_.assertClause(
                            {circuit_.mkNot(co_.at(key(w1, w2))),
                             circuit_.mkNot(co_.at(key(w2, w3))),
                             co_.at(key(w1, w3))});
                    }
                }
            }
        }
    }

    // Init writes come first in co: co(init, w) holds iff w executes.
    for (auto [w1, w2] : ub.pairs()) {
        if (up.events[w1].isInit)
            co_.emplace(key(w1, w2), eventExec_[w2]);
    }
}

void
ProgramEncoder::encodeSyncFence()
{
    const prog::UnrolledProgram &up = unrolled();
    if (up.program->arch != prog::Arch::Ptx)
        return;
    const cat::PairSet &ub = ra_.baseBounds("sync_fence").ub;
    if (ub.empty())
        return;

    int clockBits = 1;
    while ((1 << clockBits) < up.numEvents())
        clockBits++;
    std::map<int, BitVec> clock;
    auto clockOf = [&](int f) -> const BitVec & {
        auto it = clock.find(f);
        if (it == clock.end())
            it = clock.emplace(f, bv_.fresh(clockBits)).first;
        return it->second;
    };

    for (auto [f1, f2] : ub.pairs()) {
        if (syncFence_.count(key(f1, f2)))
            continue;
        Lit fwd = circuit_.freshVar();
        Lit bwd = circuit_.freshVar();
        syncFence_.emplace(key(f1, f2), fwd);
        syncFence_.emplace(key(f2, f1), bwd);
        Lit both = circuit_.mkAnd(eventExec_[f1], eventExec_[f2]);
        // Table 4: executed pairs are ordered one way or the other.
        circuit_.assertClause({circuit_.mkNot(both), fwd, bwd});
        circuit_.assertImplies(fwd, both);
        circuit_.assertImplies(bwd, both);
        circuit_.assertImplies(fwd, bv_.ult(clockOf(f1), clockOf(f2)));
        circuit_.assertImplies(bwd, bv_.ult(clockOf(f2), clockOf(f1)));
    }
}

Lit
ProgramEncoder::rfLit(int w, int r) const
{
    auto it = rf_.find(key(w, r));
    return it == rf_.end() ? circuit_.falseLit() : it->second;
}

Lit
ProgramEncoder::coLit(int w1, int w2) const
{
    auto it = co_.find(key(w1, w2));
    return it == co_.end() ? circuit_.falseLit() : it->second;
}

Lit
ProgramEncoder::syncFenceLit(int f1, int f2) const
{
    auto it = syncFence_.find(key(f1, f2));
    return it == syncFence_.end() ? circuit_.falseLit() : it->second;
}

const BitVec &
ProgramEncoder::valueOf(int event) const
{
    GPUMC_ASSERT(values_[event].has_value(), "event has no value");
    return *values_[event];
}

const BitVec &
ProgramEncoder::barrierIdOf(int event) const
{
    GPUMC_ASSERT(barrierIds_[event].has_value(),
                 "event has no barrier id");
    return *barrierIds_[event];
}

Lit
ProgramEncoder::threadTerminated(int t) const
{
    return guards_[unrolled().threadExit[t]];
}

smt::BitVec
ProgramEncoder::finalRegister(int thread, const std::string &reg)
{
    const RegEnv &env = envAfter_[unrolled().threadExit[thread]];
    auto it = env.find(reg);
    if (it != env.end())
        return it->second;
    return bv_.constant(0, opts_.valueBits);
}

Lit
ProgramEncoder::coMaximalLit(int w)
{
    auto it = coMax_.find(w);
    if (it != coMax_.end())
        return it->second;
    const cat::PairSet &ub = ra_.baseBounds("co").ub;
    std::vector<Lit> conj = {eventExec_[w]};
    for (auto [a, b] : ub.pairs()) {
        if (a == w)
            conj.push_back(circuit_.mkNot(coLit(a, b)));
    }
    Lit lit = circuit_.mkAnd(conj);
    coMax_.emplace(w, lit);
    return lit;
}

smt::BitVec
ProgramEncoder::finalMemValue(int physLoc)
{
    auto it = finalMem_.find(physLoc);
    if (it != finalMem_.end())
        return it->second;

    const prog::UnrolledProgram &up = unrolled();
    BitVec result = bv_.fresh(opts_.valueBits);
    // The final value is the value of some executed co-maximal write.
    std::vector<Lit> cases;
    for (int e = 0; e < up.numEvents(); ++e) {
        const prog::Event &ev = up.events[e];
        if (ev.kind != EventKind::Write || ev.physLoc != physLoc)
            continue;
        Lit isFinal = circuit_.mkAnd(coMaximalLit(e),
                                     bv_.eq(result, valueOf(e)));
        cases.push_back(isFinal);
    }
    GPUMC_ASSERT(!cases.empty(), "location without writes");
    circuit_.assertClause(cases);
    finalMem_.emplace(physLoc, result);
    return result;
}

smt::BitVec
ProgramEncoder::condTermValue(const prog::CondTerm &term)
{
    switch (term.kind) {
      case prog::CondTerm::Kind::Const:
        return bv_.constant(static_cast<uint64_t>(term.value),
                            opts_.valueBits);
      case prog::CondTerm::Kind::Reg:
        return finalRegister(term.thread, term.name);
      case prog::CondTerm::Kind::Mem:
        return finalMemValue(unrolled().program->physLoc(term.name));
    }
    GPUMC_PANIC("unhandled condition term");
}

Lit
ProgramEncoder::condLit(const prog::Cond &cond)
{
    switch (cond.kind) {
      case prog::Cond::Kind::True:
        return circuit_.trueLit();
      case prog::Cond::Kind::And:
        return circuit_.mkAnd(condLit(*cond.lhs), condLit(*cond.rhs));
      case prog::Cond::Kind::Or:
        return circuit_.mkOr(condLit(*cond.lhs), condLit(*cond.rhs));
      case prog::Cond::Kind::Not:
        return circuit_.mkNot(condLit(*cond.lhs));
      case prog::Cond::Kind::Eq:
        return bv_.eq(condTermValue(cond.tl), condTermValue(cond.tr));
      case prog::Cond::Kind::Ne:
        return circuit_.mkNot(
            bv_.eq(condTermValue(cond.tl), condTermValue(cond.tr)));
    }
    GPUMC_PANIC("unhandled condition kind");
}

} // namespace gpumc::encoder
