#include "encoder/relation_encoder.hpp"

#include <algorithm>
#include <functional>

#include "support/trace.hpp"

namespace gpumc::encoder {

using cat::Expr;
using cat::ExprKind;
using cat::NameRes;
using cat::PairSet;
using smt::Lit;

namespace {

/**
 * Upper bound on the longest path length in the support graph of
 * @p edges: Tarjan SCC condensation, then the heaviest path through
 * the DAG weighted by SCC sizes. The closure encoding needs
 * ceil(log2(L)) squaring layers to cover paths of length L.
 */
int
longestPathBound(const PairSet &edges)
{
    if (edges.empty())
        return 1;
    // Collect nodes and adjacency.
    std::map<int, std::vector<int>> succ;
    std::map<int, int> index;
    for (auto [a, b] : edges.pairs()) {
        succ[a].push_back(b);
        succ.try_emplace(b);
    }
    int n = 0;
    for (auto &[node, _] : succ)
        index[node] = n++;

    // Iterative Tarjan.
    std::vector<int> low(n, -1), disc(n, -1), sccOf(n, -1);
    std::vector<bool> onStack(n, false);
    std::vector<int> stack;
    std::vector<int> sccSize;
    int timer = 0;
    std::vector<int> nodes(n);
    for (auto &[node, idx] : index)
        nodes[idx] = node;

    struct Frame {
        int v;
        size_t childIdx;
    };
    for (int start = 0; start < n; ++start) {
        if (disc[start] != -1)
            continue;
        std::vector<Frame> frames{{start, 0}};
        while (!frames.empty()) {
            Frame &f = frames.back();
            int v = f.v;
            if (f.childIdx == 0) {
                disc[v] = low[v] = timer++;
                stack.push_back(v);
                onStack[v] = true;
            }
            const auto &children = succ[nodes[v]];
            bool descended = false;
            while (f.childIdx < children.size()) {
                int w = index[children[f.childIdx++]];
                if (disc[w] == -1) {
                    frames.push_back({w, 0});
                    descended = true;
                    break;
                }
                if (onStack[w])
                    low[v] = std::min(low[v], disc[w]);
            }
            if (descended)
                continue;
            if (low[v] == disc[v]) {
                int size = 0;
                while (true) {
                    int w = stack.back();
                    stack.pop_back();
                    onStack[w] = false;
                    sccOf[w] = static_cast<int>(sccSize.size());
                    size++;
                    if (w == v)
                        break;
                }
                sccSize.push_back(size);
            }
            frames.pop_back();
            if (!frames.empty()) {
                Frame &parent = frames.back();
                low[parent.v] = std::min(low[parent.v], low[v]);
            }
        }
    }

    // Longest path through the condensation (SCCs are numbered in
    // reverse topological order by Tarjan).
    int numScc = static_cast<int>(sccSize.size());
    std::vector<int> best(numScc, 0);
    for (int scc = 0; scc < numScc; ++scc)
        best[scc] = sccSize[scc];
    for (int scc = 0; scc < numScc; ++scc) {
        // Successor SCCs have smaller Tarjan indices; process ascending
        // so successors are finalized first.
        for (auto [a, b] : edges.pairs()) {
            if (sccOf[index[a]] != scc)
                continue;
            int target = sccOf[index[b]];
            if (target != scc)
                best[scc] = std::max(best[scc],
                                     sccSize[scc] + best[target]);
        }
    }
    return *std::max_element(best.begin(), best.end());
}

/**
 * All base-relation names reachable from @p expr (through let
 * references), for the tracing-time bound-size counters.
 */
void
collectBaseRels(const Expr &expr, const cat::CatModel &model,
                std::set<const Expr *> &seen, std::set<std::string> &out)
{
    if (!seen.insert(&expr).second)
        return;
    if (expr.kind == ExprKind::Name) {
        if (expr.resolution == NameRes::BaseRel)
            out.insert(expr.name);
        else if (expr.resolution == NameRes::LetRef)
            collectBaseRels(*model.lets()[expr.letIndex].expr, model,
                            seen, out);
        return;
    }
    if (expr.lhs)
        collectBaseRels(*expr.lhs, model, seen, out);
    if (expr.rhs)
        collectBaseRels(*expr.rhs, model, seen, out);
}

} // namespace

RelationEncoder::RelationEncoder(analysis::RelationAnalysis &ra,
                                 ProgramEncoder &pe)
    : ra_(ra), pe_(pe), c_(pe.circuit())
{
    // Consistency axioms forbid relation membership (want-false);
    // flagged axioms are asserted non-empty (want-true).
    for (const cat::Axiom &axiom : ra_.model().axioms()) {
        markPolarity(*axiom.expr,
                     axiom.kind == cat::AxiomKind::FlagNonEmpty);
    }
    // Under tracing, force the bound computation of every base
    // relation the model references so the metrics export carries
    // `rel.<name>.{ub,lb}Pairs` for all of them — even those whose
    // encoding is later short-circuited away.
    if (trace::Tracer::instance().enabled()) {
        std::set<const Expr *> seen;
        std::set<std::string> baseRels;
        for (const cat::LetBinding &let : ra_.model().lets())
            collectBaseRels(*let.expr, ra_.model(), seen, baseRels);
        for (const cat::Axiom &axiom : ra_.model().axioms())
            collectBaseRels(*axiom.expr, ra_.model(), seen, baseRels);
        for (const std::string &name : baseRels)
            ra_.baseBounds(name);
    }
}

void
RelationEncoder::markPolarity(const Expr &expr, bool solverWantsTrue)
{
    auto &seen = solverWantsTrue ? wantTrue_ : wantFalse_;
    if (!seen.insert(&expr).second)
        return;
    switch (expr.kind) {
      case ExprKind::Name:
        if (expr.resolution == NameRes::LetRef) {
            markPolarity(*ra_.model().lets()[expr.letIndex].expr,
                         solverWantsTrue);
        }
        return;
      case ExprKind::Diff:
        markPolarity(*expr.lhs, solverWantsTrue);
        markPolarity(*expr.rhs, !solverWantsTrue); // flipped
        return;
      case ExprKind::Union:
      case ExprKind::Inter:
      case ExprKind::Seq:
        markPolarity(*expr.lhs, solverWantsTrue);
        markPolarity(*expr.rhs, solverWantsTrue);
        return;
      case ExprKind::Cartesian:
      case ExprKind::Bracket:
        return; // static membership
      case ExprKind::Inverse:
      case ExprKind::TransClosure:
      case ExprKind::ReflTransClosure:
      case ExprKind::Optional:
        markPolarity(*expr.lhs, solverWantsTrue);
        return;
    }
}

const std::unordered_map<int, std::vector<int>> &
RelationEncoder::successors(const Expr &expr)
{
    auto it = succCache_.find(&expr);
    if (it != succCache_.end())
        return it->second;
    std::unordered_map<int, std::vector<int>> succ;
    for (auto [a, b] : ra_.boundsOf(expr).ub.pairs())
        succ[a].push_back(b);
    return succCache_.emplace(&expr, std::move(succ)).first->second;
}

Lit
RelationEncoder::encode(const Expr &expr, int a, int b)
{
    const analysis::Bounds &bounds = ra_.boundsOf(expr);
    if (!bounds.ub.contains(a, b))
        return c_.falseLit();

    PairKey cacheKey{&expr, PairSet::key(a, b)};
    auto it = cache_.find(cacheKey);
    if (it != cache_.end())
        return it->second;

    // Per-.cat-relation encoding-size attribution (tracing only): the
    // outermost *named* relation on the recursion stack is charged
    // with every variable and clause the backend gains while its
    // formula (including all sub-expressions) is built.
    const std::string *attributed = nullptr;
    if (expr.kind == ExprKind::Name && activeRel_ == nullptr &&
        trace::Tracer::instance().enabled()) {
        attributed = &expr.name;
        activeRel_ = attributed;
        activeRelVarsBase_ = c_.backend().numVars();
        activeRelClausesBase_ = c_.backend().numClauses();
    }

    Lit execBoth = c_.mkAnd(pe_.execLit(a), pe_.execLit(b));
    Lit result;
    if (bounds.lb.contains(a, b) &&
        (pe_.options().useLowerBounds || expr.kind == ExprKind::Name)) {
        result = execBoth;
    } else {
        switch (expr.kind) {
          case ExprKind::Name:
            if (expr.resolution == NameRes::LetRef) {
                result = encode(*ra_.model().lets()[expr.letIndex].expr,
                                a, b);
            } else {
                result = encodeBase(expr.name, a, b);
            }
            break;
          case ExprKind::Union:
            result = c_.mkOr(encode(*expr.lhs, a, b),
                             encode(*expr.rhs, a, b));
            break;
          case ExprKind::Inter:
            result = c_.mkAnd(encode(*expr.lhs, a, b),
                              encode(*expr.rhs, a, b));
            break;
          case ExprKind::Diff:
            result = c_.mkAnd(encode(*expr.lhs, a, b),
                              c_.mkNot(encode(*expr.rhs, a, b)));
            break;
          case ExprKind::Seq:
            result = encodeSeq(expr, a, b);
            break;
          case ExprKind::Cartesian:
            // Membership is static; the upper bound already filtered.
            result = execBoth;
            break;
          case ExprKind::Inverse:
            result = encode(*expr.lhs, b, a);
            break;
          case ExprKind::Bracket:
            GPUMC_ASSERT(a == b, "bracket bound must be diagonal");
            result = pe_.execLit(a);
            break;
          case ExprKind::Optional:
            result = a == b ? pe_.execLit(a) : encode(*expr.lhs, a, b);
            break;
          case ExprKind::ReflTransClosure:
            result = a == b ? pe_.execLit(a) : encodeClosure(expr, a, b);
            break;
          case ExprKind::TransClosure:
            result = encodeClosure(expr, a, b);
            break;
          default:
            GPUMC_PANIC("unhandled relation expression");
        }
    }
    cache_.emplace(cacheKey, result);
    if (attributed) {
        trace::Tracer &tracer = trace::Tracer::instance();
        tracer.counterAdd("rel." + *attributed + ".vars",
                          c_.backend().numVars() - activeRelVarsBase_);
        tracer.counterAdd("rel." + *attributed + ".clauses",
                          c_.backend().numClauses() -
                              activeRelClausesBase_);
        tracer.counterAdd("rel." + *attributed + ".encodedLits", 1);
        activeRel_ = nullptr;
    }
    return result;
}

Lit
RelationEncoder::encodeBase(const std::string &name, int a, int b)
{
    if (name == "rf")
        return pe_.rfLit(a, b);
    if (name == "co")
        return pe_.coLit(a, b);
    if (name == "sync_fence")
        return pe_.syncFenceLit(a, b);
    Lit execBoth = c_.mkAnd(pe_.execLit(a), pe_.execLit(b));
    if (name == "syncbar" || name == "sync_barrier") {
        // Reached only for dynamic barrier ids (static equality is a
        // lower-bound pair): require equal runtime ids.
        return c_.mkAnd(execBoth,
                        pe_.bv().eq(pe_.barrierIdOf(a),
                                    pe_.barrierIdOf(b)));
    }
    // All remaining base relations are static.
    return execBoth;
}

Lit
RelationEncoder::encodeSeq(const Expr &expr, int a, int b)
{
    const PairSet &rhsUb = ra_.boundsOf(*expr.rhs).ub;
    const auto &succ = successors(*expr.lhs);
    auto it = succ.find(a);
    if (it == succ.end())
        return c_.falseLit();
    std::vector<Lit> cases;
    for (int k : it->second) {
        if (!rhsUb.contains(k, b))
            continue;
        cases.push_back(c_.mkAnd(encode(*expr.lhs, a, k),
                                 encode(*expr.rhs, k, b)));
    }
    return c_.mkOr(cases);
}

Lit
RelationEncoder::encodeClosure(const Expr &expr, int a, int b)
{
    auto infoIt = closureInfo_.find(&expr);
    if (infoIt == closureInfo_.end()) {
        ClosureInfo info;
        const PairSet &childUb = ra_.boundsOf(*expr.lhs).ub;
        info.closUb = childUb.transitiveClosure();
        for (auto [x, y] : childUb.pairs())
            info.childSucc[x].push_back(y);
        int longestPath = longestPathBound(childUb);
        info.idxBits = 1;
        while ((1 << info.idxBits) < longestPath + 1)
            info.idxBits++;
        infoIt = closureInfo_.emplace(&expr, std::move(info)).first;
    }
    return closureLit(infoIt->second, expr, a, b);
}

/**
 * Demand-driven least-fixpoint encoding of transitive closure: a pair
 * variable tc(a,b) is *justified* either by the child edge (a,b)
 * directly, or by a child edge (a,k) plus tc(k,b) whose justification
 * index is strictly smaller — the decreasing index rules out circular
 * self-support, so the encoding is exactly the least fix-point.
 * Completeness (paths imply tc) is asserted edge-wise.
 *
 * Only pairs that are actually queried (and the columns feeding them)
 * are materialized.
 */
Lit
RelationEncoder::closureLit(ClosureInfo &info, const Expr &expr, int a,
                            int b)
{
    if (!info.closUb.contains(a, b))
        return c_.falseLit();
    PairKey key{&expr, PairSet::key(a, b)};
    auto it = closurePairs_.find(key);
    if (it != closurePairs_.end())
        return it->second;

    // Polarity: in want-false-only positions the solver already
    // prefers the least fix-point, so the cheap completeness direction
    // is enough; otherwise well-foundedness indices are required.
    bool sound = needsSoundness(expr);

    // Insert the variable before recursing: cycles hit the memo.
    Lit v = c_.freshVar();
    closurePairs_.emplace(key, v);
    if (sound) {
        closureIdx_.emplace(key, pe_.bv().fresh(info.idxBits));
    }

    std::vector<Lit> justifications;
    auto succIt = info.childSucc.find(a);
    if (succIt != info.childSucc.end()) {
        for (int k : succIt->second) {
            Lit step = encode(*expr.lhs, a, k);
            if (c_.isFalse(step))
                continue;
            if (k == b) {
                // Direct child edge: justifies tc unconditionally.
                c_.assertImplies(step, v);
                justifications.push_back(step);
                continue;
            }
            if (!info.closUb.contains(k, b))
                continue;
            Lit rest = closureLit(info, expr, k, b);
            if (c_.isFalse(rest))
                continue;
            Lit both = c_.mkAnd(step, rest);
            // Completeness: any step + suffix implies the closure.
            c_.assertImplies(both, v);
            if (sound) {
                const smt::BitVec &restIdx =
                    closureIdx_.at(PairKey{&expr, PairSet::key(k, b)});
                const smt::BitVec &ownIdx = closureIdx_.at(key);
                justifications.push_back(
                    c_.mkAnd(both, pe_.bv().ult(restIdx, ownIdx)));
            }
        }
    }
    // Soundness: the pair holds only with a well-founded justification.
    if (sound)
        c_.assertImplies(v, c_.mkOr(justifications));
    return v;
}

void
RelationEncoder::assertAcyclic(const Expr &expr)
{
    const PairSet &ub = ra_.boundsOf(expr).ub;
    if (ub.empty())
        return;
    int n = pe_.unrolled().numEvents();
    int clockBits = 1;
    while ((1 << clockBits) < n + 1)
        clockBits++;
    std::map<int, smt::BitVec> clock;
    auto clockOf = [&](int e) -> const smt::BitVec & {
        auto it = clock.find(e);
        if (it == clock.end())
            it = clock.emplace(e, pe_.bv().fresh(clockBits)).first;
        return it->second;
    };
    for (auto [a, b] : ub.pairs()) {
        if (a == b) {
            c_.assertLit(c_.mkNot(encode(expr, a, b)));
            continue;
        }
        c_.assertImplies(encode(expr, a, b),
                         pe_.bv().ult(clockOf(a), clockOf(b)));
    }
}

void
RelationEncoder::assertAxioms()
{
    for (const cat::Axiom &axiom : ra_.model().axioms()) {
        switch (axiom.kind) {
          case cat::AxiomKind::Empty:
            for (auto [a, b] : ra_.boundsOf(*axiom.expr).ub.pairs())
                c_.assertLit(c_.mkNot(encode(*axiom.expr, a, b)));
            break;
          case cat::AxiomKind::Irreflexive:
            for (auto [a, b] : ra_.boundsOf(*axiom.expr).ub.pairs()) {
                if (a == b)
                    c_.assertLit(c_.mkNot(encode(*axiom.expr, a, b)));
            }
            break;
          case cat::AxiomKind::Acyclic:
            assertAcyclic(*axiom.expr);
            break;
          case cat::AxiomKind::FlagNonEmpty:
            break; // handled by encodeFlags
        }
    }
}

std::vector<FlagViolation>
RelationEncoder::encodeFlags()
{
    std::vector<FlagViolation> out;
    for (const cat::Axiom &axiom : ra_.model().axioms()) {
        if (axiom.kind != cat::AxiomKind::FlagNonEmpty)
            continue;
        FlagViolation violation;
        violation.axiom = &axiom;
        std::vector<Lit> lits;
        for (auto [a, b] : ra_.boundsOf(*axiom.expr).ub.pairs()) {
            Lit lit = encode(*axiom.expr, a, b);
            if (c_.isFalse(lit))
                continue;
            violation.pairLits.push_back({{a, b}, lit});
            lits.push_back(lit);
        }
        violation.lit = c_.mkOr(lits);
        out.push_back(std::move(violation));
    }
    return out;
}

} // namespace gpumc::encoder
