/**
 * @file
 * Structural SMT encoding of an unrolled program (Section 6.3, Table 4):
 * control-flow guards, symbolic register/memory values as bit-vectors,
 * the reads-from relation (exactly-one semantics), coherence (total per
 * location for Vulkan, partial order with explicit transitivity for
 * PTX), sync_fence clocks and the final state used by litmus conditions.
 */

#ifndef GPUMC_ENCODER_PROGRAM_ENCODER_HPP
#define GPUMC_ENCODER_PROGRAM_ENCODER_HPP

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "analysis/relation_analysis.hpp"
#include "smt/bitvector.hpp"
#include "smt/circuit.hpp"

namespace gpumc::encoder {

struct EncoderOptions {
    /** Bit width of data values. */
    int valueBits = 8;
    /** Encode coherence as a total order per location (false for PTX). */
    bool coTotal = true;
    /**
     * Use lower bounds from the relation analysis to shortcut static
     * pairs to exec(a) & exec(b) (Section 6.2). Disabled only by the
     * relation-analysis ablation benchmark.
     */
    bool useLowerBounds = true;
    /**
     * Emit the well-foundedness (index) justification for every
     * closure, ignoring the polarity analysis. Correct but much more
     * expensive; only the encoding ablation enables this.
     */
    bool forceClosureSoundness = false;
};

class ProgramEncoder {
  public:
    ProgramEncoder(analysis::RelationAnalysis &ra, smt::Circuit &circuit,
                   EncoderOptions opts);

    /** Encode guards, values, rf, co and sync_fence. */
    void encodeStructure();

    smt::Circuit &circuit() { return circuit_; }
    smt::BitVecBuilder &bv() { return bv_; }
    const EncoderOptions &options() const { return opts_; }
    const prog::UnrolledProgram &unrolled() const
    {
        return ra_.unrolled();
    }

    // --- structural queries (valid after encodeStructure) ---------------
    smt::Lit guardOf(int node) const { return guards_[node]; }
    smt::Lit execLit(int event) const { return eventExec_[event]; }

    /** rf literal for a candidate pair; false literal otherwise. */
    smt::Lit rfLit(int w, int r) const;
    /** co literal for a candidate pair; false literal otherwise. */
    smt::Lit coLit(int w1, int w2) const;
    /** sync_fence literal for a candidate pair. */
    smt::Lit syncFenceLit(int f1, int f2) const;

    /** Value written/read by a memory event. */
    const smt::BitVec &valueOf(int event) const;
    /** Barrier id of a control-barrier event. */
    const smt::BitVec &barrierIdOf(int event) const;

    /** Guard of the normal-termination node of a thread. */
    smt::Lit threadTerminated(int t) const;

    /** Final value of a register (its value at the thread's exit). */
    smt::BitVec finalRegister(int thread, const std::string &reg);
    /** Final value of a physical memory location (co-maximal write). */
    smt::BitVec finalMemValue(int physLoc);

    /** w is executed and co-maximal for its location. */
    smt::Lit coMaximalLit(int w);

    /** Encode a litmus condition over the final state. */
    smt::Lit condLit(const prog::Cond &cond);

    // --- raw pair-literal maps (for witness extraction) ------------------
    const std::map<uint64_t, smt::Lit> &rfMap() const { return rf_; }
    const std::map<uint64_t, smt::Lit> &coMap() const { return co_; }
    const std::map<uint64_t, smt::Lit> &syncFenceMap() const
    {
        return syncFence_;
    }

  private:
    using RegEnv = std::map<std::string, smt::BitVec>;

    smt::BitVec evalOperand(const RegEnv &env, const prog::Operand &op);
    void encodeThread(int t);
    void encodeRf();
    void encodeCo();
    void encodeSyncFence();
    smt::BitVec condTermValue(const prog::CondTerm &term);

    analysis::RelationAnalysis &ra_;
    smt::Circuit &circuit_;
    smt::BitVecBuilder bv_;
    EncoderOptions opts_;

    std::vector<smt::Lit> guards_;            // per node
    std::vector<smt::Lit> eventExec_;         // per event
    std::vector<RegEnv> envAfter_;            // per node
    std::vector<std::optional<smt::BitVec>> values_;     // per event
    std::vector<std::optional<smt::BitVec>> barrierIds_; // per event

    std::map<uint64_t, smt::Lit> rf_;
    std::map<uint64_t, smt::Lit> co_;
    std::map<uint64_t, smt::Lit> syncFence_;
    std::map<int, smt::Lit> coMax_;
    std::map<int, smt::BitVec> finalMem_;

    static uint64_t key(int a, int b)
    {
        return cat::PairSet::key(a, b);
    }
};

} // namespace gpumc::encoder

#endif // GPUMC_ENCODER_PROGRAM_ENCODER_HPP
