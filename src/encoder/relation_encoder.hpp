/**
 * @file
 * SMT encoding of derived `.cat` relations and axioms over the sparse
 * upper bounds from the relation analysis (Sections 6.2/6.3).
 *
 * Each (expression, event-pair) gets a literal:
 *  - pairs outside the upper bound are the constant false;
 *  - pairs inside the lower bound reduce to exec(a) & exec(b);
 *  - other pairs get their definitional formula (union = or, ...).
 *
 * Transitive closures are encoded exactly (least fix-point) by
 * stratified repeated squaring over the static upper bound; levels are
 * stratified, so no cyclic justification can occur.
 */

#ifndef GPUMC_ENCODER_RELATION_ENCODER_HPP
#define GPUMC_ENCODER_RELATION_ENCODER_HPP

#include <set>
#include <unordered_map>

#include "encoder/program_encoder.hpp"

namespace gpumc::encoder {

/** One flagged (`flag ~empty`) axiom's encoded violation condition. */
struct FlagViolation {
    const cat::Axiom *axiom = nullptr;
    smt::Lit lit;                  // true iff the flagged set is non-empty
    std::vector<std::pair<cat::EventPair, smt::Lit>> pairLits;
};

class RelationEncoder {
  public:
    RelationEncoder(analysis::RelationAnalysis &ra, ProgramEncoder &pe);

    /** Literal for "pair (a,b) is in relation @p expr". */
    smt::Lit encode(const cat::Expr &expr, int a, int b);

    /** Assert all non-flag axioms of the model. */
    void assertAxioms();

    /** Build violation literals for all `flag ~empty` axioms. */
    std::vector<FlagViolation> encodeFlags();

  private:
    /** Per-closure-node static data, built on first use. */
    struct ClosureInfo {
        cat::PairSet closUb;                      // tc of the child ub
        std::unordered_map<int, std::vector<int>> childSucc;
        int idxBits = 4;
    };

    smt::Lit encodeBase(const std::string &name, int a, int b);
    smt::Lit encodeSeq(const cat::Expr &expr, int a, int b);
    smt::Lit encodeClosure(const cat::Expr &expr, int a, int b);
    smt::Lit closureLit(ClosureInfo &info, const cat::Expr &expr, int a,
                        int b);
    void assertAcyclic(const cat::Expr &expr);

    /**
     * Polarity analysis: mark sub-expressions by whether a satisfying
     * assignment could *benefit* from the relation being spuriously
     * true ("want-true", e.g. under a difference inside a consistency
     * axiom). Closures only reachable in want-false positions can be
     * encoded with the completeness direction alone — the solver
     * already prefers the least fix-point there. Closures reachable in
     * a want-true position need the decreasing-index justification.
     */
    void markPolarity(const cat::Expr &expr, bool solverWantsTrue);
    bool needsSoundness(const cat::Expr &expr) const
    {
        return pe_.options().forceClosureSoundness ||
               wantTrue_.count(&expr) != 0;
    }

    /** Successor adjacency of an upper bound, cached per expression. */
    const std::unordered_map<int, std::vector<int>> &
    successors(const cat::Expr &expr);

    struct PairKey {
        const void *node;
        uint64_t pair;
        bool operator==(const PairKey &o) const
        {
            return node == o.node && pair == o.pair;
        }
    };
    struct PairKeyHash {
        size_t operator()(const PairKey &k) const
        {
            return std::hash<const void *>()(k.node) ^
                   std::hash<uint64_t>()(k.pair * 0x9e3779b97f4a7c15ULL);
        }
    };

    analysis::RelationAnalysis &ra_;
    ProgramEncoder &pe_;
    smt::Circuit &c_;

    std::unordered_map<PairKey, smt::Lit, PairKeyHash> cache_;
    std::unordered_map<const cat::Expr *, ClosureInfo> closureInfo_;
    // Closure pair variables and their justification-index vectors.
    std::unordered_map<PairKey, smt::Lit, PairKeyHash> closurePairs_;
    std::unordered_map<PairKey, smt::BitVec, PairKeyHash> closureIdx_;
    std::unordered_map<const cat::Expr *,
                       std::unordered_map<int, std::vector<int>>>
        succCache_;
    std::set<const cat::Expr *> wantTrue_;
    std::set<const cat::Expr *> wantFalse_;

    // Tracing-only: the outermost named relation currently being
    // encoded, and the backend var/clause counts when it started —
    // encode() charges the deltas to `rel.<name>.{vars,clauses}`.
    const std::string *activeRel_ = nullptr;
    int64_t activeRelVarsBase_ = 0;
    int64_t activeRelClausesBase_ = 0;
};

} // namespace gpumc::encoder

#endif // GPUMC_ENCODER_RELATION_ENCODER_HPP
