/**
 * @file
 * The whole-program IR: shared variables, threads with their placement
 * in the GPU execution hierarchy, instructions, and the litmus
 * condition (Section 2.2 of the paper).
 */

#ifndef GPUMC_PROGRAM_PROGRAM_HPP
#define GPUMC_PROGRAM_PROGRAM_HPP

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "program/assertion.hpp"
#include "program/instruction.hpp"
#include "program/types.hpp"

namespace gpumc::prog {

/**
 * Where a thread lives in the GPU hierarchy. PTX threads use {cta,
 * gpu}; Vulkan threads use {sg, wg, qf}. Unused coordinates stay 0.
 */
struct ThreadPlacement {
    int cta = 0;
    int gpu = 0;
    int sg = 0;
    int wg = 0;
    int qf = 0;
    /** Thread participates in Vulkan system-synchronizes-with. */
    bool ssw = false;
};

struct Thread {
    std::string name; // "P0", "P1", ...
    ThreadPlacement placement;
    std::vector<Instruction> instrs;
};

/**
 * Structural 128-bit hash of a program's semantic IR (two independent
 * 64-bit passes). Programs with equal fingerprints unroll and encode
 * identically, so a fingerprint can key caches of verification
 * sessions. Cosmetic fields (the litmus name, `@` metadata, source
 * locations) do not contribute.
 */
struct ProgramFingerprint {
    uint64_t hi = 0;
    uint64_t lo = 0;

    bool operator==(const ProgramFingerprint &) const = default;
    bool operator<(const ProgramFingerprint &other) const
    {
        return hi != other.hi ? hi < other.hi : lo < other.lo;
    }

    /** 32 hex digits, for logs and reports. */
    std::string str() const;
};

/** Shared-variable declaration from the litmus prelude. */
struct VarDecl {
    std::string name;
    int64_t init = 0;
    /**
     * Name of the variable this one aliases (same physical location,
     * different virtual address); empty when the variable is its own
     * location. Used for the PTX proxy tests (paper Fig. 5).
     */
    std::string aliasOf;
    /** Vulkan storage class of the underlying memory object. */
    StorageClass storageClass = StorageClass::Sc0;
};

class Program {
  public:
    Arch arch = Arch::Ptx;
    std::string name;
    std::vector<VarDecl> vars;
    std::vector<Thread> threads;

    AssertKind assertKind = AssertKind::Exists;
    CondPtr assertion;          // nullptr means "true"
    CondPtr filter;             // optional behaviour filter

    /**
     * Free-form metadata from `@expect` / `@config` comment directives
     * (expected verdicts for the corpus harness, loop bounds, ...).
     */
    std::map<std::string, std::string> meta;

    /**
     * Check internal consistency (labels resolve, scopes match the
     * architecture, variables exist, condition references are valid)
     * and resolve locations. @throws FatalError on problems.
     */
    void validate();

    // --- location queries (valid after validate()) ----------------------
    int numVars() const { return static_cast<int>(vars.size()); }
    /** Index of a variable by name, or -1. */
    int varIndex(const std::string &name) const;
    /** Virtual address id of a variable (its own declaration index). */
    int virtLoc(const std::string &name) const;
    /** Physical location id (root of the alias chain). */
    int physLoc(const std::string &name) const;
    /** Physical location id for a declaration index. */
    int physLocOfVar(int varIdx) const { return physOf_[varIdx]; }

    int numThreads() const { return static_cast<int>(threads.size()); }

    /** Default instruction scope when none was written. */
    Scope defaultScope() const
    {
        return arch == Arch::Ptx ? Scope::Sys : Scope::Dv;
    }

    /** True if no thread uses control-flow instructions. */
    bool isStraightLine() const;

    /** All distinct constants appearing in the program (plus 0/1). */
    std::vector<int64_t> valueUniverse() const;

    /**
     * A bit width sufficient to represent every value the program can
     * compute when each loop body runs at most @p bound times
     * (constants plus worst-case accumulation through fetch-adds and
     * register additions).
     */
    int suggestedValueBits(int bound) const;

    /** Structural hash over every semantic IR field (see
     *  ProgramFingerprint). */
    ProgramFingerprint fingerprint() const;

  private:
    void validateCond(const Cond &cond, const char *what) const;

    std::vector<int> physOf_; // varIdx -> physical location id
};

} // namespace gpumc::prog

#endif // GPUMC_PROGRAM_PROGRAM_HPP
