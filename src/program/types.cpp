#include "program/types.hpp"

namespace gpumc::prog {

const char *
archName(Arch arch)
{
    return arch == Arch::Ptx ? "ptx" : "vulkan";
}

const char *
memOrderName(MemOrder order)
{
    switch (order) {
      case MemOrder::Plain: return "plain";
      case MemOrder::Rlx: return "rlx";
      case MemOrder::Acq: return "acq";
      case MemOrder::Rel: return "rel";
      case MemOrder::AcqRel: return "acq_rel";
      case MemOrder::Sc: return "sc";
    }
    return "?";
}

const char *
scopeName(Scope scope)
{
    switch (scope) {
      case Scope::Cta: return "cta";
      case Scope::Gpu: return "gpu";
      case Scope::Sys: return "sys";
      case Scope::Sg: return "sg";
      case Scope::Wg: return "wg";
      case Scope::Qf: return "qf";
      case Scope::Dv: return "dv";
    }
    return "?";
}

bool
scopeMatchesArch(Scope scope, Arch arch)
{
    bool isPtxScope = scope == Scope::Cta || scope == Scope::Gpu ||
                      scope == Scope::Sys;
    return (arch == Arch::Ptx) == isPtxScope;
}

} // namespace gpumc::prog
