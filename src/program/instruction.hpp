/**
 * @file
 * The instruction set of gpumc's common program IR. Both litmus
 * dialects (PTX, Vulkan) and the SPIR-V front-end lower to this IR.
 */

#ifndef GPUMC_PROGRAM_INSTRUCTION_HPP
#define GPUMC_PROGRAM_INSTRUCTION_HPP

#include <cstdint>
#include <optional>
#include <string>

#include "program/types.hpp"
#include "support/diagnostics.hpp"

namespace gpumc::prog {

/** A register name or an integer constant. */
struct Operand {
    enum class Kind { Reg, Const } kind = Kind::Const;
    std::string reg;
    int64_t value = 0;

    static Operand makeReg(std::string name)
    {
        Operand o;
        o.kind = Kind::Reg;
        o.reg = std::move(name);
        return o;
    }
    static Operand makeConst(int64_t v)
    {
        Operand o;
        o.kind = Kind::Const;
        o.value = v;
        return o;
    }

    bool isReg() const { return kind == Kind::Reg; }
    std::string str() const
    {
        return isReg() ? reg : std::to_string(value);
    }
};

/** Read-modify-write flavour. */
enum class RmwKind { Add, Exchange, Cas };

enum class Opcode {
    Load,       // dst <- [loc]
    Store,      // [loc] <- src
    Rmw,        // dst <- [loc]; [loc] <- f(dst, src)
    Fence,      // memory fence
    ProxyFence, // PTX fence.proxy.*
    Barrier,    // control barrier (id operand); may carry mem semantics
    AvDevice,   // Vulkan availability operation to the device domain
    VisDevice,  // Vulkan visibility operation from the device domain
    Label,
    Goto,
    BranchEq,   // if lhs == rhs goto target
    BranchNe,   // if lhs != rhs goto target
    Mov,        // dst <- src
    AddReg,     // dst <- lhs + rhs (register arithmetic)
};

/**
 * One IR instruction. Fields are meaningful per opcode; unused fields
 * keep their defaults. Memory attributes mirror Section 3 of the paper.
 */
struct Instruction {
    Opcode op = Opcode::Label;

    // Memory access attributes.
    std::string location;               // variable name (Load/Store/Rmw)
    std::string dst;                    // destination register
    Operand src;                        // stored value / mov source / rhs
    Operand src2;                       // CAS desired value
    MemOrder order = MemOrder::Plain;
    std::optional<Scope> scope;         // defaulted per-arch if absent
    bool atomic = false;                // strong (PTX) / atomic (Vulkan)
    RmwKind rmwKind = RmwKind::Add;

    // PTX proxies.
    Proxy proxy = Proxy::Generic;
    ProxyFenceKind proxyFence = ProxyFenceKind::Alias;

    // Vulkan storage classes / semantics / availability-visibility.
    std::optional<StorageClass> storageClass; // of the access
    bool semSc0 = false, semSc1 = false;      // fence/atomic semantics
    bool avFlag = false, visFlag = false;     // per-access av/vis
    bool semAv = false, semVis = false;       // fence/atomic av/vis sem.

    // Control flow.
    std::string label;                  // Label name / jump target
    Operand branchLhs;                  // branch lhs (register, usually)
    Operand branchRhs;

    // Control barrier.
    Operand barrierId;                  // constant or register id

    SourceLoc loc;                      // position in the source litmus

    bool isMemoryAccess() const
    {
        return op == Opcode::Load || op == Opcode::Store ||
               op == Opcode::Rmw;
    }
    bool producesEvent() const
    {
        return isMemoryAccess() || op == Opcode::Fence ||
               op == Opcode::ProxyFence || op == Opcode::Barrier ||
               op == Opcode::AvDevice || op == Opcode::VisDevice;
    }
    bool isBranch() const
    {
        return op == Opcode::BranchEq || op == Opcode::BranchNe;
    }
    /**
     * Side-effect-free instructions may appear in a spinloop body
     * (Section 6.4: loads and fences are pure; stores, RMWs and
     * control barriers are not). A failing compare-and-swap performs
     * no write, so CAS loops are still checkable for liveness (the
     * paper excludes only exchange loops, Section 8).
     */
    bool isSideEffectFree() const
    {
        switch (op) {
          case Opcode::Rmw:
            return rmwKind == RmwKind::Cas;
          case Opcode::Load:
          case Opcode::Fence:
          case Opcode::ProxyFence:
          case Opcode::Label:
          case Opcode::Goto:
          case Opcode::BranchEq:
          case Opcode::BranchNe:
          case Opcode::Mov:
          case Opcode::AddReg:
            return true;
          default:
            return false;
        }
    }
};

} // namespace gpumc::prog

#endif // GPUMC_PROGRAM_INSTRUCTION_HPP
