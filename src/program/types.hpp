/**
 * @file
 * Shared enumerations for GPU programs: target architecture, memory
 * orders, scopes, proxies, storage classes (Section 3 of the paper).
 */

#ifndef GPUMC_PROGRAM_TYPES_HPP
#define GPUMC_PROGRAM_TYPES_HPP

#include <string>

namespace gpumc::prog {

/** Which GPU programming model a program is written against. */
enum class Arch { Ptx, Vulkan };

/** Memory order of an access or fence. */
enum class MemOrder {
    Plain,  // non-atomic ("weak" in PTX)
    Rlx,
    Acq,
    Rel,
    AcqRel,
    Sc,     // PTX only; Vulkan has no SC order
};

/**
 * Scope of an instruction. The numeric value orders scopes from the
 * innermost outward *within one architecture*.
 *
 * PTX uses Cta < Gpu < Sys; Vulkan uses Sg < Wg < Qf < Dv.
 */
enum class Scope {
    // PTX
    Cta = 0,
    Gpu = 1,
    Sys = 2,
    // Vulkan
    Sg = 10,
    Wg = 11,
    Qf = 12,
    Dv = 13,
};

/** PTX memory proxy (Section 3.3). */
enum class Proxy { Generic, Texture, Surface, Constant };

/** Kind of a PTX proxy fence. */
enum class ProxyFenceKind { Alias, Texture, Surface, Constant };

/** Vulkan storage class (the model abstracts them as sc0/sc1). */
enum class StorageClass { Sc0, Sc1 };

const char *archName(Arch arch);
const char *memOrderName(MemOrder order);
const char *scopeName(Scope scope);

/** True if @p scope belongs to @p arch. */
bool scopeMatchesArch(Scope scope, Arch arch);

} // namespace gpumc::prog

#endif // GPUMC_PROGRAM_TYPES_HPP
