#include "program/assertion.hpp"

#include "support/diagnostics.hpp"

namespace gpumc::prog {

std::string
CondTerm::str() const
{
    switch (kind) {
      case Kind::Reg:
        return "P" + std::to_string(thread) + ":" + name;
      case Kind::Mem:
        return name;
      case Kind::Const:
        return std::to_string(value);
    }
    return "?";
}

CondPtr
Cond::mkTrue()
{
    auto c = std::make_unique<Cond>();
    c->kind = Kind::True;
    return c;
}

CondPtr
Cond::mkAnd(CondPtr a, CondPtr b)
{
    auto c = std::make_unique<Cond>();
    c->kind = Kind::And;
    c->lhs = std::move(a);
    c->rhs = std::move(b);
    return c;
}

CondPtr
Cond::mkOr(CondPtr a, CondPtr b)
{
    auto c = std::make_unique<Cond>();
    c->kind = Kind::Or;
    c->lhs = std::move(a);
    c->rhs = std::move(b);
    return c;
}

CondPtr
Cond::mkNot(CondPtr a)
{
    auto c = std::make_unique<Cond>();
    c->kind = Kind::Not;
    c->lhs = std::move(a);
    return c;
}

CondPtr
Cond::mkCmp(bool equal, CondTerm a, CondTerm b)
{
    auto c = std::make_unique<Cond>();
    c->kind = equal ? Kind::Eq : Kind::Ne;
    c->tl = std::move(a);
    c->tr = std::move(b);
    return c;
}

CondPtr
Cond::clone() const
{
    auto c = std::make_unique<Cond>();
    c->kind = kind;
    c->tl = tl;
    c->tr = tr;
    if (lhs)
        c->lhs = lhs->clone();
    if (rhs)
        c->rhs = rhs->clone();
    return c;
}

std::string
Cond::str() const
{
    switch (kind) {
      case Kind::True:
        return "true";
      case Kind::And:
        return "(" + lhs->str() + " /\\ " + rhs->str() + ")";
      case Kind::Or:
        return "(" + lhs->str() + " \\/ " + rhs->str() + ")";
      case Kind::Not:
        return "~" + lhs->str();
      case Kind::Eq:
        return tl.str() + " == " + tr.str();
      case Kind::Ne:
        return tl.str() + " != " + tr.str();
    }
    return "?";
}

const char *
assertKindName(AssertKind kind)
{
    switch (kind) {
      case AssertKind::Exists: return "exists";
      case AssertKind::NotExists: return "~exists";
      case AssertKind::Forall: return "forall";
    }
    return "?";
}

bool
evalCond(const Cond &cond,
         const std::function<int64_t(const CondTerm &)> &valuation)
{
    switch (cond.kind) {
      case Cond::Kind::True:
        return true;
      case Cond::Kind::And:
        return evalCond(*cond.lhs, valuation) &&
               evalCond(*cond.rhs, valuation);
      case Cond::Kind::Or:
        return evalCond(*cond.lhs, valuation) ||
               evalCond(*cond.rhs, valuation);
      case Cond::Kind::Not:
        return !evalCond(*cond.lhs, valuation);
      case Cond::Kind::Eq:
        return valuation(cond.tl) == valuation(cond.tr);
      case Cond::Kind::Ne:
        return valuation(cond.tl) != valuation(cond.tr);
    }
    GPUMC_PANIC("unhandled condition kind");
}

} // namespace gpumc::prog
