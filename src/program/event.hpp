/**
 * @file
 * Memory events and their `.cat` tags. Events are produced by the
 * unroller from instructions; tags (Table 2 of the paper) drive the
 * base-set semantics of the consistency models.
 */

#ifndef GPUMC_PROGRAM_EVENT_HPP
#define GPUMC_PROGRAM_EVENT_HPP

#include <set>
#include <string>

#include "program/instruction.hpp"
#include "program/program.hpp"

namespace gpumc::prog {

enum class EventKind { Read, Write, Fence, Barrier, Aux };

struct Event {
    int id = -1;
    int thread = -1;          // -1 for init writes
    bool isInit = false;
    EventKind kind = EventKind::Read;
    std::set<std::string> tags;

    int physLoc = -1;         // physical location (memory events)
    int virtLoc = -1;         // virtual address (memory events)
    int64_t initValue = 0;    // value of an init write

    int rmwPartner = -1;      // paired event of an RMW, or -1
    int uNode = -1;           // producing unrolled node
    Scope scope = Scope::Sys; // resolved instruction scope
    const Instruction *instr = nullptr;

    SourceLoc loc;
    std::string display;      // short human-readable form for graphs

    bool isMemory() const
    {
        return kind == EventKind::Read || kind == EventKind::Write;
    }
};

/**
 * Does the event belong to the named base set? Handles the derived
 * aliases: `M` = W|R, `B` = `CBAR`, `I` = `IW`, `_` = everything.
 */
bool eventHasTag(const Event &e, const std::string &name);

/**
 * Compute the tag set of an event generated from @p ins under @p arch.
 * @p isWritePart selects the write half of an RMW.
 */
void computeEventTags(Event &e, const Instruction &ins, Arch arch,
                      bool isWritePart);

/** Tag an init write for @p arch (storage class from the variable). */
void computeInitTags(Event &e, Arch arch, StorageClass sc);

// --- scope hierarchy predicates ------------------------------------------

/** Is thread @p other inside the @p scope sphere centred at @p self? */
bool scopeIncludes(const ThreadPlacement &self, Scope scope,
                   const ThreadPlacement &other);

bool sameCta(const ThreadPlacement &a, const ThreadPlacement &b);
bool sameSg(const ThreadPlacement &a, const ThreadPlacement &b);
bool sameWg(const ThreadPlacement &a, const ThreadPlacement &b);
bool sameQf(const ThreadPlacement &a, const ThreadPlacement &b);

} // namespace gpumc::prog

#endif // GPUMC_PROGRAM_EVENT_HPP
