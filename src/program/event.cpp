#include "program/event.hpp"

namespace gpumc::prog {

bool
eventHasTag(const Event &e, const std::string &name)
{
    if (name == "_")
        return true;
    if (name == "M")
        return e.tags.count("W") || e.tags.count("R");
    if (name == "B")
        return e.tags.count("CBAR") != 0;
    if (name == "I")
        return e.tags.count("IW") != 0;
    return e.tags.count(name) != 0;
}

namespace {

void
addOrderTags(Event &e, MemOrder order)
{
    switch (order) {
      case MemOrder::Plain:
        e.tags.insert("WEAK");
        break;
      case MemOrder::Rlx:
        e.tags.insert("RLX");
        break;
      case MemOrder::Acq:
        e.tags.insert("ACQ");
        break;
      case MemOrder::Rel:
        e.tags.insert("REL");
        break;
      case MemOrder::AcqRel:
        e.tags.insert("ACQ");
        e.tags.insert("REL");
        break;
      case MemOrder::Sc:
        e.tags.insert("SC");
        e.tags.insert("ACQ");
        e.tags.insert("REL");
        break;
    }
}

void
addScopeTag(Event &e, Scope scope)
{
    switch (scope) {
      case Scope::Cta: e.tags.insert("CTA"); break;
      case Scope::Gpu: e.tags.insert("GPU"); break;
      case Scope::Sys: e.tags.insert("SYS"); break;
      case Scope::Sg: e.tags.insert("SG"); break;
      case Scope::Wg: e.tags.insert("WG"); break;
      case Scope::Qf: e.tags.insert("QF"); break;
      case Scope::Dv: e.tags.insert("DV"); break;
    }
}

void
addProxyTag(Event &e, Proxy proxy)
{
    switch (proxy) {
      case Proxy::Generic: e.tags.insert("GEN"); break;
      case Proxy::Texture: e.tags.insert("TEX"); break;
      case Proxy::Surface: e.tags.insert("SUR"); break;
      case Proxy::Constant: e.tags.insert("CON"); break;
    }
}

void
addStorageClassTags(Event &e, const Instruction &ins)
{
    StorageClass sc = ins.storageClass.value_or(StorageClass::Sc0);
    if (ins.isMemoryAccess())
        e.tags.insert(sc == StorageClass::Sc0 ? "SC0" : "SC1");
    // Storage-class *semantics*: explicit flags on fences/atomics; an
    // atomic access implicitly carries the semantics of its own class.
    bool sem0 = ins.semSc0;
    bool sem1 = ins.semSc1;
    if (ins.isMemoryAccess() && ins.atomic)
        (sc == StorageClass::Sc0 ? sem0 : sem1) = true;
    if (sem0)
        e.tags.insert("SEMSC0");
    if (sem1)
        e.tags.insert("SEMSC1");
}

} // namespace

void
computeEventTags(Event &e, const Instruction &ins, Arch arch,
                 bool isWritePart)
{
    switch (ins.op) {
      case Opcode::Load:
        e.kind = EventKind::Read;
        e.tags.insert("R");
        break;
      case Opcode::Store:
        e.kind = EventKind::Write;
        e.tags.insert("W");
        break;
      case Opcode::Rmw:
        e.kind = isWritePart ? EventKind::Write : EventKind::Read;
        e.tags.insert(isWritePart ? "W" : "R");
        e.tags.insert("RMW");
        break;
      case Opcode::Fence:
        e.kind = EventKind::Fence;
        e.tags.insert("F");
        break;
      case Opcode::ProxyFence:
        e.kind = EventKind::Fence;
        e.tags.insert("F");
        break;
      case Opcode::Barrier:
        e.kind = EventKind::Barrier;
        e.tags.insert("CBAR");
        break;
      case Opcode::AvDevice:
        e.kind = EventKind::Aux;
        e.tags.insert("AVDEVICE");
        break;
      case Opcode::VisDevice:
        e.kind = EventKind::Aux;
        e.tags.insert("VISDEVICE");
        break;
      default:
        GPUMC_PANIC("instruction does not produce an event");
    }

    if (ins.isMemoryAccess()) {
        e.tags.insert("NONPRIV");
        if (ins.atomic || ins.op == Opcode::Rmw)
            e.tags.insert("A");
        addOrderTags(e, ins.order);
    } else if (ins.op == Opcode::Fence) {
        addOrderTags(e, ins.order);
    }

    if (ins.producesEvent() && ins.scope)
        addScopeTag(e, *ins.scope);

    if (arch == Arch::Ptx) {
        if (ins.isMemoryAccess()) {
            addProxyTag(e, ins.proxy);
        } else if (ins.op == Opcode::Fence) {
            e.tags.insert("GEN");
        } else if (ins.op == Opcode::ProxyFence) {
            switch (ins.proxyFence) {
              case ProxyFenceKind::Alias:
                e.tags.insert("ALIAS");
                e.tags.insert("GEN");
                break;
              case ProxyFenceKind::Texture:
                e.tags.insert("TEX");
                break;
              case ProxyFenceKind::Surface:
                e.tags.insert("SUR");
                break;
              case ProxyFenceKind::Constant:
                e.tags.insert("CON");
                break;
            }
        }
    } else { // Vulkan
        if (ins.isMemoryAccess() || ins.op == Opcode::Fence)
            addStorageClassTags(e, ins);
        // Availability/visibility: atomics are available and visible by
        // default (Section 3.4); non-atomics need explicit flags.
        bool isAtomic = ins.isMemoryAccess() &&
                        (ins.atomic || ins.op == Opcode::Rmw);
        if (isAtomic || ins.avFlag)
            e.tags.insert("AV");
        if (isAtomic || ins.visFlag)
            e.tags.insert("VIS");
        // Release semantics imply an availability operation and acquire
        // semantics a visibility operation (Vulkan memory model): a
        // release fence/atomic makes preceding writes of its storage
        // classes available, an acquire one makes later reads see them.
        bool hasSem = ins.semSc0 || ins.semSc1 || isAtomic;
        if (ins.semAv || (hasSem && e.tags.count("REL")))
            e.tags.insert("SEMAV");
        if (ins.semVis || (hasSem && e.tags.count("ACQ")))
            e.tags.insert("SEMVIS");
    }
}

void
computeInitTags(Event &e, Arch arch, StorageClass sc)
{
    e.kind = EventKind::Write;
    e.isInit = true;
    e.tags = {"W", "IW", "NONPRIV"};
    e.scope = arch == Arch::Ptx ? Scope::Sys : Scope::Dv;
    if (arch == Arch::Ptx) {
        // Initial values are observable through every proxy.
        e.tags.insert({"GEN", "TEX", "SUR", "CON"});
    } else {
        e.tags.insert(sc == StorageClass::Sc0 ? "SC0" : "SC1");
        // Initial values are available and visible everywhere.
        e.tags.insert({"AV", "VIS"});
    }
}

// --- scope hierarchy ------------------------------------------------------

bool
sameCta(const ThreadPlacement &a, const ThreadPlacement &b)
{
    return a.gpu == b.gpu && a.cta == b.cta;
}

bool
sameSg(const ThreadPlacement &a, const ThreadPlacement &b)
{
    return a.qf == b.qf && a.wg == b.wg && a.sg == b.sg;
}

bool
sameWg(const ThreadPlacement &a, const ThreadPlacement &b)
{
    return a.qf == b.qf && a.wg == b.wg;
}

bool
sameQf(const ThreadPlacement &a, const ThreadPlacement &b)
{
    return a.qf == b.qf;
}

bool
scopeIncludes(const ThreadPlacement &self, Scope scope,
              const ThreadPlacement &other)
{
    switch (scope) {
      case Scope::Cta:
        return sameCta(self, other);
      case Scope::Gpu:
        return self.gpu == other.gpu;
      case Scope::Sys:
        return true;
      case Scope::Sg:
        return sameSg(self, other);
      case Scope::Wg:
        return sameWg(self, other);
      case Scope::Qf:
        return sameQf(self, other);
      case Scope::Dv:
        return true;
    }
    return false;
}

} // namespace gpumc::prog
