#include "program/unroller.hpp"

#include <algorithm>
#include <map>

namespace gpumc::prog {

namespace {

/** Resolve the pc of every label in a thread. */
std::map<std::string, int>
labelPcs(const Thread &thread)
{
    std::map<std::string, int> out;
    for (size_t pc = 0; pc < thread.instrs.size(); ++pc) {
        if (thread.instrs[pc].op == Opcode::Label)
            out[thread.instrs[pc].label] = static_cast<int>(pc);
    }
    return out;
}

/** Display string of an instruction for execution graphs. */
std::string
displayOf(const Instruction &ins, bool isWritePart)
{
    switch (ins.op) {
      case Opcode::Load:
        return "ld " + ins.dst + "," + ins.location;
      case Opcode::Store:
        return "st " + ins.location + "," + ins.src.str();
      case Opcode::Rmw:
        return std::string(isWritePart ? "rmw.w " : "rmw.r ") +
               ins.location;
      case Opcode::Fence:
        return std::string("fence.") + memOrderName(ins.order);
      case Opcode::ProxyFence:
        return "fence.proxy";
      case Opcode::Barrier:
        return "cbar " + ins.barrierId.str();
      case Opcode::AvDevice:
        return "avdevice";
      case Opcode::VisDevice:
        return "visdevice";
      default:
        return "?";
    }
}

class ThreadUnroller {
  public:
    ThreadUnroller(UnrolledProgram &out, const Program &program,
                   int threadIdx, int bound)
        : out_(out), program_(program), thread_(program.threads[threadIdx]),
          threadIdx_(threadIdx), bound_(bound), labels_(labelPcs(thread_))
    {
    }

    void run()
    {
        detectSpinloops();
        buildNodes();
        createEvents();
        collectSpinKillReads();
    }

  private:
    struct Key {
        int pc, budget;
        bool operator<(const Key &o) const
        {
            return pc != o.pc ? pc < o.pc : budget < o.budget;
        }
    };

    int numInstrs() const
    {
        return static_cast<int>(thread_.instrs.size());
    }

    /**
     * A backward jump whose body [target, source] is entirely
     * side-effect-free forms a spinloop.
     */
    void detectSpinloops()
    {
        for (int pc = 0; pc < numInstrs(); ++pc) {
            const Instruction &ins = thread_.instrs[pc];
            if (ins.op != Opcode::Goto && !ins.isBranch())
                continue;
            int target = labels_.at(ins.label);
            if (target > pc)
                continue; // forward jump
            bool pure = true;
            for (int p = target; p <= pc; ++p)
                pure = pure && thread_.instrs[p].isSideEffectFree();
            if (!pure)
                continue;
            Spinloop loop;
            loop.id = static_cast<int>(out_.spinloops.size());
            loop.thread = threadIdx_;
            loop.headerPc = target;
            loop.backPc = pc;
            out_.spinloops.push_back(loop);
            spinBackPcs_[pc] = loop.id;
        }
    }

    /**
     * Instantiate nodes in topological order: (budget descending, pc
     * ascending). Along any execution the budget never increases and
     * within one budget the pc strictly increases, so this order is a
     * valid topological order of the instance graph.
     */
    void buildNodes()
    {
        std::map<Key, int> instanceIdx; // key -> node index in out_.nodes
        auto getNode = [&](int pc, int budget) {
            Key key{pc, budget};
            auto it = instanceIdx.find(key);
            if (it != instanceIdx.end())
                return it->second;
            int idx = newNode();
            out_.nodes[idx].pc = pc;
            out_.nodes[idx].budget = budget;
            out_.nodes[idx].instr = &thread_.instrs[pc];
            instanceIdx.emplace(key, idx);
            return idx;
        };

        exitNode_ = newNode();
        out_.nodes[exitNode_].special = NodeSpecial::Exit;

        // Seed the entry.
        if (numInstrs() == 0) {
            entryNode_ = exitNode_;
        } else {
            entryNode_ = getNode(0, bound_);
        }

        // Process instances in topological order. Because getNode can
        // discover instances lazily, iterate budget levels descending.
        for (int budget = bound_; budget >= 0; --budget) {
            for (int pc = 0; pc < numInstrs(); ++pc) {
                auto it = instanceIdx.find(Key{pc, budget});
                if (it == instanceIdx.end())
                    continue;
                expand(it->second, pc, budget, getNode);
            }
        }

        // Gather nodes of this thread in topological order:
        // exit/kill nodes go last.
        std::vector<int> order;
        for (int budget = bound_; budget >= 0; --budget) {
            for (int pc = 0; pc < numInstrs(); ++pc) {
                auto it = instanceIdx.find(Key{pc, budget});
                if (it != instanceIdx.end())
                    order.push_back(it->second);
            }
        }
        for (int k : killNodes_)
            order.push_back(k);
        order.push_back(exitNode_);
        out_.threadNodes[threadIdx_] = std::move(order);
        out_.threadEntry[threadIdx_] = entryNode_;
        out_.threadExit[threadIdx_] = exitNode_;
    }

    template <typename GetNode>
    void expand(int nodeIdx, int pc, int budget, GetNode &getNode)
    {
        const Instruction &ins = thread_.instrs[pc];
        auto jumpSucc = [&](EdgeKind kind) {
            int target = labels_.at(ins.label);
            if (target > pc) {
                link(nodeIdx, getNode(target, budget), kind);
            } else if (budget > 0) {
                link(nodeIdx, getNode(target, budget - 1), kind);
            } else {
                link(nodeIdx, killNode(pc), kind);
            }
        };
        auto fallSucc = [&](EdgeKind kind) {
            if (pc + 1 < numInstrs())
                link(nodeIdx, getNode(pc + 1, budget), kind);
            else
                link(nodeIdx, exitNode_, kind);
        };

        switch (ins.op) {
          case Opcode::Goto:
            jumpSucc(EdgeKind::Taken);
            return;
          case Opcode::BranchEq:
          case Opcode::BranchNe:
            jumpSucc(EdgeKind::Taken);
            fallSucc(EdgeKind::NotTaken);
            return;
          default:
            fallSucc(EdgeKind::Fall);
            return;
        }
    }

    int newNode()
    {
        int idx = static_cast<int>(out_.nodes.size());
        out_.nodes.emplace_back();
        out_.nodes[idx].index = idx;
        out_.nodes[idx].thread = threadIdx_;
        return idx;
    }

    /** One kill node per backward-jump pc (spin metadata differs). */
    int killNode(int backPc)
    {
        auto it = killByPc_.find(backPc);
        if (it != killByPc_.end())
            return it->second;
        int idx = newNode();
        out_.nodes[idx].special = NodeSpecial::Kill;
        auto spin = spinBackPcs_.find(backPc);
        if (spin != spinBackPcs_.end()) {
            out_.nodes[idx].spinKill = true;
            out_.nodes[idx].spinloopId = spin->second;
        }
        killByPc_.emplace(backPc, idx);
        killNodes_.push_back(idx);
        out_.killNodes.push_back(idx);
        return idx;
    }

    void link(int from, int to, EdgeKind kind)
    {
        out_.nodes[to].preds.push_back({from, kind});
    }

    void createEvents()
    {
        for (int idx : out_.threadNodes[threadIdx_]) {
            UNode &node = out_.nodes[idx];
            if (node.special != NodeSpecial::None || !node.instr ||
                !node.instr->producesEvent()) {
                continue;
            }
            const Instruction &ins = *node.instr;
            if (ins.op == Opcode::Rmw) {
                node.readEvent = makeEvent(node, ins, false);
                node.writeEvent = makeEvent(node, ins, true);
                out_.events[node.readEvent].rmwPartner = node.writeEvent;
                out_.events[node.writeEvent].rmwPartner = node.readEvent;
            } else if (ins.op == Opcode::Load) {
                node.readEvent = makeEvent(node, ins, false);
            } else if (ins.op == Opcode::Store) {
                node.writeEvent = makeEvent(node, ins, true);
            } else {
                node.eventId = makeEvent(node, ins, false);
            }
        }
    }

    int makeEvent(const UNode &node, const Instruction &ins,
                  bool isWritePart)
    {
        Event e;
        e.id = static_cast<int>(out_.events.size());
        e.thread = threadIdx_;
        e.uNode = node.index;
        e.instr = &ins;
        e.loc = ins.loc;
        e.display = thread_.name + ": " + displayOf(ins, isWritePart);
        if (ins.scope)
            e.scope = *ins.scope;
        computeEventTags(e, ins, program_.arch, isWritePart);
        if (ins.isMemoryAccess()) {
            e.physLoc = program_.physLoc(ins.location);
            e.virtLoc = program_.virtLoc(ins.location);
        }
        out_.events.push_back(std::move(e));
        return out_.events.back().id;
    }

    /**
     * For every spin Kill node, record the read events of the final
     * unrolled iteration (budget 0, pc within the loop body) so the
     * liveness encoder can require them to be co-maximal.
     */
    void collectSpinKillReads()
    {
        for (auto [backPc, killIdx] : killByPc_) {
            const UNode &kill = out_.nodes[killIdx];
            if (!kill.spinKill)
                continue;
            const Spinloop &loop = out_.spinloops[kill.spinloopId];
            SpinKillInfo info;
            info.thread = threadIdx_;
            info.killNode = killIdx;
            info.spinloopId = kill.spinloopId;
            for (int idx : out_.threadNodes[threadIdx_]) {
                const UNode &node = out_.nodes[idx];
                if (node.special != NodeSpecial::None || node.budget != 0)
                    continue;
                if (node.pc < loop.headerPc || node.pc > loop.backPc)
                    continue;
                if (node.readEvent >= 0)
                    info.lastIterationReads.push_back(node.readEvent);
            }
            out_.spinKills.push_back(std::move(info));
        }
    }

    UnrolledProgram &out_;
    const Program &program_;
    const Thread &thread_;
    int threadIdx_;
    int bound_;
    std::map<std::string, int> labels_;
    std::map<int, int> spinBackPcs_; // back-edge pc -> spinloop id
    std::map<int, int> killByPc_;
    std::vector<int> killNodes_;
    int entryNode_ = -1;
    int exitNode_ = -1;
};

} // namespace

UnrolledProgram
unroll(const Program &program, int bound)
{
    GPUMC_ASSERT(bound >= 1, "unroll bound must be at least 1");
    UnrolledProgram out;
    out.program = &program;
    out.threadEntry.resize(program.numThreads());
    out.threadExit.resize(program.numThreads());
    out.threadNodes.resize(program.numThreads());

    // Init writes: one per *physical* location, carrying the root
    // variable's initial value and storage class.
    std::map<int, int> initByPhys;
    for (int v = 0; v < program.numVars(); ++v) {
        int phys = program.physLocOfVar(v);
        if (initByPhys.count(phys))
            continue;
        Event e;
        e.id = static_cast<int>(out.events.size());
        e.physLoc = phys;
        e.virtLoc = phys; // the root variable's own virtual address
        e.initValue = program.vars[phys].init;
        e.display = "init " + program.vars[phys].name + "=" +
                    std::to_string(e.initValue);
        computeInitTags(e, program.arch, program.vars[phys].storageClass);
        initByPhys.emplace(phys, e.id);
        out.events.push_back(std::move(e));
    }
    out.numInitEvents = static_cast<int>(out.events.size());

    for (int t = 0; t < program.numThreads(); ++t)
        ThreadUnroller(out, program, t, bound).run();

    return out;
}

} // namespace gpumc::prog
