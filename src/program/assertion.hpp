/**
 * @file
 * The litmus condition language: `exists`, `~exists`, `forall` and
 * `filter` clauses over final register and memory values.
 */

#ifndef GPUMC_PROGRAM_ASSERTION_HPP
#define GPUMC_PROGRAM_ASSERTION_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

namespace gpumc::prog {

/** A term in a litmus condition. */
struct CondTerm {
    enum class Kind { Reg, Mem, Const } kind = Kind::Const;
    int thread = -1;     // for Reg
    std::string name;    // register or variable name
    int64_t value = 0;   // for Const

    static CondTerm makeReg(int thread, std::string reg)
    {
        CondTerm t;
        t.kind = Kind::Reg;
        t.thread = thread;
        t.name = std::move(reg);
        return t;
    }
    static CondTerm makeMem(std::string var)
    {
        CondTerm t;
        t.kind = Kind::Mem;
        t.name = std::move(var);
        return t;
    }
    static CondTerm makeConst(int64_t v)
    {
        CondTerm t;
        t.kind = Kind::Const;
        t.value = v;
        return t;
    }

    std::string str() const;
};

struct Cond;
using CondPtr = std::unique_ptr<Cond>;

/** Boolean structure of a condition. */
struct Cond {
    enum class Kind { And, Or, Not, Eq, Ne, True } kind = Kind::True;
    CondPtr lhs, rhs;       // And / Or / Not (lhs only)
    CondTerm tl, tr;        // Eq / Ne leaves

    static CondPtr mkTrue();
    static CondPtr mkAnd(CondPtr a, CondPtr b);
    static CondPtr mkOr(CondPtr a, CondPtr b);
    static CondPtr mkNot(CondPtr a);
    static CondPtr mkCmp(bool equal, CondTerm a, CondTerm b);

    /** Deep copy (Program is move-only because of these pointers). */
    CondPtr clone() const;

    std::string str() const;
};

/** Quantifier of the final-state condition. */
enum class AssertKind { Exists, NotExists, Forall };

const char *assertKindName(AssertKind kind);

/**
 * Evaluate a condition given a valuation of its terms (used by the
 * explicit checker and by witness validation).
 */
bool evalCond(const Cond &cond,
              const std::function<int64_t(const CondTerm &)> &valuation);

} // namespace gpumc::prog

#endif // GPUMC_PROGRAM_ASSERTION_HPP
