/**
 * @file
 * Bounded loop unrolling: turns each thread's instruction list into a
 * forward-only DAG of instruction instances (UNodes) plus the memory
 * events they generate. Backward jumps consume a per-thread budget;
 * exceeding the budget reaches a Kill node (the `assume` bounding
 * semantics of Section 6 — executions past the bound are excluded).
 *
 * Spinloops (side-effect-free loops, Section 6.4) are detected here so
 * the liveness encoder can treat their Kill nodes as "thread is stuck"
 * scenarios instead of excluded executions.
 */

#ifndef GPUMC_PROGRAM_UNROLLER_HPP
#define GPUMC_PROGRAM_UNROLLER_HPP

#include <vector>

#include "program/event.hpp"
#include "program/program.hpp"

namespace gpumc::prog {

enum class EdgeKind { Fall, Taken, NotTaken };

struct UEdge {
    int from = -1;
    EdgeKind kind = EdgeKind::Fall;
};

enum class NodeSpecial { None, Exit, Kill };

struct UNode {
    int index = -1;
    int thread = -1;
    int pc = -1;                 // -1 for Exit/Kill
    int budget = -1;
    const Instruction *instr = nullptr;
    std::vector<UEdge> preds;

    int readEvent = -1;          // Load / RMW read event id
    int writeEvent = -1;         // Store / RMW write event id
    int eventId = -1;            // Fence/Barrier/Aux event id

    NodeSpecial special = NodeSpecial::None;
    bool spinKill = false;       // Kill node reached via a spinloop
    int spinloopId = -1;
};

/** A detected side-effect-free loop. */
struct Spinloop {
    int id = -1;
    int thread = -1;
    int headerPc = -1;           // first pc of the loop body
    int backPc = -1;             // pc of the backward jump
};

/** Liveness metadata: one per spin Kill node. */
struct SpinKillInfo {
    int thread = -1;
    int killNode = -1;
    int spinloopId = -1;
    /** Read events of the last unrolled iteration before the kill. */
    std::vector<int> lastIterationReads;
};

struct UnrolledProgram {
    const Program *program = nullptr;

    /** All nodes; within a thread, indices are topologically ordered. */
    std::vector<UNode> nodes;
    std::vector<Event> events;       // init events first
    int numInitEvents = 0;

    std::vector<int> threadEntry;    // node index per thread
    std::vector<int> threadExit;     // Exit node per thread
    std::vector<std::vector<int>> threadNodes; // topo order per thread

    std::vector<Spinloop> spinloops;
    std::vector<SpinKillInfo> spinKills;

    /** All Kill nodes (spin and hard). */
    std::vector<int> killNodes;

    const Event &event(int id) const { return events[id]; }
    int numEvents() const { return static_cast<int>(events.size()); }
};

/**
 * Unroll @p program with the given loop @p bound (number of backward
 * jumps allowed per thread). The program must have been validated.
 */
UnrolledProgram unroll(const Program &program, int bound);

} // namespace gpumc::prog

#endif // GPUMC_PROGRAM_UNROLLER_HPP
