#include "program/program.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

#include "support/hash.hpp"

namespace gpumc::prog {

int
Program::varIndex(const std::string &varName) const
{
    for (size_t i = 0; i < vars.size(); ++i) {
        if (vars[i].name == varName)
            return static_cast<int>(i);
    }
    return -1;
}

int
Program::virtLoc(const std::string &varName) const
{
    int idx = varIndex(varName);
    GPUMC_ASSERT(idx >= 0, "unknown variable ", varName);
    return idx;
}

int
Program::physLoc(const std::string &varName) const
{
    int idx = varIndex(varName);
    GPUMC_ASSERT(idx >= 0, "unknown variable ", varName);
    GPUMC_ASSERT(!physOf_.empty(), "physLoc before validate()");
    return physOf_[idx];
}

bool
Program::isStraightLine() const
{
    for (const Thread &t : threads) {
        for (const Instruction &ins : t.instrs) {
            if (ins.op == Opcode::Goto || ins.isBranch())
                return false;
        }
    }
    return true;
}

std::vector<int64_t>
Program::valueUniverse() const
{
    std::set<int64_t> values = {0, 1};
    for (const VarDecl &v : vars)
        values.insert(v.init);
    auto addOperand = [&](const Operand &o) {
        if (!o.isReg())
            values.insert(o.value);
    };
    for (const Thread &t : threads) {
        for (const Instruction &ins : t.instrs) {
            addOperand(ins.src);
            addOperand(ins.src2);
            addOperand(ins.branchLhs);
            addOperand(ins.branchRhs);
        }
    }
    return {values.begin(), values.end()};
}

int
Program::suggestedValueBits(int bound) const
{
    int64_t maxConst = 1;
    for (int64_t v : valueUniverse())
        maxConst = std::max(maxConst, std::abs(v));
    int64_t accumulation = 0;
    for (const Thread &t : threads) {
        for (const Instruction &ins : t.instrs) {
            bool accumulates =
                (ins.op == Opcode::Rmw && ins.rmwKind == RmwKind::Add) ||
                ins.op == Opcode::AddReg;
            if (accumulates && !ins.src.isReg()) {
                accumulation +=
                    std::abs(ins.src.value) * (bound + 1);
            }
        }
    }
    int64_t maxValue = maxConst + accumulation + 1;
    int bits = 2;
    while ((int64_t{1} << bits) <= maxValue && bits < 62)
        bits++;
    return std::max(3, bits + 1); // one bit of headroom
}

void
Program::validateCond(const Cond &cond, const char *what) const
{
    switch (cond.kind) {
      case Cond::Kind::And:
      case Cond::Kind::Or:
        validateCond(*cond.lhs, what);
        validateCond(*cond.rhs, what);
        return;
      case Cond::Kind::Not:
        validateCond(*cond.lhs, what);
        return;
      case Cond::Kind::Eq:
      case Cond::Kind::Ne:
        for (const CondTerm *t : {&cond.tl, &cond.tr}) {
            if (t->kind == CondTerm::Kind::Reg) {
                if (t->thread < 0 || t->thread >= numThreads())
                    fatal(what, " references unknown thread P", t->thread);
            } else if (t->kind == CondTerm::Kind::Mem) {
                if (varIndex(t->name) < 0)
                    fatal(what, " references unknown variable ", t->name);
            }
        }
        return;
      case Cond::Kind::True:
        return;
    }
}

void
Program::validate()
{
    if (threads.empty())
        fatal("program has no threads");

    // Resolve physical locations through alias chains.
    physOf_.assign(vars.size(), -1);
    for (size_t i = 0; i < vars.size(); ++i) {
        // Follow the alias chain to its root.
        size_t cur = i;
        std::set<size_t> seen;
        while (!vars[cur].aliasOf.empty()) {
            if (!seen.insert(cur).second)
                fatal("cyclic alias chain involving variable ",
                      vars[cur].name);
            int nxt = varIndex(vars[cur].aliasOf);
            if (nxt < 0)
                fatal("variable ", vars[cur].name, " aliases unknown ",
                      vars[cur].aliasOf);
            cur = static_cast<size_t>(nxt);
        }
        physOf_[i] = static_cast<int>(cur);
    }

    std::set<std::string> varNames;
    for (const VarDecl &v : vars) {
        if (!varNames.insert(v.name).second)
            fatal("duplicate variable declaration: ", v.name);
    }

    for (Thread &t : threads) {
        std::map<std::string, int> labels;
        for (size_t pc = 0; pc < t.instrs.size(); ++pc) {
            const Instruction &ins = t.instrs[pc];
            if (ins.op == Opcode::Label) {
                if (!labels.emplace(ins.label, pc).second) {
                    fatalAt(ins.loc, "duplicate label ", ins.label, " in ",
                            t.name);
                }
            }
        }
        for (Instruction &ins : t.instrs) {
            if (ins.op == Opcode::Goto || ins.isBranch()) {
                if (!labels.count(ins.label)) {
                    fatalAt(ins.loc, "unknown jump target ", ins.label,
                            " in ", t.name);
                }
            }
            if (ins.isMemoryAccess()) {
                if (varIndex(ins.location) < 0) {
                    fatalAt(ins.loc, "unknown variable ", ins.location,
                            " in ", t.name);
                }
            }
            if (ins.scope && !scopeMatchesArch(*ins.scope, arch)) {
                fatalAt(ins.loc, "scope .", scopeName(*ins.scope),
                        " does not belong to architecture ",
                        archName(arch));
            }
            if (arch == Arch::Vulkan && ins.order == MemOrder::Sc) {
                fatalAt(ins.loc,
                        "Vulkan has no sequentially-consistent order");
            }
            // Default the scope.
            if (ins.producesEvent() && !ins.scope)
                ins.scope = defaultScope();
        }
    }

    if (assertion)
        validateCond(*assertion, "assertion");
    if (filter)
        validateCond(*filter, "filter");
}

namespace {

// FieldHasher (support/hash.hpp) provides the FNV-1a field stream; the
// offset bases below are kept verbatim so fingerprints are unchanged.

void
hashOperand(FieldHasher &h, const Operand &o)
{
    h.tag('o');
    h.u64(static_cast<uint64_t>(o.kind));
    h.str(o.reg);
    h.i64(o.value);
}

void
hashCond(FieldHasher &h, const Cond *cond)
{
    if (!cond) {
        h.tag('0');
        return;
    }
    // Cond::str() is a faithful serialization of the condition tree
    // (used by the emitter round-trip), so hashing it covers every
    // semantic field of the tree.
    h.tag('c');
    h.str(cond->str());
}

void
hashInstruction(FieldHasher &h, const Instruction &ins)
{
    h.tag('i');
    h.u64(static_cast<uint64_t>(ins.op));
    h.str(ins.location);
    h.str(ins.dst);
    hashOperand(h, ins.src);
    hashOperand(h, ins.src2);
    h.u64(static_cast<uint64_t>(ins.order));
    h.boolean(ins.scope.has_value());
    if (ins.scope)
        h.u64(static_cast<uint64_t>(*ins.scope));
    h.boolean(ins.atomic);
    h.u64(static_cast<uint64_t>(ins.rmwKind));
    h.u64(static_cast<uint64_t>(ins.proxy));
    h.u64(static_cast<uint64_t>(ins.proxyFence));
    h.boolean(ins.storageClass.has_value());
    if (ins.storageClass)
        h.u64(static_cast<uint64_t>(*ins.storageClass));
    h.boolean(ins.semSc0);
    h.boolean(ins.semSc1);
    h.boolean(ins.avFlag);
    h.boolean(ins.visFlag);
    h.boolean(ins.semAv);
    h.boolean(ins.semVis);
    h.str(ins.label);
    hashOperand(h, ins.branchLhs);
    hashOperand(h, ins.branchRhs);
    hashOperand(h, ins.barrierId);
}

void
hashProgram(FieldHasher &h, const Program &p)
{
    h.u64(static_cast<uint64_t>(p.arch));
    h.u64(p.vars.size());
    for (const VarDecl &v : p.vars) {
        h.tag('v');
        h.str(v.name);
        h.i64(v.init);
        h.str(v.aliasOf);
        h.u64(static_cast<uint64_t>(v.storageClass));
    }
    h.u64(p.threads.size());
    for (const Thread &t : p.threads) {
        h.tag('t');
        h.i64(t.placement.cta);
        h.i64(t.placement.gpu);
        h.i64(t.placement.sg);
        h.i64(t.placement.wg);
        h.i64(t.placement.qf);
        h.boolean(t.placement.ssw);
        h.u64(t.instrs.size());
        for (const Instruction &ins : t.instrs)
            hashInstruction(h, ins);
    }
    h.u64(static_cast<uint64_t>(p.assertKind));
    hashCond(h, p.assertion.get());
    hashCond(h, p.filter.get());
}

} // namespace

ProgramFingerprint
Program::fingerprint() const
{
    // Two independent passes with different offset bases; a collision
    // would silently reuse the wrong cached session, so 64 bits alone
    // is not comfortable enough.
    FieldHasher a(14695981039346656037ull);
    FieldHasher b(0x9e3779b97f4a7c15ull);
    hashProgram(a, *this);
    hashProgram(b, *this);
    return {a.value(), b.value()};
}

std::string
ProgramFingerprint::str() const
{
    char buf[33];
    std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                  static_cast<unsigned long long>(hi),
                  static_cast<unsigned long long>(lo));
    return buf;
}

} // namespace gpumc::prog
