#include "program/program.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace gpumc::prog {

int
Program::varIndex(const std::string &varName) const
{
    for (size_t i = 0; i < vars.size(); ++i) {
        if (vars[i].name == varName)
            return static_cast<int>(i);
    }
    return -1;
}

int
Program::virtLoc(const std::string &varName) const
{
    int idx = varIndex(varName);
    GPUMC_ASSERT(idx >= 0, "unknown variable ", varName);
    return idx;
}

int
Program::physLoc(const std::string &varName) const
{
    int idx = varIndex(varName);
    GPUMC_ASSERT(idx >= 0, "unknown variable ", varName);
    GPUMC_ASSERT(!physOf_.empty(), "physLoc before validate()");
    return physOf_[idx];
}

bool
Program::isStraightLine() const
{
    for (const Thread &t : threads) {
        for (const Instruction &ins : t.instrs) {
            if (ins.op == Opcode::Goto || ins.isBranch())
                return false;
        }
    }
    return true;
}

std::vector<int64_t>
Program::valueUniverse() const
{
    std::set<int64_t> values = {0, 1};
    for (const VarDecl &v : vars)
        values.insert(v.init);
    auto addOperand = [&](const Operand &o) {
        if (!o.isReg())
            values.insert(o.value);
    };
    for (const Thread &t : threads) {
        for (const Instruction &ins : t.instrs) {
            addOperand(ins.src);
            addOperand(ins.src2);
            addOperand(ins.branchLhs);
            addOperand(ins.branchRhs);
        }
    }
    return {values.begin(), values.end()};
}

int
Program::suggestedValueBits(int bound) const
{
    int64_t maxConst = 1;
    for (int64_t v : valueUniverse())
        maxConst = std::max(maxConst, std::abs(v));
    int64_t accumulation = 0;
    for (const Thread &t : threads) {
        for (const Instruction &ins : t.instrs) {
            bool accumulates =
                (ins.op == Opcode::Rmw && ins.rmwKind == RmwKind::Add) ||
                ins.op == Opcode::AddReg;
            if (accumulates && !ins.src.isReg()) {
                accumulation +=
                    std::abs(ins.src.value) * (bound + 1);
            }
        }
    }
    int64_t maxValue = maxConst + accumulation + 1;
    int bits = 2;
    while ((int64_t{1} << bits) <= maxValue && bits < 62)
        bits++;
    return std::max(3, bits + 1); // one bit of headroom
}

void
Program::validateCond(const Cond &cond, const char *what) const
{
    switch (cond.kind) {
      case Cond::Kind::And:
      case Cond::Kind::Or:
        validateCond(*cond.lhs, what);
        validateCond(*cond.rhs, what);
        return;
      case Cond::Kind::Not:
        validateCond(*cond.lhs, what);
        return;
      case Cond::Kind::Eq:
      case Cond::Kind::Ne:
        for (const CondTerm *t : {&cond.tl, &cond.tr}) {
            if (t->kind == CondTerm::Kind::Reg) {
                if (t->thread < 0 || t->thread >= numThreads())
                    fatal(what, " references unknown thread P", t->thread);
            } else if (t->kind == CondTerm::Kind::Mem) {
                if (varIndex(t->name) < 0)
                    fatal(what, " references unknown variable ", t->name);
            }
        }
        return;
      case Cond::Kind::True:
        return;
    }
}

void
Program::validate()
{
    if (threads.empty())
        fatal("program has no threads");

    // Resolve physical locations through alias chains.
    physOf_.assign(vars.size(), -1);
    for (size_t i = 0; i < vars.size(); ++i) {
        // Follow the alias chain to its root.
        size_t cur = i;
        std::set<size_t> seen;
        while (!vars[cur].aliasOf.empty()) {
            if (!seen.insert(cur).second)
                fatal("cyclic alias chain involving variable ",
                      vars[cur].name);
            int nxt = varIndex(vars[cur].aliasOf);
            if (nxt < 0)
                fatal("variable ", vars[cur].name, " aliases unknown ",
                      vars[cur].aliasOf);
            cur = static_cast<size_t>(nxt);
        }
        physOf_[i] = static_cast<int>(cur);
    }

    std::set<std::string> varNames;
    for (const VarDecl &v : vars) {
        if (!varNames.insert(v.name).second)
            fatal("duplicate variable declaration: ", v.name);
    }

    for (Thread &t : threads) {
        std::map<std::string, int> labels;
        for (size_t pc = 0; pc < t.instrs.size(); ++pc) {
            const Instruction &ins = t.instrs[pc];
            if (ins.op == Opcode::Label) {
                if (!labels.emplace(ins.label, pc).second) {
                    fatalAt(ins.loc, "duplicate label ", ins.label, " in ",
                            t.name);
                }
            }
        }
        for (Instruction &ins : t.instrs) {
            if (ins.op == Opcode::Goto || ins.isBranch()) {
                if (!labels.count(ins.label)) {
                    fatalAt(ins.loc, "unknown jump target ", ins.label,
                            " in ", t.name);
                }
            }
            if (ins.isMemoryAccess()) {
                if (varIndex(ins.location) < 0) {
                    fatalAt(ins.loc, "unknown variable ", ins.location,
                            " in ", t.name);
                }
            }
            if (ins.scope && !scopeMatchesArch(*ins.scope, arch)) {
                fatalAt(ins.loc, "scope .", scopeName(*ins.scope),
                        " does not belong to architecture ",
                        archName(arch));
            }
            if (arch == Arch::Vulkan && ins.order == MemOrder::Sc) {
                fatalAt(ins.loc,
                        "Vulkan has no sequentially-consistent order");
            }
            // Default the scope.
            if (ins.producesEvent() && !ins.scope)
                ins.scope = defaultScope();
        }
    }

    if (assertion)
        validateCond(*assertion, "assertion");
    if (filter)
        validateCond(*filter, "filter");
}

} // namespace gpumc::prog
