/**
 * @file
 * Seeded random litmus-program generator — the input side of the
 * differential fuzzing subsystem (the repo's analogue of the paper's
 * Dartagnan-vs-Alloy cross validation, Section 6.3, at fuzz scale).
 *
 * Generation is fully deterministic: the same FuzzConfig and seed
 * produce the same program on every platform (std::mt19937_64 output
 * is pinned by the standard, and no unspecified distributions are
 * used). Knobs cover threads, fences, RMW/CAS, control flow (counted
 * loops, spinloops, forward branches), mixed scopes, PTX proxies with
 * aliased variables, and Vulkan storage classes / av-vis operations.
 */

#ifndef GPUMC_FUZZ_RANDOM_PROGRAM_HPP
#define GPUMC_FUZZ_RANDOM_PROGRAM_HPP

#include <cstdint>
#include <random>

#include "program/program.hpp"

namespace gpumc::fuzz {

struct FuzzConfig {
    prog::Arch arch = prog::Arch::Ptx;

    int minThreads = 2;
    int maxThreads = 3;
    int minVars = 1;
    int maxVars = 2;
    /** Straight-line instructions per thread (control-flow constructs
     *  add their own bookkeeping instructions on top). */
    int minInstrs = 1;
    int maxInstrs = 3;

    bool fences = true;
    /** Fetch-add / exchange RMWs. */
    bool rmw = true;
    /** Compare-and-swap RMWs (unsupported by the explicit checker —
     *  exercises the SKIPPED reporting path). */
    bool cas = false;
    /**
     * Control flow: counted loops (bound-sensitive by design),
     * spinloops and forward branches. Programs stop being
     * straight-line, so the explicit oracle reports SKIPPED.
     */
    bool controlFlow = false;
    /** Largest iteration count of a generated counted loop (>= 2). */
    int maxLoopIters = 3;

    /** Draw per-instruction scopes from the whole hierarchy instead of
     *  leaving everything at the architecture default. */
    bool mixedScopes = true;
    /** Split threads across CTAs / workgroups (and occasionally GPUs /
     *  queue families). */
    bool splitPlacement = true;

    /** PTX: surface/texture/constant proxy accesses + proxy fences. */
    bool proxies = false;
    /** Extra variables aliasing v0 (same physical location). */
    bool aliases = false;
    /** Vulkan: sc1 variables and semsc1 fence semantics. */
    bool storageClasses = false;
    /** Vulkan: av/vis access flags and avdevice/visdevice ops. */
    bool avvis = false;
    /** Control barriers (bar.sync / cbar). */
    bool barriers = false;
    /** Allow final-state conditions over memory, not just registers
     *  (PTX memory conditions are unsupported by the explicit oracle). */
    bool memConditions = false;

    /** Convenience profiles used by the CLI and the test suite. */
    static FuzzConfig basic(prog::Arch arch);        // straight-line
    static FuzzConfig withControlFlow(prog::Arch arch);
    static FuzzConfig full(prog::Arch arch);         // everything on
};

/** SplitMix64 step — used to derive independent per-case seeds. */
uint64_t mixSeed(uint64_t seed, uint64_t index);

/**
 * Generate one valid program (Program::validate() has been run).
 * @p rng is advanced; drawing several programs from one rng is fine.
 */
prog::Program randomProgram(std::mt19937_64 &rng, const FuzzConfig &config);

/** Generate the program for campaign case @p index of @p seed. */
prog::Program randomProgram(uint64_t seed, uint64_t index,
                            const FuzzConfig &config);

} // namespace gpumc::fuzz

#endif // GPUMC_FUZZ_RANDOM_PROGRAM_HPP
