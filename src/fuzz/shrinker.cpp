#include "fuzz/shrinker.hpp"

#include "support/diagnostics.hpp"

namespace gpumc::fuzz {

using namespace prog;

Program
cloneProgram(const Program &program)
{
    Program out;
    out.arch = program.arch;
    out.name = program.name;
    out.vars = program.vars;
    out.threads = program.threads;
    out.assertKind = program.assertKind;
    if (program.assertion)
        out.assertion = program.assertion->clone();
    if (program.filter)
        out.filter = program.filter->clone();
    out.meta = program.meta;
    return out;
}

int
programSize(const Program &program)
{
    int size = 0;
    for (const Thread &t : program.threads)
        size += static_cast<int>(t.instrs.size());
    return size;
}

namespace {

/**
 * Renumber register references after removing thread @p removed.
 * Returns false (aborting the removal) when the condition still
 * references the removed thread.
 */
bool
renumberCondThreads(Cond *cond, int removed)
{
    if (!cond)
        return true;
    switch (cond->kind) {
      case Cond::Kind::And:
      case Cond::Kind::Or:
        return renumberCondThreads(cond->lhs.get(), removed) &&
               renumberCondThreads(cond->rhs.get(), removed);
      case Cond::Kind::Not:
        return renumberCondThreads(cond->lhs.get(), removed);
      case Cond::Kind::Eq:
      case Cond::Kind::Ne:
        for (CondTerm *t : {&cond->tl, &cond->tr}) {
            if (t->kind != CondTerm::Kind::Reg)
                continue;
            if (t->thread == removed)
                return false;
            if (t->thread > removed)
                t->thread--;
        }
        return true;
      case Cond::Kind::True:
        return true;
    }
    return true;
}

bool
condMentionsVar(const Cond *cond, const std::string &name)
{
    if (!cond)
        return false;
    switch (cond->kind) {
      case Cond::Kind::And:
      case Cond::Kind::Or:
        return condMentionsVar(cond->lhs.get(), name) ||
               condMentionsVar(cond->rhs.get(), name);
      case Cond::Kind::Not:
        return condMentionsVar(cond->lhs.get(), name);
      case Cond::Kind::Eq:
      case Cond::Kind::Ne:
        for (const CondTerm *t : {&cond->tl, &cond->tr}) {
            if (t->kind == CondTerm::Kind::Mem && t->name == name)
                return true;
        }
        return false;
      case Cond::Kind::True:
        return false;
    }
    return false;
}

class Shrinker {
  public:
    Shrinker(const Program &program, const FailurePredicate &stillFails,
             const ShrinkOptions &options)
        : best_(cloneProgram(program)), stillFails_(stillFails),
          options_(options)
    {
        outcome_.initialSize = programSize(program);
    }

    ShrinkOutcome run()
    {
        bool progress = true;
        while (progress && !budgetExhausted()) {
            progress = false;
            progress |= shrinkThreads();
            progress |= shrinkInstructions();
            progress |= shrinkCondition();
            progress |= shrinkVariables();
            progress |= shrinkAttributes();
        }
        outcome_.program = std::move(best_);
        outcome_.finalSize = programSize(outcome_.program);
        return std::move(outcome_);
    }

  private:
    Program best_;
    const FailurePredicate &stillFails_;
    ShrinkOptions options_;
    ShrinkOutcome outcome_;

    bool budgetExhausted() const
    {
        return outcome_.attempts >= options_.maxAttempts;
    }

    /** Validate + test a candidate; adopt it when it still fails. */
    bool tryCandidate(Program candidate)
    {
        if (budgetExhausted())
            return false;
        outcome_.attempts++;
        try {
            candidate.validate();
        } catch (const FatalError &) {
            return false;
        }
        if (!stillFails_(candidate))
            return false;
        best_ = std::move(candidate);
        outcome_.accepted++;
        return true;
    }

    bool shrinkThreads()
    {
        bool progress = false;
        for (int t = static_cast<int>(best_.threads.size()) - 1;
             t >= 0 && best_.threads.size() > 1; --t) {
            Program candidate = cloneProgram(best_);
            if (!renumberCondThreads(candidate.assertion.get(), t) ||
                !renumberCondThreads(candidate.filter.get(), t)) {
                continue;
            }
            candidate.threads.erase(candidate.threads.begin() + t);
            for (size_t i = 0; i < candidate.threads.size(); ++i)
                candidate.threads[i].name = "P" + std::to_string(i);
            progress |= tryCandidate(std::move(candidate));
        }
        return progress;
    }

    bool shrinkInstructions()
    {
        bool progress = false;
        for (size_t t = 0; t < best_.threads.size(); ++t) {
            for (int i =
                     static_cast<int>(best_.threads[t].instrs.size()) - 1;
                 i >= 0; --i) {
                Program candidate = cloneProgram(best_);
                auto &instrs = candidate.threads[t].instrs;
                instrs.erase(instrs.begin() + i);
                progress |= tryCandidate(std::move(candidate));
            }
        }
        return progress;
    }

    bool shrinkCondition()
    {
        bool progress = false;
        // Replace the assertion root by one of its children.
        while (best_.assertion && !budgetExhausted()) {
            const Cond &root = *best_.assertion;
            bool stepped = false;
            if (root.kind == Cond::Kind::And ||
                root.kind == Cond::Kind::Or) {
                for (const CondPtr *child : {&root.lhs, &root.rhs}) {
                    Program candidate = cloneProgram(best_);
                    candidate.assertion = (*child)->clone();
                    if (tryCandidate(std::move(candidate))) {
                        stepped = true;
                        break;
                    }
                }
            } else if (root.kind == Cond::Kind::Not) {
                Program candidate = cloneProgram(best_);
                candidate.assertion = root.lhs->clone();
                stepped = tryCandidate(std::move(candidate));
            }
            if (!stepped)
                break;
            progress = true;
        }
        if (best_.filter) {
            Program candidate = cloneProgram(best_);
            candidate.filter.reset();
            progress |= tryCandidate(std::move(candidate));
        }
        return progress;
    }

    bool shrinkVariables()
    {
        bool progress = false;
        for (int v = static_cast<int>(best_.vars.size()) - 1;
             v >= 0 && best_.vars.size() > 1; --v) {
            const std::string &name = best_.vars[v].name;
            bool used = condMentionsVar(best_.assertion.get(), name) ||
                        condMentionsVar(best_.filter.get(), name);
            for (const Thread &t : best_.threads) {
                for (const Instruction &ins : t.instrs)
                    used |= ins.isMemoryAccess() && ins.location == name;
            }
            for (const VarDecl &other : best_.vars)
                used |= other.aliasOf == name;
            if (used)
                continue;
            Program candidate = cloneProgram(best_);
            candidate.vars.erase(candidate.vars.begin() + v);
            progress |= tryCandidate(std::move(candidate));
        }
        return progress;
    }

    /** Attribute-level simplifications that keep the shape. */
    bool shrinkAttributes()
    {
        bool progress = false;
        // Break alias links.
        for (size_t v = 0; v < best_.vars.size(); ++v) {
            if (best_.vars[v].aliasOf.empty())
                continue;
            Program candidate = cloneProgram(best_);
            candidate.vars[v].aliasOf.clear();
            progress |= tryCandidate(std::move(candidate));
        }
        // Collapse placements onto thread 0's coordinates.
        for (size_t t = 1; t < best_.threads.size(); ++t) {
            const ThreadPlacement &a = best_.threads[t].placement;
            const ThreadPlacement &base = best_.threads[0].placement;
            if (a.cta == base.cta && a.gpu == base.gpu &&
                a.sg == base.sg && a.wg == base.wg && a.qf == base.qf &&
                !a.ssw) {
                continue;
            }
            Program candidate = cloneProgram(best_);
            candidate.threads[t].placement = base;
            candidate.threads[t].placement.ssw = false;
            progress |= tryCandidate(std::move(candidate));
        }
        // Lower loop trip counts (branch constants).
        for (size_t t = 0; t < best_.threads.size(); ++t) {
            for (size_t i = 0; i < best_.threads[t].instrs.size(); ++i) {
                const Instruction &ins = best_.threads[t].instrs[i];
                if (!ins.isBranch() || ins.branchRhs.isReg() ||
                    ins.branchRhs.value <= 2) {
                    continue;
                }
                Program candidate = cloneProgram(best_);
                candidate.threads[t].instrs[i].branchRhs =
                    Operand::makeConst(ins.branchRhs.value - 1);
                progress |= tryCandidate(std::move(candidate));
            }
        }
        return progress;
    }
};

} // namespace

ShrinkOutcome
shrinkProgram(const Program &program, const FailurePredicate &stillFails,
              ShrinkOptions options)
{
    return Shrinker(program, stillFails, options).run();
}

} // namespace gpumc::fuzz
