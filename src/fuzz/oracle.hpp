/**
 * @file
 * Differential oracle harness: runs one program through several
 * independent engines and cross-checks the verdicts. Four oracles:
 *
 *  - roundtrip:       emit litmus text, reparse, same SMT verdict
 *  - smt-vs-explicit: SMT engine vs the explicit-state enumerator
 *                     (safety and, for flagged models, DRF). When the
 *                     explicit checker cannot handle the program it is
 *                     reported as SKIPPED with the reason — never
 *                     silently counted as agreement.
 *  - z3-vs-builtin:   the two SMT backends on identical encodings
 *  - bound-mono:      metamorphic check — a violation witnessed at
 *                     unroll bound k must persist at bound k+1
 *  - session-reuse:   checkAll() on one shared incremental session
 *                     must agree verdict-for-verdict (including detail
 *                     strings, with witness validation on) with three
 *                     fresh-session checks, on both backends
 *  - portfolio-vs-single: the racing portfolio backend must agree
 *                     verdict-for-verdict with the builtin and Z3
 *                     backends run alone, whichever lane wins the race
 *  - clause-sharing:  the builtin backend with learned-clause sharing
 *                     fully on must agree on holds/unknown with the
 *                     sharing-off baseline — imported clauses must
 *                     never flip a verdict
 *  - dpor:            the DPOR stateless model-checking engine vs the
 *                     SMT verdicts (safety and, for flagged models,
 *                     DRF) — a third, structurally different engine
 *                     next to smt-vs-explicit; unsupported programs
 *                     are SKIPPED with the reason
 *
 * The harness can run self-contained (runOracles, used by the shrinker
 * and the tests) or compare results produced elsewhere (compareOracles,
 * used by the campaign driver which fans the SMT queries out through
 * core::BatchVerifier).
 */

#ifndef GPUMC_FUZZ_ORACLE_HPP
#define GPUMC_FUZZ_ORACLE_HPP

#include <string>
#include <vector>

#include "cat/model.hpp"
#include "core/verifier.hpp"
#include "explicit/explicit_checker.hpp"
#include "program/program.hpp"

namespace gpumc::fuzz {

enum class OracleKind {
    RoundTrip,
    SmtVsExplicit,
    Z3VsBuiltin,
    BoundMono,
    SessionReuse,
    PortfolioVsSingle,
    ClauseSharing,
    Dpor
};

const char *oracleName(OracleKind kind);

enum class OracleVerdict { Agree, Skipped, Disagree };

const char *oracleVerdictName(OracleVerdict verdict);

struct OracleOutcome {
    OracleKind kind = OracleKind::RoundTrip;
    OracleVerdict verdict = OracleVerdict::Agree;
    /** Skip reason or disagreement description. */
    std::string detail;
};

struct OracleReport {
    std::vector<OracleOutcome> outcomes;

    bool anyDisagreement() const;
    const OracleOutcome *find(OracleKind kind) const;
    /** One deterministic log line, e.g.
     *  "roundtrip=agree smt-vs-explicit=skip(compare-and-swap) ...". */
    std::string summary() const;
};

struct OracleOptions {
    /** Unroll bound k for every engine (bound-mono also runs k+1). */
    int bound = 2;
    /**
     * Bound for the Z3 side of z3-vs-builtin; 0 = same as `bound`.
     * Setting it lower deliberately breaks the oracle — the
     * `--inject=bound-gap` fault used to exercise shrinking and repro
     * emission end to end.
     */
    int z3Bound = 0;

    bool roundTrip = true;
    bool smtVsExplicit = true;
    bool z3VsBuiltin = true;
    bool boundMono = true;
    /**
     * Shared-session vs fresh-session differential (self-contained in
     * runOracles; compareOracles has no inputs for it). Off by default:
     * it re-verifies every property twice per backend, so campaigns
     * opt in explicitly.
     */
    bool sessionReuse = false;
    /**
     * Portfolio-vs-single-backend differential (self-contained in
     * runOracles, like sessionReuse). Off by default: it re-verifies
     * every property on three backends.
     */
    bool portfolioVsSingle = false;
    /**
     * Sharing-on vs sharing-off differential on the builtin backend
     * (self-contained in runOracles, like portfolioVsSingle). Off by
     * default: it re-verifies every property twice.
     */
    bool clauseSharing = false;
    /**
     * DPOR-vs-SMT differential (self-contained in runOracles, like
     * portfolioVsSingle). Off by default: it re-verifies safety (and
     * DRF) through a third engine per case.
     */
    bool dpor = false;

    uint64_t explicitMaxCandidates = 50000;
    double explicitTimeoutMs = 3000;
    uint64_t dporMaxCandidates = 50000;
    double dporTimeoutMs = 3000;
    int64_t solverTimeoutMs = 0;

    int effectiveZ3Bound() const { return z3Bound > 0 ? z3Bound : bound; }
    /** Restrict to a single oracle (shrinker predicates). */
    OracleOptions only(OracleKind kind) const;
};

/** Outcome of one engine invocation, for compareOracles. */
struct EngineRun {
    bool ran = false;
    /** The engine threw; `error` holds the message. */
    bool failed = false;
    std::string error;
    core::VerificationResult result;

    static EngineRun of(core::VerificationResult r)
    {
        EngineRun run;
        run.ran = true;
        run.result = std::move(r);
        return run;
    }
    static EngineRun failure(std::string message)
    {
        EngineRun run;
        run.ran = true;
        run.failed = true;
        run.error = std::move(message);
        return run;
    }
};

/** Everything compareOracles needs; unused slots stay ran=false. */
struct OracleInputs {
    const prog::Program *program = nullptr;
    bool modelFlagged = false;

    EngineRun builtinSafety;   // builtin backend, bound k
    EngineRun z3Safety;        // z3 backend, effectiveZ3Bound()
    EngineRun builtinNext;     // builtin backend, bound k+1
    EngineRun builtinDrf;      // builtin backend CatSpec, bound k
    EngineRun roundTripSafety; // builtin, bound k, on the reparsed text
    /** Non-empty when emit/reparse itself failed. */
    std::string roundTripError;

    bool explicitRan = false;
    expl::ExplicitResult explicitResult;
};

/** Did the quantified statement witness a behaviour? (exists: holds;
 *  ~exists/forall: a violating behaviour was found, i.e. !holds). */
bool witnessFound(const prog::Program &program,
                  const core::VerificationResult &result);

/** Cross-check pre-computed engine runs. */
OracleReport compareOracles(const OracleInputs &inputs,
                            const OracleOptions &options);

/**
 * Run just the shared-vs-fresh session differential (self-contained:
 * verifies all three properties on one checkAll() session and on
 * three fresh sessions, per backend). Used by runOracles when
 * `options.sessionReuse` is set and by the campaign driver, which
 * fans it across workers itself.
 */
OracleOutcome sessionReuseOracle(const prog::Program &program,
                                 const cat::CatModel &model,
                                 const OracleOptions &options);

/**
 * Run just the portfolio-vs-single differential (self-contained): a
 * checkAll() on the portfolio backend must agree on holds/unknown,
 * property for property, with checkAll() on the builtin backend and on
 * Z3 alone. Used by runOracles when `options.portfolioVsSingle` is set
 * and by the campaign driver, which fans it across workers itself.
 */
OracleOutcome portfolioVsSingleOracle(const prog::Program &program,
                                      const cat::CatModel &model,
                                      const OracleOptions &options);

/**
 * Run just the clause-sharing differential (self-contained): a
 * checkAll() on the builtin backend with clause sharing fully on
 * (cube + session scope, cube depth 2 so the cube path runs) must
 * agree on holds/unknown, property for property, with the sharing-off
 * baseline. Detail strings are not compared: sharing legally changes
 * which witness the solver finds. Used by runOracles when
 * `options.clauseSharing` is set and by the campaign driver, which
 * fans it across workers itself.
 */
OracleOutcome clauseSharingOracle(const prog::Program &program,
                                  const cat::CatModel &model,
                                  const OracleOptions &options);

/**
 * Run just the DPOR-vs-SMT differential (self-contained): explore the
 * program with the DPOR engine and compare its condition verdict with
 * the builtin backend's safety verdict, and — for flagged models — its
 * race verdict with the CatSpec verdict. Unsupported programs and
 * exhausted exploration budgets report SKIPPED with the reason. Used
 * by runOracles when `options.dpor` is set and by the campaign driver,
 * which fans it across workers itself.
 */
OracleOutcome dporOracle(const prog::Program &program,
                         const cat::CatModel &model,
                         const OracleOptions &options);

/** Run every enabled engine sequentially and cross-check. */
OracleReport runOracles(const prog::Program &program,
                        const cat::CatModel &model,
                        const OracleOptions &options);

} // namespace gpumc::fuzz

#endif // GPUMC_FUZZ_ORACLE_HPP
