#include "fuzz/campaign.hpp"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <fstream>

#include "core/batch_verifier.hpp"
#include "fuzz/shrinker.hpp"
#include "litmus/litmus_emitter.hpp"
#include "litmus/litmus_parser.hpp"
#include "support/diagnostics.hpp"
#include "support/thread_pool.hpp"

namespace gpumc::fuzz {

namespace {

std::string
hexSeed(uint64_t seed)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(seed));
    return buf;
}

std::string
caseTag(size_t index)
{
    char buf[16];
    std::snprintf(buf, sizeof buf, "%04zu", index);
    return buf;
}

/** Batch-job indices of the engine runs belonging to one case. */
struct CaseSlots {
    int builtin = -1;
    int z3 = -1;
    int next = -1;
    int drf = -1;
    int roundTrip = -1;
};

EngineRun
fromEntry(const std::vector<core::BatchEntry> &entries, int index)
{
    if (index < 0)
        return {};
    const core::BatchEntry &entry = entries[static_cast<size_t>(index)];
    if (entry.failed)
        return EngineRun::failure(entry.error);
    return EngineRun::of(entry.result);
}

/** Reproduce-by-hand command for a repro file header. */
std::string
reproCommand(const std::string &file, const std::string &model,
             const char *backend, int bound)
{
    return "gpumc " + file + " " + model + ".cat --backend=" + backend +
           " --bound=" + std::to_string(bound);
}

} // namespace

CampaignResult
runCampaign(const CampaignOptions &options)
{
    GPUMC_ASSERT(options.model, "runCampaign without a model");
    const cat::CatModel &model = *options.model;
    const OracleOptions &oracle = options.oracle;
    const int runs = std::max(0, options.runs);
    const bool flagged = model.hasFlaggedAxioms();

    CampaignResult result;
    std::string &log = result.log;
    log += "campaign model=" + options.modelName +
           " arch=" + prog::archName(options.config.arch) +
           " seed=" + std::to_string(options.seed) +
           " runs=" + std::to_string(runs) +
           " bound=" + std::to_string(oracle.bound);
    if (oracle.z3Bound > 0 && oracle.z3Bound != oracle.bound) {
        log += " z3-bound=" + std::to_string(oracle.effectiveZ3Bound()) +
               " (injected)";
    }
    log += "\n";

    // Phase 1: generate. Sequential so the stream depends only on the
    // seed; deques keep pointers stable for the batch jobs.
    std::deque<prog::Program> programs;
    result.cases.resize(static_cast<size_t>(runs));
    for (int i = 0; i < runs; ++i) {
        result.cases[static_cast<size_t>(i)].caseSeed =
            mixSeed(options.seed, static_cast<uint64_t>(i));
        programs.push_back(randomProgram(
            options.seed, static_cast<uint64_t>(i), options.config));
    }

    // Phase 2: emit + reparse for the round-trip oracle (cheap, no
    // solver involved — sequential keeps it deterministic trivially).
    std::deque<prog::Program> reparsed;
    std::vector<std::string> reparseErrors(static_cast<size_t>(runs));
    std::vector<char> reparseOk(static_cast<size_t>(runs), 0);
    if (oracle.roundTrip) {
        for (int i = 0; i < runs; ++i) {
            const size_t n = static_cast<size_t>(i);
            try {
                reparsed.push_back(litmus::parseLitmus(
                    litmus::emitLitmus(programs[n])));
                reparseOk[n] = 1;
            } catch (const std::exception &error) {
                reparsed.emplace_back();
                reparseErrors[n] = error.what();
            }
        }
    }

    // Phase 3: every SMT-side query of every case as one flat batch
    // through BatchVerifier — this is the campaign fan-out.
    std::vector<CaseSlots> slots(static_cast<size_t>(runs));
    std::vector<core::BatchJob> batch;
    auto push = [&](const prog::Program &target, core::Property property,
                    smt::BackendKind backend, int bound,
                    const std::string &label) {
        core::BatchJob job;
        job.program = &target;
        job.model = &model;
        job.property = property;
        job.options.backend = backend;
        job.options.bound = bound;
        job.options.validateWitness = true;
        job.options.solverTimeoutMs = oracle.solverTimeoutMs;
        job.label = label;
        batch.push_back(std::move(job));
        return static_cast<int>(batch.size()) - 1;
    };
    const bool needBuiltin = oracle.roundTrip || oracle.smtVsExplicit ||
                             oracle.z3VsBuiltin || oracle.boundMono;
    for (int i = 0; i < runs; ++i) {
        const size_t n = static_cast<size_t>(i);
        const std::string tag = "case " + caseTag(n);
        if (needBuiltin) {
            slots[n].builtin =
                push(programs[n], core::Property::Safety,
                     smt::BackendKind::Builtin, oracle.bound,
                     tag + " builtin");
        }
        if (oracle.z3VsBuiltin) {
            slots[n].z3 = push(programs[n], core::Property::Safety,
                               smt::BackendKind::Z3,
                               oracle.effectiveZ3Bound(), tag + " z3");
        }
        if (oracle.boundMono) {
            slots[n].next =
                push(programs[n], core::Property::Safety,
                     smt::BackendKind::Builtin, oracle.bound + 1,
                     tag + " builtin@k+1");
        }
        if (oracle.smtVsExplicit && flagged) {
            slots[n].drf = push(programs[n], core::Property::CatSpec,
                                smt::BackendKind::Builtin, oracle.bound,
                                tag + " drf");
        }
        if (oracle.roundTrip && reparseOk[n]) {
            slots[n].roundTrip =
                push(reparsed[n], core::Property::Safety,
                     smt::BackendKind::Builtin, oracle.bound,
                     tag + " reparsed");
        }
    }
    core::BatchVerifier engine(options.jobs);
    const std::vector<core::BatchEntry> entries = engine.run(batch);

    // Phase 4: explicit-state enumeration, one slot per case.
    std::vector<expl::ExplicitResult> explicitResults(
        static_cast<size_t>(runs));
    std::vector<std::string> explicitErrors(static_cast<size_t>(runs));
    if (oracle.smtVsExplicit) {
        expl::ExplicitOptions eo;
        eo.maxCandidates = oracle.explicitMaxCandidates;
        eo.timeoutMs = oracle.explicitTimeoutMs;
        parallelFor(runs, options.jobs, [&](int64_t i) {
            const size_t n = static_cast<size_t>(i);
            try {
                expl::ExplicitChecker checker(programs[n], model, eo);
                explicitResults[n] = checker.run();
            } catch (const std::exception &error) {
                explicitErrors[n] = error.what();
            }
        });
    }

    // Phase 4b: the session-reuse differential, self-contained per
    // case (shared checkAll() vs fresh sessions on both backends), so
    // it fans out directly instead of going through the batch.
    std::vector<OracleOutcome> reuseOutcomes(static_cast<size_t>(runs));
    if (oracle.sessionReuse) {
        parallelFor(runs, options.jobs, [&](int64_t i) {
            const size_t n = static_cast<size_t>(i);
            reuseOutcomes[n] =
                sessionReuseOracle(programs[n], model, oracle);
        });
    }

    // Phase 4c: the portfolio-vs-single differential, likewise
    // self-contained per case (a racing checkAll() vs each single
    // backend); the portfolio's own lanes draw on the same thread
    // budget as these workers, so --jobs stays a global cap.
    std::vector<OracleOutcome> portfolioOutcomes(
        static_cast<size_t>(runs));
    if (oracle.portfolioVsSingle) {
        parallelFor(runs, options.jobs, [&](int64_t i) {
            const size_t n = static_cast<size_t>(i);
            portfolioOutcomes[n] =
                portfolioVsSingleOracle(programs[n], model, oracle);
        });
    }

    // Phase 4d: the clause-sharing differential, likewise
    // self-contained per case (sharing-on checkAll() vs the
    // sharing-off baseline on the builtin backend); sharing makes
    // search timing-dependent, which is exactly what the oracle must
    // show never reaches the verdicts.
    std::vector<OracleOutcome> sharingOutcomes(
        static_cast<size_t>(runs));
    if (oracle.clauseSharing) {
        parallelFor(runs, options.jobs, [&](int64_t i) {
            const size_t n = static_cast<size_t>(i);
            sharingOutcomes[n] =
                clauseSharingOracle(programs[n], model, oracle);
        });
    }

    // Phase 4e: the DPOR differential, likewise self-contained per
    // case (a full stateless-model-checking exploration vs the builtin
    // SMT verdicts); unsupported programs and exhausted budgets show
    // up as skips in the log rather than vanishing.
    std::vector<OracleOutcome> dporOutcomes(static_cast<size_t>(runs));
    if (oracle.dpor) {
        parallelFor(runs, options.jobs, [&](int64_t i) {
            const size_t n = static_cast<size_t>(i);
            dporOutcomes[n] = dporOracle(programs[n], model, oracle);
        });
    }

    // Phase 5: compare, sequentially in input order.
    std::vector<size_t> disagreeing;
    for (int i = 0; i < runs; ++i) {
        const size_t n = static_cast<size_t>(i);
        OracleInputs inputs;
        inputs.program = &programs[n];
        inputs.modelFlagged = flagged;
        inputs.builtinSafety = fromEntry(entries, slots[n].builtin);
        inputs.z3Safety = fromEntry(entries, slots[n].z3);
        inputs.builtinNext = fromEntry(entries, slots[n].next);
        inputs.builtinDrf = fromEntry(entries, slots[n].drf);
        inputs.roundTripSafety = fromEntry(entries, slots[n].roundTrip);
        inputs.roundTripError = reparseErrors[n];
        if (oracle.smtVsExplicit) {
            inputs.explicitRan = true;
            if (!explicitErrors[n].empty()) {
                inputs.explicitResult.supported = false;
                inputs.explicitResult.unsupportedReason =
                    "explicit error: " + explicitErrors[n];
            } else {
                inputs.explicitResult = explicitResults[n];
            }
        }

        OracleReport report = compareOracles(inputs, oracle);
        if (oracle.sessionReuse)
            report.outcomes.push_back(reuseOutcomes[n]);
        if (oracle.portfolioVsSingle)
            report.outcomes.push_back(portfolioOutcomes[n]);
        if (oracle.clauseSharing)
            report.outcomes.push_back(sharingOutcomes[n]);
        if (oracle.dpor)
            report.outcomes.push_back(dporOutcomes[n]);
        for (const OracleOutcome &o : report.outcomes) {
            result.oracleChecks++;
            switch (o.verdict) {
              case OracleVerdict::Agree:
                result.agreements++;
                break;
              case OracleVerdict::Skipped:
                result.skips++;
                if (o.detail.find("error:") != std::string::npos)
                    result.errors++;
                break;
              case OracleVerdict::Disagree:
                result.disagreements++;
                break;
            }
        }
        if (report.anyDisagreement())
            disagreeing.push_back(n);

        log += "case " + caseTag(n) + " seed=" +
               hexSeed(result.cases[n].caseSeed) + " " +
               report.summary() + "\n";
        result.cases[n].report = std::move(report);
    }

    log += "summary: cases=" + std::to_string(runs) +
           " checks=" + std::to_string(result.oracleChecks) +
           " agree=" + std::to_string(result.agreements) +
           " skip=" + std::to_string(result.skips) +
           " disagree=" + std::to_string(result.disagreements) +
           " errors=" + std::to_string(result.errors) + "\n";

    // Phase 6: shrink the first few disagreeing cases and write repros.
    if (options.shrink) {
        int budget = options.maxShrinks;
        for (size_t n : disagreeing) {
            if (budget-- <= 0)
                break;
            const OracleReport &report = result.cases[n].report;
            const OracleOutcome *bad = nullptr;
            for (const OracleOutcome &o : report.outcomes) {
                if (o.verdict == OracleVerdict::Disagree) {
                    bad = &o;
                    break;
                }
            }
            GPUMC_ASSERT(bad, "disagreeing case without disagreement");

            const OracleKind kind = bad->kind;
            const OracleOptions focus = oracle.only(kind);
            auto stillFails = [&](const prog::Program &candidate) {
                OracleReport r = runOracles(candidate, model, focus);
                const OracleOutcome *o = r.find(kind);
                return o && o->verdict == OracleVerdict::Disagree;
            };

            ShrinkRecord record;
            record.caseIndex = n;
            record.oracle = kind;
            ShrinkOptions so;
            so.maxAttempts = options.shrinkAttempts;
            ShrinkOutcome shrunk =
                shrinkProgram(programs[n], stillFails, so);
            record.initialSize = shrunk.initialSize;
            record.finalSize = shrunk.finalSize;
            log += "shrink case " + caseTag(n) +
                   " oracle=" + oracleName(kind) + " size " +
                   std::to_string(record.initialSize) + " -> " +
                   std::to_string(record.finalSize) + " (" +
                   std::to_string(shrunk.attempts) + " attempts)\n";

            shrunk.program.name = "repro-" + caseTag(n);
            std::string text;
            text += "// gpumc-fuzz repro: oracle " +
                    std::string(oracleName(kind)) + " disagreed\n";
            text += "// " + bad->detail + "\n";
            text += "// campaign seed " + std::to_string(options.seed) +
                    ", case " + caseTag(n) + ", case seed 0x" +
                    hexSeed(result.cases[n].caseSeed) + "\n";
            const std::string fileName =
                shrunk.program.name + "-" + oracleName(kind) + ".litmus";
            if (kind == OracleKind::Z3VsBuiltin) {
                text += "// reproduce: " +
                        reproCommand(fileName, options.modelName,
                                     "builtin", oracle.bound) +
                        "\n";
                text += "//       vs: " +
                        reproCommand(fileName, options.modelName, "z3",
                                     oracle.effectiveZ3Bound()) +
                        "\n";
            } else if (kind == OracleKind::BoundMono) {
                text += "// reproduce: " +
                        reproCommand(fileName, options.modelName,
                                     "builtin", oracle.bound) +
                        "\n";
                text += "//       vs: " +
                        reproCommand(fileName, options.modelName,
                                     "builtin", oracle.bound + 1) +
                        "\n";
            } else if (kind == OracleKind::Dpor) {
                text += "// reproduce: " +
                        reproCommand(fileName, options.modelName,
                                     "builtin", oracle.bound) +
                        "\n";
                text += "//       vs: gpumc " + fileName + " " +
                        options.modelName + ".cat --engine=dpor\n";
            } else if (kind == OracleKind::ClauseSharing) {
                text += "// reproduce: " +
                        reproCommand(fileName, options.modelName,
                                     "builtin", oracle.bound) +
                        " --all-properties --clause-share=off\n";
                text += "//       vs: " +
                        reproCommand(fileName, options.modelName,
                                     "builtin", oracle.bound) +
                        " --all-properties --clause-share=on "
                        "--cube-depth=2\n";
            } else {
                text += "// reproduce: " +
                        reproCommand(fileName, options.modelName,
                                     "builtin", oracle.bound) +
                        "\n";
            }
            text += litmus::emitLitmus(shrunk.program);

            // Confirm: the repro text, reparsed from scratch, still
            // reproduces the disagreement.
            try {
                prog::Program again = litmus::parseLitmus(text);
                record.confirmed = stillFails(again);
            } catch (const std::exception &) {
                record.confirmed = false;
            }

            if (!options.outDir.empty()) {
                std::filesystem::create_directories(options.outDir);
                const std::string path =
                    (std::filesystem::path(options.outDir) / fileName)
                        .string();
                std::ofstream out(path);
                out << text;
                out.close();
                record.reproPath = path;
                log += std::string("repro ") +
                       (record.confirmed ? "confirmed" : "UNCONFIRMED") +
                       ": " + path + "\n";
            } else {
                log += std::string("repro ") +
                       (record.confirmed ? "confirmed" : "UNCONFIRMED") +
                       " (not written: no --out-dir)\n";
            }
            result.shrinks.push_back(std::move(record));
        }
    }

    return result;
}

} // namespace gpumc::fuzz
