#include "fuzz/oracle.hpp"

#include "dpor/dpor_checker.hpp"
#include "litmus/litmus_emitter.hpp"
#include "litmus/litmus_parser.hpp"
#include "support/diagnostics.hpp"

namespace gpumc::fuzz {

const char *
oracleName(OracleKind kind)
{
    switch (kind) {
      case OracleKind::RoundTrip: return "roundtrip";
      case OracleKind::SmtVsExplicit: return "smt-vs-explicit";
      case OracleKind::Z3VsBuiltin: return "z3-vs-builtin";
      case OracleKind::BoundMono: return "bound-mono";
      case OracleKind::SessionReuse: return "session-reuse";
      case OracleKind::PortfolioVsSingle: return "portfolio-vs-single";
      case OracleKind::ClauseSharing: return "clause-sharing";
      case OracleKind::Dpor: return "dpor";
    }
    return "?";
}

const char *
oracleVerdictName(OracleVerdict verdict)
{
    switch (verdict) {
      case OracleVerdict::Agree: return "agree";
      case OracleVerdict::Skipped: return "skip";
      case OracleVerdict::Disagree: return "DISAGREE";
    }
    return "?";
}

bool
OracleReport::anyDisagreement() const
{
    for (const OracleOutcome &o : outcomes) {
        if (o.verdict == OracleVerdict::Disagree)
            return true;
    }
    return false;
}

const OracleOutcome *
OracleReport::find(OracleKind kind) const
{
    for (const OracleOutcome &o : outcomes) {
        if (o.kind == kind)
            return &o;
    }
    return nullptr;
}

std::string
OracleReport::summary() const
{
    std::string out;
    for (const OracleOutcome &o : outcomes) {
        if (!out.empty())
            out += " ";
        out += oracleName(o.kind);
        out += "=";
        out += oracleVerdictName(o.verdict);
        if (!o.detail.empty() && o.verdict != OracleVerdict::Agree)
            out += "(" + o.detail + ")";
    }
    return out;
}

OracleOptions
OracleOptions::only(OracleKind kind) const
{
    OracleOptions out = *this;
    out.roundTrip = kind == OracleKind::RoundTrip;
    out.smtVsExplicit = kind == OracleKind::SmtVsExplicit;
    out.z3VsBuiltin = kind == OracleKind::Z3VsBuiltin;
    out.boundMono = kind == OracleKind::BoundMono;
    out.sessionReuse = kind == OracleKind::SessionReuse;
    out.portfolioVsSingle = kind == OracleKind::PortfolioVsSingle;
    out.clauseSharing = kind == OracleKind::ClauseSharing;
    out.dpor = kind == OracleKind::Dpor;
    return out;
}

bool
witnessFound(const prog::Program &program,
             const core::VerificationResult &result)
{
    return program.assertKind == prog::AssertKind::Exists
               ? result.holds
               : !result.holds;
}

namespace {

/** Skip/error screening shared by every oracle. Returns true when the
 *  comparison can proceed on `run.result`. */
bool
screen(const EngineRun &run, const char *who, OracleOutcome &outcome)
{
    if (!run.ran) {
        outcome.verdict = OracleVerdict::Skipped;
        outcome.detail = std::string(who) + " not run";
        return false;
    }
    if (run.failed) {
        // Engine exceptions are surfaced, but as skips: a crash is not
        // a verdict disagreement, and the shrinker must not chase
        // mutants that merely make an engine throw.
        outcome.verdict = OracleVerdict::Skipped;
        outcome.detail = std::string(who) + " error: " + run.error;
        return false;
    }
    if (run.result.unknown) {
        outcome.verdict = OracleVerdict::Skipped;
        outcome.detail = std::string(who) + " exhausted solver budget";
        return false;
    }
    return true;
}

} // namespace

/**
 * Shared-vs-fresh session differential: one checkAll() on a shared
 * incremental session must match three fresh-session checks verdict
 * for verdict (holds, unknown and the detail string), with witness
 * validation enabled on both sides, on both backends.
 */
OracleOutcome
sessionReuseOracle(const prog::Program &program, const cat::CatModel &model,
                   const OracleOptions &options)
{
    OracleOutcome o;
    o.kind = OracleKind::SessionReuse;

    const core::Property props[] = {core::Property::Safety,
                                    core::Property::Liveness,
                                    core::Property::CatSpec};
    const char *propNames[] = {"safety", "liveness", "catspec"};
    auto describe = [](const core::VerificationResult &r) {
        if (r.unknown)
            return std::string("unknown");
        return std::string(r.holds ? "holds" : "fails") + "(" + r.detail +
               ")";
    };

    for (smt::BackendKind backend :
         {smt::BackendKind::Builtin, smt::BackendKind::Z3}) {
        if (o.verdict != OracleVerdict::Agree)
            break;
        const char *backendName =
            backend == smt::BackendKind::Z3 ? "z3" : "builtin";
        core::VerifierOptions vo;
        vo.backend = backend;
        vo.bound = options.bound;
        vo.validateWitness = true;
        vo.solverTimeoutMs = options.solverTimeoutMs;
        try {
            core::Verifier sharedVerifier(program, model, vo);
            std::vector<core::VerificationResult> shared =
                sharedVerifier.checkAll(
                    {props[0], props[1], props[2]});
            for (size_t i = 0; i < shared.size(); ++i) {
                core::Verifier freshVerifier(program, model, vo);
                core::VerificationResult fresh =
                    freshVerifier.check(props[i]);
                if (fresh.holds != shared[i].holds ||
                    fresh.unknown != shared[i].unknown ||
                    fresh.detail != shared[i].detail) {
                    o.verdict = OracleVerdict::Disagree;
                    o.detail = std::string(backendName) + " " +
                               propNames[i] +
                               ": fresh=" + describe(fresh) +
                               " shared=" + describe(shared[i]);
                    break;
                }
            }
        } catch (const FatalError &error) {
            o.verdict = OracleVerdict::Skipped;
            o.detail = std::string(backendName) + " error: " + error.what();
        } catch (const std::exception &error) {
            o.verdict = OracleVerdict::Skipped;
            o.detail = std::string(backendName) + " error: " + error.what();
        }
    }
    return o;
}

/**
 * Portfolio-vs-single differential: checkAll() with the racing
 * portfolio backend must agree on holds/unknown, property for
 * property, with checkAll() on each single backend. Detail strings
 * are not compared: the portfolio's witness comes from whichever lane
 * won the race, and distinct backends may legally report distinct
 * (equally valid) witness executions.
 */
OracleOutcome
portfolioVsSingleOracle(const prog::Program &program,
                        const cat::CatModel &model,
                        const OracleOptions &options)
{
    OracleOutcome o;
    o.kind = OracleKind::PortfolioVsSingle;

    const core::Property props[] = {core::Property::Safety,
                                    core::Property::Liveness,
                                    core::Property::CatSpec};
    const char *propNames[] = {"safety", "liveness", "catspec"};
    auto describe = [](const core::VerificationResult &r) {
        if (r.unknown)
            return std::string("unknown");
        return std::string(r.holds ? "holds" : "fails");
    };

    auto checkAllWith =
        [&](smt::BackendKind backend,
            const char *who) -> std::vector<core::VerificationResult> {
        core::VerifierOptions vo;
        vo.backend = backend;
        vo.bound = options.bound;
        vo.validateWitness = true;
        vo.solverTimeoutMs = options.solverTimeoutMs;
        try {
            core::Verifier verifier(program, model, vo);
            return verifier.checkAll({props[0], props[1], props[2]});
        } catch (const FatalError &error) {
            o.verdict = OracleVerdict::Skipped;
            o.detail = std::string(who) + " error: " + error.what();
        } catch (const std::exception &error) {
            o.verdict = OracleVerdict::Skipped;
            o.detail = std::string(who) + " error: " + error.what();
        }
        return {};
    };

    std::vector<core::VerificationResult> portfolio =
        checkAllWith(smt::BackendKind::Portfolio, "portfolio");
    if (o.verdict != OracleVerdict::Agree || portfolio.empty())
        return o;

    struct Single {
        smt::BackendKind backend;
        const char *name;
    };
    for (const Single &single :
         {Single{smt::BackendKind::Builtin, "builtin"},
          Single{smt::BackendKind::Z3, "z3"}}) {
        std::vector<core::VerificationResult> alone =
            checkAllWith(single.backend, single.name);
        if (o.verdict != OracleVerdict::Agree)
            return o;
        for (size_t i = 0; i < portfolio.size(); ++i) {
            if (portfolio[i].holds != alone[i].holds ||
                portfolio[i].unknown != alone[i].unknown) {
                o.verdict = OracleVerdict::Disagree;
                o.detail = std::string(propNames[i]) +
                           ": portfolio=" + describe(portfolio[i]) + " " +
                           single.name + "=" + describe(alone[i]);
                return o;
            }
        }
    }
    return o;
}

/**
 * Sharing-on vs sharing-off differential on the builtin backend:
 * imported clauses are logical consequences of the shared database, so
 * the verdicts must be bit-identical even though search paths (and
 * witnesses) differ. Cube depth 2 keeps the cube-scope path exercised;
 * session scope exercises the process-wide store and the activation-
 * literal watermark.
 */
OracleOutcome
clauseSharingOracle(const prog::Program &program,
                    const cat::CatModel &model,
                    const OracleOptions &options)
{
    OracleOutcome o;
    o.kind = OracleKind::ClauseSharing;

    const core::Property props[] = {core::Property::Safety,
                                    core::Property::Liveness,
                                    core::Property::CatSpec};
    const char *propNames[] = {"safety", "liveness", "catspec"};
    auto describe = [](const core::VerificationResult &r) {
        if (r.unknown)
            return std::string("unknown");
        return std::string(r.holds ? "holds" : "fails");
    };

    auto checkAllWith =
        [&](smt::ClauseShareMode mode,
            const char *who) -> std::vector<core::VerificationResult> {
        core::VerifierOptions vo;
        vo.backend = smt::BackendKind::Builtin;
        vo.bound = options.bound;
        vo.validateWitness = true;
        vo.solverTimeoutMs = options.solverTimeoutMs;
        vo.clauseShare = mode;
        if (mode != smt::ClauseShareMode::Off)
            vo.cubeDepth = 2; // exercise the cube-scope path too
        try {
            core::Verifier verifier(program, model, vo);
            return verifier.checkAll({props[0], props[1], props[2]});
        } catch (const FatalError &error) {
            o.verdict = OracleVerdict::Skipped;
            o.detail = std::string(who) + " error: " + error.what();
        } catch (const std::exception &error) {
            o.verdict = OracleVerdict::Skipped;
            o.detail = std::string(who) + " error: " + error.what();
        }
        return {};
    };

    std::vector<core::VerificationResult> off =
        checkAllWith(smt::ClauseShareMode::Off, "sharing-off");
    if (o.verdict != OracleVerdict::Agree || off.empty())
        return o;
    std::vector<core::VerificationResult> on =
        checkAllWith(smt::ClauseShareMode::On, "sharing-on");
    if (o.verdict != OracleVerdict::Agree || on.empty())
        return o;

    for (size_t i = 0; i < off.size(); ++i) {
        if (off[i].holds != on[i].holds ||
            off[i].unknown != on[i].unknown) {
            o.verdict = OracleVerdict::Disagree;
            o.detail = std::string(propNames[i]) +
                       ": sharing-off=" + describe(off[i]) +
                       " sharing-on=" + describe(on[i]);
            return o;
        }
    }
    return o;
}

/**
 * DPOR-vs-SMT differential: the stateless model-checking engine's
 * condition and race verdicts must match the builtin backend's safety
 * and CatSpec verdicts. The engine shares the explicit baseline's
 * support envelope, so unsupported programs (and exhausted exploration
 * budgets) are reported as skips, never silently as agreement.
 */
OracleOutcome
dporOracle(const prog::Program &program, const cat::CatModel &model,
           const OracleOptions &options)
{
    OracleOutcome o;
    o.kind = OracleKind::Dpor;

    dpor::DporResult explored;
    try {
        dpor::DporOptions dopts;
        dopts.maxCandidates = options.dporMaxCandidates;
        dopts.timeoutMs = options.dporTimeoutMs;
        dpor::DporChecker checker(program, model, dopts);
        explored = checker.run();
    } catch (const std::exception &error) {
        o.verdict = OracleVerdict::Skipped;
        o.detail = std::string("dpor error: ") + error.what();
        return o;
    }
    if (!explored.supported) {
        o.verdict = OracleVerdict::Skipped;
        o.detail = explored.unsupportedReason;
        return o;
    }
    if (explored.timedOut) {
        o.verdict = OracleVerdict::Skipped;
        o.detail = "dpor exploration budget exhausted";
        return o;
    }

    auto verify = [&](core::Property property) -> EngineRun {
        core::VerifierOptions vo;
        vo.backend = smt::BackendKind::Builtin;
        vo.bound = options.bound;
        vo.validateWitness = true;
        vo.solverTimeoutMs = options.solverTimeoutMs;
        try {
            core::Verifier verifier(program, model, vo);
            return EngineRun::of(verifier.check(property));
        } catch (const FatalError &error) {
            return EngineRun::failure(error.what());
        } catch (const std::exception &error) {
            return EngineRun::failure(error.what());
        }
    };

    EngineRun safety = verify(core::Property::Safety);
    if (!screen(safety, "builtin", o))
        return o;
    if (explored.conditionHolds != safety.result.holds) {
        o.verdict = OracleVerdict::Disagree;
        o.detail = std::string("dpor=") +
                   (explored.conditionHolds ? "holds" : "fails") +
                   " smt=" +
                   (safety.result.holds ? "holds" : "fails");
        return o;
    }
    if (model.hasFlaggedAxioms()) {
        EngineRun drf = verify(core::Property::CatSpec);
        if (!screen(drf, "drf", o))
            return o;
        bool smtRace = !drf.result.holds;
        if (explored.raceFound != smtRace) {
            o.verdict = OracleVerdict::Disagree;
            o.detail = std::string("dpor race=") +
                       (explored.raceFound ? "yes" : "no") +
                       " smt race=" + (smtRace ? "yes" : "no");
        }
    }
    return o;
}

OracleReport
compareOracles(const OracleInputs &inputs, const OracleOptions &options)
{
    GPUMC_ASSERT(inputs.program, "compareOracles without a program");
    const prog::Program &program = *inputs.program;
    OracleReport report;

    if (options.roundTrip) {
        OracleOutcome o;
        o.kind = OracleKind::RoundTrip;
        if (!inputs.roundTripError.empty()) {
            o.verdict = OracleVerdict::Disagree;
            o.detail = "emit/reparse failed: " + inputs.roundTripError;
        } else if (screen(inputs.builtinSafety, "builtin", o) &&
                   screen(inputs.roundTripSafety, "reparsed", o)) {
            if (inputs.builtinSafety.result.holds !=
                inputs.roundTripSafety.result.holds) {
                o.verdict = OracleVerdict::Disagree;
                o.detail = std::string("original=") +
                           (inputs.builtinSafety.result.holds ? "holds"
                                                              : "fails") +
                           " reparsed=" +
                           (inputs.roundTripSafety.result.holds
                                ? "holds"
                                : "fails");
            }
        }
        report.outcomes.push_back(std::move(o));
    }

    if (options.smtVsExplicit) {
        OracleOutcome o;
        o.kind = OracleKind::SmtVsExplicit;
        if (!inputs.explicitRan) {
            o.verdict = OracleVerdict::Skipped;
            o.detail = "explicit checker not run";
        } else if (!inputs.explicitResult.supported) {
            // The silent-skip hazard: an unsupported program must be
            // reported as SKIPPED with the reason, never as agreement.
            o.verdict = OracleVerdict::Skipped;
            o.detail = inputs.explicitResult.unsupportedReason;
        } else if (inputs.explicitResult.timedOut) {
            o.verdict = OracleVerdict::Skipped;
            o.detail = "explicit enumeration budget exhausted";
        } else if (screen(inputs.builtinSafety, "builtin", o)) {
            if (inputs.explicitResult.conditionHolds !=
                inputs.builtinSafety.result.holds) {
                o.verdict = OracleVerdict::Disagree;
                o.detail =
                    std::string("explicit=") +
                    (inputs.explicitResult.conditionHolds ? "holds"
                                                          : "fails") +
                    " smt=" +
                    (inputs.builtinSafety.result.holds ? "holds"
                                                       : "fails");
            } else if (inputs.modelFlagged &&
                       screen(inputs.builtinDrf, "drf", o)) {
                bool smtRace = !inputs.builtinDrf.result.holds;
                if (inputs.explicitResult.raceFound != smtRace) {
                    o.verdict = OracleVerdict::Disagree;
                    o.detail =
                        std::string("explicit race=") +
                        (inputs.explicitResult.raceFound ? "yes" : "no") +
                        " smt race=" + (smtRace ? "yes" : "no");
                }
            }
        }
        report.outcomes.push_back(std::move(o));
    }

    if (options.z3VsBuiltin) {
        OracleOutcome o;
        o.kind = OracleKind::Z3VsBuiltin;
        if (screen(inputs.builtinSafety, "builtin", o) &&
            screen(inputs.z3Safety, "z3", o)) {
            if (inputs.builtinSafety.result.holds !=
                inputs.z3Safety.result.holds) {
                o.verdict = OracleVerdict::Disagree;
                o.detail =
                    std::string("builtin[bound=") +
                    std::to_string(options.bound) + "]=" +
                    (inputs.builtinSafety.result.holds ? "holds"
                                                       : "fails") +
                    " z3[bound=" +
                    std::to_string(options.effectiveZ3Bound()) + "]=" +
                    (inputs.z3Safety.result.holds ? "holds" : "fails");
            }
        }
        report.outcomes.push_back(std::move(o));
    }

    if (options.boundMono) {
        OracleOutcome o;
        o.kind = OracleKind::BoundMono;
        if (screen(inputs.builtinSafety, "builtin", o) &&
            screen(inputs.builtinNext, "builtin@k+1", o)) {
            bool atK = witnessFound(program, inputs.builtinSafety.result);
            bool atK1 = witnessFound(program, inputs.builtinNext.result);
            if (atK && !atK1) {
                o.verdict = OracleVerdict::Disagree;
                o.detail = "witness at bound " +
                           std::to_string(options.bound) +
                           " vanished at bound " +
                           std::to_string(options.bound + 1);
            }
        }
        report.outcomes.push_back(std::move(o));
    }

    return report;
}

OracleReport
runOracles(const prog::Program &program, const cat::CatModel &model,
           const OracleOptions &options)
{
    OracleInputs inputs;
    inputs.program = &program;
    inputs.modelFlagged = model.hasFlaggedAxioms();

    auto verify = [&](smt::BackendKind backend, int bound,
                      core::Property property,
                      const prog::Program &target) -> EngineRun {
        core::VerifierOptions vo;
        vo.backend = backend;
        vo.bound = bound;
        vo.validateWitness = true;
        vo.solverTimeoutMs = options.solverTimeoutMs;
        try {
            core::Verifier verifier(target, model, vo);
            return EngineRun::of(verifier.check(property));
        } catch (const FatalError &error) {
            return EngineRun::failure(error.what());
        } catch (const std::exception &error) {
            return EngineRun::failure(error.what());
        }
    };

    bool needBuiltin =
        options.roundTrip || options.smtVsExplicit ||
        options.z3VsBuiltin || options.boundMono;
    if (needBuiltin) {
        inputs.builtinSafety =
            verify(smt::BackendKind::Builtin, options.bound,
                   core::Property::Safety, program);
    }
    if (options.z3VsBuiltin) {
        inputs.z3Safety = verify(smt::BackendKind::Z3,
                                 options.effectiveZ3Bound(),
                                 core::Property::Safety, program);
    }
    if (options.boundMono) {
        inputs.builtinNext =
            verify(smt::BackendKind::Builtin, options.bound + 1,
                   core::Property::Safety, program);
    }
    if (options.smtVsExplicit && inputs.modelFlagged) {
        inputs.builtinDrf = verify(smt::BackendKind::Builtin,
                                   options.bound, core::Property::CatSpec,
                                   program);
    }

    prog::Program reparsed; // must outlive the verification below
    if (options.roundTrip) {
        try {
            reparsed = litmus::parseLitmus(litmus::emitLitmus(program));
            inputs.roundTripSafety =
                verify(smt::BackendKind::Builtin, options.bound,
                       core::Property::Safety, reparsed);
        } catch (const FatalError &error) {
            inputs.roundTripError = error.what();
        } catch (const std::exception &error) {
            inputs.roundTripError = error.what();
        }
    }

    if (options.smtVsExplicit) {
        expl::ExplicitOptions eo;
        eo.maxCandidates = options.explicitMaxCandidates;
        eo.timeoutMs = options.explicitTimeoutMs;
        expl::ExplicitChecker checker(program, model, eo);
        inputs.explicitResult = checker.run();
        inputs.explicitRan = true;
    }

    OracleReport report = compareOracles(inputs, options);
    if (options.sessionReuse)
        report.outcomes.push_back(sessionReuseOracle(program, model, options));
    if (options.portfolioVsSingle) {
        report.outcomes.push_back(
            portfolioVsSingleOracle(program, model, options));
    }
    if (options.clauseSharing) {
        report.outcomes.push_back(
            clauseSharingOracle(program, model, options));
    }
    if (options.dpor)
        report.outcomes.push_back(dporOracle(program, model, options));
    return report;
}

} // namespace gpumc::fuzz
