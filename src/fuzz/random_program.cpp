#include "fuzz/random_program.hpp"

#include <algorithm>

#include "support/diagnostics.hpp"

namespace gpumc::fuzz {

using namespace prog;

FuzzConfig
FuzzConfig::basic(Arch arch)
{
    FuzzConfig cfg;
    cfg.arch = arch;
    return cfg;
}

FuzzConfig
FuzzConfig::withControlFlow(Arch arch)
{
    FuzzConfig cfg = basic(arch);
    cfg.controlFlow = true;
    return cfg;
}

FuzzConfig
FuzzConfig::full(Arch arch)
{
    FuzzConfig cfg = withControlFlow(arch);
    cfg.maxThreads = 3;
    cfg.maxVars = 3;
    cfg.cas = true;
    cfg.aliases = true;
    cfg.barriers = true;
    cfg.memConditions = true;
    if (arch == Arch::Ptx) {
        cfg.proxies = true;
    } else {
        cfg.storageClasses = true;
        cfg.avvis = true;
    }
    return cfg;
}

uint64_t
mixSeed(uint64_t seed, uint64_t index)
{
    // SplitMix64 (Steele et al.): decorrelates consecutive case ids.
    uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (index + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

namespace {

/**
 * All randomness goes through these helpers: `rng() % n` on the
 * standard-pinned mt19937_64 stream keeps generation byte-identical
 * across platforms (std::uniform_int_distribution and std::shuffle
 * leave their algorithms implementation-defined).
 */
class Draw {
  public:
    explicit Draw(std::mt19937_64 &rng) : rng_(rng) {}

    int upto(int n) { return static_cast<int>(rng_() % n); }
    int range(int lo, int hi) { return lo + upto(hi - lo + 1); }
    bool oneIn(int n) { return upto(n) == 0; }

    template <typename T> const T &pick(const std::vector<T> &v)
    {
        return v[upto(static_cast<int>(v.size()))];
    }

    template <typename T> void shuffle(std::vector<T> &v)
    {
        for (size_t i = v.size(); i > 1; --i)
            std::swap(v[i - 1], v[upto(static_cast<int>(i))]);
    }

  private:
    std::mt19937_64 &rng_;
};

class Generator {
  public:
    Generator(std::mt19937_64 &rng, const FuzzConfig &cfg)
        : draw_(rng), cfg_(cfg)
    {
    }

    Program generate()
    {
        Program p;
        p.arch = cfg_.arch;
        p.name = "fuzz";

        makeVars(p);
        int numThreads = draw_.range(cfg_.minThreads, cfg_.maxThreads);
        for (int t = 0; t < numThreads; ++t)
            p.threads.push_back(makeThread(t));
        makeCondition(p);
        p.validate();
        return p;
    }

  private:
    Draw draw_;
    const FuzzConfig &cfg_;
    std::vector<VarDecl> vars_;
    int regCounter_ = 0;
    int labelCounter_ = 0;
    std::vector<std::pair<int, std::string>> readRegs_;

    std::string freshReg() { return "r" + std::to_string(regCounter_++); }
    std::string freshLabel()
    {
        return "L" + std::to_string(labelCounter_++);
    }

    const VarDecl &randomVar() { return draw_.pick(vars_); }

    void makeVars(Program &p)
    {
        int numVars = draw_.range(cfg_.minVars, cfg_.maxVars);
        for (int v = 0; v < numVars; ++v) {
            VarDecl decl;
            decl.name = "v" + std::to_string(v);
            if (draw_.oneIn(4))
                decl.init = draw_.range(1, 2);
            if (cfg_.arch == Arch::Vulkan && cfg_.storageClasses &&
                draw_.oneIn(3)) {
                decl.storageClass = StorageClass::Sc1;
            }
            vars_.push_back(decl);
        }
        if (cfg_.aliases && draw_.oneIn(2)) {
            VarDecl alias;
            alias.name = "a0";
            alias.aliasOf = vars_[0].name;
            alias.storageClass = vars_[0].storageClass;
            vars_.push_back(alias);
        }
        p.vars = vars_;
    }

    ThreadPlacement makePlacement()
    {
        ThreadPlacement place;
        if (cfg_.arch == Arch::Ptx) {
            place.cta = cfg_.splitPlacement ? draw_.upto(2) : 0;
            if (cfg_.splitPlacement && draw_.oneIn(8))
                place.gpu = draw_.upto(2);
        } else {
            place.wg = cfg_.splitPlacement ? draw_.upto(2) : 0;
            if (cfg_.splitPlacement && draw_.oneIn(8))
                place.qf = draw_.upto(2);
            if (cfg_.splitPlacement && draw_.oneIn(8))
                place.ssw = true;
        }
        return place;
    }

    Scope randomScope()
    {
        static const std::vector<Scope> ptxScopes = {Scope::Cta,
                                                     Scope::Gpu,
                                                     Scope::Sys};
        static const std::vector<Scope> vkScopes = {Scope::Sg, Scope::Wg,
                                                    Scope::Qf, Scope::Dv};
        return draw_.pick(cfg_.arch == Arch::Ptx ? ptxScopes : vkScopes);
    }

    /** Finalize per-arch attributes of a memory access / fence. */
    void finish(Instruction &ins)
    {
        if (cfg_.arch == Arch::Ptx) {
            if (ins.isMemoryAccess())
                ins.atomic = ins.order != MemOrder::Plain;
        } else if (ins.isMemoryAccess()) {
            ins.atomic = ins.order != MemOrder::Plain ||
                         ins.op == Opcode::Rmw || draw_.oneIn(2);
            if (ins.atomic && ins.order == MemOrder::Plain)
                ins.order = MemOrder::Rlx;
            if (cfg_.avvis && ins.atomic) {
                if (ins.op == Opcode::Store && draw_.oneIn(4))
                    ins.avFlag = true;
                if (ins.op == Opcode::Load && draw_.oneIn(4))
                    ins.visFlag = true;
            }
        }
        if (cfg_.mixedScopes && ins.producesEvent() &&
            ins.op != Opcode::Barrier && ins.op != Opcode::ProxyFence &&
            ins.op != Opcode::AvDevice && ins.op != Opcode::VisDevice) {
            ins.scope = randomScope();
        }
    }

    Instruction makeStore(int /*thread*/)
    {
        static const std::vector<MemOrder> orders = {
            MemOrder::Plain, MemOrder::Plain, MemOrder::Rlx,
            MemOrder::Rel};
        Instruction ins;
        ins.op = Opcode::Store;
        const VarDecl &var = randomVar();
        ins.location = var.name;
        if (cfg_.arch == Arch::Vulkan)
            ins.storageClass = var.storageClass;
        ins.src = Operand::makeConst(draw_.range(1, 3));
        ins.order = draw_.pick(orders);
        if (cfg_.arch == Arch::Ptx && cfg_.proxies && draw_.oneIn(4))
            ins.proxy = draw_.oneIn(2) ? Proxy::Surface : Proxy::Texture;
        finish(ins);
        return ins;
    }

    Instruction makeLoad(int thread)
    {
        static const std::vector<MemOrder> orders = {
            MemOrder::Plain, MemOrder::Plain, MemOrder::Rlx,
            MemOrder::Acq};
        Instruction ins;
        ins.op = Opcode::Load;
        const VarDecl &var = randomVar();
        ins.location = var.name;
        if (cfg_.arch == Arch::Vulkan)
            ins.storageClass = var.storageClass;
        ins.dst = freshReg();
        ins.order = draw_.pick(orders);
        if (cfg_.arch == Arch::Ptx && cfg_.proxies && draw_.oneIn(4)) {
            static const std::vector<Proxy> proxies = {
                Proxy::Surface, Proxy::Texture, Proxy::Constant};
            ins.proxy = draw_.pick(proxies);
            // Proxy accesses are weak in the PTX fragment we emit.
            ins.order = MemOrder::Plain;
        }
        finish(ins);
        readRegs_.push_back({thread, ins.dst});
        return ins;
    }

    Instruction makeRmw(int thread)
    {
        static const std::vector<MemOrder> orders = {
            MemOrder::Rlx, MemOrder::Acq, MemOrder::Rel,
            MemOrder::AcqRel};
        Instruction ins;
        ins.op = Opcode::Rmw;
        const VarDecl &var = randomVar();
        ins.location = var.name;
        if (cfg_.arch == Arch::Vulkan)
            ins.storageClass = var.storageClass;
        ins.dst = freshReg();
        ins.order = draw_.pick(orders);
        int kind = draw_.upto(cfg_.cas ? 3 : 2);
        if (kind == 0) {
            ins.rmwKind = RmwKind::Add;
            ins.src = Operand::makeConst(1);
        } else if (kind == 1) {
            ins.rmwKind = RmwKind::Exchange;
            ins.src = Operand::makeConst(draw_.range(1, 3));
        } else {
            ins.rmwKind = RmwKind::Cas;
            ins.src = Operand::makeConst(draw_.upto(2));      // expected
            ins.src2 = Operand::makeConst(draw_.range(1, 3)); // desired
        }
        finish(ins);
        readRegs_.push_back({thread, ins.dst});
        return ins;
    }

    Instruction makeFence()
    {
        Instruction ins;
        if (cfg_.arch == Arch::Ptx && cfg_.proxies && draw_.oneIn(3)) {
            ins.op = Opcode::ProxyFence;
            static const std::vector<ProxyFenceKind> kinds = {
                ProxyFenceKind::Alias, ProxyFenceKind::Texture,
                ProxyFenceKind::Surface, ProxyFenceKind::Constant};
            ins.proxyFence = draw_.pick(kinds);
            ins.scope = Scope::Cta;
            ins.atomic = true;
            return ins;
        }
        ins.op = Opcode::Fence;
        ins.atomic = true;
        static const std::vector<MemOrder> orders = {
            MemOrder::AcqRel, MemOrder::AcqRel, MemOrder::Acq,
            MemOrder::Rel};
        ins.order = draw_.pick(orders);
        if (cfg_.arch == Arch::Ptx) {
            if (draw_.oneIn(4))
                ins.order = MemOrder::Sc;
        } else {
            ins.semSc0 = true;
            if (cfg_.storageClasses && draw_.oneIn(2))
                ins.semSc1 = true;
            if (cfg_.avvis && draw_.oneIn(4))
                ins.semAv = true;
            if (cfg_.avvis && draw_.oneIn(4))
                ins.semVis = true;
        }
        finish(ins);
        return ins;
    }

    Instruction makeBarrier()
    {
        Instruction ins;
        ins.op = Opcode::Barrier;
        ins.barrierId = Operand::makeConst(0);
        ins.scope = cfg_.arch == Arch::Ptx ? Scope::Cta : Scope::Wg;
        return ins;
    }

    Instruction makeAvVis()
    {
        Instruction ins;
        ins.op = draw_.oneIn(2) ? Opcode::AvDevice : Opcode::VisDevice;
        ins.scope = Scope::Dv;
        return ins;
    }

    /** One random straight-line instruction. */
    Instruction makeStraightLine(int thread)
    {
        while (true) {
            switch (draw_.upto(6)) {
              case 0:
              case 1:
                return makeStore(thread);
              case 2:
              case 3:
                return makeLoad(thread);
              case 4:
                if (cfg_.rmw)
                    return makeRmw(thread);
                break;
              case 5:
                if (cfg_.fences && draw_.oneIn(2))
                    return makeFence();
                if (cfg_.barriers && draw_.oneIn(2))
                    return makeBarrier();
                if (cfg_.avvis && cfg_.arch == Arch::Vulkan &&
                    draw_.oneIn(2)) {
                    return makeAvVis();
                }
                break;
            }
        }
    }

    /**
     * Counted loop: runs its body exactly K times, so any value it
     * accumulates needs K-1 backward jumps — verdicts involving those
     * values are sensitive to the unroll bound by construction.
     */
    void appendCountedLoop(Thread &thread, int t)
    {
        int iters = draw_.range(2, std::max(2, cfg_.maxLoopIters));
        std::string counter = freshReg();
        std::string label = freshLabel();

        Instruction init;
        init.op = Opcode::Mov;
        init.dst = counter;
        init.src = Operand::makeConst(0);
        thread.instrs.push_back(init);

        Instruction head;
        head.op = Opcode::Label;
        head.label = label;
        thread.instrs.push_back(head);

        int bodyLen = draw_.range(1, 2);
        for (int i = 0; i < bodyLen; ++i)
            thread.instrs.push_back(makeStraightLine(t));

        Instruction step;
        step.op = Opcode::AddReg;
        step.dst = counter;
        step.branchLhs = Operand::makeReg(counter);
        step.src = Operand::makeConst(1);
        thread.instrs.push_back(step);

        Instruction back;
        back.op = Opcode::BranchNe;
        back.branchLhs = Operand::makeReg(counter);
        back.branchRhs = Operand::makeConst(iters);
        back.label = label;
        thread.instrs.push_back(back);

        readRegs_.push_back({t, counter});
    }

    /** Spinloop: reload until the value is non-zero (Section 6.4). */
    void appendSpinloop(Thread &thread, int t)
    {
        std::string label = freshLabel();
        Instruction head;
        head.op = Opcode::Label;
        head.label = label;
        thread.instrs.push_back(head);

        Instruction load = makeLoad(t);
        // Keep the spin body side-effect-free and un-proxied.
        load.proxy = Proxy::Generic;
        thread.instrs.push_back(load);

        Instruction back;
        back.op = Opcode::BranchEq;
        back.branchLhs = Operand::makeReg(load.dst);
        back.branchRhs = Operand::makeConst(0);
        back.label = label;
        thread.instrs.push_back(back);
    }

    /** Forward branch skipping one instruction. */
    void appendForwardBranch(Thread &thread, int t)
    {
        Instruction load = makeLoad(t);
        thread.instrs.push_back(load);
        std::string label = freshLabel();

        Instruction br;
        br.op = draw_.oneIn(2) ? Opcode::BranchEq : Opcode::BranchNe;
        br.branchLhs = Operand::makeReg(load.dst);
        br.branchRhs = Operand::makeConst(draw_.upto(2));
        br.label = label;
        thread.instrs.push_back(br);

        thread.instrs.push_back(makeStraightLine(t));

        Instruction join;
        join.op = Opcode::Label;
        join.label = label;
        thread.instrs.push_back(join);
    }

    Thread makeThread(int t)
    {
        Thread thread;
        thread.name = "P" + std::to_string(t);
        thread.placement = makePlacement();

        int numInstrs = draw_.range(cfg_.minInstrs, cfg_.maxInstrs);
        int cfSlot = cfg_.controlFlow && draw_.oneIn(2)
                         ? draw_.upto(numInstrs + 1)
                         : -1;
        for (int i = 0; i < numInstrs; ++i) {
            if (i == cfSlot)
                appendControlFlow(thread, t);
            thread.instrs.push_back(makeStraightLine(t));
        }
        if (cfSlot == numInstrs)
            appendControlFlow(thread, t);
        return thread;
    }

    void appendControlFlow(Thread &thread, int t)
    {
        switch (draw_.upto(3)) {
          case 0:
            appendCountedLoop(thread, t);
            break;
          case 1:
            appendSpinloop(thread, t);
            break;
          default:
            appendForwardBranch(thread, t);
            break;
        }
    }

    void makeCondition(Program &p)
    {
        CondPtr cond;
        auto addLeaf = [&](CondPtr leaf) {
            cond = cond ? (draw_.oneIn(2)
                               ? Cond::mkAnd(std::move(cond),
                                             std::move(leaf))
                               : Cond::mkOr(std::move(cond),
                                            std::move(leaf)))
                        : std::move(leaf);
        };

        draw_.shuffle(readRegs_);
        size_t terms = std::min(readRegs_.size(),
                                static_cast<size_t>(draw_.range(1, 3)));
        for (size_t i = 0; i < terms; ++i) {
            addLeaf(Cond::mkCmp(
                draw_.oneIn(2),
                CondTerm::makeReg(readRegs_[i].first,
                                  readRegs_[i].second),
                CondTerm::makeConst(draw_.upto(4))));
        }
        if (cfg_.memConditions && draw_.oneIn(3)) {
            addLeaf(Cond::mkCmp(draw_.oneIn(2),
                                CondTerm::makeMem(randomVar().name),
                                CondTerm::makeConst(draw_.upto(4))));
        }
        if (!cond)
            cond = Cond::mkTrue();

        int kind = draw_.upto(6);
        p.assertKind = kind == 0   ? AssertKind::NotExists
                       : kind <= 2 ? AssertKind::Forall
                                   : AssertKind::Exists;
        p.assertion = std::move(cond);
    }
};

} // namespace

Program
randomProgram(std::mt19937_64 &rng, const FuzzConfig &config)
{
    return Generator(rng, config).generate();
}

Program
randomProgram(uint64_t seed, uint64_t index, const FuzzConfig &config)
{
    std::mt19937_64 rng(mixSeed(seed, index));
    Program p = randomProgram(rng, config);
    p.name = "fuzz-" + std::to_string(index);
    return p;
}

} // namespace gpumc::fuzz
