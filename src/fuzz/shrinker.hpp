/**
 * @file
 * Delta-debugging shrinker: greedily minimizes a program while a
 * caller-supplied failure predicate (usually "this oracle still
 * disagrees") keeps holding. Transformations: drop whole threads
 * (renumbering condition references), drop single instructions,
 * simplify the final-state condition, drop the filter, remove unused
 * variables and alias links, zero placements, and lower loop trip
 * counts. Every candidate is re-validated before the predicate runs,
 * so the result is always a well-formed program.
 */

#ifndef GPUMC_FUZZ_SHRINKER_HPP
#define GPUMC_FUZZ_SHRINKER_HPP

#include <functional>

#include "program/program.hpp"

namespace gpumc::fuzz {

/** Deep copy (Program is move-only because of its condition trees). */
prog::Program cloneProgram(const prog::Program &program);

/** Total instruction count, the shrinker's size metric. */
int programSize(const prog::Program &program);

/**
 * Returns true when the (validated) candidate still exhibits the
 * failure being minimized. Must be deterministic.
 */
using FailurePredicate = std::function<bool(const prog::Program &)>;

struct ShrinkOptions {
    /** Predicate evaluation budget; shrinking is best-effort within. */
    int maxAttempts = 400;
};

struct ShrinkOutcome {
    prog::Program program;
    int attempts = 0;  // predicate evaluations spent
    int accepted = 0;  // successful shrink steps
    int initialSize = 0;
    int finalSize = 0;
};

/**
 * Minimize @p program under @p stillFails. @p program itself must
 * satisfy the predicate; the result always does.
 */
ShrinkOutcome shrinkProgram(const prog::Program &program,
                            const FailurePredicate &stillFails,
                            ShrinkOptions options = {});

} // namespace gpumc::fuzz

#endif // GPUMC_FUZZ_SHRINKER_HPP
