/**
 * @file
 * Fuzz campaign driver: generates a deterministic stream of random
 * programs, fans every SMT-side oracle query out across worker threads
 * through core::BatchVerifier (the explicit-state oracle runs under
 * parallelFor), cross-checks the verdicts, and auto-shrinks any
 * disagreeing case into a minimal `.litmus` repro file.
 *
 * Determinism: for a fixed seed the verdict log is byte-identical for
 * any worker count — programs are generated sequentially from per-case
 * SplitMix64 seeds, batch results land in input order, and the log
 * carries no timing data.
 */

#ifndef GPUMC_FUZZ_CAMPAIGN_HPP
#define GPUMC_FUZZ_CAMPAIGN_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "cat/model.hpp"
#include "fuzz/oracle.hpp"
#include "fuzz/random_program.hpp"

namespace gpumc::fuzz {

struct CampaignOptions {
    FuzzConfig config;
    /** Model to check against; must outlive runCampaign(). */
    const cat::CatModel *model = nullptr;
    /** Display name of the model for the log / repro headers. */
    std::string modelName;

    uint64_t seed = 1;
    int runs = 50;
    /** Worker threads (0 = hardware concurrency). */
    unsigned jobs = 0;

    OracleOptions oracle;

    /** Auto-shrink disagreeing cases and (if outDir is set) write
     *  `.litmus` repro files. */
    bool shrink = true;
    int maxShrinks = 3;
    int shrinkAttempts = 400;
    std::string outDir;
};

struct CampaignCase {
    uint64_t caseSeed = 0;
    OracleReport report;
};

struct ShrinkRecord {
    size_t caseIndex = 0;
    OracleKind oracle = OracleKind::Z3VsBuiltin;
    int initialSize = 0;
    int finalSize = 0;
    /** Path of the written repro, empty when outDir was not set. */
    std::string reproPath;
    /** The repro text reparsed and re-checked: still disagreeing. */
    bool confirmed = false;
};

struct CampaignResult {
    std::vector<CampaignCase> cases;
    std::vector<ShrinkRecord> shrinks;

    int oracleChecks = 0;
    int agreements = 0;
    int skips = 0;
    int disagreements = 0;
    /** Skips caused by an engine error (subset of `skips`). */
    int errors = 0;

    /** Deterministic verdict log (identical across worker counts). */
    std::string log;

    bool clean() const { return disagreements == 0 && errors == 0; }
};

CampaignResult runCampaign(const CampaignOptions &options);

} // namespace gpumc::fuzz

#endif // GPUMC_FUZZ_CAMPAIGN_HPP
