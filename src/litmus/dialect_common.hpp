/**
 * @file
 * Helpers shared by the PTX and Vulkan litmus instruction dialects.
 */

#ifndef GPUMC_LITMUS_DIALECT_COMMON_HPP
#define GPUMC_LITMUS_DIALECT_COMMON_HPP

#include <optional>
#include <string>
#include <vector>

#include "program/instruction.hpp"

namespace gpumc::litmus {

/** A mnemonic split on '.', e.g. "ld.acquire.sys" -> {ld,acquire,sys}. */
struct ParsedMnemonic {
    std::vector<std::string> parts;
    SourceLoc loc;

    const std::string &head() const { return parts[0]; }
    bool hasMod(const std::string &mod) const;
};

/** Split "a, b, c" into trimmed operand strings. */
std::vector<std::string> splitOperands(std::string_view text);

/** Number -> constant operand; otherwise a register reference. */
prog::Operand parseOperand(const std::string &text, SourceLoc loc);

/** Map an order modifier name to a memory order, if it is one. */
std::optional<prog::MemOrder> orderFromName(const std::string &name);

/** Map a scope modifier name to a scope, if it is one. */
std::optional<prog::Scope> scopeFromName(const std::string &name);

/**
 * Split an instruction cell into mnemonic + operand text; returns the
 * operand part. E.g. "atom.acq.gpu.add r1, in, 1".
 */
ParsedMnemonic splitMnemonic(std::string_view cell, SourceLoc loc,
                             std::string &operandsOut);

} // namespace gpumc::litmus

#endif // GPUMC_LITMUS_DIALECT_COMMON_HPP
