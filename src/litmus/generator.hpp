/**
 * @file
 * Programmatic litmus-test generation for the model-validation table
 * (Table 5) and the scalability study (Fig. 15).
 *
 * The pattern suite mirrors how the paper's corpus was assembled:
 * classic weak-consistency shapes (MP, SB, LB, IRIW, CoRR, CoWW, WRC,
 * 2+2W, S) crossed with synchronization strength, instruction scope and
 * thread placement, plus proxy variants for PTX v7.5 and storage-class
 * variants for Vulkan. The progress suite reconstructs GPU-Harbor-style
 * spinloop tests for the liveness rows.
 */

#ifndef GPUMC_LITMUS_GENERATOR_HPP
#define GPUMC_LITMUS_GENERATOR_HPP

#include <string>
#include <vector>

#include "program/program.hpp"

namespace gpumc::litmus {

struct GeneratedTest {
    std::string name;
    prog::Program program;
    /** True for the spinloop/forward-progress (liveness) tests. */
    bool isProgress = false;
    /** True when the test exercises proxies / the constant proxy. */
    bool usesProxies = false;
};

/** The pattern suite for one architecture. */
std::vector<GeneratedTest> generatePatternSuite(prog::Arch arch,
                                                bool withProxies);

/** Spinloop forward-progress tests (checked for liveness). */
std::vector<GeneratedTest> generateProgressSuite(prog::Arch arch);

/** Scalable pattern families for the Fig. 15 sweeps. */
enum class ScaledPattern { MP, SB, LB, IRIW };

const char *scaledPatternName(ScaledPattern pattern);

/**
 * Generate an N-thread instance of a pattern (N >= 2; IRIW requires
 * even N >= 4). All tests are straight-line so the explicit baseline
 * can run them too.
 */
prog::Program generateScaled(ScaledPattern pattern, prog::Arch arch,
                             int threads);

} // namespace gpumc::litmus

#endif // GPUMC_LITMUS_GENERATOR_HPP
