/**
 * @file
 * Litmus-text emitter: serializes any prog::Program back into the
 * column litmus syntax accepted by parseLitmus(), for both the PTX and
 * Vulkan dialects. The emitter is the inverse of the parsers and is
 * exercised by round-trip tests (emit -> reparse -> same verdict); the
 * fuzzing subsystem uses it to write shrunk `.litmus` repro files.
 */

#ifndef GPUMC_LITMUS_LITMUS_EMITTER_HPP
#define GPUMC_LITMUS_LITMUS_EMITTER_HPP

#include <string>

#include "program/program.hpp"

namespace gpumc::litmus {

/**
 * Serialize one instruction as a dialect cell (e.g. "ld.acquire.sys
 * r0, x"). Labels are rendered as "name:". @throws FatalError for
 * instructions the dialect cannot express.
 */
std::string emitInstruction(const prog::Instruction &ins, prog::Arch arch);

/**
 * Serialize a whole program: `@config` directives for its meta entries,
 * header, prelude (every variable, in declaration order, so location
 * ids survive the round trip), the thread columns and the
 * filter/exists/forall lines. The result reparses with parseLitmus()
 * to an equivalent program.
 */
std::string emitLitmus(const prog::Program &program);

} // namespace gpumc::litmus

#endif // GPUMC_LITMUS_LITMUS_EMITTER_HPP
