#include "litmus/litmus_emitter.hpp"

#include <algorithm>
#include <sstream>

#include "support/diagnostics.hpp"

namespace gpumc::litmus {

using prog::Arch;
using prog::Instruction;
using prog::MemOrder;
using prog::Opcode;
using prog::Program;
using prog::Proxy;
using prog::ProxyFenceKind;
using prog::RmwKind;
using prog::Scope;
using prog::StorageClass;

namespace {

/** Modifier spelling of a memory order, per dialect. */
const char *
orderMod(MemOrder order, Arch arch)
{
    if (arch == Arch::Ptx) {
        switch (order) {
          case MemOrder::Plain: return "weak";
          case MemOrder::Rlx: return "relaxed";
          case MemOrder::Acq: return "acquire";
          case MemOrder::Rel: return "release";
          case MemOrder::AcqRel: return "acq_rel";
          case MemOrder::Sc: return "sc";
        }
    }
    switch (order) {
      case MemOrder::Plain: return "weak";
      case MemOrder::Rlx: return "rlx";
      case MemOrder::Acq: return "acq";
      case MemOrder::Rel: return "rel";
      case MemOrder::AcqRel: return "acq_rel";
      case MemOrder::Sc:
        fatal("litmus emitter: Vulkan has no SC memory order");
    }
    return "?";
}

/** PTX load/store mnemonic for a proxy. */
const char *
ptxAccessHead(Proxy proxy, bool isLoad)
{
    switch (proxy) {
      case Proxy::Generic: return isLoad ? "ld" : "st";
      case Proxy::Surface: return isLoad ? "suld" : "sust";
      case Proxy::Texture: return isLoad ? "tld" : "tst";
      case Proxy::Constant: return isLoad ? "cld" : "cst";
    }
    return "?";
}

const char *
rmwKindMod(RmwKind kind)
{
    switch (kind) {
      case RmwKind::Add: return "add";
      case RmwKind::Exchange: return "exch";
      case RmwKind::Cas: return "cas";
    }
    return "?";
}

/** Append the Vulkan-only attribute modifiers shared by all ops. */
void
appendVulkanAttrs(std::string &m, const Instruction &ins)
{
    if (ins.storageClass) {
        m += ins.storageClass == StorageClass::Sc1 ? ".sc1" : ".sc0";
    }
    if (ins.avFlag)
        m += ".av";
    if (ins.visFlag)
        m += ".vis";
    if (ins.semSc0)
        m += ".semsc0";
    if (ins.semSc1)
        m += ".semsc1";
    if (ins.semAv)
        m += ".semav";
    if (ins.semVis)
        m += ".semvis";
}

std::string
emitAccess(const Instruction &ins, Arch arch)
{
    bool isLoad = ins.op == Opcode::Load;
    std::string m;
    if (arch == Arch::Ptx) {
        // The PTX dialect derives `atomic` from the order modifier:
        // any explicit order other than .weak is a strong access.
        if (ins.atomic != (ins.order != MemOrder::Plain)) {
            fatal("litmus emitter: PTX cannot express a ",
                  ins.atomic ? "strong .weak" : "weak ordered", " access");
        }
        m = ptxAccessHead(ins.proxy, isLoad);
        m += ".";
        m += orderMod(ins.order, arch);
        if (ins.scope)
            m += std::string(".") + prog::scopeName(*ins.scope);
    } else {
        if (!ins.atomic && ins.order != MemOrder::Plain) {
            fatal("litmus emitter: non-atomic Vulkan access cannot ",
                  "carry a memory order");
        }
        m = isLoad ? "ld" : "st";
        if (ins.atomic)
            m += ".atom";
        if (ins.order != MemOrder::Plain)
            m += std::string(".") + orderMod(ins.order, arch);
        if (ins.scope)
            m += std::string(".") + prog::scopeName(*ins.scope);
        appendVulkanAttrs(m, ins);
    }
    if (isLoad)
        return m + " " + ins.dst + ", " + ins.location;
    return m + " " + ins.location + ", " + ins.src.str();
}

std::string
emitRmw(const Instruction &ins, Arch arch)
{
    if (ins.order == MemOrder::Plain)
        fatal("litmus emitter: RMW must carry a memory order");
    std::string m = "atom";
    m += std::string(".") + orderMod(ins.order, arch);
    if (ins.scope)
        m += std::string(".") + prog::scopeName(*ins.scope);
    if (arch == Arch::Vulkan)
        appendVulkanAttrs(m, ins);
    m += std::string(".") + rmwKindMod(ins.rmwKind);
    m += " " + ins.dst + ", " + ins.location + ", " + ins.src.str();
    if (ins.rmwKind == RmwKind::Cas)
        m += ", " + ins.src2.str();
    return m;
}

std::string
emitFence(const Instruction &ins, Arch arch)
{
    std::string m = "fence";
    m += std::string(".") + orderMod(ins.order, arch);
    if (ins.scope)
        m += std::string(".") + prog::scopeName(*ins.scope);
    if (arch == Arch::Vulkan)
        appendVulkanAttrs(m, ins);
    return m;
}

std::string
emitProxyFence(const Instruction &ins)
{
    std::string m = "fence.proxy.";
    switch (ins.proxyFence) {
      case ProxyFenceKind::Alias: m += "alias"; break;
      case ProxyFenceKind::Texture: m += "texture"; break;
      case ProxyFenceKind::Surface: m += "surface"; break;
      case ProxyFenceKind::Constant: m += "constant"; break;
    }
    if (ins.scope)
        m += std::string(".") + prog::scopeName(*ins.scope);
    return m;
}

std::string
emitBarrier(const Instruction &ins, Arch arch)
{
    std::string m;
    if (arch == Arch::Ptx) {
        m = "bar";
        if (ins.scope)
            m += std::string(".") + prog::scopeName(*ins.scope);
        m += ".sync";
    } else {
        m = "cbar";
        if (ins.scope)
            m += std::string(".") + prog::scopeName(*ins.scope);
    }
    return m + " " + ins.barrierId.str();
}

} // namespace

std::string
emitInstruction(const Instruction &ins, Arch arch)
{
    switch (ins.op) {
      case Opcode::Load:
      case Opcode::Store:
        return emitAccess(ins, arch);
      case Opcode::Rmw:
        return emitRmw(ins, arch);
      case Opcode::Fence:
        return emitFence(ins, arch);
      case Opcode::ProxyFence:
        if (arch != Arch::Ptx)
            fatal("litmus emitter: proxy fences are PTX-only");
        return emitProxyFence(ins);
      case Opcode::Barrier:
        return emitBarrier(ins, arch);
      case Opcode::AvDevice:
        return "avdevice";
      case Opcode::VisDevice:
        return "visdevice";
      case Opcode::Label:
        return ins.label + ":";
      case Opcode::Goto:
        return "goto " + ins.label;
      case Opcode::BranchEq:
        return "beq " + ins.branchLhs.str() + ", " +
               ins.branchRhs.str() + ", " + ins.label;
      case Opcode::BranchNe:
        return "bne " + ins.branchLhs.str() + ", " +
               ins.branchRhs.str() + ", " + ins.label;
      case Opcode::Mov:
        return "mov " + ins.dst + ", " + ins.src.str();
      case Opcode::AddReg:
        return "add " + ins.dst + ", " + ins.branchLhs.str() + ", " +
               ins.src.str();
    }
    fatal("litmus emitter: unknown opcode");
}

std::string
emitLitmus(const Program &program)
{
    std::ostringstream out;

    for (const auto &[key, value] : program.meta) {
        // Directive words are whitespace/'='-delimited; pairs that
        // cannot survive the comment scanner are not emitted.
        if (key.empty() || value.empty() ||
            key.find_first_of(" \t=") != std::string::npos ||
            value.find_first_of(" \t=") != std::string::npos) {
            continue;
        }
        out << "// @config " << key << "=" << value << "\n";
    }

    out << (program.arch == Arch::Ptx ? "PTX" : "VULKAN");
    if (!program.name.empty())
        out << " \"" << program.name << "\"";
    out << "\n";

    // Every variable is declared explicitly, in declaration order, so
    // virtual/physical location ids are identical after a reparse.
    if (!program.vars.empty()) {
        out << "{";
        for (const prog::VarDecl &var : program.vars) {
            out << " " << var.name << " = " << var.init;
            if (!var.aliasOf.empty())
                out << " -> " << var.aliasOf;
            if (var.storageClass == StorageClass::Sc1)
                out << " @ sc1";
            out << ";";
        }
        out << " }\n";
    }

    // Header row and instruction rows, one column per thread.
    size_t rows = 0;
    std::vector<std::vector<std::string>> cells(program.threads.size());
    std::vector<size_t> width(program.threads.size());
    for (size_t t = 0; t < program.threads.size(); ++t) {
        const prog::Thread &thread = program.threads[t];
        std::string header =
            thread.name.empty() ? "P" + std::to_string(t) : thread.name;
        header += "@";
        if (program.arch == Arch::Ptx) {
            header += "cta " + std::to_string(thread.placement.cta) +
                      ",gpu " + std::to_string(thread.placement.gpu);
        } else {
            header += "sg " + std::to_string(thread.placement.sg) +
                      ",wg " + std::to_string(thread.placement.wg) +
                      ",qf " + std::to_string(thread.placement.qf);
            if (thread.placement.ssw)
                header += ",ssw";
        }
        cells[t].push_back(std::move(header));
        for (const Instruction &ins : thread.instrs)
            cells[t].push_back(emitInstruction(ins, program.arch));
        rows = std::max(rows, cells[t].size());
        for (const std::string &cell : cells[t])
            width[t] = std::max(width[t], cell.size());
    }
    for (size_t row = 0; row < rows; ++row) {
        for (size_t t = 0; t < cells.size(); ++t) {
            std::string cell =
                row < cells[t].size() ? cells[t][row] : std::string();
            cell.resize(width[t], ' ');
            out << cell << (t + 1 < cells.size() ? " | " : " ;\n");
        }
    }

    if (program.filter)
        out << "filter (" << program.filter->str() << ")\n";
    if (program.assertion) {
        out << prog::assertKindName(program.assertKind) << " ("
            << program.assertion->str() << ")\n";
    } else if (program.assertKind != prog::AssertKind::Exists) {
        out << prog::assertKindName(program.assertKind) << " (true)\n";
    }
    return out.str();
}

} // namespace gpumc::litmus
