#include "litmus/generator.hpp"

#include "litmus/litmus_parser.hpp"
#include "support/diagnostics.hpp"

namespace gpumc::litmus {

using prog::Arch;
using prog::Cond;
using prog::CondPtr;
using prog::CondTerm;
using prog::Instruction;
using prog::MemOrder;
using prog::Opcode;
using prog::Operand;
using prog::Program;
using prog::Scope;
using prog::StorageClass;
using prog::Thread;

namespace {

/** Synchronization strength applied to the communicating accesses. */
enum class Sync { Plain, Rlx, RelAcq, RelOnly, AcqOnly, Fence, FenceSc };

const char *
syncName(Sync sync)
{
    switch (sync) {
      case Sync::Plain: return "plain";
      case Sync::Rlx: return "rlx";
      case Sync::RelAcq: return "relacq";
      case Sync::RelOnly: return "relonly";
      case Sync::AcqOnly: return "acqonly";
      case Sync::Fence: return "fence";
      case Sync::FenceSc: return "fencesc";
    }
    return "?";
}

struct GenConfig {
    Arch arch = Arch::Ptx;
    Sync sync = Sync::Plain;
    Scope scope = Scope::Sys;
    bool split = true; // threads in different inner scope units
    StorageClass storage = StorageClass::Sc0;
};

class Builder {
  public:
    explicit Builder(const GenConfig &config) : cfg_(config)
    {
        program_.arch = cfg_.arch;
    }

    int newThread()
    {
        Thread thread;
        int idx = static_cast<int>(program_.threads.size());
        thread.name = "P" + std::to_string(idx);
        if (cfg_.arch == Arch::Ptx) {
            thread.placement.cta = cfg_.split ? idx : 0;
        } else {
            thread.placement.wg = cfg_.split ? idx : 0;
        }
        program_.threads.push_back(std::move(thread));
        return idx;
    }

    Instruction &emit(int thread, Instruction ins)
    {
        program_.threads[thread].instrs.push_back(std::move(ins));
        return program_.threads[thread].instrs.back();
    }

    bool atomicFor(MemOrder order) const
    {
        if (cfg_.arch == Arch::Vulkan)
            return order != MemOrder::Plain || cfg_.sync != Sync::Plain;
        return order != MemOrder::Plain;
    }

    void write(int thread, const std::string &var, int64_t value,
               MemOrder order)
    {
        Instruction ins;
        ins.op = Opcode::Store;
        ins.location = var;
        ins.src = Operand::makeConst(value);
        ins.order = order;
        ins.atomic = atomicFor(order);
        ins.scope = cfg_.scope;
        ins.storageClass = cfg_.storage;
        emit(thread, std::move(ins));
    }

    void read(int thread, const std::string &reg, const std::string &var,
              MemOrder order)
    {
        Instruction ins;
        ins.op = Opcode::Load;
        ins.dst = reg;
        ins.location = var;
        ins.order = order;
        ins.atomic = atomicFor(order);
        ins.scope = cfg_.scope;
        ins.storageClass = cfg_.storage;
        emit(thread, std::move(ins));
    }

    void fence(int thread, MemOrder order)
    {
        Instruction ins;
        ins.op = Opcode::Fence;
        ins.atomic = true;
        ins.order = order;
        ins.scope = cfg_.scope;
        if (cfg_.arch == Arch::Vulkan) {
            ins.semSc0 = cfg_.storage == StorageClass::Sc0;
            ins.semSc1 = cfg_.storage == StorageClass::Sc1;
        }
        emit(thread, std::move(ins));
    }

    // Orders of the publishing write / observing read under cfg_.sync.
    MemOrder writeOrder() const
    {
        switch (cfg_.sync) {
          case Sync::Plain: return MemOrder::Plain;
          case Sync::Rlx:
          case Sync::AcqOnly:
          case Sync::Fence:
          case Sync::FenceSc: return MemOrder::Rlx;
          case Sync::RelAcq:
          case Sync::RelOnly: return MemOrder::Rel;
        }
        return MemOrder::Plain;
    }
    MemOrder readOrder() const
    {
        switch (cfg_.sync) {
          case Sync::Plain: return MemOrder::Plain;
          case Sync::Rlx:
          case Sync::RelOnly:
          case Sync::Fence:
          case Sync::FenceSc: return MemOrder::Rlx;
          case Sync::RelAcq:
          case Sync::AcqOnly: return MemOrder::Acq;
        }
        return MemOrder::Plain;
    }
    /** Fence placed between the two accesses for fence-based syncs. */
    void maybeFence(int thread)
    {
        if (cfg_.sync == Sync::Fence)
            fence(thread, MemOrder::AcqRel);
        else if (cfg_.sync == Sync::FenceSc)
            fence(thread, MemOrder::Sc);
    }

    Program finish(const std::string &name, prog::AssertKind kind,
                   CondPtr cond)
    {
        program_.name = name;
        program_.assertKind = kind;
        program_.assertion = std::move(cond);
        for (const Thread &t : program_.threads) {
            for (const Instruction &ins : t.instrs) {
                if (ins.isMemoryAccess() &&
                    program_.varIndex(ins.location) < 0) {
                    prog::VarDecl decl;
                    decl.name = ins.location;
                    decl.storageClass = cfg_.storage;
                    program_.vars.push_back(std::move(decl));
                }
            }
        }
        program_.validate();
        return std::move(program_);
    }

    const GenConfig &cfg() const { return cfg_; }

  private:
    GenConfig cfg_;
    Program program_;
};

CondPtr
regEq(int thread, const std::string &reg, int64_t value)
{
    return Cond::mkCmp(true, CondTerm::makeReg(thread, reg),
                       CondTerm::makeConst(value));
}

CondPtr
conj(CondPtr a, CondPtr b)
{
    return Cond::mkAnd(std::move(a), std::move(b));
}

// --- two/three-thread patterns -------------------------------------------

Program
mp(const GenConfig &cfg, const std::string &name)
{
    Builder b(cfg);
    int t0 = b.newThread(), t1 = b.newThread();
    b.write(t0, "x", 1, MemOrder::Plain);
    b.maybeFence(t0);
    b.write(t0, "f", 1, b.writeOrder());
    b.read(t1, "r0", "f", b.readOrder());
    b.maybeFence(t1);
    b.read(t1, "r1", "x", MemOrder::Plain);
    return b.finish(name, prog::AssertKind::Exists,
                    conj(regEq(1, "r0", 1), regEq(1, "r1", 0)));
}

Program
sb(const GenConfig &cfg, const std::string &name)
{
    Builder b(cfg);
    int t0 = b.newThread(), t1 = b.newThread();
    b.write(t0, "x", 1, b.writeOrder());
    b.maybeFence(t0);
    b.read(t0, "r0", "y", b.readOrder());
    b.write(t1, "y", 1, b.writeOrder());
    b.maybeFence(t1);
    b.read(t1, "r1", "x", b.readOrder());
    return b.finish(name, prog::AssertKind::Exists,
                    conj(regEq(0, "r0", 0), regEq(1, "r1", 0)));
}

Program
lb(const GenConfig &cfg, const std::string &name)
{
    Builder b(cfg);
    int t0 = b.newThread(), t1 = b.newThread();
    b.read(t0, "r0", "x", b.readOrder());
    b.maybeFence(t0);
    b.write(t0, "y", 1, b.writeOrder());
    b.read(t1, "r1", "y", b.readOrder());
    b.maybeFence(t1);
    b.write(t1, "x", 1, b.writeOrder());
    return b.finish(name, prog::AssertKind::Exists,
                    conj(regEq(0, "r0", 1), regEq(1, "r1", 1)));
}

Program
corr(const GenConfig &cfg, const std::string &name)
{
    Builder b(cfg);
    int t0 = b.newThread(), t1 = b.newThread();
    b.write(t0, "x", 1, b.writeOrder());
    b.read(t1, "r0", "x", b.readOrder());
    b.read(t1, "r1", "x", b.readOrder());
    return b.finish(name, prog::AssertKind::Exists,
                    conj(regEq(1, "r0", 1), regEq(1, "r1", 0)));
}

Program
coww(const GenConfig &cfg, const std::string &name)
{
    Builder b(cfg);
    int t0 = b.newThread(), t1 = b.newThread();
    b.write(t0, "x", 1, b.writeOrder());
    b.write(t0, "x", 2, b.writeOrder());
    b.read(t1, "r0", "x", b.readOrder());
    b.read(t1, "r1", "x", b.readOrder());
    return b.finish(name, prog::AssertKind::Exists,
                    conj(regEq(1, "r0", 2), regEq(1, "r1", 1)));
}

Program
wrc(const GenConfig &cfg, const std::string &name)
{
    Builder b(cfg);
    int t0 = b.newThread(), t1 = b.newThread(), t2 = b.newThread();
    b.write(t0, "x", 1, b.writeOrder());
    b.read(t1, "r0", "x", b.readOrder());
    b.maybeFence(t1);
    b.write(t1, "y", 1, b.writeOrder());
    b.read(t2, "r1", "y", b.readOrder());
    b.maybeFence(t2);
    b.read(t2, "r2", "x", MemOrder::Plain);
    return b.finish(name, prog::AssertKind::Exists,
                    conj(regEq(1, "r0", 1),
                         conj(regEq(2, "r1", 1), regEq(2, "r2", 0))));
}

Program
w2plus2(const GenConfig &cfg, const std::string &name)
{
    Builder b(cfg);
    int t0 = b.newThread(), t1 = b.newThread();
    b.write(t0, "x", 1, b.writeOrder());
    b.maybeFence(t0);
    b.write(t0, "y", 2, b.writeOrder());
    b.write(t1, "y", 1, b.writeOrder());
    b.maybeFence(t1);
    b.write(t1, "x", 2, b.writeOrder());
    // Observer threads avoid memory-valued conditions.
    int t2 = b.newThread();
    b.read(t2, "r0", "x", b.readOrder());
    b.read(t2, "r1", "y", b.readOrder());
    return b.finish(name, prog::AssertKind::Exists,
                    conj(regEq(2, "r0", 1), regEq(2, "r1", 1)));
}

Program
iriw(const GenConfig &cfg, const std::string &name)
{
    Builder b(cfg);
    int t0 = b.newThread(), t1 = b.newThread();
    int t2 = b.newThread(), t3 = b.newThread();
    b.write(t0, "x", 1, b.writeOrder());
    b.write(t1, "y", 1, b.writeOrder());
    b.read(t2, "r0", "x", b.readOrder());
    b.maybeFence(t2);
    b.read(t2, "r1", "y", b.readOrder());
    b.read(t3, "r2", "y", b.readOrder());
    b.maybeFence(t3);
    b.read(t3, "r3", "x", b.readOrder());
    return b.finish(
        name, prog::AssertKind::Exists,
        conj(conj(regEq(2, "r0", 1), regEq(2, "r1", 0)),
             conj(regEq(3, "r2", 1), regEq(3, "r3", 0))));
}

Program
sPattern(const GenConfig &cfg, const std::string &name)
{
    Builder b(cfg);
    int t0 = b.newThread(), t1 = b.newThread(), t2 = b.newThread();
    b.write(t0, "x", 2, MemOrder::Plain);
    b.maybeFence(t0);
    b.write(t0, "y", 1, b.writeOrder());
    b.read(t1, "r0", "y", b.readOrder());
    b.maybeFence(t1);
    b.write(t1, "x", 1, MemOrder::Plain);
    b.read(t2, "r1", "x", b.readOrder());
    b.read(t2, "r2", "x", b.readOrder());
    return b.finish(name, prog::AssertKind::Exists,
                    conj(regEq(1, "r0", 1),
                         conj(regEq(2, "r1", 1), regEq(2, "r2", 2))));
}

// --- PTX proxy variants ----------------------------------------------------

Program
proxyMp(Arch arch, bool surfaceFence, bool aliasFence, bool textureFence,
        const std::string &name)
{
    GPUMC_ASSERT(arch == Arch::Ptx);
    const char *prelude = "{ x = 0; s -> x; y -> x; t -> y; flag = 0; }";
    std::string src = "PTX \"" + name + "\"\n" + prelude + "\n";
    src += "P0@cta 0,gpu 0 | P1@cta 0,gpu 0 ;\n";
    src += "sust.weak s, 1 | ld.acquire.gpu r0, flag ;\n";
    if (surfaceFence)
        src += "fence.proxy.surface | ;\n";
    if (aliasFence)
        src += " | fence.proxy.alias ;\n";
    if (textureFence)
        src += " | fence.proxy.texture ;\n";
    src += "st.release.gpu flag, 1 | tld.weak r1, t ;\n";
    src += "exists (P1:r0 == 1 /\\ P1:r1 == 0)\n";
    return parseLitmus(src);
}

Program
constantProxyTest(const std::string &name)
{
    // Constant memory updated by a generic store: a constant-proxy
    // fence is needed before the constant load observes it.
    std::string src = "PTX \"" + name + "\"\n";
    src += "{ c = 0; k -> c; }\n";
    src += "P0@cta 0,gpu 0 | P1@cta 0,gpu 0 ;\n";
    src += "st.weak c, 1   | ld.acquire.gpu r0, flag ;\n";
    src += "fence.proxy.constant | fence.proxy.constant ;\n";
    src += "st.release.gpu flag, 1 | cld.weak r1, k ;\n";
    src += "exists (P1:r0 == 1 /\\ P1:r1 == 0)\n";
    return parseLitmus(src);
}

// --- progress (spinloop) tests ---------------------------------------------

Program
spinTest(const GenConfig &cfg, const std::string &name, bool flagSet,
         int waiters)
{
    Builder b(cfg);
    int setter = b.newThread();
    if (flagSet) {
        b.write(setter, "flag", 1, b.writeOrder());
    } else {
        b.write(setter, "other", 1, b.writeOrder());
    }
    for (int w = 0; w < waiters; ++w) {
        int t = b.newThread();
        Instruction lbl;
        lbl.op = Opcode::Label;
        lbl.label = "SPIN";
        b.emit(t, std::move(lbl));
        b.read(t, "r0", "flag", b.readOrder());
        Instruction br;
        br.op = Opcode::BranchEq;
        br.branchLhs = Operand::makeReg("r0");
        br.branchRhs = Operand::makeConst(0);
        br.label = "SPIN";
        b.emit(t, std::move(br));
    }
    return b.finish(name, prog::AssertKind::Exists,
                    regEq(1, "r0", flagSet ? 1 : 0));
}

Program
handshakeChain(const GenConfig &cfg, const std::string &name, int length,
               bool complete)
{
    // Thread i waits for flag i, then sets flag i+1. Thread 0 starts
    // the chain (or not, if !complete -> deadlock).
    Builder b(cfg);
    for (int i = 0; i < length; ++i) {
        int t = b.newThread();
        if (i == 0) {
            if (complete)
                b.write(t, "f1", 1, b.writeOrder());
            continue;
        }
        Instruction lbl;
        lbl.op = Opcode::Label;
        lbl.label = "SPIN";
        b.emit(t, std::move(lbl));
        b.read(t, "r0", "f" + std::to_string(i), b.readOrder());
        Instruction br;
        br.op = Opcode::BranchEq;
        br.branchLhs = Operand::makeReg("r0");
        br.branchRhs = Operand::makeConst(0);
        br.label = "SPIN";
        b.emit(t, std::move(br));
        if (i + 1 < length)
            b.write(t, "f" + std::to_string(i + 1), 1, b.writeOrder());
    }
    return b.finish(name, prog::AssertKind::Exists, regEq(1, "r0", 1));
}

using PatternFn = Program (*)(const GenConfig &, const std::string &);

const std::pair<const char *, PatternFn> kPatterns[] = {
    {"mp", mp},     {"sb", sb},         {"lb", lb},
    {"corr", corr}, {"coww", coww},     {"wrc", wrc},
    {"2+2w", w2plus2}, {"iriw", iriw},  {"s", sPattern},
};

} // namespace

std::vector<GeneratedTest>
generatePatternSuite(Arch arch, bool withProxies)
{
    std::vector<GeneratedTest> out;
    std::vector<Sync> syncs = {Sync::Plain, Sync::Rlx, Sync::RelAcq,
                               Sync::RelOnly, Sync::AcqOnly, Sync::Fence};
    if (arch == Arch::Ptx)
        syncs.push_back(Sync::FenceSc);
    std::vector<Scope> scopes =
        arch == Arch::Ptx ? std::vector<Scope>{Scope::Cta, Scope::Gpu,
                                               Scope::Sys}
                          : std::vector<Scope>{Scope::Wg, Scope::Qf,
                                               Scope::Dv};

    for (const auto &[patternName, fn] : kPatterns) {
        for (Sync sync : syncs) {
            for (bool split : {false, true}) {
                // Sweep scopes only for the headline patterns to keep
                // the suite size comparable to the paper's.
                bool sweepScopes = std::string(patternName) == "mp" ||
                                   std::string(patternName) == "sb";
                std::vector<Scope> localScopes =
                    sweepScopes ? scopes
                                : std::vector<Scope>{scopes.back()};
                for (Scope scope : localScopes) {
                    GenConfig cfg;
                    cfg.arch = arch;
                    cfg.sync = sync;
                    cfg.scope = scope;
                    cfg.split = split;
                    std::string name =
                        std::string(patternName) + "+" + syncName(sync) +
                        "+" + prog::scopeName(scope) +
                        (split ? "+split" : "+same");
                    GeneratedTest test;
                    test.name = name;
                    test.program = fn(cfg, name);
                    out.push_back(std::move(test));
                }
            }
        }
    }

    if (arch == Arch::Vulkan) {
        // Storage-class variants of MP: payload in sc1, fences with
        // matching / mismatching semantics.
        for (StorageClass storage :
             {StorageClass::Sc0, StorageClass::Sc1}) {
            for (Sync sync : {Sync::RelAcq, Sync::Fence}) {
                GenConfig cfg;
                cfg.arch = arch;
                cfg.sync = sync;
                cfg.scope = Scope::Dv;
                cfg.storage = storage;
                std::string name =
                    std::string("mp+") + syncName(sync) +
                    (storage == StorageClass::Sc1 ? "+sc1" : "+sc0");
                GeneratedTest test;
                test.name = name;
                test.program = mp(cfg, name);
                out.push_back(std::move(test));
            }
        }
    }

    if (withProxies && arch == Arch::Ptx) {
        struct ProxyVariant {
            const char *name;
            bool surface, alias, texture;
        } variants[] = {
            {"proxy-mp-all-fences", true, true, true},
            {"proxy-mp-no-surface", false, true, true},
            {"proxy-mp-no-alias", true, false, true},
            {"proxy-mp-no-texture", true, true, false},
            {"proxy-mp-none", false, false, false},
        };
        for (const ProxyVariant &v : variants) {
            GeneratedTest test;
            test.name = v.name;
            test.program =
                proxyMp(arch, v.surface, v.alias, v.texture, v.name);
            test.usesProxies = true;
            out.push_back(std::move(test));
        }
        GeneratedTest constant;
        constant.name = "proxy-constant-fence";
        constant.program = constantProxyTest(constant.name);
        constant.usesProxies = true;
        out.push_back(std::move(constant));
    }
    return out;
}

std::vector<GeneratedTest>
generateProgressSuite(Arch arch)
{
    std::vector<GeneratedTest> out;
    std::vector<Sync> syncs = {Sync::RelAcq, Sync::Rlx};
    std::vector<Scope> scopes =
        arch == Arch::Ptx
            ? std::vector<Scope>{Scope::Cta, Scope::Gpu, Scope::Sys}
            : std::vector<Scope>{Scope::Wg, Scope::Qf, Scope::Dv};
    for (Sync sync : syncs) {
        for (Scope scope : scopes) {
            for (bool split : {false, true}) {
                for (bool flagSet : {true, false}) {
                    for (int waiters : {1, 2}) {
                        GenConfig cfg;
                        cfg.arch = arch;
                        cfg.sync = sync;
                        cfg.scope = scope;
                        cfg.split = split;
                        std::string name =
                            std::string("spin+") + syncName(sync) + "+" +
                            prog::scopeName(scope) +
                            (split ? "+split" : "+same") +
                            (flagSet ? "+set" : "+unset") + "+w" +
                            std::to_string(waiters);
                        GeneratedTest test;
                        test.name = name;
                        test.program =
                            spinTest(cfg, name, flagSet, waiters);
                        test.isProgress = true;
                        out.push_back(std::move(test));
                    }
                }
            }
        }
    }
    // Handshake chains (complete and deadlocking).
    for (int length : {2, 3}) {
        for (bool complete : {true, false}) {
            GenConfig cfg;
            cfg.arch = arch;
            cfg.sync = Sync::RelAcq;
            cfg.scope = scopes.back();
            std::string name = "handshake+" + std::to_string(length) +
                               (complete ? "+complete" : "+deadlock");
            GeneratedTest test;
            test.name = name;
            test.program = handshakeChain(cfg, name, length, complete);
            test.isProgress = true;
            out.push_back(std::move(test));
        }
    }
    return out;
}

const char *
scaledPatternName(ScaledPattern pattern)
{
    switch (pattern) {
      case ScaledPattern::MP: return "MP";
      case ScaledPattern::SB: return "SB";
      case ScaledPattern::LB: return "LB";
      case ScaledPattern::IRIW: return "IRIW";
    }
    return "?";
}

Program
generateScaled(ScaledPattern pattern, Arch arch, int threads)
{
    GPUMC_ASSERT(threads >= 2, "need at least two threads");
    GenConfig cfg;
    cfg.arch = arch;
    cfg.sync = Sync::Plain;
    cfg.scope = arch == Arch::Ptx ? Scope::Sys : Scope::Dv;
    cfg.split = true;
    Builder b(cfg);
    CondPtr cond;
    auto addConj = [&](CondPtr c) {
        cond = cond ? conj(std::move(cond), std::move(c)) : std::move(c);
    };

    switch (pattern) {
      case ScaledPattern::MP: {
        // A chain of message passers: t0 writes data and flag 1;
        // ti forwards flag i -> flag i+1; the last thread checks data.
        for (int i = 0; i < threads; ++i) {
            int t = b.newThread();
            if (i == 0) {
                b.write(t, "x", 1, MemOrder::Plain);
                b.write(t, "f1", 1, MemOrder::Plain);
            } else if (i < threads - 1) {
                b.read(t, "r0", "f" + std::to_string(i),
                       MemOrder::Plain);
                b.write(t, "f" + std::to_string(i + 1), 1,
                        MemOrder::Plain);
                addConj(regEq(i, "r0", 1));
            } else {
                b.read(t, "r0", "f" + std::to_string(i),
                       MemOrder::Plain);
                b.read(t, "r1", "x", MemOrder::Plain);
                addConj(regEq(i, "r0", 1));
                addConj(regEq(i, "r1", 0));
            }
        }
        break;
      }
      case ScaledPattern::SB: {
        for (int i = 0; i < threads; ++i) {
            int t = b.newThread();
            b.write(t, "x" + std::to_string(i), 1, MemOrder::Plain);
            b.read(t, "r0",
                   "x" + std::to_string((i + 1) % threads),
                   MemOrder::Plain);
            addConj(regEq(i, "r0", 0));
        }
        break;
      }
      case ScaledPattern::LB: {
        for (int i = 0; i < threads; ++i) {
            int t = b.newThread();
            b.read(t, "r0", "x" + std::to_string(i), MemOrder::Plain);
            b.write(t, "x" + std::to_string((i + 1) % threads), 1,
                    MemOrder::Plain);
            addConj(regEq(i, "r0", 1));
        }
        break;
      }
      case ScaledPattern::IRIW: {
        GPUMC_ASSERT(threads >= 4 && threads % 2 == 0,
                     "IRIW needs an even thread count >= 4");
        int writers = threads / 2;
        for (int i = 0; i < writers; ++i) {
            int t = b.newThread();
            b.write(t, "x" + std::to_string(i), 1, MemOrder::Plain);
        }
        for (int i = 0; i < writers; ++i) {
            int t = b.newThread();
            b.read(t, "r0", "x" + std::to_string(i), MemOrder::Plain);
            b.read(t, "r1", "x" + std::to_string((i + 1) % writers),
                   MemOrder::Plain);
            addConj(regEq(t, "r0", 1));
            addConj(regEq(t, "r1", 0));
        }
        break;
      }
    }
    std::string name = std::string(scaledPatternName(pattern)) + "-" +
                       std::to_string(threads);
    return b.finish(name, prog::AssertKind::Exists, std::move(cond));
}

} // namespace gpumc::litmus
