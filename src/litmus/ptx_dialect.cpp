#include "litmus/ptx_dialect.hpp"

#include "litmus/dialect_common.hpp"

namespace gpumc::litmus {

using prog::Instruction;
using prog::MemOrder;
using prog::Opcode;
using prog::Operand;
using prog::Proxy;
using prog::ProxyFenceKind;
using prog::RmwKind;

namespace {

/** Apply order/scope modifier parts; complain about unknown ones. */
void
applyModifiers(Instruction &ins, const ParsedMnemonic &m, size_t firstMod,
               size_t lastMod)
{
    bool orderSeen = false;
    for (size_t i = firstMod; i < lastMod; ++i) {
        const std::string &mod = m.parts[i];
        if (auto order = orderFromName(mod)) {
            ins.order = *order;
            orderSeen = true;
            continue;
        }
        if (auto scope = scopeFromName(mod)) {
            ins.scope = *scope;
            continue;
        }
        fatalAt(m.loc, "unknown PTX modifier .", mod);
    }
    // PTX accesses are weak unless explicitly ordered; ordered
    // accesses and all fences are strong operations.
    ins.atomic = orderSeen ? ins.order != MemOrder::Plain : false;
}

Instruction
parseLoad(const ParsedMnemonic &m, const std::vector<std::string> &ops,
          Proxy proxy)
{
    if (ops.size() != 2)
        fatalAt(m.loc, m.head(), " expects: rdst, location");
    Instruction ins;
    ins.op = Opcode::Load;
    ins.loc = m.loc;
    ins.proxy = proxy;
    ins.dst = ops[0];
    ins.location = ops[1];
    applyModifiers(ins, m, 1, m.parts.size());
    return ins;
}

Instruction
parseStore(const ParsedMnemonic &m, const std::vector<std::string> &ops,
           Proxy proxy)
{
    if (ops.size() != 2)
        fatalAt(m.loc, m.head(), " expects: location, value");
    Instruction ins;
    ins.op = Opcode::Store;
    ins.loc = m.loc;
    ins.proxy = proxy;
    ins.location = ops[0];
    ins.src = parseOperand(ops[1], m.loc);
    applyModifiers(ins, m, 1, m.parts.size());
    return ins;
}

Instruction
parseAtom(const ParsedMnemonic &m, const std::vector<std::string> &ops)
{
    // atom.<order>.<scope>.<kind> rdst, loc, v [, v2]
    Instruction ins;
    ins.op = Opcode::Rmw;
    ins.loc = m.loc;
    ins.atomic = true;
    ins.order = MemOrder::Rlx;

    bool kindSeen = false;
    for (size_t i = 1; i < m.parts.size(); ++i) {
        const std::string &mod = m.parts[i];
        if (auto order = orderFromName(mod)) {
            ins.order = *order;
            continue;
        }
        if (auto scope = scopeFromName(mod)) {
            ins.scope = *scope;
            continue;
        }
        if (mod == "add") {
            ins.rmwKind = RmwKind::Add;
            kindSeen = true;
        } else if (mod == "exch") {
            ins.rmwKind = RmwKind::Exchange;
            kindSeen = true;
        } else if (mod == "cas") {
            ins.rmwKind = RmwKind::Cas;
            kindSeen = true;
        } else {
            fatalAt(m.loc, "unknown atom modifier .", mod);
        }
    }
    if (!kindSeen)
        fatalAt(m.loc, "atom requires .add, .exch or .cas");
    size_t expected = ins.rmwKind == RmwKind::Cas ? 4 : 3;
    if (ops.size() != expected)
        fatalAt(m.loc, "atom expects ", expected, " operands");
    ins.dst = ops[0];
    ins.location = ops[1];
    ins.src = parseOperand(ops[2], m.loc);
    if (ins.rmwKind == RmwKind::Cas)
        ins.src2 = parseOperand(ops[3], m.loc);
    return ins;
}

Instruction
parseFence(const ParsedMnemonic &m)
{
    Instruction ins;
    ins.loc = m.loc;
    ins.atomic = true;
    if (m.parts.size() >= 2 && m.parts[1] == "proxy") {
        ins.op = Opcode::ProxyFence;
        if (m.parts.size() < 3)
            fatalAt(m.loc, "fence.proxy requires a proxy kind");
        const std::string &kind = m.parts[2];
        if (kind == "alias") {
            ins.proxyFence = ProxyFenceKind::Alias;
        } else if (kind == "texture") {
            ins.proxyFence = ProxyFenceKind::Texture;
        } else if (kind == "surface") {
            ins.proxyFence = ProxyFenceKind::Surface;
        } else if (kind == "constant") {
            ins.proxyFence = ProxyFenceKind::Constant;
        } else {
            fatalAt(m.loc, "unknown proxy fence kind .", kind);
        }
        for (size_t i = 3; i < m.parts.size(); ++i) {
            if (auto scope = scopeFromName(m.parts[i])) {
                ins.scope = *scope;
            } else {
                fatalAt(m.loc, "unknown proxy fence modifier .",
                        m.parts[i]);
            }
        }
        // Proxy fences act within a CTA (paper Fig. 4, pxyFM uses scta).
        if (!ins.scope)
            ins.scope = prog::Scope::Cta;
        return ins;
    }
    ins.op = Opcode::Fence;
    ins.order = MemOrder::AcqRel;
    for (size_t i = 1; i < m.parts.size(); ++i) {
        const std::string &mod = m.parts[i];
        if (auto order = orderFromName(mod)) {
            ins.order = *order;
        } else if (auto scope = scopeFromName(mod)) {
            ins.scope = *scope;
        } else {
            fatalAt(m.loc, "unknown fence modifier .", mod);
        }
    }
    return ins;
}

Instruction
parseBar(const ParsedMnemonic &m, const std::vector<std::string> &ops)
{
    // bar.cta.sync <id>; PTX control barriers are CTA-scoped.
    Instruction ins;
    ins.op = Opcode::Barrier;
    ins.loc = m.loc;
    ins.scope = prog::Scope::Cta;
    for (size_t i = 1; i < m.parts.size(); ++i) {
        const std::string &mod = m.parts[i];
        if (mod == "sync")
            continue;
        if (auto scope = scopeFromName(mod)) {
            ins.scope = *scope;
            continue;
        }
        fatalAt(m.loc, "unknown bar modifier .", mod);
    }
    if (ops.size() != 1)
        fatalAt(m.loc, "bar expects one barrier-id operand");
    ins.barrierId = parseOperand(ops[0], m.loc);
    return ins;
}

} // namespace

std::vector<Instruction>
parsePtxInstruction(std::string_view cell, SourceLoc loc)
{
    std::string operandText;
    ParsedMnemonic m = splitMnemonic(cell, loc, operandText);
    std::vector<std::string> ops = splitOperands(operandText);
    const std::string &head = m.head();

    if (head == "ld")
        return {parseLoad(m, ops, Proxy::Generic)};
    if (head == "suld")
        return {parseLoad(m, ops, Proxy::Surface)};
    if (head == "tld")
        return {parseLoad(m, ops, Proxy::Texture)};
    if (head == "cld")
        return {parseLoad(m, ops, Proxy::Constant)};
    if (head == "st")
        return {parseStore(m, ops, Proxy::Generic)};
    if (head == "sust")
        return {parseStore(m, ops, Proxy::Surface)};
    if (head == "tst")
        return {parseStore(m, ops, Proxy::Texture)};
    if (head == "cst")
        return {parseStore(m, ops, Proxy::Constant)};
    if (head == "atom")
        return {parseAtom(m, ops)};
    if (head == "fence" || head == "membar")
        return {parseFence(m)};
    if (head == "bar")
        return {parseBar(m, ops)};

    if (head == "goto") {
        if (ops.size() != 1)
            fatalAt(loc, "goto expects a label");
        Instruction ins;
        ins.op = Opcode::Goto;
        ins.loc = loc;
        ins.label = ops[0];
        return {ins};
    }
    if (head == "bne" || head == "beq") {
        if (ops.size() != 3)
            fatalAt(loc, head, " expects: lhs, rhs, label");
        Instruction ins;
        ins.op = head == "bne" ? Opcode::BranchNe : Opcode::BranchEq;
        ins.loc = loc;
        ins.branchLhs = parseOperand(ops[0], loc);
        ins.branchRhs = parseOperand(ops[1], loc);
        ins.label = ops[2];
        return {ins};
    }
    if (head == "mov") {
        if (ops.size() != 2)
            fatalAt(loc, "mov expects: rdst, value");
        Instruction ins;
        ins.op = Opcode::Mov;
        ins.loc = loc;
        ins.dst = ops[0];
        ins.src = parseOperand(ops[1], loc);
        return {ins};
    }
    if (head == "add") {
        if (ops.size() != 3)
            fatalAt(loc, "add expects: rdst, lhs, rhs");
        Instruction ins;
        ins.op = Opcode::AddReg;
        ins.loc = loc;
        ins.dst = ops[0];
        ins.branchLhs = parseOperand(ops[1], loc);
        ins.src = parseOperand(ops[2], loc);
        return {ins};
    }
    fatalAt(loc, "unknown PTX instruction '", head, "'");
}

} // namespace gpumc::litmus
