#include "litmus/vulkan_dialect.hpp"

#include "litmus/dialect_common.hpp"

namespace gpumc::litmus {

using prog::Instruction;
using prog::MemOrder;
using prog::Opcode;
using prog::Operand;
using prog::RmwKind;
using prog::Scope;
using prog::StorageClass;

namespace {

/**
 * Apply Vulkan modifiers common to accesses/fences. Returns true for
 * each modifier consumed; unknown modifiers are fatal.
 */
void
applyVulkanModifier(Instruction &ins, const std::string &mod,
                    SourceLoc loc)
{
    if (mod == "atom") {
        ins.atomic = true;
        return;
    }
    if (auto order = orderFromName(mod)) {
        ins.order = *order;
        return;
    }
    if (auto scope = scopeFromName(mod)) {
        ins.scope = *scope;
        return;
    }
    if (mod == "sc0") {
        ins.storageClass = StorageClass::Sc0;
        return;
    }
    if (mod == "sc1") {
        ins.storageClass = StorageClass::Sc1;
        return;
    }
    if (mod == "semsc0") {
        ins.semSc0 = true;
        return;
    }
    if (mod == "semsc1") {
        ins.semSc1 = true;
        return;
    }
    if (mod == "av") {
        ins.avFlag = true;
        return;
    }
    if (mod == "vis") {
        ins.visFlag = true;
        return;
    }
    if (mod == "semav") {
        ins.semAv = true;
        return;
    }
    if (mod == "semvis") {
        ins.semVis = true;
        return;
    }
    fatalAt(loc, "unknown Vulkan modifier .", mod);
}

Instruction
parseAccess(const ParsedMnemonic &m, const std::vector<std::string> &ops,
            bool isLoad)
{
    Instruction ins;
    ins.op = isLoad ? Opcode::Load : Opcode::Store;
    ins.loc = m.loc;
    for (size_t i = 1; i < m.parts.size(); ++i)
        applyVulkanModifier(ins, m.parts[i], m.loc);
    if (!ins.atomic && ins.order != MemOrder::Plain)
        fatalAt(m.loc, "non-atomic access cannot carry a memory order");
    if (ops.size() != 2) {
        fatalAt(m.loc, m.head(),
                isLoad ? " expects: rdst, location"
                       : " expects: location, value");
    }
    if (isLoad) {
        ins.dst = ops[0];
        ins.location = ops[1];
    } else {
        ins.location = ops[0];
        ins.src = parseOperand(ops[1], m.loc);
    }
    return ins;
}

Instruction
parseAtom(const ParsedMnemonic &m, const std::vector<std::string> &ops)
{
    Instruction ins;
    ins.op = Opcode::Rmw;
    ins.loc = m.loc;
    ins.atomic = true;
    ins.order = MemOrder::Rlx;
    bool kindSeen = false;
    for (size_t i = 1; i < m.parts.size(); ++i) {
        const std::string &mod = m.parts[i];
        if (mod == "add") {
            ins.rmwKind = RmwKind::Add;
            kindSeen = true;
        } else if (mod == "exch") {
            ins.rmwKind = RmwKind::Exchange;
            kindSeen = true;
        } else if (mod == "cas") {
            ins.rmwKind = RmwKind::Cas;
            kindSeen = true;
        } else {
            applyVulkanModifier(ins, mod, m.loc);
        }
    }
    if (!kindSeen)
        fatalAt(m.loc, "atom requires .add, .exch or .cas");
    size_t expected = ins.rmwKind == RmwKind::Cas ? 4 : 3;
    if (ops.size() != expected)
        fatalAt(m.loc, "atom expects ", expected, " operands");
    ins.dst = ops[0];
    ins.location = ops[1];
    ins.src = parseOperand(ops[2], m.loc);
    if (ins.rmwKind == RmwKind::Cas)
        ins.src2 = parseOperand(ops[3], m.loc);
    return ins;
}

Instruction
parseMembar(const ParsedMnemonic &m)
{
    Instruction ins;
    ins.op = Opcode::Fence;
    ins.loc = m.loc;
    ins.atomic = true;
    ins.order = MemOrder::AcqRel;
    for (size_t i = 1; i < m.parts.size(); ++i)
        applyVulkanModifier(ins, m.parts[i], m.loc);
    if (!ins.semSc0 && !ins.semSc1)
        ins.semSc0 = true; // default semantics: storage class 0
    return ins;
}

std::vector<Instruction>
parseCbar(const ParsedMnemonic &m, const std::vector<std::string> &ops)
{
    Instruction bar;
    bar.op = Opcode::Barrier;
    bar.loc = m.loc;
    MemOrder memSem = MemOrder::Plain;
    bool sem0 = false, sem1 = false;
    for (size_t i = 1; i < m.parts.size(); ++i) {
        const std::string &mod = m.parts[i];
        if (auto order = orderFromName(mod)) {
            memSem = *order;
            continue;
        }
        if (auto scope = scopeFromName(mod)) {
            bar.scope = *scope;
            continue;
        }
        if (mod == "semsc0") {
            sem0 = true;
            continue;
        }
        if (mod == "semsc1") {
            sem1 = true;
            continue;
        }
        fatalAt(m.loc, "unknown cbar modifier .", mod);
    }
    if (ops.size() != 1)
        fatalAt(m.loc, "cbar expects one barrier-id operand");
    bar.barrierId = parseOperand(ops[0], m.loc);
    if (!bar.scope)
        bar.scope = Scope::Wg;

    if (memSem == MemOrder::Plain)
        return {bar};

    // A barrier with memory semantics expands into
    //   membar.rel ; cbar ; membar.acq
    // matching the fence->barrier->fence synchronizes-with case of the
    // Vulkan model (paper Fig. 8, lines 29-30).
    auto mkFence = [&](MemOrder order) {
        Instruction f;
        f.op = Opcode::Fence;
        f.loc = m.loc;
        f.atomic = true;
        f.order = order;
        f.scope = bar.scope;
        f.semSc0 = sem0 || !sem1;
        f.semSc1 = sem1;
        return f;
    };
    std::vector<Instruction> out;
    if (memSem == MemOrder::Rel || memSem == MemOrder::AcqRel)
        out.push_back(mkFence(MemOrder::Rel));
    out.push_back(bar);
    if (memSem == MemOrder::Acq || memSem == MemOrder::AcqRel)
        out.push_back(mkFence(MemOrder::Acq));
    return out;
}

} // namespace

std::vector<Instruction>
parseVulkanInstruction(std::string_view cell, SourceLoc loc)
{
    std::string operandText;
    ParsedMnemonic m = splitMnemonic(cell, loc, operandText);
    std::vector<std::string> ops = splitOperands(operandText);
    const std::string &head = m.head();

    if (head == "ld")
        return {parseAccess(m, ops, true)};
    if (head == "st")
        return {parseAccess(m, ops, false)};
    if (head == "atom" || head == "rmw")
        return {parseAtom(m, ops)};
    if (head == "membar" || head == "fence")
        return {parseMembar(m)};
    if (head == "cbar")
        return parseCbar(m, ops);
    if (head == "avdevice" || head == "visdevice") {
        Instruction ins;
        ins.op = head == "avdevice" ? Opcode::AvDevice : Opcode::VisDevice;
        ins.loc = loc;
        ins.scope = Scope::Dv;
        return {ins};
    }

    if (head == "goto") {
        if (ops.size() != 1)
            fatalAt(loc, "goto expects a label");
        Instruction ins;
        ins.op = Opcode::Goto;
        ins.loc = loc;
        ins.label = ops[0];
        return {ins};
    }
    if (head == "bne" || head == "beq") {
        if (ops.size() != 3)
            fatalAt(loc, head, " expects: lhs, rhs, label");
        Instruction ins;
        ins.op = head == "bne" ? Opcode::BranchNe : Opcode::BranchEq;
        ins.loc = loc;
        ins.branchLhs = parseOperand(ops[0], loc);
        ins.branchRhs = parseOperand(ops[1], loc);
        ins.label = ops[2];
        return {ins};
    }
    if (head == "mov") {
        if (ops.size() != 2)
            fatalAt(loc, "mov expects: rdst, value");
        Instruction ins;
        ins.op = Opcode::Mov;
        ins.loc = loc;
        ins.dst = ops[0];
        ins.src = parseOperand(ops[1], loc);
        return {ins};
    }
    if (head == "add") {
        if (ops.size() != 3)
            fatalAt(loc, "add expects: rdst, lhs, rhs");
        Instruction ins;
        ins.op = Opcode::AddReg;
        ins.loc = loc;
        ins.dst = ops[0];
        ins.branchLhs = parseOperand(ops[1], loc);
        ins.src = parseOperand(ops[2], loc);
        return {ins};
    }
    fatalAt(loc, "unknown Vulkan instruction '", head, "'");
}

} // namespace gpumc::litmus
