#include "litmus/litmus_parser.hpp"

#include <cctype>
#include <fstream>
#include <set>
#include <sstream>

#include "litmus/condition_parser.hpp"
#include "litmus/ptx_dialect.hpp"
#include "litmus/vulkan_dialect.hpp"
#include "support/string_utils.hpp"

namespace gpumc::litmus {

using prog::Arch;
using prog::Instruction;
using prog::Opcode;
using prog::Program;
using prog::StorageClass;
using prog::Thread;
using prog::VarDecl;

namespace {

/**
 * Collect `@expect key=value` / `@config key=value` directives from
 * comments, then strip all comments, preserving line structure.
 */
std::string
stripComments(std::string_view src, std::map<std::string, std::string> &meta)
{
    std::string out;
    out.reserve(src.size());
    size_t i = 0;
    int depth = 0;
    std::string commentText;
    while (i < src.size()) {
        if (src[i] == '(' && i + 1 < src.size() && src[i + 1] == '*') {
            depth++;
            i += 2;
            continue;
        }
        if (depth > 0 && src[i] == '*' && i + 1 < src.size() &&
            src[i + 1] == ')') {
            depth--;
            i += 2;
            continue;
        }
        if (depth == 0 && src[i] == '/' && i + 1 < src.size() &&
            src[i + 1] == '/') {
            while (i < src.size() && src[i] != '\n')
                commentText += src[i++];
            commentText += '\n';
            continue;
        }
        if (depth > 0) {
            commentText += src[i];
            if (src[i] == '\n')
                out += '\n'; // keep line numbers stable
            i++;
            continue;
        }
        out += src[i++];
    }

    // Scan collected comment text for directives.
    std::istringstream lines(commentText);
    std::string line;
    while (std::getline(lines, line)) {
        auto words = splitWhitespace(line);
        for (size_t w = 0; w < words.size(); ++w) {
            if (words[w] != "@expect" && words[w] != "@config")
                continue;
            // Consume every following key=value word.
            while (w + 1 < words.size()) {
                auto kv = split(words[w + 1], '=');
                if (kv.size() != 2)
                    break;
                meta[kv[0]] = kv[1];
                ++w;
            }
        }
    }
    return out;
}

class StructParser {
  public:
    explicit StructParser(std::string text) : text_(std::move(text)) {}

    Program parse()
    {
        Program program;
        program.meta = meta_;

        parseHeader(program);
        parsePrelude(program);
        parseThreadBlock(program);
        parseConditions(program);
        autoDeclareVariables(program);

        program.validate();
        return program;
    }

    std::map<std::string, std::string> meta_;

  private:
    void skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            if (text_[pos_] == '\n')
                line_++;
            pos_++;
        }
    }

    SourceLoc here() const { return SourceLoc{line_, 1}; }

    bool atEnd()
    {
        skipSpace();
        return pos_ >= text_.size();
    }

    /** Peek the next whitespace-delimited word without consuming. */
    std::string peekWord()
    {
        skipSpace();
        size_t p = pos_;
        std::string out;
        while (p < text_.size() &&
               !std::isspace(static_cast<unsigned char>(text_[p])) &&
               text_[p] != '(' && text_[p] != '{') {
            out += text_[p++];
        }
        return out;
    }

    std::string takeWord()
    {
        std::string w = peekWord();
        skipSpace();
        pos_ += w.size();
        return w;
    }

    /** Read raw text until (and excluding) the given character. */
    std::string takeUntil(char stop)
    {
        std::string out;
        while (pos_ < text_.size() && text_[pos_] != stop) {
            if (text_[pos_] == '\n')
                line_++;
            out += text_[pos_++];
        }
        if (pos_ >= text_.size())
            fatalAt(here(), "unexpected end of litmus test (missing '",
                    stop, "')");
        pos_++; // consume stop
        return out;
    }

    /** Read a balanced parenthesized group; returns the inner text. */
    std::string takeParenGroup()
    {
        skipSpace();
        if (pos_ >= text_.size() || text_[pos_] != '(')
            fatalAt(here(), "expected '('");
        pos_++;
        int depth = 1;
        std::string out;
        while (pos_ < text_.size() && depth > 0) {
            char c = text_[pos_++];
            if (c == '\n')
                line_++;
            if (c == '(')
                depth++;
            if (c == ')') {
                depth--;
                if (depth == 0)
                    break;
            }
            out += c;
        }
        if (depth != 0)
            fatalAt(here(), "unbalanced parentheses in condition");
        return out;
    }

    void parseHeader(Program &program)
    {
        std::string archWord = toLower(takeWord());
        if (archWord == "ptx") {
            program.arch = Arch::Ptx;
        } else if (archWord == "vulkan") {
            program.arch = Arch::Vulkan;
        } else {
            fatalAt(here(), "litmus test must start with PTX or VULKAN, ",
                    "found '", archWord, "'");
        }
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == '"') {
            pos_++;
            program.name = takeUntil('"');
        }
    }

    void parsePrelude(Program &program)
    {
        skipSpace();
        if (pos_ >= text_.size() || text_[pos_] != '{')
            return;
        pos_++;
        std::string body = takeUntil('}');
        for (const std::string &stmtRaw : split(body, ';')) {
            std::string stmt(trim(stmtRaw));
            if (stmt.empty())
                continue;
            parsePreludeStmt(program, stmt);
        }
    }

    /**
     * Prelude statements:
     *   x = 3         initial value
     *   s -> x        s aliases x (same physical location)
     *   y @ sc1       storage class (Vulkan)
     * Clauses combine: "s -> x @ sc1".
     */
    void parsePreludeStmt(Program &program, const std::string &stmt)
    {
        auto words = splitWhitespace(stmt);
        if (words.empty())
            return;
        VarDecl decl;
        decl.name = words[0];
        for (size_t i = 1; i < words.size();) {
            if (words[i] == "=" && i + 1 < words.size()) {
                if (!isInteger(words[i + 1]))
                    fatalAt(here(), "bad initial value for ", decl.name);
                decl.init = std::stoll(words[i + 1]);
                i += 2;
            } else if (words[i] == "->" && i + 1 < words.size()) {
                decl.aliasOf = words[i + 1];
                i += 2;
            } else if (words[i] == "@" && i + 1 < words.size()) {
                if (words[i + 1] == "sc0") {
                    decl.storageClass = StorageClass::Sc0;
                } else if (words[i + 1] == "sc1") {
                    decl.storageClass = StorageClass::Sc1;
                } else {
                    fatalAt(here(), "unknown storage class ", words[i + 1]);
                }
                i += 2;
            } else {
                fatalAt(here(), "bad prelude clause near '", words[i],
                        "' for variable ", decl.name);
            }
        }
        program.vars.push_back(std::move(decl));
    }

    bool nextIsConditionKeyword()
    {
        std::string w = toLower(peekWord());
        return w == "exists" || w == "~exists" || w == "forall" ||
               w == "filter";
    }

    void parseThreadBlock(Program &program)
    {
        // Header row.
        std::string headerRow = takeUntil(';');
        std::vector<std::string> headers = split(headerRow, '|');
        for (const std::string &h : headers)
            program.threads.push_back(parseThreadHeader(trim(h)));

        // Instruction rows until a condition keyword.
        while (!atEnd() && !nextIsConditionKeyword()) {
            SourceLoc rowLoc = here();
            std::string row = takeUntil(';');
            std::vector<std::string> cells = split(row, '|');
            if (cells.size() > program.threads.size()) {
                fatalAt(rowLoc, "row has ", cells.size(),
                        " columns but there are ", program.threads.size(),
                        " threads");
            }
            for (size_t col = 0; col < cells.size(); ++col)
                parseCell(program, static_cast<int>(col), cells[col],
                          rowLoc);
        }
    }

    Thread parseThreadHeader(std::string_view header)
    {
        Thread thread;
        size_t at = header.find('@');
        thread.name = std::string(trim(header.substr(0, at)));
        if (thread.name.empty() || thread.name[0] != 'P')
            fatalAt(here(), "thread name must look like P0, got '",
                    thread.name, "'");
        if (at == std::string_view::npos)
            return thread;
        for (const std::string &itemRaw :
             split(header.substr(at + 1), ',')) {
            auto words = splitWhitespace(itemRaw);
            if (words.size() == 1 && words[0] == "ssw") {
                thread.placement.ssw = true;
                continue;
            }
            if (words.size() != 2 || !isInteger(words[1])) {
                fatalAt(here(), "bad placement clause '", itemRaw,
                        "' in thread header");
            }
            int value = std::stoi(words[1]);
            const std::string &key = words[0];
            if (key == "cta") {
                thread.placement.cta = value;
            } else if (key == "gpu") {
                thread.placement.gpu = value;
            } else if (key == "sg") {
                thread.placement.sg = value;
            } else if (key == "wg") {
                thread.placement.wg = value;
            } else if (key == "qf") {
                thread.placement.qf = value;
            } else {
                fatalAt(here(), "unknown placement key '", key, "'");
            }
        }
        return thread;
    }

    void parseCell(Program &program, int col, std::string_view cellRaw,
                   SourceLoc loc)
    {
        std::string cell(trim(cellRaw));
        if (cell.empty())
            return;
        // Bare label?
        if (cell.back() == ':' &&
            cell.find_first_of(" \t") == std::string::npos) {
            Instruction ins;
            ins.op = Opcode::Label;
            ins.label = cell.substr(0, cell.size() - 1);
            ins.loc = loc;
            program.threads[col].instrs.push_back(std::move(ins));
            return;
        }
        std::vector<Instruction> parsed =
            program.arch == Arch::Ptx ? parsePtxInstruction(cell, loc)
                                      : parseVulkanInstruction(cell, loc);
        for (Instruction &ins : parsed)
            program.threads[col].instrs.push_back(std::move(ins));
    }

    void parseConditions(Program &program)
    {
        while (!atEnd()) {
            std::string keyword = toLower(takeWord());
            if (keyword == "filter") {
                program.filter = parseCondition(takeParenGroup());
            } else if (keyword == "exists" || keyword == "~exists" ||
                       keyword == "forall") {
                program.assertKind =
                    keyword == "exists" ? prog::AssertKind::Exists
                    : keyword == "~exists" ? prog::AssertKind::NotExists
                                           : prog::AssertKind::Forall;
                program.assertion = parseCondition(takeParenGroup());
            } else {
                fatalAt(here(), "expected filter/exists/~exists/forall, ",
                        "found '", keyword, "'");
            }
        }
    }

    /** Variables used by instructions but not declared default to 0. */
    void autoDeclareVariables(Program &program)
    {
        std::set<std::string> declared;
        for (const VarDecl &v : program.vars)
            declared.insert(v.name);
        for (const Thread &t : program.threads) {
            for (const Instruction &ins : t.instrs) {
                if (ins.isMemoryAccess() && !declared.count(ins.location)) {
                    declared.insert(ins.location);
                    VarDecl decl;
                    decl.name = ins.location;
                    program.vars.push_back(std::move(decl));
                }
            }
        }
    }

    std::string text_;
    size_t pos_ = 0;
    int line_ = 1;
};

} // namespace

Program
parseLitmus(std::string_view source)
{
    std::map<std::string, std::string> meta;
    std::string stripped = stripComments(source, meta);
    StructParser parser(std::move(stripped));
    parser.meta_ = std::move(meta);
    return parser.parse();
}

Program
parseLitmusFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open litmus file: ", path);
    std::ostringstream buf;
    buf << in.rdbuf();
    Program program = parseLitmus(buf.str());
    if (program.name.empty()) {
        size_t slash = path.find_last_of('/');
        program.name = path.substr(slash == std::string::npos ? 0
                                                              : slash + 1);
    }
    return program;
}

} // namespace gpumc::litmus
