/**
 * @file
 * Parser for litmus final-state conditions:
 *   (P0:r1 == 1 /\ x != 2) \/ ~(P1:r0 == P1:r1)
 */

#ifndef GPUMC_LITMUS_CONDITION_PARSER_HPP
#define GPUMC_LITMUS_CONDITION_PARSER_HPP

#include <string_view>

#include "program/assertion.hpp"

namespace gpumc::litmus {

/**
 * Parse a condition expression. `/\` binds tighter than `\/`; `~`
 * negates an atom or a parenthesized expression.
 * @throws FatalError on syntax errors.
 */
prog::CondPtr parseCondition(std::string_view text);

} // namespace gpumc::litmus

#endif // GPUMC_LITMUS_CONDITION_PARSER_HPP
