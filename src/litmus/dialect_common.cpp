#include "litmus/dialect_common.hpp"

#include <algorithm>

#include "support/string_utils.hpp"

namespace gpumc::litmus {

bool
ParsedMnemonic::hasMod(const std::string &mod) const
{
    return std::find(parts.begin() + 1, parts.end(), mod) != parts.end();
}

std::vector<std::string>
splitOperands(std::string_view text)
{
    std::vector<std::string> out;
    if (trim(text).empty())
        return out;
    for (const std::string &part : split(text, ','))
        out.emplace_back(trim(part));
    return out;
}

prog::Operand
parseOperand(const std::string &text, SourceLoc loc)
{
    if (text.empty())
        fatalAt(loc, "empty operand");
    if (isInteger(text))
        return prog::Operand::makeConst(std::stoll(text));
    return prog::Operand::makeReg(text);
}

std::optional<prog::MemOrder>
orderFromName(const std::string &name)
{
    using prog::MemOrder;
    if (name == "weak")
        return MemOrder::Plain;
    if (name == "relaxed" || name == "rlx")
        return MemOrder::Rlx;
    if (name == "acquire" || name == "acq")
        return MemOrder::Acq;
    if (name == "release" || name == "rel")
        return MemOrder::Rel;
    if (name == "acq_rel" || name == "acqrel")
        return MemOrder::AcqRel;
    if (name == "sc")
        return MemOrder::Sc;
    return std::nullopt;
}

std::optional<prog::Scope>
scopeFromName(const std::string &name)
{
    using prog::Scope;
    if (name == "cta")
        return Scope::Cta;
    if (name == "gpu")
        return Scope::Gpu;
    if (name == "sys")
        return Scope::Sys;
    if (name == "sg")
        return Scope::Sg;
    if (name == "wg")
        return Scope::Wg;
    if (name == "qf")
        return Scope::Qf;
    if (name == "dv")
        return Scope::Dv;
    return std::nullopt;
}

ParsedMnemonic
splitMnemonic(std::string_view cell, SourceLoc loc, std::string &operandsOut)
{
    std::string_view trimmed = trim(cell);
    size_t space = trimmed.find_first_of(" \t");
    std::string_view mnemonic = trimmed.substr(0, space);
    operandsOut = space == std::string_view::npos
                      ? std::string()
                      : std::string(trim(trimmed.substr(space + 1)));
    ParsedMnemonic out;
    out.loc = loc;
    for (const std::string &part : split(mnemonic, '.'))
        out.parts.push_back(part);
    if (out.parts.empty() || out.parts[0].empty())
        fatalAt(loc, "empty instruction mnemonic");
    return out;
}

} // namespace gpumc::litmus
