#include "litmus/condition_parser.hpp"

#include <cctype>

#include "support/diagnostics.hpp"
#include "support/string_utils.hpp"

namespace gpumc::litmus {

using prog::Cond;
using prog::CondPtr;
using prog::CondTerm;

namespace {

class CondParser {
  public:
    explicit CondParser(std::string_view text) : text_(text) {}

    CondPtr parse()
    {
        CondPtr c = parseOr();
        skipSpace();
        if (pos_ != text_.size())
            fail("trailing characters in condition");
        return c;
    }

  private:
    [[noreturn]] void fail(const std::string &msg)
    {
        fatal("condition parse error: ", msg, " in '", std::string(text_),
              "' at offset ", pos_);
    }

    void skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            pos_++;
        }
    }

    bool tryConsume(std::string_view tok)
    {
        skipSpace();
        if (text_.substr(pos_).substr(0, tok.size()) == tok) {
            pos_ += tok.size();
            return true;
        }
        return false;
    }

    char peek()
    {
        skipSpace();
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    CondPtr parseOr()
    {
        CondPtr lhs = parseAnd();
        while (tryConsume("\\/"))
            lhs = Cond::mkOr(std::move(lhs), parseAnd());
        return lhs;
    }

    CondPtr parseAnd()
    {
        CondPtr lhs = parseAtom();
        while (tryConsume("/\\"))
            lhs = Cond::mkAnd(std::move(lhs), parseAtom());
        return lhs;
    }

    CondPtr parseAtom()
    {
        if (tryConsume("~"))
            return Cond::mkNot(parseAtom());
        if (tryConsume("(")) {
            CondPtr inner = parseOr();
            if (!tryConsume(")"))
                fail("expected ')'");
            return inner;
        }
        if (tryConsume("true"))
            return Cond::mkTrue();

        CondTerm lhs = parseTerm();
        bool equal;
        if (tryConsume("==") || tryConsume("=")) {
            equal = true;
        } else if (tryConsume("!=")) {
            equal = false;
        } else {
            fail("expected '==' or '!='");
        }
        CondTerm rhs = parseTerm();
        return Cond::mkCmp(equal, std::move(lhs), std::move(rhs));
    }

    CondTerm parseTerm()
    {
        skipSpace();
        if (pos_ >= text_.size())
            fail("expected a term");
        char c = text_[pos_];
        if (std::isdigit(static_cast<unsigned char>(c)) || c == '-') {
            size_t start = pos_;
            if (c == '-')
                pos_++;
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                pos_++;
            }
            return CondTerm::makeConst(
                std::stoll(std::string(text_.substr(start, pos_ - start))));
        }
        if (!std::isalpha(static_cast<unsigned char>(c)) && c != '_')
            fail("expected a term");
        size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_')) {
            pos_++;
        }
        std::string name(text_.substr(start, pos_ - start));
        // Thread-register reference: P<k>:reg
        if (pos_ < text_.size() && text_[pos_] == ':') {
            if (name.size() < 2 || name[0] != 'P' ||
                !isInteger(std::string_view(name).substr(1))) {
                fail("expected P<k> before ':'");
            }
            pos_++; // ':'
            size_t rstart = pos_;
            while (pos_ < text_.size() &&
                   (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                    text_[pos_] == '_')) {
                pos_++;
            }
            if (pos_ == rstart)
                fail("expected register name after ':'");
            int thread = std::stoi(name.substr(1));
            return CondTerm::makeReg(
                thread, std::string(text_.substr(rstart, pos_ - rstart)));
        }
        return CondTerm::makeMem(std::move(name));
    }

    std::string_view text_;
    size_t pos_ = 0;
};

} // namespace

CondPtr
parseCondition(std::string_view text)
{
    return CondParser(text).parse();
}

} // namespace gpumc::litmus
