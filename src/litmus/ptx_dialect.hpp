/**
 * @file
 * Instruction parser for the PTX-style litmus dialect used throughout
 * the paper (Figs. 6, 7, 12, 13):
 *
 *   st.weak x, 1                  ld.acquire.sys r0, x
 *   atom.acq.gpu.add r1, in, 1    atom.rlx.gpu.cas r1, x, 0, 1
 *   fence.sc.cta                  fence.proxy.alias
 *   sust.weak s, 1   suld.weak r0, s   tld.weak r1, t   tst.weak t, 1
 *   bar.cta.sync 1                bar.cta.sync r2
 *   LC00:   goto LC00   bne r1, 0, LC01   beq r1, r2, LC01
 *   mov r1, 5   add r1, r2, 1
 */

#ifndef GPUMC_LITMUS_PTX_DIALECT_HPP
#define GPUMC_LITMUS_PTX_DIALECT_HPP

#include <string_view>
#include <vector>

#include "program/instruction.hpp"

namespace gpumc::litmus {

/** Parse one PTX-dialect instruction cell (never a bare label). */
std::vector<prog::Instruction> parsePtxInstruction(std::string_view cell,
                                                   SourceLoc loc);

} // namespace gpumc::litmus

#endif // GPUMC_LITMUS_PTX_DIALECT_HPP
