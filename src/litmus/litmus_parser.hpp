/**
 * @file
 * Structural parser for litmus tests in the paper's column format:
 *
 *   PTX "mp-rel-acq"
 *   { x = 0; s -> x; }
 *   P0@cta 0,gpu 0 | P1@cta 0,gpu 0      ;
 *   st.weak x, 1   | ld.acquire.sys r0, x ;
 *   exists (P1:r0 == 1)
 *
 * The first keyword (PTX or VULKAN) selects the instruction dialect.
 * Comment lines may carry `@expect key=value` / `@config key=value`
 * directives which are preserved in Program::meta for the benchmark
 * and test harnesses.
 */

#ifndef GPUMC_LITMUS_LITMUS_PARSER_HPP
#define GPUMC_LITMUS_LITMUS_PARSER_HPP

#include <string>
#include <string_view>

#include "program/program.hpp"

namespace gpumc::litmus {

/** Parse a litmus test from source. @throws FatalError on errors. */
prog::Program parseLitmus(std::string_view source);

/** Parse a litmus test from a file. */
prog::Program parseLitmusFile(const std::string &path);

} // namespace gpumc::litmus

#endif // GPUMC_LITMUS_LITMUS_PARSER_HPP
