/**
 * @file
 * Instruction parser for the Vulkan-style litmus dialect used in the
 * paper (Figs. 9, 10, 16):
 *
 *   st.atom.dv.sc0 data, 1        st.atom.rel.dv.sc0 flag, 1
 *   ld.atom.acq.dv.sc0 r1, flag   st.sc0.av data, 1
 *   atom.add.acq.dv.sc0 r1, x, 1  atom.cas.dv.sc0 r1, x, 0, 1
 *   membar.rel.dv.semsc0          membar.acq.dv.semsc0.semsc1.semvis
 *   cbar.wg 1                     cbar.acqrel.wg.semsc0 1 (expands)
 *   avdevice                       visdevice
 *   LC00:  goto LC00  bne r1, 0, LC01  beq r1, r2, LC01  mov  add
 */

#ifndef GPUMC_LITMUS_VULKAN_DIALECT_HPP
#define GPUMC_LITMUS_VULKAN_DIALECT_HPP

#include <string_view>
#include <vector>

#include "program/instruction.hpp"

namespace gpumc::litmus {

/**
 * Parse one Vulkan-dialect instruction cell. May expand to several IR
 * instructions (a control barrier with memory semantics becomes
 * release fence + barrier + acquire fence).
 */
std::vector<prog::Instruction> parseVulkanInstruction(std::string_view cell,
                                                      SourceLoc loc);

} // namespace gpumc::litmus

#endif // GPUMC_LITMUS_VULKAN_DIALECT_HPP
