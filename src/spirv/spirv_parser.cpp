#include "spirv/spirv_parser.hpp"

#include <map>
#include <optional>
#include <sstream>
#include <fstream>
#include <vector>

#include "litmus/condition_parser.hpp"
#include "support/string_utils.hpp"

namespace gpumc::spirv {

using prog::Instruction;
using prog::MemOrder;
using prog::Opcode;
using prog::Operand;
using prog::Program;
using prog::RmwKind;
using prog::Scope;
using prog::StorageClass;

namespace {

// SPIR-V memory-semantics bits.
constexpr uint32_t kSemAcquire = 0x2;
constexpr uint32_t kSemRelease = 0x4;
constexpr uint32_t kSemAcquireRelease = 0x8;
constexpr uint32_t kSemSeqCst = 0x10;
constexpr uint32_t kSemUniformMemory = 0x40;
constexpr uint32_t kSemWorkgroupMemory = 0x100;
constexpr uint32_t kSemMakeAvailable = 0x2000;
constexpr uint32_t kSemMakeVisible = 0x4000;

// SPIR-V scope values.
enum class SpvScope : uint32_t {
    CrossDevice = 0,
    Device = 1,
    Workgroup = 2,
    Subgroup = 3,
    Invocation = 4,
    QueueFamily = 5,
};

enum class Builtin { None, LocalInvocationIndex, WorkgroupId, GlobalId };

struct SpvVariable {
    std::string name;
    std::optional<StorageClass> storageClass; // nullopt: register-like
    Builtin builtin = Builtin::None;
};

/** One tokenized instruction line: `%res = OpFoo a b ...`. */
struct SpvLine {
    std::string result; // "%res" or empty
    std::string op;
    std::vector<std::string> args;
    SourceLoc loc;
};

struct SpvModule {
    std::map<std::string, int64_t> constants;     // %id -> value
    std::map<std::string, SpvVariable> variables; // %id -> var
    std::map<std::string, std::string> names;     // %id -> OpName
    std::vector<SpvLine> body;                    // function body
    Grid grid;
    std::map<std::string, std::string> meta;
    std::string assertText;
};

Scope
scopeFromSpv(int64_t value, SourceLoc loc)
{
    switch (static_cast<SpvScope>(value)) {
      case SpvScope::CrossDevice:
      case SpvScope::Device:
        return Scope::Dv;
      case SpvScope::Workgroup:
        return Scope::Wg;
      case SpvScope::Subgroup:
        return Scope::Sg;
      case SpvScope::QueueFamily:
        return Scope::Qf;
      default:
        fatalAt(loc, "unsupported SPIR-V scope value ", value);
    }
}

class ModuleParser {
  public:
    explicit ModuleParser(std::string_view source) : source_(source) {}

    void parse()
    {
        std::istringstream in{std::string(source_)};
        std::string raw;
        int lineNo = 0;
        bool inFunction = false;
        while (std::getline(in, raw)) {
            lineNo++;
            std::string_view line = trim(raw);
            if (line.empty())
                continue;
            if (line[0] == ';') {
                parseDirective(line);
                continue;
            }
            SpvLine parsed = tokenize(line, lineNo);
            if (parsed.op.empty())
                continue;
            if (parsed.op == "OpFunction") {
                inFunction = true;
                continue;
            }
            if (parsed.op == "OpFunctionEnd") {
                inFunction = false;
                continue;
            }
            if (inFunction) {
                module_.body.push_back(std::move(parsed));
            } else {
                parseGlobal(parsed);
            }
        }
    }

  private:
    void parseDirective(std::string_view comment)
    {
        auto words = splitWhitespace(comment.substr(1));
        for (size_t i = 0; i < words.size(); ++i) {
            if (words[i] == "@grid" && i + 1 < words.size()) {
                auto parts = split(words[i + 1], '.');
                if (parts.size() == 2 && isInteger(parts[0]) &&
                    isInteger(parts[1])) {
                    module_.grid.threadsPerWorkgroup = std::stoi(parts[0]);
                    module_.grid.workgroups = std::stoi(parts[1]);
                }
            } else if (words[i] == "@expect" || words[i] == "@config") {
                while (i + 1 < words.size()) {
                    auto kv = split(words[i + 1], '=');
                    if (kv.size() != 2)
                        break;
                    module_.meta[kv[0]] = kv[1];
                    ++i;
                }
            } else if (words[i] == "@assert") {
                std::string rest;
                for (size_t j = i + 1; j < words.size(); ++j)
                    rest += words[j] + " ";
                module_.assertText = rest;
                return;
            }
        }
    }

    SpvLine tokenize(std::string_view line, int lineNo)
    {
        // Strip trailing comments.
        size_t sc = line.find(';');
        if (sc != std::string_view::npos)
            line = trim(line.substr(0, sc));
        SpvLine out;
        out.loc = SourceLoc{lineNo, 1};
        std::vector<std::string> words;
        // Handle quoted strings as single tokens.
        std::string cur;
        bool inString = false;
        for (char c : line) {
            if (c == '"') {
                inString = !inString;
                cur += c;
                continue;
            }
            if (!inString && std::isspace(static_cast<unsigned char>(c))) {
                if (!cur.empty())
                    words.push_back(std::move(cur));
                cur.clear();
            } else {
                cur += c;
            }
        }
        if (!cur.empty())
            words.push_back(std::move(cur));
        if (words.empty())
            return out;
        size_t idx = 0;
        if (words.size() >= 3 && words[1] == "=") {
            out.result = words[0];
            idx = 2;
        }
        out.op = words[idx++];
        for (; idx < words.size(); ++idx)
            out.args.push_back(words[idx]);
        return out;
    }

    void parseGlobal(const SpvLine &line)
    {
        if (line.op == "OpName" && line.args.size() == 2) {
            std::string name = line.args[1];
            if (name.size() >= 2 && name.front() == '"')
                name = name.substr(1, name.size() - 2);
            module_.names[line.args[0]] = name;
            return;
        }
        if (line.op == "OpConstant" && line.args.size() >= 2) {
            module_.constants[line.result] = std::stoll(line.args[1]);
            return;
        }
        if (line.op == "OpConstantTrue") {
            module_.constants[line.result] = 1;
            return;
        }
        if (line.op == "OpConstantFalse") {
            module_.constants[line.result] = 0;
            return;
        }
        if (line.op == "OpVariable" && !line.args.empty()) {
            SpvVariable var;
            const std::string &sc = line.args.size() >= 2 ? line.args[1]
                                                          : line.args[0];
            if (sc == "StorageBuffer" || sc == "Uniform" ||
                sc == "CrossWorkgroup" || sc == "PhysicalStorageBuffer") {
                var.storageClass = StorageClass::Sc0;
            } else if (sc == "Workgroup") {
                var.storageClass = StorageClass::Sc1;
            } else if (sc == "Function" || sc == "Private" ||
                       sc == "Input") {
                var.storageClass = std::nullopt; // register-like
            } else {
                fatalAt(line.loc, "unsupported SPIR-V storage class ", sc);
            }
            auto named = module_.names.find(line.result);
            var.name = named != module_.names.end()
                           ? named->second
                           : "v" + line.result.substr(1);
            module_.variables[line.result] = std::move(var);
            return;
        }
        if (line.op == "OpDecorate" && line.args.size() >= 3 &&
            line.args[1] == "BuiltIn") {
            Builtin builtin = Builtin::None;
            if (line.args[2] == "LocalInvocationIndex")
                builtin = Builtin::LocalInvocationIndex;
            else if (line.args[2] == "WorkgroupId")
                builtin = Builtin::WorkgroupId;
            else if (line.args[2] == "GlobalInvocationIndex" ||
                     line.args[2] == "GlobalInvocationId")
                builtin = Builtin::GlobalId;
            builtins_[line.args[0]] = builtin;
            return;
        }
        // Types, capabilities, entry points, decorations: ignored.
    }

    std::string_view source_;
    SpvModule module_;

  public:
    std::map<std::string, Builtin> builtins_;

    void applyBuiltins()
    {
        for (auto &[id, builtin] : builtins_) {
            auto it = module_.variables.find(id);
            if (it != module_.variables.end())
                it->second.builtin = builtin;
        }
    }

    SpvModule take()
    {
        applyBuiltins();
        return std::move(module_);
    }
};

/** Instantiates the kernel body for one thread. */
class ThreadBuilder {
  public:
    ThreadBuilder(const SpvModule &module, int threadIdx, const Grid &grid)
        : module_(module), threadIdx_(threadIdx), grid_(grid)
    {
    }

    std::vector<Instruction> build()
    {
        for (const SpvLine &line : module_.body)
            translate(line);
        return std::move(out_);
    }

  private:
    [[noreturn]] void unsupported(const SpvLine &line)
    {
        fatalAt(line.loc, "unsupported SPIR-V instruction ", line.op);
    }

    Operand value(const std::string &id, SourceLoc loc)
    {
        auto c = module_.constants.find(id);
        if (c != module_.constants.end())
            return Operand::makeConst(c->second);
        auto v = module_.variables.find(id);
        if (v != module_.variables.end()) {
            // Register-promoted variable.
            if (!v->second.storageClass)
                return Operand::makeReg("fv" + id.substr(1));
            fatalAt(loc, "value use of memory variable ", id);
        }
        return Operand::makeReg("r" + id.substr(1));
    }

    int64_t constantOf(const std::string &id, SourceLoc loc)
    {
        auto c = module_.constants.find(id);
        if (c == module_.constants.end())
            fatalAt(loc, "operand ", id, " must be a constant");
        return c->second;
    }

    const SpvVariable &variable(const std::string &id, SourceLoc loc)
    {
        auto v = module_.variables.find(id);
        if (v == module_.variables.end())
            fatalAt(loc, "unknown variable ", id);
        return v->second;
    }

    MemOrder orderFromSem(uint32_t sem, SourceLoc loc)
    {
        if (sem & kSemSeqCst)
            fatalAt(loc, "Vulkan SPIR-V has no SequentiallyConsistent");
        if (sem & kSemAcquireRelease)
            return MemOrder::AcqRel;
        bool acq = sem & kSemAcquire, rel = sem & kSemRelease;
        if (acq && rel)
            return MemOrder::AcqRel;
        if (acq)
            return MemOrder::Acq;
        if (rel)
            return MemOrder::Rel;
        return MemOrder::Rlx;
    }

    void applySemStorage(Instruction &ins, uint32_t sem)
    {
        ins.semSc0 = (sem & kSemUniformMemory) != 0;
        ins.semSc1 = (sem & kSemWorkgroupMemory) != 0;
        if (!ins.semSc0 && !ins.semSc1)
            ins.semSc0 = true;
        ins.semAv = (sem & kSemMakeAvailable) != 0;
        ins.semVis = (sem & kSemMakeVisible) != 0;
    }

    int64_t builtinValue(Builtin builtin)
    {
        switch (builtin) {
          case Builtin::LocalInvocationIndex:
            return threadIdx_ % grid_.threadsPerWorkgroup;
          case Builtin::WorkgroupId:
            return threadIdx_ / grid_.threadsPerWorkgroup;
          case Builtin::GlobalId:
            return threadIdx_;
          case Builtin::None:
            break;
        }
        GPUMC_PANIC("not a builtin");
    }

    void emit(Instruction ins)
    {
        out_.push_back(std::move(ins));
    }

    void translate(const SpvLine &line)
    {
        const std::string &op = line.op;
        SourceLoc loc = line.loc;

        if (op == "OpLabel") {
            Instruction ins;
            ins.op = Opcode::Label;
            ins.label = "L" + line.result.substr(1);
            ins.loc = loc;
            emit(ins);
            return;
        }
        if (op == "OpBranch") {
            Instruction ins;
            ins.op = Opcode::Goto;
            ins.label = "L" + line.args[0].substr(1);
            ins.loc = loc;
            emit(ins);
            return;
        }
        if (op == "OpBranchConditional") {
            auto cmp = compares_.find(line.args[0]);
            if (cmp == compares_.end())
                fatalAt(loc, "branch condition must come from "
                             "OpIEqual/OpINotEqual");
            Instruction br;
            br.op = cmp->second.equal ? Opcode::BranchEq
                                      : Opcode::BranchNe;
            br.branchLhs = cmp->second.lhs;
            br.branchRhs = cmp->second.rhs;
            br.label = "L" + line.args[1].substr(1);
            br.loc = loc;
            emit(br);
            Instruction gt;
            gt.op = Opcode::Goto;
            gt.label = "L" + line.args[2].substr(1);
            gt.loc = loc;
            emit(gt);
            return;
        }
        if (op == "OpIEqual" || op == "OpINotEqual") {
            compares_[line.result] = {op == "OpIEqual",
                                      value(line.args[1], loc),
                                      value(line.args[2], loc)};
            return;
        }
        if (op == "OpLoad") {
            const SpvVariable &var = variable(line.args[1], loc);
            if (var.builtin != Builtin::None) {
                Instruction ins;
                ins.op = Opcode::Mov;
                ins.dst = "r" + line.result.substr(1);
                ins.src = Operand::makeConst(builtinValue(var.builtin));
                ins.loc = loc;
                emit(ins);
                return;
            }
            if (!var.storageClass) { // register-promoted
                Instruction ins;
                ins.op = Opcode::Mov;
                ins.dst = "r" + line.result.substr(1);
                ins.src = Operand::makeReg("fv" + line.args[1].substr(1));
                ins.loc = loc;
                emit(ins);
                return;
            }
            Instruction ins;
            ins.op = Opcode::Load;
            ins.dst = "r" + line.result.substr(1);
            ins.location = var.name;
            ins.storageClass = var.storageClass;
            ins.loc = loc;
            for (size_t i = 2; i < line.args.size(); ++i) {
                if (line.args[i].find("MakePointerVisible") !=
                    std::string::npos) {
                    ins.visFlag = true;
                }
            }
            emit(ins);
            return;
        }
        if (op == "OpStore") {
            const SpvVariable &var = variable(line.args[0], loc);
            if (!var.storageClass) {
                Instruction ins;
                ins.op = Opcode::Mov;
                ins.dst = "fv" + line.args[0].substr(1);
                ins.src = value(line.args[1], loc);
                ins.loc = loc;
                emit(ins);
                return;
            }
            Instruction ins;
            ins.op = Opcode::Store;
            ins.location = var.name;
            ins.src = value(line.args[1], loc);
            ins.storageClass = var.storageClass;
            ins.loc = loc;
            for (size_t i = 2; i < line.args.size(); ++i) {
                if (line.args[i].find("MakePointerAvailable") !=
                    std::string::npos) {
                    ins.avFlag = true;
                }
            }
            emit(ins);
            return;
        }
        if (op == "OpAtomicLoad" || op == "OpAtomicStore" ||
            op == "OpAtomicIAdd" || op == "OpAtomicExchange" ||
            op == "OpAtomicCompareExchange") {
            translateAtomic(line);
            return;
        }
        if (op == "OpControlBarrier") {
            int64_t execScope = constantOf(line.args[0], loc);
            int64_t memScope = constantOf(line.args[1], loc);
            uint32_t sem = static_cast<uint32_t>(
                constantOf(line.args[2], loc));
            MemOrder order = orderFromSem(sem, loc);
            Instruction relF, acqF;
            relF.op = Opcode::Fence;
            relF.atomic = true;
            relF.order = MemOrder::Rel;
            relF.scope = scopeFromSpv(memScope, loc);
            relF.loc = loc;
            applySemStorage(relF, sem);
            acqF = relF;
            acqF.order = MemOrder::Acq;
            if (order == MemOrder::Rel || order == MemOrder::AcqRel)
                emit(relF);
            Instruction bar;
            bar.op = Opcode::Barrier;
            bar.scope = scopeFromSpv(execScope, loc);
            // Barriers at the same program point share a logical id.
            bar.barrierId = Operand::makeConst(barrierCounter_++);
            bar.loc = loc;
            emit(bar);
            if (order == MemOrder::Acq || order == MemOrder::AcqRel)
                emit(acqF);
            return;
        }
        if (op == "OpMemoryBarrier") {
            int64_t memScope = constantOf(line.args[0], loc);
            uint32_t sem = static_cast<uint32_t>(
                constantOf(line.args[1], loc));
            Instruction ins;
            ins.op = Opcode::Fence;
            ins.atomic = true;
            ins.order = orderFromSem(sem, loc);
            ins.scope = scopeFromSpv(memScope, loc);
            ins.loc = loc;
            applySemStorage(ins, sem);
            emit(ins);
            return;
        }
        if (op == "OpIAdd" || op == "OpISub") {
            Instruction ins;
            ins.op = Opcode::AddReg;
            ins.dst = "r" + line.result.substr(1);
            ins.branchLhs = value(line.args[1], loc);
            Operand rhs = value(line.args[2], loc);
            if (op == "OpISub") {
                if (rhs.isReg())
                    fatalAt(loc, "OpISub needs a constant rhs");
                rhs.value = -rhs.value;
            }
            ins.src = rhs;
            ins.loc = loc;
            emit(ins);
            return;
        }
        if (op == "OpCopyObject") {
            Instruction ins;
            ins.op = Opcode::Mov;
            ins.dst = "r" + line.result.substr(1);
            ins.src = value(line.args[1], loc);
            ins.loc = loc;
            emit(ins);
            return;
        }
        if (op == "OpReturn" || op == "OpSelectionMerge" ||
            op == "OpLoopMerge" || op == "OpNop" || op == "OpUndef") {
            return;
        }
        unsupported(line);
    }

    void translateAtomic(const SpvLine &line)
    {
        SourceLoc loc = line.loc;
        const std::string &op = line.op;
        bool isStore = op == "OpAtomicStore";
        // OpAtomicStore: ptr scope sem value (no result / type arg).
        // Others: <type> ptr scope sem [sem2] [value ...]
        size_t base = isStore ? 0 : 1;
        const SpvVariable &var = variable(line.args[base + 0], loc);
        if (!var.storageClass)
            fatalAt(loc, "atomic on register-promoted variable");
        int64_t scope = constantOf(line.args[base + 1], loc);
        uint32_t sem = static_cast<uint32_t>(
            constantOf(line.args[base + 2], loc));

        Instruction ins;
        ins.atomic = true;
        ins.location = var.name;
        ins.storageClass = var.storageClass;
        ins.scope = scopeFromSpv(scope, loc);
        ins.order = orderFromSem(sem, loc);
        ins.semAv = (sem & kSemMakeAvailable) != 0;
        ins.semVis = (sem & kSemMakeVisible) != 0;
        ins.loc = loc;

        if (op == "OpAtomicLoad") {
            ins.op = Opcode::Load;
            ins.dst = "r" + line.result.substr(1);
        } else if (op == "OpAtomicStore") {
            ins.op = Opcode::Store;
            ins.src = value(line.args[3], loc);
        } else if (op == "OpAtomicIAdd" || op == "OpAtomicExchange") {
            ins.op = Opcode::Rmw;
            ins.rmwKind = op == "OpAtomicIAdd" ? RmwKind::Add
                                               : RmwKind::Exchange;
            ins.dst = "r" + line.result.substr(1);
            ins.src = value(line.args[4], loc);
        } else { // OpAtomicCompareExchange: ptr scope semEq semNeq val cmp
            ins.op = Opcode::Rmw;
            ins.rmwKind = RmwKind::Cas;
            ins.dst = "r" + line.result.substr(1);
            ins.src2 = value(line.args[5], loc); // new value
            ins.src = value(line.args[6], loc);  // comparator
        }
        emit(ins);
    }

    struct Compare {
        bool equal;
        Operand lhs, rhs;
    };

    const SpvModule &module_;
    int threadIdx_;
    Grid grid_;
    std::vector<Instruction> out_;
    std::map<std::string, Compare> compares_;
    int barrierCounter_ = 0;
};

} // namespace

prog::Program
loadSpirvProgram(std::string_view source, const Grid *gridOverride)
{
    ModuleParser parser(source);
    parser.parse();
    SpvModule module = parser.take();
    Grid grid = gridOverride ? *gridOverride : module.grid;

    Program program;
    program.arch = prog::Arch::Vulkan;
    program.meta = module.meta;

    for (const auto &[id, var] : module.variables) {
        (void)id;
        if (!var.storageClass || var.builtin != Builtin::None)
            continue;
        prog::VarDecl decl;
        decl.name = var.name;
        decl.storageClass = *var.storageClass;
        program.vars.push_back(std::move(decl));
    }

    for (int t = 0; t < grid.totalThreads(); ++t) {
        prog::Thread thread;
        thread.name = "P" + std::to_string(t);
        thread.placement.sg = 0;
        thread.placement.wg = t / grid.threadsPerWorkgroup;
        thread.placement.qf = 0;
        thread.instrs = ThreadBuilder(module, t, grid).build();
        program.threads.push_back(std::move(thread));
    }

    if (!module.assertText.empty()) {
        std::string text(trim(module.assertText));
        prog::AssertKind kind = prog::AssertKind::Exists;
        if (startsWith(text, "~exists")) {
            kind = prog::AssertKind::NotExists;
            text = text.substr(7);
        } else if (startsWith(text, "forall")) {
            kind = prog::AssertKind::Forall;
            text = text.substr(6);
        } else if (startsWith(text, "exists")) {
            text = text.substr(6);
        }
        std::string_view inner = trim(text);
        if (!inner.empty() && inner.front() == '(' && inner.back() == ')')
            inner = inner.substr(1, inner.size() - 2);
        program.assertKind = kind;
        program.assertion = litmus::parseCondition(inner);
    }

    program.validate();
    return program;
}

prog::Program
loadSpirvFile(const std::string &path, const Grid *gridOverride)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open SPIR-V file: ", path);
    std::ostringstream buf;
    buf << in.rdbuf();
    prog::Program program = loadSpirvProgram(buf.str(), gridOverride);
    if (program.name.empty()) {
        size_t slash = path.find_last_of('/');
        program.name = path.substr(slash == std::string::npos ? 0
                                                              : slash + 1);
    }
    return program;
}

} // namespace gpumc::spirv
