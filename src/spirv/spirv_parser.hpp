/**
 * @file
 * Front-end for a subset of disassembled textual SPIR-V (the paper's
 * third front-end, Section 6.1). A compute kernel is parsed once and
 * instantiated for a thread grid ("X.Y" = X threads per workgroup, Y
 * workgroups, Table 7), producing a gpumc program under the Vulkan
 * model.
 *
 * Supported instructions: OpTypeInt/Bool/Pointer/Void/Function,
 * OpConstant(True/False), OpVariable (StorageBuffer/Uniform ->
 * storage class 0, Workgroup -> storage class 1, Function/Private ->
 * promoted to registers), OpName, OpDecorate BuiltIn
 * (LocalInvocationIndex, WorkgroupId, GlobalInvocationIndex),
 * OpLoad/OpStore (with NonPrivatePointer / MakePointerAvailable /
 * MakePointerVisible), OpAtomicLoad/Store/IAdd/Exchange/
 * CompareExchange, OpControlBarrier, OpMemoryBarrier, OpIAdd, OpISub,
 * OpCopyObject, OpIEqual/OpINotEqual, OpLabel, OpBranch,
 * OpBranchConditional, OpSelectionMerge/OpLoopMerge (ignored),
 * OpReturn/OpFunctionEnd.
 *
 * Directives in comments:
 *   ; @grid 2.2            threads-per-workgroup . workgroups
 *   ; @expect drf=racefree (same keys as litmus tests)
 *   ; @assert exists (P0:r15 == 1)
 */

#ifndef GPUMC_SPIRV_SPIRV_PARSER_HPP
#define GPUMC_SPIRV_SPIRV_PARSER_HPP

#include <string>
#include <string_view>

#include "program/program.hpp"

namespace gpumc::spirv {

struct Grid {
    int threadsPerWorkgroup = 1;
    int workgroups = 1;

    int totalThreads() const { return threadsPerWorkgroup * workgroups; }
};

/**
 * Parse a SPIR-V kernel and instantiate it for the given grid. If
 * @p gridOverride is null, the `@grid` directive is used (default 1.1).
 * @throws FatalError on unsupported or malformed input.
 */
prog::Program loadSpirvProgram(std::string_view source,
                               const Grid *gridOverride = nullptr);

/** Load from a file (.spv.dis / .spvasm). */
prog::Program loadSpirvFile(const std::string &path,
                            const Grid *gridOverride = nullptr);

} // namespace gpumc::spirv

#endif // GPUMC_SPIRV_SPIRV_PARSER_HPP
