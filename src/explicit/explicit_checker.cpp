#include "explicit/explicit_checker.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "analysis/relation_analysis.hpp"
#include "cat/evaluator.hpp"
#include "program/event.hpp"
#include "program/unroller.hpp"
#include "support/stats.hpp"

namespace gpumc::expl {

using cat::PairSet;
using prog::Event;
using prog::EventKind;
using prog::Opcode;
using prog::RmwKind;

namespace {

constexpr int kValueBits = 8;
constexpr int64_t kValueMask = (1 << kValueBits) - 1;

/** ExecutionView over a fully-materialized behaviour. */
class ExplicitView : public cat::ExecutionView {
  public:
    ExplicitView(const prog::UnrolledProgram &up,
                 std::map<std::string, PairSet> rels)
        : up_(&up), rels_(std::move(rels))
    {
    }

    int numEvents() const override { return up_->numEvents(); }

    bool inSet(int event, const std::string &tag) const override
    {
        return prog::eventHasTag(up_->events[event], tag);
    }

    const PairSet &baseRel(const std::string &name) const override
    {
        auto it = rels_.find(name);
        GPUMC_ASSERT(it != rels_.end(), "unknown base relation ", name);
        return it->second;
    }

  private:
    const prog::UnrolledProgram *up_;
    std::map<std::string, PairSet> rels_;
};

} // namespace

struct ExplicitChecker::Impl {
    const prog::Program &program;
    const cat::CatModel &model;
    ExplicitOptions opts;

    prog::UnrolledProgram up;
    analysis::ExecAnalysis exec;
    analysis::RelationAnalysis ra;

    std::vector<int> reads;                    // read event ids
    std::vector<std::vector<int>> candidates;  // rf candidates per read
    std::vector<int> rfChoice;                 // current assignment

    // Simulation outputs per rf assignment.
    std::map<int, int64_t> values;             // event -> value
    std::map<int, int64_t> barrierIds;         // barrier event -> id
    std::map<std::string, int64_t> finalRegs;  // "P0:r1" -> value

    Stopwatch watch;
    ExplicitResult result;
    bool condTrueSomewhere = false;
    bool condFalseSomewhere = false;

    Impl(const prog::Program &p, const cat::CatModel &m,
         ExplicitOptions o)
        : program(p), model(m), opts(o), up(prog::unroll(p, 1)),
          exec(up), ra(exec, m)
    {
    }

    bool overBudget()
    {
        if (opts.maxCandidates &&
            result.candidatesExplored >= opts.maxCandidates) {
            result.timedOut = true;
            return true;
        }
        if (opts.timeoutMs > 0 && watch.elapsedMs() > opts.timeoutMs) {
            result.timedOut = true;
            return true;
        }
        return false;
    }

    // ---- support checks -------------------------------------------------

    bool checkSupported()
    {
        if (!program.isStraightLine()) {
            result.supported = false;
            result.unsupportedReason = "control-flow instructions";
            return false;
        }
        for (const prog::Thread &t : program.threads) {
            for (const prog::Instruction &ins : t.instrs) {
                if (ins.op == Opcode::Rmw &&
                    ins.rmwKind == RmwKind::Cas) {
                    result.supported = false;
                    result.unsupportedReason = "compare-and-swap";
                    return false;
                }
            }
        }
        return true;
    }

    bool condUsesMemory(const prog::Cond &cond) const
    {
        switch (cond.kind) {
          case prog::Cond::Kind::And:
          case prog::Cond::Kind::Or:
            return condUsesMemory(*cond.lhs) || condUsesMemory(*cond.rhs);
          case prog::Cond::Kind::Not:
            return condUsesMemory(*cond.lhs);
          case prog::Cond::Kind::Eq:
          case prog::Cond::Kind::Ne:
            return cond.tl.kind == prog::CondTerm::Kind::Mem ||
                   cond.tr.kind == prog::CondTerm::Kind::Mem;
          case prog::Cond::Kind::True:
            return false;
        }
        return false;
    }

    // ---- value simulation -----------------------------------------------

    /**
     * Simulate all threads given the current rf assignment. Returns
     * false if the values could not be resolved consistently (only
     * possible for cyclic value dependencies after enumeration).
     */
    bool simulate()
    {
        values.clear();
        barrierIds.clear();
        finalRegs.clear();
        for (int e = 0; e < up.numInitEvents; ++e)
            values[e] = up.events[e].initValue & kValueMask;

        // Fix-point passes; each pass may resolve more reads.
        bool changed = true;
        int guardPasses = up.numEvents() + 2;
        while (changed && guardPasses-- > 0) {
            changed = false;
            simulatePass(changed);
        }

        // Unresolved reads form value-dependency cycles; enumerate them
        // over the program's value universe.
        std::vector<int> unresolved;
        for (size_t i = 0; i < reads.size(); ++i) {
            if (!values.count(reads[i]))
                unresolved.push_back(static_cast<int>(i));
        }
        if (unresolved.empty())
            return finishSimulation();
        return enumerateUnresolved(unresolved, 0);
    }

    bool enumerateUnresolved(const std::vector<int> &unresolved,
                             size_t index)
    {
        if (index == unresolved.size())
            return finishSimulation();
        for (int64_t v : program.valueUniverse()) {
            values[reads[unresolved[index]]] = v & kValueMask;
            if (enumerateUnresolved(unresolved, index + 1))
                return true;
        }
        values.erase(reads[unresolved[index]]);
        return false;
    }

    /** Validate rf value-consistency and capture final registers. */
    bool finishSimulation()
    {
        bool changed = true;
        simulatePass(changed); // recompute with all reads bound
        for (size_t i = 0; i < reads.size(); ++i) {
            int r = reads[i], w = rfChoice[i];
            if (!values.count(r) || !values.count(w) ||
                values[r] != values[w]) {
                return false;
            }
        }
        return true;
    }

    void simulatePass(bool &changed)
    {
        for (int t = 0; t < program.numThreads(); ++t) {
            std::map<std::string, std::optional<int64_t>> env;
            auto evalOp =
                [&](const prog::Operand &op) -> std::optional<int64_t> {
                if (!op.isReg())
                    return op.value & kValueMask;
                auto it = env.find(op.reg);
                if (it == env.end())
                    return 0; // unassigned registers read 0
                return it->second;
            };
            auto setValue = [&](int event, std::optional<int64_t> v) {
                if (!v)
                    return;
                int64_t masked = *v & kValueMask;
                auto it = values.find(event);
                if (it == values.end() || it->second != masked) {
                    values[event] = masked;
                    changed = true;
                }
            };

            for (int idx : up.threadNodes[t]) {
                const prog::UNode &node = up.nodes[idx];
                if (node.special != prog::NodeSpecial::None || !node.instr)
                    continue;
                const prog::Instruction &ins = *node.instr;
                switch (ins.op) {
                  case Opcode::Load: {
                    // The read's value comes from its rf source.
                    auto pos = std::find(reads.begin(), reads.end(),
                                         node.readEvent);
                    int w = rfChoice[pos - reads.begin()];
                    std::optional<int64_t> v;
                    if (values.count(node.readEvent)) {
                        v = values[node.readEvent]; // enumerated cycle
                    } else if (values.count(w)) {
                        v = values[w];
                        setValue(node.readEvent, v);
                    }
                    env[ins.dst] = v;
                    break;
                  }
                  case Opcode::Store:
                    setValue(node.writeEvent, evalOp(ins.src));
                    break;
                  case Opcode::Rmw: {
                    auto pos = std::find(reads.begin(), reads.end(),
                                         node.readEvent);
                    int w = rfChoice[pos - reads.begin()];
                    std::optional<int64_t> old;
                    if (values.count(node.readEvent))
                        old = values[node.readEvent];
                    else if (values.count(w)) {
                        old = values[w];
                        setValue(node.readEvent, old);
                    }
                    std::optional<int64_t> operand = evalOp(ins.src);
                    if (ins.rmwKind == RmwKind::Add) {
                        if (old && operand)
                            setValue(node.writeEvent, *old + *operand);
                    } else { // Exchange
                        setValue(node.writeEvent, operand);
                    }
                    env[ins.dst] = old;
                    break;
                  }
                  case Opcode::Barrier: {
                    std::optional<int64_t> id = evalOp(ins.barrierId);
                    if (id)
                        barrierIds[node.eventId] = *id & kValueMask;
                    break;
                  }
                  case Opcode::Mov:
                    env[ins.dst] = evalOp(ins.src);
                    break;
                  case Opcode::AddReg: {
                    auto a = evalOp(ins.branchLhs), b = evalOp(ins.src);
                    env[ins.dst] = (a && b)
                        ? std::optional<int64_t>((*a + *b) & kValueMask)
                        : std::nullopt;
                    break;
                  }
                  default:
                    break;
                }
            }
            for (const auto &[reg, v] : env) {
                if (v) {
                    finalRegs[program.threads[t].name + ":" + reg] = *v;
                }
            }
        }
    }

    // ---- coherence enumeration -------------------------------------------

    /** Writes per location (non-init). */
    std::map<int, std::vector<int>> writesPerLoc() const
    {
        std::map<int, std::vector<int>> out;
        for (int e = up.numInitEvents; e < up.numEvents(); ++e) {
            const Event &ev = up.events[e];
            if (ev.kind == EventKind::Write)
                out[ev.physLoc].push_back(e);
        }
        return out;
    }

    PairSet initCoEdges() const
    {
        PairSet co;
        for (int i = 0; i < up.numInitEvents; ++i) {
            for (int e = up.numInitEvents; e < up.numEvents(); ++e) {
                const Event &ev = up.events[e];
                if (ev.kind == EventKind::Write &&
                    ev.physLoc == up.events[i].physLoc) {
                    co.add(i, e);
                }
            }
        }
        return co;
    }

    /** Enumerate total co (Vulkan), invoking fn for each. */
    template <typename Fn>
    bool enumerateTotalCo(Fn &&fn)
    {
        std::map<int, std::vector<int>> perLoc = writesPerLoc();
        std::vector<std::vector<std::vector<int>>> perms; // per loc
        for (auto &[loc, writes] : perLoc) {
            (void)loc;
            std::sort(writes.begin(), writes.end());
            std::vector<std::vector<int>> locPerms;
            do {
                locPerms.push_back(writes);
            } while (std::next_permutation(writes.begin(), writes.end()));
            perms.push_back(std::move(locPerms));
        }
        std::vector<size_t> pick(perms.size(), 0);
        while (true) {
            PairSet co = initCoEdges();
            for (size_t k = 0; k < perms.size(); ++k) {
                const std::vector<int> &order = perms[k][pick[k]];
                for (size_t i = 0; i < order.size(); ++i) {
                    for (size_t j = i + 1; j < order.size(); ++j)
                        co.add(order[i], order[j]);
                }
            }
            if (!fn(co))
                return false;
            // Advance the mixed-radix counter.
            size_t k = 0;
            while (k < perms.size() && ++pick[k] == perms[k].size()) {
                pick[k] = 0;
                k++;
            }
            if (k == perms.size())
                return true;
        }
    }

    /** Enumerate partial transitive co (PTX), invoking fn for each. */
    template <typename Fn>
    bool enumeratePartialCo(Fn &&fn)
    {
        std::map<int, std::vector<int>> perLoc = writesPerLoc();
        std::vector<std::pair<int, int>> pairs; // unordered write pairs
        for (auto &[loc, writes] : perLoc) {
            (void)loc;
            for (size_t i = 0; i < writes.size(); ++i) {
                for (size_t j = i + 1; j < writes.size(); ++j)
                    pairs.push_back({writes[i], writes[j]});
            }
        }
        std::vector<int> choice(pairs.size(), 0); // 0 unordered, 1 <, 2 >
        while (true) {
            PairSet co = initCoEdges();
            for (size_t k = 0; k < pairs.size(); ++k) {
                if (choice[k] == 1)
                    co.add(pairs[k].first, pairs[k].second);
                else if (choice[k] == 2)
                    co.add(pairs[k].second, pairs[k].first);
            }
            PairSet closed = co.transitiveClosure();
            // Skip assignments whose closure contradicts or duplicates
            // another assignment (antisymmetry / unordered violated).
            bool canonical = true;
            for (size_t k = 0; k < pairs.size() && canonical; ++k) {
                bool fwd = closed.contains(pairs[k].first,
                                           pairs[k].second);
                bool bwd = closed.contains(pairs[k].second,
                                           pairs[k].first);
                if (fwd && bwd)
                    canonical = false; // cyclic: invalid
                if (choice[k] == 0 && (fwd || bwd))
                    canonical = false; // duplicate of an ordered choice
            }
            if (canonical && !fn(closed))
                return false;
            size_t k = 0;
            while (k < choice.size() && ++choice[k] == 3) {
                choice[k] = 0;
                k++;
            }
            if (k == choice.size())
                return true;
        }
    }

    /** Enumerate sync_fence total orders (PTX SC fences). */
    template <typename Fn>
    bool enumerateSyncFence(Fn &&fn)
    {
        std::vector<int> fences;
        for (int e = 0; e < up.numEvents(); ++e) {
            const Event &ev = up.events[e];
            if (ev.kind == EventKind::Fence && ev.tags.count("SC"))
                fences.push_back(e);
        }
        if (fences.empty() || program.arch != prog::Arch::Ptx) {
            PairSet empty;
            return fn(empty);
        }
        const PairSet &ub = ra.baseBounds("sync_fence").ub;
        std::sort(fences.begin(), fences.end());
        do {
            PairSet sf;
            for (size_t i = 0; i < fences.size(); ++i) {
                for (size_t j = i + 1; j < fences.size(); ++j) {
                    if (ub.contains(fences[i], fences[j]))
                        sf.add(fences[i], fences[j]);
                }
            }
            if (!fn(sf))
                return false;
        } while (std::next_permutation(fences.begin(), fences.end()));
        return true;
    }

    // ---- behaviour evaluation --------------------------------------------

    std::map<std::string, PairSet> staticRels()
    {
        std::map<std::string, PairSet> rels;
        for (const char *name :
             {"po", "loc", "vloc", "id", "int", "ext", "addr", "data",
              "ctrl", "rmw", "sr", "scta", "ssg", "swg", "sqf", "ssw"}) {
            rels[name] = ra.baseBounds(name).ub;
        }
        // Barrier relations from the concrete runtime ids.
        for (const char *name : {"syncbar", "sync_barrier"}) {
            PairSet out;
            for (auto [a, b] : ra.baseBounds(name).ub.pairs()) {
                auto ia = barrierIds.find(a), ib = barrierIds.find(b);
                if (ia != barrierIds.end() && ib != barrierIds.end() &&
                    ia->second == ib->second) {
                    out.add(a, b);
                }
            }
            rels[name] = std::move(out);
        }
        return rels;
    }

    int64_t evalTerm(const prog::CondTerm &term, const PairSet &co)
    {
        switch (term.kind) {
          case prog::CondTerm::Kind::Const:
            return term.value;
          case prog::CondTerm::Kind::Reg: {
            std::string key =
                "P" + std::to_string(term.thread) + ":" + term.name;
            auto it = finalRegs.find(key);
            return it == finalRegs.end() ? 0 : it->second;
          }
          case prog::CondTerm::Kind::Mem: {
            int loc = program.physLoc(term.name);
            // co-maximal executed write to loc.
            for (int e = 0; e < up.numEvents(); ++e) {
                const Event &ev = up.events[e];
                if (ev.kind != EventKind::Write || ev.physLoc != loc)
                    continue;
                bool maximal = true;
                for (auto [a, b] : co.pairs()) {
                    (void)b;
                    if (a == e)
                        maximal = false;
                }
                if (maximal)
                    return values.count(e) ? values[e] : 0;
            }
            return 0;
          }
        }
        GPUMC_PANIC("unhandled term");
    }

    /** Evaluate one complete behaviour candidate. */
    bool evaluateBehaviour(const PairSet &co, const PairSet &sf)
    {
        result.candidatesExplored++;
        if (overBudget())
            return false;

        std::map<std::string, PairSet> rels = staticRels();
        PairSet rf;
        for (size_t i = 0; i < reads.size(); ++i)
            rf.add(rfChoice[i], reads[i]);
        rels["rf"] = std::move(rf);
        rels["co"] = co;
        rels["sync_fence"] = sf;

        ExplicitView view(up, std::move(rels));
        cat::RelationEvaluator evaluator(model, view);
        if (!evaluator.consistent())
            return true;

        auto valuation = [&](const prog::CondTerm &term) {
            return evalTerm(term, co);
        };
        if (program.filter &&
            !prog::evalCond(*program.filter, valuation)) {
            return true;
        }
        result.consistentBehaviours++;

        bool cond = !program.assertion ||
                    prog::evalCond(*program.assertion, valuation);
        (cond ? condTrueSomewhere : condFalseSomewhere) = true;

        if (!result.raceFound) {
            for (const cat::AxiomCheck &check : evaluator.evalFlags()) {
                if (!check.holds)
                    result.raceFound = true;
            }
        }
        return true;
    }

    // ---- top-level enumeration --------------------------------------------

    bool enumerateRf(size_t readIndex)
    {
        if (readIndex == reads.size()) {
            if (!simulate())
                return true; // value-inconsistent rf choice: skip
            auto withCo = [&](const PairSet &co) {
                return enumerateSyncFence([&](const PairSet &sf) {
                    return evaluateBehaviour(co, sf);
                });
            };
            if (program.arch == prog::Arch::Ptx)
                return enumeratePartialCo(withCo);
            return enumerateTotalCo(withCo);
        }
        for (int w : candidates[readIndex]) {
            rfChoice[readIndex] = w;
            if (!enumerateRf(readIndex + 1))
                return false;
        }
        return true;
    }

    ExplicitResult run()
    {
        if (!checkSupported())
            return result;
        if (program.assertion && condUsesMemory(*program.assertion) &&
            program.arch == prog::Arch::Ptx) {
            result.supported = false;
            result.unsupportedReason =
                "memory-valued condition under partial coherence";
            return result;
        }

        for (int e = up.numInitEvents; e < up.numEvents(); ++e) {
            if (up.events[e].kind == EventKind::Read)
                reads.push_back(e);
        }
        const PairSet &rfUb = ra.baseBounds("rf").ub;
        candidates.resize(reads.size());
        for (size_t i = 0; i < reads.size(); ++i) {
            for (auto [w, r] : rfUb.pairs()) {
                if (r == reads[i])
                    candidates[i].push_back(w);
            }
        }
        rfChoice.assign(reads.size(), -1);

        enumerateRf(0);

        switch (program.assertKind) {
          case prog::AssertKind::Exists:
            result.conditionHolds = condTrueSomewhere;
            break;
          case prog::AssertKind::NotExists:
            result.conditionHolds = !condTrueSomewhere;
            break;
          case prog::AssertKind::Forall:
            result.conditionHolds = !condFalseSomewhere;
            break;
        }
        result.timeMs = watch.elapsedMs();
        return result;
    }
};

ExplicitChecker::ExplicitChecker(const prog::Program &program,
                                 const cat::CatModel &model,
                                 ExplicitOptions options)
    : impl_(new Impl(program, model, options))
{
}

ExplicitChecker::~ExplicitChecker()
{
    delete impl_;
}

ExplicitResult
ExplicitChecker::run()
{
    return impl_->run();
}

} // namespace gpumc::expl
