#include "explicit/explicit_checker.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "analysis/concrete_execution.hpp"
#include "analysis/relation_analysis.hpp"
#include "cat/evaluator.hpp"
#include "program/event.hpp"
#include "program/unroller.hpp"
#include "support/stats.hpp"

namespace gpumc::expl {

using cat::PairSet;
using prog::Event;
using prog::EventKind;
using prog::Opcode;
using prog::RmwKind;

struct ExplicitChecker::Impl {
    const prog::Program &program;
    const cat::CatModel &model;
    ExplicitOptions opts;

    prog::UnrolledProgram up;
    analysis::ExecAnalysis exec;
    analysis::RelationAnalysis ra;
    analysis::ValueSimulation sim;

    std::vector<int> reads;                    // read event ids
    std::vector<std::vector<int>> candidates;  // rf candidates per read
    std::vector<int> rfChoice;                 // current assignment

    Stopwatch watch;
    ExplicitResult result;
    bool condTrueSomewhere = false;
    bool condFalseSomewhere = false;

    Impl(const prog::Program &p, const cat::CatModel &m,
         ExplicitOptions o)
        : program(p), model(m), opts(o), up(prog::unroll(p, 1)),
          exec(up), ra(exec, m), sim(p, up)
    {
    }

    bool overBudget()
    {
        if (opts.maxCandidates &&
            result.candidatesExplored >= opts.maxCandidates) {
            result.timedOut = true;
            return true;
        }
        if (opts.timeoutMs > 0 && watch.elapsedMs() > opts.timeoutMs) {
            result.timedOut = true;
            return true;
        }
        return false;
    }

    // ---- support checks -------------------------------------------------

    bool checkSupported()
    {
        if (!program.isStraightLine()) {
            result.supported = false;
            result.unsupportedReason = "control-flow instructions";
            return false;
        }
        for (const prog::Thread &t : program.threads) {
            for (const prog::Instruction &ins : t.instrs) {
                if (ins.op == Opcode::Rmw &&
                    ins.rmwKind == RmwKind::Cas) {
                    result.supported = false;
                    result.unsupportedReason = "compare-and-swap";
                    return false;
                }
            }
        }
        return true;
    }

    // ---- coherence enumeration -------------------------------------------

    /**
     * Enumerate total co (Vulkan), invoking fn for each. Permutations
     * are generated lazily — each location holds one current order
     * advanced in place by next_permutation under a mixed-radix carry —
     * so memory stays O(#writes) and the wall-clock budget is
     * re-checked between candidates instead of after materializing the
     * whole factorial product.
     */
    template <typename Fn>
    bool enumerateTotalCo(Fn &&fn)
    {
        std::map<int, std::vector<int>> perLocMap =
            analysis::concreteWritesPerLoc(up);
        std::vector<std::vector<int>> perLoc;
        for (auto &[loc, writes] : perLocMap) {
            (void)loc;
            std::sort(writes.begin(), writes.end());
            perLoc.push_back(std::move(writes));
        }
        PairSet initCo = analysis::concreteInitCoEdges(up);
        while (true) {
            if (overBudget())
                return false;
            PairSet co = initCo;
            for (const std::vector<int> &order : perLoc) {
                for (size_t i = 0; i < order.size(); ++i) {
                    for (size_t j = i + 1; j < order.size(); ++j)
                        co.add(order[i], order[j]);
                }
            }
            if (!fn(co))
                return false;
            // Advance: next_permutation wraps a digit back to sorted
            // order and carries into the next location.
            size_t k = 0;
            while (k < perLoc.size() &&
                   !std::next_permutation(perLoc[k].begin(),
                                          perLoc[k].end())) {
                k++;
            }
            if (k == perLoc.size())
                return true;
        }
    }

    /** Enumerate partial transitive co (PTX), invoking fn for each. */
    template <typename Fn>
    bool enumeratePartialCo(Fn &&fn)
    {
        std::map<int, std::vector<int>> perLoc =
            analysis::concreteWritesPerLoc(up);
        std::vector<std::pair<int, int>> pairs; // unordered write pairs
        for (auto &[loc, writes] : perLoc) {
            (void)loc;
            for (size_t i = 0; i < writes.size(); ++i) {
                for (size_t j = i + 1; j < writes.size(); ++j)
                    pairs.push_back({writes[i], writes[j]});
            }
        }
        PairSet initCo = analysis::concreteInitCoEdges(up);
        std::vector<int> choice(pairs.size(), 0); // 0 unordered, 1 <, 2 >
        while (true) {
            if (overBudget())
                return false;
            PairSet co = initCo;
            for (size_t k = 0; k < pairs.size(); ++k) {
                if (choice[k] == 1)
                    co.add(pairs[k].first, pairs[k].second);
                else if (choice[k] == 2)
                    co.add(pairs[k].second, pairs[k].first);
            }
            PairSet closed = co.transitiveClosure();
            // Skip assignments whose closure contradicts or duplicates
            // another assignment (antisymmetry / unordered violated).
            bool canonical = true;
            for (size_t k = 0; k < pairs.size() && canonical; ++k) {
                bool fwd = closed.contains(pairs[k].first,
                                           pairs[k].second);
                bool bwd = closed.contains(pairs[k].second,
                                           pairs[k].first);
                if (fwd && bwd)
                    canonical = false; // cyclic: invalid
                if (choice[k] == 0 && (fwd || bwd))
                    canonical = false; // duplicate of an ordered choice
            }
            if (canonical && !fn(closed))
                return false;
            size_t k = 0;
            while (k < choice.size() && ++choice[k] == 3) {
                choice[k] = 0;
                k++;
            }
            if (k == choice.size())
                return true;
        }
    }

    /**
     * Enumerate sync_fence total orders (PTX SC fences). Distinct
     * fence permutations collapse to identical sf sets whenever the
     * static upper bound prunes pairs; each distinct set is evaluated
     * exactly once.
     */
    template <typename Fn>
    bool enumerateSyncFence(Fn &&fn)
    {
        std::vector<int> fences;
        for (int e = 0; e < up.numEvents(); ++e) {
            const Event &ev = up.events[e];
            if (ev.kind == EventKind::Fence && ev.tags.count("SC"))
                fences.push_back(e);
        }
        if (fences.empty() || program.arch != prog::Arch::Ptx) {
            PairSet empty;
            return fn(empty);
        }
        const PairSet &ub = ra.baseBounds("sync_fence").ub;
        std::sort(fences.begin(), fences.end());
        std::set<std::vector<uint64_t>> seen;
        do {
            PairSet sf;
            for (size_t i = 0; i < fences.size(); ++i) {
                for (size_t j = i + 1; j < fences.size(); ++j) {
                    if (ub.contains(fences[i], fences[j]))
                        sf.add(fences[i], fences[j]);
                }
            }
            std::vector<uint64_t> key;
            key.reserve(sf.size());
            for (auto [a, b] : sf.pairs())
                key.push_back(PairSet::key(a, b));
            std::sort(key.begin(), key.end());
            if (!seen.insert(std::move(key)).second)
                continue;
            if (!fn(sf))
                return false;
        } while (std::next_permutation(fences.begin(), fences.end()));
        return true;
    }

    // ---- behaviour evaluation --------------------------------------------

    /** Evaluate one complete behaviour candidate. */
    bool evaluateBehaviour(const PairSet &co, const PairSet &sf)
    {
        result.candidatesExplored++;
        if (overBudget())
            return false;

        std::map<std::string, PairSet> rels =
            analysis::concreteStaticRels(ra, sim.barrierIds());
        PairSet rf;
        for (size_t i = 0; i < reads.size(); ++i)
            rf.add(rfChoice[i], reads[i]);
        rels["rf"] = std::move(rf);
        rels["co"] = co;
        rels["sync_fence"] = sf;

        analysis::ConcreteView view(up, std::move(rels));
        cat::RelationEvaluator evaluator(model, view);
        if (!evaluator.consistent())
            return true;

        auto valuation = [&](const prog::CondTerm &term) {
            return sim.evalTerm(term, co);
        };
        if (program.filter &&
            !prog::evalCond(*program.filter, valuation)) {
            return true;
        }
        result.consistentBehaviours++;

        bool cond = !program.assertion ||
                    prog::evalCond(*program.assertion, valuation);
        (cond ? condTrueSomewhere : condFalseSomewhere) = true;

        if (!result.raceFound) {
            for (const cat::AxiomCheck &check : evaluator.evalFlags()) {
                if (!check.holds)
                    result.raceFound = true;
            }
        }
        return true;
    }

    // ---- top-level enumeration --------------------------------------------

    bool enumerateRf(size_t readIndex)
    {
        if (readIndex == reads.size()) {
            if (!sim.simulate(reads, rfChoice))
                return true; // value-inconsistent rf choice: skip
            auto withCo = [&](const PairSet &co) {
                return enumerateSyncFence([&](const PairSet &sf) {
                    return evaluateBehaviour(co, sf);
                });
            };
            if (program.arch == prog::Arch::Ptx)
                return enumeratePartialCo(withCo);
            return enumerateTotalCo(withCo);
        }
        for (int w : candidates[readIndex]) {
            rfChoice[readIndex] = w;
            if (!enumerateRf(readIndex + 1))
                return false;
        }
        return true;
    }

    ExplicitResult run()
    {
        if (!checkSupported())
            return result;
        if (program.assertion &&
            analysis::condUsesMemory(*program.assertion) &&
            program.arch == prog::Arch::Ptx) {
            result.supported = false;
            result.unsupportedReason =
                "memory-valued condition under partial coherence";
            return result;
        }

        for (int e = up.numInitEvents; e < up.numEvents(); ++e) {
            if (up.events[e].kind == EventKind::Read)
                reads.push_back(e);
        }
        const PairSet &rfUb = ra.baseBounds("rf").ub;
        candidates.resize(reads.size());
        for (size_t i = 0; i < reads.size(); ++i) {
            for (auto [w, r] : rfUb.pairs()) {
                if (r == reads[i])
                    candidates[i].push_back(w);
            }
        }
        rfChoice.assign(reads.size(), -1);

        enumerateRf(0);

        switch (program.assertKind) {
          case prog::AssertKind::Exists:
            result.conditionHolds = condTrueSomewhere;
            break;
          case prog::AssertKind::NotExists:
            result.conditionHolds = !condTrueSomewhere;
            break;
          case prog::AssertKind::Forall:
            result.conditionHolds = !condFalseSomewhere;
            break;
        }
        result.timeMs = watch.elapsedMs();
        return result;
    }
};

ExplicitChecker::ExplicitChecker(const prog::Program &program,
                                 const cat::CatModel &model,
                                 ExplicitOptions options)
    : impl_(new Impl(program, model, options))
{
}

ExplicitChecker::~ExplicitChecker()
{
    delete impl_;
}

ExplicitResult
ExplicitChecker::run()
{
    return impl_->run();
}

} // namespace gpumc::expl
