/**
 * @file
 * Explicit-state consistency checker — the stand-in for the Alloy-based
 * tools the paper compares against (Section 6.1, Table 5, Fig. 15).
 *
 * It enumerates all candidate behaviours (rf assignments, coherence
 * orders, SC-fence orders) of a *straight-line* program and evaluates
 * the `.cat` model concretely on each. Like the Alloy tools it:
 *  - supports no control-flow instructions (and no CAS),
 *  - cannot check liveness,
 *  - blows up exponentially with the number of events.
 * Those limitations are intentional: they reproduce the paper's
 * comparison. The checker doubles as a ground-truth oracle for
 * cross-validating the SMT engine on small tests.
 */

#ifndef GPUMC_EXPLICIT_EXPLICIT_CHECKER_HPP
#define GPUMC_EXPLICIT_EXPLICIT_CHECKER_HPP

#include <cstdint>
#include <optional>
#include <string>

#include "cat/model.hpp"
#include "program/program.hpp"

namespace gpumc::expl {

struct ExplicitOptions {
    /** Abort enumeration after this many candidate behaviours (0 = no
     *  limit). The result is then marked timedOut. */
    uint64_t maxCandidates = 0;
    /** Wall-clock budget in milliseconds (0 = no limit). */
    double timeoutMs = 0.0;
};

struct ExplicitResult {
    /** False when the test uses features the checker cannot handle
     *  (control flow, CAS, memory-valued conditions under partial co). */
    bool supported = true;
    std::string unsupportedReason;

    bool timedOut = false;

    /** Same semantics as Verifier safety: the quantified litmus
     *  statement evaluated over all consistent behaviours. */
    bool conditionHolds = false;

    /** A consistent behaviour with a flagged (racy) pair exists. */
    bool raceFound = false;

    uint64_t candidatesExplored = 0;
    uint64_t consistentBehaviours = 0;
    double timeMs = 0.0;
};

class ExplicitChecker {
  public:
    ExplicitChecker(const prog::Program &program,
                    const cat::CatModel &model,
                    ExplicitOptions options = {});
    ~ExplicitChecker();

    /** Enumerate everything once; result answers safety and DRF. */
    ExplicitResult run();

  private:
    struct Impl;
    Impl *impl_;
};

} // namespace gpumc::expl

#endif // GPUMC_EXPLICIT_EXPLICIT_CHECKER_HPP
