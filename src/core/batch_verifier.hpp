/**
 * @file
 * Batch verification engine: fans a vector of independent
 * (program, model, property) queries out across worker threads and
 * collects the results in input order.
 *
 * Jobs with equal session keys (program fingerprint, model content
 * fingerprint, bound, backend — see core/session_key.hpp) are grouped
 * onto one shared incremental Verifier session:
 * the unroll/analysis/encode pipeline runs once per group and each
 * job is an assumption-guarded query on the live solver (see
 * core::Verifier). Groups share no mutable state with each other, so
 * the fan-out across groups is embarrassingly parallel. Inputs
 * (programs and models) are only read; CatModel is immutable after
 * construction and safe to share across workers (verified: no mutable
 * members, and the only statics behind it — cat::Vocabulary::gpu()
 * and the analysis init-placement constant — are const with
 * thread-safe magic-static initialization).
 *
 * Determinism: results land in a pre-sized slot per job, groups are
 * formed in first-seen input order and run their jobs sequentially in
 * input order, so the returned vector (and every verdict in it) is
 * identical for any worker count.
 */

#ifndef GPUMC_CORE_BATCH_VERIFIER_HPP
#define GPUMC_CORE_BATCH_VERIFIER_HPP

#include <functional>
#include <string>
#include <vector>

#include "core/verifier.hpp"

namespace gpumc::core {

/** One verification query. Pointees must outlive the run() call. */
struct BatchJob {
    const prog::Program *program = nullptr;
    const cat::CatModel *model = nullptr;
    Property property = Property::Safety;
    VerifierOptions options;
    /** Free-form tag echoed into the matching BatchEntry (e.g. the
     *  source file plus model name); not interpreted. */
    std::string label;
    /**
     * Allow this job to share one live session with other jobs of the
     * same session-cache group (equal program fingerprint, model
     * content fingerprint, backend, effective encoding parameters; for
     * straight-line
     * programs the unroll bound is ignored, since their unrolling is
     * bound-independent — this is what lets ascending-bound re-solves
     * reuse lower-bound sessions soundly). Set to false to force a
     * fresh pipeline per job, e.g. for fresh-vs-shared benchmarking.
     */
    bool shareSession = true;
};

/** Outcome of one BatchJob, at the same index as its job. */
struct BatchEntry {
    std::string label;
    VerificationResult result;
    /**
     * The verifier threw (malformed program, internal limit, ...);
     * `error` holds the message. `result` is marked unknown and still
     * carries the job's wall-clock time plus whatever pipeline phase
     * stats the session had collected before the failure.
     */
    bool failed = false;
    std::string error;
};

class BatchVerifier {
  public:
    /** @param jobs worker threads; 0 = hardware concurrency. */
    explicit BatchVerifier(unsigned jobs = 0);

    unsigned jobs() const { return jobs_; }

    /**
     * Called after each query completes, with its input index and a
     * snapshot of its entry. Invocations are serialized on a dedicated
     * drain thread (safe to print from) and arrive in completion
     * order, not input order. Delivery never blocks the verification
     * workers: a slow consumer backs up the drain queue only.
     */
    using ProgressFn =
        std::function<void(size_t index, const BatchEntry &entry)>;

    /** Run every job; entry i corresponds to jobs[i]. */
    std::vector<BatchEntry> run(const std::vector<BatchJob> &batch,
                                const ProgressFn &onDone = nullptr) const;

  private:
    unsigned jobs_;
};

} // namespace gpumc::core

#endif // GPUMC_CORE_BATCH_VERIFIER_HPP
