/**
 * @file
 * Process-wide registry of session-scope learned-clause stores.
 *
 * Verifiers whose (program, model, options) agree on a core::SessionKey
 * build identical structural encodings, so clauses learned over the
 * structural variable prefix of one session are valid in every other —
 * assumption-guarded sibling queries, same-fingerprint batch jobs,
 * serve-pool session rebuilds. sharedClauseStore() hands all of them
 * the same sat::ClauseStore; the Verifier attaches it with the
 * structural watermark (backend->numVars() right after the common
 * encoding), which keeps activation literals and property gates from
 * ever travelling between sessions (see docs/DESIGN.md, "Clause
 * sharing").
 *
 * The registry is a small LRU: stores for keys not requested recently
 * are dropped (with their clauses) once the cap is exceeded. Losing a
 * store only costs warm-up — a later request for the same key simply
 * starts an empty one.
 */

#ifndef GPUMC_CORE_CLAUSE_SHARE_HPP
#define GPUMC_CORE_CLAUSE_SHARE_HPP

#include <memory>

#include "core/session_key.hpp"
#include "smt/sat/clause_store.hpp"

namespace gpumc::core {

/**
 * The process-wide clause store for sessions keyed by @p key, created
 * on first request. Thread-safe; the returned store outlives the
 * registry entry (shared ownership), so eviction never invalidates a
 * live attachment.
 */
std::shared_ptr<smt::sat::ClauseStore>
sharedClauseStore(const SessionKey &key);

/** Stores currently retained by the registry (for tests/metrics). */
size_t sharedClauseStoreCount();

/** Drop every retained store (test isolation; live refs stay valid). */
void clearSharedClauseStores();

} // namespace gpumc::core

#endif // GPUMC_CORE_CLAUSE_SHARE_HPP
