/**
 * @file
 * Execution witnesses: a concrete behaviour (executed events, rf, co,
 * values, final registers) extracted from a SAT model. Witnesses can be
 * rendered as DOT execution graphs (paper Figs. 3/14 style) and
 * re-checked against the `.cat` model with the concrete evaluator.
 */

#ifndef GPUMC_CORE_WITNESS_HPP
#define GPUMC_CORE_WITNESS_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cat/evaluator.hpp"
#include "encoder/program_encoder.hpp"

namespace gpumc::core {

struct WitnessEvent {
    int originalId = -1; // event id in the unrolled program
    int thread = -1;     // -1 for init
    std::string display;
    bool isRead = false, isWrite = false;
    int physLoc = -1;
    int64_t value = 0;   // read or written value (memory events)
};

class ExecutionWitness {
  public:
    std::vector<WitnessEvent> events;          // executed events only
    std::vector<cat::EventPair> rf;            // witness-local indices
    std::vector<cat::EventPair> co;
    std::map<std::string, int64_t> finalRegisters; // "P0:r1" -> value
    std::vector<cat::EventPair> flaggedPairs;  // e.g. racy accesses

    /** Render as a GraphViz execution graph. */
    std::string toDot(const std::string &title) const;

    /** Compact one-line-per-event text form. */
    std::string toText() const;
};

/**
 * Extract the witness from a satisfiable encoding.
 */
ExecutionWitness extractWitness(analysis::RelationAnalysis &ra,
                                encoder::ProgramEncoder &pe);

/**
 * Adapt a witness back into a cat::ExecutionView so the concrete
 * evaluator can re-check the axioms (cross-validation of the encoder).
 */
class WitnessView : public cat::ExecutionView {
  public:
    WitnessView(const ExecutionWitness &witness,
                analysis::RelationAnalysis &ra,
                encoder::ProgramEncoder &pe);

    int numEvents() const override
    {
        return static_cast<int>(witness_->events.size());
    }
    bool inSet(int event, const std::string &tag) const override;
    const cat::PairSet &baseRel(const std::string &name) const override;

  private:
    const ExecutionWitness *witness_;
    const prog::UnrolledProgram *up_;
    std::vector<int> originalIds;
    std::map<std::string, cat::PairSet> rels_;
};

} // namespace gpumc::core

#endif // GPUMC_CORE_WITNESS_HPP
