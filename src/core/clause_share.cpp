#include "core/clause_share.hpp"

#include <list>
#include <map>
#include <mutex>
#include <utility>

namespace gpumc::core {

namespace {

/** Retained stores; beyond this the least-recently-requested drops. */
constexpr size_t kMaxStores = 64;

struct Registry {
    std::mutex mutex;
    /** Most-recently-requested first. */
    std::list<std::pair<SessionKey, std::shared_ptr<smt::sat::ClauseStore>>>
        entries;
};

Registry &
registry()
{
    static Registry instance;
    return instance;
}

} // namespace

std::shared_ptr<smt::sat::ClauseStore>
sharedClauseStore(const SessionKey &key)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    for (auto it = reg.entries.begin(); it != reg.entries.end(); ++it) {
        if (it->first == key) {
            reg.entries.splice(reg.entries.begin(), reg.entries, it);
            return reg.entries.front().second;
        }
    }
    auto store = std::make_shared<smt::sat::ClauseStore>();
    reg.entries.emplace_front(key, store);
    if (reg.entries.size() > kMaxStores)
        reg.entries.pop_back();
    return store;
}

size_t
sharedClauseStoreCount()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    return reg.entries.size();
}

void
clearSharedClauseStores()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    reg.entries.clear();
}

} // namespace gpumc::core
