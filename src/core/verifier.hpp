/**
 * @file
 * The public verification API of gpumc (the paper's Dartagnan role):
 * checks litmus programs against `.cat` consistency models for safety
 * (final-state conditions), liveness (spinloop progress) and data-race
 * freedom (`flag ~empty` axioms).
 *
 * A `Verifier` owns one shared incremental session per (program,
 * model, bound): the unroll/analysis/structural-encoding pipeline runs
 * once, and each property's specific constraints are asserted behind a
 * fresh activation literal and queried via `solve({activation, ...})`
 * on the same live solver, preserving learned clauses across
 * properties (the assumption-based incremental style of Dartagnan-like
 * BMC tools).
 */

#ifndef GPUMC_CORE_VERIFIER_HPP
#define GPUMC_CORE_VERIFIER_HPP

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cat/model.hpp"
#include "core/witness.hpp"
#include "program/program.hpp"
#include "smt/backend.hpp"
#include "support/stats.hpp"

namespace gpumc::core {

enum class Property { Safety, Liveness, CatSpec };

struct VerifierOptions {
    /**
     * SMT backend. The built-in CDCL solver is the default: on gpumc's
     * Tseitin-CNF encodings it consistently outperforms Z3 by an order
     * of magnitude (see bench/ablation_solver).
     */
    smt::BackendKind backend = smt::BackendKind::Builtin;
    /** Loop unroll bound (number of backward jumps per thread). */
    int bound = 2;
    /** Bit width of data values; 0 = sized automatically from the
     *  program's value universe. */
    int valueBits = 0;
    /** Re-check SAT witnesses with the concrete evaluator (paranoia). */
    bool validateWitness = false;
    /** Lower-bound shortcuts from the relation analysis (ablation). */
    bool useLowerBounds = true;
    /** Force closure soundness indices everywhere (ablation). */
    bool forceClosureSoundness = false;
    /**
     * Wall-clock budget per property check, in milliseconds; 0 =
     * unlimited. The budget is a single shared deadline for the whole
     * check — every solver query issued by the check draws from the
     * same remaining budget. When exhausted the result carries
     * unknown=true.
     */
    int64_t solverTimeoutMs = 0;
    /** Extract an execution witness on SAT results. */
    bool wantWitness = true;
    /**
     * Cube-and-conquer split depth inside the builtin CDCL solver
     * (also the builtin lane of the portfolio backend): each query is
     * split into 2^depth cubes on high-activity variables and farmed
     * through the shared thread budget. 0 = disabled.
     */
    int cubeDepth = 0;
    /**
     * Learned-clause sharing scope for the builtin CDCL solver (see
     * smt::ClauseShareMode). `Cube` shares between the main solver and
     * cube workers of one backend; `Session` shares across all
     * verifiers with an equal core::SessionKey through a process-wide
     * store, watermarked to the shared structural encoding; `On` is
     * both. Off by default: sharing never changes verdicts, but it
     * makes witnesses and solver statistics timing-dependent.
     */
    smt::ClauseShareMode clauseShare = smt::ClauseShareMode::Off;
};

struct VerificationResult {
    Property property = Property::Safety;

    /**
     * Did the property hold?
     *  - Safety: the quantified litmus statement is true (exists:
     *    reachable; ~exists: unreachable; forall: no counterexample).
     *  - Liveness: no liveness violation exists.
     *  - CatSpec: no flagged behaviour (e.g. data race) exists.
     */
    bool holds = false;

    /** The solver hit its resource budget; `holds` is meaningless. */
    bool unknown = false;

    std::string detail;
    std::optional<ExecutionWitness> witness;

    double timeMs = 0.0;
    StatsRegistry stats;
};

class Verifier {
  public:
    Verifier(const prog::Program &program, const cat::CatModel &model,
             VerifierOptions options = {});
    ~Verifier();

    /** Check the litmus exists/~exists/forall condition. */
    VerificationResult checkSafety();
    /** Check for liveness violations (Section 6.4). */
    VerificationResult checkLiveness();
    /** Check `flag ~empty` axioms (e.g. Vulkan DRF). */
    VerificationResult checkCatSpec();

    /** Dispatch by property. */
    VerificationResult check(Property property);

    /**
     * Check several properties on one shared session: the pipeline
     * (unroll, analyses, structural encoding) runs exactly once and
     * every property is an assumption-guarded query on the same live
     * solver. Results are in the order of @p properties.
     */
    std::vector<VerificationResult>
    checkAll(const std::vector<Property> &properties = {
                 Property::Safety, Property::Liveness, Property::CatSpec});

    /**
     * Adjust the per-check solver budget for subsequent checks (the
     * live session, including its learned clauses, is kept). A timed-
     * out check never poisons later checks: each check re-arms its own
     * deadline from this option.
     */
    void setSolverTimeoutMs(int64_t ms) { options_.solverTimeoutMs = ms; }

    /**
     * Export the phase timings and encoding sizes collected by the
     * session built so far into @p stats (same keys as
     * `VerificationResult::stats`). Returns false — leaving @p stats
     * untouched — when no check has built a session yet. Used by
     * `BatchVerifier` to attach the already-collected pipeline stats
     * to a job that failed mid-check instead of dropping them.
     */
    bool exportPipelineStats(StatsRegistry &stats) const;

    const VerifierOptions &options() const { return options_; }

  private:
    /**
     * The shared encoding session: backend + full structural encoding,
     * built lazily on the first check and reused by every later check
     * of this Verifier. Property-specific constraints are guarded by
     * activation literals so the one solver serves all properties.
     */
    struct Session;
    VerificationResult run(Property property);

    const prog::Program &program_;
    const cat::CatModel &model_;
    VerifierOptions options_;
    std::unique_ptr<Session> session_;
};

} // namespace gpumc::core

#endif // GPUMC_CORE_VERIFIER_HPP
