#include "core/witness.hpp"

#include <sstream>

#include "program/event.hpp"

namespace gpumc::core {

using prog::Event;
using prog::EventKind;

ExecutionWitness
extractWitness(analysis::RelationAnalysis &ra, encoder::ProgramEncoder &pe)
{
    const prog::UnrolledProgram &up = ra.unrolled();
    smt::Circuit &c = pe.circuit();
    ExecutionWitness w;

    std::map<int, int> localOf; // original event id -> witness index
    for (int e = 0; e < up.numEvents(); ++e) {
        if (!c.modelTrue(pe.execLit(e)))
            continue;
        const Event &ev = up.events[e];
        WitnessEvent we;
        we.originalId = e;
        we.thread = ev.thread;
        we.display = ev.isInit ? ev.display : ev.display;
        we.isRead = ev.kind == EventKind::Read;
        we.isWrite = ev.kind == EventKind::Write;
        we.physLoc = ev.physLoc;
        if (ev.isMemory())
            we.value = static_cast<int64_t>(pe.bv().modelValue(
                pe.valueOf(e)));
        localOf[e] = static_cast<int>(w.events.size());
        w.events.push_back(std::move(we));
    }

    auto collectPairs = [&](const std::map<uint64_t, smt::Lit> &map,
                            std::vector<cat::EventPair> &out) {
        for (const auto &[key, lit] : map) {
            if (!c.modelTrue(lit))
                continue;
            int a = static_cast<int>(key >> 32);
            int b = static_cast<int>(key & 0xffffffff);
            auto ia = localOf.find(a), ib = localOf.find(b);
            if (ia != localOf.end() && ib != localOf.end())
                out.push_back({ia->second, ib->second});
        }
    };
    collectPairs(pe.rfMap(), w.rf);
    collectPairs(pe.coMap(), w.co);

    // Final registers of each thread (only those named in conditions
    // would matter, but all are cheap to record).
    const prog::Program &program = *up.program;
    for (int t = 0; t < program.numThreads(); ++t) {
        std::set<std::string> regs;
        for (const prog::Instruction &ins : program.threads[t].instrs) {
            if (!ins.dst.empty())
                regs.insert(ins.dst);
        }
        for (const std::string &reg : regs) {
            int64_t value = static_cast<int64_t>(
                pe.bv().modelValue(pe.finalRegister(t, reg)));
            w.finalRegisters[program.threads[t].name + ":" + reg] = value;
        }
    }
    return w;
}

std::string
ExecutionWitness::toText() const
{
    std::ostringstream os;
    for (size_t i = 0; i < events.size(); ++i) {
        const WitnessEvent &e = events[i];
        os << "e" << i << " [" << (e.thread < 0 ? "init"
                                   : "P" + std::to_string(e.thread))
           << "] " << e.display;
        if (e.isRead || e.isWrite)
            os << " = " << e.value;
        os << "\n";
    }
    for (auto [a, b] : rf)
        os << "rf: e" << a << " -> e" << b << "\n";
    for (auto [a, b] : co)
        os << "co: e" << a << " -> e" << b << "\n";
    for (const auto &[reg, value] : finalRegisters)
        os << reg << " = " << value << "\n";
    return os.str();
}

std::string
ExecutionWitness::toDot(const std::string &title) const
{
    std::ostringstream os;
    os << "digraph execution {\n  label=\"" << title << "\";\n"
       << "  node [shape=box, fontname=\"monospace\"];\n";

    // Cluster events per thread.
    std::map<int, std::vector<int>> byThread;
    for (size_t i = 0; i < events.size(); ++i)
        byThread[events[i].thread].push_back(static_cast<int>(i));
    for (const auto &[thread, ids] : byThread) {
        os << "  subgraph cluster_t" << (thread + 1) << " {\n"
           << "    label=\""
           << (thread < 0 ? std::string("init")
                          : "P" + std::to_string(thread))
           << "\";\n";
        for (int i : ids) {
            os << "    e" << i << " [label=\"" << events[i].display;
            if (events[i].isRead || events[i].isWrite)
                os << " = " << events[i].value;
            os << "\"];\n";
        }
        // Chain po edges in id order within the thread.
        for (size_t k = 0; k + 1 < ids.size(); ++k) {
            if (thread >= 0) {
                os << "    e" << ids[k] << " -> e" << ids[k + 1]
                   << " [label=\"po\", color=black];\n";
            }
        }
        os << "  }\n";
    }
    for (auto [a, b] : rf)
        os << "  e" << a << " -> e" << b
           << " [label=\"rf\", color=forestgreen];\n";
    for (auto [a, b] : co)
        os << "  e" << a << " -> e" << b
           << " [label=\"co\", color=red, constraint=false];\n";
    for (auto [a, b] : flaggedPairs)
        os << "  e" << a << " -> e" << b
           << " [label=\"race\", color=purple, dir=both, "
              "style=dashed];\n";
    os << "}\n";
    return os.str();
}

WitnessView::WitnessView(const ExecutionWitness &witness,
                         analysis::RelationAnalysis &ra,
                         encoder::ProgramEncoder &pe)
    : witness_(&witness), up_(&ra.unrolled())
{
    std::map<int, int> localOf;
    for (size_t i = 0; i < witness.events.size(); ++i) {
        originalIds.push_back(witness.events[i].originalId);
        localOf[witness.events[i].originalId] = static_cast<int>(i);
    }

    auto remapStatic = [&](const std::string &name) {
        cat::PairSet out;
        for (auto [a, b] : ra.baseBounds(name).ub.pairs()) {
            auto ia = localOf.find(a), ib = localOf.find(b);
            if (ia != localOf.end() && ib != localOf.end())
                out.add(ia->second, ib->second);
        }
        return out;
    };

    for (const char *name :
         {"po", "loc", "vloc", "id", "int", "ext", "addr", "data", "ctrl",
          "rmw", "sr", "scta", "ssg", "swg", "sqf", "ssw"}) {
        rels_[name] = remapStatic(name);
    }

    // Barriers: compare concrete runtime ids from the model.
    for (const char *name : {"syncbar", "sync_barrier"}) {
        cat::PairSet out;
        for (auto [a, b] : ra.baseBounds(name).ub.pairs()) {
            auto ia = localOf.find(a), ib = localOf.find(b);
            if (ia == localOf.end() || ib == localOf.end())
                continue;
            uint64_t idA = pe.bv().modelValue(pe.barrierIdOf(a));
            uint64_t idB = pe.bv().modelValue(pe.barrierIdOf(b));
            if (idA == idB)
                out.add(ia->second, ib->second);
        }
        rels_[name] = std::move(out);
    }

    auto fromLits = [&](const std::map<uint64_t, smt::Lit> &map) {
        cat::PairSet out;
        for (const auto &[key, lit] : map) {
            if (!pe.circuit().modelTrue(lit))
                continue;
            auto ia = localOf.find(static_cast<int>(key >> 32));
            auto ib = localOf.find(static_cast<int>(key & 0xffffffff));
            if (ia != localOf.end() && ib != localOf.end())
                out.add(ia->second, ib->second);
        }
        return out;
    };
    rels_["rf"] = fromLits(pe.rfMap());
    rels_["co"] = fromLits(pe.coMap());
    rels_["sync_fence"] = fromLits(pe.syncFenceMap());
}

bool
WitnessView::inSet(int event, const std::string &tag) const
{
    return prog::eventHasTag(up_->events[originalIds[event]], tag);
}

const cat::PairSet &
WitnessView::baseRel(const std::string &name) const
{
    auto it = rels_.find(name);
    GPUMC_ASSERT(it != rels_.end(), "unknown base relation ", name);
    return it->second;
}

} // namespace gpumc::core
