#include "core/verifier.hpp"

#include "encoder/relation_encoder.hpp"
#include "program/unroller.hpp"

namespace gpumc::core {

using prog::NodeSpecial;
using smt::Lit;

Verifier::Verifier(const prog::Program &program, const cat::CatModel &model,
                   VerifierOptions options)
    : program_(program), model_(model), options_(options)
{
}

struct Verifier::Session {
    /** Elapsed-and-restart: closes the current timing phase. */
    static double takePhase(Stopwatch &watch)
    {
        double ms = watch.elapsedMs();
        watch.restart();
        return ms;
    }

    // Members run in declaration order, so the interleaved `*Ms`
    // members fence off the pipeline phases of the paper's Fig. 4:
    // unroll -> (exec + relation) analysis -> encode -> solve.
    Stopwatch phaseWatch;
    prog::UnrolledProgram up;
    double unrollMs;
    analysis::ExecAnalysis exec;
    analysis::RelationAnalysis ra;
    double analysisMs;
    std::unique_ptr<smt::Backend> backend;
    smt::Circuit circuit;
    encoder::ProgramEncoder pe;
    encoder::RelationEncoder re;
    double encodeMs = 0;
    double solveMs = 0;

    Session(const prog::Program &program, const cat::CatModel &model,
            const VerifierOptions &options)
        : up(prog::unroll(program, options.bound)),
          unrollMs(takePhase(phaseWatch)),
          exec(up),
          ra(exec, model),
          analysisMs(takePhase(phaseWatch)),
          backend(smt::makeBackend(options.backend)),
          circuit(*backend),
          pe(ra, circuit,
             encoder::EncoderOptions{
                 options.valueBits > 0
                     ? options.valueBits
                     : program.suggestedValueBits(options.bound),
                 /*coTotal=*/program.arch != prog::Arch::Ptx,
                 options.useLowerBounds,
                 options.forceClosureSoundness}),
          re(ra, pe)
    {
        pe.encodeStructure();
        re.assertAxioms();
        encodeMs = takePhase(phaseWatch);
    }

    /** Stamp phase timings and solver statistics into @p result. */
    void exportStats(VerificationResult &result) const
    {
        auto us = [](double ms) {
            return static_cast<int64_t>(ms * 1000.0 + 0.5);
        };
        result.stats.set("phaseUnrollUs", us(unrollMs));
        result.stats.set("phaseAnalysisUs", us(analysisMs));
        result.stats.set("phaseEncodeUs", us(encodeMs));
        result.stats.set("phaseSolveUs", us(solveMs));
        for (const auto &[key, value] : backend->statistics())
            result.stats.set("solver." + key, value);
    }

    /** Forbid reaching the given class of kill nodes. */
    void forbidKills(bool includeSpinKills)
    {
        for (int node : up.killNodes) {
            if (!includeSpinKills && up.nodes[node].spinKill)
                continue;
            circuit.assertLit(circuit.mkNot(pe.guardOf(node)));
        }
    }

    void assertFilter(const prog::Program &program)
    {
        if (program.filter)
            circuit.assertLit(pe.condLit(*program.filter));
    }
};

VerificationResult
Verifier::check(Property property)
{
    return run(property);
}

VerificationResult
Verifier::checkSafety()
{
    return run(Property::Safety);
}

VerificationResult
Verifier::checkLiveness()
{
    return run(Property::Liveness);
}

VerificationResult
Verifier::checkCatSpec()
{
    return run(Property::CatSpec);
}

VerificationResult
Verifier::run(Property property)
{
    Stopwatch timer;
    VerificationResult result;
    result.property = property;

    Session s(program_, model_, options_);

    // Per-property query construction.
    std::vector<encoder::FlagViolation> flags;
    switch (property) {
      case Property::Safety: {
        s.forbidKills(true);
        s.assertFilter(program_);
        Lit cond = program_.assertion ? s.pe.condLit(*program_.assertion)
                                      : s.circuit.trueLit();
        if (program_.assertKind == prog::AssertKind::Forall)
            cond = s.circuit.mkNot(cond);
        s.circuit.assertLit(cond);
        break;
      }
      case Property::CatSpec: {
        s.forbidKills(true);
        s.assertFilter(program_);
        flags = s.re.encodeFlags();
        if (flags.empty()) {
            result.holds = true;
            result.detail = "model has no flagged axioms";
            s.encodeMs += Session::takePhase(s.phaseWatch);
            s.exportStats(result);
            result.timeMs = timer.elapsedMs();
            return result;
        }
        std::vector<Lit> any;
        for (const encoder::FlagViolation &f : flags)
            any.push_back(f.lit);
        s.circuit.assertLit(s.circuit.mkOr(any));
        break;
      }
      case Property::Liveness: {
        s.forbidKills(false); // spin kills represent stuck threads
        s.assertFilter(program_);

        // stuck(t): some spinloop of t exhausted the bound with all of
        // its final-iteration reads observing co-maximal writes.
        std::vector<Lit> stuck(program_.numThreads(),
                               s.circuit.falseLit());
        for (const prog::SpinKillInfo &info : s.up.spinKills) {
            std::vector<Lit> conj = {s.pe.guardOf(info.killNode)};
            for (int read : info.lastIterationReads) {
                // The read observes a co-maximal write.
                std::vector<Lit> cases;
                for (const auto &[key, lit] : s.pe.rfMap()) {
                    int w = static_cast<int>(key >> 32);
                    int r = static_cast<int>(key & 0xffffffff);
                    if (r != read)
                        continue;
                    cases.push_back(
                        s.circuit.mkAnd(lit, s.pe.coMaximalLit(w)));
                }
                conj.push_back(s.circuit.mkOr(cases));
            }
            stuck[info.thread] = s.circuit.mkOr(
                stuck[info.thread], s.circuit.mkAnd(conj));
        }

        // Violation: some thread is stuck, and every thread is either
        // stuck or terminated (no thread can make progress).
        std::vector<Lit> someStuck;
        std::vector<Lit> allBlocked;
        for (int t = 0; t < program_.numThreads(); ++t) {
            someStuck.push_back(stuck[t]);
            allBlocked.push_back(
                s.circuit.mkOr(stuck[t], s.pe.threadTerminated(t)));
        }
        s.circuit.assertLit(s.circuit.mkOr(someStuck));
        s.circuit.assertLit(s.circuit.mkAnd(allBlocked));
        break;
      }
    }

    result.stats.set("events", s.up.numEvents());
    result.stats.set("smtVars", s.backend->numVars());
    result.stats.set("smtClauses", s.backend->numClauses());

    // The property-specific encoding above is part of the encode phase.
    s.encodeMs += Session::takePhase(s.phaseWatch);

    if (options_.solverTimeoutMs > 0)
        s.backend->setTimeLimitMs(options_.solverTimeoutMs);
    smt::SolveResult solveResult = s.backend->solve();
    s.solveMs = Session::takePhase(s.phaseWatch);
    if (solveResult == smt::SolveResult::Unknown) {
        result.unknown = true;
        result.detail = "solver resource limit exhausted";
        s.exportStats(result);
        result.timeMs = timer.elapsedMs();
        return result;
    }
    bool sat = solveResult == smt::SolveResult::Sat;

    switch (property) {
      case Property::Safety:
        switch (program_.assertKind) {
          case prog::AssertKind::Exists:
            result.holds = sat;
            result.detail = sat ? "condition reachable"
                                : "condition unreachable";
            break;
          case prog::AssertKind::NotExists:
            result.holds = !sat;
            result.detail = sat ? "forbidden state reachable"
                                : "forbidden state unreachable";
            break;
          case prog::AssertKind::Forall:
            result.holds = !sat;
            result.detail = sat ? "counterexample found"
                                : "condition holds in all behaviours";
            break;
        }
        break;
      case Property::CatSpec:
        result.holds = !sat;
        result.detail = sat ? "flagged behaviour (e.g. data race) found"
                            : "no flagged behaviour";
        break;
      case Property::Liveness:
        result.holds = !sat;
        result.detail = sat ? "liveness violation found"
                            : "no liveness violation";
        break;
    }

    if (sat && options_.wantWitness) {
        ExecutionWitness witness = extractWitness(s.ra, s.pe);
        if (property == Property::CatSpec) {
            // Record the flagged (racy) pairs in witness coordinates.
            std::map<int, int> localOf;
            for (size_t i = 0; i < witness.events.size(); ++i)
                localOf[witness.events[i].originalId] =
                    static_cast<int>(i);
            for (const encoder::FlagViolation &f : flags) {
                for (const auto &[pair, lit] : f.pairLits) {
                    if (!s.circuit.modelTrue(lit))
                        continue;
                    auto ia = localOf.find(pair.first);
                    auto ib = localOf.find(pair.second);
                    if (ia != localOf.end() && ib != localOf.end()) {
                        witness.flaggedPairs.push_back(
                            {ia->second, ib->second});
                    }
                }
            }
        }
        if (options_.validateWitness) {
            WitnessView view(witness, s.ra, s.pe);
            cat::RelationEvaluator evaluator(model_, view);
            GPUMC_ASSERT(evaluator.consistent(),
                         "SAT witness violates the cat model: encoder bug");
        }
        result.witness = std::move(witness);
    }

    s.exportStats(result);
    result.timeMs = timer.elapsedMs();
    return result;
}

} // namespace gpumc::core
